open Helpers
module Expr = Ansor.Expr
open Expr

let env_of bindings v =
  match List.assoc_opt v bindings with
  | Some x -> x
  | None -> Alcotest.failf "unbound axis %s" v

let no_load _ _ = Alcotest.fail "unexpected tensor access"

(* ---------- integer expressions ---------- *)

let test_iexpr_arith () =
  let e = Iadd (Imul (Axis "i", Int 3), Int 2) in
  check_int "3i+2 at i=4" 14 (eval_iexpr (env_of [ ("i", 4) ]) e)

let test_floor_division () =
  let div a b = eval_iexpr (fun _ -> 0) (Idiv (Int a, Int b)) in
  check_int "7/2" 3 (div 7 2);
  check_int "-7/2 floors" (-4) (div (-7) 2);
  check_int "-8/2 exact" (-4) (div (-8) 2);
  check_int "7/-2 floors" (-4) (div 7 (-2))

let test_euclidean_mod () =
  let md a b = eval_iexpr (fun _ -> 0) (Imod (Int a, Int b)) in
  check_int "7%3" 1 (md 7 3);
  check_int "-7%3 non-negative" 2 (md (-7) 3);
  check_int "0%5" 0 (md 0 5)

let test_division_by_zero () =
  Alcotest.check_raises "div" Division_by_zero (fun () ->
      ignore (eval_iexpr (fun _ -> 0) (Idiv (Int 1, Int 0))));
  Alcotest.check_raises "mod" Division_by_zero (fun () ->
      ignore (eval_iexpr (fun _ -> 0) (Imod (Int 1, Int 0))))

let test_div_mod_consistency =
  qcheck "a = (a/b)*b + (a mod b), mod in [0,|b|)"
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) ->
      let env _ = 0 in
      let q = eval_iexpr env (Idiv (Int a, Int b)) in
      let r = eval_iexpr env (Imod (Int a, Int b)) in
      a = (q * b) + r && r >= 0 && r < b)

(* ---------- boolean expressions ---------- *)

let test_bexpr () =
  let env = env_of [ ("i", 3) ] in
  check_bool "lt" true (eval_bexpr env (Blt (Axis "i", Int 4)));
  check_bool "le" true (eval_bexpr env (Ble (Axis "i", Int 3)));
  check_bool "eq" false (eval_bexpr env (Beq (Axis "i", Int 4)));
  check_bool "and" false
    (eval_bexpr env (Band (Blt (Axis "i", Int 4), Blt (Int 4, Axis "i"))));
  check_bool "or" true
    (eval_bexpr env (Bor (Blt (Axis "i", Int 4), Blt (Int 4, Axis "i"))));
  check_bool "not" true (eval_bexpr env (Bnot (Beq (Axis "i", Int 4))))

(* ---------- float expressions ---------- *)

let test_eval_ops () =
  let e = Binop (Add, Const 1.0, Binop (Mul, Const 2.0, Const 3.0)) in
  check_float "1+2*3" 7.0 (eval ~axis_value:(fun _ -> 0) ~load:no_load e);
  let relu x = eval ~axis_value:(fun _ -> 0) ~load:no_load (Unop (Relu, Const x)) in
  check_float "relu(-1)" 0.0 (relu (-1.0));
  check_float "relu(2)" 2.0 (relu 2.0);
  check_float "max" 5.0
    (eval ~axis_value:(fun _ -> 0) ~load:no_load
       (Binop (Max, Const 5.0, Const 3.0)));
  check_floatish "sigmoid(0)" 0.5
    (eval ~axis_value:(fun _ -> 0) ~load:no_load (Unop (Sigmoid, Const 0.0)))

let test_select_lazy () =
  (* the untaken branch must not be evaluated: this is the padding idiom *)
  let guarded =
    Select
      ( Blt (Axis "i", Int 0),
        Access ("nonexistent", [ Int 0 ]),
        Const 42.0 )
  in
  check_float "select skips untaken branch" 42.0
    (eval ~axis_value:(env_of [ ("i", 3) ]) ~load:no_load guarded)

let test_access_eval () =
  let load name idx =
    check_string "tensor name" "A" name;
    Alcotest.(check (list int)) "indices" [ 2; 5 ] idx;
    9.0
  in
  check_float "load" 9.0
    (eval
       ~axis_value:(env_of [ ("i", 2) ])
       ~load
       (Access ("A", [ Axis "i"; Int 5 ])))

let test_cast_int () =
  check_float "cast" 7.0
    (eval ~axis_value:(env_of [ ("i", 7) ]) ~load:no_load (Cast_int (Axis "i")))

(* ---------- analysis ---------- *)

let test_accesses () =
  let e =
    Binop
      ( Add,
        Access ("A", [ Axis "i" ]),
        Select (Blt (Axis "i", Int 2), Access ("B", []), Access ("A", [ Int 0 ]))
      )
  in
  Alcotest.(check (list string)) "access order" [ "A"; "B"; "A" ]
    (List.map fst (accesses e))

let test_axes_of () =
  let e =
    Binop
      ( Mul,
        Access ("A", [ Iadd (Axis "i", Axis "k") ]),
        Select (Blt (Axis "j", Int 2), Const 1.0, Const 0.0) )
  in
  Alcotest.(check (list string)) "axes" [ "i"; "k"; "j" ] (axes_of e);
  Alcotest.(check (list string)) "iexpr axes dedup" [ "i" ]
    (iexpr_axes (Iadd (Axis "i", Imul (Axis "i", Int 2))))

let test_subst_tensor () =
  let e = Binop (Add, Access ("A", [ Axis "i" ]), Access ("B", [ Axis "i" ])) in
  let e' = subst_tensor "A" (fun idx -> Access ("C", idx)) e in
  Alcotest.(check (list string)) "renamed" [ "C"; "B" ]
    (List.map fst (accesses e'))

let test_subst_axes () =
  let e = Access ("A", [ Axis "i"; Axis "j" ]) in
  let e' = subst_axes [ ("i", Imul (Axis "x", Int 2)) ] e in
  let v =
    eval ~axis_value:(env_of [ ("x", 3); ("j", 1) ])
      ~load:(fun _ idx -> float_of_int (List.hd idx))
      e'
  in
  check_float "i replaced by 2x" 6.0 v

let test_subst_axes_simultaneous () =
  (* simultaneous, not sequential: i->j, j->i must swap *)
  let e = Access ("A", [ Axis "i"; Axis "j" ]) in
  let e' = subst_axes [ ("i", Axis "j"); ("j", Axis "i") ] e in
  match e' with
  | Access ("A", [ Axis "j"; Axis "i" ]) -> ()
  | _ -> Alcotest.fail "substitution must be simultaneous"

(* ---------- op counts ---------- *)

let test_count_ops () =
  let e =
    Binop
      ( Add,
        Binop (Mul, Access ("A", [ Axis "i" ]), Access ("B", [ Axis "i" ])),
        Unop (Exp, Const 1.0) )
  in
  let c = count_ops e in
  check_int "adds" 1 c.float_add_sub;
  check_int "muls" 1 c.float_mul;
  check_int "math" 1 c.float_math;
  check_int "flops" 3 (flops e)

let test_count_int_ops () =
  let e = Access ("A", [ Iadd (Imul (Axis "i", Int 4), Axis "j") ]) in
  let c = count_ops e in
  check_int "int adds" 1 c.int_add_sub;
  check_int "int muls" 1 c.int_mul;
  check_int "no flops" 0 (flops e)

let test_count_select () =
  let e = Select (Blt (Axis "i", Int 2), Const 1.0, Const 0.0) in
  let c = count_ops e in
  check_int "select is a cmp" 1 c.float_cmp;
  check_int "cond int compare" 1 c.int_add_sub

(* ---------- simplify ---------- *)

let gen_iexpr =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof [ map (fun i -> Int i) (int_range (-20) 20); return (Axis "i") ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map2 (fun a b -> Iadd (a, b)) sub sub;
               map2 (fun a b -> Isub (a, b)) sub sub;
               map2 (fun a b -> Imul (a, b)) sub sub;
               map2 (fun a b -> Idiv (a, b)) sub sub;
               map2 (fun a b -> Imod (a, b)) sub sub;
             ])

let prop_simplify_preserves =
  qcheck ~count:300 "simplify_iexpr preserves value"
    QCheck2.Gen.(pair gen_iexpr (int_range 0 7))
    (fun (e, i) ->
      let env v = if String.equal v "i" then i else 0 in
      let value e = try Some (Expr.eval_iexpr env e) with Division_by_zero -> None in
      match value e with
      | None -> QCheck2.assume_fail ()
      | Some v -> value (simplify_iexpr e) = Some v)

let test_simplify_identities () =
  check_bool "x*1" true (simplify_iexpr (Imul (Axis "x", Int 1)) = Axis "x");
  check_bool "x+0" true (simplify_iexpr (Iadd (Axis "x", Int 0)) = Axis "x");
  check_bool "x*0" true (simplify_iexpr (Imul (Axis "x", Int 0)) = Int 0);
  check_bool "x/1" true (simplify_iexpr (Idiv (Axis "x", Int 1)) = Axis "x");
  check_bool "x mod 1" true (simplify_iexpr (Imod (Axis "x", Int 1)) = Int 0);
  check_bool "const fold" true (simplify_iexpr (Iadd (Int 2, Int 3)) = Int 5)

let test_simplify_static_select () =
  let e = Select (Blt (Int 1, Int 2), Const 1.0, Const 0.0) in
  check_bool "true branch" true (simplify e = Const 1.0);
  let e = Select (Blt (Int 3, Int 2), Const 1.0, Const 0.0) in
  check_bool "false branch" true (simplify e = Const 0.0);
  let dynamic = Select (Blt (Axis "i", Int 2), Const 1.0, Const 0.0) in
  check_bool "dynamic kept" true
    (match simplify dynamic with Select _ -> true | _ -> false)

let test_pp () =
  check_string "pp" "(A[i, 2] * 3)"
    (to_string (Binop (Mul, Access ("A", [ Axis "i"; Int 2 ]), Const 3.0)));
  check_string "pp select" "select(i < 4, A[i], 0)"
    (to_string
       (Select (Blt (Axis "i", Int 4), Access ("A", [ Axis "i" ]), Const 0.0)))

let () =
  Alcotest.run "expr"
    [
      ( "integer",
        [
          case "arithmetic" test_iexpr_arith;
          case "floor division" test_floor_division;
          case "euclidean mod" test_euclidean_mod;
          case "division by zero" test_division_by_zero;
          test_div_mod_consistency;
        ] );
      ("boolean", [ case "comparisons and connectives" test_bexpr ]);
      ( "float",
        [
          case "arithmetic and unops" test_eval_ops;
          case "select is lazy" test_select_lazy;
          case "tensor access" test_access_eval;
          case "cast_int" test_cast_int;
        ] );
      ( "analysis",
        [
          case "accesses" test_accesses;
          case "axes_of" test_axes_of;
          case "subst_tensor" test_subst_tensor;
          case "subst_axes" test_subst_axes;
          case "subst simultaneous" test_subst_axes_simultaneous;
        ] );
      ( "counts",
        [
          case "float ops" test_count_ops;
          case "int ops" test_count_int_ops;
          case "select" test_count_select;
        ] );
      ( "simplify",
        [
          prop_simplify_preserves;
          case "identities" test_simplify_identities;
          case "static select" test_simplify_static_select;
          case "pretty printing" test_pp;
        ] );
    ]
