(* Vendor-library stand-ins and baseline wiring. *)

open Helpers
module B = Ansor.Baselines
module Task = Ansor.Task
module Machine = Ansor.Machine
module Nn = Ansor.Nn

let task dag = Task.create ~name:"t" ~machine:Machine.intel_cpu dag

let test_vendor_names () =
  Alcotest.(check (list string)) "names"
    [ "PyTorch"; "TensorFlow"; "TensorRT"; "TF-Lite" ]
    (List.map B.vendor_name [ B.Pytorch; B.Tensorflow; B.Tensorrt; B.Tflite ])

let test_vendor_deterministic () =
  let t = task (Nn.matmul ~m:64 ~n:64 ~k:64 ()) in
  let l1 = B.vendor_latency B.Pytorch t in
  let l2 = B.vendor_latency B.Pytorch t in
  check_float "same schedule every time" l1 l2;
  check_bool "finite" true (Float.is_finite l1 && l1 > 0.0)

let test_vendor_schedule_correct () =
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  match B.vendor_state B.Pytorch (task dag) with
  | None -> Alcotest.fail "vendor produced no schedule"
  | Some st -> assert_state_correct st

let test_vendor_effort_ordering () =
  (* TensorRT invests the most offline candidates, TensorFlow the least on
     the GPU; with a shared candidate stream more candidates can only
     improve the chosen schedule *)
  let t =
    Task.create ~name:"t" ~machine:Machine.gpu (Nn.matmul ~m:256 ~n:256 ~k:256 ())
  in
  let trt = B.vendor_latency B.Tensorrt t in
  let tf = B.vendor_latency B.Tensorflow t in
  check_bool
    (Printf.sprintf "TensorRT (%.4gms) <= TensorFlow (%.4gms) * 1.05"
       (trt *. 1e3) (tf *. 1e3))
    true
    (trt <= tf *. 1.05)

let test_exotic_ops_get_less_effort () =
  (* the same vendor is relatively much further from Ansor on a transposed
     convolution than on a plain matmul *)
  let std = task (Nn.matmul ~m:128 ~n:128 ~k:128 ()) in
  let exotic =
    task
      (Nn.conv2d_transposed ~n:1 ~c:64 ~h:16 ~w:16 ~f:32 ~kh:4 ~kw:4 ~stride:2
         ~pad:1 ())
  in
  let ratio t =
    let vendor = B.vendor_latency B.Pytorch t in
    let tuner, _ = Ansor.Tuner.tune ~seed:3 B.ansor ~trials:150 t in
    vendor /. Ansor.Tuner.best_latency tuner
  in
  let r_std = ratio std and r_exotic = ratio exotic in
  check_bool
    (Printf.sprintf "vendor gap bigger on exotic op (%.2fx vs %.2fx)" r_exotic
       r_std)
    true (r_exotic > r_std)

let test_network_latency_weighted () =
  let t1 = task (Nn.matmul ~m:32 ~n:32 ~k:32 ()) in
  let l1 = B.vendor_latency B.Tensorflow t1 in
  let total = B.vendor_network_latency B.Tensorflow [ (t1, 3) ] in
  check_floatish "weight applied" (3.0 *. l1) total

let test_option_aliases () =
  check_bool "ansor alias" true (B.ansor == Ansor.Tuner.ansor_options);
  check_bool "autotvm alias" true (B.autotvm == Ansor.Tuner.autotvm_options);
  check_bool "flextensor alias" true
    (B.flextensor == Ansor.Tuner.flextensor_options);
  check_bool "halide alias" true (B.halide_beam == Ansor.Tuner.beam_options)

let () =
  Alcotest.run "baselines"
    [
      ( "vendor",
        [
          case "names" test_vendor_names;
          case "deterministic" test_vendor_deterministic;
          case "schedule correct" test_vendor_schedule_correct;
          case "effort ordering" test_vendor_effort_ordering;
          case "exotic ops penalized" test_exotic_ops_get_less_effort;
          case "network latency" test_network_latency_weighted;
        ] );
      ("wiring", [ case "option aliases" test_option_aliases ]);
    ]
