(* Deeper cross-module property tests: schedule-space invariants the unit
   suites don't cover, plus the ASCII plot helper. *)

open Helpers
module Step = Ansor.Step
module State = Ansor.State
module Lower = Ansor.Lower
module Simulator = Ansor.Simulator
module Machine = Ansor.Machine
module Rng = Ansor.Rng

(* ---------- schedule-space invariants ---------- *)

let prop_sketches_deterministic =
  qcheck ~count:20 "sketch generation is deterministic"
    QCheck2.Gen.(int_range 2 6)
    (fun sz ->
      let mk () = Ansor.Nn.matmul ~m:(4 * sz) ~n:8 ~k:16 () in
      let keys dag =
        List.map
          (fun st -> Step.history_key st.State.history)
          (Ansor.Sketch_gen.generate dag)
      in
      keys (mk ()) = keys (mk ()))

let prop_sampling_deterministic =
  qcheck ~count:20 "same seed => same sampled program"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let dag = Ansor.Nn.conv_layer ~n:1 ~c:4 ~h:8 ~w:8 ~f:4 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
      let one () =
        match sample_programs ~seed ~n:1 dag with
        | [ st ] -> Step.history_key st.State.history
        | _ -> ""
      in
      String.equal (one ()) (one ()))

let prop_lowering_deterministic =
  qcheck ~count:20 "lowering is deterministic"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let dag = Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
      match sample_programs ~seed ~n:1 dag with
      | [ st ] ->
        String.equal
          (Ansor.Prog.to_string (Lower.lower st))
          (Ansor.Prog.to_string (Lower.lower st))
      | _ -> QCheck2.assume_fail ())

let prop_simulator_deterministic_and_positive =
  qcheck ~count:30 "simulator estimates are deterministic and positive"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let dag = Ansor.Nn.conv2d ~n:1 ~c:8 ~h:14 ~w:14 ~f:8 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
      match sample_programs ~seed ~n:1 dag with
      | [ st ] ->
        let prog = Lower.lower st in
        let a = Simulator.estimate Machine.intel_cpu prog in
        let b = Simulator.estimate Machine.intel_cpu prog in
        a = b && a > 0.0 && Float.is_finite a
      | _ -> QCheck2.assume_fail ())

let prop_leaf_products_invariant =
  (* for any sampled program, every stage's leaf extents multiply to its
     full iteration space: splits and fuses never lose iterations *)
  qcheck ~count:40 "leaf extents multiply to the iteration space"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let dag = Ansor.Nn.figure5_input2 () in
      match sample_programs ~seed ~n:1 dag with
      | [ st ] ->
        List.for_all
          (fun name ->
            let s = State.find_stage st name in
            let product =
              List.fold_left
                (fun acc iv -> acc * (State.ivar s iv).State.extent)
                1 s.State.leaves
            in
            product = Ansor.Op.output_elems s.op * Ansor.Op.reduce_extent s.op)
          (State.stage_names st)
      | _ -> QCheck2.assume_fail ())

let prop_record_roundtrip_everywhere =
  qcheck ~count:30 "records round-trip for any sampled program"
    QCheck2.Gen.(pair (int_range 0 3) (int_range 0 10000))
    (fun (which, seed) ->
      let dag =
        match which with
        | 0 -> Ansor.Nn.matmul ~m:16 ~n:16 ~k:16 ()
        | 1 -> Ansor.Nn.matrix_norm ~m:16 ~n:32 ()
        | 2 -> Ansor.Nn.tbg ~b:2 ~m:8 ~n:8 ~k:8 ()
        | _ -> Ansor.Nn.depthwise_conv2d ~n:1 ~c:4 ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()
      in
      match sample_programs ~seed ~n:1 dag with
      | [ st ] -> (
        let e =
          { Ansor.Record.task_key = "k"; latency = 1e-3; steps = st.State.history }
        in
        match Ansor.Record.of_line (Ansor.Record.to_line e) with
        | Ok e' ->
          Step.history_key e'.steps = Step.history_key st.State.history
        | Error _ -> false)
      | _ -> QCheck2.assume_fail ())

(* the measured latency surface respects annotation monotonicity in at
   least the coarse sense: adding parallelism to a compute-heavy nest is
   never catastrophically wrong in the simulator (sanity against NaN /
   negative costs rather than a performance claim) *)
let prop_simulator_finite_under_annotations =
  qcheck ~count:30 "simulator finite under arbitrary legal annotations"
    QCheck2.Gen.(pair (int_range 0 2) (int_range 0 3))
    (fun (iv, which_ann) ->
      let dag = Ansor.Nn.matmul ~m:32 ~n:32 ~k:32 () in
      let ann =
        match which_ann with
        | 0 -> Step.Parallel
        | 1 -> Step.Vectorize
        | 2 -> Step.Unroll
        | _ -> Step.No_ann
      in
      match
        State.replay_checked dag [ Step.Annotate { stage = "C"; iv; ann } ]
      with
      | Error _ -> true (* illegal combination rejected: fine *)
      | Ok st ->
        let t = Simulator.estimate Machine.intel_cpu (Lower.lower st) in
        Float.is_finite t && t > 0.0)

(* ---------- ascii plot ---------- *)

let test_plot_renders () =
  let s =
    Ansor.Ascii_plot.render ~width:20 ~height:5
      [ (0.0, 1.0); (1.0, 2.0); (2.0, 0.5) ]
  in
  check_bool "non-empty" true (String.length s > 0);
  check_bool "contains points" true (String.contains s '*');
  check_bool "contains axis" true (String.contains s '|')

let test_plot_degenerate () =
  check_string "empty series" "" (Ansor.Ascii_plot.render []);
  check_string "single point" "" (Ansor.Ascii_plot.render [ (1.0, 1.0) ])

let test_plot_latency_curve () =
  let s =
    Ansor.Ascii_plot.render_latency_curve
      [ (16, 1e-3); (32, 8e-4); (64, 5e-4) ]
  in
  check_bool "mentions trials" true
    (let rec contains i =
       i + 6 <= String.length s
       && (String.sub s i 6 = "trials" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "properties"
    [
      ( "determinism",
        [
          prop_sketches_deterministic;
          prop_sampling_deterministic;
          prop_lowering_deterministic;
          prop_simulator_deterministic_and_positive;
        ] );
      ( "invariants",
        [
          prop_leaf_products_invariant;
          prop_record_roundtrip_everywhere;
          prop_simulator_finite_under_annotations;
        ] );
      ( "ascii plot",
        [
          case "renders" test_plot_renders;
          case "degenerate inputs" test_plot_degenerate;
          case "latency curve" test_plot_latency_curve;
        ] );
    ]
