(* The gradient-boosted decision trees backing the cost model. *)

open Helpers
module Gbdt = Ansor.Gbdt
module Rng = Ansor.Rng
module Stats = Ansor.Stats

let make_data rng n dims f =
  let x = Array.init n (fun _ -> Array.init dims (fun _ -> Rng.float rng 1.0)) in
  (x, Array.map f x)

let mae model x y lo hi =
  let errs = ref [] in
  for i = lo to hi - 1 do
    errs := Float.abs (Gbdt.predict model x.(i) -. y.(i)) :: !errs
  done;
  Stats.mean !errs

let test_fits_constant () =
  let x = Array.make 20 [| 0.0 |] in
  let y = Array.make 20 7.5 in
  let model = Gbdt.train ~x ~y () in
  check_floatish "constant" 7.5 (Gbdt.predict model [| 0.0 |])

let test_fits_step_function () =
  let rng = Rng.create 1 in
  let x, y = make_data rng 600 3 (fun r -> if r.(1) > 0.5 then 10.0 else -10.0) in
  let model = Gbdt.train ~x ~y () in
  check_bool "low side" true (Gbdt.predict model [| 0.3; 0.1; 0.9 |] < -5.0);
  check_bool "high side" true (Gbdt.predict model [| 0.3; 0.9; 0.9 |] > 5.0)

let test_fits_nonlinear () =
  let rng = Rng.create 2 in
  let f (r : float array) = (3.0 *. r.(0)) +. (5.0 *. r.(1) *. r.(2)) in
  let x, y = make_data rng 2000 8 f in
  let model =
    Gbdt.train ~x:(Array.sub x 0 1500) ~y:(Array.sub y 0 1500) ()
  in
  let err = mae model x y 1500 2000 in
  let spread = Stats.stddev (Array.to_list (Array.sub y 1500 500)) in
  check_bool
    (Printf.sprintf "test MAE %.3f well below stddev %.3f" err spread)
    true
    (err < spread /. 3.0)

let test_weights_matter () =
  (* two clusters with conflicting labels at the same x; weights decide *)
  let x = Array.init 40 (fun _ -> [| 0.5 |]) in
  let y = Array.init 40 (fun i -> if i < 20 then 0.0 else 10.0) in
  let w = Array.init 40 (fun i -> if i < 20 then 0.01 else 1.0) in
  let model = Gbdt.train ~x ~y ~w () in
  check_bool "prediction pulled to heavy cluster" true
    (Gbdt.predict model [| 0.5 |] > 9.0)

let test_ranking_quality () =
  (* what the cost model actually needs: ranking fidelity *)
  let rng = Rng.create 3 in
  let f (r : float array) = r.(0) -. (2.0 *. r.(1)) in
  let x, y = make_data rng 1200 4 f in
  let model = Gbdt.train ~x:(Array.sub x 0 1000) ~y:(Array.sub y 0 1000) () in
  let correct = ref 0 and total = ref 0 in
  for i = 1000 to 1198 do
    incr total;
    let p = Gbdt.predict model x.(i) > Gbdt.predict model x.(i + 1) in
    let a = y.(i) > y.(i + 1) in
    if p = a then incr correct
  done;
  let acc = float_of_int !correct /. float_of_int !total in
  check_bool (Printf.sprintf "pairwise accuracy %.2f > 0.85" acc) true (acc > 0.85)

let test_validation_errors () =
  (match Gbdt.train ~x:[||] ~y:[||] () with
  | _ -> Alcotest.fail "expected error on empty data"
  | exception Invalid_argument _ -> ());
  (match Gbdt.train ~x:[| [| 1.0 |]; [| 1.0; 2.0 |] |] ~y:[| 0.0; 0.0 |] () with
  | _ -> Alcotest.fail "expected error on ragged rows"
  | exception Invalid_argument _ -> ());
  (match Gbdt.train ~x:[| [| 1.0 |] |] ~y:[| 0.0; 1.0 |] () with
  | _ -> Alcotest.fail "expected error on size mismatch"
  | exception Invalid_argument _ -> ());
  match Gbdt.train ~x:[| [| 1.0 |] |] ~y:[| 1.0 |] ~w:[| 0.0 |] () with
  | _ -> Alcotest.fail "expected error on zero weights"
  | exception Invalid_argument _ -> ()

let test_num_trees_and_params () =
  let rng = Rng.create 4 in
  let x, y = make_data rng 100 2 (fun r -> r.(0)) in
  let params = { Gbdt.default_params with n_trees = 7 } in
  let model = Gbdt.train ~params ~x ~y () in
  check_int "trees built" 7 (Gbdt.num_trees model)

let test_feature_importance () =
  let rng = Rng.create 5 in
  (* only feature 2 matters *)
  let x, y = make_data rng 800 5 (fun r -> 10.0 *. r.(2)) in
  let model = Gbdt.train ~x ~y () in
  let imp = Gbdt.feature_importance model in
  check_int "length" 5 (Array.length imp);
  check_floatish "normalized" 1.0 (Array.fold_left ( +. ) 0.0 imp);
  check_bool "informative feature dominates" true
    (imp.(2) > 0.8)

let test_predict_many () =
  let rng = Rng.create 6 in
  let x, y = make_data rng 50 2 (fun r -> r.(0) +. r.(1)) in
  let model = Gbdt.train ~x ~y () in
  let preds = Gbdt.predict_many model x in
  check_int "count" 50 (Array.length preds);
  Array.iteri
    (fun i p -> check_float "matches single" (Gbdt.predict model x.(i)) p)
    preds

let test_extrapolation_is_finite () =
  let rng = Rng.create 7 in
  let x, y = make_data rng 100 2 (fun r -> r.(0)) in
  let model = Gbdt.train ~x ~y () in
  let p = Gbdt.predict model [| 1e9; -1e9 |] in
  check_bool "finite outside training range" true (Float.is_finite p)

let () =
  Alcotest.run "gbdt"
    [
      ( "fitting",
        [
          case "constant" test_fits_constant;
          case "step function" test_fits_step_function;
          case "nonlinear interaction" test_fits_nonlinear;
          case "sample weights" test_weights_matter;
          case "ranking quality" test_ranking_quality;
        ] );
      ( "mechanics",
        [
          case "validation errors" test_validation_errors;
          case "tree count" test_num_trees_and_params;
          case "feature importance" test_feature_importance;
          case "predict_many" test_predict_many;
          case "extrapolation finite" test_extrapolation_is_finite;
        ] );
    ]
