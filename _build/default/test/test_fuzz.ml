(* Schedule fuzzer: random walks through the space of LEGAL transform
   steps — including combinations the sketch rules never generate — must
   preserve functional correctness whenever lowering accepts the state.

   This explores a much wider region than the sampler-based property
   tests: arbitrary split factorizations, fusions at any position,
   arbitrary reorders, surgery on any pristine stage, followed by random
   annotations. *)

open Helpers
module Step = Ansor.Step
module State = Ansor.State
module Lower = Ansor.Lower
module Rng = Ansor.Rng
module Factorize = Ansor.Factorize

(* enumerate a random applicable step for the current state, if any *)
let random_step rng (st : State.t) =
  let stage_names = Array.of_list (State.stage_names st) in
  if Array.length stage_names = 0 then None
  else begin
    let name = Rng.choice rng stage_names in
    let s = State.find_stage st name in
    let leaves = Array.of_list s.State.leaves in
    let pick_leaf () = Rng.choice rng leaves in
    match Rng.int rng 8 with
    | 0 when Array.length leaves > 0 ->
      (* split a random leaf into 2-3 random factors *)
      let iv = pick_leaf () in
      let extent = (State.ivar s iv).State.extent in
      let parts = 2 + Rng.int rng 2 in
      Some
        (Step.Split
           {
             stage = name;
             iv;
             lengths = Factorize.random_factorization rng extent parts;
             tbd = false;
           })
    | 1 when Array.length leaves >= 2 ->
      (* fuse a random adjacent pair *)
      let pos = Rng.int rng (Array.length leaves - 1) in
      Some (Step.Fuse { stage = name; ivs = [ leaves.(pos); leaves.(pos + 1) ] })
    | 2 when Array.length leaves >= 2 ->
      (* random permutation *)
      let order = Array.copy leaves in
      Rng.shuffle rng order;
      Some (Step.Reorder { stage = name; order = Array.to_list order })
    | 3 when Array.length leaves > 0 ->
      let ann =
        match Rng.int rng 3 with
        | 0 -> Step.Parallel
        | 1 -> Step.Vectorize
        | _ -> Step.Unroll
      in
      Some (Step.Annotate { stage = name; iv = pick_leaf (); ann })
    | 4 -> Some (Step.Compute_inline { stage = name })
    | 5 -> Some (Step.Cache_write { stage = name })
    | 6 when Array.length leaves > 0 ->
      let iv = pick_leaf () in
      let extent = (State.ivar s iv).State.extent in
      Some
        (Step.Rfactor
           {
             stage = name;
             iv;
             lengths = Factorize.random_factorization rng extent 2;
             tbd = false;
           })
    | 7 -> Some (Step.Pragma_unroll { stage = name; max_step = Rng.choice rng [| 0; 16; 64 |] })
    | _ -> None
  end

let fuzz_one dag seed steps =
  let rng = Rng.create seed in
  let st = ref (State.init dag) in
  let applied = ref 0 in
  for _ = 1 to steps do
    match random_step rng !st with
    | None -> ()
    | Some step -> (
      match State.apply_checked !st step with
      | Ok st' ->
        (* keep states that still lower; otherwise drop the step *)
        (match Lower.lower st' with
        | _ ->
          st := st';
          incr applied
        | exception State.Illegal _ -> ())
      | Error _ -> ())
  done;
  (!st, !applied)

let fuzz_dags =
  lazy
    [|
      ("matmul", Ansor.Nn.matmul ~m:12 ~n:8 ~k:6 ());
      ("matmul_relu", Ansor.Nn.matmul_relu ~m:8 ~n:8 ~k:8 ());
      ("conv2d", Ansor.Nn.conv2d ~n:1 ~c:2 ~h:6 ~w:6 ~f:2 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
      ("norm", Ansor.Nn.matrix_norm ~m:8 ~n:12 ());
      ("softmax", Ansor.Nn.softmax ~m:4 ~n:6 ());
      ("pool", Ansor.Nn.max_pool2d ~n:1 ~c:2 ~h:6 ~w:6 ~k:2 ~stride:2 ());
    |]

let prop_random_walks_correct =
  qcheck ~count:120 "random legal step walks stay correct"
    QCheck2.Gen.(pair (int_range 0 5) (int_range 0 1_000_000))
    (fun (which, seed) ->
      let _, dag = (Lazy.force fuzz_dags).(which) in
      let st, _ = fuzz_one dag seed 12 in
      let prog = Lower.lower st in
      let inputs = Ansor.Interp.random_inputs (Rng.create (seed + 1)) dag in
      match Ansor.Interp.check_equivalent dag prog ~inputs with
      | Ok () -> true
      | Error _ -> false)

let prop_walks_make_progress =
  qcheck ~count:30 "the fuzzer actually applies steps"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, dag = (Lazy.force fuzz_dags).(seed mod 6) in
      let _, applied = fuzz_one dag seed 20 in
      applied >= 3)

let prop_walk_histories_replayable =
  qcheck ~count:40 "fuzzed histories replay deterministically"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, dag = (Lazy.force fuzz_dags).(seed mod 6) in
      let st, _ = fuzz_one dag seed 10 in
      match State.replay_checked dag st.State.history with
      | Ok st' ->
        Step.history_key st'.State.history = Step.history_key st.State.history
      | Error _ -> false)

let prop_fuzzed_records_roundtrip =
  qcheck ~count:40 "fuzzed histories survive the record format"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, dag = (Lazy.force fuzz_dags).(seed mod 6) in
      let st, _ = fuzz_one dag seed 10 in
      let e =
        { Ansor.Record.task_key = "fuzz"; latency = 1e-3; steps = st.State.history }
      in
      match Ansor.Record.of_line (Ansor.Record.to_line e) with
      | Ok e' -> Step.history_key e'.steps = Step.history_key st.State.history
      | Error _ -> false)

let prop_fuzzed_programs_validate =
  (* the static validator accepts every fuzzed-legal program: its checks
     must never be stricter than the dynamic semantics *)
  qcheck ~count:60 "static validator accepts fuzzed programs"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, dag = (Lazy.force fuzz_dags).(seed mod 6) in
      let st, _ = fuzz_one dag seed 10 in
      Ansor.Validate.check (Lower.lower st) = [])

let prop_fuzzed_c_structural =
  (* emitting C never crashes and always contains the kernel signature *)
  qcheck ~count:40 "C emission total on fuzzed programs"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, dag = (Lazy.force fuzz_dags).(seed mod 6) in
      let st, _ = fuzz_one dag seed 10 in
      let src = Ansor.Codegen_c.emit_kernel (Lower.lower st) in
      String.length src > 0)

let () =
  Alcotest.run "fuzz"
    [
      ( "random walks",
        [
          prop_random_walks_correct;
          prop_walks_make_progress;
          prop_walk_histories_replayable;
          prop_fuzzed_records_roundtrip;
          prop_fuzzed_programs_validate;
          prop_fuzzed_c_structural;
        ] );
    ]
