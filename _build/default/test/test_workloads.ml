(* The evaluation workload suite of §7. *)

open Helpers
module Workloads = Ansor.Workloads
module Dag = Ansor.Dag
module Machine = Ansor.Machine

let test_op_names () =
  Alcotest.(check (list string)) "ten operator families (Figure 6 x-axis)"
    [ "C1D"; "C2D"; "C3D"; "GMM"; "GRP"; "DIL"; "DEP"; "T2D"; "CAP"; "NRM" ]
    Workloads.op_names

let test_four_shapes_each () =
  List.iter
    (fun batch ->
      List.iter
        (fun op ->
          let cases = Workloads.op_cases ~op ~batch in
          check_int (Printf.sprintf "%s b%d has 4 shapes" op batch) 4
            (List.length cases);
          (* every case builds a valid DAG with positive work *)
          List.iter
            (fun (c : Workloads.case) ->
              check_bool (c.case_name ^ " has work") true (Dag.flops c.dag > 0))
            cases)
        Workloads.op_names)
    [ 1; 16 ]

let test_unknown_op () =
  match Workloads.op_cases ~op:"FFT" ~batch:1 with
  | _ -> Alcotest.fail "expected invalid_arg"
  | exception Invalid_argument _ -> ()

let test_case_names_unique () =
  let names =
    List.concat_map
      (fun (_, cases) -> List.map (fun (c : Workloads.case) -> c.case_name) cases)
      (Workloads.single_op_suite ~batch:1)
  in
  check_int "unique case names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_batch_scales_work () =
  List.iter
    (fun op ->
      let f1 =
        List.fold_left
          (fun acc (c : Workloads.case) -> acc + Dag.flops c.dag)
          0
          (Workloads.op_cases ~op ~batch:1)
      in
      let f16 =
        List.fold_left
          (fun acc (c : Workloads.case) -> acc + Dag.flops c.dag)
          0
          (Workloads.op_cases ~op ~batch:16)
      in
      check_bool (op ^ ": batch 16 >= 8x batch 1") true (f16 >= 8 * f1))
    Workloads.op_names

let test_subgraphs () =
  check_int "ConvLayer shapes" 4 (List.length (Workloads.conv_layer_cases ~batch:1));
  check_int "TBG shapes" 4 (List.length (Workloads.tbg_cases ~batch:1));
  (* ConvLayer contains conv, bn, relu stages *)
  let c = List.hd (Workloads.conv_layer_cases ~batch:1) in
  List.iter
    (fun name ->
      check_bool (name ^ " present") true
        (match Dag.op_index c.dag name with _ -> true | exception Not_found -> false))
    [ "Conv"; "Bn"; "Out" ]

let test_networks () =
  let nets = Workloads.networks ~batch:1 in
  Alcotest.(check (list string)) "figure 9 networks"
    [ "ResNet-50"; "MobileNet-V2"; "3D-ResNet-18"; "DCGAN"; "BERT" ]
    (List.map (fun (n : Workloads.net) -> n.net_name) nets);
  List.iter
    (fun (n : Workloads.net) ->
      check_bool (n.net_name ^ " has several unique subgraphs") true
        (List.length n.layers >= 5);
      List.iter
        (fun ((c : Workloads.case), w) ->
          check_bool (c.case_name ^ " weight positive") true (w >= 1);
          check_bool (c.case_name ^ " builds") true (Dag.flops c.dag > 0))
        n.layers)
    nets

let test_resnet_is_heaviest () =
  let total (n : Workloads.net) =
    List.fold_left (fun acc (c, w) -> acc +. float_of_int (w * Dag.flops c.Workloads.dag)) 0.0 n.layers
  in
  let r50 = total (Workloads.resnet50 ~batch:1) in
  let mbv2 = total (Workloads.mobilenet_v2 ~batch:1) in
  check_bool "ResNet-50 heavier than MobileNet-V2" true (r50 > mbv2)

let test_net_tasks () =
  let net = Workloads.mobilenet_v2 ~batch:1 in
  let tasks = Workloads.net_tasks ~machine:Machine.intel_cpu net in
  check_int "one task per unique layer" (List.length net.layers)
    (List.length tasks);
  List.iter
    (fun ((t : Ansor.Task.t), w) ->
      check_int "task weight matches" w t.weight;
      check_string "machine" "intel-cpu" t.machine.name)
    tasks

let test_bert_structure () =
  let bert = Workloads.bert ~batch:1 in
  (* attention appears 12 times (once per layer) *)
  let attn =
    List.find
      (fun ((c : Workloads.case), _) ->
        String.length c.case_name >= 7 && String.sub c.case_name 0 7 = "attn_qk")
      bert.layers
  in
  check_int "12 attention blocks" 12 (snd attn)

let () =
  Alcotest.run "workloads" ~and_exit:false
    [
      ( "single ops",
        [
          case "operator families" test_op_names;
          case "four shapes each" test_four_shapes_each;
          case "unknown operator" test_unknown_op;
          case "unique names" test_case_names_unique;
          case "batch scales work" test_batch_scales_work;
        ] );
      ("subgraphs", [ case "ConvLayer and TBG" test_subgraphs ]);
      ( "networks",
        [
          case "figure 9 set" test_networks;
          case "relative sizes" test_resnet_is_heaviest;
          case "net_tasks" test_net_tasks;
          case "BERT structure" test_bert_structure;
        ] );
    ]

(* ---------- extended networks (appended suite) ---------- *)

let test_extended_networks () =
  let nets = Workloads.extended_networks ~batch:1 in
  Alcotest.(check (list string)) "names"
    [ "VGG-16"; "Transformer-block"; "SqueezeNet-fire" ]
    (List.map (fun (n : Workloads.net) -> n.net_name) nets);
  List.iter
    (fun (n : Workloads.net) ->
      List.iter
        (fun ((c : Workloads.case), w) ->
          Helpers.check_bool (c.case_name ^ " weight") true (w >= 1);
          Helpers.check_bool (c.case_name ^ " builds") true (Dag.flops c.dag > 0))
        n.layers)
    nets

let test_vgg_heavier_than_fire () =
  let total (n : Workloads.net) =
    List.fold_left
      (fun acc (c, w) -> acc +. float_of_int (w * Dag.flops c.Workloads.dag))
      0.0 n.layers
  in
  Helpers.check_bool "VGG-16 much heavier" true
    (total (Workloads.vgg16 ~batch:1)
    > 10.0 *. total (Workloads.squeezenet_fire ~batch:1))

let test_extended_tasks_schedulable () =
  (* every unique extended-network task generates sketches *)
  List.iter
    (fun (net : Workloads.net) ->
      List.iter
        (fun ((c : Workloads.case), _) ->
          Helpers.check_bool (c.case_name ^ " has sketches") true
            (Ansor.Sketch_gen.generate c.dag <> []))
        net.layers)
    (Workloads.extended_networks ~batch:1)

let () =
  Alcotest.run "workloads_extended"
    [
      ( "extended networks",
        [
          Helpers.case "construct" test_extended_networks;
          Helpers.case "relative sizes" test_vgg_heavier_than_fire;
          Helpers.case "sketches for every task" test_extended_tasks_schedulable;
        ] );
    ]
