(* End-to-end properties: the system-wide soundness invariant — every
   program the sampler or the tuner produces computes exactly what the
   naive program computes — plus the public facade. *)

open Helpers
module State = Ansor.State

(* qcheck-driven: a random seed yields a random sampled program on a
   randomly chosen DAG; it must verify *)
let dags =
  lazy
    [|
      ("matmul_relu", Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 ());
      ("matmul_bias_relu", Ansor.Nn.matmul_bias_relu ~m:8 ~n:16 ~k:8 ());
      ("conv2d", Ansor.Nn.conv2d ~n:1 ~c:4 ~h:8 ~w:8 ~f:4 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
      ("conv_layer", Ansor.Nn.conv_layer ~n:1 ~c:4 ~h:6 ~w:6 ~f:4 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
      ("depthwise", Ansor.Nn.depthwise_conv2d ~n:1 ~c:8 ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
      ("t2d", Ansor.Nn.conv2d_transposed ~n:1 ~c:4 ~h:6 ~w:6 ~f:4 ~kh:4 ~kw:4 ~stride:2 ~pad:1 ());
      ("norm", Ansor.Nn.matrix_norm ~m:16 ~n:32 ());
      ("figure5", Ansor.Nn.figure5_input2 ());
      ("tbg", Ansor.Nn.tbg ~b:4 ~m:8 ~n:8 ~k:8 ());
      ("grouped", Ansor.Nn.conv2d ~groups:2 ~n:1 ~c:4 ~h:6 ~w:6 ~f:4 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
    |]

let prop_sampled_programs_correct =
  qcheck ~count:60 "every sampled program == naive program"
    QCheck2.Gen.(pair (int_range 0 9) (int_range 0 100000))
    (fun (dag_idx, seed) ->
      let _, dag = (Lazy.force dags).(dag_idx) in
      match sample_programs ~seed ~n:1 dag with
      | [ st ] -> (
        let inputs =
          Ansor.Interp.random_inputs (Ansor.Rng.create (seed + 1)) dag
        in
        let prog = Ansor.Lower.lower st in
        match Ansor.Interp.check_equivalent dag prog ~inputs with
        | Ok () -> true
        | Error _ -> false)
      | _ -> QCheck2.assume_fail ())

let prop_mutated_programs_correct =
  qcheck ~count:40 "every accepted mutation == naive program"
    QCheck2.Gen.(pair (int_range 0 9) (int_range 0 100000))
    (fun (dag_idx, seed) ->
      let _, dag = (Lazy.force dags).(dag_idx) in
      match sample_programs ~seed ~n:1 dag with
      | [ st ] -> (
        let rng = Ansor.Rng.create (seed + 7) in
        let mutations =
          [
            Ansor.Evolution.mutate_tile_sizes rng dag;
            Ansor.Evolution.mutate_annotation rng dag;
            Ansor.Evolution.mutate_location rng dag;
          ]
        in
        List.for_all
          (fun mutate ->
            match mutate st with
            | None -> true
            | Some st' -> (
              let inputs =
                Ansor.Interp.random_inputs (Ansor.Rng.create (seed + 2)) dag
              in
              match
                Ansor.Interp.check_equivalent dag (Ansor.Lower.lower st')
                  ~inputs
              with
              | Ok () -> true
              | Error _ -> false))
          mutations)
      | _ -> QCheck2.assume_fail ())

let test_tune_facade () =
  let dag = Ansor.Nn.matmul ~m:32 ~n:32 ~k:32 () in
  let result = Ansor.tune ~seed:1 ~trials:40 Ansor.Machine.intel_cpu dag in
  check_bool "best found" true (result.best_state <> None);
  check_bool "latency finite" true (Float.is_finite result.best_latency);
  check_bool "trials counted" true (result.trials_used >= 40);
  match result.best_state with
  | Some st -> (
    match Ansor.verify_state st with
    | Ok () -> ()
    | Error e -> Alcotest.failf "tuned program wrong: %s" e)
  | None -> ()

let test_tune_networks_facade () =
  (* a miniature network with two layers sharing one subgraph *)
  let case name dag = { Ansor.Workloads.case_name = name; dag } in
  let net =
    {
      Ansor.Workloads.net_name = "tiny";
      layers =
        [
          (case "mm" (Ansor.Nn.matmul ~m:32 ~n:32 ~k:32 ()), 2);
          (case "mm2" (Ansor.Nn.matmul ~m:16 ~n:64 ~k:16 ()), 1);
        ];
    }
  in
  let results =
    Ansor.tune_networks ~seed:2 ~trial_budget:60 Ansor.Machine.intel_cpu [ net ]
  in
  match results with
  | [ r ] ->
    check_bool "latency positive" true (r.latency > 0.0 && Float.is_finite r.latency);
    check_int "per-task entries" 2 (List.length r.per_task);
    (* end-to-end = sum of weighted task latencies *)
    let sum =
      List.fold_left2
        (fun acc (_, l) w -> acc +. (float_of_int w *. l))
        0.0 r.per_task [ 2; 1 ]
    in
    check_floatish "weighted sum" sum r.latency
  | _ -> Alcotest.fail "one result expected"

let test_shared_tasks_deduplicated () =
  (* two networks using the same subgraph: the scheduler sees it once *)
  let case name dag = { Ansor.Workloads.case_name = name; dag } in
  let shared_case = case "mm" (Ansor.Nn.matmul ~m:32 ~n:32 ~k:32 ()) in
  let net1 = { Ansor.Workloads.net_name = "n1"; layers = [ (shared_case, 1) ] } in
  let net2 = { Ansor.Workloads.net_name = "n2"; layers = [ (shared_case, 3) ] } in
  let results =
    Ansor.tune_networks ~seed:3 ~trial_budget:40 Ansor.Machine.intel_cpu
      [ net1; net2 ]
  in
  match results with
  | [ r1; r2 ] ->
    let l1 = List.assoc "mm" r1.per_task and l2 = List.assoc "mm" r2.per_task in
    check_floatish "both networks see the same tuned latency" l1 l2;
    check_floatish "weights applied" (3.0 *. l1 /. 1.0) (r2.latency *. l1 /. l2 /. 1.0 *. 1.0)
  | _ -> Alcotest.fail "two results expected"

let test_verify_state_detects_nothing_wrong () =
  let dag = small_matmul_relu () in
  match Ansor.verify_state (State.init dag) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "naive state must verify: %s" e

let () =
  Alcotest.run "endtoend"
    [
      ( "soundness",
        [
          prop_sampled_programs_correct;
          prop_mutated_programs_correct;
          case "verify_state" test_verify_state_detects_nothing_wrong;
        ] );
      ( "facade",
        [
          case "tune" test_tune_facade;
          case "tune_networks" test_tune_networks_facade;
          case "task deduplication" test_shared_tasks_deduplicated;
        ] );
    ]
