test/test_cost_model.ml: Alcotest Ansor Helpers List Printf
