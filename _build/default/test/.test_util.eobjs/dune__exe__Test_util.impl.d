test/test_util.ml: Alcotest Ansor Array Float Fun Helpers List Printf QCheck2 String
