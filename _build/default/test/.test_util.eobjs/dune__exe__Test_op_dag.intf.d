test/test_op_dag.mli:
