test/helpers.ml: Alcotest Ansor QCheck2 QCheck_alcotest
