test/test_record.ml: Alcotest Ansor Filename Float Fun Helpers List QCheck2 String Sys
