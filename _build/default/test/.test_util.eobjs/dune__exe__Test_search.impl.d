test/test_search.ml: Alcotest Ansor Float Helpers List Option Printf String
