test/test_access_features.ml: Alcotest Ansor Array Float Helpers List String
