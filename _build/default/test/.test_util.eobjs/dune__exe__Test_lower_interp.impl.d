test/test_lower_interp.ml: Alcotest Ansor Array Helpers List String
