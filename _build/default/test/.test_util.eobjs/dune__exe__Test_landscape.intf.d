test/test_landscape.mli:
