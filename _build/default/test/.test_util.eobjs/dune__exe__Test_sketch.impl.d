test/test_sketch.ml: Alcotest Ansor Helpers List
