test/test_evolution.ml: Alcotest Ansor Array Float Helpers List Printf
