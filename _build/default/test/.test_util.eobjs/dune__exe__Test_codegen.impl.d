test/test_codegen.ml: Alcotest Ansor Array Filename Float Helpers Lazy List Printf String Sys Unix
