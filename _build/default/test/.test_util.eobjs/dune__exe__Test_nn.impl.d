test/test_nn.ml: Alcotest Ansor Array Float Helpers List
