test/test_access_features.mli:
