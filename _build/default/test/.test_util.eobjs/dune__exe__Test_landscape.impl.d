test/test_landscape.ml: Alcotest Ansor Float Format Helpers List Printf String
