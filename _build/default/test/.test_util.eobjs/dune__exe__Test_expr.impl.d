test/test_expr.ml: Alcotest Ansor Helpers List QCheck2 String
