test/test_baselines.ml: Alcotest Ansor Float Helpers List Printf
