test/test_fuzz.ml: Alcotest Ansor Array Helpers Lazy QCheck2 String
