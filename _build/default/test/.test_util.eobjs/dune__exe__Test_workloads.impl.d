test/test_workloads.ml: Alcotest Ansor Helpers List Printf String
