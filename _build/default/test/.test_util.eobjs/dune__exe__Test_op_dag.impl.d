test/test_op_dag.ml: Alcotest Ansor Array Float Helpers List
