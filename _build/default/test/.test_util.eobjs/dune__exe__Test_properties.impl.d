test/test_properties.ml: Alcotest Ansor Float Helpers List QCheck2 String
