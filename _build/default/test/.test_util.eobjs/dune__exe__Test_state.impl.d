test/test_state.ml: Alcotest Ansor Array Helpers List
