test/test_scheduler.ml: Alcotest Ansor Array Float Helpers List Printf
