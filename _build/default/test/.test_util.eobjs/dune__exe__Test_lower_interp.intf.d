test/test_lower_interp.mli:
