test/test_gbdt.mli:
