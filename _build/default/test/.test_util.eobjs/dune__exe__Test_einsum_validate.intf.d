test/test_einsum_validate.mli:
