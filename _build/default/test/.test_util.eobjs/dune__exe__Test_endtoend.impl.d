test/test_endtoend.ml: Alcotest Ansor Array Float Helpers Lazy List QCheck2
