test/test_sim.ml: Alcotest Ansor Array Float Helpers List
