test/test_gbdt.ml: Alcotest Ansor Array Float Helpers Printf
