test/test_einsum_validate.ml: Alcotest Ansor Array Format Helpers List String
