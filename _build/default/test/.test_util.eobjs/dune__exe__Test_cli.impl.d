test/test_cli.ml: Alcotest Filename Fun Helpers Lazy List Option Printf String Sys
