(* Shared helpers for the test suites. *)

let check_float = Alcotest.(check (float 1e-9))
let check_floatish msg = Alcotest.(check (float 1e-6)) msg
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Equivalence of a schedule state against the naive evaluation of its
   (possibly surgery-extended) DAG. *)
let assert_state_correct ?(seed = 2024) (st : Ansor.State.t) =
  let dag = st.Ansor.State.dag in
  let inputs = Ansor.Interp.random_inputs (Ansor.Rng.create seed) dag in
  let prog = Ansor.Lower.lower st in
  match Ansor.Interp.check_equivalent dag prog ~inputs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "schedule not equivalent to naive program: %s" e

(* A small matmul + relu DAG used across suites. *)
let small_matmul_relu () = Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 ()

let sample_programs ?(seed = 1) ?(n = 10) dag =
  let rng = Ansor.Rng.create seed in
  let policy = Ansor.Policy.cpu ~workers:20 in
  let sketches = Ansor.Sketch_gen.generate dag in
  Ansor.Sampler.sample rng policy dag ~sketches ~n
