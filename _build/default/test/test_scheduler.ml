(* The gradient-descent task scheduler (§6, Appendix A). *)

open Helpers
module Scheduler = Ansor.Scheduler
module Task = Ansor.Task
module Tuner = Ansor.Tuner
module Machine = Ansor.Machine
module Nn = Ansor.Nn

let mk_task ?(weight = 1) name dag =
  Task.create ~weight ~name ~machine:Machine.intel_cpu dag

(* a heavy and a light matmul: the scheduler should put most units into
   the heavy one when minimizing total latency *)
let two_tasks () =
  [|
    mk_task "heavy" (Nn.matmul ~m:256 ~n:256 ~k:256 ());
    mk_task "light" (Nn.matmul ~m:16 ~n:16 ~k:16 ());
  |]

let one_net tasks weights =
  [
    {
      Scheduler.net_name = "net";
      task_weights = List.mapi (fun i w -> (i, w)) weights;
    };
  ]
  |> fun nets ->
  ignore tasks;
  nets

let fast_options =
  {
    Scheduler.default_options with
    tuner_options = { Tuner.ansor_options with batch_size = 8; sample_size = 16 };
  }

let test_create_validation () =
  let tasks = two_tasks () in
  (match Scheduler.create fast_options ~tasks ~networks:[] with
  | _ -> Alcotest.fail "expected error on no networks"
  | exception Invalid_argument _ -> ());
  (match
     Scheduler.create fast_options ~tasks
       ~networks:[ { Scheduler.net_name = "n"; task_weights = [ (7, 1) ] } ]
   with
  | _ -> Alcotest.fail "expected error on bad index"
  | exception Invalid_argument _ -> ());
  match
    Scheduler.create fast_options ~tasks
      ~networks:[ { Scheduler.net_name = "n"; task_weights = [ (0, 0) ] } ]
  with
  | _ -> Alcotest.fail "expected error on zero weight"
  | exception Invalid_argument _ -> ()

let test_warmup_and_allocation () =
  let tasks = two_tasks () in
  let sched =
    Scheduler.create fast_options ~tasks ~networks:(one_net tasks [ 1; 1 ])
  in
  Scheduler.run sched ~trial_budget:120;
  let alloc = Scheduler.allocations sched in
  check_int "both warmed up" 2
    (Array.fold_left (fun acc a -> if a >= 1 then acc + 1 else acc) 0 alloc);
  check_bool "budget respected approximately" true
    (Scheduler.total_trials sched >= 120
    && Scheduler.total_trials sched < 120 + 16);
  check_bool "latencies available" true
    (Float.is_finite (Scheduler.best_latency sched 0)
    && Float.is_finite (Scheduler.best_latency sched 1))

let test_prioritizes_bottleneck () =
  let tasks = two_tasks () in
  let sched =
    Scheduler.create fast_options ~tasks ~networks:(one_net tasks [ 1; 1 ])
  in
  Scheduler.run sched ~trial_budget:200;
  let alloc = Scheduler.allocations sched in
  check_bool
    (Printf.sprintf "heavy task got more units (%d vs %d)" alloc.(0) alloc.(1))
    true
    (alloc.(0) > alloc.(1))

let test_weights_affect_priority () =
  (* same computation everywhere, but one task appears 16x in the network:
     it should receive at least as many units *)
  let tasks =
    [|
      mk_task "a" (Nn.matmul ~m:64 ~n:64 ~k:64 ());
      mk_task "b" (Nn.matmul ~m:64 ~n:64 ~k:63 ());
    |]
  in
  let networks =
    [ { Scheduler.net_name = "n"; task_weights = [ (0, 16); (1, 1) ] } ]
  in
  let sched = Scheduler.create fast_options ~tasks ~networks in
  Scheduler.run sched ~trial_budget:200;
  let alloc = Scheduler.allocations sched in
  check_bool
    (Printf.sprintf "weighted task prioritized (%d vs %d)" alloc.(0) alloc.(1))
    true
    (alloc.(0) >= alloc.(1))

let test_network_latency_and_curve () =
  let tasks = two_tasks () in
  let net = List.hd (one_net tasks [ 2; 3 ]) in
  let sched = Scheduler.create fast_options ~tasks ~networks:[ net ] in
  Scheduler.run sched ~trial_budget:100;
  let lat = Scheduler.network_latency sched net in
  let expect =
    (2.0 *. Scheduler.best_latency sched 0)
    +. (3.0 *. Scheduler.best_latency sched 1)
  in
  check_floatish "weighted sum" expect lat;
  let curve = Scheduler.curve sched in
  check_bool "curve non-empty" true (curve <> []);
  (* the final curve point matches the current state *)
  let _, last = List.nth curve (List.length curve - 1) in
  check_floatish "curve consistent" lat last.(0)

(* ---------- objectives (Table 2) ---------- *)

let synthetic_objective obj netlats =
  (* evaluate an objective on fixed latencies through a dummy scheduler *)
  let tasks = [| mk_task "t" (Nn.matmul ~m:8 ~n:8 ~k:8 ()) |] in
  let networks =
    List.mapi
      (fun j _ -> { Scheduler.net_name = Printf.sprintf "n%d" j; task_weights = [ (0, 1) ] })
      netlats
  in
  let sched =
    Scheduler.create { fast_options with objective = obj } ~tasks ~networks
  in
  ignore sched;
  (* objective_of is internal; exercise through Custom instead *)
  ()

let test_objectives_math () =
  ignore synthetic_objective;
  (* verify F1/F2/F3 via the Custom objective equivalences on a tiny run *)
  let tasks = [| mk_task "t" (Nn.matmul ~m:32 ~n:32 ~k:32 ()) |] in
  let networks = [ { Scheduler.net_name = "n"; task_weights = [ (0, 2) ] } ] in
  let run obj =
    let sched =
      Scheduler.create { fast_options with objective = obj } ~tasks ~networks
    in
    Scheduler.run sched ~trial_budget:24;
    (Scheduler.objective_value sched, Scheduler.network_latency sched (List.hd networks))
  in
  let f1, lat = run Scheduler.F1_sum in
  check_floatish "F1 = sum of network latencies" lat f1;
  let f2, lat2 = run (Scheduler.F2_requirements [| 1000.0 |]) in
  ignore lat2;
  check_floatish "F2 floors at the requirement" 1000.0 f2;
  let f3, lat3 = run (Scheduler.F3_geomean_speedup [| 1.0 |]) in
  check_bool "F3 negative geomean speedup" true
    (Float.abs (f3 +. (1.0 /. lat3)) < 0.05 /. lat3);
  let fc, latc = run (Scheduler.Custom (fun ls -> 2.0 *. ls.(0))) in
  check_floatish "custom objective" (2.0 *. latc) fc

let test_early_stopping_masks_tasks () =
  (* with patience 0, any non-improving task is immediately masked; the
     run must still terminate and respect the budget *)
  let tasks = two_tasks () in
  let sched =
    Scheduler.create
      { fast_options with objective = Scheduler.F4_early_stopping { patience = 2 } }
      ~tasks ~networks:(one_net tasks [ 1; 1 ])
  in
  Scheduler.run sched ~trial_budget:150;
  check_bool "terminates with finite latencies" true
    (Float.is_finite (Scheduler.best_latency sched 0))

let test_incremental_run () =
  let tasks = two_tasks () in
  let sched =
    Scheduler.create fast_options ~tasks ~networks:(one_net tasks [ 1; 1 ])
  in
  Scheduler.run sched ~trial_budget:50;
  let t1 = Scheduler.total_trials sched in
  Scheduler.run sched ~trial_budget:100;
  let t2 = Scheduler.total_trials sched in
  check_bool "extends the budget" true (t2 > t1)

let () =
  Alcotest.run "scheduler"
    [
      ( "mechanics",
        [
          case "validation" test_create_validation;
          case "warm-up and allocation" test_warmup_and_allocation;
          case "incremental run" test_incremental_run;
        ] );
      ( "allocation",
        [
          case "prioritizes the bottleneck" test_prioritizes_bottleneck;
          case "weights matter" test_weights_affect_priority;
          case "network latency and curve" test_network_latency_and_curve;
        ] );
      ( "objectives",
        [
          case "table 2 math" test_objectives_math;
          case "early stopping" test_early_stopping_masks_tasks;
        ] );
    ]
