(* Qualitative properties of the simulated cost landscape: the facts the
   evaluation's conclusions rest on. Each test states a relationship the
   paper's analysis predicts and the benchmarks rely on. *)

open Helpers
module State = Ansor.State
module Lower = Ansor.Lower
module Sim = Ansor.Simulator
module Machine = Ansor.Machine
module Nn = Ansor.Nn

let naive_cost ?(machine = Machine.intel_cpu) dag =
  Sim.estimate machine (Lower.lower (State.init dag))

let best_sampled ?(machine = Machine.intel_cpu) ?(n = 150) dag =
  let states = sample_programs ~seed:3 ~n dag in
  List.fold_left
    (fun acc st ->
      match Lower.lower st with
      | prog -> Float.min acc (Sim.estimate machine prog)
      | exception State.Illegal _ -> acc)
    infinity states

let test_scheduling_pays_everywhere () =
  (* on every §7.1 operator family, the best of 150 random samples beats
     the naive program by a solid factor *)
  List.iter
    (fun op ->
      let case = List.hd (Ansor.Workloads.op_cases ~op ~batch:1) in
      let naive = naive_cost case.dag in
      let best = best_sampled case.dag in
      check_bool
        (Printf.sprintf "%s: best sample %.3gms vs naive %.3gms" op
           (best *. 1e3) (naive *. 1e3))
        true
        (best *. 3.0 < naive))
    Ansor.Workloads.op_names

let test_fusion_pays_on_conv_layer () =
  (* same subgraph, fused (default rules) vs unfused (FlexTensor-like
     rules): the fused space's best must win, the paper's §7.2 point *)
  let dag =
    Nn.conv_layer ~n:1 ~c:32 ~h:28 ~w:28 ~f:32 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()
  in
  let best_with rules =
    let rng = Ansor.Rng.create 5 in
    let policy = Ansor.Policy.cpu ~workers:20 in
    let sketches = Ansor.Sketch_gen.generate ~rules dag in
    let states = Ansor.Sampler.sample rng policy dag ~sketches ~n:150 in
    List.fold_left
      (fun acc st ->
        match Lower.lower st with
        | prog -> Float.min acc (Sim.estimate Machine.intel_cpu prog)
        | exception State.Illegal _ -> acc)
      infinity states
  in
  let fused = best_with Ansor.Rules.default in
  let unfused =
    best_with
      (Ansor.Rules.make ~tiling:Ansor.Rules.default_tiling ~with_fusion:false
         ~with_cache:false ~with_rfactor:false)
  in
  check_bool
    (Printf.sprintf "fused %.3gms < unfused %.3gms" (fused *. 1e3)
       (unfused *. 1e3))
    true (fused < unfused)

let test_rfactor_pays_on_norm () =
  (* NRM: with rfactor the reduction parallelizes; without it the best
     program is far slower — the paper's headline NRM explanation *)
  let dag = Nn.matrix_norm ~m:512 ~n:512 () in
  let with_rf = best_sampled dag in
  let without =
    let rng = Ansor.Rng.create 6 in
    let policy = Ansor.Policy.cpu ~workers:20 in
    let rules = Ansor.Rules.limited ~fusion:true in
    let sketches = Ansor.Sketch_gen.generate ~rules dag in
    let states = Ansor.Sampler.sample rng policy dag ~sketches ~n:150 in
    List.fold_left
      (fun acc st -> Float.min acc (Sim.estimate Machine.intel_cpu (Lower.lower st)))
      infinity states
  in
  check_bool
    (Printf.sprintf "rfactor %.3gms, template %.3gms" (with_rf *. 1e3)
       (without *. 1e3))
    true
    (with_rf *. 3.0 < without)

let test_gpu_beats_cpu_on_heavy_ops () =
  let dag = Nn.batch_matmul ~b:16 ~m:256 ~n:256 ~k:256 () in
  let cpu = best_sampled ~machine:Machine.intel_cpu ~n:80 dag in
  let gpu = best_sampled ~machine:Machine.gpu ~n:80 dag in
  check_bool
    (Printf.sprintf "gpu %.3gms < cpu %.3gms" (gpu *. 1e3) (cpu *. 1e3))
    true (gpu < cpu)

let test_arm_slowest () =
  let dag = Nn.matmul ~m:128 ~n:128 ~k:128 () in
  let intel = best_sampled ~machine:Machine.intel_cpu ~n:60 dag in
  let arm = best_sampled ~machine:Machine.arm_cpu ~n:60 dag in
  check_bool "arm slower" true (arm > intel)

let test_batch_scales_cost () =
  let c1 = List.hd (Ansor.Workloads.op_cases ~op:"C2D" ~batch:1) in
  let c16 = List.hd (Ansor.Workloads.op_cases ~op:"C2D" ~batch:16) in
  let n1 = naive_cost c1.dag and n16 = naive_cost c16.dag in
  check_bool "batch 16 at least 8x the work" true (n16 > 8.0 *. n1)

let test_network_bottleneck_structure () =
  (* the task scheduler's premise: network tasks have a skewed cost
     distribution (a few tasks dominate) *)
  let net = Ansor.Workloads.resnet50 ~batch:1 in
  let costs =
    List.map
      (fun ((c : Ansor.Workloads.case), w) -> float_of_int w *. naive_cost c.dag)
      net.layers
  in
  let total = List.fold_left ( +. ) 0.0 costs in
  let top = List.fold_left Float.max 0.0 costs in
  check_bool "one task >= 15% of the naive total" true (top >= 0.15 *. total)

let () =
  Alcotest.run "landscape" ~and_exit:false
    [
      ( "cost landscape",
        [
          case "scheduling pays on all op families" test_scheduling_pays_everywhere;
          case "fusion pays on ConvLayer" test_fusion_pays_on_conv_layer;
          case "rfactor pays on NRM" test_rfactor_pays_on_norm;
          case "gpu beats cpu on heavy ops" test_gpu_beats_cpu_on_heavy_ops;
          case "arm slowest" test_arm_slowest;
          case "batch scales cost" test_batch_scales_cost;
          case "networks have bottlenecks" test_network_bottleneck_structure;
        ] );
    ]

(* ---------- roofline (appended suite) ---------- *)

let test_roofline_matmul () =
  (* big matmul: intensity grows with size, crossing the model's ridge *)
  let dag = Nn.matmul ~m:1024 ~n:1024 ~k:1024 () in
  let prog = Lower.lower (State.init dag) in
  let r = Ansor.Roofline.analyze Machine.intel_cpu prog in
  check_bool "flops about 2*1024^3" true
    (Float.abs ((r.flops /. (2.0 *. (1024.0 ** 3.0))) -. 1.0) < 0.05);
  check_bool "high intensity => compute bound" true
    (r.verdict = Ansor.Roofline.Compute_bound);
  check_bool "efficiency sane" true (r.efficiency > 0.0 && r.efficiency < 1.5)

let test_roofline_gemv_memory_bound () =
  (* matrix-vector: ~2 flops per 4 bytes of A — memory bound *)
  let dag = Nn.gemv ~m:2048 ~k:2048 () in
  let prog = Lower.lower (State.init dag) in
  let r = Ansor.Roofline.analyze Machine.intel_cpu prog in
  check_bool "low intensity => memory bound" true
    (r.verdict = Ansor.Roofline.Memory_bound)

let test_roofline_bandwidths () =
  List.iter
    (fun m ->
      let bw = Ansor.Roofline.dram_bandwidth m in
      check_bool (m.Machine.name ^ " bandwidth plausible") true
        (bw > 1e9 && bw < 1e13))
    Machine.all;
  check_bool "gpu bandwidth >> cpu" true
    (Ansor.Roofline.dram_bandwidth Machine.gpu
    > 5.0 *. Ansor.Roofline.dram_bandwidth Machine.intel_cpu)

let test_roofline_pp () =
  let dag = Nn.matmul ~m:64 ~n:64 ~k:64 () in
  let r = Ansor.Roofline.analyze Machine.intel_cpu (Lower.lower (State.init dag)) in
  let s = Format.asprintf "%a" Ansor.Roofline.pp r in
  check_bool "renders" true (String.length s > 20)

let () =
  Alcotest.run "roofline"
    [
      ( "roofline",
        [
          case "matmul compute-bound" test_roofline_matmul;
          case "gemv memory-bound" test_roofline_gemv_memory_bound;
          case "bandwidth ordering" test_roofline_bandwidths;
          case "pretty printing" test_roofline_pp;
        ] );
    ]
