(* Lowering + interpretation: scheduled programs must compute exactly the
   tensors of the naive program. These tests exercise each lowering
   mechanism (splits with index reconstruction, fusion via compute_at,
   fused-loop div/mod recovery, inlining, cache stages, rfactor) on small
   shapes where both sides can be executed. *)

open Helpers
module Step = Ansor.Step
module State = Ansor.State
module Prog = Ansor.Prog
module Lower = Ansor.Lower
module Interp = Ansor.Interp
module Nn = Ansor.Nn

let lower_replay dag steps = Lower.lower (State.replay dag steps)

(* ---------- naive lowering ---------- *)

let test_naive_matmul () =
  let dag = Nn.matmul ~m:4 ~n:4 ~k:4 () in
  let st = State.init dag in
  assert_state_correct st;
  let prog = Lower.lower st in
  check_int "one statement" 1 (Prog.num_stmts prog);
  Alcotest.(check (list (pair string (float 0.0)))) "reduction init"
    [ ("C", 0.0) ] prog.inits;
  check_int "buffers: A B C" 3 (List.length prog.buffers)

let test_naive_every_builtin () =
  List.iter
    (fun (name, dag) ->
      let st = Ansor.State.init dag in
      match Ansor.Interp.check_equivalent dag (Lower.lower st)
              ~inputs:(Interp.random_inputs (Ansor.Rng.create 3) dag)
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    [
      ("matmul_bias_relu", Nn.matmul_bias_relu ~m:4 ~n:4 ~k:4 ());
      ("conv2d", Nn.conv2d ~n:1 ~c:2 ~h:5 ~w:5 ~f:2 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
      ("softmax", Nn.softmax ~m:3 ~n:4 ());
      ("tbg", Nn.tbg ~b:2 ~m:3 ~n:3 ~k:4 ());
      ("norm", Nn.matrix_norm ~m:4 ~n:8 ());
    ]

(* ---------- split index reconstruction ---------- *)

let test_split_reconstruction () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  assert_state_correct
    (State.replay dag
       Step.
         [
           Split { stage = "C"; iv = 0; lengths = [ 2; 2; 2 ]; tbd = false };
           Split { stage = "C"; iv = 2; lengths = [ 4; 2 ]; tbd = false };
           Reorder { stage = "C"; order = [ 3; 6; 4; 7; 5; 1 ] };
         ])

let test_fuse_reconstruction () =
  (* fused loops need div/mod to recover the original axes *)
  let dag = Nn.matmul ~m:4 ~n:6 ~k:2 () in
  assert_state_correct
    (State.replay dag [ Step.Fuse { stage = "C"; ivs = [ 0; 1 ] } ])

let test_fuse_of_split_parts () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:4 () in
  assert_state_correct
    (State.replay dag
       Step.
         [
           Split { stage = "C"; iv = 0; lengths = [ 2; 4 ]; tbd = false };
           Split { stage = "C"; iv = 1; lengths = [ 4; 2 ]; tbd = false };
           Reorder { stage = "C"; order = [ 3; 5; 4; 6; 2 ] };
           Fuse { stage = "C"; ivs = [ 3; 5 ] };
         ])

(* ---------- annotations are semantically transparent ---------- *)

let test_annotations_transparent () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  assert_state_correct
    (State.replay dag
       Step.
         [
           Split { stage = "C"; iv = 0; lengths = [ 2; 4 ]; tbd = false };
           Annotate { stage = "C"; iv = 3; ann = Parallel };
           Annotate { stage = "C"; iv = 4; ann = Unroll };
           Annotate { stage = "C"; iv = 1; ann = Vectorize };
           Pragma_unroll { stage = "C"; max_step = 64 };
         ])

(* ---------- inline ---------- *)

let test_inline_chain () =
  (* bias_add inlined into relu: the lowered program has two statements
     (matmul + fused elementwise) and no buffer for D *)
  let dag = Nn.matmul_bias_relu ~m:4 ~n:4 ~k:4 () in
  let st = State.replay dag [ Step.Compute_inline { stage = "D" } ] in
  assert_state_correct st;
  let prog = Lower.lower st in
  check_int "two statements" 2 (Prog.num_stmts prog);
  check_bool "no buffer for inlined stage" false
    (List.mem_assoc "D" prog.buffers)

let test_inline_padding () =
  let dag = Nn.conv2d ~n:1 ~c:2 ~h:5 ~w:5 ~f:2 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  let st = State.replay dag [ Step.Compute_inline { stage = "Xpad" } ] in
  assert_state_correct st;
  let prog = Lower.lower st in
  check_bool "pad buffer gone" false (List.mem_assoc "Xpad" prog.buffers)

(* ---------- compute_at / fusion ---------- *)

let fused_steps =
  Step.
    [
      Split { stage = "D"; iv = 0; lengths = [ 4; 4 ]; tbd = false };
      Split { stage = "D"; iv = 1; lengths = [ 4; 4 ]; tbd = false };
      Reorder { stage = "D"; order = [ 2; 4; 3; 5 ] };
      Split { stage = "C"; iv = 0; lengths = [ 4; 4 ]; tbd = false };
      Split { stage = "C"; iv = 1; lengths = [ 4; 4 ]; tbd = false };
      Reorder { stage = "C"; order = [ 3; 5; 2; 4; 6 ] };
      Compute_at
        { stage = "C"; target = "D"; target_iv = 4; bindings = [ (3, 2); (5, 4) ] };
    ]

let test_fusion_structure () =
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let st = State.replay dag fused_steps in
  assert_state_correct st;
  let prog = Lower.lower st in
  (* bound loops are not emitted: C contributes i.1, j.1, k = 3 loops
     nested inside D's two outer tile loops *)
  let depths = ref [] in
  Prog.iter_stmts prog (fun loops stmt ->
      depths := (stmt.Prog.stage, List.length loops) :: !depths);
  Alcotest.(check (list (pair string int))) "loop depths"
    [ ("C", 5); ("D", 4) ]
    (List.rev !depths)

let test_fusion_partial_bindings () =
  (* binding only the first tile level: the producer computes a bigger
     tile, correctness must hold *)
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let steps =
    Step.
      [
        Split { stage = "D"; iv = 0; lengths = [ 4; 4 ]; tbd = false };
        Split { stage = "D"; iv = 1; lengths = [ 4; 4 ]; tbd = false };
        Reorder { stage = "D"; order = [ 2; 4; 3; 5 ] };
        Split { stage = "C"; iv = 0; lengths = [ 4; 4 ]; tbd = false };
        Split { stage = "C"; iv = 1; lengths = [ 4; 4 ]; tbd = false };
        Reorder { stage = "C"; order = [ 3; 5; 2; 4; 6 ] };
        Compute_at
          { stage = "C"; target = "D"; target_iv = 2; bindings = [ (3, 2) ] };
      ]
  in
  assert_state_correct (State.replay dag steps)

let test_fusion_detached () =
  (* no bindings: the producer runs completely at the top of the target *)
  let dag = Nn.matmul_relu ~m:8 ~n:8 ~k:8 () in
  let steps =
    Step.
      [
        Compute_at { stage = "C"; target = "D"; target_iv = 0; bindings = [] };
      ]
  in
  assert_state_correct (State.replay dag steps)

let test_recomputation_guard () =
  (* fusing the target's loops beyond the attach point would re-invoke the
     reduction producer; lowering must reject it *)
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let steps =
    fused_steps @ Step.[ Fuse { stage = "D"; ivs = [ 2; 4; 3; 5 ] } ]
  in
  let st = State.replay dag steps in
  match Lower.lower st with
  | _ -> Alcotest.fail "expected the recomputation guard to fire"
  | exception State.Illegal _ -> ()

let test_fusion_with_fused_parallel () =
  (* fusing exactly the bound tile loops is legal and common *)
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let steps =
    fused_steps
    @ Step.
        [
          Fuse { stage = "D"; ivs = [ 2; 4 ] };
          Annotate { stage = "D"; iv = 6; ann = Parallel };
        ]
  in
  assert_state_correct (State.replay dag steps)

(* ---------- cache write ---------- *)

let test_cache_write_numeric () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  let st = State.replay dag [ Step.Cache_write { stage = "C" } ] in
  (* verify against the ORIGINAL dag's semantics via output C *)
  assert_state_correct st

let test_cache_write_fused () =
  let dag = Nn.matmul ~m:16 ~n:16 ~k:16 () in
  let steps =
    Step.
      [
        Cache_write { stage = "C" };
        Split { stage = "C"; iv = 0; lengths = [ 4; 4 ]; tbd = false };
        Split { stage = "C"; iv = 1; lengths = [ 4; 4 ]; tbd = false };
        Reorder { stage = "C"; order = [ 2; 4; 3; 5 ] };
        Split { stage = "C.local"; iv = 0; lengths = [ 4; 4 ]; tbd = false };
        Split { stage = "C.local"; iv = 1; lengths = [ 4; 4 ]; tbd = false };
        Reorder { stage = "C.local"; order = [ 3; 5; 2; 4; 6 ] };
        Compute_at
          {
            stage = "C.local";
            target = "C";
            target_iv = 4;
            bindings = [ (3, 2); (5, 4) ];
          };
      ]
  in
  assert_state_correct (State.replay dag steps)

(* ---------- rfactor ---------- *)

let test_rfactor_numeric () =
  let dag = Nn.matrix_norm ~m:8 ~n:32 () in
  let st =
    State.replay dag
      [ Step.Rfactor { stage = "Sq"; iv = 1; lengths = [ 8; 4 ]; tbd = false } ]
  in
  assert_state_correct st

let test_rfactor_parallel_numeric () =
  (* the point of rfactor: the inner part becomes a parallelizable space
     axis of the partial-reduction stage *)
  let dag = Nn.matrix_norm ~m:8 ~n:32 () in
  let st =
    State.replay dag
      Step.
        [
          Rfactor { stage = "Sq"; iv = 1; lengths = [ 4; 8 ] ; tbd = false };
          (* the inner reduction part became space axis 0 of the rf stage *)
          Annotate { stage = "Sq.rf"; iv = 0; ann = Parallel };
        ]
  in
  assert_state_correct st

let test_rfactor_max_reduction () =
  (* rfactor distributes over max as well *)
  let dag = Nn.softmax ~m:4 ~n:32 () in
  let st =
    State.replay dag
      [ Step.Rfactor { stage = "Rowmax"; iv = 1; lengths = [ 8; 4 ]; tbd = false } ]
  in
  assert_state_correct st

(* ---------- interpreter details ---------- *)

let test_interp_bounds_check () =
  let dag = Nn.matmul ~m:4 ~n:4 ~k:4 () in
  let inputs = Interp.random_inputs (Ansor.Rng.create 1) dag in
  let bad = ("A", Array.make 3 0.0) :: List.remove_assoc "A" inputs in
  (match Interp.run_dag dag ~inputs:bad with
  | _ -> Alcotest.fail "expected size mismatch"
  | exception Interp.Runtime_error _ -> ());
  match Interp.run_dag dag ~inputs:(List.remove_assoc "A" inputs) with
  | _ -> Alcotest.fail "expected missing input"
  | exception Interp.Runtime_error _ -> ()

let test_max_abs_diff () =
  check_float "diff" 2.0 (Interp.max_abs_diff [| 1.0; 3.0 |] [| 1.0; 5.0 |]);
  match Interp.max_abs_diff [| 1.0 |] [| 1.0; 2.0 |] with
  | _ -> Alcotest.fail "expected length mismatch"
  | exception Interp.Runtime_error _ -> ()

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_prog_pp () =
  let dag = Nn.matmul ~m:4 ~n:4 ~k:4 () in
  let s = Prog.to_string (lower_replay dag []) in
  check_bool "mentions loops" true (contains_substring s "for C.i in range(4)");
  check_bool "mentions accumulate" true (contains_substring s "+=")

let () =
  Alcotest.run "lower_interp"
    [
      ( "naive",
        [
          case "matmul structure" test_naive_matmul;
          case "all builtin dags" test_naive_every_builtin;
        ] );
      ( "splits",
        [
          case "multi-way split" test_split_reconstruction;
          case "fused axes" test_fuse_reconstruction;
          case "fuse of split parts" test_fuse_of_split_parts;
          case "annotations transparent" test_annotations_transparent;
        ] );
      ( "inline",
        [ case "elementwise chain" test_inline_chain; case "padding" test_inline_padding ] );
      ( "fusion",
        [
          case "structure" test_fusion_structure;
          case "partial bindings" test_fusion_partial_bindings;
          case "detached producer" test_fusion_detached;
          case "recomputation guard" test_recomputation_guard;
          case "fused parallel consumer" test_fusion_with_fused_parallel;
        ] );
      ( "surgery",
        [
          case "cache write" test_cache_write_numeric;
          case "cache write fused" test_cache_write_fused;
          case "rfactor" test_rfactor_numeric;
          case "rfactor parallel" test_rfactor_parallel_numeric;
          case "rfactor over max" test_rfactor_max_reduction;
        ] );
      ( "interpreter",
        [
          case "bounds and input checks" test_interp_bounds_check;
          case "max_abs_diff" test_max_abs_diff;
          case "program pretty-printer" test_prog_pp;
        ] );
    ]
