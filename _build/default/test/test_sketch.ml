(* Sketch generation (Table 1 rules), random annotation, and the
   constrained replay that solves matched-tiling constraints. *)

open Helpers
module Step = Ansor.Step
module State = Ansor.State
module Rules = Ansor.Rules
module Gen = Ansor.Sketch_gen
module Annotate = Ansor.Annotate
module Sampler = Ansor.Sampler
module Policy = Ansor.Policy
module Nn = Ansor.Nn
module Rng = Ansor.Rng

let cpu_policy = Policy.cpu ~workers:20

let has_step pred st = List.exists pred (Gen.sketch_steps st)

let is_cache = function Step.Cache_write _ -> true | _ -> false
let is_rfactor = function Step.Rfactor _ -> true | _ -> false
let is_compute_at = function Step.Compute_at _ -> true | _ -> false
let is_inline = function Step.Compute_inline _ -> true | _ -> false

(* ---------- sketch generation ---------- *)

let test_matmul_relu_sketches () =
  (* data-reuse node with a fusible consumer: rule 4 fires exclusively,
     the cache rule does not apply, so 2 sketches remain (the 2 unroll...
     actually: fusion branch only; with no other branch points the DAG
     yields exactly the fused structure of Figure 5 sketch 1 plus the
     inline variants) *)
  let sketches = Gen.generate (Nn.matmul_relu ~m:16 ~n:16 ~k:16 ()) in
  check_bool "non-empty" true (sketches <> []);
  check_bool "all have fusion" true (List.for_all (has_step is_compute_at) sketches);
  check_bool "no cache stage" true
    (List.for_all (fun s -> not (has_step is_cache s)) sketches)

let test_plain_matmul_sketches () =
  (* output matmul without consumer: tiling-only branch + cache branch *)
  let sketches = Gen.generate (Nn.matmul ~m:16 ~n:16 ~k:16 ()) in
  check_bool "some sketch has a cache stage" true
    (List.exists (has_step is_cache) sketches);
  check_bool "some sketch has no cache stage" true
    (List.exists (fun s -> not (has_step is_cache s)) sketches);
  (* the cached sketch fuses the cache into the copy *)
  List.iter
    (fun s -> if has_step is_cache s then check_bool "cache fused" true (has_step is_compute_at s))
    sketches

let test_figure5_sketches () =
  (* input 2 of Figure 5: the enumeration must include both a cache-stage
     sketch (sketch 2) and an rfactor sketch (sketch 3) *)
  let sketches = Gen.generate (Nn.figure5_input2 ()) in
  check_bool "cache sketch exists" true (List.exists (has_step is_cache) sketches);
  check_bool "rfactor sketch exists" true (List.exists (has_step is_rfactor) sketches);
  (* B (relu) and C (padding) are always inlined *)
  check_bool "inlines everywhere" true
    (List.for_all
       (fun s ->
         List.length
           (List.filter is_inline (Gen.sketch_steps s))
         = 2)
       sketches)

let test_norm_sketches () =
  let sketches = Gen.generate (Nn.matrix_norm ~m:64 ~n:64 ()) in
  check_bool "rfactor branch" true (List.exists (has_step is_rfactor) sketches);
  check_bool "plain branch" true
    (List.exists (fun s -> not (has_step is_rfactor s)) sketches)

let test_conv_layer_sketches () =
  (* conv + bn + relu: bn inlined, conv fused into relu through it *)
  let dag = Nn.conv_layer ~n:1 ~c:4 ~h:8 ~w:8 ~f:8 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  let sketches = Gen.generate dag in
  check_bool "fusion through inlined bn" true
    (List.for_all
       (fun s ->
         List.exists
           (function
             | Step.Compute_at { stage = "Conv"; target = "Out"; _ } -> true
             | _ -> false)
           (Gen.sketch_steps s))
       sketches)

let test_sketch_tile_sizes_are_tbd () =
  let sketches = Gen.generate (Nn.matmul ~m:16 ~n:16 ~k:16 ()) in
  List.iter
    (fun s ->
      List.iter
        (function
          | Step.Split { tbd; _ } -> check_bool "split is tbd" true tbd
          | _ -> ())
        (Gen.sketch_steps s))
    sketches

let test_ssrsrs_structure () =
  (* the fused matmul sketch has the 10-level SSRSRS loop nest of §4.1 *)
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let sketches = Gen.generate dag in
  let sk = List.hd sketches in
  let c = State.find_stage sk "C" in
  check_int "C has 10 leaves (4+4 space, 2 reduce)" 10 (List.length c.leaves);
  let d = State.find_stage sk "D" in
  check_int "D has 6 leaves (3 per axis)" 6 (List.length d.leaves)

let test_limited_rules () =
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let sketches = Gen.generate ~rules:(Rules.limited ~fusion:true) dag in
  let sk = List.hd sketches in
  let c = State.find_stage sk "C" in
  (* 2-level space tiling: 2+2 space + 2 reduce leaves *)
  check_int "limited C leaves" 6 (List.length c.leaves);
  (* no-fusion rule set keeps stages separate *)
  let unfused =
    Gen.generate
      ~rules:
        (Rules.make ~tiling:Rules.default_tiling ~with_fusion:false
           ~with_cache:false ~with_rfactor:false)
      dag
  in
  check_bool "flextensor-like space has no compute_at" true
    (List.for_all (fun s -> not (has_step is_compute_at s)) unfused)

let test_max_sketches_cap () =
  let dag = Nn.figure5_input2 () in
  let sketches = Gen.generate ~max_sketches:2 dag in
  check_bool "capped" true (List.length sketches <= 2)

(* ---------- constrained replay ---------- *)

let test_fill_solves_consumer_splits () =
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let sk = List.hd (Gen.generate dag) in
  let rng = Rng.create 3 in
  match Annotate.replay_constrained dag (Gen.sketch_steps sk) ~fill:(Annotate.Random_fill rng) with
  | Error e -> Alcotest.failf "fill failed: %s" e
  | Ok st ->
    (* every bound pair must have equal extents *)
    let c = State.find_stage st "C" and d = State.find_stage st "D" in
    (match c.loc with
    | State.Loc_at { bindings; _ } ->
      List.iter
        (fun (mine, theirs) ->
          check_int "bound extents equal" (State.ivar c mine).extent
            (State.ivar d theirs).extent)
        bindings
    | _ -> Alcotest.fail "C not attached");
    (* and all splits concrete *)
    List.iter
      (function
        | Step.Split { tbd; _ } -> check_bool "concrete" false tbd
        | _ -> ())
      st.history

let test_keep_mode_adjusts_consumer () =
  (* mutate a producer tile size; Keep-mode replay must re-derive the
     consumer's split lengths *)
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let sk = List.hd (Gen.generate dag) in
  let rng = Rng.create 4 in
  let st =
    match Annotate.replay_constrained dag (Gen.sketch_steps sk) ~fill:(Annotate.Random_fill rng) with
    | Ok st -> st
    | Error e -> Alcotest.failf "fill failed: %s" e
  in
  match Annotate.replay_constrained dag st.history ~fill:Annotate.Keep with
  | Ok st2 ->
    check_string "idempotent reconcile" (Step.history_key st.history)
      (Step.history_key st2.State.history)
  | Error e -> Alcotest.failf "reconcile failed: %s" e

let test_fill_determinism () =
  let dag = Nn.matmul ~m:16 ~n:16 ~k:16 () in
  let sk = List.hd (Gen.generate dag) in
  let go seed =
    match
      Annotate.replay_constrained dag (Gen.sketch_steps sk)
        ~fill:(Annotate.Random_fill (Rng.create seed))
    with
    | Ok st -> Step.history_key st.State.history
    | Error e -> Alcotest.failf "fill failed: %s" e
  in
  check_string "same seed, same program" (go 7) (go 7)

(* ---------- sampler ---------- *)

let test_sampler_yields_programs () =
  let dag = Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let sketches = Gen.generate dag in
  let rng = Rng.create 5 in
  let progs = Sampler.sample rng cpu_policy dag ~sketches ~n:25 in
  check_int "25 samples" 25 (List.length progs);
  (* samples are diverse *)
  let keys = List.map (fun st -> Step.history_key st.State.history) progs in
  check_bool "diverse" true (List.length (List.sort_uniq compare keys) > 10)

let test_sampler_annotations_present () =
  let dag = Nn.matmul ~m:64 ~n:64 ~k:64 () in
  let sketches = Gen.generate dag in
  let rng = Rng.create 6 in
  let progs = Sampler.sample rng cpu_policy dag ~sketches ~n:20 in
  let has_parallel st =
    List.exists
      (function
        | Step.Annotate { ann = Step.Parallel; _ } -> true
        | _ -> false)
      st.State.history
  in
  check_bool "most samples parallelized" true
    (List.length (List.filter has_parallel progs) > 10)

let test_sampler_empty_sketches () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  check_bool "no sketches, no sample" true
    (Sampler.sample_one (Rng.create 1) cpu_policy dag ~sketches:[] = None)

(* ---------- policies ---------- *)

let test_policies () =
  let cpu = Policy.cpu ~workers:20 and gpu = Policy.gpu ~workers:640 in
  check_bool "gpu wants much more parallelism" true
    (gpu.parallel_target > 10 * cpu.parallel_target);
  check_floatish "gpu always vectorizes" 1.0 gpu.vectorize_prob;
  check_bool "kind dispatch" true
    (Policy.for_machine_kind `Cpu ~workers:4 = Policy.cpu ~workers:4
    && Policy.for_machine_kind `Gpu ~workers:8 = Policy.gpu ~workers:8)

let () =
  Alcotest.run "sketch"
    [
      ( "generation",
        [
          case "matmul+relu fuses" test_matmul_relu_sketches;
          case "plain matmul caches" test_plain_matmul_sketches;
          case "figure 5 input 2 branches" test_figure5_sketches;
          case "norm rfactor branch" test_norm_sketches;
          case "ConvLayer fusion through bn" test_conv_layer_sketches;
          case "tile sizes deferred" test_sketch_tile_sizes_are_tbd;
          case "SSRSRS structure" test_ssrsrs_structure;
          case "limited / unfused rule sets" test_limited_rules;
          case "sketch cap" test_max_sketches_cap;
        ] );
      ( "constrained replay",
        [
          case "fill solves consumer splits" test_fill_solves_consumer_splits;
          case "keep mode reconciles" test_keep_mode_adjusts_consumer;
          case "deterministic fill" test_fill_determinism;
        ] );
      ( "sampler",
        [
          case "yields programs" test_sampler_yields_programs;
          case "annotations present" test_sampler_annotations_present;
          case "empty sketches" test_sampler_empty_sketches;
        ] );
      ("policy", [ case "cpu vs gpu" test_policies ]);
    ]
