(* The learned cost model: training on measured programs, per-statement
   scoring, within-task normalization, and the ranking metrics of the
   Figure 3 experiment. *)

open Helpers
module Cost_model = Ansor.Cost_model
module State = Ansor.State
module Lower = Ansor.Lower
module Simulator = Ansor.Simulator
module Machine = Ansor.Machine
module Nn = Ansor.Nn

let programs_with_latencies ?(n = 60) dag =
  let states = sample_programs ~seed:5 ~n dag in
  List.map
    (fun st ->
      let prog = Lower.lower st in
      (prog, Simulator.estimate Machine.intel_cpu prog))
    states

let test_empty_model () =
  let m = Cost_model.empty in
  check_bool "untrained" false (Cost_model.is_trained m);
  check_int "no records" 0 (Cost_model.num_records_trained_on m);
  let dag = small_matmul_relu () in
  check_float "scores zero" 0.0 (Cost_model.score_prog m (Lower.lower (State.init dag)));
  check_bool "training on nothing stays empty" false
    (Cost_model.is_trained (Cost_model.train []))

let test_record_of_prog () =
  let dag = small_matmul_relu () in
  let prog = Lower.lower (State.init dag) in
  let r = Cost_model.record_of_prog ~task_key:"t" ~latency:0.5 prog in
  check_int "per-statement features" 2 (List.length r.Cost_model.features);
  match Cost_model.record_of_prog ~task_key:"t" ~latency:0.0 prog with
  | _ -> Alcotest.fail "expected error on zero latency"
  | exception Invalid_argument _ -> ()

let test_training_ranks_programs () =
  let dag = Ansor.Nn.matmul ~m:64 ~n:64 ~k:64 () in
  let data = programs_with_latencies ~n:80 dag in
  let records =
    List.map
      (fun (prog, lat) -> Cost_model.record_of_prog ~task_key:"t" ~latency:lat prog)
      data
  in
  let model = Cost_model.train records in
  check_bool "trained" true (Cost_model.is_trained model);
  check_int "records counted" 80 (Cost_model.num_records_trained_on model);
  (* on the training distribution, ranking should beat chance comfortably *)
  let predicted = List.map (fun (p, _) -> Cost_model.score_prog model p) data in
  let actual = List.map (fun (_, l) -> 1.0 /. l) data in
  let acc = Cost_model.Metrics.pairwise_accuracy ~predicted ~actual in
  check_bool (Printf.sprintf "pairwise accuracy %.2f > 0.7" acc) true (acc > 0.7)

let test_cross_task_normalization () =
  (* one model serves two tasks of wildly different magnitudes: the
     throughput normalization keeps both in [0,1] *)
  let small = Ansor.Nn.matmul ~m:16 ~n:16 ~k:16 () in
  let large = Ansor.Nn.matmul ~m:128 ~n:128 ~k:128 () in
  let recs task_key dag =
    List.map
      (fun (p, l) -> Cost_model.record_of_prog ~task_key ~latency:l p)
      (programs_with_latencies ~n:30 dag)
  in
  let model = Cost_model.train (recs "small" small @ recs "large" large) in
  check_bool "trained on both" true (Cost_model.is_trained model);
  (* ranking within the large task still works *)
  let data = programs_with_latencies ~n:30 large in
  let predicted = List.map (fun (p, _) -> Cost_model.score_prog model p) data in
  let actual = List.map (fun (_, l) -> 1.0 /. l) data in
  let acc = Cost_model.Metrics.pairwise_accuracy ~predicted ~actual in
  check_bool (Printf.sprintf "cross-task accuracy %.2f > 0.65" acc) true (acc > 0.65)

let test_score_is_sum_of_statements () =
  let dag = small_matmul_relu () in
  let data = programs_with_latencies ~n:30 dag in
  let records =
    List.map (fun (p, l) -> Cost_model.record_of_prog ~task_key:"t" ~latency:l p) data
  in
  let model = Cost_model.train records in
  let prog = Lower.lower (State.init dag) in
  let features = Ansor.Features.of_prog prog in
  let stmts = Cost_model.score_stmts model features in
  check_int "per-statement scores" 2 (List.length stmts);
  check_floatish "sum" (List.fold_left ( +. ) 0.0 stmts)
    (Cost_model.score model features)

(* ---------- metrics ---------- *)

let test_pairwise_accuracy () =
  let actual = [ 3.0; 2.0; 1.0 ] in
  check_float "perfect" 1.0
    (Cost_model.Metrics.pairwise_accuracy ~predicted:[ 30.0; 20.0; 10.0 ] ~actual);
  check_float "inverted" 0.0
    (Cost_model.Metrics.pairwise_accuracy ~predicted:[ 1.0; 2.0; 3.0 ] ~actual);
  (* constant predictions get everything "wrong" but ties in actual are skipped *)
  check_float "ties skipped" 0.5
    (Cost_model.Metrics.pairwise_accuracy ~predicted:[ 0.0; 0.0 ] ~actual:[ 1.0; 1.0 ])

let test_recall_at_k () =
  let actual = [ 5.0; 4.0; 3.0; 2.0; 1.0 ] in
  check_float "perfect top-2" 1.0
    (Cost_model.Metrics.recall_at_k ~k:2 ~predicted:[ 9.; 8.; 0.; 0.; 0. ] ~actual);
  check_float "half top-2" 0.5
    (Cost_model.Metrics.recall_at_k ~k:2 ~predicted:[ 9.; 0.; 0.; 8.; 0. ] ~actual);
  check_float "none" 0.0
    (Cost_model.Metrics.recall_at_k ~k:1 ~predicted:[ 0.; 0.; 0.; 0.; 9. ] ~actual)

let test_figure3_shape () =
  (* masking statements from complete programs must degrade ranking toward
     chance — the qualitative claim of Figure 3 *)
  let dag = Nn.conv_layer ~n:1 ~c:8 ~h:14 ~w:14 ~f:8 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  let data = programs_with_latencies ~n:60 dag in
  let records =
    List.map (fun (p, l) -> Cost_model.record_of_prog ~task_key:"t" ~latency:l p) data
  in
  let model = Cost_model.train records in
  let actual = List.map (fun (_, l) -> 1.0 /. l) data in
  let complete =
    List.map (fun (p, _) -> Cost_model.score_prog model p) data
  in
  let masked =
    (* keep only the first statement's features: an "incomplete program" *)
    List.map
      (fun (p, _) ->
        match Ansor.Features.of_prog p with
        | f :: _ -> Cost_model.score model [ f ]
        | [] -> 0.0)
      data
  in
  let acc_complete = Cost_model.Metrics.pairwise_accuracy ~predicted:complete ~actual in
  let acc_masked = Cost_model.Metrics.pairwise_accuracy ~predicted:masked ~actual in
  (* with only three statements the degradation can be small; the full
     experiment (bench fig3) masks finer-grained; here only require that
     complete ranking is not clearly worse *)
  check_bool
    (Printf.sprintf "complete (%.2f) not clearly worse than masked (%.2f)"
       acc_complete acc_masked)
    true
    (acc_complete >= acc_masked -. 0.05)

let () =
  Alcotest.run "cost_model"
    [
      ( "model",
        [
          case "empty model" test_empty_model;
          case "record construction" test_record_of_prog;
          case "training ranks programs" test_training_ranks_programs;
          case "cross-task normalization" test_cross_task_normalization;
          case "score sums statements" test_score_is_sum_of_statements;
        ] );
      ( "metrics",
        [
          case "pairwise accuracy" test_pairwise_accuracy;
          case "recall@k" test_recall_at_k;
          case "figure-3 degradation" test_figure3_shape;
        ] );
    ]
