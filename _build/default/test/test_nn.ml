(* Numeric validation of the operator library: every constructor's naive
   evaluation is compared against an independent straight-loop reference
   implementation written here. *)

open Helpers
module Nn = Ansor.Nn
module Dag = Ansor.Dag
module Interp = Ansor.Interp
module Rng = Ansor.Rng

let run dag name inputs = List.assoc name (Interp.run_dag dag ~inputs)

let rand_tensor rng shape =
  Array.init (List.fold_left ( * ) 1 shape) (fun _ -> Rng.float rng 2.0 -. 1.0)

let assert_close msg a b =
  let d = Interp.max_abs_diff a b in
  if d > 1e-4 then Alcotest.failf "%s: max diff %g" msg d

let test_conv_out_dim () =
  check_int "same conv" 56
    (Nn.conv_out_dim 56 ~kernel:3 ~stride:1 ~pad:1 ~dilation:1);
  check_int "strided" 28
    (Nn.conv_out_dim 56 ~kernel:3 ~stride:2 ~pad:1 ~dilation:1);
  check_int "dilated" 56
    (Nn.conv_out_dim 56 ~kernel:3 ~stride:1 ~pad:2 ~dilation:2);
  check_int "valid 7x7" 1
    (Nn.conv_out_dim 7 ~kernel:7 ~stride:1 ~pad:0 ~dilation:1);
  Alcotest.check_raises "non-positive output"
    (Invalid_argument "Nn.conv_out_dim: non-positive output extent -1")
    (fun () -> ignore (Nn.conv_out_dim 2 ~kernel:4 ~stride:1 ~pad:0 ~dilation:1))

let test_matmul () =
  let m, n, k = (3, 4, 5) in
  let rng = Rng.create 1 in
  let a = rand_tensor rng [ m; k ] and b = rand_tensor rng [ k; n ] in
  let dag = Nn.matmul ~m ~n ~k () in
  let got = run dag "C" [ ("A", a); ("B", b) ] in
  let want = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      for l = 0 to k - 1 do
        want.((i * n) + j) <-
          want.((i * n) + j) +. (a.((i * k) + l) *. b.((l * n) + j))
      done
    done
  done;
  assert_close "matmul" want got

let test_batch_matmul () =
  let bs, m, n, k = (2, 3, 2, 4) in
  let rng = Rng.create 2 in
  let a = rand_tensor rng [ bs; m; k ] and b = rand_tensor rng [ bs; k; n ] in
  let dag = Nn.batch_matmul ~b:bs ~m ~n ~k () in
  let got = run dag "C" [ ("A", a); ("B", b) ] in
  let want = Array.make (bs * m * n) 0.0 in
  for bb = 0 to bs - 1 do
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        for l = 0 to k - 1 do
          want.((((bb * m) + i) * n) + j) <-
            want.((((bb * m) + i) * n) + j)
            +. (a.((((bb * m) + i) * k) + l) *. b.((((bb * k) + l) * n) + j))
        done
      done
    done
  done;
  assert_close "batch matmul" want got

let test_matmul_bias_relu () =
  let m, n, k = (2, 3, 4) in
  let rng = Rng.create 3 in
  let a = rand_tensor rng [ m; k ]
  and b = rand_tensor rng [ k; n ]
  and bias = rand_tensor rng [ n ] in
  let dag = Nn.matmul_bias_relu ~m ~n ~k () in
  let got = run dag "E" [ ("A", a); ("B", b); ("bias", bias) ] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref bias.(j) in
      for l = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + l) *. b.((l * n) + j))
      done;
      check_floatish "bias relu" (Float.max 0.0 !acc) got.((i * n) + j)
    done
  done

let reference_conv2d ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad ~dilation ~groups x wt =
  let ho = Nn.conv_out_dim h ~kernel:kh ~stride ~pad ~dilation in
  let wo = Nn.conv_out_dim w ~kernel:kw ~stride ~pad ~dilation in
  let cpg = c / groups and fpg = f / groups in
  let out = Array.make (n * f * ho * wo) 0.0 in
  for nn = 0 to n - 1 do
    for ff = 0 to f - 1 do
      for y = 0 to ho - 1 do
        for xx = 0 to wo - 1 do
          let acc = ref 0.0 in
          for rc = 0 to cpg - 1 do
            let ci = (ff / fpg * cpg) + rc in
            for ry = 0 to kh - 1 do
              for rx = 0 to kw - 1 do
                let sy = (y * stride) + (ry * dilation) - pad in
                let sx = (xx * stride) + (rx * dilation) - pad in
                if sy >= 0 && sy < h && sx >= 0 && sx < w then
                  acc :=
                    !acc
                    +. x.((((((nn * c) + ci) * h) + sy) * w) + sx)
                       *. wt.((((((ff * cpg) + rc) * kh) + ry) * kw) + rx)
              done
            done
          done;
          out.((((((nn * f) + ff) * ho) + y) * wo) + xx) <- !acc
        done
      done
    done
  done;
  out

let test_conv2d () =
  let n, c, h, w, f, kh, kw, stride, pad = (1, 3, 6, 6, 4, 3, 3, 1, 1) in
  let rng = Rng.create 4 in
  let x = rand_tensor rng [ n; c; h; w ] and wt = rand_tensor rng [ f; c; kh; kw ] in
  let dag = Nn.conv2d ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad () in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  let want =
    reference_conv2d ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad ~dilation:1 ~groups:1 x wt
  in
  assert_close "conv2d" want got

let test_conv2d_strided_nopad () =
  let n, c, h, w, f, kh, kw, stride, pad = (2, 2, 8, 8, 3, 3, 3, 2, 0) in
  let rng = Rng.create 5 in
  let x = rand_tensor rng [ n; c; h; w ] and wt = rand_tensor rng [ f; c; kh; kw ] in
  let dag = Nn.conv2d ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad () in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  let want =
    reference_conv2d ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad ~dilation:1 ~groups:1 x wt
  in
  assert_close "conv2d s2 p0" want got

let test_conv2d_dilated () =
  let n, c, h, w, f, kh, kw = (1, 2, 8, 8, 2, 3, 3) in
  let rng = Rng.create 6 in
  let x = rand_tensor rng [ n; c; h; w ] and wt = rand_tensor rng [ f; c; kh; kw ] in
  let dag = Nn.conv2d ~dilation:2 ~n ~c ~h ~w ~f ~kh ~kw ~stride:1 ~pad:2 () in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  let want =
    reference_conv2d ~n ~c ~h ~w ~f ~kh ~kw ~stride:1 ~pad:2 ~dilation:2 ~groups:1 x wt
  in
  assert_close "dilated conv2d" want got

let test_conv2d_grouped () =
  let n, c, h, w, f, kh, kw, groups = (1, 4, 6, 6, 4, 3, 3, 2) in
  let rng = Rng.create 7 in
  let x = rand_tensor rng [ n; c; h; w ]
  and wt = rand_tensor rng [ f; c / groups; kh; kw ] in
  let dag = Nn.conv2d ~groups ~n ~c ~h ~w ~f ~kh ~kw ~stride:1 ~pad:1 () in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  let want =
    reference_conv2d ~n ~c ~h ~w ~f ~kh ~kw ~stride:1 ~pad:1 ~dilation:1 ~groups x wt
  in
  assert_close "grouped conv2d" want got;
  Alcotest.check_raises "bad groups"
    (Invalid_argument "Nn.conv2d: channels not divisible by groups") (fun () ->
      ignore (Nn.conv2d ~groups:3 ~n ~c ~h ~w ~f ~kh ~kw ~stride:1 ~pad:1 ()))

let test_depthwise () =
  let n, c, h, w, kh, kw, stride, pad = (1, 3, 6, 6, 3, 3, 1, 1) in
  let rng = Rng.create 8 in
  let x = rand_tensor rng [ n; c; h; w ] and wt = rand_tensor rng [ c; kh; kw ] in
  let dag = Nn.depthwise_conv2d ~n ~c ~h ~w ~kh ~kw ~stride ~pad () in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  let ho = h and wo = w in
  let want = Array.make (n * c * ho * wo) 0.0 in
  for nn = 0 to n - 1 do
    for cc = 0 to c - 1 do
      for y = 0 to ho - 1 do
        for xx = 0 to wo - 1 do
          let acc = ref 0.0 in
          for ry = 0 to kh - 1 do
            for rx = 0 to kw - 1 do
              let sy = y + ry - pad and sx = xx + rx - pad in
              if sy >= 0 && sy < h && sx >= 0 && sx < w then
                acc :=
                  !acc
                  +. x.((((((nn * c) + cc) * h) + sy) * w) + sx)
                     *. wt.((((cc * kh) + ry) * kw) + rx)
            done
          done;
          want.((((((nn * c) + cc) * ho) + y) * wo) + xx) <- !acc
        done
      done
    done
  done;
  assert_close "depthwise" want got

let test_conv2d_transposed () =
  let n, c, h, w, f, kh, kw, stride, pad = (1, 2, 4, 4, 2, 4, 4, 2, 1) in
  let rng = Rng.create 9 in
  let x = rand_tensor rng [ n; c; h; w ] and wt = rand_tensor rng [ c; f; kh; kw ] in
  let dag = Nn.conv2d_transposed ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad () in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  let ho = ((h - 1) * stride) - (2 * pad) + kh in
  let wo = ((w - 1) * stride) - (2 * pad) + kw in
  (* reference via scatter: every input pixel contributes a kernel patch *)
  let want = Array.make (n * f * ho * wo) 0.0 in
  for nn = 0 to n - 1 do
    for cc = 0 to c - 1 do
      for sy = 0 to h - 1 do
        for sx = 0 to w - 1 do
          for ff = 0 to f - 1 do
            for ry = 0 to kh - 1 do
              for rx = 0 to kw - 1 do
                let y = (sy * stride) + ry - pad and xx = (sx * stride) + rx - pad in
                if y >= 0 && y < ho && xx >= 0 && xx < wo then begin
                  let i = (((((nn * f) + ff) * ho) + y) * wo) + xx in
                  want.(i) <-
                    want.(i)
                    +. x.((((((nn * c) + cc) * h) + sy) * w) + sx)
                       *. wt.((((((cc * f) + ff) * kh) + ry) * kw) + rx)
                end
              done
            done
          done
        done
      done
    done
  done;
  assert_close "transposed conv2d" want got

let test_conv1d () =
  let n, c, l, f, k, stride, pad = (1, 2, 8, 3, 3, 1, 1) in
  let rng = Rng.create 10 in
  let x = rand_tensor rng [ n; c; l ] and wt = rand_tensor rng [ f; c; k ] in
  let dag = Nn.conv1d ~n ~c ~l ~f ~k ~stride ~pad () in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  let lo = l in
  let want = Array.make (n * f * lo) 0.0 in
  for nn = 0 to n - 1 do
    for ff = 0 to f - 1 do
      for p = 0 to lo - 1 do
        let acc = ref 0.0 in
        for rc = 0 to c - 1 do
          for rk = 0 to k - 1 do
            let s = p + rk - pad in
            if s >= 0 && s < l then
              acc :=
                !acc
                +. x.((((nn * c) + rc) * l) + s) *. wt.((((ff * c) + rc) * k) + rk)
          done
        done;
        want.((((nn * f) + ff) * lo) + p) <- !acc
      done
    done
  done;
  assert_close "conv1d" want got

let test_conv3d_shape_and_energy () =
  let dag =
    Nn.conv3d ~n:1 ~c:2 ~d:4 ~h:4 ~w:4 ~f:2 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()
  in
  let y = Dag.op dag (Dag.op_index dag "Y") in
  Alcotest.(check (list int)) "shape preserved" [ 1; 2; 4; 4; 4 ] (Ansor.Op.shape y);
  (* all-ones input and weights: interior voxels sum the full window *)
  let x = Array.make (2 * 4 * 4 * 4) 1.0 in
  let wt = Array.make (2 * 2 * 27) 1.0 in
  let got = run dag "Y" [ ("X", x); ("W", wt) ] in
  (* voxel (1,1,1) has a complete 3x3x3 window over 2 channels *)
  let idx = (((((0 * 2) + 0) * 4 + 1) * 4 + 1) * 4) + 1 in
  check_floatish "interior voxel" (2.0 *. 27.0) got.(idx)

let test_capsule_shape () =
  let dag =
    Nn.capsule_conv2d ~n:1 ~c:2 ~h:4 ~w:4 ~f:2 ~kh:3 ~kw:3 ~capsule:2 ~stride:1
      ~pad:1 ()
  in
  let y = Dag.op dag (Dag.op_index dag "Y") in
  Alcotest.(check (list int)) "capsule output shape" [ 1; 2; 4; 4; 2; 2 ]
    (Ansor.Op.shape y);
  (* capsule conv reduces over c * kh * kw * capsule *)
  check_int "reduce extent" (2 * 3 * 3 * 2) (Ansor.Op.reduce_extent y)

let test_matrix_norm () =
  let rng = Rng.create 11 in
  let a = rand_tensor rng [ 4; 6 ] in
  let dag = Nn.matrix_norm ~m:4 ~n:6 () in
  let got = run dag "Nrm" [ ("A", a) ] in
  let want = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a) in
  check_floatish "frobenius norm" want got.(0)

let test_conv_layer () =
  let n, c, h, w, f = (1, 2, 4, 4, 3) in
  let rng = Rng.create 12 in
  let x = rand_tensor rng [ n; c; h; w ] in
  let wt = rand_tensor rng [ f; c; 3; 3 ] in
  let scale = rand_tensor rng [ f ] in
  let shift = rand_tensor rng [ f ] in
  let dag = Nn.conv_layer ~n ~c ~h ~w ~f ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  let inputs = [ ("X", x); ("W", wt); ("scale", scale); ("shift", shift) ] in
  let got = run dag "Out" inputs in
  let conv =
    reference_conv2d ~n ~c ~h ~w ~f ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~dilation:1
      ~groups:1 x wt
  in
  Array.iteri
    (fun i v ->
      let ff = i / (h * w) mod f in
      let want = Float.max 0.0 ((conv.(i) *. scale.(ff)) +. shift.(ff)) in
      check_floatish "conv+bn+relu" want v)
    got

let test_tbg () =
  let b, m, n, k = (2, 3, 3, 4) in
  let rng = Rng.create 13 in
  let q = rand_tensor rng [ m; b; k ] and kk = rand_tensor rng [ n; b; k ] in
  let dag = Nn.tbg ~b ~m ~n ~k () in
  let got = run dag "Y" [ ("Q", q); ("K", kk) ] in
  for bb = 0 to b - 1 do
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0.0 in
        for l = 0 to k - 1 do
          acc :=
            !acc +. (q.((((i * b) + bb) * k) + l) *. kk.((((j * b) + bb) * k) + l))
        done;
        check_floatish "tbg" !acc got.((((bb * m) + i) * n) + j)
      done
    done
  done

let test_softmax () =
  let m, n = (3, 5) in
  let rng = Rng.create 14 in
  let x = rand_tensor rng [ m; n ] in
  let dag = Nn.softmax ~m ~n () in
  let got = run dag "Y" [ ("X", x) ] in
  for i = 0 to m - 1 do
    let row = Array.sub x (i * n) n in
    let mx = Array.fold_left Float.max Float.neg_infinity row in
    let exps = Array.map (fun v -> exp (v -. mx)) row in
    let sum = Array.fold_left ( +. ) 0.0 exps in
    Array.iteri
      (fun j e -> check_floatish "softmax" (e /. sum) got.((i * n) + j))
      exps;
    (* rows sum to one *)
    let rowsum = ref 0.0 in
    for j = 0 to n - 1 do
      rowsum := !rowsum +. got.((i * n) + j)
    done;
    check_floatish "row sums to 1" 1.0 !rowsum
  done

let test_relu_of () =
  let dag = Nn.relu_of (Nn.matmul ~m:2 ~n:2 ~k:2 ()) in
  check_bool "appended" true
    (match Dag.op_index dag "C_relu" with _ -> true | exception Not_found -> false);
  let rng = Rng.create 15 in
  let a = rand_tensor rng [ 2; 2 ] and b = rand_tensor rng [ 2; 2 ] in
  let c = run dag "C" [ ("A", a); ("B", b) ] in
  let r = run dag "C_relu" [ ("A", a); ("B", b) ] in
  Array.iteri (fun i v -> check_floatish "relu" (Float.max 0.0 c.(i)) v) r

let test_figure5_input2_numeric () =
  let dag = Nn.figure5_input2 () in
  let rng = Rng.create 16 in
  let a = rand_tensor rng [ 8; 400 ] and d = rand_tensor rng [ 512; 4 ] in
  let got = run dag "E" [ ("A", a); ("D", d) ] in
  for i = 0 to 7 do
    for j = 0 to 3 do
      let acc = ref 0.0 in
      for k = 0 to 511 do
        let c = if k < 400 then Float.max 0.0 a.((i * 400) + k) else 0.0 in
        acc := !acc +. (c *. d.((k * 4) + j))
      done;
      check_floatish "figure5 E" !acc got.((i * 4) + j)
    done
  done

let () =
  Alcotest.run "nn" ~and_exit:false
    [
      ( "geometry",
        [ case "conv_out_dim" test_conv_out_dim ] );
      ( "dense",
        [
          case "matmul" test_matmul;
          case "batch matmul" test_batch_matmul;
          case "matmul+bias+relu" test_matmul_bias_relu;
        ] );
      ( "convolution",
        [
          case "conv2d same" test_conv2d;
          case "conv2d strided, no pad" test_conv2d_strided_nopad;
          case "conv2d dilated (DIL)" test_conv2d_dilated;
          case "conv2d grouped (GRP)" test_conv2d_grouped;
          case "depthwise (DEP)" test_depthwise;
          case "transposed (T2D)" test_conv2d_transposed;
          case "conv1d (C1D)" test_conv1d;
          case "conv3d (C3D)" test_conv3d_shape_and_energy;
          case "capsule (CAP)" test_capsule_shape;
        ] );
      ( "other",
        [
          case "matrix 2-norm (NRM)" test_matrix_norm;
          case "ConvLayer subgraph" test_conv_layer;
          case "TBG subgraph" test_tbg;
          case "softmax" test_softmax;
          case "relu_of" test_relu_of;
          case "figure 5 input 2" test_figure5_input2_numeric;
        ] );
    ]

(* ---------- extended operators (appended suite) ---------- *)

let test_max_pool () =
  let n, c, h, w, k, stride = (1, 2, 6, 6, 2, 2) in
  let rng = Rng.create 20 in
  let x = rand_tensor rng [ n; c; h; w ] in
  let dag = Nn.max_pool2d ~n ~c ~h ~w ~k ~stride () in
  let got = run dag "Y" [ ("X", x) ] in
  let ho = 3 and wo = 3 in
  for cc = 0 to c - 1 do
    for y = 0 to ho - 1 do
      for xx = 0 to wo - 1 do
        let best = ref Float.neg_infinity in
        for ry = 0 to k - 1 do
          for rx = 0 to k - 1 do
            best :=
              Float.max !best
                x.((((cc * h) + (y * stride) + ry) * w) + (xx * stride) + rx)
          done
        done;
        check_floatish "max pool" !best got.((((cc * ho) + y) * wo) + xx)
      done
    done
  done

let test_avg_pool () =
  let dag = Nn.avg_pool2d ~n:1 ~c:1 ~h:4 ~w:4 ~k:2 ~stride:2 () in
  let x = Array.init 16 float_of_int in
  let got = run dag "Y" [ ("X", x) ] in
  (* top-left window: (0 + 1 + 4 + 5) / 4 *)
  check_floatish "avg pool" 2.5 got.(0)

let test_gemv () =
  let m, k = (4, 6) in
  let rng = Rng.create 21 in
  let a = rand_tensor rng [ m; k ] and x = rand_tensor rng [ k ] in
  let dag = Nn.gemv ~m ~k () in
  let got = run dag "Y" [ ("A", a); ("X", x) ] in
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    for l = 0 to k - 1 do
      acc := !acc +. (a.((i * k) + l) *. x.(l))
    done;
    check_floatish "gemv" !acc got.(i)
  done

let test_layer_norm () =
  let m, n = (3, 8) in
  let rng = Rng.create 22 in
  let x = rand_tensor rng [ m; n ] in
  let gamma = Array.make n 1.0 and beta = Array.make n 0.0 in
  let dag = Nn.layer_norm ~m ~n () in
  let got = run dag "Y" [ ("X", x); ("gamma", gamma); ("beta", beta) ] in
  for i = 0 to m - 1 do
    let row = Array.sub x (i * n) n in
    let mean = Array.fold_left ( +. ) 0.0 row /. float_of_int n in
    let var =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 row
      /. float_of_int n
    in
    Array.iteri
      (fun j v ->
        check_floatish "layer norm"
          ((v -. mean) /. sqrt (var +. 1e-5))
          got.((i * n) + j))
      row;
    (* normalized rows have ~zero mean *)
    let s = ref 0.0 in
    for j = 0 to n - 1 do
      s := !s +. got.((i * n) + j)
    done;
    check_bool "row mean ~ 0" true (Float.abs !s < 1e-3)
  done

let test_extended_ops_schedulable () =
  (* the new operators participate fully in the pipeline: sample and
     verify a few programs for each *)
  List.iter
    (fun (name, dag) ->
      let rng = Ansor.Rng.create 30 in
      let policy = Ansor.Policy.cpu ~workers:20 in
      let sketches = Ansor.Sketch_gen.generate dag in
      let states = Ansor.Sampler.sample rng policy dag ~sketches ~n:5 in
      check_bool (name ^ " sampled") true (states <> []);
      List.iter
        (fun st ->
          let inputs = Interp.random_inputs (Rng.create 31) dag in
          match Interp.check_equivalent dag (Ansor.Lower.lower st) ~inputs with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" name e)
        states)
    [
      ("max_pool", Nn.max_pool2d ~n:1 ~c:4 ~h:8 ~w:8 ~k:2 ~stride:2 ());
      ("avg_pool", Nn.avg_pool2d ~n:1 ~c:4 ~h:8 ~w:8 ~k:2 ~stride:2 ());
      ("gemv", Nn.gemv ~m:16 ~k:64 ());
      ("layer_norm", Nn.layer_norm ~m:8 ~n:32 ());
    ]

let test_winograd () =
  let n, c, h, w, f = (2, 3, 8, 10, 4) in
  let rng = Rng.create 23 in
  let x = rand_tensor rng [ n; c; h; w ] and wt = rand_tensor rng [ f; c; 3; 3 ] in
  let wino = Nn.winograd_conv2d ~n ~c ~h ~w ~f () in
  let direct = Nn.conv2d ~n ~c ~h ~w ~f ~kh:3 ~kw:3 ~stride:1 ~pad:0 () in
  let out_w =
    run wino "Y" ([ ("X", x); ("W", wt) ] @ Nn.winograd_constants ())
  in
  let out_d = run direct "Y" [ ("X", x); ("W", wt) ] in
  assert_close "winograd == direct conv" out_d out_w;
  (* shape validation *)
  Alcotest.check_raises "odd output rejected"
    (Invalid_argument
       "Nn.winograd_conv2d: output extents must be positive and even")
    (fun () -> ignore (Nn.winograd_conv2d ~n:1 ~c:1 ~h:7 ~w:8 ~f:1 ()))

let test_winograd_schedulable () =
  let dag = Nn.winograd_conv2d ~n:1 ~c:2 ~h:6 ~w:6 ~f:2 () in
  let rng = Ansor.Rng.create 40 in
  let policy = Ansor.Policy.cpu ~workers:20 in
  let sketches = Ansor.Sketch_gen.generate dag in
  let states = Ansor.Sampler.sample rng policy dag ~sketches ~n:5 in
  check_bool "sampled" true (states <> []);
  let inputs =
    Interp.random_inputs (Rng.create 41) dag
    |> List.map (fun (n, d) ->
           match List.assoc_opt n (Nn.winograd_constants ()) with
           | Some exact -> (n, exact)
           | None -> (n, d))
  in
  List.iter
    (fun st ->
      match Interp.check_equivalent dag (Ansor.Lower.lower st) ~inputs with
      | Ok () -> ()
      | Error e -> Alcotest.failf "winograd schedule wrong: %s" e)
    states

let () =
  Alcotest.run "nn_extended"
    [
      ( "extended",
        [
          case "max pool" test_max_pool;
          case "avg pool" test_avg_pool;
          case "gemv" test_gemv;
          case "layer norm" test_layer_norm;
          case "new ops schedulable" test_extended_ops_schedulable;
          case "winograd == direct conv" test_winograd;
          case "winograd schedulable" test_winograd_schedulable;
        ] );
    ]
