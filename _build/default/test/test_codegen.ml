(* C code generation: differential testing against the interpreter.

   For several DAGs and both naive and randomly-scheduled programs, the
   emitted C is compiled with gcc and executed; its printed outputs must
   match the interpreter's within float tolerance.  This closes the loop
   from the schedule search down to real machine code. *)

open Helpers
module C = Ansor.Codegen_c
module State = Ansor.State
module Lower = Ansor.Lower
module Interp = Ansor.Interp
module Prog = Ansor.Prog

let have_gcc = lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

let require_gcc () =
  if not (Lazy.force have_gcc) then
    Alcotest.skip ()

(* compile + run a C translation unit; returns stdout lines as floats *)
let run_c source =
  let dir = Filename.temp_file "ansor_cg" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir "t.c" in
  let exe = Filename.concat dir "t" in
  let oc = open_out c_file in
  output_string oc source;
  close_out oc;
  let cmd =
    Printf.sprintf "gcc -O1 -o %s %s -lm 2> %s/cc.err"
      (Filename.quote exe) (Filename.quote c_file) (Filename.quote dir)
  in
  if Sys.command cmd <> 0 then begin
    let err =
      try
        let ic = open_in (Filename.concat dir "cc.err") in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with _ -> "?"
    in
    Alcotest.failf "gcc failed: %s" err
  end;
  let ic = Unix.open_process_in exe in
  let rec read acc =
    match input_line ic with
    | line -> read (float_of_string line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let values = read [] in
  ignore (Unix.close_process_in ic);
  (* best-effort cleanup *)
  List.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
    [ "t.c"; "t"; "cc.err" ];
  (try Unix.rmdir dir with _ -> ());
  values

let differential_check (st : State.t) =
  let dag = st.State.dag in
  let prog = Lower.lower st in
  let inputs = Interp.random_inputs (Ansor.Rng.create 77) dag in
  let reference = Interp.run_prog prog ~inputs in
  let c_values = run_c (C.emit_test_main prog ~inputs) in
  (* the C main prints non-input buffers in buffer order *)
  let input_names = List.map fst inputs in
  let expected =
    List.concat_map
      (fun (name, _) ->
        if List.mem name input_names then []
        else Array.to_list (List.assoc name reference))
      prog.buffers
  in
  check_int "same number of printed values" (List.length expected)
    (List.length c_values);
  List.iteri
    (fun i (want, got) ->
      if Float.abs (want -. got) > 1e-3 *. Float.max 1.0 (Float.abs want) then
        Alcotest.failf "value %d differs: interpreter %.9g, C %.9g" i want got)
    (List.combine expected c_values)

let test_naive name dag () =
  require_gcc ();
  ignore name;
  differential_check (State.init dag)

let test_scheduled name dag () =
  require_gcc ();
  ignore name;
  match sample_programs ~seed:13 ~n:2 dag with
  | [] -> Alcotest.fail "sampling failed"
  | states -> List.iter differential_check states

(* ---------- structural checks (no compiler needed) ---------- *)

let test_sanitize () =
  check_string "dots" "C_local" (C.sanitize "C.local");
  check_string "ats" "i_0_j_0" (C.sanitize "i.0@j.0");
  check_string "leading digit" "v3x" (C.sanitize "3x");
  check_string "empty" "v" (C.sanitize "")

let test_params_unique () =
  (* two buffers that sanitize identically must get distinct identifiers *)
  let dag = Ansor.Nn.matmul ~m:4 ~n:4 ~k:4 () in
  let st = State.replay dag [ Ansor.Step.Cache_write { stage = "C" } ] in
  let prog = Lower.lower st in
  let ids = List.map snd (C.params prog) in
  check_int "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_kernel_structure () =
  let dag = Ansor.Nn.matmul ~m:8 ~n:8 ~k:8 () in
  let st =
    State.replay dag
      Ansor.Step.
        [
          Annotate { stage = "C"; iv = 0; ann = Parallel };
          Annotate { stage = "C"; iv = 1; ann = Vectorize };
        ]
  in
  let src = C.emit_kernel (Lower.lower st) in
  check_bool "omp parallel" true (contains src "#pragma omp parallel for");
  check_bool "omp simd" true (contains src "#pragma omp simd");
  check_bool "floordiv helper" true (contains src "floordiv");
  check_bool "accumulation" true (contains src "+=");
  check_bool "restrict params" true (contains src "float * restrict")

let test_max_reduction_emits_fmax () =
  let dag = Ansor.Nn.max_pool2d ~n:1 ~c:2 ~h:4 ~w:4 ~k:2 ~stride:2 () in
  let src = C.emit_kernel (Lower.lower (State.init dag)) in
  check_bool "fmaxf update" true (contains src "= fmaxf(");
  check_bool "-INFINITY init" true (contains src "-INFINITY")

let () =
  Alcotest.run "codegen" ~and_exit:false
    [
      ( "structure",
        [
          case "identifier sanitization" test_sanitize;
          case "unique parameters" test_params_unique;
          case "kernel structure" test_kernel_structure;
          case "max reduction" test_max_reduction_emits_fmax;
        ] );
      ( "differential vs interpreter (gcc)",
        [
          case "naive matmul+relu" (test_naive "mm" (Ansor.Nn.matmul_relu ~m:8 ~n:8 ~k:8 ()));
          case "naive conv2d (padding select)"
            (test_naive "conv"
               (Ansor.Nn.conv2d ~n:1 ~c:2 ~h:5 ~w:5 ~f:2 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()));
          case "naive transposed conv (floor div/mod)"
            (test_naive "t2d"
               (Ansor.Nn.conv2d_transposed ~n:1 ~c:2 ~h:4 ~w:4 ~f:2 ~kh:4 ~kw:4
                  ~stride:2 ~pad:1 ()));
          case "naive softmax (math calls)"
            (test_naive "softmax" (Ansor.Nn.softmax ~m:3 ~n:5 ()));
          case "scheduled matmul+relu (fusion, fused loops)"
            (test_scheduled "mm" (Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 ()));
          case "scheduled norm (rfactor)"
            (test_scheduled "nrm" (Ansor.Nn.matrix_norm ~m:8 ~n:32 ()));
          case "scheduled conv layer"
            (test_scheduled "cl"
               (Ansor.Nn.conv_layer ~n:1 ~c:4 ~h:6 ~w:6 ~f:4 ~kh:3 ~kw:3
                  ~stride:1 ~pad:1 ()));
        ] );
    ]

(* ---------- network deployment (appended suite) ---------- *)

let test_deploy_plan_and_emit () =
  let machine = Ansor.Machine.intel_cpu in
  let subgraphs =
    [
      ("layer.a", Ansor.Nn.matmul ~m:16 ~n:16 ~k:16 ());
      ("layer.b", Ansor.Nn.matmul ~m:16 ~n:32 ~k:16 ());
    ]
  in
  (* tune the first subgraph and record it; leave the second untuned *)
  let task =
    Ansor.Task.create ~name:"layer.a" ~machine (List.assoc "layer.a" subgraphs)
  in
  let tuner, _ = Ansor.Tuner.tune ~seed:31 Ansor.Tuner.ansor_options ~trials:48 task in
  let records =
    match Ansor.Record.entry_of_tuner tuner with
    | Some e -> [ e ]
    | None -> []
  in
  let plan = Ansor.Deploy.plan ~machine ~records subgraphs in
  check_int "two kernels" 2 (List.length plan);
  (match plan with
  | [ (a, _); (b, _) ] ->
    check_bool "first tuned" true a.Ansor.Deploy.tuned;
    check_bool "second is a fallback" false b.Ansor.Deploy.tuned;
    check_bool "names distinct" true (a.kernel_name <> b.kernel_name)
  | _ -> Alcotest.fail "unexpected plan");
  let src = Ansor.Deploy.emit ~machine ~records subgraphs in
  check_bool "one helper block only" true
    (let count_marker marker =
       let rec go i acc =
         if i + String.length marker > String.length src then acc
         else if String.sub src i (String.length marker) = marker then
           go (i + 1) (acc + 1)
         else go (i + 1) acc
       in
       go 0 0
     in
     count_marker "static inline int floordiv" = 1);
  check_bool "both kernels present" true
    (contains src "void layer_a(" && contains src "void layer_b(")

let test_deploy_compiles () =
  require_gcc ();
  let machine = Ansor.Machine.intel_cpu in
  let subgraphs =
    [
      ("conv", Ansor.Nn.conv2d ~n:1 ~c:2 ~h:5 ~w:5 ~f:2 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
      ("dense", Ansor.Nn.matmul ~m:8 ~n:8 ~k:8 ());
    ]
  in
  let src = Ansor.Deploy.emit ~machine ~records:[] subgraphs in
  let dir = Filename.temp_file "ansor_deploy" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir "net.c" in
  let oc = open_out c_file in
  output_string oc src;
  close_out oc;
  let code =
    Sys.command
      (Printf.sprintf "gcc -c -O1 -o %s/net.o %s 2> %s/err"
         (Filename.quote dir) (Filename.quote c_file) (Filename.quote dir))
  in
  List.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
    [ "net.c"; "net.o"; "err" ];
  (try Unix.rmdir dir with _ -> ());
  check_int "compiles as a translation unit" 0 code

let () =
  Alcotest.run "codegen_deploy"
    [
      ( "deploy",
        [
          case "plan and emit" test_deploy_plan_and_emit;
          case "compiles with gcc" test_deploy_compiles;
        ] );
    ]
