open Helpers
module Expr = Ansor.Expr
module Op = Ansor.Op
module Dag = Ansor.Dag
module Nn = Ansor.Nn

(* ---------- Op ---------- *)

let test_compute_validation () =
  let body = Expr.const 0.0 in
  Alcotest.check_raises "reduce axes need kind"
    (Invalid_argument "Op.compute: reduction axes given without a reduce kind")
    (fun () ->
      ignore (Op.compute ~name:"X" ~axes:[ ("i", 4) ] ~reduce_axes:[ ("k", 2) ] body));
  Alcotest.check_raises "kind needs reduce axes"
    (Invalid_argument "Op.compute: reduce kind given without reduction axes")
    (fun () -> ignore (Op.compute ~name:"X" ~axes:[ ("i", 4) ] ~reduce:Op.Sum body));
  Alcotest.check_raises "duplicate axes"
    (Invalid_argument "Op.compute: duplicate axis names") (fun () ->
      ignore (Op.compute ~name:"X" ~axes:[ ("i", 4); ("i", 2) ] body));
  Alcotest.check_raises "non-positive extent"
    (Invalid_argument "Op.compute: axis i has extent 0") (fun () ->
      ignore (Op.compute ~name:"X" ~axes:[ ("i", 0) ] body))

let test_shapes () =
  let p = Op.placeholder ~name:"A" ~shape:[ 2; 3 ] in
  Alcotest.(check (list int)) "placeholder shape" [ 2; 3 ] (Op.shape p);
  check_int "elems" 6 (Op.output_elems p);
  let c =
    Op.compute ~name:"C" ~axes:[ ("i", 4); ("j", 5) ]
      ~reduce_axes:[ ("k", 7) ] ~reduce:Op.Sum (Expr.const 0.0)
  in
  Alcotest.(check (list int)) "compute shape" [ 4; 5 ] (Op.shape c);
  check_int "reduce extent" 7 (Op.reduce_extent c);
  (* scalar output *)
  let s =
    Op.compute ~name:"S" ~axes:[] ~reduce_axes:[ ("k", 3) ] ~reduce:Op.Sum
      (Expr.const 0.0)
  in
  Alcotest.(check (list int)) "scalar shape" [] (Op.shape s);
  check_int "scalar elems" 1 (Op.output_elems s)

let test_reduce_semantics () =
  check_float "sum init" 0.0 (Op.init_value Op.Sum);
  check_bool "max init" true (Op.init_value Op.Maximum = Float.neg_infinity);
  check_float "sum combine" 5.0 (Op.combine Op.Sum 2.0 3.0);
  check_float "max combine" 3.0 (Op.combine Op.Maximum 2.0 3.0)

let test_input_tensors () =
  let c =
    Op.compute ~name:"C" ~axes:[ ("i", 2) ]
      Expr.(access "A" [ axis "i" ] +: (access "B" [ axis "i" ] +: access "A" [ axis "i" ]))
  in
  Alcotest.(check (list string)) "dedup, order kept" [ "A"; "B" ]
    (Op.input_tensors c)

let test_flops () =
  (* matmul: 2 flops per (i,j,k) point (mul + accumulate) *)
  let dag = Nn.matmul ~m:4 ~n:5 ~k:6 () in
  let c = Dag.op dag (Dag.op_index dag "C") in
  check_int "matmul flops" (4 * 5 * 6 * 2) (Op.flops c);
  check_int "dag flops" (4 * 5 * 6 * 2) (Dag.flops dag)

(* ---------- Dag construction ---------- *)

let test_toposort () =
  (* ops given out of order are sorted producer-first *)
  let a = Op.placeholder ~name:"A" ~shape:[ 4 ] in
  let b =
    Op.compute ~name:"B" ~axes:[ ("i", 4) ] Expr.(access "A" [ axis "i" ])
  in
  let c =
    Op.compute ~name:"C" ~axes:[ ("i", 4) ] Expr.(access "B" [ axis "i" ])
  in
  let dag = Dag.create [ c; b; a ] in
  Alcotest.(check (list string)) "topological order" [ "A"; "B"; "C" ]
    (Array.to_list (Array.map Op.name (Dag.ops dag)))

let test_dag_errors () =
  let a = Op.placeholder ~name:"A" ~shape:[ 4 ] in
  let dup = Op.placeholder ~name:"A" ~shape:[ 2 ] in
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Dag.create: duplicate operator name A") (fun () ->
      ignore (Dag.create [ a; dup ]));
  let dangling =
    Op.compute ~name:"B" ~axes:[ ("i", 4) ] Expr.(access "Z" [ axis "i" ])
  in
  Alcotest.check_raises "undefined tensor"
    (Invalid_argument "Dag.create: B reads undefined tensor Z") (fun () ->
      ignore (Dag.create [ a; dangling ]))

let test_cycle_detection () =
  let x =
    Op.compute ~name:"X" ~axes:[ ("i", 2) ] Expr.(access "Y" [ axis "i" ])
  in
  let y =
    Op.compute ~name:"Y" ~axes:[ ("i", 2) ] Expr.(access "X" [ axis "i" ])
  in
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.create: cycle in DAG")
    (fun () -> ignore (Dag.create [ x; y ]))

let test_edges () =
  let dag = Nn.matmul_relu ~m:4 ~n:4 ~k:4 () in
  let c = Dag.op_index dag "C" and d = Dag.op_index dag "D" in
  let a = Dag.op_index dag "A" in
  Alcotest.(check (list int)) "C consumers" [ d ] (Dag.consumers dag c);
  Alcotest.(check (list int)) "A consumers" [ c ] (Dag.consumers dag a);
  check_bool "C producers include A" true (List.mem a (Dag.producers dag c));
  Alcotest.(check (list int)) "outputs" [ d ] (Dag.outputs dag);
  check_bool "D is output" true (Dag.is_output dag d);
  check_bool "C is not output" false (Dag.is_output dag c)

let test_op_index () =
  let dag = Nn.matmul ~m:2 ~n:2 ~k:2 () in
  check_string "found" "C" (Op.name (Dag.op dag (Dag.op_index dag "C")));
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Dag.op_index dag "nope"))

let test_workload_key () =
  let d1 = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  let d2 = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  let d3 = Nn.matmul ~m:16 ~n:8 ~k:8 () in
  check_string "stable" (Dag.workload_key d1) (Dag.workload_key d2);
  check_bool "shape-sensitive" true
    (Dag.workload_key d1 <> Dag.workload_key d3)

(* ---------- Table 1 predicates ---------- *)

let test_strict_inlinable () =
  let dag = Nn.matmul_relu ~m:8 ~n:8 ~k:8 () in
  check_bool "relu inlinable" true
    (Dag.is_strict_inlinable dag (Dag.op_index dag "D"));
  check_bool "matmul not inlinable" false
    (Dag.is_strict_inlinable dag (Dag.op_index dag "C"));
  check_bool "placeholder not inlinable" false
    (Dag.is_strict_inlinable dag (Dag.op_index dag "A"))

let test_data_reuse () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  check_bool "matmul has reuse" true
    (Dag.has_data_reuse dag (Dag.op_index dag "C"));
  (* 2-norm: every space axis appears in the access, no reuse *)
  let nrm = Nn.matrix_norm ~m:8 ~n:64 () in
  check_bool "norm has no reuse" false
    (Dag.has_data_reuse nrm (Dag.op_index nrm "Sq"));
  (* depthwise: weight tensor misses the spatial axes *)
  let dep = Nn.depthwise_conv2d ~n:1 ~c:4 ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  check_bool "depthwise has reuse" true
    (Dag.has_data_reuse dep (Dag.op_index dep "Y"))

let test_fusible_consumer () =
  let dag = Nn.matmul_relu ~m:8 ~n:8 ~k:8 () in
  let c = Dag.op_index dag "C" in
  Alcotest.(check (option int)) "relu fuses into matmul"
    (Some (Dag.op_index dag "D"))
    (Dag.fusible_consumer dag c);
  (* softmax: Expd has two consumers -> not fusible *)
  let sm = Nn.softmax ~m:4 ~n:8 () in
  Alcotest.(check (option int)) "two consumers blocks fusion" None
    (Dag.fusible_consumer sm (Dag.op_index sm "Expd"));
  (* output has no consumer at all *)
  Alcotest.(check (option int)) "output" None
    (Dag.fusible_consumer dag (Dag.op_index dag "D"))

let test_fusible_requires_identity_access () =
  (* a transposing consumer is not fusible *)
  let a = Op.placeholder ~name:"A" ~shape:[ 4; 4 ] in
  let b = Op.placeholder ~name:"B" ~shape:[ 4; 4 ] in
  let c =
    Op.compute ~name:"C"
      ~axes:[ ("i", 4); ("j", 4) ]
      ~reduce_axes:[ ("k", 4) ] ~reduce:Op.Sum
      Expr.(access "A" [ axis "i"; axis "k" ] *: access "B" [ axis "k"; axis "j" ])
  in
  let t =
    Op.compute ~name:"T"
      ~axes:[ ("i", 4); ("j", 4) ]
      Expr.(access "C" [ axis "j"; axis "i" ])
  in
  let dag = Dag.create [ a; b; c; t ] in
  Alcotest.(check (option int)) "transpose consumer not fusible" None
    (Dag.fusible_consumer dag (Dag.op_index dag "C"))

let test_more_reduction_parallel () =
  let nrm = Nn.matrix_norm ~m:64 ~n:64 () in
  check_bool "norm wants rfactor" true
    (Dag.has_more_reduction_parallel nrm (Dag.op_index nrm "Sq"));
  let big = Nn.matmul ~m:512 ~n:512 ~k:16 () in
  check_bool "wide matmul does not" false
    (Dag.has_more_reduction_parallel big (Dag.op_index big "C"));
  (* figure 5 input 2: 8x4 output with k=512 qualifies *)
  let fig5 = Nn.figure5_input2 () in
  check_bool "tall-thin matmul does" true
    (Dag.has_more_reduction_parallel fig5 (Dag.op_index fig5 "E"))

let test_figure5_predicates () =
  let dag = Nn.figure5_input2 () in
  check_bool "B inlinable" true (Dag.is_strict_inlinable dag (Dag.op_index dag "B"));
  check_bool "C (padding) inlinable" true
    (Dag.is_strict_inlinable dag (Dag.op_index dag "C"));
  check_bool "E has reuse" true (Dag.has_data_reuse dag (Dag.op_index dag "E"));
  Alcotest.(check (list int)) "E is the only output"
    [ Dag.op_index dag "E" ] (Dag.outputs dag)

let () =
  Alcotest.run "op_dag"
    [
      ( "op",
        [
          case "compute validation" test_compute_validation;
          case "shapes" test_shapes;
          case "reduce semantics" test_reduce_semantics;
          case "input tensors" test_input_tensors;
          case "flops" test_flops;
        ] );
      ( "dag",
        [
          case "toposort" test_toposort;
          case "construction errors" test_dag_errors;
          case "cycle detection" test_cycle_detection;
          case "edges" test_edges;
          case "op_index" test_op_index;
          case "workload key" test_workload_key;
        ] );
      ( "predicates",
        [
          case "strict inlinable" test_strict_inlinable;
          case "data reuse" test_data_reuse;
          case "fusible consumer" test_fusible_consumer;
          case "fusion needs identity access" test_fusible_requires_identity_access;
          case "more reduction parallel" test_more_reduction_parallel;
          case "figure 5 input 2" test_figure5_predicates;
        ] );
    ]
