(* Evolutionary search: every operator produces verified programs that
   remain functionally equivalent to the naive computation. *)

open Helpers
module Step = Ansor.Step
module State = Ansor.State
module Evolution = Ansor.Evolution
module Cost_model = Ansor.Cost_model
module Lower = Ansor.Lower
module Simulator = Ansor.Simulator
module Machine = Ansor.Machine
module Policy = Ansor.Policy
module Rng = Ansor.Rng

let cpu_policy = Policy.cpu ~workers:20

let test_node_of_stage () =
  check_string "plain" "C" (Evolution.node_of_stage "C");
  check_string "cache" "C" (Evolution.node_of_stage "C.local");
  check_string "rfactor" "Sq" (Evolution.node_of_stage "Sq.rf");
  check_string "other dots kept" "Conv0.x" (Evolution.node_of_stage "Conv0.x")

let sampled dag seed n = sample_programs ~seed ~n dag

(* generic operator test: applied to a population of sampled programs, an
   operator either returns None or a program that is correct and distinct
   when it claims to have changed something *)
let operator_preserves_correctness name op dag =
  let rng = Rng.create 99 in
  let changed = ref 0 in
  List.iter
    (fun st ->
      match op rng dag st with
      | None -> ()
      | Some st' ->
        incr changed;
        assert_state_correct st')
    (sampled dag 21 12);
  check_bool (name ^ " produced at least one offspring") true (!changed > 0)

let test_tile_mutation_correct () =
  operator_preserves_correctness "tile mutation" Evolution.mutate_tile_sizes
    (Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 ())

let test_tile_mutation_preserves_extents () =
  let dag = Ansor.Nn.matmul ~m:16 ~n:16 ~k:16 () in
  let rng = Rng.create 5 in
  List.iter
    (fun st ->
      match Evolution.mutate_tile_sizes rng dag st with
      | None -> ()
      | Some st' ->
        (* split products still match loop lengths: for every stage, the
           product of leaf extents equals the stage's iteration space *)
        List.iter
          (fun name ->
            let s = State.find_stage st' name in
            let product =
              List.fold_left
                (fun acc iv -> acc * (State.ivar s iv).extent)
                1 s.leaves
            in
            let expect =
              Ansor.Op.output_elems s.op * Ansor.Op.reduce_extent s.op
            in
            check_int (name ^ " iteration space preserved") expect product)
          (State.stage_names st'))
    (sampled dag 22 10)

let test_annotation_mutation_correct () =
  operator_preserves_correctness "annotation mutation"
    Evolution.mutate_annotation
    (Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 ())

let test_pragma_mutation_correct () =
  operator_preserves_correctness "pragma mutation"
    (fun rng dag st -> Evolution.mutate_pragma rng cpu_policy dag st)
    (Ansor.Nn.matmul ~m:16 ~n:16 ~k:16 ())

let test_location_mutation_correct () =
  operator_preserves_correctness "location mutation" Evolution.mutate_location
    (Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 ())

let test_location_mutation_none_without_attachment () =
  (* programs without compute_at have no location to mutate *)
  let dag = Ansor.Nn.matmul ~m:16 ~n:16 ~k:16 () in
  let rng = Rng.create 7 in
  let plain = State.init dag in
  check_bool "no attachment, no mutation" true
    (Evolution.mutate_location rng dag plain = None)

let test_crossover_correct () =
  let dag = Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let rng = Rng.create 31 in
  let pop = Array.of_list (sampled dag 23 12) in
  let produced = ref 0 in
  for i = 0 to Array.length pop - 2 do
    match
      Evolution.crossover rng ~greedy_node_prob:0.5 dag
        ~model:Cost_model.empty pop.(i)
        pop.(i + 1)
    with
    | None -> ()
    | Some child ->
      incr produced;
      assert_state_correct child
  done;
  check_bool "some crossovers verified" true (!produced > 0)

let test_crossover_mixes_genes () =
  (* with greedy_node_prob 0 the node choice is random; across many tries
     a child differing from both parents should appear *)
  let dag = Ansor.Nn.matmul_relu ~m:16 ~n:16 ~k:16 () in
  let rng = Rng.create 32 in
  match sampled dag 24 2 with
  | [ a; b ] ->
    let ka = Step.history_key a.State.history
    and kb = Step.history_key b.State.history in
    let mixed = ref false in
    for _ = 1 to 30 do
      match
        Evolution.crossover rng ~greedy_node_prob:0.0 dag
          ~model:Cost_model.empty a b
      with
      | Some c ->
        let kc = Step.history_key c.State.history in
        if kc <> ka && kc <> kb then mixed := true
      | None -> ()
    done;
    check_bool "offspring differs from both parents" true !mixed
  | _ -> Alcotest.fail "sampling failed"

let test_evolve_returns_sorted_distinct () =
  let dag = Ansor.Nn.matmul ~m:32 ~n:32 ~k:32 () in
  let rng = Rng.create 41 in
  let init = sampled dag 25 16 in
  let config =
    { Evolution.default_config with population = 24; generations = 2 }
  in
  let out =
    Evolution.evolve rng config cpu_policy dag ~model:Cost_model.empty ~init
      ~out:8
  in
  check_bool "returns up to 8" true (List.length out <= 8 && out <> []);
  let fitnesses = List.map (fun (s : Evolution.scored) -> s.fitness) out in
  check_bool "sorted descending" true
    (List.sort (fun a b -> compare b a) fitnesses = fitnesses);
  let keys =
    List.map (fun (s : Evolution.scored) -> Step.history_key s.state.history) out
  in
  check_int "distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_evolve_improves_with_model () =
  (* train a model on measured samples; evolution guided by it should find
     programs whose true latency beats the best random sample *)
  let dag = Ansor.Nn.matmul ~m:128 ~n:128 ~k:128 () in
  let machine = Machine.intel_cpu in
  let init = sampled dag 26 40 in
  let latency st = Simulator.estimate machine (Lower.lower st) in
  let records =
    List.map
      (fun st ->
        Cost_model.record_of_prog ~task_key:"t" ~latency:(latency st)
          (Lower.lower st))
      init
  in
  let model = Cost_model.train records in
  let rng = Rng.create 43 in
  let config =
    { Evolution.default_config with population = 48; generations = 4 }
  in
  let out = Evolution.evolve rng config cpu_policy dag ~model ~init ~out:16 in
  let best_random =
    List.fold_left (fun acc st -> Float.min acc (latency st)) infinity init
  in
  let best_evolved =
    List.fold_left
      (fun acc (s : Evolution.scored) -> Float.min acc (latency s.state))
      infinity out
  in
  check_bool
    (Printf.sprintf "evolved %.4gms <= random %.4gms" (best_evolved *. 1e3)
       (best_random *. 1e3))
    true
    (best_evolved <= best_random *. 1.05)

let () =
  Alcotest.run "evolution"
    [
      ("naming", [ case "node_of_stage" test_node_of_stage ]);
      ( "mutations",
        [
          case "tile sizes correct" test_tile_mutation_correct;
          case "tile sizes preserve extents" test_tile_mutation_preserves_extents;
          case "annotation correct" test_annotation_mutation_correct;
          case "pragma correct" test_pragma_mutation_correct;
          case "location correct" test_location_mutation_correct;
          case "location needs attachment" test_location_mutation_none_without_attachment;
        ] );
      ( "crossover",
        [
          case "verified offspring" test_crossover_correct;
          case "mixes genes" test_crossover_mixes_genes;
        ] );
      ( "evolve",
        [
          case "sorted distinct output" test_evolve_returns_sorted_distinct;
          case "model-guided improvement" test_evolve_improves_with_model;
        ] );
    ]
