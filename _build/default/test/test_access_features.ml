(* Access-pattern analysis and Appendix-B feature extraction. *)

open Helpers
module Step = Ansor.Step
module State = Ansor.State
module Prog = Ansor.Prog
module Lower = Ansor.Lower
module Access = Ansor.Access
module Features = Ansor.Features
module Nn = Ansor.Nn

let analyze dag steps = Access.analyze (Lower.lower (State.replay dag steps))

let matmul_info () =
  match analyze (Nn.matmul ~m:8 ~n:16 ~k:4 ()) [] with
  | [ info ] -> info
  | _ -> Alcotest.fail "expected one statement"

let find_access (info : Access.stmt_info) tensor =
  List.find (fun (a : Access.access) -> String.equal a.tensor tensor)
    info.accesses

let test_stmt_info_basics () =
  let info = matmul_info () in
  check_int "loops" 3 (List.length info.loops);
  check_floatish "iters" (8.0 *. 16.0 *. 4.0) info.iters;
  (* output + A + B *)
  check_int "accesses" 3 (List.length info.accesses);
  check_bool "output first" true (List.hd info.accesses).is_write;
  (* matmul body: one mul, plus the reduction accumulate *)
  check_int "muls" 1 info.counts.float_mul;
  check_int "adds" 1 info.counts.float_add_sub

let test_strides () =
  (* loops are C.i (8), C.j (16), C.k (4); row-major tensors *)
  let info = matmul_info () in
  let a = find_access info "A" in
  (* A[i,k]: stride 4 along i, 0 along j, 1 along k *)
  Alcotest.(check (array int)) "A strides" [| 4; 0; 1 |] a.strides;
  let b = find_access info "B" in
  Alcotest.(check (array int)) "B strides" [| 0; 1; 16 |] b.strides;
  let c = find_access info "C" in
  Alcotest.(check (array int)) "C strides" [| 16; 1; 0 |] c.strides

let test_touched () =
  let info = matmul_info () in
  let a = find_access info "A" in
  (* whole statement: A touches 8*4 elements; inside j: still 4 per i *)
  check_floatish "A touched all" 32.0 a.touched.(0);
  check_floatish "A touched inside i" 4.0 a.touched.(1);
  check_floatish "A touched inside j" 4.0 a.touched.(2);
  check_floatish "A touched innermost" 1.0 a.touched.(3);
  let c = find_access info "C" in
  check_floatish "C untouched by k" 1.0 c.touched.(2)

let test_reuse_loop () =
  let info = matmul_info () in
  Alcotest.(check (option int)) "A reused across j" (Some 1)
    (find_access info "A").reuse_loop;
  Alcotest.(check (option int)) "B reused across i" (Some 0)
    (find_access info "B").reuse_loop;
  Alcotest.(check (option int)) "C reused across k" (Some 2)
    (find_access info "C").reuse_loop

let test_inner_stride_and_lines () =
  let info = matmul_info () in
  let a = find_access info "A" in
  check_int "A inner stride (k)" 1 a.inner_stride;
  let b = find_access info "B" in
  (* deepest moving loop of B is k with stride 16: poor locality *)
  check_int "B inner stride" 16 b.inner_stride;
  (* B touches 64 elements; with the j loop at stride 1 the whole region
     is contiguous: 64/16 lines *)
  check_floatish "B unique lines" 4.0 b.lines.(0)

let test_duplicate_access_count () =
  (* NRM squares A: A appears twice with identical indices *)
  let dag = Nn.matrix_norm ~m:4 ~n:8 () in
  let infos = analyze dag [] in
  let sq = List.hd infos in
  let a = find_access sq "A" in
  check_int "deduplicated with count" 2 a.count

let test_fused_loop_distinct_counting () =
  (* after fusing i and j, the fused loop moves A at coarse granularity:
     distinct-value sampling must see 8 rows, not 128 elements *)
  let dag = Nn.matmul ~m:8 ~n:16 ~k:4 () in
  let infos = analyze dag [ Step.Fuse { stage = "C"; ivs = [ 0; 1 ] } ] in
  let info = List.hd infos in
  let a = find_access info "A" in
  check_floatish "A whole-statement touched" 32.0 a.touched.(0)

let test_working_set () =
  let info = matmul_info () in
  (* at depth 0: A(32) + B(64) + C(128) elements * 4 bytes *)
  check_floatish "working set bytes" (4.0 *. (32.0 +. 64.0 +. 128.0))
    (Access.working_set info 0)

let test_select_zero_fraction_t2d () =
  let dag =
    Nn.conv2d_transposed ~n:1 ~c:2 ~h:4 ~w:4 ~f:2 ~kh:4 ~kw:4 ~stride:2 ~pad:1 ()
  in
  let infos = analyze dag [] in
  let y = List.find (fun (i : Access.stmt_info) -> i.stmt.stage = "Y") infos in
  match Access.select_zero_fraction y with
  | None -> Alcotest.fail "T2D statement should expose a zero-guard"
  | Some (vars, frac) ->
    (* stride-2 divisibility in two dimensions: roughly a quarter of the
       points contribute *)
    check_bool "fraction near 1/4" true (frac > 0.1 && frac < 0.45);
    check_bool "condition depends on some loops" true (vars <> [])

let test_select_fraction_absent () =
  let info = matmul_info () in
  check_bool "no guard on matmul" true
    (Access.select_zero_fraction info = None)

(* ---------- features ---------- *)

let test_feature_dimensions () =
  check_int "names match dim" Features.dim (Array.length Features.names);
  let dag = Nn.matmul_relu ~m:8 ~n:8 ~k:8 () in
  let vecs = Features.of_prog (Lower.lower (State.init dag)) in
  check_int "one vector per statement" 2 (List.length vecs);
  List.iter (fun v -> check_int "vector length" Features.dim (Array.length v)) vecs

let test_features_deterministic () =
  let dag = Nn.conv2d ~n:1 ~c:4 ~h:8 ~w:8 ~f:4 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  let v1 = Features.of_prog (Lower.lower (State.init dag)) in
  let v2 = Features.of_prog (Lower.lower (State.init dag)) in
  List.iter2
    (fun a b -> Alcotest.(check (array (float 0.0))) "deterministic" a b)
    v1 v2

let feature idx v = v.(idx)

let index_of name =
  let rec go i =
    if i >= Features.dim then Alcotest.failf "no feature %s" name
    else if String.equal Features.names.(i) name then i
    else go (i + 1)
  in
  go 0

let test_vectorize_features () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  let steps = [ Step.Annotate { stage = "C"; iv = 1; ann = Step.Vectorize } ] in
  let v = List.hd (Features.of_prog (Lower.lower (State.replay dag steps))) in
  let len = feature (index_of "vec.innermost_len") v in
  (* log2(1+8) *)
  check_floatish "vectorized length" (Float.log 9.0 /. Float.log 2.0) len;
  check_float "count" 1.0 (feature (index_of "vec.count") v);
  (* un-annotated groups show the "none" slot *)
  check_float "unroll none" 1.0 (feature (index_of "unroll.pos_none") v)

let test_parallel_features () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  let steps = [ Step.Annotate { stage = "C"; iv = 0; ann = Step.Parallel } ] in
  let v = List.hd (Features.of_prog (Lower.lower (State.replay dag steps))) in
  check_float "outer space position" 1.0
    (feature (index_of "parallel.pos_outer_space") v);
  check_bool "gpu slot carries parallel extent" true
    (feature (index_of "gpu.blockIdx_x") v > 0.0)

let test_buffer_features_present () =
  let info = matmul_info () in
  let v = Features.of_stmt_info info in
  (* three buffers used, two padded blocks of zeros *)
  check_float "buf0 is read+write or read" 1.0
    (feature (index_of "buf0.read") v +. feature (index_of "buf0.read_write") v);
  let base = index_of "buf3.read" in
  let block_zero =
    Array.for_all (fun i -> v.(i) = 0.0)
      (Array.init 18 (fun i -> base + i))
  in
  check_bool "fourth buffer block zero-padded" true block_zero

let test_output_buffer_is_read_write () =
  (* a reduction output is read-modify-write *)
  let info = matmul_info () in
  let v = Features.of_stmt_info info in
  (* C has the biggest touched region (128 elems) so it is buf0 *)
  check_float "buf0 read_write" 1.0 (feature (index_of "buf0.read_write") v)

let test_intensity_curve_monotonicity () =
  let info = matmul_info () in
  let v = Features.of_stmt_info info in
  let first = feature (index_of "intensity_curve.0") v in
  let last = feature (index_of "intensity_curve.9") v in
  (* matmul gets more intense with more loops included *)
  check_bool "curve grows" true (last >= first)

let test_pragma_feature () =
  let dag = Nn.matmul ~m:8 ~n:8 ~k:8 () in
  let steps = [ Step.Pragma_unroll { stage = "C"; max_step = 64 } ] in
  let v = List.hd (Features.of_prog (Lower.lower (State.replay dag steps))) in
  check_floatish "auto unroll recorded"
    (Float.log 65.0 /. Float.log 2.0)
    (feature (index_of "outer.auto_unroll") v)

let () =
  Alcotest.run "access_features"
    [
      ( "access",
        [
          case "statement info" test_stmt_info_basics;
          case "strides" test_strides;
          case "touched regions" test_touched;
          case "reuse loops" test_reuse_loop;
          case "inner stride and lines" test_inner_stride_and_lines;
          case "duplicate accesses" test_duplicate_access_count;
          case "fused-loop distinct counting" test_fused_loop_distinct_counting;
          case "working set" test_working_set;
          case "T2D zero-guard fraction" test_select_zero_fraction_t2d;
          case "no guard on matmul" test_select_fraction_absent;
        ] );
      ( "features",
        [
          case "dimensions" test_feature_dimensions;
          case "deterministic" test_features_deterministic;
          case "vectorization group" test_vectorize_features;
          case "parallel group" test_parallel_features;
          case "buffer blocks" test_buffer_features_present;
          case "reduction output read+write" test_output_buffer_is_read_write;
          case "intensity curve" test_intensity_curve_monotonicity;
          case "auto-unroll pragma" test_pragma_feature;
        ] );
    ]
