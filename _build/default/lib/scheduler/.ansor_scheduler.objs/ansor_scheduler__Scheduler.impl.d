lib/scheduler/scheduler.ml: Ansor_machine Ansor_search Ansor_util Array Float Fun List String
