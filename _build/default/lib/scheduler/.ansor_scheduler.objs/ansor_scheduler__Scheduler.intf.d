lib/scheduler/scheduler.mli: Ansor_sched Ansor_search
