lib/baselines/baselines.mli: Ansor_sched Ansor_search State
