lib/baselines/baselines.ml: Ansor_machine Ansor_sched Ansor_search Ansor_sketch Ansor_te Ansor_util Array Hashtbl List Lower Option State
