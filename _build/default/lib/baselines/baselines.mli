(** Baseline systems for the evaluation (§7).

    Two families:

    {b Vendor-library stand-ins.}  PyTorch (MKL-DNN), TensorFlow,
    TensorRT and TensorFlow Lite are backed by {e statically pre-tuned}
    kernels: strong on common operators, not adaptive, and free at
    deployment time.  Each stand-in deterministically picks the best of a
    fixed number of offline candidate schedules from a template-like space
    (fusion included), evaluated on the noise-free simulator, and consumes
    {e no} online measurement trials.  The candidate counts encode how
    heavily each library is engineered per platform (TensorRT > PyTorch >
    TensorFlow ~ TF-Lite) and per operator: uncommon operators (transposed,
    capsule, grouped and 3-D convolutions — detected structurally) fall
    back to a generic kernel with a fraction of the tuning effort, which is
    the paper's explanation for the vendor libraries' weakness outside the
    standard operator set.

    {b Search-framework stand-ins.}  AutoTVM, FlexTensor and the Halide
    auto-scheduler are tuner configurations
    ({!Ansor_search.Tuner.autotvm_options}, [flextensor_options],
    [beam_options]); thin wrappers are re-exported here under their
    evaluation names. *)

open Ansor_sched

type vendor = Pytorch | Tensorflow | Tensorrt | Tflite

val vendor_name : vendor -> string

val vendor_state : vendor -> Ansor_search.Task.t -> State.t option
(** The schedule the library "ships" for this task; [None] only if no
    candidate lowers (does not happen for the built-in operators). *)

val vendor_latency : vendor -> Ansor_search.Task.t -> float
(** Noise-free latency of the shipped schedule; [infinity] if none. *)

val vendor_network_latency :
  vendor -> (Ansor_search.Task.t * int) list -> float
(** Weighted sum over (task, appearance count). *)

(** Evaluation-name aliases for the search-framework tuner options. *)
val autotvm : Ansor_search.Tuner.options

val flextensor : Ansor_search.Tuner.options

val halide_beam : Ansor_search.Tuner.options

val ansor : Ansor_search.Tuner.options
