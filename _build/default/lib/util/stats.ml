let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> log (Float.max x 1e-12)) xs in
    exp (mean logs)

let sorted xs = List.sort compare xs

let quantile q = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    let lo = max 0 (min lo (n - 1)) and hi = max 0 (min hi (n - 1)) in
    let frac = pos -. floor pos in
    ((1.0 -. frac) *. a.(lo)) +. (frac *. a.(hi))

let median xs = quantile 0.5 xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let argmax score = function
  | [] -> None
  | x :: rest ->
    let best, _ =
      List.fold_left
        (fun (bx, bs) y ->
          let s = score y in
          if s > bs then (y, s) else (bx, bs))
        (x, score x) rest
    in
    Some best

let argmin score xs = argmax (fun x -> -.score x) xs

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let pearson xs ys =
  let n = List.length xs in
  if n <> List.length ys || n < 2 then 0.0
  else
    let mx = mean xs and my = mean ys in
    let num =
      List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
    in
    let sx = stddev xs and sy = stddev ys in
    let denom = float_of_int n *. sx *. sy in
    if denom <= 1e-12 then 0.0 else num /. denom
