lib/util/factorize.ml: Array List Rng
