lib/util/rng.mli:
