lib/util/factorize.mli: Rng
