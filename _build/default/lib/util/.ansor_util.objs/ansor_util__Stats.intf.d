lib/util/stats.mli:
