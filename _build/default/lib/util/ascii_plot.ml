let render ?(width = 60) ?(height = 16) ?(x_label = "x") ?(y_label = "y")
    series =
  match List.sort_uniq compare series with
  | [] | [ _ ] -> ""
  | series ->
    let xs = List.map fst series and ys = List.map snd series in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys in
    let ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = Float.max (xmax -. xmin) 1e-12 in
    let yspan = Float.max (ymax -. ymin) 1e-12 in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      min (width - 1)
        (int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1))))
    in
    let row y =
      (* row 0 is the top of the chart *)
      height - 1
      - min (height - 1)
          (int_of_float
             (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1))))
    in
    (* draw segments with linear interpolation across columns *)
    let rec draw = function
      | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        let c1 = col x1 and c2 = col x2 in
        for c = c1 to c2 do
          let t =
            if c2 = c1 then 0.0 else float_of_int (c - c1) /. float_of_int (c2 - c1)
          in
          let y = y1 +. (t *. (y2 -. y1)) in
          grid.(row y).(c) <- '*'
        done;
        draw rest
      | [ (x, y) ] -> grid.(row y).(col x) <- '*'
      | [] -> ()
    in
    draw series;
    let buf = Buffer.create ((width + 12) * (height + 3)) in
    Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
    Array.iteri
      (fun r line ->
        let yv = ymax -. (float_of_int r /. float_of_int (height - 1) *. yspan) in
        Buffer.add_string buf (Printf.sprintf "%10.3g |" yv);
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-8.4g%*s%8.4g   (%s)\n" "" xmin (width - 16) ""
         xmax x_label);
    Buffer.contents buf

let render_latency_curve curve =
  render ~x_label:"measurement trials" ~y_label:"best latency (ms)"
    (List.map (fun (t, l) -> (float_of_int t, l *. 1e3)) curve)
