(** Terminal plots for tuning curves.

    Renders an (x, y) series as a fixed-size ASCII chart — enough to watch
    best-latency-vs-trials curves (the y-axes of Figures 7 and 10) without
    leaving the terminal. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (float * float) list ->
  string
(** [render series] draws the series (sorted by x internally) on a
    [width] x [height] grid (defaults 60 x 16) with axis annotations.
    Returns the empty string for series with fewer than two points. *)

val render_latency_curve : (int * float) list -> string
(** Convenience wrapper for tuner curves: x = measurement trials,
    y = best latency in milliseconds (log-friendly formatting). *)
