let parse_spec spec =
  match String.index_opt spec '-' with
  | Some i
    when i + 1 < String.length spec
         && spec.[i + 1] = '>' ->
    let lhs = String.sub spec 0 i in
    let rhs = String.sub spec (i + 2) (String.length spec - i - 2) in
    let operands = String.split_on_char ',' lhs in
    (operands, rhs)
  | _ -> invalid_arg "Einsum: expected \"subscripts->subscripts\""

let letters s =
  List.init (String.length s) (fun i ->
      let c = s.[i] in
      if c < 'a' || c > 'z' then
        invalid_arg
          (Printf.sprintf "Einsum: index variables are lowercase letters, got %c" c);
      c)

(* letter -> extent bindings, checked for consistency *)
let bind_extents operands shapes =
  let tbl = Hashtbl.create 16 in
  List.iter2
    (fun subs shape ->
      let ls = letters subs in
      if List.length ls <> List.length shape then
        invalid_arg
          (Printf.sprintf "Einsum: operand %S has rank %d but shape has %d dims"
             subs (List.length ls) (List.length shape));
      List.iter2
        (fun l d ->
          match Hashtbl.find_opt tbl l with
          | Some d' when d' <> d ->
            invalid_arg
              (Printf.sprintf "Einsum: index %c bound to both %d and %d" l d' d)
          | _ -> Hashtbl.replace tbl l d)
        ls shape)
    operands shapes;
  tbl

let validate spec ~shapes =
  let operands, out = parse_spec spec in
  if List.length operands <> List.length shapes then
    invalid_arg
      (Printf.sprintf "Einsum: %d operands in spec, %d shapes given"
         (List.length operands) (List.length shapes));
  let extents = bind_extents operands shapes in
  let out_letters = letters out in
  let rec dup = function
    | [] -> false
    | x :: rest -> List.mem x rest || dup rest
  in
  if dup out_letters then
    invalid_arg "Einsum: repeated index in the output subscripts";
  List.iter
    (fun l ->
      if not (Hashtbl.mem extents l) then
        invalid_arg
          (Printf.sprintf "Einsum: output index %c not present in any operand" l))
    out_letters;
  (operands, out_letters, extents)

let output_shape spec ~shapes =
  let _, out_letters, extents = validate spec ~shapes in
  List.map (Hashtbl.find extents) out_letters

let build ?(name = "Out") ?operand_names spec ~shapes =
  let operands, out_letters, extents = validate spec ~shapes in
  let operand_names =
    match operand_names with
    | Some names ->
      if List.length names <> List.length operands then
        invalid_arg "Einsum: operand_names length mismatch";
      names
    | None -> List.mapi (fun i _ -> Printf.sprintf "in%d" i) operands
  in
  let var c = Printf.sprintf "%c" c in
  (* reduction letters: in some operand, not in the output *)
  let reduce_letters =
    List.concat_map letters operands
    |> List.sort_uniq compare
    |> List.filter (fun l -> not (List.mem l out_letters))
  in
  let placeholders =
    List.map2
      (fun pname shape -> Op.placeholder ~name:pname ~shape)
      operand_names shapes
  in
  let body =
    List.map2
      (fun pname subs ->
        Expr.access pname
          (List.map (fun l -> Expr.axis (var l)) (letters subs)))
      operand_names operands
    |> function
    | [] -> invalid_arg "Einsum: no operands"
    | first :: rest -> List.fold_left Expr.( *: ) first rest
  in
  let axes = List.map (fun l -> (var l, Hashtbl.find extents l)) out_letters in
  let reduce_axes =
    List.map (fun l -> (var l, Hashtbl.find extents l)) reduce_letters
  in
  let compute =
    if reduce_axes = [] then Op.compute ~name ~axes body
    else Op.compute ~name ~axes ~reduce_axes ~reduce:Op.Sum body
  in
  Dag.create (placeholders @ [ compute ])
