open Expr

let conv_out_dim sz ~kernel ~stride ~pad ~dilation =
  let eff = ((kernel - 1) * dilation) + 1 in
  let out = ((sz + (2 * pad) - eff) / stride) + 1 in
  if out <= 0 then
    invalid_arg
      (Printf.sprintf "Nn.conv_out_dim: non-positive output extent %d" out);
  out

(* [pad_nd name src dims spatial pad] builds an elementwise padding stage
   over tensor [src]: [dims] are (axis, extent) of the source, [spatial]
   selects which positions of [dims] get padded by [pad] on both sides. *)
let pad_nd name src dims spatial pad =
  let axes =
    List.mapi
      (fun i (v, e) -> if List.mem i spatial then (v, e + (2 * pad)) else (v, e))
      dims
  in
  let idx =
    List.mapi
      (fun i (v, _) ->
        if List.mem i spatial then Isub (Axis v, Int pad) else Axis v)
      dims
  in
  let cond =
    List.fold_left
      (fun acc i ->
        let v, e = List.nth dims i in
        let inside =
          Band
            ( Ble (Int pad, Axis v),
              Blt (Axis v, Int (pad + e)) )
        in
        match acc with None -> Some inside | Some c -> Some (Band (c, inside)))
      None spatial
  in
  let body =
    match cond with
    | None -> access src idx
    | Some c -> Select (c, access src idx, const 0.0)
  in
  Op.compute ~name ~axes body

let matmul ?(name = "C") ~m ~n ~k () =
  let a = Op.placeholder ~name:"A" ~shape:[ m; k ] in
  let b = Op.placeholder ~name:"B" ~shape:[ k; n ] in
  let c =
    Op.compute ~name
      ~axes:[ ("i", m); ("j", n) ]
      ~reduce_axes:[ ("k", k) ] ~reduce:Op.Sum
      (access "A" [ axis "i"; axis "k" ] *: access "B" [ axis "k"; axis "j" ])
  in
  Dag.create [ a; b; c ]

let batch_matmul ?(name = "C") ~b ~m ~n ~k () =
  let x = Op.placeholder ~name:"A" ~shape:[ b; m; k ] in
  let y = Op.placeholder ~name:"B" ~shape:[ b; k; n ] in
  let c =
    Op.compute ~name
      ~axes:[ ("b", b); ("i", m); ("j", n) ]
      ~reduce_axes:[ ("k", k) ] ~reduce:Op.Sum
      (access "A" [ axis "b"; axis "i"; axis "k" ]
      *: access "B" [ axis "b"; axis "k"; axis "j" ])
  in
  Dag.create [ x; y; c ]

let matmul_relu ~m ~n ~k () =
  let a = Op.placeholder ~name:"A" ~shape:[ m; k ] in
  let b = Op.placeholder ~name:"B" ~shape:[ k; n ] in
  let c =
    Op.compute ~name:"C"
      ~axes:[ ("i", m); ("j", n) ]
      ~reduce_axes:[ ("k", k) ] ~reduce:Op.Sum
      (access "A" [ axis "i"; axis "k" ] *: access "B" [ axis "k"; axis "j" ])
  in
  let d =
    Op.compute ~name:"D"
      ~axes:[ ("i", m); ("j", n) ]
      (Unop (Relu, access "C" [ axis "i"; axis "j" ]))
  in
  Dag.create [ a; b; c; d ]

let matmul_bias_relu ~m ~n ~k () =
  let a = Op.placeholder ~name:"A" ~shape:[ m; k ] in
  let b = Op.placeholder ~name:"B" ~shape:[ k; n ] in
  let bias = Op.placeholder ~name:"bias" ~shape:[ n ] in
  let c =
    Op.compute ~name:"C"
      ~axes:[ ("i", m); ("j", n) ]
      ~reduce_axes:[ ("k", k) ] ~reduce:Op.Sum
      (access "A" [ axis "i"; axis "k" ] *: access "B" [ axis "k"; axis "j" ])
  in
  let d =
    Op.compute ~name:"D"
      ~axes:[ ("i", m); ("j", n) ]
      (access "C" [ axis "i"; axis "j" ] +: access "bias" [ axis "j" ])
  in
  let e =
    Op.compute ~name:"E"
      ~axes:[ ("i", m); ("j", n) ]
      (Unop (Relu, access "D" [ axis "i"; axis "j" ]))
  in
  Dag.create [ a; b; bias; c; d; e ]

let figure5_input2 () =
  let a = Op.placeholder ~name:"A" ~shape:[ 8; 400 ] in
  let d = Op.placeholder ~name:"D" ~shape:[ 512; 4 ] in
  let b =
    Op.compute ~name:"B"
      ~axes:[ ("i", 8); ("l", 400) ]
      (Unop (Relu, access "A" [ axis "i"; axis "l" ]))
  in
  let c =
    Op.compute ~name:"C"
      ~axes:[ ("i", 8); ("k", 512) ]
      (Select
         ( Blt (Axis "k", Int 400),
           access "B" [ axis "i"; axis "k" ],
           const 0.0 ))
  in
  let e =
    Op.compute ~name:"E"
      ~axes:[ ("i", 8); ("j", 4) ]
      ~reduce_axes:[ ("k", 512) ] ~reduce:Op.Sum
      (access "C" [ axis "i"; axis "k" ] *: access "D" [ axis "k"; axis "j" ])
  in
  Dag.create [ a; d; b; c; e ]

let conv1d ?(name = "Y") ~n ~c ~l ~f ~k ~stride ~pad () =
  let lo = conv_out_dim l ~kernel:k ~stride ~pad ~dilation:1 in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; l ] in
  let w = Op.placeholder ~name:"W" ~shape:[ f; c; k ] in
  let src, ops =
    if pad = 0 then ("X", [ x; w ])
    else
      let p = pad_nd "Xpad" "X" [ ("n", n); ("c", c); ("l", l) ] [ 2 ] pad in
      ("Xpad", [ x; w; p ])
  in
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("f", f); ("x", lo) ]
      ~reduce_axes:[ ("rc", c); ("rk", k) ]
      ~reduce:Op.Sum
      (access src
         [ axis "n"; axis "rc"; Iadd (Imul (Axis "x", Int stride), Axis "rk") ]
      *: access "W" [ axis "f"; axis "rc"; axis "rk" ])
  in
  Dag.create (ops @ [ y ])

let conv2d ?(name = "Y") ?(dilation = 1) ?(groups = 1) ~n ~c ~h ~w ~f ~kh ~kw
    ~stride ~pad () =
  if c mod groups <> 0 || f mod groups <> 0 then
    invalid_arg "Nn.conv2d: channels not divisible by groups";
  let cpg = c / groups and fpg = f / groups in
  let ho = conv_out_dim h ~kernel:kh ~stride ~pad ~dilation in
  let wo = conv_out_dim w ~kernel:kw ~stride ~pad ~dilation in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; h; w ] in
  let wt = Op.placeholder ~name:"W" ~shape:[ f; cpg; kh; kw ] in
  let src, ops =
    if pad = 0 then ("X", [ x; wt ])
    else
      let p =
        pad_nd "Xpad" "X" [ ("n", n); ("c", c); ("h", h); ("w", w) ] [ 2; 3 ] pad
      in
      ("Xpad", [ x; wt; p ])
  in
  let in_channel =
    if groups = 1 then Axis "rc"
    else Iadd (Imul (Idiv (Axis "f", Int fpg), Int cpg), Axis "rc")
  in
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("f", f); ("y", ho); ("x", wo) ]
      ~reduce_axes:[ ("rc", cpg); ("ry", kh); ("rx", kw) ]
      ~reduce:Op.Sum
      (access src
         [
           axis "n";
           in_channel;
           Iadd (Imul (Axis "y", Int stride), Imul (Axis "ry", Int dilation));
           Iadd (Imul (Axis "x", Int stride), Imul (Axis "rx", Int dilation));
         ]
      *: access "W" [ axis "f"; axis "rc"; axis "ry"; axis "rx" ])
  in
  Dag.create (ops @ [ y ])

let conv3d ?(name = "Y") ~n ~c ~d ~h ~w ~f ~kd ~kh ~kw ~stride ~pad () =
  let do_ = conv_out_dim d ~kernel:kd ~stride ~pad ~dilation:1 in
  let ho = conv_out_dim h ~kernel:kh ~stride ~pad ~dilation:1 in
  let wo = conv_out_dim w ~kernel:kw ~stride ~pad ~dilation:1 in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; d; h; w ] in
  let wt = Op.placeholder ~name:"W" ~shape:[ f; c; kd; kh; kw ] in
  let src, ops =
    if pad = 0 then ("X", [ x; wt ])
    else
      let p =
        pad_nd "Xpad" "X"
          [ ("n", n); ("c", c); ("d", d); ("h", h); ("w", w) ]
          [ 2; 3; 4 ] pad
      in
      ("Xpad", [ x; wt; p ])
  in
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("f", f); ("z", do_); ("y", ho); ("x", wo) ]
      ~reduce_axes:[ ("rc", c); ("rz", kd); ("ry", kh); ("rx", kw) ]
      ~reduce:Op.Sum
      (access src
         [
           axis "n";
           axis "rc";
           Iadd (Imul (Axis "z", Int stride), Axis "rz");
           Iadd (Imul (Axis "y", Int stride), Axis "ry");
           Iadd (Imul (Axis "x", Int stride), Axis "rx");
         ]
      *: access "W" [ axis "f"; axis "rc"; axis "rz"; axis "ry"; axis "rx" ])
  in
  Dag.create (ops @ [ y ])

let depthwise_conv2d ?(name = "Y") ~n ~c ~h ~w ~kh ~kw ~stride ~pad () =
  let ho = conv_out_dim h ~kernel:kh ~stride ~pad ~dilation:1 in
  let wo = conv_out_dim w ~kernel:kw ~stride ~pad ~dilation:1 in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; h; w ] in
  let wt = Op.placeholder ~name:"W" ~shape:[ c; kh; kw ] in
  let src, ops =
    if pad = 0 then ("X", [ x; wt ])
    else
      let p =
        pad_nd "Xpad" "X" [ ("n", n); ("c", c); ("h", h); ("w", w) ] [ 2; 3 ] pad
      in
      ("Xpad", [ x; wt; p ])
  in
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("c", c); ("y", ho); ("x", wo) ]
      ~reduce_axes:[ ("ry", kh); ("rx", kw) ]
      ~reduce:Op.Sum
      (access src
         [
           axis "n";
           axis "c";
           Iadd (Imul (Axis "y", Int stride), Axis "ry");
           Iadd (Imul (Axis "x", Int stride), Axis "rx");
         ]
      *: access "W" [ axis "c"; axis "ry"; axis "rx" ])
  in
  Dag.create (ops @ [ y ])

let conv2d_transposed ?(name = "Y") ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad () =
  let ho = ((h - 1) * stride) - (2 * pad) + kh in
  let wo = ((w - 1) * stride) - (2 * pad) + kw in
  if ho <= 0 || wo <= 0 then
    invalid_arg "Nn.conv2d_transposed: non-positive output extent";
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; h; w ] in
  let wt = Op.placeholder ~name:"W" ~shape:[ c; f; kh; kw ] in
  (* A contribution exists only where the fractional stride divides
     evenly; the selects below are the "multiplications of zeros" a good
     schedule simplifies away (paper, §7.1, T2D). *)
  let src_y = Isub (Iadd (Axis "y", Int pad), Axis "ry") in
  let src_x = Isub (Iadd (Axis "x", Int pad), Axis "rx") in
  let cond =
    Band
      ( Band
          ( Beq (Imod (src_y, Int stride), Int 0),
            Beq (Imod (src_x, Int stride), Int 0) ),
        Band
          ( Band
              ( Ble (Int 0, Idiv (src_y, Int stride)),
                Blt (Idiv (src_y, Int stride), Int h) ),
            Band
              ( Ble (Int 0, Idiv (src_x, Int stride)),
                Blt (Idiv (src_x, Int stride), Int w) ) ) )
  in
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("f", f); ("y", ho); ("x", wo) ]
      ~reduce_axes:[ ("rc", c); ("ry", kh); ("rx", kw) ]
      ~reduce:Op.Sum
      (Select
         ( cond,
           access "X"
             [ axis "n"; axis "rc"; Idiv (src_y, Int stride); Idiv (src_x, Int stride) ]
           *: access "W" [ axis "rc"; axis "f"; axis "ry"; axis "rx" ],
           const 0.0 ))
  in
  Dag.create [ x; wt; y ]

let capsule_conv2d ?(name = "Y") ~n ~c ~h ~w ~f ~kh ~kw ~capsule ~stride ~pad ()
    =
  let ho = conv_out_dim h ~kernel:kh ~stride ~pad ~dilation:1 in
  let wo = conv_out_dim w ~kernel:kw ~stride ~pad ~dilation:1 in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; h; w; capsule; capsule ] in
  let wt =
    Op.placeholder ~name:"W" ~shape:[ f; c; kh; kw; capsule; capsule ]
  in
  let src, ops =
    if pad = 0 then ("X", [ x; wt ])
    else
      let p =
        pad_nd "Xpad" "X"
          [
            ("n", n); ("c", c); ("h", h); ("w", w);
            ("ci", capsule); ("cj", capsule);
          ]
          [ 2; 3 ] pad
      in
      ("Xpad", [ x; wt; p ])
  in
  let y =
    Op.compute ~name
      ~axes:
        [ ("n", n); ("f", f); ("y", ho); ("x", wo);
          ("ci", capsule); ("cj", capsule) ]
      ~reduce_axes:[ ("rc", c); ("ry", kh); ("rx", kw); ("rk", capsule) ]
      ~reduce:Op.Sum
      (access src
         [
           axis "n";
           axis "rc";
           Iadd (Imul (Axis "y", Int stride), Axis "ry");
           Iadd (Imul (Axis "x", Int stride), Axis "rx");
           axis "ci";
           axis "rk";
         ]
      *: access "W"
          [ axis "f"; axis "rc"; axis "ry"; axis "rx"; axis "rk"; axis "cj" ])
  in
  Dag.create (ops @ [ y ])

let matrix_norm ?(name = "Nrm") ~m ~n () =
  let a = Op.placeholder ~name:"A" ~shape:[ m; n ] in
  let s =
    Op.compute ~name:"Sq" ~axes:[]
      ~reduce_axes:[ ("i", m); ("j", n) ]
      ~reduce:Op.Sum
      (access "A" [ axis "i"; axis "j" ] *: access "A" [ axis "i"; axis "j" ])
  in
  let r = Op.compute ~name ~axes:[] (Unop (Sqrt, access "Sq" [])) in
  Dag.create [ a; s; r ]

let conv_layer ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad () =
  let base = conv2d ~name:"Conv" ~n ~c ~h ~w ~f ~kh ~kw ~stride ~pad () in
  let conv = Dag.op base (Dag.op_index base "Conv") in
  let shape = Op.shape conv in
  let ho, wo =
    match shape with
    | [ _; _; ho; wo ] -> (ho, wo)
    | _ -> invalid_arg "Nn.conv_layer: unexpected conv output shape"
  in
  let scale = Op.placeholder ~name:"scale" ~shape:[ f ] in
  let shift = Op.placeholder ~name:"shift" ~shape:[ f ] in
  let bn =
    Op.compute ~name:"Bn"
      ~axes:[ ("n", n); ("f", f); ("y", ho); ("x", wo) ]
      ((access "Conv" [ axis "n"; axis "f"; axis "y"; axis "x" ]
       *: access "scale" [ axis "f" ])
      +: access "shift" [ axis "f" ])
  in
  let relu =
    Op.compute ~name:"Out"
      ~axes:[ ("n", n); ("f", f); ("y", ho); ("x", wo) ]
      (Unop (Relu, access "Bn" [ axis "n"; axis "f"; axis "y"; axis "x" ]))
  in
  Dag.create (Array.to_list (Dag.ops base) @ [ scale; shift; bn; relu ])

let tbg ~b ~m ~n ~k () =
  let q = Op.placeholder ~name:"Q" ~shape:[ m; b; k ] in
  let kk = Op.placeholder ~name:"K" ~shape:[ n; b; k ] in
  let qt =
    Op.compute ~name:"Qt"
      ~axes:[ ("b", b); ("i", m); ("h", k) ]
      (access "Q" [ axis "i"; axis "b"; axis "h" ])
  in
  let kt =
    Op.compute ~name:"Kt"
      ~axes:[ ("b", b); ("j", n); ("h", k) ]
      (access "K" [ axis "j"; axis "b"; axis "h" ])
  in
  let y =
    Op.compute ~name:"Y"
      ~axes:[ ("b", b); ("i", m); ("j", n) ]
      ~reduce_axes:[ ("h", k) ] ~reduce:Op.Sum
      (access "Qt" [ axis "b"; axis "i"; axis "h" ]
      *: access "Kt" [ axis "b"; axis "j"; axis "h" ])
  in
  Dag.create [ q; kk; qt; kt; y ]

let softmax ?(name = "Y") ~m ~n () =
  let x = Op.placeholder ~name:"X" ~shape:[ m; n ] in
  let mx =
    Op.compute ~name:"Rowmax"
      ~axes:[ ("i", m) ]
      ~reduce_axes:[ ("k", n) ] ~reduce:Op.Maximum
      (access "X" [ axis "i"; axis "k" ])
  in
  let e =
    Op.compute ~name:"Expd"
      ~axes:[ ("i", m); ("j", n) ]
      (Unop (Exp, access "X" [ axis "i"; axis "j" ] -: access "Rowmax" [ axis "i" ]))
  in
  let s =
    Op.compute ~name:"Rowsum"
      ~axes:[ ("i", m) ]
      ~reduce_axes:[ ("k", n) ] ~reduce:Op.Sum
      (access "Expd" [ axis "i"; axis "k" ])
  in
  let y =
    Op.compute ~name
      ~axes:[ ("i", m); ("j", n) ]
      (access "Expd" [ axis "i"; axis "j" ] /: access "Rowsum" [ axis "i" ])
  in
  Dag.create [ x; mx; e; s; y ]

let relu_of dag =
  match Dag.outputs dag with
  | [ out ] ->
    let op = Dag.op dag out in
    let nm = Op.name op in
    let axes = List.mapi (fun i e -> (Printf.sprintf "a%d" i, e)) (Op.shape op) in
    let relu =
      Op.compute ~name:(nm ^ "_relu") ~axes
        (Unop (Relu, access nm (List.map (fun (v, _) -> axis v) axes)))
    in
    Dag.create (Array.to_list (Dag.ops dag) @ [ relu ])
  | _ -> invalid_arg "Nn.relu_of: DAG must have exactly one output"

let max_pool2d ?(name = "Y") ~n ~c ~h ~w ~k ~stride () =
  let ho = conv_out_dim h ~kernel:k ~stride ~pad:0 ~dilation:1 in
  let wo = conv_out_dim w ~kernel:k ~stride ~pad:0 ~dilation:1 in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; h; w ] in
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("c", c); ("y", ho); ("x", wo) ]
      ~reduce_axes:[ ("ry", k); ("rx", k) ]
      ~reduce:Op.Maximum
      (access "X"
         [
           axis "n";
           axis "c";
           Iadd (Imul (Axis "y", Int stride), Axis "ry");
           Iadd (Imul (Axis "x", Int stride), Axis "rx");
         ])
  in
  Dag.create [ x; y ]

let avg_pool2d ?(name = "Y") ~n ~c ~h ~w ~k ~stride () =
  let ho = conv_out_dim h ~kernel:k ~stride ~pad:0 ~dilation:1 in
  let wo = conv_out_dim w ~kernel:k ~stride ~pad:0 ~dilation:1 in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; h; w ] in
  let s =
    Op.compute ~name:(name ^ "_sum")
      ~axes:[ ("n", n); ("c", c); ("y", ho); ("x", wo) ]
      ~reduce_axes:[ ("ry", k); ("rx", k) ]
      ~reduce:Op.Sum
      (access "X"
         [
           axis "n";
           axis "c";
           Iadd (Imul (Axis "y", Int stride), Axis "ry");
           Iadd (Imul (Axis "x", Int stride), Axis "rx");
         ])
  in
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("c", c); ("y", ho); ("x", wo) ]
      (access (name ^ "_sum") [ axis "n"; axis "c"; axis "y"; axis "x" ]
      *: const (1.0 /. float_of_int (k * k)))
  in
  Dag.create [ x; s; y ]

let gemv ?(name = "Y") ~m ~k () =
  let a = Op.placeholder ~name:"A" ~shape:[ m; k ] in
  let x = Op.placeholder ~name:"X" ~shape:[ k ] in
  let y =
    Op.compute ~name
      ~axes:[ ("i", m) ]
      ~reduce_axes:[ ("k", k) ]
      ~reduce:Op.Sum
      (access "A" [ axis "i"; axis "k" ] *: access "X" [ axis "k" ])
  in
  Dag.create [ a; x; y ]

let layer_norm ?(name = "Y") ~m ~n () =
  let inv_n = 1.0 /. float_of_int n in
  let x = Op.placeholder ~name:"X" ~shape:[ m; n ] in
  let gamma = Op.placeholder ~name:"gamma" ~shape:[ n ] in
  let beta = Op.placeholder ~name:"beta" ~shape:[ n ] in
  let s =
    Op.compute ~name:"Rsum"
      ~axes:[ ("i", m) ]
      ~reduce_axes:[ ("k", n) ]
      ~reduce:Op.Sum
      (access "X" [ axis "i"; axis "k" ])
  in
  let s2 =
    Op.compute ~name:"Rsq"
      ~axes:[ ("i", m) ]
      ~reduce_axes:[ ("k", n) ]
      ~reduce:Op.Sum
      (access "X" [ axis "i"; axis "k" ] *: access "X" [ axis "i"; axis "k" ])
  in
  let y =
    (* var = E[x^2] - E[x]^2; normalize with epsilon for stability *)
    let mean = access "Rsum" [ axis "i" ] *: const inv_n in
    let mean_sq = access "Rsq" [ axis "i" ] *: const inv_n in
    let var = mean_sq -: (mean *: mean) in
    Op.compute ~name
      ~axes:[ ("i", m); ("j", n) ]
      (((access "X" [ axis "i"; axis "j" ] -: mean)
       /: Unop (Sqrt, var +: const 1e-5)
       *: access "gamma" [ axis "j" ])
      +: access "beta" [ axis "j" ])
  in
  Dag.create [ x; gamma; beta; s; s2; y ]

let winograd_constants () =
  [
    (* B^T: input transform, 4x4 *)
    ( "Bt",
      [|
        1.; 0.; -1.; 0.;
        0.; 1.; 1.; 0.;
        0.; -1.; 1.; 0.;
        0.; 1.; 0.; -1.;
      |] );
    (* G: weight transform, 4x3 *)
    ("G", [| 1.; 0.; 0.; 0.5; 0.5; 0.5; 0.5; -0.5; 0.5; 0.; 0.; 1. |]);
    (* A^T: output transform, 2x4 *)
    ("At", [| 1.; 1.; 1.; 0.; 0.; 1.; -1.; -1. |]);
  ]

let winograd_conv2d ?(name = "Y") ~n ~c ~h ~w ~f () =
  let ho = h - 2 and wo = w - 2 in
  if ho <= 0 || wo <= 0 || ho mod 2 <> 0 || wo mod 2 <> 0 then
    invalid_arg "Nn.winograd_conv2d: output extents must be positive and even";
  let th = ho / 2 and tw = wo / 2 in
  let x = Op.placeholder ~name:"X" ~shape:[ n; c; h; w ] in
  let wt = Op.placeholder ~name:"W" ~shape:[ f; c; 3; 3 ] in
  let bt = Op.placeholder ~name:"Bt" ~shape:[ 4; 4 ] in
  let g = Op.placeholder ~name:"G" ~shape:[ 4; 3 ] in
  let at = Op.placeholder ~name:"At" ~shape:[ 2; 4 ] in
  (* U[f,c,a,b] = sum_{i,j} G[a,i] W[f,c,i,j] G[b,j] *)
  let u =
    Op.compute ~name:"U"
      ~axes:[ ("f", f); ("c", c); ("a", 4); ("b", 4) ]
      ~reduce_axes:[ ("i", 3); ("j", 3) ]
      ~reduce:Op.Sum
      (access "G" [ axis "a"; axis "i" ]
      *: access "W" [ axis "f"; axis "c"; axis "i"; axis "j" ]
      *: access "G" [ axis "b"; axis "j" ])
  in
  (* V[n,c,ty,tx,a,b] = sum_{k,l} Bt[a,k]... note B^T X B with Bt given
     directly: V = sum_{k,l} Bt[a,k] X[2ty+k, 2tx+l] Bt[b,l] *)
  let v =
    Op.compute ~name:"V"
      ~axes:
        [ ("n", n); ("c", c); ("ty", th); ("tx", tw); ("a", 4); ("b", 4) ]
      ~reduce_axes:[ ("k", 4); ("l", 4) ]
      ~reduce:Op.Sum
      (access "Bt" [ axis "a"; axis "k" ]
      *: access "X"
           [
             axis "n";
             axis "c";
             Iadd (Imul (Axis "ty", Int 2), Axis "k");
             Iadd (Imul (Axis "tx", Int 2), Axis "l");
           ]
      *: access "Bt" [ axis "b"; axis "l" ])
  in
  (* M[n,f,ty,tx,a,b] = sum_c U[f,c,a,b] V[n,c,ty,tx,a,b]: the batched
     "element-wise matmul" at the heart of Winograd *)
  let m =
    Op.compute ~name:"M"
      ~axes:
        [ ("n", n); ("f", f); ("ty", th); ("tx", tw); ("a", 4); ("b", 4) ]
      ~reduce_axes:[ ("c", c) ]
      ~reduce:Op.Sum
      (access "U" [ axis "f"; axis "c"; axis "a"; axis "b" ]
      *: access "V" [ axis "n"; axis "c"; axis "ty"; axis "tx"; axis "a"; axis "b" ])
  in
  (* Yt[n,f,ty,tx,u,v] = sum_{a,b} At[u,a] M[...] At[v,b] *)
  let yt =
    Op.compute ~name:"Yt"
      ~axes:
        [ ("n", n); ("f", f); ("ty", th); ("tx", tw); ("u", 2); ("v", 2) ]
      ~reduce_axes:[ ("a", 4); ("b", 4) ]
      ~reduce:Op.Sum
      (access "At" [ axis "u"; axis "a" ]
      *: access "M" [ axis "n"; axis "f"; axis "ty"; axis "tx"; axis "a"; axis "b" ]
      *: access "At" [ axis "v"; axis "b" ])
  in
  (* untile: Y[n,f,y,x] = Yt[n,f,y/2,x/2,y%2,x%2] (elementwise gather) *)
  let y =
    Op.compute ~name
      ~axes:[ ("n", n); ("f", f); ("y", ho); ("x", wo) ]
      (access "Yt"
         [
           axis "n";
           axis "f";
           Idiv (Axis "y", Int 2);
           Idiv (Axis "x", Int 2);
           Imod (Axis "y", Int 2);
           Imod (Axis "x", Int 2);
         ])
  in
  Dag.create [ x; wt; bt; g; at; u; v; m; yt; y ]
