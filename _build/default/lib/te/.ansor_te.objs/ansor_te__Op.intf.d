lib/te/op.mli: Expr Format
