lib/te/nn.mli: Dag
