lib/te/einsum.ml: Dag Expr Hashtbl List Op Printf String
