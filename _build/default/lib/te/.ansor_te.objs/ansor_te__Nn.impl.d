lib/te/nn.ml: Array Dag Expr List Op Printf
