lib/te/dag.mli: Format Op
