lib/te/dag.ml: Array Expr Format Hashtbl List Op Printf String
