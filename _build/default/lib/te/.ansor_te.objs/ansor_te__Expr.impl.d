lib/te/expr.ml: Float Format List String
