lib/te/expr.mli: Format
