lib/te/einsum.mli: Dag
