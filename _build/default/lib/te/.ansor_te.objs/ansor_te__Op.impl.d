lib/te/op.ml: Expr Float Format List Printf
