(** Computational DAGs: the input of the program sampler.

    A DAG is a topologically-sorted array of operators; edges are implied by
    tensor reads (a [Compute] node consumes the tensors it accesses).  This
    module also implements the static predicates of Table 1 that drive
    sketch derivation. *)

type t

val create : Op.t list -> t
(** Builds a DAG from operators in any order; they are sorted
    topologically (inputs before consumers).
    @raise Invalid_argument on duplicate names, reads of undefined tensors,
    or cycles. *)

val ops : t -> Op.t array
(** Topologically sorted: producers always precede consumers. *)

val num_ops : t -> int

val op : t -> int -> Op.t

val op_index : t -> string -> int
(** @raise Not_found if no operator has the given name. *)

val consumers : t -> int -> int list
(** Indices of operators reading the output tensor of operator [i]. *)

val producers : t -> int -> int list
(** Indices of operators whose output tensor operator [i] reads. *)

val outputs : t -> int list
(** Indices of operators with no consumers (the DAG's results). *)

val is_output : t -> int -> bool

val flops : t -> int
(** Total floating-point work of one evaluation of the DAG. *)

val workload_key : t -> string
(** A stable textual key identifying the computation (used to deduplicate
    tasks and group similar tasks in the task scheduler). *)

(** {1 Table 1 predicates}

    All predicates take the index of the operator under consideration. *)

val is_strict_inlinable : t -> int -> bool
(** True for elementwise [Compute] nodes (no reduction axes): these can
    always be inlined into their consumers (rule 2). *)

val has_data_reuse : t -> int -> bool
(** True for compute-intensive nodes with reduction axes where some input
    tensor is reused across a space axis (e.g. matmul, conv2d): candidates
    for multi-level tiling (rules 3-5). *)

val has_fusible_consumer : t -> int -> bool
(** True when the node has exactly one consumer, and that consumer is an
    elementwise node of the same output shape accessing the node's tensor
    at its own space indices (e.g. matmul + bias_add, conv2d + relu): rule
    4 can fuse them. *)

val fusible_consumer : t -> int -> int option
(** The consumer witnessing {!has_fusible_consumer}, if any. *)

val has_more_reduction_parallel : t -> int -> bool
(** True for nodes with little space parallelism but ample reduction
    parallelism (e.g. 2-norm, tall-thin matmul): candidates for rfactor
    (rule 6). *)

val pp : Format.formatter -> t -> unit
