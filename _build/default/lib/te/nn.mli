(** Deep-learning operator constructors.

    Each function builds the computational DAG of one operator (or one small
    subgraph) in the tensor-expression language, covering the operator suite
    of the paper's evaluation (§7.1): C1D, C2D, C3D, GMM, GRP, DIL, DEP,
    T2D, CAP and NRM, plus the ConvLayer / TBG subgraphs (§7.2) and the
    elementwise building blocks used by the network workloads (§7.3).

    Convolutions take NCHW input layout, weights as [OIHW] (or the
    operator-specific variant documented per function), and express zero
    padding as a separate elementwise padding stage so the sketch rules can
    inline it or keep it materialized — the design point discussed in §7.1
    for C2D.  All constructors validate shape arithmetic and raise
    [Invalid_argument] on inconsistent configurations. *)

val conv_out_dim : int -> kernel:int -> stride:int -> pad:int -> dilation:int -> int
(** [conv_out_dim sz ~kernel ~stride ~pad ~dilation] is the output extent of
    one convolved dimension. @raise Invalid_argument when non-positive. *)

val matmul : ?name:string -> m:int -> n:int -> k:int -> unit -> Dag.t
(** GMM: [C[i,j] = sum_k A[i,k] * B[k,j]]. *)

val batch_matmul : ?name:string -> b:int -> m:int -> n:int -> k:int -> unit -> Dag.t
(** [C[b,i,j] = sum_k A[b,i,k] * B[b,k,j]]. *)

val matmul_bias_relu : m:int -> n:int -> k:int -> unit -> Dag.t
(** Dense layer: matmul, bias add and ReLU — the running example of
    Figure 5 (input 1 is matmul + ReLU). *)

val matmul_relu : m:int -> n:int -> k:int -> unit -> Dag.t
(** Exactly example input 1 of Figure 5: matmul followed by ReLU. *)

val figure5_input2 : unit -> Dag.t
(** Example input 2 of Figure 5: [B = relu A] (8x400), [C] = [B] zero-padded
    to 8x512, [E = C . D] with [D] 512x4 — a tall-thin matmul that triggers
    rule 6 (rfactor). *)

val conv1d :
  ?name:string ->
  n:int -> c:int -> l:int -> f:int -> k:int ->
  stride:int -> pad:int -> unit -> Dag.t
(** C1D: 1-D convolution over length [l], [c] input and [f] output
    channels. *)

val conv2d :
  ?name:string ->
  ?dilation:int ->
  ?groups:int ->
  n:int -> c:int -> h:int -> w:int -> f:int -> kh:int -> kw:int ->
  stride:int -> pad:int -> unit -> Dag.t
(** C2D / DIL (dilation > 1) / GRP (groups > 1). Weight layout
    [f, c/groups, kh, kw]. @raise Invalid_argument if [c] or [f] is not
    divisible by [groups]. *)

val conv3d :
  ?name:string ->
  n:int -> c:int -> d:int -> h:int -> w:int -> f:int -> kd:int -> kh:int -> kw:int ->
  stride:int -> pad:int -> unit -> Dag.t
(** C3D: 3-D convolution (depth, height, width). *)

val depthwise_conv2d :
  ?name:string ->
  n:int -> c:int -> h:int -> w:int -> kh:int -> kw:int ->
  stride:int -> pad:int -> unit -> Dag.t
(** DEP: one filter per channel; weight layout [c, kh, kw]. *)

val conv2d_transposed :
  ?name:string ->
  n:int -> c:int -> h:int -> w:int -> f:int -> kh:int -> kw:int ->
  stride:int -> pad:int -> unit -> Dag.t
(** T2D: transposed (fractionally-strided) convolution as used by the DCGAN
    generator; the body guards contributions with stride-divisibility
    selects, which is what lets a good schedule simplify the multiplications
    by zero (§7.1). Output spatial extent is
    [(sz - 1) * stride - 2*pad + kh]. *)

val capsule_conv2d :
  ?name:string ->
  n:int -> c:int -> h:int -> w:int -> f:int -> kh:int -> kw:int -> capsule:int ->
  stride:int -> pad:int -> unit -> Dag.t
(** CAP: capsule 2-D convolution; every (input, output) capsule pair
    performs a [capsule x capsule] matrix product inside the convolution. *)

val matrix_norm : ?name:string -> m:int -> n:int -> unit -> Dag.t
(** NRM: matrix 2-norm — a full reduction to a scalar followed by a square
    root; the rfactor showcase. *)

val conv_layer :
  n:int -> c:int -> h:int -> w:int -> f:int -> kh:int -> kw:int ->
  stride:int -> pad:int -> unit -> Dag.t
(** The "ConvLayer" subgraph of §7.2: conv2d + batch normalization
    (inference form: per-channel scale and shift) + ReLU. *)

val tbg : b:int -> m:int -> n:int -> k:int -> unit -> Dag.t
(** The "TBG" subgraph of §7.2: two tensor transposes feeding a batched
    matmul, the multi-head-attention pattern
    [Y[b,i,j] = sum_k Q[i,b,k] * K[j,b,k]]. *)

val softmax : ?name:string -> m:int -> n:int -> unit -> Dag.t
(** Row softmax (max-subtracted), used by the BERT workload: rowmax,
    exponentiation, rowsum, normalize. *)

val relu_of : Dag.t -> Dag.t
(** Appends an elementwise ReLU consuming the (single) output of the given
    DAG. @raise Invalid_argument if the DAG has several outputs. *)

val max_pool2d :
  ?name:string ->
  n:int -> c:int -> h:int -> w:int -> k:int -> stride:int -> unit -> Dag.t
(** Max pooling (valid padding): a {!Op.Maximum} reduction over the
    window. *)

val avg_pool2d :
  ?name:string ->
  n:int -> c:int -> h:int -> w:int -> k:int -> stride:int -> unit -> Dag.t
(** Average pooling (valid padding): a window sum followed by an inlinable
    scale stage. *)

val gemv : ?name:string -> m:int -> k:int -> unit -> Dag.t
(** Matrix-vector product [y[i] = sum_k A[i,k] * x[k]] — bandwidth-bound,
    and a candidate for rule 6 when [m] is small. *)

val layer_norm : ?name:string -> m:int -> n:int -> unit -> Dag.t
(** Row layer normalization (mean / variance / normalize with scale and
    shift): two row reductions feeding an elementwise stage — a fusion and
    rfactor playground used by transformer workloads. *)

val winograd_conv2d :
  ?name:string -> n:int -> c:int -> h:int -> w:int -> f:int -> unit -> Dag.t
(** Winograd convolution F(2x2, 3x3) — the paper's §4.1 example of a
    special algorithm with an unusual multi-stage structure (weight
    transform, input transform, batched element-wise matmul, output
    transform, untiling).  Kernel 3x3, stride 1, no padding; [h - 2] and
    [w - 2] must be even.  The transform matrices are the placeholder
    tensors ["Bt"], ["G"] and ["At"]; bind them to
    {!winograd_constants} when executing.  Numerically equivalent to
    {!conv2d} with the same [X] and [W].
    @raise Invalid_argument on odd output extents. *)

val winograd_constants : unit -> (string * float array) list
(** The F(2x2, 3x3) transform matrices: [("Bt", 4x4); ("G", 4x3);
    ("At", 2x4)], row-major. *)
