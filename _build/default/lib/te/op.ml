type reduce_kind = Sum | Maximum

type compute = {
  name : string;
  axes : (string * int) list;
  reduce_axes : (string * int) list;
  reduce : reduce_kind option;
  body : Expr.t;
}

type t = Placeholder of { name : string; shape : int list } | Compute of compute

let name = function Placeholder { name; _ } -> name | Compute { name; _ } -> name

let shape = function
  | Placeholder { shape; _ } -> shape
  | Compute { axes; _ } -> List.map snd axes

let compute ~name ~axes ?(reduce_axes = []) ?reduce body =
  (match (reduce_axes, reduce) with
  | [], Some _ ->
    invalid_arg "Op.compute: reduce kind given without reduction axes"
  | _ :: _, None ->
    invalid_arg "Op.compute: reduction axes given without a reduce kind"
  | _ -> ());
  let all = List.map fst axes @ List.map fst reduce_axes in
  let rec dup = function
    | [] -> false
    | x :: rest -> List.mem x rest || dup rest
  in
  if dup all then invalid_arg "Op.compute: duplicate axis names";
  List.iter
    (fun (v, extent) ->
      if extent <= 0 then
        invalid_arg (Printf.sprintf "Op.compute: axis %s has extent %d" v extent))
    (axes @ reduce_axes);
  Compute { name; axes; reduce_axes; reduce; body }

let placeholder ~name ~shape =
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Op.placeholder: non-positive dim")
    shape;
  Placeholder { name; shape }

let init_value = function Sum -> 0.0 | Maximum -> Float.neg_infinity

let combine kind a b =
  match kind with Sum -> a +. b | Maximum -> Float.max a b

let input_tensors = function
  | Placeholder _ -> []
  | Compute { body; _ } ->
    let names = List.map fst (Expr.accesses body) in
    List.fold_left
      (fun acc n -> if List.mem n acc then acc else n :: acc)
      [] names
    |> List.rev

let output_elems op = List.fold_left ( * ) 1 (shape op)

let reduce_extent = function
  | Placeholder _ -> 1
  | Compute { reduce_axes; _ } ->
    List.fold_left (fun acc (_, e) -> acc * e) 1 reduce_axes

let flops_per_elem = function
  | Placeholder _ -> 0
  | Compute { body; reduce; _ } as op ->
    let per_point = Expr.flops body in
    let r = reduce_extent op in
    let accumulate = match reduce with Some _ -> r | None -> 0 in
    (per_point * r) + accumulate

let flops op = output_elems op * flops_per_elem op

let pp fmt = function
  | Placeholder { name; shape } ->
    Format.fprintf fmt "%s = placeholder(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         Format.pp_print_int)
      shape
  | Compute { name; axes; reduce_axes; reduce; body } ->
    let pp_axes fmt axes =
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
        (fun fmt (v, e) -> Format.fprintf fmt "%s:%d" v e)
        fmt axes
    in
    let reduce_str =
      match reduce with
      | None -> ""
      | Some Sum -> " sum"
      | Some Maximum -> " max"
    in
    Format.fprintf fmt "%s[%a] =%s" name pp_axes axes reduce_str;
    if reduce_axes <> [] then Format.fprintf fmt "{%a}" pp_axes reduce_axes;
    Format.fprintf fmt " %a" Expr.pp body
