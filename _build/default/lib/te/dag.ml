type t = {
  ops : Op.t array;
  cons : int list array;  (* consumers of each op *)
  prods : int list array;  (* producers of each op *)
}

let toposort (ops : Op.t list) : Op.t list =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let n = Op.name op in
      if Hashtbl.mem by_name n then
        invalid_arg (Printf.sprintf "Dag.create: duplicate operator name %s" n);
      Hashtbl.add by_name n op)
    ops;
  let visited = Hashtbl.create 16 (* name -> [`In_progress | `Done] *) in
  let order = ref [] in
  let rec visit op =
    let n = Op.name op in
    match Hashtbl.find_opt visited n with
    | Some `Done -> ()
    | Some `In_progress -> invalid_arg "Dag.create: cycle in DAG"
    | None ->
      Hashtbl.replace visited n `In_progress;
      List.iter
        (fun input ->
          match Hashtbl.find_opt by_name input with
          | Some producer -> visit producer
          | None ->
            invalid_arg
              (Printf.sprintf "Dag.create: %s reads undefined tensor %s" n input))
        (Op.input_tensors op);
      Hashtbl.replace visited n `Done;
      order := op :: !order
  in
  List.iter visit ops;
  List.rev !order

let create op_list =
  let ops = Array.of_list (toposort op_list) in
  let n = Array.length ops in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i op -> Hashtbl.add index (Op.name op) i) ops;
  let cons = Array.make n [] and prods = Array.make n [] in
  Array.iteri
    (fun i op ->
      List.iter
        (fun input ->
          let p = Hashtbl.find index input in
          prods.(i) <- p :: prods.(i);
          cons.(p) <- i :: cons.(p))
        (Op.input_tensors op))
    ops;
  Array.iteri (fun i l -> cons.(i) <- List.rev l) cons;
  Array.iteri (fun i l -> prods.(i) <- List.rev l) prods;
  { ops; cons; prods }

let ops t = t.ops
let num_ops t = Array.length t.ops
let op t i = t.ops.(i)

let op_index t name =
  let rec go i =
    if i >= Array.length t.ops then raise Not_found
    else if String.equal (Op.name t.ops.(i)) name then i
    else go (i + 1)
  in
  go 0

let consumers t i = t.cons.(i)
let producers t i = t.prods.(i)

let outputs t =
  let acc = ref [] in
  Array.iteri (fun i _ -> if t.cons.(i) = [] then acc := i :: !acc) t.ops;
  List.rev !acc

let is_output t i = t.cons.(i) = []

let flops t = Array.fold_left (fun acc op -> acc + Op.flops op) 0 t.ops

let workload_key t =
  Array.to_list t.ops
  |> List.map (fun op -> Format.asprintf "%a" Op.pp op)
  |> String.concat "; "

let is_strict_inlinable t i =
  match t.ops.(i) with
  | Op.Placeholder _ -> false
  | Op.Compute { reduce_axes; _ } -> reduce_axes = []

let has_data_reuse t i =
  match t.ops.(i) with
  | Op.Placeholder _ -> false
  | Op.Compute { reduce_axes = []; _ } -> false
  | Op.Compute { axes; body; _ } ->
    let space_vars = List.map fst axes in
    (* Reuse: some input tensor is indexed without one of the space axes,
       hence re-read for every value of that axis. *)
    List.exists
      (fun (_tensor, idx) ->
        let used = List.concat_map Expr.iexpr_axes idx in
        List.exists (fun v -> not (List.mem v used)) space_vars)
      (Expr.accesses body)

let fusible_consumer t i =
  match consumers t i with
  | [ j ] -> (
    match (t.ops.(i), t.ops.(j)) with
    | op_i, Op.Compute { axes; reduce_axes = []; body; _ }
      when Op.shape op_i = List.map snd axes ->
      (* The consumer must read tensor i exactly at its own space point. *)
      let identity idx =
        List.length idx = List.length axes
        && List.for_all2
             (fun ie (v, _) -> ie = Expr.Axis v)
             idx axes
      in
      let reads_i =
        List.filter
          (fun (n, _) -> String.equal n (Op.name op_i))
          (Expr.accesses body)
      in
      if reads_i <> [] && List.for_all (fun (_, idx) -> identity idx) reads_i
      then Some j
      else None
    | _ -> None)
  | _ -> None

let has_fusible_consumer t i = fusible_consumer t i <> None

let has_more_reduction_parallel t i =
  match t.ops.(i) with
  | Op.Placeholder _ -> false
  | Op.Compute { reduce_axes = []; _ } -> false
  | Op.Compute _ as op ->
    let space = Op.output_elems op and red = Op.reduce_extent op in
    space <= 64 && red >= 64

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_cut fmt ())
       Op.pp)
    (Array.to_list t.ops)
