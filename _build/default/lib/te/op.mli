(** Operators: the nodes of a computational DAG.

    An operator is either a [Placeholder] (an input tensor) or a [Compute]
    node defining each element of its output tensor by an expression over
    its space axes, optionally reduced over reduction axes — the same model
    as the TVM tensor-expression language the paper builds on (Figure 1). *)

type reduce_kind = Sum | Maximum

type compute = {
  name : string;  (** also the name of the produced tensor *)
  axes : (string * int) list;  (** space axes: (variable, extent) *)
  reduce_axes : (string * int) list;  (** reduction axes: (variable, extent) *)
  reduce : reduce_kind option;
      (** [Some _] iff [reduce_axes] is non-empty *)
  body : Expr.t;
      (** value contributed at one (space, reduce) point; the output element
          is the reduction of [body] over the reduction axes *)
}

type t = Placeholder of { name : string; shape : int list } | Compute of compute

val name : t -> string

val shape : t -> int list
(** Shape of the produced tensor: extents of the space axes. *)

val compute :
  name:string ->
  axes:(string * int) list ->
  ?reduce_axes:(string * int) list ->
  ?reduce:reduce_kind ->
  Expr.t ->
  t
(** Smart constructor.
    @raise Invalid_argument if reduction axes are given without a reduce
    kind (or vice versa), if an axis has non-positive extent, or if axis
    names collide within the operator. *)

val placeholder : name:string -> shape:int list -> t

val init_value : reduce_kind -> float
(** Identity element of the reduction: [0.] for {!Sum}, [-inf] for
    {!Maximum}. *)

val combine : reduce_kind -> float -> float -> float

val input_tensors : t -> string list
(** Names of tensors read by the body (no duplicates); empty for
    placeholders. *)

val output_elems : t -> int
(** Number of elements of the produced tensor. *)

val reduce_extent : t -> int
(** Product of reduction-axis extents (1 for elementwise ops and
    placeholders). *)

val flops_per_elem : t -> int
(** Floating-point operations needed to produce one output element:
    body flops times reduction extent, plus the accumulations. *)

val flops : t -> int
(** Total floating-point operations of the operator. *)

val pp : Format.formatter -> t -> unit
