(** Einstein-summation front-end.

    Builds computational DAGs from the familiar einsum notation, e.g.
    ["ij,jk->ik"] for matmul or ["bhqd,bhkd->bhqk"] for attention scores:
    a convenient way for downstream users to define contractions without
    writing {!Op.compute} by hand.  Index variables are single lowercase
    letters; every letter appearing in an input but not in the output
    becomes a reduction (sum) axis.

    The resulting DAG has one placeholder per operand (named ["in0"],
    ["in1"], ... by default) and a single [Sum]-reduction compute node, so
    the full scheduling pipeline (sketches, tuning, code generation)
    applies unchanged. *)

val build :
  ?name:string ->
  ?operand_names:string list ->
  string ->
  shapes:int list list ->
  Dag.t
(** [build spec ~shapes] parses [spec] ("subs,subs,...->subs") and builds
    the contraction with the given operand shapes.

    @raise Invalid_argument when the spec is malformed (missing arrow,
    repeated output index, unknown output index), when the operand count
    or ranks disagree with [shapes], or when one letter is bound to two
    different extents. *)

val output_shape : string -> shapes:int list list -> int list
(** The contraction's result shape, without building the DAG (same
    validation). *)
