(** Loop-nest access-pattern analysis.

    Computes, for every statement of a lowered program, the per-loop strides
    and touched-region sizes of each buffer access.  Both the analytical
    hardware simulator and the cost-model feature extraction (Appendix B of
    the paper: bytes, unique bytes, lines, unique lines, reuse type and
    distance, stride) are built on this analysis, so the learned model sees
    the same program properties that determine the simulated cost. *)

open Ansor_te

val line_elems : int
(** Elements of a 64-byte cache line at float32 (= 16). *)

type access = {
  tensor : string;
  is_write : bool;
  count : int;  (** occurrences of this exact access in the statement *)
  strides : int array;
      (** element-offset change per unit step of each enclosing loop,
          outermost first *)
  touched : float array;
      (** [touched.(d)] = distinct elements accessed by one execution of
          the loops at depth >= d (length = #loops + 1; the last entry
          is 1.) *)
  lines : float array;
      (** same as [touched], in distinct cache lines *)
  inner_stride : int;
      (** absolute stride of the innermost loop that moves this access;
          0 when no loop moves it *)
  reuse_loop : int option;
      (** deepest enclosing loop that does not move the access: iterating
          it re-touches the same elements (temporal reuse) *)
}

type stmt_info = {
  stmt : Prog.stmt;
  loops : Prog.loop list;  (** enclosing loops, outermost first *)
  extents : int array;
  iters : float;  (** product of the extents *)
  accesses : access list;  (** the output access first, then the reads *)
  counts : Expr.op_counts;  (** operation counts of one statement execution *)
}

val analyze : Prog.t -> stmt_info list
(** One entry per statement, in program order. *)

val working_set : stmt_info -> int -> float
(** [working_set info d]: bytes touched by one execution of the loops at
    depth >= [d], summed over all accesses of the statement. *)

val select_zero_fraction :
  stmt_info -> (string list * float) option
(** When the statement's value is a [select] whose false branch is the
    constant zero (the padding / transposed-convolution idiom), returns the
    loop variables the condition depends on and the fraction of the
    iteration space where the condition holds (deterministic sampling).
    The simulator uses this to credit schedules that can statically
    eliminate the multiplications by zero. *)
