(** Schedule transform steps.

    A scheduled program in this system is exactly what it is in Ansor: a
    computational DAG plus a {e history} of transform steps rewriting the
    naive loop nests.  The step list is the genome used by the evolutionary
    search (§5.1 "the genes of a program in Ansor are its rewriting steps"),
    and sketches are step lists whose tile sizes are still unfilled
    ([tbd = true] on {!constructor:Split} / {!constructor:Rfactor}). *)

(** Loop annotations (§4.2). *)
type annotation = No_ann | Parallel | Vectorize | Unroll

type t =
  | Split of { stage : string; iv : int; lengths : int list; tbd : bool }
      (** Replace leaf iterator [iv] of [stage] by one iterator per entry of
          [lengths] (outermost first); the product must equal the extent.
          [tbd] marks a sketch-level split whose lengths are placeholders
          to be filled by random annotation. *)
  | Fuse of { stage : string; ivs : int list }
      (** Fuse consecutive leaf iterators into one. *)
  | Reorder of { stage : string; order : int list }
      (** Permute the leaf iterators; [order] lists iterator ids in the new
          outer-to-inner order. *)
  | Compute_at of {
      stage : string;
      target : string;
      target_iv : int;
      bindings : (int * int) list;
    }
      (** Nest [stage]'s loops inside [target]'s loop nest at the loop
          computing [target_iv].  [bindings] pins leaf iterators of [stage]
          (first component) to iterators of [target] (second component):
          the bound loops are not emitted, their values are taken from the
          target — the matched-tiling fusion of rules 4/5. *)
  | Compute_inline of { stage : string }
      (** Substitute the stage's body into its consumers (rule 2). *)
  | Compute_root of { stage : string }
      (** Undo compute_at/inline: materialize at the top level. *)
  | Cache_write of { stage : string }
      (** Split the stage into a compute stage ["<name>.local"] and an
          elementwise copy keeping the original name (rule 5). *)
  | Rfactor of { stage : string; iv : int; lengths : int list; tbd : bool }
      (** Factorize reduction iterator [iv] (extent = product of the two
          [lengths]) into an ["<name>.rf"] stage reducing over the outer
          part, with the inner part promoted to a space axis, plus a final
          reduction over the inner part (rule 6). *)
  | Annotate of { stage : string; iv : int; ann : annotation }
  | Pragma_unroll of { stage : string; max_step : int }
      (** The [auto_unroll_max_step] pragma: permit the code generator to
          unroll inner loops of the stage up to [max_step] total steps. *)

val stage_of : t -> string
(** The stage a step rewrites (the new compute stage for cache_write /
    rfactor). Used to group steps per DAG node for node-based crossover. *)

val pp_annotation : Format.formatter -> annotation -> unit
val pp : Format.formatter -> t -> unit

val history_key : t list -> string
(** Exact structural digest of a step history, suitable for deduplicating
    programs.  (The generic [Hashtbl.hash] truncates deep structures and
    collides on histories of this size.) *)
