lib/sched/lower.mli: Prog State
