lib/sched/access.ml: Ansor_te Array Expr Float Hashtbl List Prog String
