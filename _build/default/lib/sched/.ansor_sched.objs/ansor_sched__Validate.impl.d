lib/sched/validate.ml: Ansor_te Expr Format Hashtbl List Option Printf Prog String
