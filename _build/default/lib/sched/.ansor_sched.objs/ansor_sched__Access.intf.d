lib/sched/access.mli: Ansor_te Expr Prog
