lib/sched/lower.ml: Ansor_te Array Dag Expr Hashtbl List Op Printf Prog State String
