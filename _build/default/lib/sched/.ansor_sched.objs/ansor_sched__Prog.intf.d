lib/sched/prog.mli: Ansor_te Expr Format Op State Step
