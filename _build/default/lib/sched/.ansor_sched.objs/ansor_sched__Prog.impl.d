lib/sched/prog.ml: Ansor_te Expr Format List Op State Step
