lib/sched/state.ml: Ansor_te Array Dag Expr Format Fun List Op Option Printf Step String
