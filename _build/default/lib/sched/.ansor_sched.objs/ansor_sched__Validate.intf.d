lib/sched/validate.mli: Ansor_te Format Prog
