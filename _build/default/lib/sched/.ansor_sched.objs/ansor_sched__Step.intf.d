lib/sched/step.mli: Format
