lib/sched/step.ml: Digest Format Marshal
