lib/sched/state.mli: Ansor_te Dag Format Op Step
