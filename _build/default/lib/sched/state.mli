(** Schedule state: the loop structure of every stage of a DAG.

    A state is created from a {!Ansor_te.Dag.t} with one stage per compute
    operator (naive loops: space axes then reduction axes), and evolves by
    applying {!Ansor_sched.Step} transform steps.  The state records the
    full step history, so any state can be reconstructed by replaying its
    history on the original DAG — the property the evolutionary search's
    crossover relies on.

    Types are exposed for the sampler, the tuner and the lowering pass;
    mutating states other than through {!apply} voids the invariants. *)

open Ansor_te

type iter_kind = Space | Reduce

type ivar_info = {
  iname : string;  (** display name, e.g. ["i.2"] or ["i.0@j.0"] *)
  extent : int;
  kind : iter_kind;
  ann : Step.annotation;
}

(** How iterators were derived from one another; used by lowering to
    reconstruct original axis values from concrete loop variables. *)
type relation =
  | Rsplit of { parent : int; children : int list; lengths : int list }
      (** [parent = sum_i children_i * prod_{j>i} lengths_j] *)
  | Rfuse of { fused : int; components : int list; lengths : int list }
      (** [components_i = (fused / prod_{j>i} lengths_j) mod lengths_i] *)

type location =
  | Loc_root  (** own loop nest at the top level *)
  | Loc_inlined  (** body substituted into consumers *)
  | Loc_at of { target : string; target_iv : int; bindings : (int * int) list }
      (** nested in [target]'s loop nest; see {!Step.Compute_at} *)

type stage = {
  op : Op.t;
  ivars : ivar_info array;  (** append-only table; ids are indices *)
  rels : relation list;  (** creation order *)
  leaves : int list;  (** current loop nest, outermost first *)
  loc : location;
  max_unroll : int option;
}

type t = {
  dag : Dag.t;  (** current DAG, including surgery (cache/rfactor) stages *)
  stages : (string * stage) list;  (** compute stages, in DAG topo order *)
  history : Step.t list;  (** steps applied so far, oldest first *)
}

exception Illegal of string
(** Raised by {!apply} on steps violating schedule legality. *)

val init : Dag.t -> t

val apply : t -> Step.t -> t
(** @raise Illegal when the step does not apply to the current state. *)

val apply_checked : t -> Step.t -> (t, string) result

val replay : Dag.t -> Step.t list -> t
(** [replay dag steps = List.fold_left apply (init dag) steps]; raises
    {!Illegal} like {!apply}. *)

val replay_checked : Dag.t -> Step.t list -> (t, string) result

(** {1 Accessors} *)

val find_stage : t -> string -> stage
(** @raise Not_found *)

val mem_stage : t -> string -> bool
val stage_names : t -> string list
val ivar : stage -> int -> ivar_info
val leaf_pos : stage -> int -> int option
(** Position of an iterator in the current leaf order, if it is a leaf. *)

val is_pristine : stage -> bool
(** No step has touched the stage yet (leaves are the original axes, at
    root location). Cache-write and rfactor require this. *)

val num_space_leaves : stage -> int
val num_reduce_leaves : stage -> int

val attach_targets : t -> string -> (string * int) list
(** Stages attached (directly) under the given stage, with their target
    iterator. *)

val pp : Format.formatter -> t -> unit
(** Prints every stage's loop nest (without lowering). *)
