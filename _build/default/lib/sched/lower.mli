(** Lowering: schedule state to executable loop-nest program.

    Lowering is deterministic.  It emits, for every non-inlined stage in
    topological order, a loop nest over the stage's leaf iterators:

    - original axis values are reconstructed from the concrete loop
      variables through the stage's split/fuse relations;
    - bodies of inlined stages are substituted into their consumers;
    - stages located with [compute_at] are emitted inside their target's
      loop nest, right after the deepest target loop their bound iterators
      and attachment point depend on, with bound iterators taking the
      target's values instead of being looped over;
    - reduction stages get a buffer-initialization entry so the update
      statements can accumulate.

    @raise State.Illegal on states whose attachment structure cannot be
    resolved (e.g. a [compute_at] target iterator depending on a loop of a
    third stage). *)

val lower : State.t -> Prog.t
