open Ansor_te

let concrete stage_name iname = stage_name ^ "." ^ iname

(* Value of an iterator as an index expression over concrete loop
   variables; [bound] supplies externally-pinned iterators. *)
let make_value (name : string) (stage : State.stage)
    (bound : (int * Expr.iexpr) list) =
  let memo = Hashtbl.create 16 in
  let rec value id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
      let v =
        match List.assoc_opt id bound with
        | Some e -> e
        | None ->
          if List.mem id stage.State.leaves then
            Expr.Axis (concrete name stage.State.ivars.(id).State.iname)
          else derive id
      in
      let v = Expr.simplify_iexpr v in
      Hashtbl.add memo id v;
      v
  and derive id =
    let rec find = function
      | [] ->
        raise
          (State.Illegal
             (Printf.sprintf "lower: iterator %d of stage %s has no value" id
                name))
      | State.Rsplit { parent; children; lengths } :: _ when parent = id ->
        (* parent = sum_i child_i * prod_{j>i} lengths_j *)
        let rec strides = function
          | [] -> []
          | _ :: rest -> List.fold_left ( * ) 1 rest :: strides rest
        in
        let terms =
          List.map2
            (fun c s -> Expr.Imul (value c, Expr.Int s))
            children (strides lengths)
        in
        List.fold_left
          (fun acc t -> Expr.Iadd (acc, t))
          (List.hd terms) (List.tl terms)
      | State.Rfuse { fused; components; lengths } :: rest ->
        if not (List.mem id components) then find rest
        else begin
          let rec locate pos comps lens =
            match (comps, lens) with
            | c :: _, l :: lens' when c = id ->
              (l, List.fold_left ( * ) 1 lens')
            | _ :: comps', _ :: lens' -> locate (pos + 1) comps' lens'
            | _ -> assert false
          in
          let len, stride = locate 0 components lengths in
          Expr.Imod (Expr.Idiv (value fused, Expr.Int stride), Expr.Int len)
        end
      | _ :: rest -> find rest
    in
    find stage.State.rels
  in
  value

let lower (st : State.t) : Prog.t =
  let inlined =
    List.filter_map
      (fun (n, (s : State.stage)) ->
        match (s.loc, s.op) with
        | State.Loc_inlined, Op.Compute c ->
          Some (n, (List.map fst c.axes, c.body))
        | _ -> None)
      st.stages
  in
  let rec inline_expr e =
    match (e : Expr.t) with
    | Expr.Access (n, idx) -> (
      match List.assoc_opt n inlined with
      | Some (axes, body) ->
        let env = List.map2 (fun a i -> (a, i)) axes idx in
        inline_expr (Expr.subst_axes env body)
      | None -> e)
    | Expr.Const _ | Expr.Cast_int _ -> e
    | Expr.Unop (op, a) -> Expr.Unop (op, inline_expr a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, inline_expr a, inline_expr b)
    | Expr.Select (c, a, b) -> Expr.Select (c, inline_expr a, inline_expr b)
  in
  let attachments name =
    List.filter
      (fun (_, (s : State.stage)) ->
        match s.loc with
        | State.Loc_at { target; _ } -> String.equal target name
        | _ -> false)
      st.stages
  in
  let inits = ref [] in
  let rec emit_stage ((name, stage) : string * State.stage)
      (bound : (int * Expr.iexpr) list) : Prog.item list =
    match stage.op with
    | Op.Placeholder _ -> []
    | Op.Compute c ->
      let value = make_value name stage bound in
      let axis_names = List.map fst c.axes @ List.map fst c.reduce_axes in
      let axis_env = List.mapi (fun i a -> (a, value i)) axis_names in
      let rhs =
        Expr.simplify (inline_expr (Expr.subst_axes axis_env c.body))
      in
      let indices = List.filteri (fun i _ -> i < List.length c.axes) axis_env in
      let indices = List.map snd indices in
      (match c.reduce with
      | Some kind ->
        if not (List.mem_assoc name !inits) then
          inits := (name, Op.init_value kind) :: !inits
      | None -> ());
      let stmt =
        Prog.Stmt
          {
            stage = name;
            tensor = name;
            indices;
            rhs;
            update = c.reduce;
            max_unroll = stage.max_unroll;
          }
      in
      (* Resolve attachment depth for every stage computed at this one. *)
      let emitted =
        List.filter (fun id -> not (List.mem_assoc id bound)) stage.leaves
      in
      let children =
        List.map
          (fun ((cname, cstage) : string * State.stage) ->
            match cstage.loc with
            | State.Loc_at { bindings; _ } ->
              let bound_c =
                List.map (fun (mine, theirs) -> (mine, value theirs)) bindings
              in
              (* place the child right after the deepest loop its bound
                 values depend on *)
              let needed =
                List.concat_map Expr.iexpr_axes (List.map snd bound_c)
              in
              let attach_leaf, attach_pos, _ =
                List.fold_left
                  (fun (leaf, lpos, pos) id ->
                    let v = concrete name stage.State.ivars.(id).State.iname in
                    if List.mem v needed then (Some id, pos, pos + 1)
                    else (leaf, lpos, pos + 1))
                  (None, -1, 0)
                  emitted
              in
              (* an attached reduction stage must execute exactly once per
                 combination of its bound iterators, otherwise it would
                 re-accumulate into already-reduced elements *)
              (match cstage.op with
              | Op.Compute { reduce = Some _; _ } ->
                let invocations =
                  List.fold_left
                    (fun (acc, pos) id ->
                      if pos <= attach_pos then
                        (acc * stage.State.ivars.(id).State.extent, pos + 1)
                      else (acc, pos + 1))
                    (1, 0) emitted
                  |> fst
                in
                let bound_product =
                  List.sort_uniq compare (List.map snd bindings)
                  |> List.fold_left
                       (fun acc id -> acc * stage.State.ivars.(id).State.extent)
                       1
                in
                if invocations <> bound_product then
                  raise
                    (State.Illegal
                       (Printf.sprintf
                          "lower: attached reduction %s would execute %d \
                           times for %d bound tile combinations"
                          cname invocations bound_product))
              | _ -> ());
              (cname, cstage, bound_c, attach_leaf)
            | _ -> assert false)
          (attachments name)
      in
      let emit_children where =
        List.concat_map
          (fun (cname, cstage, bound_c, attach_leaf) ->
            if attach_leaf = where then emit_stage (cname, cstage) bound_c
            else [])
          children
      in
      let rec build = function
        | [] -> [ stmt ]
        | iv :: rest ->
          let info = stage.ivars.(iv) in
          [
            Prog.Loop
              {
                lvar = concrete name info.State.iname;
                extent = info.extent;
                kind = info.kind;
                ann = info.ann;
                body = emit_children (Some iv) @ build rest;
              };
          ]
      in
      emit_children None @ build emitted
  in
  let items =
    List.concat_map
      (fun ((_, s) as named) ->
        match s.State.loc with
        | State.Loc_root -> emit_stage named []
        | State.Loc_inlined | State.Loc_at _ -> [])
      st.stages
  in
  let buffers =
    Array.to_list (Dag.ops st.dag)
    |> List.filter_map (fun op ->
           let n = Op.name op in
           if List.mem_assoc n inlined then None else Some (n, Op.shape op))
  in
  { Prog.items; buffers; inits = List.rev !inits }
