type annotation = No_ann | Parallel | Vectorize | Unroll

type t =
  | Split of { stage : string; iv : int; lengths : int list; tbd : bool }
  | Fuse of { stage : string; ivs : int list }
  | Reorder of { stage : string; order : int list }
  | Compute_at of {
      stage : string;
      target : string;
      target_iv : int;
      bindings : (int * int) list;
    }
  | Compute_inline of { stage : string }
  | Compute_root of { stage : string }
  | Cache_write of { stage : string }
  | Rfactor of { stage : string; iv : int; lengths : int list; tbd : bool }
  | Annotate of { stage : string; iv : int; ann : annotation }
  | Pragma_unroll of { stage : string; max_step : int }

let stage_of = function
  | Split { stage; _ }
  | Fuse { stage; _ }
  | Reorder { stage; _ }
  | Compute_at { stage; _ }
  | Compute_inline { stage }
  | Compute_root { stage }
  | Cache_write { stage }
  | Rfactor { stage; _ }
  | Annotate { stage; _ }
  | Pragma_unroll { stage; _ } ->
    stage

let pp_annotation fmt = function
  | No_ann -> Format.pp_print_string fmt "none"
  | Parallel -> Format.pp_print_string fmt "parallel"
  | Vectorize -> Format.pp_print_string fmt "vectorize"
  | Unroll -> Format.pp_print_string fmt "unroll"

let pp_ints fmt l =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    Format.pp_print_int fmt l

let pp fmt = function
  | Split { stage; iv; lengths; tbd } ->
    Format.fprintf fmt "split(%s, iv=%d, [%a]%s)" stage iv pp_ints lengths
      (if tbd then ", tbd" else "")
  | Fuse { stage; ivs } -> Format.fprintf fmt "fuse(%s, [%a])" stage pp_ints ivs
  | Reorder { stage; order } ->
    Format.fprintf fmt "reorder(%s, [%a])" stage pp_ints order
  | Compute_at { stage; target; target_iv; bindings } ->
    Format.fprintf fmt "compute_at(%s, %s, iv=%d, bind=[%a])" stage target
      target_iv
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt (a, b) -> Format.fprintf fmt "%d->%d" a b))
      bindings
  | Compute_inline { stage } -> Format.fprintf fmt "inline(%s)" stage
  | Compute_root { stage } -> Format.fprintf fmt "compute_root(%s)" stage
  | Cache_write { stage } -> Format.fprintf fmt "cache_write(%s)" stage
  | Rfactor { stage; iv; lengths; tbd } ->
    Format.fprintf fmt "rfactor(%s, iv=%d, [%a]%s)" stage iv pp_ints lengths
      (if tbd then ", tbd" else "")
  | Annotate { stage; iv; ann } ->
    Format.fprintf fmt "annotate(%s, iv=%d, %a)" stage iv pp_annotation ann
  | Pragma_unroll { stage; max_step } ->
    Format.fprintf fmt "pragma_unroll(%s, %d)" stage max_step

let history_key steps =
  Digest.string (Marshal.to_string steps [ Marshal.No_sharing ])
