(** Static validation of lowered programs.

    A third correctness oracle besides the interpreter and the C backend:
    purely static, so it works at any problem size.  Interval analysis of
    the index expressions under the loop bounds checks that

    - every loop has a positive extent and loop variables never shadow;
    - every {e write} lands inside its buffer, and the writes of each
      non-input buffer can reach its first and last element (a cheap
      coverage proxy: splits/fuses that lose or duplicate iterations
      shift the write hull);
    - every {e unguarded} read is in bounds.  Reads inside [select]
      branches are skipped: the guard may be exactly what makes them safe
      (the padding and transposed-convolution idioms), and deciding that
      statically would need relational reasoning;
    - every reduction-updated buffer is initialized.

    The sampler property tests run the interpreter on small shapes; this
    validator is additionally exercised on every sampled program to catch
    lowering regressions on realistic (large) shapes where interpretation
    is infeasible. *)

type issue = { where : string; message : string }

val pp_issue : Format.formatter -> issue -> unit

val check : Prog.t -> issue list
(** Empty when the program passes all static checks. *)

(** Interval arithmetic over index expressions, exposed for tests. *)
module Interval : sig
  type t = { lo : int; hi : int }

  val of_iexpr : (string -> t option) -> Ansor_te.Expr.iexpr -> t option
  (** Interval of an expression given variable ranges; [None] when the
      expression divides by a non-constant or a range is unknown. *)
end
