open Ansor_te

type issue = { where : string; message : string }

let pp_issue fmt i = Format.fprintf fmt "%s: %s" i.where i.message

module Interval = struct
  type t = { lo : int; hi : int }

  let point n = { lo = n; hi = n }

  let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }

  let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }

  let mul a b =
    let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
    {
      lo = List.fold_left min max_int products;
      hi = List.fold_left max min_int products;
    }

  let floordiv_const a d =
    (* d > 0; floor division is monotone *)
    let fd x =
      if x >= 0 || x mod d = 0 then x / d else (x / d) - 1
    in
    { lo = fd a.lo; hi = fd a.hi }

  let rec of_iexpr env (e : Expr.iexpr) =
    match e with
    | Expr.Int n -> Some (point n)
    | Expr.Axis v -> env v
    | Expr.Iadd (a, b) -> map2 add (of_iexpr env a) (of_iexpr env b)
    | Expr.Isub (a, b) -> map2 sub (of_iexpr env a) (of_iexpr env b)
    | Expr.Imul (a, b) -> map2 mul (of_iexpr env a) (of_iexpr env b)
    | Expr.Idiv (a, b) -> (
      match (of_iexpr env a, of_iexpr env b) with
      | Some a, Some { lo = d; hi = d' } when d = d' && d > 0 ->
        Some (floordiv_const a d)
      | _ -> None)
    | Expr.Imod (_, b) -> (
      match of_iexpr env b with
      | Some { lo = d; hi = d' } when d = d' && d > 0 ->
        Some { lo = 0; hi = d - 1 }
      | _ -> None)

  and map2 f a b =
    match (a, b) with Some a, Some b -> Some (f a b) | _ -> None
end

let buffer_size shape = List.fold_left ( * ) 1 shape

(* interval of the flattened row-major offset *)
let offset_interval env shape indices =
  let rec go dims idx acc =
    match (dims, idx) with
    | [], [] -> Some acc
    | d :: dims', i :: idx' -> (
      match Interval.of_iexpr env i with
      | None -> None
      | Some iv ->
        go dims' idx'
          (Interval.add (Interval.mul acc (Interval.point d)) iv))
    | _ -> None
  in
  match (shape, indices) with
  | [], [] -> Some (Interval.point 0)
  | d :: dims, i :: idx -> (
    ignore d;
    match Interval.of_iexpr env i with
    | None -> None
    | Some iv -> go dims idx iv)
  | _ -> None

(* reads of an expression, tagged with whether a select guards them *)
let reads_with_guard e =
  let acc = ref [] in
  let rec go guarded (e : Expr.t) =
    match e with
    | Expr.Const _ | Expr.Cast_int _ -> ()
    | Expr.Access (t, idx) -> acc := (t, idx, guarded) :: !acc
    | Expr.Unop (_, a) -> go guarded a
    | Expr.Binop (_, a, b) ->
      go guarded a;
      go guarded b
    | Expr.Select (_, a, b) ->
      go true a;
      go true b
  in
  go false e;
  List.rev !acc

let check (prog : Prog.t) =
  let issues = ref [] in
  let report where fmt =
    Format.kasprintf (fun message -> issues := { where; message } :: !issues) fmt
  in
  let shapes = prog.buffers in
  (* per-buffer write hull, for the coverage check *)
  let write_hull : (string, Interval.t) Hashtbl.t = Hashtbl.create 16 in
  let visit enclosing (stmt : Prog.stmt) =
    let where = "statement of stage " ^ stmt.stage in
    (* loop scoping *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (l : Prog.loop) ->
        if l.extent < 1 then report where "loop %s has extent %d" l.lvar l.extent;
        if Hashtbl.mem seen l.lvar then
          report where "loop variable %s shadows an outer loop" l.lvar;
        Hashtbl.replace seen l.lvar ())
      enclosing;
    let env v =
      match
        List.find_opt (fun (l : Prog.loop) -> String.equal l.lvar v) enclosing
      with
      | Some l -> Some { Interval.lo = 0; hi = l.extent - 1 }
      | None -> None
    in
    let shape_of t = List.assoc_opt t shapes in
    let check_access what t idx =
      match shape_of t with
      | None -> report where "%s unknown buffer %s" what t
      | Some shape -> (
        match offset_interval env shape idx with
        | None -> () (* non-affine beyond the analysis: no claim *)
        | Some iv ->
          let size = buffer_size shape in
          if iv.lo < 0 || iv.hi >= size then
            report where "%s of %s may be out of bounds: offset in [%d, %d], size %d"
              what t iv.lo iv.hi size;
          if what = "write" then
            let cur =
              Option.value
                (Hashtbl.find_opt write_hull t)
                ~default:{ Interval.lo = max_int; hi = min_int }
            in
            Hashtbl.replace write_hull t
              { Interval.lo = min cur.lo iv.lo; hi = max cur.hi iv.hi })
    in
    check_access "write" stmt.tensor stmt.indices;
    List.iter
      (fun (t, idx, guarded) -> if not guarded then check_access "read" t idx)
      (reads_with_guard stmt.rhs);
    (* reduction discipline *)
    if stmt.update <> None && not (List.mem_assoc stmt.tensor prog.inits) then
      report where "reduction into %s without initialization" stmt.tensor
  in
  Prog.iter_stmts prog visit;
  (* write coverage: the hull of every written buffer reaches both ends *)
  Hashtbl.iter
    (fun t (hull : Interval.t) ->
      match List.assoc_opt t shapes with
      | None -> ()
      | Some shape ->
        let size = buffer_size shape in
        if hull.lo > 0 || hull.hi < size - 1 then
          (let where = "buffer " ^ t in
           issues :=
             {
               where;
               message =
                 Printf.sprintf
                   "writes only span offsets [%d, %d] of size %d" hull.lo
                   hull.hi size;
             }
             :: !issues))
    write_hull;
  List.rev !issues
