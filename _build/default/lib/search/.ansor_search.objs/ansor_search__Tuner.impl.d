lib/search/tuner.ml: Ansor_cost_model Ansor_evolution Ansor_machine Ansor_sched Ansor_sketch Ansor_te Ansor_util Float Fun Hashtbl List Lower Option State Step Task
