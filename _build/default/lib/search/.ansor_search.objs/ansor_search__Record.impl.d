lib/search/record.ml: Ansor_sched Fun List Printf Result State Step String Task Tuner
