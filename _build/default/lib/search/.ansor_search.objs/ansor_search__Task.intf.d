lib/search/task.mli: Ansor_machine Ansor_sketch Ansor_te Dag
