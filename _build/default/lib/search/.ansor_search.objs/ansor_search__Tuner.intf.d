lib/search/tuner.mli: Ansor_cost_model Ansor_evolution Ansor_machine Ansor_sched Ansor_sketch State Task
