lib/search/record.mli: Ansor_sched Ansor_te State Step Tuner
