lib/search/task.ml: Ansor_machine Ansor_sketch Ansor_te Dag
