(** Search tasks.

    A task is the unit of tuning (§6): one subgraph on one target machine,
    with a weight counting how many times the subgraph appears in the
    network(s) being optimized. *)

open Ansor_te

type t = {
  name : string;  (** human-readable, e.g. ["C2D.s1"] *)
  dag : Dag.t;
  machine : Ansor_machine.Machine.t;
  weight : int;
}

val create :
  ?weight:int -> name:string -> machine:Ansor_machine.Machine.t -> Dag.t -> t
(** @raise Invalid_argument if [weight < 1]. *)

val key : t -> string
(** Stable identity: machine name + workload key.  Tasks with equal keys
    are the same tuning problem (used for cost-model normalization groups
    and task deduplication). *)

val flops : t -> float
(** Floating-point work of one execution of the subgraph (the C_i of the
    task scheduler's gradient approximation). *)

val policy : t -> Ansor_sketch.Policy.t
(** The annotation policy matching the task's machine. *)
