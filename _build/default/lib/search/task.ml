open Ansor_te

type t = {
  name : string;
  dag : Dag.t;
  machine : Ansor_machine.Machine.t;
  weight : int;
}

let create ?(weight = 1) ~name ~machine dag =
  if weight < 1 then invalid_arg "Task.create: weight < 1";
  { name; dag; machine; weight }

let key t = t.machine.Ansor_machine.Machine.name ^ "/" ^ Dag.workload_key t.dag

let flops t = float_of_int (Dag.flops t.dag)

let policy t =
  let m = t.machine in
  let kind =
    match m.Ansor_machine.Machine.kind with
    | Ansor_machine.Machine.Cpu -> `Cpu
    | Ansor_machine.Machine.Gpu -> `Gpu
  in
  Ansor_sketch.Policy.for_machine_kind kind
    ~workers:m.Ansor_machine.Machine.num_workers
