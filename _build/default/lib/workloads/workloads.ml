open Ansor_te

type case = { case_name : string; dag : Dag.t }

let case fmt =
  Format.kasprintf (fun case_name dag -> { case_name; dag }) fmt

let op_names =
  [ "C1D"; "C2D"; "C3D"; "GMM"; "GRP"; "DIL"; "DEP"; "T2D"; "CAP"; "NRM" ]

let c1d_cases b =
  [
    case "C1D.1.b%d" b (Nn.conv1d ~n:b ~c:64 ~l:256 ~f:128 ~k:3 ~stride:1 ~pad:1 ());
    case "C1D.2.b%d" b (Nn.conv1d ~n:b ~c:128 ~l:128 ~f:128 ~k:3 ~stride:1 ~pad:1 ());
    case "C1D.3.b%d" b (Nn.conv1d ~n:b ~c:64 ~l:512 ~f:64 ~k:9 ~stride:1 ~pad:4 ());
    case "C1D.4.b%d" b
      (Nn.conv1d ~n:b ~c:128 ~l:256 ~f:256 ~k:3 ~stride:2 ~pad:1 ());
  ]

let c2d_shapes =
  [
    (64, 56, 56, 64, 3, 1, 1);
    (128, 28, 28, 128, 3, 1, 1);
    (256, 14, 14, 256, 3, 1, 1);
    (512, 7, 7, 512, 3, 1, 1);
  ]

let c2d_cases b =
  List.mapi
    (fun i (c, h, w, f, k, s, p) ->
      case "C2D.%d.b%d" (i + 1) b
        (Nn.conv2d ~n:b ~c ~h ~w ~f ~kh:k ~kw:k ~stride:s ~pad:p ()))
    c2d_shapes

let c3d_cases b =
  [
    case "C3D.1.b%d" b
      (Nn.conv3d ~n:b ~c:16 ~d:16 ~h:28 ~w:28 ~f:32 ~kd:3 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
    case "C3D.2.b%d" b
      (Nn.conv3d ~n:b ~c:32 ~d:8 ~h:14 ~w:14 ~f:64 ~kd:3 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
    case "C3D.3.b%d" b
      (Nn.conv3d ~n:b ~c:16 ~d:8 ~h:56 ~w:56 ~f:16 ~kd:3 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
    case "C3D.4.b%d" b
      (Nn.conv3d ~n:b ~c:64 ~d:4 ~h:14 ~w:14 ~f:64 ~kd:3 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
  ]

let gmm_cases b =
  [
    case "GMM.1.b%d" b (Nn.batch_matmul ~b ~m:128 ~n:128 ~k:128 ());
    case "GMM.2.b%d" b (Nn.batch_matmul ~b ~m:256 ~n:256 ~k:256 ());
    case "GMM.3.b%d" b (Nn.batch_matmul ~b ~m:512 ~n:512 ~k:512 ());
    case "GMM.4.b%d" b (Nn.batch_matmul ~b ~m:64 ~n:1024 ~k:256 ());
  ]

let grp_cases b =
  [
    case "GRP.1.b%d" b
      (Nn.conv2d ~groups:4 ~n:b ~c:64 ~h:28 ~w:28 ~f:64 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
    case "GRP.2.b%d" b
      (Nn.conv2d ~groups:4 ~n:b ~c:128 ~h:28 ~w:28 ~f:128 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
    case "GRP.3.b%d" b
      (Nn.conv2d ~groups:8 ~n:b ~c:256 ~h:14 ~w:14 ~f:256 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
    case "GRP.4.b%d" b
      (Nn.conv2d ~groups:4 ~n:b ~c:64 ~h:56 ~w:56 ~f:64 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
  ]

let dil_cases b =
  List.mapi
    (fun i (c, h, w, f, k, s, p) ->
      case "DIL.%d.b%d" (i + 1) b
        (Nn.conv2d ~dilation:2 ~n:b ~c ~h ~w ~f ~kh:k ~kw:k ~stride:s
           ~pad:(2 * p) ()))
    c2d_shapes

let dep_cases b =
  [
    case "DEP.1.b%d" b
      (Nn.depthwise_conv2d ~n:b ~c:32 ~h:112 ~w:112 ~kh:3 ~kw:3 ~stride:1
         ~pad:1 ());
    case "DEP.2.b%d" b
      (Nn.depthwise_conv2d ~n:b ~c:64 ~h:56 ~w:56 ~kh:3 ~kw:3 ~stride:1 ~pad:1
         ());
    case "DEP.3.b%d" b
      (Nn.depthwise_conv2d ~n:b ~c:128 ~h:28 ~w:28 ~kh:3 ~kw:3 ~stride:1 ~pad:1
         ());
    case "DEP.4.b%d" b
      (Nn.depthwise_conv2d ~n:b ~c:256 ~h:14 ~w:14 ~kh:3 ~kw:3 ~stride:1 ~pad:1
         ());
  ]

let t2d_shapes =
  [
    (512, 4, 4, 256);
    (256, 8, 8, 128);
    (128, 16, 16, 64);
    (64, 32, 32, 32);
  ]

let t2d_cases b =
  List.mapi
    (fun i (c, h, w, f) ->
      case "T2D.%d.b%d" (i + 1) b
        (Nn.conv2d_transposed ~n:b ~c ~h ~w ~f ~kh:4 ~kw:4 ~stride:2 ~pad:1 ()))
    t2d_shapes

let cap_cases b =
  [
    case "CAP.1.b%d" b
      (Nn.capsule_conv2d ~n:b ~c:8 ~h:16 ~w:16 ~f:8 ~kh:3 ~kw:3 ~capsule:4
         ~stride:1 ~pad:1 ());
    case "CAP.2.b%d" b
      (Nn.capsule_conv2d ~n:b ~c:16 ~h:8 ~w:8 ~f:16 ~kh:3 ~kw:3 ~capsule:4
         ~stride:1 ~pad:1 ());
    case "CAP.3.b%d" b
      (Nn.capsule_conv2d ~n:b ~c:8 ~h:24 ~w:24 ~f:8 ~kh:3 ~kw:3 ~capsule:4
         ~stride:1 ~pad:1 ());
    case "CAP.4.b%d" b
      (Nn.capsule_conv2d ~n:b ~c:16 ~h:16 ~w:16 ~f:8 ~kh:3 ~kw:3 ~capsule:4
         ~stride:1 ~pad:1 ());
  ]

let nrm_cases b =
  [
    case "NRM.1.b%d" b (Nn.matrix_norm ~m:(256 * b) ~n:256 ());
    case "NRM.2.b%d" b (Nn.matrix_norm ~m:(512 * b) ~n:512 ());
    case "NRM.3.b%d" b (Nn.matrix_norm ~m:(1024 * b) ~n:256 ());
    case "NRM.4.b%d" b (Nn.matrix_norm ~m:(128 * b) ~n:4096 ());
  ]

let op_cases ~op ~batch =
  match op with
  | "C1D" -> c1d_cases batch
  | "C2D" -> c2d_cases batch
  | "C3D" -> c3d_cases batch
  | "GMM" -> gmm_cases batch
  | "GRP" -> grp_cases batch
  | "DIL" -> dil_cases batch
  | "DEP" -> dep_cases batch
  | "T2D" -> t2d_cases batch
  | "CAP" -> cap_cases batch
  | "NRM" -> nrm_cases batch
  | op -> invalid_arg (Printf.sprintf "Workloads.op_cases: unknown operator %s" op)

let single_op_suite ~batch =
  List.map (fun op -> (op, op_cases ~op ~batch)) op_names

let conv_layer_cases b =
  List.mapi
    (fun i (c, h, w, f, k, s, p) ->
      case "ConvLayer.%d.b%d" (i + 1) b
        (Nn.conv_layer ~n:b ~c ~h ~w ~f ~kh:k ~kw:k ~stride:s ~pad:p ()))
    c2d_shapes

let tbg_cases b =
  [
    case "TBG.1.b%d" b (Nn.tbg ~b:(b * 12) ~m:128 ~n:128 ~k:64 ());
    case "TBG.2.b%d" b (Nn.tbg ~b:(b * 12) ~m:256 ~n:256 ~k:64 ());
    case "TBG.3.b%d" b (Nn.tbg ~b:(b * 12) ~m:128 ~n:128 ~k:128 ());
    case "TBG.4.b%d" b (Nn.tbg ~b:(b * 8) ~m:64 ~n:64 ~k:512 ());
  ]

let conv_layer_cases ~batch = conv_layer_cases batch
let tbg_cases ~batch = tbg_cases batch

type net = { net_name : string; layers : (case * int) list }

let conv_layer_task b i (c, h, w, f, k, s, p) =
  case "conv%d.c%d.h%d.f%d.k%d.s%d.b%d" i c h f k s b
    (Nn.conv_layer ~n:b ~c ~h ~w ~f ~kh:k ~kw:k ~stride:s ~pad:p ())

let resnet50 ~batch =
  let b = batch in
  let convs =
    [
      ((3, 224, 224, 64, 7, 2, 3), 1);
      ((64, 56, 56, 64, 1, 1, 0), 4);
      ((64, 56, 56, 64, 3, 1, 1), 4);
      ((64, 56, 56, 256, 1, 1, 0), 4);
      ((256, 56, 56, 128, 1, 2, 0), 1);
      ((128, 28, 28, 128, 3, 1, 1), 4);
      ((128, 28, 28, 512, 1, 1, 0), 4);
      ((512, 28, 28, 256, 1, 2, 0), 1);
      ((256, 14, 14, 256, 3, 1, 1), 6);
      ((256, 14, 14, 1024, 1, 1, 0), 6);
      ((1024, 14, 14, 512, 1, 2, 0), 1);
      ((512, 7, 7, 512, 3, 1, 1), 3);
      ((512, 7, 7, 2048, 1, 1, 0), 3);
    ]
  in
  let layers =
    List.mapi (fun i (shape, w) -> (conv_layer_task b i shape, w)) convs
    @ [ (case "fc.b%d" b (Nn.matmul ~m:b ~n:1000 ~k:2048 ()), 1) ]
  in
  { net_name = "ResNet-50"; layers }

let mobilenet_v2 ~batch =
  let b = batch in
  let dw i c h =
    case "dw%d.c%d.h%d.b%d" i c h b
      (Nn.depthwise_conv2d ~n:b ~c ~h ~w:h ~kh:3 ~kw:3 ~stride:1 ~pad:1 ())
  in
  let pw i c h f =
    case "pw%d.c%d.h%d.f%d.b%d" i c h f b
      (Nn.conv_layer ~n:b ~c ~h ~w:h ~f ~kh:1 ~kw:1 ~stride:1 ~pad:0 ())
  in
  let layers =
    [
      (dw 0 32 112, 1);
      (pw 0 32 112 64, 1);
      (dw 1 64 56, 2);
      (pw 1 64 56 128, 2);
      (dw 2 128 28, 3);
      (pw 2 128 28 256, 3);
      (dw 3 256 14, 4);
      (pw 3 256 14 512, 4);
      (dw 4 512 7, 3);
      (pw 4 512 7 1024, 3);
      (case "fc.b%d" b (Nn.matmul ~m:b ~n:1000 ~k:1024 ()), 1);
    ]
  in
  { net_name = "MobileNet-V2"; layers }

let resnet3d_18 ~batch =
  let b = batch in
  let c3 i c d h f s =
    case "c3d%d.c%d.d%d.h%d.f%d.b%d" i c d h f b
      (Nn.conv3d ~n:b ~c ~d ~h ~w:h ~f ~kd:3 ~kh:3 ~kw:3 ~stride:s ~pad:1 ())
  in
  let layers =
    [
      (c3 0 16 16 56 16 1, 4);
      (c3 1 16 16 56 32 2, 1);
      (c3 2 32 8 28 32 1, 3);
      (c3 3 32 8 28 64 2, 1);
      (c3 4 64 4 14 64 1, 3);
      (c3 5 64 4 14 128 2, 1);
      (c3 6 128 2 7 128 1, 3);
      (case "fc.b%d" b (Nn.matmul ~m:b ~n:400 ~k:128 ()), 1);
    ]
  in
  { net_name = "3D-ResNet-18"; layers }

let dcgan ~batch =
  let b = batch in
  let t2 i c h f =
    case "t2d%d.c%d.h%d.f%d.b%d" i c h f b
      (Nn.conv2d_transposed ~n:b ~c ~h ~w:h ~f ~kh:4 ~kw:4 ~stride:2 ~pad:1 ())
  in
  let layers =
    [
      (case "proj.b%d" b (Nn.matmul ~m:b ~n:(4 * 4 * 512) ~k:100 ()), 1);
      (t2 0 512 4 256, 1);
      (t2 1 256 8 128, 1);
      (t2 2 128 16 64, 1);
      (t2 3 64 32 3, 1);
    ]
  in
  { net_name = "DCGAN"; layers }

let bert ~batch =
  let b = batch in
  let seq = 128 and hidden = 256 and heads = 8 in
  let dk = hidden / heads in
  let layers =
    [
      ( case "qkv.b%d" b (Nn.matmul ~m:(b * seq) ~n:hidden ~k:hidden ()),
        4 * 12 );
      (case "attn_qk.b%d" b (Nn.tbg ~b:(b * heads) ~m:seq ~n:seq ~k:dk ()), 12);
      (case "softmax.b%d" b (Nn.softmax ~m:(b * heads * seq) ~n:seq ()), 12);
      ( case "attn_v.b%d" b
          (Nn.batch_matmul ~b:(b * heads) ~m:seq ~n:dk ~k:seq ()),
        12 );
      ( case "ffn1.b%d" b (Nn.matmul ~m:(b * seq) ~n:(4 * hidden) ~k:hidden ()),
        12 );
      ( case "ffn2.b%d" b (Nn.matmul ~m:(b * seq) ~n:hidden ~k:(4 * hidden) ()),
        12 );
    ]
  in
  { net_name = "BERT"; layers }

let networks ~batch =
  [
    resnet50 ~batch;
    mobilenet_v2 ~batch;
    resnet3d_18 ~batch;
    dcgan ~batch;
    bert ~batch;
  ]

let net_tasks ~machine net =
  List.map
    (fun (c, w) ->
      (Ansor_search.Task.create ~weight:w ~name:c.case_name ~machine c.dag, w))
    net.layers

let vgg16 ~batch =
  let b = batch in
  let layers =
    List.mapi
      (fun i ((c, h, f), weight) -> (conv_layer_task b (100 + i) (c, h, h, f, 3, 1, 1), weight))
      [
        ((3, 224, 64), 1);
        ((64, 224, 64), 1);
        ((64, 112, 128), 1);
        ((128, 112, 128), 1);
        ((128, 56, 256), 1);
        ((256, 56, 256), 2);
        ((256, 28, 512), 1);
        ((512, 28, 512), 2);
        ((512, 14, 512), 3);
      ]
    @ [
        (case "fc1.b%d" b (Nn.matmul ~m:b ~n:4096 ~k:(512 * 7 * 7) ()), 1);
        (case "fc2.b%d" b (Nn.matmul ~m:b ~n:4096 ~k:4096 ()), 1);
        (case "fc3.b%d" b (Nn.matmul ~m:b ~n:1000 ~k:4096 ()), 1);
      ]
  in
  { net_name = "VGG-16"; layers }

let transformer_block ~batch =
  let b = batch in
  let seq = 128 and hidden = 512 and heads = 8 in
  let dk = hidden / heads in
  let layers =
    [
      (case "qkv_proj.b%d" b (Nn.matmul ~m:(b * seq) ~n:(3 * hidden) ~k:hidden ()), 1);
      (case "scores.b%d" b (Nn.tbg ~b:(b * heads) ~m:seq ~n:seq ~k:dk ()), 1);
      (case "softmax.b%d" b (Nn.softmax ~m:(b * heads * seq) ~n:seq ()), 1);
      (case "context.b%d" b (Nn.batch_matmul ~b:(b * heads) ~m:seq ~n:dk ~k:seq ()), 1);
      (case "out_proj.b%d" b (Nn.matmul ~m:(b * seq) ~n:hidden ~k:hidden ()), 1);
      (case "ln.b%d" b (Nn.layer_norm ~m:(b * seq) ~n:hidden ()), 2);
      (case "ffn_up.b%d" b (Nn.matmul ~m:(b * seq) ~n:(4 * hidden) ~k:hidden ()), 1);
      (case "ffn_down.b%d" b (Nn.matmul ~m:(b * seq) ~n:hidden ~k:(4 * hidden) ()), 1);
    ]
  in
  { net_name = "Transformer-block"; layers }

let squeezenet_fire ~batch =
  let b = batch in
  let layers =
    [
      (conv_layer_task b 200 (64, 56, 56, 16, 1, 1, 0), 1);
      (conv_layer_task b 201 (16, 56, 56, 64, 1, 1, 0), 1);
      (conv_layer_task b 202 (16, 56, 56, 64, 3, 1, 1), 1);
      (case "pool.b%d" b (Nn.max_pool2d ~n:b ~c:128 ~h:56 ~w:56 ~k:2 ~stride:2 ()), 1);
    ]
  in
  { net_name = "SqueezeNet-fire"; layers }

let extended_networks ~batch =
  [ vgg16 ~batch; transformer_block ~batch; squeezenet_fire ~batch ]
