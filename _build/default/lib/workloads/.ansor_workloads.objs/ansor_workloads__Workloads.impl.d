lib/workloads/workloads.ml: Ansor_search Ansor_te Dag Format List Nn Printf
