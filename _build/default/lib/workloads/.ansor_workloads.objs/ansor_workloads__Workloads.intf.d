lib/workloads/workloads.mli: Ansor_machine Ansor_search Ansor_te Dag
