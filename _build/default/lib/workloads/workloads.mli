(** The evaluation workloads of §7.

    - {b Single operators} (§7.1): ten operator families — C1D, C2D, C3D,
      GMM, GRP, DIL, DEP, T2D, CAP, NRM — each with four shape
      configurations drawn from common DNNs, at two batch sizes.
    - {b Subgraphs} (§7.2): ConvLayer (conv2d + batch-norm + ReLU) and TBG
      (transpose + transpose + batch matmul), four shapes each.
    - {b Networks} (§7.3): ResNet-50, MobileNet-V2, 3D-ResNet-18, the
      DCGAN generator and BERT, expressed as their unique subgraph tasks
      with appearance counts w_i — the exact inputs of the task
      scheduler. *)

open Ansor_te

type case = { case_name : string; dag : Dag.t }

val op_names : string list
(** ["C1D"; "C2D"; "C3D"; "GMM"; "GRP"; "DIL"; "DEP"; "T2D"; "CAP";
    "NRM"] — the x-axis of Figure 6. *)

val op_cases : op:string -> batch:int -> case list
(** Four shape configurations of one operator family.
    @raise Invalid_argument on unknown names. *)

val single_op_suite : batch:int -> (string * case list) list
(** All ten operator families. *)

val conv_layer_cases : batch:int -> case list
val tbg_cases : batch:int -> case list

type net = { net_name : string; layers : (case * int) list }
(** Unique subgraphs with their appearance counts. *)

val resnet50 : batch:int -> net
val mobilenet_v2 : batch:int -> net
val resnet3d_18 : batch:int -> net
val dcgan : batch:int -> net
val bert : batch:int -> net

val networks : batch:int -> net list
(** The five networks of Figure 9, in paper order. *)

val net_tasks :
  machine:Ansor_machine.Machine.t ->
  net ->
  (Ansor_search.Task.t * int) list
(** The network's tuning tasks (with weights) on a machine. *)

(** {1 Additional networks (beyond the paper's five)} *)

val vgg16 : batch:int -> net
(** Classic heavy-conv CNN: large 3x3 convolutions and three dense
    layers — a compute-bound stress test for the task scheduler. *)

val transformer_block : batch:int -> net
(** One encoder block (attention QKV + scores + context + FFN + layer
    norm), the building pattern of modern LLM inference. *)

val squeezenet_fire : batch:int -> net
(** A SqueezeNet "fire" stage: squeeze 1x1 followed by parallel expand
    1x1 / 3x3 convolutions — many small heterogeneous tasks. *)

val extended_networks : batch:int -> net list
(** The three extra networks above. *)
