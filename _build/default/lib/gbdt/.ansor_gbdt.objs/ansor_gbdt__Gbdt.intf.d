lib/gbdt/gbdt.mli:
