lib/gbdt/gbdt.ml: Array Fun List
