(** Reference interpreter: the functional-correctness oracle.

    Executes both unscheduled DAGs (naive, loop-by-loop evaluation) and
    lowered programs ({!Ansor_sched.Prog.t}) on real float arrays.  The
    central invariant of the whole system — any legal schedule computes
    exactly the tensors of the naive program — is checked by comparing the
    two.  Intended for small shapes; performance experiments use the
    analytical simulator instead. *)

open Ansor_te
open Ansor_sched

type tensors = (string * float array) list
(** Flat row-major storage per tensor name. *)

exception Runtime_error of string
(** Raised on out-of-bounds accesses, missing tensors or shape
    mismatches — any of these indicates an illegal schedule or a lowering
    bug. *)

val random_inputs : Ansor_util.Rng.t -> Dag.t -> tensors
(** Uniform values in [-1, 1) for every placeholder of the DAG. *)

val run_dag : Dag.t -> inputs:tensors -> tensors
(** Naive evaluation of every compute operator in topological order.
    Returns all computed tensors (not the inputs). *)

val run_prog : Prog.t -> inputs:tensors -> tensors
(** Executes a lowered program. Returns all non-input buffers. *)

val max_abs_diff : float array -> float array -> float
(** @raise Runtime_error on length mismatch. *)

val check_equivalent :
  ?tol:float -> Dag.t -> Prog.t -> inputs:tensors -> (unit, string) result
(** Runs both and compares every DAG output tensor within [tol]
    (default [1e-4]); [Error] describes the first mismatch. *)
