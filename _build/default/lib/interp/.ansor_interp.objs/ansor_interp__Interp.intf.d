lib/interp/interp.mli: Ansor_sched Ansor_te Ansor_util Dag Prog
