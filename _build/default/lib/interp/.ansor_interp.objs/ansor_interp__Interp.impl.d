lib/interp/interp.ml: Ansor_sched Ansor_te Ansor_util Array Dag Expr Float Format Hashtbl List Op Printf Prog
