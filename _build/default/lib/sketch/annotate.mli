(** Random annotation (§4.2) and constrained replay.

    A sketch's history contains splits whose tile sizes are placeholders
    ([tbd]).  {!replay_constrained} replays a step list on the original
    DAG while solving the matched-tiling constraints: when a split's
    children are bound by a later [Compute_at] to iterators of another
    stage (whose sizes are already concrete at that point in the history),
    the bound positions are forced to the producer's extents and only the
    remaining positions are chosen — randomly for [tbd] splits, preserved
    (with the last free position adjusted) for concrete ones.

    This one mechanism serves three callers: random annotation of fresh
    sketches, re-validation of mutated step lists (tile-size mutation
    edits a split and the consumer's matching split is re-solved here),
    and crossover offspring verification. *)

open Ansor_te
open Ansor_sched

type fill = Random_fill of Ansor_util.Rng.t | Keep

val replay_constrained :
  Dag.t -> Step.t list -> fill:fill -> (State.t, string) result
(** Replays the steps with constraint solving as described above.  The
    resulting state's history contains only concrete steps. *)

val annotate :
  Ansor_util.Rng.t -> Policy.t -> State.t -> (State.t, string) result
(** Appends random annotation steps to a concrete (fully-filled) state:
    fuse-and-parallelize outer space loops of root stages, vectorize
    innermost loops, unroll small inner loops, pick an
    [auto_unroll_max_step] pragma, and occasionally loosen a fused
    producer's computation location. *)
