lib/sketch/policy.ml:
