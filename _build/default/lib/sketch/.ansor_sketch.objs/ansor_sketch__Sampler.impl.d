lib/sketch/sampler.ml: Annotate Ansor_sched Ansor_util Fun Gen List
