lib/sketch/rules.mli: Ansor_sched State
