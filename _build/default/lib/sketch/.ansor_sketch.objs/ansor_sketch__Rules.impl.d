lib/sketch/rules.ml: Ansor_sched Ansor_te Array Dag Fun List Op State Step
