lib/sketch/gen.mli: Ansor_sched Ansor_te Dag Rules State Step
