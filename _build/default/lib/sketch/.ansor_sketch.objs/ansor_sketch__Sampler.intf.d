lib/sketch/sampler.mli: Ansor_sched Ansor_te Ansor_util Dag Policy State
