lib/sketch/policy.mli:
