lib/sketch/gen.ml: Ansor_sched Ansor_te Dag Hashtbl List Op Printf Queue Rules State Step
