lib/sketch/annotate.ml: Ansor_sched Ansor_util Array Fun List Policy Printf Result State Step String
