lib/sketch/annotate.mli: Ansor_sched Ansor_te Ansor_util Dag Policy State Step
