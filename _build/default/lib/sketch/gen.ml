open Ansor_te
open Ansor_sched

let generate ?(rules = Rules.default) ?(max_sketches = 128) dag =
  let terminals = ref [] in
  let seen = Hashtbl.create 32 in
  let add_terminal st =
    (* distinct derivation paths can converge on the same sketch *)
    let key = Step.history_key st.State.history in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      terminals := st :: !terminals
    end
  in
  let queue = Queue.create () in
  Queue.add (State.init dag, Dag.num_ops dag - 1) queue;
  let guard = ref 0 in
  while (not (Queue.is_empty queue)) && List.length !terminals < max_sketches do
    incr guard;
    if !guard > 100_000 then
      invalid_arg "Gen.generate: derivation does not terminate";
    let st, i = Queue.pop queue in
    if i < 0 then add_terminal st
    else begin
      match Dag.op st.State.dag i with
      | Op.Placeholder _ -> Queue.add (st, i - 1) queue
      | Op.Compute _ ->
        let applicable =
          List.filter (fun (r : Rules.t) -> r.condition st i) rules
        in
        let chosen =
          (* an exclusive rule pre-empts everything after it *)
          let rec first_exclusive = function
            | [] -> applicable
            | (r : Rules.t) :: rest ->
              if r.exclusive then [ r ] else r :: first_exclusive rest
          in
          first_exclusive applicable
        in
        (match chosen with
        | [] ->
          invalid_arg
            (Printf.sprintf "Gen.generate: no rule applies to node %s"
               (Op.name (Dag.op st.State.dag i)))
        | rules ->
          List.iter
            (fun (r : Rules.t) ->
              List.iter (fun next -> Queue.add next queue) (r.apply st i))
            rules)
    end
  done;
  List.rev !terminals

let sketch_steps (st : State.t) = st.history
