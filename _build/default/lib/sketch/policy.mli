(** Annotation policy: per-target randomized choices of §4.2.

    The sampling rules for GPUs are "mostly the same with minor
    modifications" (paper, §4): the GPU policy demands a far larger
    parallel extent (blocks x threads rather than cores) and always
    vectorizes the innermost loop (SIMT lanes). *)

type t = {
  parallel_target : int;
      (** desired product of fused outer parallel loops *)
  vectorize_max : int;  (** largest extent worth vectorizing *)
  vectorize_prob : float;  (** probability of vectorizing an eligible loop *)
  unroll_steps : int list;  (** auto_unroll_max_step candidates *)
  inner_unroll_prob : float;
      (** probability of explicitly unrolling small inner loops *)
  location_tweak_prob : float;
      (** probability of loosening a fused producer's computation
          location *)
}

val cpu : workers:int -> t
val gpu : workers:int -> t
val for_machine_kind : [ `Cpu | `Gpu ] -> workers:int -> t

val templateize : t -> t
(** Freezes the annotation choices the way manual templates do (AutoTVM /
    FlexTensor baselines, and the "Limited space" ablation): deterministic
    vectorization of the innermost loop, one fixed [auto_unroll_max_step],
    no explicit inner unrolling, no computation-location tweaks. *)
