type t = {
  parallel_target : int;
  vectorize_max : int;
  vectorize_prob : float;
  unroll_steps : int list;
  inner_unroll_prob : float;
  location_tweak_prob : float;
}

let cpu ~workers =
  {
    parallel_target = workers * 8;
    vectorize_max = 64;
    vectorize_prob = 0.85;
    unroll_steps = [ 0; 16; 64; 512 ];
    inner_unroll_prob = 0.5;
    location_tweak_prob = 0.1;
  }

let gpu ~workers =
  {
    parallel_target = workers * 16;
    vectorize_max = 128;
    vectorize_prob = 1.0;
    unroll_steps = [ 0; 16; 64; 512; 1024 ];
    inner_unroll_prob = 0.5;
    location_tweak_prob = 0.1;
  }

let for_machine_kind kind ~workers =
  match kind with `Cpu -> cpu ~workers | `Gpu -> gpu ~workers

let templateize t =
  {
    t with
    vectorize_prob = 1.0;
    unroll_steps = [ 16 ];
    inner_unroll_prob = 0.0;
    location_tweak_prob = 0.0;
  }
