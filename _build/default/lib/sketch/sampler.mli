(** The program sampler (§4): sketches + random annotation.

    Uniformly picks one of the DAG's sketches, fills its tile sizes at
    random and annotates it, yielding a complete program.  Random sampling
    gives every point of the hierarchical space a chance to be drawn; the
    quality of individual samples is the tuner's job (§5). *)

open Ansor_te
open Ansor_sched

val sample_one :
  Ansor_util.Rng.t ->
  Policy.t ->
  Dag.t ->
  sketches:State.t list ->
  State.t option
(** One random complete program; [None] only if every retry produced an
    inconsistent fill (does not happen for the built-in rules, but user
    rules may create dead ends). *)

val sample :
  Ansor_util.Rng.t ->
  Policy.t ->
  Dag.t ->
  sketches:State.t list ->
  n:int ->
  State.t list
(** [n] independent samples (deduplicated retries are not attempted:
    duplicates are possible, as in the paper's sampler). *)
