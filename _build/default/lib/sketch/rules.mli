(** Sketch derivation rules (§4.1, Table 1).

    A rule inspects the current derivation state — a schedule
    {!Ansor_sched.State.t} plus the index of the working node — and, when
    its condition holds, produces one or more successor states.  Rules may
    rewrite the DAG (cache stages, rfactor).  The rule set is open: users
    register additional rules for special algorithms, exactly as the paper
    allows ("User Defined Rule" row of Table 1). *)

open Ansor_sched

type t = {
  name : string;
  condition : State.t -> int -> bool;
      (** [condition state i]: does the rule apply to operator [i]? *)
  apply : State.t -> int -> (State.t * int) list;
      (** successor states with their next working-node index;
          indices must be < the DAG size and the search must make
          progress (the generator enforces a step budget) *)
  exclusive : bool;
      (** when true and the condition holds, lower-priority rules are not
          tried on this state (the behaviour of always-inline and
          tiling-with-fusion) *)
}

val skip : t
(** Rule 1: move on without transforming the node. *)

val always_inline : t
(** Rule 2: inline strictly-inlinable non-output nodes. Exclusive. *)

val multi_level_tiling : t
(** Rule 3: SSRSRS multi-level tiling for data-reuse nodes with no fusible
    consumer (tile sizes left unfilled for the annotation pass). *)

val multi_level_tiling_with_fusion : t
(** Rule 4: multi-level tiling plus fusion of the (possibly transitively
    inlined) elementwise consumer at the second space-tile level.
    Exclusive. *)

val add_cache_stage : t
(** Rule 5: add a cache-write stage for data-reuse nodes without a fusible
    consumer, re-visiting the node so rule 4 fuses the copy. *)

val reduction_factorization : t
(** Rule 6: rfactor a long reduction of a low-parallelism node into a
    partial-reduction stage plus a final reduction. *)

val default : t list
(** The Table-1 rule set, in priority order. *)

(** Tiling-structure parameters: number of space and reduction tile
    levels and how many outer levels fusion binds. *)
type tiling = { space_parts : int; reduce_parts : int; bind_levels : int }

val default_tiling : tiling
(** SSRSRS: 4 space levels, 2 reduction levels, 2 bound levels. *)

val limited_tiling : tiling
(** The manual-template-like structure of the "Limited space" ablation
    and the AutoTVM baseline: 2 space levels, 1 bound level. *)

val make :
  tiling:tiling ->
  with_fusion:bool ->
  with_cache:bool ->
  with_rfactor:bool ->
  t list
(** Assembles a rule set. [with_fusion:false] replaces rule 4 by
    unfused multi-level tiling (the FlexTensor-like single-operator
    space). *)

val limited : fusion:bool -> t list
(** [make ~tiling:limited_tiling ~with_cache:false ~with_rfactor:false]. *)

val effective_consumer : State.t -> int -> int option
(** The fusible consumer of node [i], looking through stages already
    inlined in the current state (each link must satisfy
    {!Ansor_te.Dag.fusible_consumer}). *)

val multilevel_space_parts : int
(** Space-tile levels of the SSRSRS structure (4). *)

val multilevel_reduce_parts : int
(** Reduction-tile levels of the SSRSRS structure (2). *)
