open Ansor_te
open Ansor_sched

type t = {
  name : string;
  condition : State.t -> int -> bool;
  apply : State.t -> int -> (State.t * int) list;
  exclusive : bool;
}

let multilevel_space_parts = 4
let multilevel_reduce_parts = 2

(* Tiling structure parameters; the defaults give the paper's CPU
   "SSRSRS" structure, the limited variant emulates manual-template
   spaces (two space levels, one bound fusion level, as in typical
   AutoTVM templates). *)
type tiling = { space_parts : int; reduce_parts : int; bind_levels : int }

let default_tiling =
  {
    space_parts = multilevel_space_parts;
    reduce_parts = multilevel_reduce_parts;
    bind_levels = 2;
  }

let limited_tiling = { space_parts = 2; reduce_parts = 2; bind_levels = 1 }

let op_at (st : State.t) i = Dag.op st.dag i
let name_at st i = Op.name (op_at st i)

let is_compute st i =
  match op_at st i with Op.Compute _ -> true | Op.Placeholder _ -> false

(* Strictly inlinable in the current state: elementwise and not an
   output. *)
let inlinable (st : State.t) i =
  Dag.is_strict_inlinable st.dag i && not (Dag.is_output st.dag i)

let rec effective_consumer (st : State.t) i =
  match Dag.fusible_consumer st.dag i with
  | None -> None
  | Some j ->
    let sj = State.find_stage st (name_at st j) in
    if sj.loc = State.Loc_inlined then effective_consumer st j else Some j

(* Loop-level pattern of the multi-level tiling: which (space|reduce)
   tile level goes at each position, outermost first. *)
let order_pattern ~space_parts ~reduce_parts =
  if space_parts <= 2 then
    (if space_parts >= 1 then [ `S 0 ] else [])
    @ List.init reduce_parts (fun r -> `R r)
    @ (if space_parts >= 2 then [ `S 1 ] else [])
  else
    [ `S 0; `S 1 ]
    @ List.concat
        (List.init
           (max reduce_parts (space_parts - 2))
           (fun i ->
             (if i < reduce_parts then [ `R i ] else [])
             @ if 2 + i < space_parts then [ `S (2 + i) ] else []))

(* Splits every space axis of [stage] into [space_parts] parts and every
   reduction axis into [reduce_parts], then reorders following
   {!order_pattern}.  Tile sizes are placeholders ([tbd]).  Returns the
   new state plus the per-axis child iterator ids. *)
let multilevel_tile ~(tiling : tiling) (st : State.t) stage_name =
  let stage0 = State.find_stage st stage_name in
  (match stage0.op with
  | Op.Compute _ -> ()
  | Op.Placeholder _ -> invalid_arg "multilevel_tile: placeholder");
  (* operate on the current leaves, so user rules may pre-transform the
     stage (fuse axes, etc.) before the generic tiling runs *)
  let leaves_of_kind kind =
    List.filter (fun id -> stage0.ivars.(id).State.kind = kind) stage0.leaves
  in
  let split_axes st leaves parts =
    List.fold_left
      (fun (st, acc) iv ->
        let stage = State.find_stage st stage_name in
        let base = Array.length stage.ivars in
        let extent = stage.ivars.(iv).State.extent in
        let lengths = extent :: List.init (parts - 1) (fun _ -> 1) in
        let st =
          State.apply st
            (Step.Split { stage = stage_name; iv; lengths; tbd = true })
        in
        (st, acc @ [ List.init parts (fun l -> base + l) ]))
      (st, []) leaves
  in
  let st, space_children =
    split_axes st (leaves_of_kind State.Space) tiling.space_parts
  in
  let st, reduce_children =
    split_axes st (leaves_of_kind State.Reduce) tiling.reduce_parts
  in
  let level ch l = List.map (fun c -> List.nth c l) ch in
  let order =
    List.concat_map
      (function
        | `S l -> level space_children l
        | `R l -> level reduce_children l)
      (order_pattern ~space_parts:tiling.space_parts
         ~reduce_parts:tiling.reduce_parts)
  in
  let st = State.apply st (Step.Reorder { stage = stage_name; order }) in
  (st, space_children, reduce_children)

(* Tile the consumer into [bind_levels + 1] space levels whose outer
   levels match the producer's outer space tiles, and attach the producer
   at the innermost bound level. *)
let tile_and_fuse ~(tiling : tiling) st i j =
  let s_name = name_at st i and t_name = name_at st j in
  let st, s_space, _ = multilevel_tile ~tiling st s_name in
  let tstage = State.find_stage st t_name in
  let naxes =
    match tstage.op with
    | Op.Compute c -> List.length c.axes
    | Op.Placeholder _ -> assert false
  in
  let parts = tiling.bind_levels + 1 in
  let tbase = Array.length tstage.ivars in
  let t_children =
    List.init naxes (fun ax -> List.init parts (fun l -> tbase + (parts * ax) + l))
  in
  let st =
    List.fold_left
      (fun st ax ->
        let extent = (State.find_stage st t_name).ivars.(ax).State.extent in
        State.apply st
          (Step.Split
             {
               stage = t_name;
               iv = ax;
               lengths = extent :: List.init (parts - 1) (fun _ -> 1);
               tbd = true;
             }))
      st
      (List.init naxes Fun.id)
  in
  let level l = List.map (fun ch -> List.nth ch l) t_children in
  let st =
    State.apply st
      (Step.Reorder
         { stage = t_name; order = List.concat (List.init parts level) })
  in
  let bindings =
    List.concat
      (List.map2
         (fun s_ch t_ch ->
           List.init tiling.bind_levels (fun l ->
               (List.nth s_ch l, List.nth t_ch l)))
         s_space t_children)
  in
  let target_iv =
    List.nth (List.nth t_children (naxes - 1)) (tiling.bind_levels - 1)
  in
  State.apply st
    (Step.Compute_at { stage = s_name; target = t_name; target_iv; bindings })

let skip =
  {
    name = "skip";
    condition =
      (fun st i ->
        (not (inlinable st i)) && not (Dag.has_data_reuse st.State.dag i));
    apply = (fun st i -> [ (st, i - 1) ]);
    exclusive = false;
  }

let always_inline =
  {
    name = "always-inline";
    condition = (fun st i -> is_compute st i && inlinable st i);
    apply =
      (fun st i ->
        let st =
          State.apply st (Step.Compute_inline { stage = name_at st i })
        in
        [ (st, i - 1) ]);
    exclusive = true;
  }

let multi_level_tiling_t tiling =
  {
    name = "multi-level-tiling";
    condition =
      (fun st i ->
        Dag.has_data_reuse st.State.dag i && effective_consumer st i = None);
    apply =
      (fun st i ->
        let st, _, _ = multilevel_tile ~tiling st (name_at st i) in
        [ (st, i - 1) ]);
    exclusive = false;
  }

let multi_level_tiling_with_fusion_t tiling =
  {
    name = "multi-level-tiling-with-fusion";
    condition =
      (fun st i ->
        Dag.has_data_reuse st.State.dag i
        && effective_consumer st i <> None
        (* matched tiling requires the untransformed axis structure on
           both sides *)
        && State.is_pristine (State.find_stage st (name_at st i)));
    apply =
      (fun st i ->
        match effective_consumer st i with
        | Some j -> [ (tile_and_fuse ~tiling st i j, i - 1) ]
        | None -> []);
    exclusive = true;
  }

(* A no-fusion rule for data-reuse nodes that do have a fusible consumer:
   used by the FlexTensor-like baseline, whose single-operator templates
   cannot fuse across nodes. *)
let multi_level_tiling_no_fusion_t tiling =
  {
    name = "multi-level-tiling-no-fusion";
    condition = (fun st i -> Dag.has_data_reuse st.State.dag i);
    apply =
      (fun st i ->
        let st, _, _ = multilevel_tile ~tiling st (name_at st i) in
        [ (st, i - 1) ]);
    exclusive = true;
  }

let add_cache_stage =
  {
    name = "add-cache-stage";
    condition =
      (fun st i ->
        Dag.has_data_reuse st.State.dag i
        && effective_consumer st i = None
        && Dag.is_output st.State.dag i
        && State.is_pristine (State.find_stage st (name_at st i)));
    apply =
      (fun st i ->
        let st = State.apply st (Step.Cache_write { stage = name_at st i }) in
        (* the compute moved to <name>.local at index i; re-visit so the
           fusion rule attaches it into the copy (paper: i' = i) *)
        [ (st, i + 1) ]);
    exclusive = false;
  }

let reduction_factorization =
  {
    name = "reduction-factorization";
    condition =
      (fun st i ->
        Dag.has_more_reduction_parallel st.State.dag i
        && State.is_pristine (State.find_stage st (name_at st i)));
    apply =
      (fun st i ->
        match op_at st i with
        | Op.Compute c when c.reduce_axes <> [] ->
          (* factorize the longest reduction axis *)
          let stage = State.find_stage st (name_at st i) in
          let best = ref None in
          Array.iteri
            (fun id (iv : State.ivar_info) ->
              if iv.kind = State.Reduce then
                match !best with
                | Some (_, e) when e >= iv.extent -> ()
                | _ -> best := Some (id, iv.extent))
            stage.ivars;
          (match !best with
          | Some (iv, extent) ->
            let st =
              State.apply st
                (Step.Rfactor
                   {
                     stage = name_at st i;
                     iv;
                     lengths = [ extent; 1 ];
                     tbd = true;
                   })
            in
            [ (st, i - 1) ]
          | None -> [])
        | _ -> []);
    exclusive = false;
  }

let multi_level_tiling = multi_level_tiling_t default_tiling
let multi_level_tiling_with_fusion = multi_level_tiling_with_fusion_t default_tiling

let make ~tiling ~with_fusion ~with_cache ~with_rfactor =
  [ always_inline ]
  @ (if with_fusion then [ multi_level_tiling_with_fusion_t tiling ]
     else [ multi_level_tiling_no_fusion_t tiling ])
  @ [ multi_level_tiling_t tiling ]
  @ (if with_cache then [ add_cache_stage ] else [])
  @ (if with_rfactor then [ reduction_factorization ] else [])
  @ [ skip ]

let default =
  make ~tiling:default_tiling ~with_fusion:true ~with_cache:true
    ~with_rfactor:true

let limited ~fusion =
  make ~tiling:limited_tiling ~with_fusion:fusion ~with_cache:false
    ~with_rfactor:false
