open Ansor_sched
module Rng = Ansor_util.Rng
module Factorize = Ansor_util.Factorize

type fill = Random_fill of Rng.t | Keep

let ( let* ) r f = Result.bind r f

let split_constraints st rest ~stage ~children ~base =
  List.concat_map
    (fun step ->
      match (step : Step.t) with
      | Step.Compute_at { stage = p; target; bindings; _ }
        when String.equal target stage ->
        List.filter_map
          (fun (p_iv, t_iv) ->
            if List.mem t_iv children then
              match State.find_stage st p with
              | ps when p_iv < Array.length ps.ivars ->
                Some (t_iv - base, ps.ivars.(p_iv).State.extent)
              | _ -> None
              | exception Not_found -> None
            else None)
          bindings
      | _ -> [])
    rest
  |> List.sort_uniq compare

let solve_split_lengths ~fill ~extent ~k ~lengths ~tbd ~constraints =
  let cprod = List.fold_left (fun a (_, e) -> a * e) 1 constraints in
  if cprod <= 0 || extent mod cprod <> 0 then
    Error "split constraints do not divide the extent"
  else
    let rem = extent / cprod in
    let free_pos =
      List.filter
        (fun p -> not (List.mem_assoc p constraints))
        (List.init k Fun.id)
    in
    let* free_lengths =
      match (fill, free_pos) with
      | _, [] -> if rem = 1 then Ok [] else Error "over-constrained split"
      | Random_fill rng, free when tbd ->
        (* mixture prior: half the samples use an outer-heavy shape (most
           extent in the outer tile, a vectorizable chunk innermost, thin
           middles — the profile of realistic tilings, which matters on
           many-axis operators), half are uniform; every factorization
           stays reachable *)
        let k = List.length free in
        if Rng.bool rng then
          let weights =
            Array.init k (fun i ->
                if i = 0 then 3.0 else if i = k - 1 then 2.0 else 0.7)
          in
          Ok (Factorize.weighted_factorization rng rem ~weights)
        else Ok (Factorize.random_factorization rng rem k)
      | _, free -> (
        let given = List.map (fun p -> List.nth lengths p) free in
        match List.rev given with
        | [] -> Ok []
        | _last :: front_rev ->
          let front = List.rev front_rev in
          let fp = List.fold_left ( * ) 1 front in
          if fp <= 0 || rem mod fp <> 0 then
            Error "cannot reconcile split lengths"
          else Ok (front @ [ rem / fp ]))
    in
    let pos_index p =
      let rec go i = function
        | [] -> assert false
        | q :: _ when q = p -> i
        | _ :: r -> go (i + 1) r
      in
      go 0 free_pos
    in
    Ok
      (List.init k (fun p ->
           match List.assoc_opt p constraints with
           | Some e -> e
           | None -> List.nth free_lengths (pos_index p)))

let replay_constrained dag steps ~fill =
  let rec go st remaining =
    match remaining with
    | [] -> Ok st
    | step :: rest -> (
      match (step : Step.t) with
      | Step.Split { stage; iv; lengths; tbd } -> (
        match State.find_stage st stage with
        | exception Not_found -> Error (Printf.sprintf "no stage %s" stage)
        | s ->
          if iv >= Array.length s.ivars then Error "split: bad iterator"
          else
            let extent = s.ivars.(iv).State.extent in
            let k = List.length lengths in
            let base = Array.length s.ivars in
            let children = List.init k (fun l -> base + l) in
            let constraints =
              split_constraints st rest ~stage ~children ~base
            in
            let* new_lengths =
              solve_split_lengths ~fill ~extent ~k ~lengths ~tbd ~constraints
            in
            let* st =
              State.apply_checked st
                (Step.Split { stage; iv; lengths = new_lengths; tbd = false })
            in
            go st rest)
      | Step.Rfactor { stage; iv; lengths; tbd } -> (
        match State.find_stage st stage with
        | exception Not_found -> Error (Printf.sprintf "no stage %s" stage)
        | s ->
          if iv >= Array.length s.ivars then Error "rfactor: bad iterator"
          else
            let extent = s.ivars.(iv).State.extent in
            let concrete =
              match fill with
              | Random_fill rng when tbd ->
                Factorize.random_factorization rng extent 2
              | _ -> lengths
            in
            let* st =
              State.apply_checked st
                (Step.Rfactor { stage; iv; lengths = concrete; tbd = false })
            in
            go st rest)
      | other ->
        let* st = State.apply_checked st other in
        go st rest)
  in
  go (State.init dag) steps

(* ---- random annotation -------------------------------------------------- *)

let annotate rng (policy : Policy.t) st =
  let exception Stop of string in
  let state = ref st in
  let apply step =
    match State.apply_checked !state step with
    | Ok st -> state := st
    | Error e -> raise (Stop e)
  in
  let refresh name = State.find_stage !state name in
  try
    List.iter
      (fun (name, (s0 : State.stage)) ->
        match s0.loc with
        | State.Loc_inlined -> ()
        | loc ->
          (if loc = State.Loc_root then begin
             (* fuse-and-parallelize outer space loops *)
             let target =
               max 1
                 (int_of_float
                    (float_of_int policy.parallel_target
                    *. (0.5 +. Rng.float rng 3.5)))
             in
             let s = refresh name in
             (* never fuse past the attachment point of a producer computed
                at this stage: a fused loop mixing bound and unbound tiles
                would re-invoke the producer per inner iteration *)
             let fuse_limit =
               List.fold_left
                 (fun limit (child, _) ->
                   match (State.find_stage !state child).loc with
                   | State.Loc_at { target_iv; bindings; _ } ->
                     let ivs = target_iv :: List.map snd bindings in
                     let deepest =
                       List.fold_left
                         (fun acc iv ->
                           match State.leaf_pos s iv with
                           | Some p -> max acc (p + 1)
                           | None -> acc)
                         0 ivs
                     in
                     min limit deepest
                   | _ -> limit)
                 max_int
                 (State.attach_targets !state name)
             in
             let rec collect acc prod pos = function
               | [] -> List.rev acc
               | _ when pos >= fuse_limit -> List.rev acc
               | iv :: rest ->
                 let info = s.ivars.(iv) in
                 if info.State.kind <> State.Space || info.ann <> Step.No_ann
                 then List.rev acc
                 else if prod >= target then List.rev acc
                 else collect (iv :: acc) (prod * info.extent) (pos + 1) rest
             in
             match collect [] 1 0 s.leaves with
             | [] -> ()
             | [ iv ] ->
               apply (Step.Annotate { stage = name; iv; ann = Step.Parallel })
             | ivs ->
               apply (Step.Fuse { stage = name; ivs });
               let s = refresh name in
               let fused = List.hd s.leaves in
               apply
                 (Step.Annotate { stage = name; iv = fused; ann = Step.Parallel })
           end);
          (* vectorize the innermost loop *)
          (let s = refresh name in
           match List.rev s.leaves with
           | [] -> ()
           | iv :: _ ->
             let info = s.ivars.(iv) in
             if
               info.State.ann = Step.No_ann
               && info.extent >= 2
               && info.extent <= policy.vectorize_max
             then begin
               let p =
                 if info.kind = State.Space then policy.vectorize_prob else 0.2
               in
               if Rng.float rng 1.0 < p then
                 apply (Step.Annotate { stage = name; iv; ann = Step.Vectorize })
             end);
          (* unroll a couple of small inner loops *)
          (if Rng.float rng 1.0 < policy.inner_unroll_prob then
             let s = refresh name in
             List.iteri
               (fun k iv ->
                 if k >= 1 && k <= 3 then begin
                   let info = s.ivars.(iv) in
                   if
                     info.State.ann = Step.No_ann
                     && info.extent <= 32
                     && Rng.float rng 1.0 < 0.5
                   then
                     apply
                       (Step.Annotate { stage = name; iv; ann = Step.Unroll })
                 end)
               (List.rev s.leaves));
          (* auto-unroll pragma *)
          apply
            (Step.Pragma_unroll
               {
                 stage = name;
                 max_step = Rng.choice_list rng policy.unroll_steps;
               });
          (* occasionally loosen the computation location of a fused
             producer: keep only a prefix of the tile bindings *)
          (match s0.loc with
          | State.Loc_at { target; target_iv; bindings }
            when List.length bindings > 1
                 && Rng.float rng 1.0 < policy.location_tweak_prob ->
            (* move to a coarser tile level: keep only the outermost tile
               binding of each axis (the even positions, by rule-4
               construction), or detach to the top of the target *)
            let coarser =
              List.filteri (fun i _ -> i mod 2 = 0) bindings
            in
            let bindings = if Rng.bool rng then coarser else [] in
            apply
              (Step.Compute_at { stage = name; target; target_iv; bindings })
          | _ -> ()))
      st.State.stages;
    Ok !state
  with Stop e -> Error e
