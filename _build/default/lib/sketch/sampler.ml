module Rng = Ansor_util.Rng

let sample_one rng policy dag ~sketches =
  match sketches with
  | [] -> None
  | _ ->
    let attempt () =
      let sketch = Rng.choice_list rng sketches in
      match
        Annotate.replay_constrained dag (Gen.sketch_steps sketch)
          ~fill:(Annotate.Random_fill rng)
      with
      | Error _ -> None
      | Ok st -> (
        match Annotate.annotate rng policy st with
        | Ok st -> (
          (* reject states the lowering pass deems illegal (e.g. an
             attached reduction that would be re-invoked) *)
          match Ansor_sched.Lower.lower st with
          | _prog -> Some st
          | exception Ansor_sched.State.Illegal _ -> None)
        | Error _ -> None)
    in
    let rec retry k = if k = 0 then None else
        match attempt () with Some st -> Some st | None -> retry (k - 1)
    in
    retry 10

let sample rng policy dag ~sketches ~n =
  List.filter_map
    (fun _ -> sample_one rng policy dag ~sketches)
    (List.init n Fun.id)
