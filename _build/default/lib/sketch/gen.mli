(** Sketch generation: derivation-based enumeration (§4.1).

    Visits the DAG's nodes from output to input, applying every applicable
    derivation rule to every intermediate state (a queue-driven recursive
    enumeration).  Terminal states — all nodes visited — are the sketches:
    schedule states whose tile sizes are unfilled placeholders, to be
    completed by {!Annotate}. *)

open Ansor_te
open Ansor_sched

val generate : ?rules:Rules.t list -> ?max_sketches:int -> Dag.t -> State.t list
(** All sketches of the DAG under the rule set (default {!Rules.default}),
    capped at [max_sketches] (default 128) as a safety bound.
    @raise Invalid_argument if the rule set cannot make progress on some
    node (no rule condition holds). *)

val sketch_steps : State.t -> Step.t list
(** The recorded derivation history of a sketch (tile sizes still [tbd]). *)
