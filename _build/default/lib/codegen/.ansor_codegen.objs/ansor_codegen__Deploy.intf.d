lib/codegen/deploy.mli: Ansor_machine Ansor_sched Ansor_search Ansor_te Prog
