lib/codegen/codegen_c.mli: Ansor_sched Prog
