lib/codegen/codegen_c.ml: Ansor_sched Ansor_te Array Buffer Expr Float Hashtbl List Op Printf Prog Step String
