lib/codegen/deploy.ml: Ansor_machine Ansor_sched Ansor_search Buffer Codegen_c Hashtbl List Lower Printf State String
