(** Network deployment: export every tuned kernel of a network as one C
    translation unit.

    This is the end of the paper's pipeline ("we only need to run program
    generation for the DNNs once before deployment", §7.3): after tuning a
    network's unique subgraphs — and persisting them with {!Ansor_search.Record} —
    [emit] produces a self-contained C file with one kernel function per
    subgraph, ready to be linked into an application.  Subgraphs without a
    usable record fall back to their naive schedule, so the output is
    always complete. *)

open Ansor_sched

type kernel = {
  kernel_name : string;  (** C function name *)
  task_name : string;  (** the workload it implements *)
  params : (string * string) list;  (** (buffer, C identifier), in order *)
  tuned : bool;  (** false when the naive fallback was used *)
}

val plan :
  machine:Ansor_machine.Machine.t ->
  records:Ansor_search.Record.entry list ->
  (string * Ansor_te.Dag.t) list ->
  (kernel * Prog.t) list
(** Resolves each (name, dag) against the records (by task key on the
    given machine, best entry wins) and lowers the chosen schedule.
    Kernel names are sanitized task names, uniquified. *)

val emit :
  machine:Ansor_machine.Machine.t ->
  records:Ansor_search.Record.entry list ->
  (string * Ansor_te.Dag.t) list ->
  string
(** The full translation unit: a file header summarizing provenance (task,
    tuned-or-fallback, simulated latency), shared helpers, and one kernel
    per subgraph. *)
