(** C code generation for lowered programs.

    In the paper, Ansor's programs "are then lowered to TVM IR for code
    generation targeting various hardware platforms" — TVM acts as a
    deterministic code generator.  This module plays that role here: it
    emits a self-contained C99 translation unit for any lowered program,
    with the schedule's annotations mapped to portable pragmas:

    - [parallel]  → [#pragma omp parallel for]
    - [vectorize] → [#pragma omp simd]
    - [unroll]    → [#pragma GCC unroll <extent>]

    Semantics match the reference interpreter exactly: floor division /
    Euclidean modulo helpers are emitted (C's truncating operators differ
    on negatives, which matters for the transposed-convolution guards),
    selects become ternaries (so guarded out-of-bounds accesses are never
    evaluated), and reduction buffers are initialized to their identity
    element before the loop nests run.

    The emitted code is valid without OpenMP (the pragmas are ignored);
    compile with [-fopenmp] to actually parallelize.

    The generated kernel takes one [float *] parameter per buffer of the
    program, inputs first (parameter order = {!params}).  {!emit_test_main}
    additionally produces a [main] that feeds fixed inputs and prints every
    output element, which the test suite compiles with gcc and compares
    against the interpreter — the end-to-end "does real code agree"
    check. *)

open Ansor_sched

val sanitize : string -> string
(** C identifier for a tensor or loop-variable name (['.'], ['@'] and other
    non-alphanumeric characters become ['_']; a leading digit is
    prefixed). Injective over any one program's names via a disambiguating
    suffix is {e not} applied here — use {!params} for the per-program
    unique mapping. *)

val params : Prog.t -> (string * string) list
(** [(buffer name, C identifier)] for every buffer, in parameter order
    (program buffer order), with collision-free identifiers. *)

val emit_kernel : ?name:string -> Prog.t -> string
(** The kernel function (plus the division helpers), as a compilable C
    fragment. [name] defaults to ["kernel"]. *)

val emit_test_main :
  Prog.t -> inputs:(string * float array) list -> string
(** A complete translation unit: the kernel plus a [main] that initializes
    the input buffers with the given data (hex float literals, exact),
    zero-allocates the other buffers, runs the kernel once and prints each
    non-input buffer's elements one per line ([printf "%.9g"]), in buffer
    order.
    @raise Invalid_argument if an input is missing or has the wrong
    size. *)
