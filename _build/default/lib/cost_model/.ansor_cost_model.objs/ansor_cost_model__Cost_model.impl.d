lib/cost_model/cost_model.ml: Ansor_features Ansor_gbdt Array Hashtbl List
