lib/cost_model/cost_model.mli: Ansor_gbdt Ansor_sched Prog
