lib/evolution/evolution.ml: Access Ansor_cost_model Ansor_features Ansor_sched Ansor_sketch Ansor_te Ansor_util Array Dag Filename Float Fun Hashtbl List Lower Op Option State Step String
