lib/evolution/evolution.mli: Ansor_cost_model Ansor_sched Ansor_sketch Ansor_te Ansor_util Dag State
