open Ansor_sched

type verdict = Compute_bound | Memory_bound

type t = {
  flops : float;
  dram_bytes : float;
  intensity : float;
  ridge : float;
  verdict : verdict;
  attainable_flops : float;
  achieved_flops : float;
  efficiency : float;
}

let dram_bandwidth (m : Machine.t) =
  (* one line (64 B) costs [dram_cost] cycles on one worker; up to
     [dram_bw_workers] workers stream concurrently *)
  let lines_per_second_per_worker = m.freq_ghz *. 1e9 /. m.dram_cost in
  64.0 *. lines_per_second_per_worker *. m.dram_bw_workers

let program_flops (prog : Prog.t) =
  let infos = Access.analyze prog in
  List.fold_left
    (fun acc (info : Access.stmt_info) ->
      let c = info.counts in
      acc
      +. info.iters
         *. float_of_int
              (c.float_add_sub + c.float_mul + c.float_div_mod + c.float_cmp
             + c.float_math))
    0.0 infos

(* DRAM traffic proxy: unique bytes of every buffer touched (each distinct
   line crosses the DRAM boundary at least once), plus write-back for
   written buffers. *)
let dram_traffic (prog : Prog.t) =
  let infos = Access.analyze prog in
  let per_tensor = Hashtbl.create 16 in
  List.iter
    (fun (info : Access.stmt_info) ->
      List.iter
        (fun (a : Access.access) ->
          let bytes = 4.0 *. a.touched.(0) in
          let cur =
            Option.value (Hashtbl.find_opt per_tensor a.tensor) ~default:(0.0, false)
          in
          let best = Float.max (fst cur) bytes in
          Hashtbl.replace per_tensor a.tensor (best, snd cur || a.is_write))
        info.accesses)
    infos;
  Hashtbl.fold
    (fun _ (bytes, written) acc ->
      acc +. (bytes *. if written then 2.0 else 1.0))
    per_tensor 0.0

let analyze (m : Machine.t) (prog : Prog.t) =
  let flops = Float.max 1.0 (program_flops prog) in
  let dram_bytes = Float.max 1.0 (dram_traffic prog) in
  let intensity = flops /. dram_bytes in
  let peak = Machine.peak_flops m in
  let bw = dram_bandwidth m in
  let ridge = peak /. bw in
  let attainable_flops = Float.min peak (bw *. intensity) in
  let seconds = Simulator.estimate m prog in
  let achieved_flops = flops /. seconds in
  {
    flops;
    dram_bytes;
    intensity;
    ridge;
    verdict = (if intensity >= ridge then Compute_bound else Memory_bound);
    attainable_flops;
    achieved_flops;
    efficiency = achieved_flops /. attainable_flops;
  }

let pp fmt t =
  Format.fprintf fmt
    "%.3g GFLOP over %.3g MB (intensity %.2f flop/B, ridge %.2f): %s; \
     achieved %.1f of attainable %.1f GFLOP/s (%.0f%%)"
    (t.flops /. 1e9) (t.dram_bytes /. 1e6) t.intensity t.ridge
    (match t.verdict with
    | Compute_bound -> "compute-bound"
    | Memory_bound -> "memory-bound")
    (t.achieved_flops /. 1e9)
    (t.attainable_flops /. 1e9)
    (100.0 *. t.efficiency)
