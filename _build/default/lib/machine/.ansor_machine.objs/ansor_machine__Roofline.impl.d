lib/machine/roofline.ml: Access Ansor_sched Array Float Format Hashtbl List Machine Option Prog Simulator
