lib/machine/machine.mli:
