lib/machine/measurer.mli: Ansor_sched Machine
