lib/machine/simulator.mli: Ansor_sched Machine
