lib/machine/roofline.mli: Ansor_sched Format Machine
