lib/machine/measurer.ml: Ansor_util Machine Simulator
