lib/machine/simulator.ml: Access Ansor_sched Array Float Hashtbl List Machine Prog State Step String
