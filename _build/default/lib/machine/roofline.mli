(** Roofline analysis of lowered programs.

    Classifies a program against a machine's roofline: its arithmetic
    intensity (FLOPs per byte moved past the last cache level, as counted
    by the simulator's memory model), the resulting compute- or
    memory-bound verdict, and the achieved fraction of the attainable
    performance.  Useful for understanding *why* a schedule is fast or
    slow, and used by the ablation discussion in EXPERIMENTS.md. *)

type verdict = Compute_bound | Memory_bound

type t = {
  flops : float;  (** floating-point work of the program *)
  dram_bytes : float;  (** bytes estimated to cross the DRAM boundary *)
  intensity : float;  (** flops / dram_bytes *)
  ridge : float;  (** machine ridge point, flops/byte *)
  verdict : verdict;
  attainable_flops : float;
      (** min(peak, bandwidth x intensity), in FLOP/s *)
  achieved_flops : float;  (** flops / simulated seconds *)
  efficiency : float;  (** achieved / attainable, in [0, ~1] *)
}

val dram_bandwidth : Machine.t -> float
(** Effective DRAM bandwidth of a machine model in bytes/s, derived from
    its per-line cost and bandwidth-worker limit. *)

val analyze : Machine.t -> Ansor_sched.Prog.t -> t

val pp : Format.formatter -> t -> unit
