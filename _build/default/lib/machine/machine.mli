(** Hardware models.

    The paper measures programs on an Intel Xeon Platinum 8269CY, an NVIDIA
    V100 and a Raspberry Pi 3b+ ARM Cortex-A53.  This reproduction replaces
    physical hardware with parametric machine models consumed by the
    analytical simulator ({!Simulator}): all search strategies are compared
    on the same simulated cost landscape, which preserves the paper's
    relative claims (see DESIGN.md, substitution table).

    The GPU model is deliberately coarse: SMs x resident warps appear as a
    large pool of parallel workers and the warp width as the vector width;
    kernel-launch overhead is folded into the parallel-region overhead. *)

type kind = Cpu | Gpu

type t = {
  name : string;
  kind : kind;
  num_workers : int;  (** physical cores, or SMs x resident warps on GPU *)
  vector_lanes : int;  (** f32 SIMD lanes (warp width on GPU) *)
  fma_per_cycle : float;  (** vector FMA issues per worker per cycle *)
  freq_ghz : float;
  cache_sizes : int array;  (** per level, in bytes, smallest first *)
  cache_costs : float array;  (** cycles per float served by that level *)
  dram_cost : float;  (** cycles per float served from memory *)
  dram_bw_workers : float;
      (** number of workers that saturate memory bandwidth: the DRAM part
          of a parallel region scales at most this much *)
  parallel_overhead : float;  (** cycles to enter one parallel region *)
  loop_overhead : float;  (** cycles of bookkeeping per loop iteration *)
  unroll_budget : int;
      (** unrolled statements beyond this start hurting the instruction
          cache *)
  gather_penalty : float;
      (** vector-efficiency multiplier for non-unit-stride lanes *)
}

val intel_cpu : t
(** 20-core server CPU, three cache levels (stand-in for the
    Platinum 8269CY). *)

val arm_cpu : t
(** 4-core in-order mobile CPU, two small cache levels (stand-in for the
    Cortex-A53). *)

val gpu : t
(** Massively parallel accelerator (stand-in for the V100). *)

val all : t list

val by_name : string -> t
(** @raise Not_found on unknown machine names. *)

val peak_flops : t -> float
(** Theoretical peak (workers x lanes x fma x 2 x freq), used by the task
    scheduler's similarity-based gradient term. *)
