type t = {
  machine : Machine.t;
  noise : float;
  rng : Ansor_util.Rng.t;
  mutable trials : int;
}

let create ?(noise = 0.03) ~seed machine =
  { machine; noise; rng = Ansor_util.Rng.create seed; trials = 0 }

let machine t = t.machine

let true_latency t prog = Simulator.estimate t.machine prog

let measure t prog =
  t.trials <- t.trials + 1;
  let base = true_latency t prog in
  let factor = exp (t.noise *. Ansor_util.Rng.gaussian t.rng) in
  base *. factor

let trials t = t.trials

let reset_trials t = t.trials <- 0
