type kind = Cpu | Gpu

type t = {
  name : string;
  kind : kind;
  num_workers : int;
  vector_lanes : int;
  fma_per_cycle : float;
  freq_ghz : float;
  cache_sizes : int array;
  cache_costs : float array;
  dram_cost : float;
  dram_bw_workers : float;
  parallel_overhead : float;
  loop_overhead : float;
  unroll_budget : int;
  gather_penalty : float;
}

let intel_cpu =
  {
    name = "intel-cpu";
    kind = Cpu;
    num_workers = 20;
    vector_lanes = 8;
    fma_per_cycle = 2.0;
    freq_ghz = 3.1;
    cache_sizes = [| 32 * 1024; 1024 * 1024; 36 * 1024 * 1024 |];
    cache_costs = [| 0.5; 3.0; 12.0 |];
    dram_cost = 60.0;
    dram_bw_workers = 6.0;
    parallel_overhead = 8_000.0;
    loop_overhead = 2.0;
    unroll_budget = 256;
    gather_penalty = 0.25;
  }

let arm_cpu =
  {
    name = "arm-cpu";
    kind = Cpu;
    num_workers = 4;
    vector_lanes = 4;
    fma_per_cycle = 1.0;
    freq_ghz = 1.4;
    cache_sizes = [| 32 * 1024; 512 * 1024 |];
    cache_costs = [| 1.0; 6.0 |];
    dram_cost = 100.0;
    dram_bw_workers = 2.0;
    parallel_overhead = 5_000.0;
    loop_overhead = 3.0;
    unroll_budget = 128;
    gather_penalty = 0.25;
  }

let gpu =
  {
    name = "gpu";
    kind = Gpu;
    num_workers = 640 (* 80 SMs x 8 resident warps *);
    vector_lanes = 32 (* warp width *);
    fma_per_cycle = 2.0;
    freq_ghz = 1.4;
    cache_sizes = [| 96 * 1024; 6 * 1024 * 1024 |];
    cache_costs = [| 1.0; 8.0 |];
    dram_cost = 24.0 (* HBM2: high bandwidth *);
    dram_bw_workers = 64.0;
    parallel_overhead = 30_000.0 (* kernel launch *);
    loop_overhead = 1.0;
    unroll_budget = 512;
    gather_penalty = 0.2;
  }

let all = [ intel_cpu; arm_cpu; gpu ]

let by_name name = List.find (fun m -> String.equal m.name name) all

let peak_flops m =
  float_of_int m.num_workers *. float_of_int m.vector_lanes *. m.fma_per_cycle
  *. 2.0 *. m.freq_ghz *. 1e9
