(** Analytical performance simulator — the measurement substitute.

    The paper compiles candidate programs and measures them on hardware;
    this reproduction instead walks the lowered loop nest and derives an
    execution-time estimate from the machine model.  The estimate is
    analytical (no loop is actually iterated), so "measuring" a program is
    O(program size) and the search loops run quickly.

    The model captures the optimization trade-offs the search space is
    about:

    - {b compute}: floating-point issue throughput with FMA pairing,
      divided by the effective vector width; vectorized loops whose
      accesses are not unit-stride pay a gather penalty, vectorized
      reductions pay a horizontal-combine penalty;
    - {b memory}: a hierarchical working-set model — for each access and
      each cache level, the deepest loop depth whose working set fits
      determines how often lines must be re-fetched from beyond that
      level; unit-stride innermost access amortizes one line fetch over 16
      elements (prefetch-friendly), strided access pays per element.
      Producer/consumer stages that share outer loops (fusion, cache
      stages) exchange their data through the level their shared-tile
      footprint fits in;
    - {b multiplication-by-zero elimination}: a statement guarded by a
      [select(..., 0)] whose condition only involves unrolled loops is
      statically simplified (the T2D effect of §7.1), otherwise the guard
      is priced per iteration;
    - {b parallelism}: parallel-annotated loops scale by the worker count
      with chunk-granularity load imbalance; the DRAM-bound part scales
      only to the memory-bandwidth limit; entering a parallel region costs
      a fixed overhead (kernel launch on the GPU model);
    - {b loop overhead}: non-unrolled, non-vectorized innermost loops pay
      per-iteration bookkeeping; unrolled bodies larger than the
      instruction-cache budget pay a growing penalty. *)

type breakdown = {
  compute_cycles : float;
  memory_cycles : float;
  loop_cycles : float;
  parallel_cycles : float;
  total_cycles : float;
  seconds : float;
}

val breakdown : Machine.t -> Ansor_sched.Prog.t -> breakdown

val estimate : Machine.t -> Ansor_sched.Prog.t -> float
(** Estimated execution time in seconds (always > 0). *)
