(** The measurer: timed "hardware" runs with trial accounting.

    Plays the role of the paper's measurer (Figure 4): candidate programs
    are handed over, "executed" (simulated analytically), and the observed
    latency — the deterministic simulator estimate perturbed by
    multiplicative log-normal noise, like real measurement variance — is
    returned.  Every call consumes one measurement trial, the budget unit
    used throughout the evaluation ("up to 1,000 measurement trials per
    test case", §7.1). *)

type t

val create : ?noise:float -> seed:int -> Machine.t -> t
(** [noise] is the standard deviation of the log-normal perturbation
    (default 0.03). *)

val machine : t -> Machine.t

val measure : t -> Ansor_sched.Prog.t -> float
(** Observed latency in seconds; increments the trial counter. *)

val true_latency : t -> Ansor_sched.Prog.t -> float
(** The noise-free simulator estimate; does {e not} consume a trial.
    Benchmarks use it for final reporting. *)

val trials : t -> int
(** Trials consumed so far. *)

val reset_trials : t -> unit
