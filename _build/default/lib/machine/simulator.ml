open Ansor_sched

type breakdown = {
  compute_cycles : float;
  memory_cycles : float;
  loop_cycles : float;
  parallel_cycles : float;
  total_cycles : float;
  seconds : float;
}

let fi = float_of_int

(* Innermost run of loops considered unrolled for a statement: loops
   explicitly annotated Unroll or Vectorize, extended outwards by the
   auto_unroll_max_step pragma while the cumulative body size fits. *)
let unrolled_suffix (info : Access.stmt_info) =
  let loops = Array.of_list info.loops in
  let n = Array.length loops in
  let budget = match info.stmt.max_unroll with Some m -> m | None -> 0 in
  let rec go d product acc =
    if d < 0 then acc
    else
      let l = loops.(d) in
      match l.Prog.ann with
      | Step.Unroll | Step.Vectorize -> go (d - 1) (product * l.extent) (d :: acc)
      | Step.No_ann when product * l.extent <= budget ->
        go (d - 1) (product * l.extent) (d :: acc)
      | _ -> acc
  in
  go (n - 1) 1 []

let product_extents (info : Access.stmt_info) depths =
  List.fold_left (fun acc d -> acc * info.extents.(d)) 1 depths

(* Cache level whose size holds [bytes]; [num_levels] means DRAM. *)
let fit_level (m : Machine.t) bytes =
  let rec go c =
    if c >= Array.length m.cache_sizes then c
    else if bytes <= fi m.cache_sizes.(c) then c
    else go (c + 1)
  in
  go 0

(* For cache level [c], the outermost depth whose working set fits. *)
let resident_depth (m : Machine.t) (info : Access.stmt_info) c =
  let n = List.length info.loops in
  let rec go d =
    if d > n then n
    else if Access.working_set info d <= fi m.cache_sizes.(c) then d
    else go (d + 1)
  in
  go 0

type stmt_cost = { compute : float; mem_cache : float; mem_dram : float }

let stmt_cost (m : Machine.t) writers (info : Access.stmt_info) =
  let loops = Array.of_list info.loops in
  let n = Array.length loops in
  let unrolled = unrolled_suffix info in
  let unrolled_vars =
    List.map (fun d -> loops.(d).Prog.lvar) unrolled
  in
  (* vectorization: only the innermost Vectorize-annotated loop becomes
     the vector dimension (as in real code generation); any outer
     Vectorize loops behave like unrolled loops and are already part of
     the unrolled suffix *)
  let innermost_vec =
    let rec go d =
      if d < 0 then None
      else if loops.(d).Prog.ann = Step.Vectorize then Some d
      else go (d - 1)
    in
    go (n - 1)
  in
  let vec_product =
    match innermost_vec with Some d -> loops.(d).Prog.extent | None -> 1
  in
  let vec_eff =
    match innermost_vec with
    | None -> 1.0
    | Some d ->
      let ok =
        List.for_all
          (fun (a : Access.access) ->
            let s = abs a.strides.(d) in
            s = 0 || s = 1)
          info.accesses
      in
      let base = if ok then 1.0 else m.gather_penalty in
      if loops.(d).Prog.kind = State.Reduce then base *. 0.6 else base
  in
  let vec_width =
    if innermost_vec = None then 1.0
    else Float.max 1.0 (fi (min vec_product m.vector_lanes) *. vec_eff)
  in
  (* select-guarded zero elimination *)
  let work_scale, mem_scale, branch_extra =
    match Access.select_zero_fraction info with
    | None -> (1.0, 1.0, 0.0)
    | Some (vars, frac) ->
      let decidable = List.for_all (fun v -> List.mem v unrolled_vars) vars in
      let frac = Float.max frac 0.02 in
      if decidable then (frac, frac, 0.0) else (frac, frac, 2.0)
  in
  (* compute *)
  let c = info.counts in
  let fma = min c.float_add_sub c.float_mul in
  let flop_issues = fi (c.float_add_sub + c.float_mul - fma) in
  let scalar_issues =
    flop_issues
    +. (8.0 *. fi c.float_div_mod)
    +. (16.0 *. fi c.float_math)
    +. fi c.float_cmp
  in
  let unroll_product = product_extents info unrolled in
  let int_amortize = if unroll_product >= 4 || vec_product >= 4 then 4.0 else 1.0 in
  let int_cost =
    ((0.25 *. fi c.int_add_sub) +. (0.5 *. fi c.int_mul)
    +. (2.0 *. fi c.int_div_mod))
    /. int_amortize
    /. Float.max 1.0 (fi vec_product)
  in
  let per_iter =
    (scalar_issues /. (m.fma_per_cycle *. vec_width) *. work_scale)
    +. int_cost +. branch_extra
  in
  let icache_penalty =
    let body = fi unroll_product *. (scalar_issues +. 1.0) in
    if body > fi m.unroll_budget then
      1.0 +. (0.15 *. (Float.log (body /. fi m.unroll_budget) /. Float.log 2.0))
    else 1.0
  in
  let compute = info.iters *. per_iter *. icache_penalty in
  (* loop overhead charged on the innermost non-unrolled loops *)
  let compute =
    compute +. (info.iters /. fi unroll_product *. m.loop_overhead)
  in
  (* register reuse inside the unrolled body: accesses invariant across an
     unrolled loop stay in registers, provided the body's distinct
     elements fit the register file — the reason the innermost space tile
     levels of SSRSRS exist *)
  let reg_pressure =
    List.fold_left
      (fun acc (a : Access.access) ->
        let footprint =
          List.fold_left
            (fun p d -> if a.strides.(d) <> 0 then p * info.extents.(d) else p)
            1 unrolled
        in
        let vec_amortized =
          match innermost_vec with
          | Some d when abs a.strides.(d) <= 1 ->
            max 1 (min vec_product m.vector_lanes)
          | _ -> 1
        in
        acc +. (fi footprint /. fi vec_amortized))
      0.0 info.accesses
  in
  let registers_fit = reg_pressure <= 48.0 in
  let reg_factor (a : Access.access) =
    if not registers_fit then 1.0
    else
      List.fold_left
        (fun p d ->
          if a.strides.(d) = 0 then p *. fi info.extents.(d) else p)
        1.0 unrolled
      |> Float.min 64.0
  in
  (* memory *)
  let num_levels = Array.length m.cache_sizes in
  let level_cost c = if c >= num_levels then m.dram_cost else m.cache_costs.(c) in
  let mem_cache = ref 0.0 and mem_dram = ref 0.0 in
  List.iter
    (fun (a : Access.access) ->
      let accesses = info.iters *. fi a.count *. mem_scale in
      (* producer-consumer clamp: if another statement writes this tensor
         and shares outer loops, the exchange happens through the level
         its shared footprint fits in *)
      let src_level =
        if a.is_write then num_levels
        else
          match Hashtbl.find_opt writers a.tensor with
          | None -> num_levels
          | Some writer_path ->
            let rec common d =
              if d >= n then d
              else
                match List.nth_opt writer_path d with
                | Some v when String.equal v loops.(d).Prog.lvar -> common (d + 1)
                | _ -> d
            in
            let dc = common 0 in
            let dc = min dc (Array.length a.touched - 1) in
            fit_level m (4.0 *. a.touched.(dc))
      in
      (* misses beyond each level, in line-fetch events *)
      let miss c =
        if c >= src_level then 0.0
        else
          let d = resident_depth m info c in
          let outer = ref 1.0 in
          for i = 0 to d - 1 do
            outer := !outer *. fi info.extents.(i)
          done;
          let d' = min d (Array.length a.lines - 1) in
          Float.min accesses (!outer *. a.lines.(d') *. mem_scale)
      in
      (* base cost: every access is at least an L1 hit; vector loads and
         broadcasts issue one instruction per [vec_width] elements, and
         register-resident values skip the load entirely *)
      let issue_amortize =
        match innermost_vec with
        | Some d when abs a.strides.(d) <= 1 ->
          Float.max 1.0 (fi (min vec_product m.vector_lanes))
        | _ -> 1.0
      in
      mem_cache :=
        !mem_cache +. (accesses /. issue_amortize /. reg_factor a *. level_cost 0);
      let prev = ref (miss 0) in
      for c = 1 to num_levels do
        let mc = if c = num_levels then 0.0 else miss c in
        let served_here = Float.max 0.0 (!prev -. mc) in
        let extra = Float.max 0.0 (level_cost c -. level_cost 0) in
        if c = num_levels then begin
          (* everything still missing at the last cache goes to DRAM *)
          let dram_events = !prev in
          mem_dram := !mem_dram +. (dram_events *. extra);
          ignore served_here
        end
        else mem_cache := !mem_cache +. (served_here *. extra);
        prev := Float.min !prev mc
      done)
    info.accesses;
  { compute; mem_cache = !mem_cache; mem_dram = !mem_dram }

(* Parallel scaling for a statement: product of the extents of its
   enclosing Parallel loops. *)
let parallel_extent (info : Access.stmt_info) =
  List.fold_left
    (fun acc (l : Prog.loop) ->
      if l.ann = Step.Parallel then acc * l.extent else acc)
    1 info.loops

let effective_workers (m : Machine.t) p =
  if p <= 1 then 1.0
  else if p <= m.num_workers then fi p
  else
    let chunks = (p + m.num_workers - 1) / m.num_workers in
    fi p /. fi chunks

(* Parallel-region entry overhead: once per iteration of the loops
   enclosing each outermost Parallel loop. *)
let region_overhead (m : Machine.t) (prog : Prog.t) =
  let total = ref 0.0 in
  let rec go outer_iters in_parallel = function
    | Prog.Stmt _ -> ()
    | Prog.Loop l ->
      let in_parallel' = in_parallel || l.ann = Step.Parallel in
      if l.ann = Step.Parallel && not in_parallel then
        total := !total +. (outer_iters *. m.parallel_overhead);
      List.iter (go (outer_iters *. fi l.extent) in_parallel') l.body
  in
  List.iter (go 1.0 false) prog.items;
  !total

let breakdown (m : Machine.t) (prog : Prog.t) =
  let infos = Access.analyze prog in
  (* map tensor -> enclosing loop vars of (one of) its writer statements;
     keep the writer with the longest path (deepest placement) *)
  let writers = Hashtbl.create 16 in
  List.iter
    (fun (info : Access.stmt_info) ->
      let path = List.map (fun l -> l.Prog.lvar) info.loops in
      match Hashtbl.find_opt writers info.stmt.tensor with
      | Some old when List.length old >= List.length path -> ()
      | _ -> Hashtbl.replace writers info.stmt.tensor path)
    infos;
  let compute = ref 0.0 and memory = ref 0.0 and loops = ref 0.0 in
  List.iter
    (fun (info : Access.stmt_info) ->
      let c = stmt_cost m writers info in
      let p = parallel_extent info in
      let eff = effective_workers m p in
      let dram_eff = Float.min eff m.dram_bw_workers in
      compute := !compute +. (c.compute /. eff);
      memory := !memory +. (c.mem_cache /. eff) +. (c.mem_dram /. dram_eff))
    infos;
  (* initialization of reduction buffers: streaming stores *)
  List.iter
    (fun (name, _) ->
      match List.assoc_opt name prog.buffers with
      | Some shape ->
        memory :=
          !memory
          +. fi (Prog.buffer_size shape) *. m.dram_cost
             /. fi Access.line_elems /. m.dram_bw_workers
      | None -> ())
    prog.inits;
  let parallel_cycles = region_overhead m prog in
  let total = !compute +. !memory +. !loops +. parallel_cycles in
  let total = Float.max total 1.0 in
  {
    compute_cycles = !compute;
    memory_cycles = !memory;
    loop_cycles = !loops;
    parallel_cycles;
    total_cycles = total;
    seconds = total /. (m.freq_ghz *. 1e9);
  }

let estimate m prog = (breakdown m prog).seconds
