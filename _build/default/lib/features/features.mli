(** Program features for the learned cost model (Appendix B).

    One fixed-length vector is extracted per innermost non-loop statement,
    in the context of the full program.  The groups follow the paper's
    Appendix B: float / integer operation counts; vectorization, unrolling
    and parallelization features (length of the innermost annotated loop,
    one-hot position/kind encoding, product of annotated lengths, count);
    GPU-thread-binding placeholders; a 10-point arithmetic-intensity curve;
    per-buffer access features for up to [buffers_per_stmt] buffers (access
    type, bytes, unique bytes, lines, unique lines, reuse type, reuse
    distance, reuse counter, stride, bytes-over-reuse ratios); allocation
    features; and outer-loop context features.

    Magnitude features are [log2(1+x)]-transformed so the gradient-boosted
    trees split on orders of magnitude. *)

open Ansor_sched

val buffers_per_stmt : int
(** Buffer-feature blocks per statement (5, as in the paper); statements
    touching more buffers keep the largest, fewer are zero-padded. *)

val dim : int
(** Length of a feature vector. *)

val names : string array
(** Human-readable feature names, [names.(i)] describing component [i];
    useful for inspecting trained models. *)

val of_stmt_info : Access.stmt_info -> float array

val of_prog : Prog.t -> float array list
(** One vector per innermost statement, in program order.  Never empty for
    programs produced by {!Lower.lower} on non-trivial DAGs. *)
