open Ansor_sched

let buffers_per_stmt = 5

let log2p1 x = Float.log (1.0 +. Float.max 0.0 x) /. Float.log 2.0

(* ---- feature layout ---------------------------------------------------- *)

(* Annotation-group features: innermost length, 8-way position one-hot
   (inner/middle/outer x space/reduce, mixed, none), product, count. *)
let ann_group_len = 1 + 8 + 1 + 1

let float_ops_len = 5
let int_ops_len = 3
let gpu_len = 7
let curve_len = 10
let buffer_len = 3 + 4 + 3 + 2 + 1 + 1 + 4 (* 18 *)
let alloc_len = 2
let other_len = 3

let dim =
  float_ops_len + int_ops_len + (3 * ann_group_len) + gpu_len + curve_len
  + (buffers_per_stmt * buffer_len)
  + alloc_len + other_len

let names =
  let ann_names prefix =
    [
      prefix ^ ".innermost_len";
      prefix ^ ".pos_inner_space";
      prefix ^ ".pos_middle_space";
      prefix ^ ".pos_outer_space";
      prefix ^ ".pos_inner_reduce";
      prefix ^ ".pos_middle_reduce";
      prefix ^ ".pos_outer_reduce";
      prefix ^ ".pos_mixed";
      prefix ^ ".pos_none";
      prefix ^ ".product";
      prefix ^ ".count";
    ]
  in
  let buffer_names i =
    let p = Printf.sprintf "buf%d" i in
    [
      p ^ ".read";
      p ^ ".write";
      p ^ ".read_write";
      p ^ ".bytes";
      p ^ ".unique_bytes";
      p ^ ".lines";
      p ^ ".unique_lines";
      p ^ ".reuse_loop_multiple_read";
      p ^ ".reuse_serial_multiple_read";
      p ^ ".reuse_none";
      p ^ ".reuse_distance_iters";
      p ^ ".reuse_distance_bytes";
      p ^ ".reuse_counter";
      p ^ ".stride";
      p ^ ".bytes_per_reuse";
      p ^ ".unique_bytes_per_reuse";
      p ^ ".lines_per_reuse";
      p ^ ".unique_lines_per_reuse";
    ]
  in
  Array.of_list
    ([
       "fop.add_sub";
       "fop.mul";
       "fop.div_mod";
       "fop.cmp";
       "fop.math";
       "iop.add_sub";
       "iop.mul";
       "iop.div_mod";
     ]
    @ ann_names "vec" @ ann_names "unroll" @ ann_names "parallel"
    @ [
        "gpu.blockIdx_x";
        "gpu.blockIdx_y";
        "gpu.blockIdx_z";
        "gpu.threadIdx_x";
        "gpu.threadIdx_y";
        "gpu.threadIdx_z";
        "gpu.vthread";
      ]
    @ List.init curve_len (Printf.sprintf "intensity_curve.%d")
    @ List.concat_map buffer_names (List.init buffers_per_stmt Fun.id)
    @ [ "alloc.output_size"; "alloc.count" ]
    @ [ "outer.num_loops"; "outer.prod_lengths"; "outer.auto_unroll" ])

let () = assert (Array.length names = dim)

(* ---- extraction -------------------------------------------------------- *)

let ann_features (info : Access.stmt_info) ann =
  let loops = Array.of_list info.loops in
  let n = Array.length loops in
  let annotated =
    List.filter (fun d -> loops.(d).Prog.ann = ann) (List.init n Fun.id)
  in
  let innermost_len =
    match List.rev annotated with
    | [] -> 0.0
    | d :: _ -> float_of_int loops.(d).Prog.extent
  in
  let position =
    (* index into the 8-way one-hot: 6 kind x depth combinations, then
       "mixed" (6) and "none" (7) *)
    match List.rev annotated with
    | [] -> 7
    | d :: _ ->
      let kinds =
        List.sort_uniq compare
          (List.map (fun d -> loops.(d).Prog.kind) annotated)
      in
      if List.length kinds > 1 then 6
      else
        let third =
          if n <= 1 then 0
          else
            let r = float_of_int d /. float_of_int (n - 1) in
            if r > 0.66 then 0 else if r > 0.33 then 1 else 2
        in
        let base = match loops.(d).Prog.kind with State.Space -> 0 | State.Reduce -> 3 in
        base + third
  in
  let product =
    List.fold_left (fun acc d -> acc *. float_of_int loops.(d).Prog.extent) 1.0
      annotated
  in
  let onehot = List.init 8 (fun i -> if i = position then 1.0 else 0.0) in
  (log2p1 innermost_len :: onehot)
  @ [ log2p1 product; float_of_int (List.length annotated) ]

let flops_per_iter (info : Access.stmt_info) =
  let c = info.counts in
  float_of_int
    (c.float_add_sub + c.float_mul + c.float_div_mod + c.float_cmp
   + c.float_math)

let intensity_curve (info : Access.stmt_info) =
  let n = List.length info.loops in
  let fpi = Float.max 1.0 (flops_per_iter info) in
  (* intensity at depth d: flops of loops >= d over bytes touched by them *)
  let point d =
    let iters = ref 1.0 in
    List.iteri
      (fun i l -> if i >= d then iters := !iters *. float_of_int l.Prog.extent)
      info.loops;
    let flops = !iters *. fpi in
    let bytes = Float.max 4.0 (Access.working_set info d) in
    log2p1 (flops /. bytes)
  in
  let pts = Array.init (n + 1) (fun i -> point (n - i)) in
  (* pts.(0) = innermost ... pts.(n) = whole statement; resample to 10 *)
  List.init curve_len (fun i ->
      if n = 0 then pts.(0)
      else
        let pos = float_of_int i /. float_of_int (curve_len - 1) *. float_of_int n in
        let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
        let lo = max 0 (min lo n) and hi = max 0 (min hi n) in
        let frac = pos -. floor pos in
        ((1.0 -. frac) *. pts.(lo)) +. (frac *. pts.(hi)))

let buffer_features (info : Access.stmt_info) =
  (* merge read and write access records per tensor; a reduction output is
     read-modify-write *)
  let is_update = info.stmt.update <> None in
  let by_tensor = Hashtbl.create 8 in
  List.iter
    (fun (a : Access.access) ->
      match Hashtbl.find_opt by_tensor a.tensor with
      | None ->
        Hashtbl.replace by_tensor a.tensor
          (a, a.is_write, (not a.is_write) || (a.is_write && is_update))
      | Some (a0, w, r) ->
        Hashtbl.replace by_tensor a.tensor
          ( (if a.touched.(0) > a0.Access.touched.(0) then a else a0),
            w || a.is_write,
            r || not a.is_write ))
    info.accesses;
  let merged =
    Hashtbl.fold (fun _ v acc -> v :: acc) by_tensor []
    |> List.sort (fun ((a : Access.access), _, _) ((b : Access.access), _, _) ->
           compare b.touched.(0) a.touched.(0))
  in
  let one ((a : Access.access), w, r) =
    let bytes = info.iters *. float_of_int a.count *. 4.0 in
    let unique_bytes = a.touched.(0) *. 4.0 in
    let line_ratio = a.lines.(0) /. Float.max 1.0 a.touched.(0) in
    let lines = Float.max 1.0 (info.iters *. float_of_int a.count *. line_ratio) in
    let unique_lines = a.lines.(0) in
    let reuse_kind, reuse_dist_iters, reuse_dist_bytes, reuse_counter =
      match a.reuse_loop with
      | Some d ->
        let dist = ref 1.0 in
        List.iteri
          (fun i l ->
            if i > d then dist := !dist *. float_of_int l.Prog.extent)
          info.loops;
        let extent =
          float_of_int (List.nth info.loops d).Prog.extent
        in
        (0, !dist, Access.working_set info (d + 1), extent)
      | None -> if a.count > 1 then (1, 1.0, 4.0, float_of_int a.count) else (2, 0.0, 0.0, 0.0)
    in
    let rc = Float.max 1.0 reuse_counter in
    [
      (if r && not w then 1.0 else 0.0);
      (if w && not r then 1.0 else 0.0);
      (if w && r then 1.0 else 0.0);
      log2p1 bytes;
      log2p1 unique_bytes;
      log2p1 lines;
      log2p1 unique_lines;
      (if reuse_kind = 0 then 1.0 else 0.0);
      (if reuse_kind = 1 then 1.0 else 0.0);
      (if reuse_kind = 2 then 1.0 else 0.0);
      log2p1 reuse_dist_iters;
      log2p1 reuse_dist_bytes;
      log2p1 reuse_counter;
      log2p1 (float_of_int a.inner_stride);
      log2p1 (bytes /. rc);
      log2p1 (unique_bytes /. rc);
      log2p1 (lines /. rc);
      log2p1 (unique_lines /. rc);
    ]
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let used = take buffers_per_stmt merged in
  let pad = buffers_per_stmt - List.length used in
  List.concat_map one used @ List.concat (List.init pad (fun _ -> List.init buffer_len (fun _ -> 0.0)))

let of_stmt_info (info : Access.stmt_info) =
  let c = info.counts in
  let float_ops =
    [
      log2p1 (float_of_int c.float_add_sub);
      log2p1 (float_of_int c.float_mul);
      log2p1 (float_of_int c.float_div_mod);
      log2p1 (float_of_int c.float_cmp);
      log2p1 (float_of_int c.float_math);
    ]
  in
  let int_ops =
    [
      log2p1 (float_of_int c.int_add_sub);
      log2p1 (float_of_int c.int_mul);
      log2p1 (float_of_int c.int_div_mod);
    ]
  in
  (* GPU thread-binding placeholders: on this system's machine models the
     parallel annotation plays the role of block/thread binding, so the
     first slot carries the parallel extent and the rest stay zero. *)
  let parallel_product =
    List.fold_left
      (fun acc (l : Prog.loop) ->
        if l.ann = Step.Parallel then acc *. float_of_int l.extent else acc)
      1.0 info.loops
  in
  let gpu = log2p1 parallel_product :: List.init (gpu_len - 1) (fun _ -> 0.0) in
  let alloc =
    let out_size =
      match info.accesses with
      | a :: _ -> a.touched.(0) *. 4.0
      | [] -> 0.0
    in
    [ log2p1 out_size; 1.0 ]
  in
  let other =
    let n = List.length info.loops in
    [
      float_of_int n;
      log2p1 info.iters;
      log2p1
        (match info.stmt.max_unroll with Some m -> float_of_int m | None -> 0.0);
    ]
  in
  let v =
    float_ops @ int_ops
    @ ann_features info Step.Vectorize
    @ ann_features info Step.Unroll
    @ ann_features info Step.Parallel
    @ gpu @ intensity_curve info @ buffer_features info @ alloc @ other
  in
  let arr = Array.of_list v in
  assert (Array.length arr = dim);
  arr

let of_prog prog = List.map of_stmt_info (Access.analyze prog)
