lib/features/features.mli: Access Ansor_sched Prog
