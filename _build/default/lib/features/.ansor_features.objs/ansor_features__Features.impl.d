lib/features/features.ml: Access Ansor_sched Array Float Fun Hashtbl List Printf Prog State Step
