(* Table 1 / Figure 5: the derivation rules and the sketches they generate
   on the paper's two example inputs, plus rule-coverage statistics over
   the whole operator suite. *)

open Common

let count_steps pred st =
  List.length (List.filter pred (Ansor.Sketch_gen.sketch_steps st))

let classify st =
  let cache = count_steps (function Ansor.Step.Cache_write _ -> true | _ -> false) st in
  let rf = count_steps (function Ansor.Step.Rfactor _ -> true | _ -> false) st in
  let fuse = count_steps (function Ansor.Step.Compute_at _ -> true | _ -> false) st in
  let inl = count_steps (function Ansor.Step.Compute_inline _ -> true | _ -> false) st in
  (cache, rf, fuse, inl)

let show_input name dag =
  subheader name;
  Printf.printf "%s\n\n" (Format.asprintf "%a" Ansor.Dag.pp dag);
  let sketches = Ansor.Sketch_gen.generate dag in
  Printf.printf "%d sketches generated:\n" (List.length sketches);
  List.iteri
    (fun i st ->
      let cache, rf, fuse, inl = classify st in
      Printf.printf
        "  sketch %d: %2d steps (cache stages %d, rfactor %d, fusions %d, inlines %d)\n"
        i
        (List.length (Ansor.Sketch_gen.sketch_steps st))
        cache rf fuse inl)
    sketches

let run () =
  header "Table 1 / Figure 5: derivation rules and generated sketches";
  show_input "Example input 1 (matmul + ReLU)" (Ansor.Nn.matmul_relu ~m:512 ~n:512 ~k:512 ());
  show_input "Example input 2 (relu; pad; tall-thin matmul)" (Ansor.Nn.figure5_input2 ());
  subheader "Sketch counts over the single-operator suite (batch 1)";
  Printf.printf "%-8s %10s %14s %14s %14s\n" "op" "sketches" "with cache"
    "with rfactor" "with fusion";
  List.iter
    (fun (op, cases) ->
      let sketches =
        List.concat_map
          (fun (c : Ansor.Workloads.case) -> Ansor.Sketch_gen.generate c.dag)
          cases
      in
      let n = List.length sketches in
      let count f = List.length (List.filter (fun s -> f s > 0) sketches) in
      Printf.printf "%-8s %10d %14d %14d %14d\n" op n
        (count (fun s -> let c, _, _, _ = classify s in c))
        (count (fun s -> let _, r, _, _ = classify s in r))
        (count (fun s -> let _, _, f, _ = classify s in f)))
    (Ansor.Workloads.single_op_suite ~batch:1)
