(* Figure 6: single-operator benchmark on the Intel CPU model.

   Ten operator families x four shapes x two batch sizes, tuned by every
   framework with the same measurement-trial budget.  The table reports,
   per operator family and framework, the geometric mean over the four
   shapes of the throughput normalized to the best framework — exactly the
   y-axis of Figure 6. *)

open Common

let frameworks = [ "PyTorch"; "Halide"; "FlexTensor"; "AutoTVM"; "Ansor" ]

let run_case ~machine ~trials (case : Ansor.Workloads.case) =
  [
    vendor_case Ansor.Baselines.Pytorch ~machine case;
    tune_case ~options:Ansor.Baselines.halide_beam ~machine ~trials case;
    tune_case ~options:Ansor.Baselines.flextensor ~machine ~trials case;
    tune_case ~options:Ansor.Baselines.autotvm ~machine ~trials case;
    tune_case ~options:Ansor.Baselines.ansor ~machine ~trials case;
  ]

let run_batch ~batch ~trials =
  subheader (Printf.sprintf "Batch size = %d  (budget %d trials/case)" batch trials);
  let machine = Ansor.Machine.intel_cpu in
  let results =
    List.map
      (fun (op, cases) ->
        let per_case =
          List.map
            (fun case ->
              let lat, elapsed =
                time_of (fun () -> run_case ~machine ~trials case)
              in
              Printf.printf "  %-14s %s  (%.1fs)\n%!" case.Ansor.Workloads.case_name
                (String.concat " "
                   (List.map (fun l -> Printf.sprintf "%9.3fms" (l *. 1e3)) lat))
                elapsed;
              lat)
            cases
        in
        (op, geomean_normalized per_case))
      (Ansor.Workloads.single_op_suite ~batch)
  in
  Printf.printf "\nNormalized performance (geomean over 4 shapes; 1.00 = best):\n";
  Printf.printf "%-8s" "op";
  List.iter (fun f -> Printf.printf "%12s" f) frameworks;
  print_newline ();
  let wins = Array.make (List.length frameworks) 0 in
  List.iter
    (fun (op, norm) ->
      Printf.printf "%-8s" op;
      let best = List.fold_left Float.max 0.0 norm in
      List.iteri
        (fun i v ->
          if v >= best -. 1e-9 then wins.(i) <- wins.(i) + 1;
          Printf.printf "%12.3f" v)
        norm;
      print_newline ())
    results;
  Printf.printf "%-8s" "wins";
  Array.iter (fun w -> Printf.printf "%12d" w) wins;
  print_newline ()

let run () =
  header "Figure 6: single-operator benchmark (Intel CPU model)";
  let trials = scaled 600 in
  run_batch ~batch:1 ~trials;
  run_batch ~batch:16 ~trials
