bench/searchtime.ml: Ansor Array Common List Printf
