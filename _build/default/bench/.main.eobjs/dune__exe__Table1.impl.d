bench/table1.ml: Ansor Common Format List Printf
