bench/fig3.ml: Ansor Common List Printf String
