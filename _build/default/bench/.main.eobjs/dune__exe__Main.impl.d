bench/main.ml: Ablation Array Common Fig10 Fig3 Fig6 Fig7 Fig8 Fig9 List Micro Printf Searchtime String Sys Table1 Table2 Unix
