bench/ablation.ml: Ansor Array Common Float List Printf
