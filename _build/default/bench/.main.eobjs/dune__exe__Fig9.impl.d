bench/fig9.ml: Ansor Array Common Hashtbl List Printf String
