bench/micro.ml: Analyze Ansor Bechamel Benchmark Common Hashtbl Instance List Measure Printf Staged Test Time Toolkit
