bench/main.mli:
