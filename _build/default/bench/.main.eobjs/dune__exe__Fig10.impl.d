bench/fig10.ml: Ansor Array Common Float Hashtbl List Printf String
