bench/fig7.ml: Ansor Common Float List Printf
