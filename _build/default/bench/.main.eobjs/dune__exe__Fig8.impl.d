bench/fig8.ml: Ansor Common Float List Printf String
