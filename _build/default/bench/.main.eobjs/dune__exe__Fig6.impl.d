bench/fig6.ml: Ansor Array Common Float List Printf String
