bench/common.ml: Ansor Float List Printf String Sys Unix
