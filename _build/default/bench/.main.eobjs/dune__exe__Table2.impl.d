bench/table2.ml: Ansor Array Common List Printf
