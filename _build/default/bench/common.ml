(* Shared infrastructure for the experiment harness. *)

let scale =
  match Sys.getenv_opt "ANSOR_BENCH_SCALE" with
  | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 1.0)
  | None -> 1.0

let scaled n = max 8 (int_of_float (float_of_int n *. scale))

let seed =
  match Sys.getenv_opt "ANSOR_BENCH_SEED" with
  | Some s -> ( match int_of_string_opt s with Some i -> i | None -> 2020)
  | None -> 2020

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let row1 fmt = Printf.printf fmt

(* a normalized-throughput table: one row per workload, one column per
   framework; the best framework per row is 1.00 (the y-axis convention
   of Figures 6, 8 and 9) *)
let normalized_table ~row_label ~columns ~(rows : (string * float list) list) =
  Printf.printf "%-22s" row_label;
  List.iter (fun c -> Printf.printf "%12s" c) columns;
  print_newline ();
  List.iter
    (fun (name, latencies) ->
      let throughputs =
        List.map (fun l -> if l > 0.0 && Float.is_finite l then 1.0 /. l else 0.0) latencies
      in
      let best = List.fold_left Float.max 0.0 throughputs in
      Printf.printf "%-22s" name;
      List.iter
        (fun t ->
          if best > 0.0 && t > 0.0 then Printf.printf "%12.3f" (t /. best)
          else Printf.printf "%12s" "-")
        throughputs;
      print_newline ())
    rows

(* geometric-mean row over a list of per-case normalized latencies *)
let geomean_normalized (cases : float list list) =
  (* cases: per case, per framework latencies; result: per framework
     geomean of (throughput / best throughput) *)
  match cases with
  | [] -> []
  | first :: _ ->
    let nfw = List.length first in
    List.init nfw (fun fw ->
        let values =
          List.filter_map
            (fun lats ->
              let thr =
                List.map
                  (fun l -> if l > 0.0 && Float.is_finite l then 1.0 /. l else 0.0)
                  lats
              in
              let best = List.fold_left Float.max 0.0 thr in
              let v = List.nth thr fw in
              if best > 0.0 then Some (Float.max (v /. best) 1e-6) else None)
            cases
        in
        Ansor.Stats.geomean values)

let tune_case ?(options = Ansor.Tuner.ansor_options) ~machine ~trials
    (case : Ansor.Workloads.case) =
  let task = Ansor.Task.create ~name:case.case_name ~machine case.dag in
  let tuner, _ = Ansor.Tuner.tune ~seed options ~trials task in
  match Ansor.Tuner.best_state tuner with
  | None -> infinity
  | Some st ->
    (* final reporting uses the noise-free simulator estimate *)
    Ansor.Simulator.estimate machine (Ansor.Lower.lower st)

let vendor_case vendor ~machine (case : Ansor.Workloads.case) =
  let task = Ansor.Task.create ~name:case.case_name ~machine case.dag in
  Ansor.Baselines.vendor_latency vendor task

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
