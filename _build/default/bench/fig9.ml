(* Figure 9: end-to-end network inference benchmark on the three machine
   models.  Ansor and AutoTVM tune the networks' unique subgraphs under
   the same trial budget (Ansor with the gradient task scheduler, AutoTVM
   with its template space and uniform allocation); the vendor frameworks
   are statically pre-tuned libraries. *)

open Common

(* offline vendor results are deterministic per task: cache them *)
let vendor_cache : (string, float) Hashtbl.t = Hashtbl.create 64

let vendor_net vendor tasks =
  List.fold_left
    (fun acc ((task : Ansor.Task.t), w) ->
      let key = Ansor.Baselines.vendor_name vendor ^ "|" ^ Ansor.Task.key task in
      let lat =
        match Hashtbl.find_opt vendor_cache key with
        | Some l -> l
        | None ->
          let l = Ansor.Baselines.vendor_latency vendor task in
          Hashtbl.replace vendor_cache key l;
          l
      in
      acc +. (float_of_int w *. lat))
    0.0 tasks

let tuned_net ~tuner_options ~uniform ~machine net ~trials_per_task =
  let pairs = Ansor.Workloads.net_tasks ~machine net in
  let tasks = Array.of_list (List.map fst pairs) in
  let networks =
    [
      {
        Ansor.Scheduler.net_name = net.Ansor.Workloads.net_name;
        task_weights = List.mapi (fun i (_, w) -> (i, w)) pairs;
      };
    ]
  in
  let options =
    {
      Ansor.Scheduler.default_options with
      tuner_options;
      seed;
      (* "uniform": disable the gradient scheduler by exploring randomly,
         emulating a fixed per-task budget *)
      eps_greedy = (if uniform then 1.0 else 0.05);
    }
  in
  let sched = Ansor.Scheduler.create options ~tasks ~networks in
  Ansor.Scheduler.run sched
    ~trial_budget:(trials_per_task * Array.length tasks);
  Ansor.Scheduler.network_latency sched (List.hd networks)

let bench_platform ~machine ~batch ~vendors ~trials_per_task =
  subheader
    (Printf.sprintf "%s, batch = %d (budget %d trials/subgraph)"
       machine.Ansor.Machine.name batch trials_per_task);
  let nets = Ansor.Workloads.networks ~batch in
  let columns =
    List.map Ansor.Baselines.vendor_name vendors @ [ "AutoTVM"; "Ansor" ]
  in
  let rows =
    List.map
      (fun net ->
        let tasks = Ansor.Workloads.net_tasks ~machine net in
        let vend = List.map (fun v -> vendor_net v tasks) vendors in
        let autotvm, t1 =
          time_of (fun () ->
              tuned_net ~tuner_options:Ansor.Baselines.autotvm ~uniform:true
                ~machine net ~trials_per_task)
        in
        let ansor, t2 =
          time_of (fun () ->
              tuned_net ~tuner_options:Ansor.Baselines.ansor ~uniform:false
                ~machine net ~trials_per_task)
        in
        let lats = vend @ [ autotvm; ansor ] in
        Printf.printf "  %-14s %s  (%.0fs + %.0fs)\n%!" net.Ansor.Workloads.net_name
          (String.concat " "
             (List.map (fun l -> Printf.sprintf "%9.3fms" (l *. 1e3)) lats))
          t1 t2;
        (net.Ansor.Workloads.net_name, lats))
      nets
  in
  Printf.printf "\nNormalized performance (1.00 = best per network):\n";
  normalized_table ~row_label:"network" ~columns ~rows

let run () =
  header "Figure 9: end-to-end network benchmark";
  let trials_per_task = scaled 64 in
  bench_platform ~machine:Ansor.Machine.intel_cpu ~batch:1
    ~vendors:[ Ansor.Baselines.Pytorch; Ansor.Baselines.Tensorflow ]
    ~trials_per_task;
  bench_platform ~machine:Ansor.Machine.intel_cpu ~batch:16
    ~vendors:[ Ansor.Baselines.Pytorch; Ansor.Baselines.Tensorflow ]
    ~trials_per_task;
  bench_platform ~machine:Ansor.Machine.gpu ~batch:1
    ~vendors:
      [ Ansor.Baselines.Pytorch; Ansor.Baselines.Tensorflow; Ansor.Baselines.Tensorrt ]
    ~trials_per_task;
  bench_platform ~machine:Ansor.Machine.gpu ~batch:16
    ~vendors:
      [ Ansor.Baselines.Pytorch; Ansor.Baselines.Tensorflow; Ansor.Baselines.Tensorrt ]
    ~trials_per_task;
  bench_platform ~machine:Ansor.Machine.arm_cpu ~batch:1
    ~vendors:[ Ansor.Baselines.Tflite ] ~trials_per_task
