(* Table 2: the objective functions for tuning sets of DNNs, exercised on
   a two-network set.  Shows the resulting budget allocations: f2 stops
   investing in a network once its requirement is met, f4 stops investing
   in stagnating tasks. *)

open Common

let machine = Ansor.Machine.intel_cpu

let run () =
  header "Table 2: objective functions for multiple neural networks";
  let heavy =
    { Ansor.Workloads.case_name = "heavy-gmm";
      dag = Ansor.Nn.matmul ~m:512 ~n:512 ~k:512 () }
  in
  let light =
    { Ansor.Workloads.case_name = "light-gmm";
      dag = Ansor.Nn.matmul ~m:64 ~n:64 ~k:64 () }
  in
  let tasks =
    [|
      Ansor.Task.create ~name:heavy.case_name ~machine heavy.dag;
      Ansor.Task.create ~name:light.case_name ~machine light.dag;
    |]
  in
  let networks =
    [
      { Ansor.Scheduler.net_name = "DNN-1 (heavy)"; task_weights = [ (0, 1) ] };
      { Ansor.Scheduler.net_name = "DNN-2 (light)"; task_weights = [ (1, 4) ] };
    ]
  in
  let budget = scaled 200 in
  let objectives =
    [
      ("f1 (total latency)", Ansor.Scheduler.F1_sum);
      ( "f2 (requirement on DNN-2)",
        Ansor.Scheduler.F2_requirements [| 0.0; 1.0 (* already met *) |] );
      ( "f3 (geomean speedup)",
        Ansor.Scheduler.F3_geomean_speedup [| 0.01; 0.001 |] );
      ("f4 (early stopping)", Ansor.Scheduler.F4_early_stopping { patience = 3 });
    ]
  in
  Printf.printf "%-28s %10s %10s %14s %14s %14s\n" "objective" "units(T1)"
    "units(T2)" "DNN-1 (ms)" "DNN-2 (ms)" "objective";
  List.iter
    (fun (name, objective) ->
      let sched =
        Ansor.Scheduler.create
          { Ansor.Scheduler.default_options with objective; seed }
          ~tasks ~networks
      in
      Ansor.Scheduler.run sched ~trial_budget:budget;
      let alloc = Ansor.Scheduler.allocations sched in
      Printf.printf "%-28s %10d %10d %14.3f %14.3f %14.4f\n%!" name alloc.(0)
        alloc.(1)
        (Ansor.Scheduler.network_latency sched (List.nth networks 0) *. 1e3)
        (Ansor.Scheduler.network_latency sched (List.nth networks 1) *. 1e3)
        (Ansor.Scheduler.objective_value sched))
    objectives;
  Printf.printf
    "\nExpected: f2 shifts units away from DNN-2 (its requirement is\n\
     already met); f1/f3 balance by impact.\n"
