(* Figure 3: the learned cost model ranks complete programs well but fails
   on incomplete programs.

   We train the GBDT on random complete programs from several multi-stage
   tasks, then evaluate pairwise accuracy and top-k recall on a held-out
   set whose programs are "completed" to varying degrees: a completion
   rate r keeps only the first ceil(r * #statements) statement feature
   vectors, exactly the masking procedure described in §2. *)

open Common

let tasks () =
  [
    Ansor.Nn.conv_layer ~n:1 ~c:32 ~h:28 ~w:28 ~f:32 ~kh:3 ~kw:3 ~stride:1
      ~pad:1 ();
    Ansor.Nn.softmax ~m:256 ~n:256 ();
    Ansor.Nn.tbg ~b:8 ~m:64 ~n:64 ~k:64 ();
    Ansor.Nn.figure5_input2 ();
  ]

let run () =
  header "Figure 3: cost-model accuracy on incomplete programs";
  let machine = Ansor.Machine.intel_cpu in
  let n_per_task = scaled 150 in
  let rng = Ansor.Rng.create seed in
  let data =
    List.concat_map
      (fun dag ->
        let sketches = Ansor.Sketch_gen.generate dag in
        let policy = Ansor.Policy.cpu ~workers:machine.num_workers in
        let states =
          Ansor.Sampler.sample rng policy dag ~sketches ~n:n_per_task
        in
        List.map
          (fun st ->
            let prog = Ansor.Lower.lower st in
            let key = Ansor.Dag.workload_key dag in
            (key, Ansor.Features.of_prog prog,
             Ansor.Simulator.estimate machine prog))
          states)
      (tasks ())
  in
  Printf.printf "%d random complete programs from %d tasks\n"
    (List.length data) (List.length (tasks ()));
  (* split train/test *)
  let train, test =
    List.partition (fun _ -> Ansor.Rng.bool rng) data
  in
  let records =
    List.map
      (fun (key, features, latency) ->
        { Ansor.Cost_model.features; task_key = key; latency })
      train
  in
  let model = Ansor.Cost_model.train records in
  Printf.printf "trained on %d programs, evaluating on %d\n\n"
    (List.length train) (List.length test);
  (* metrics are computed per task (programs of different computations are
     not comparable by raw throughput) and averaged, as in the paper where
     all programs come from one search space *)
  let task_keys =
    List.sort_uniq compare (List.map (fun (k, _, _) -> k) test)
  in
  Printf.printf "%-16s %-18s %-12s\n" "completion rate" "pairwise accuracy"
    "top-k recall";
  let chance_recall = ref 0.0 in
  List.iter
    (fun rate ->
      let accs, recalls =
        List.split
          (List.map
             (fun key ->
               let group =
                 List.filter (fun (k, _, _) -> String.equal k key) test
               in
               let predicted =
                 List.map
                   (fun (_, features, _) ->
                     let n = List.length features in
                     let keep =
                       max 0 (int_of_float (ceil (rate *. float_of_int n)))
                     in
                     let kept = List.filteri (fun i _ -> i < keep) features in
                     Ansor.Cost_model.score model kept)
                   group
               in
               let actual = List.map (fun (_, _, l) -> 1.0 /. l) group in
               let k = max 1 (List.length group / 10) in
               chance_recall := float_of_int k /. float_of_int (List.length group);
               ( Ansor.Cost_model.Metrics.pairwise_accuracy ~predicted ~actual,
                 Ansor.Cost_model.Metrics.recall_at_k ~k ~predicted ~actual ))
             task_keys)
      in
      Printf.printf "%-16.2f %-18.3f %-12.3f\n" rate (Ansor.Stats.mean accs)
        (Ansor.Stats.mean recalls))
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ];
  Printf.printf
    "\nExpected shape (paper): both metrics near chance (0.5 / ~%.2f) at\n\
     rate 0 and rising toward 1.0 as programs become complete.\n"
    !chance_recall
