(* Figure 10: task-scheduler ablation.  Left: MobileNet-V2 alone; right:
   MobileNet-V2 + ResNet-50 jointly.  The objective is f3 — the geometric
   mean of speedups against AutoTVM's final result (the paper's reference
   line at 1.0).  Four variants: full Ansor, Ansor with a round-robin
   scheduler, no fine-tuning, and the limited template space. *)

open Common

let machine = Ansor.Machine.intel_cpu

let build ~nets =
  (* deduplicated task array + per-network weight lists *)
  let table = Hashtbl.create 32 in
  let order = ref [] in
  let networks =
    List.map
      (fun net ->
        let task_weights =
          List.map
            (fun ((task : Ansor.Task.t), w) ->
              let key = Ansor.Task.key task in
              let i =
                match Hashtbl.find_opt table key with
                | Some i -> i
                | None ->
                  let i = Hashtbl.length table in
                  Hashtbl.replace table key i;
                  order := task :: !order;
                  i
              in
              (i, w))
            (Ansor.Workloads.net_tasks ~machine net)
        in
        { Ansor.Scheduler.net_name = net.Ansor.Workloads.net_name; task_weights })
      nets
  in
  (Array.of_list (List.rev !order), networks)

let autotvm_reference ~tasks ~networks ~budget =
  let options =
    {
      Ansor.Scheduler.default_options with
      tuner_options = Ansor.Baselines.autotvm;
      eps_greedy = 1.0;
      seed;
    }
  in
  let sched = Ansor.Scheduler.create options ~tasks ~networks in
  Ansor.Scheduler.run sched ~trial_budget:budget;
  ( List.map (fun n -> Ansor.Scheduler.network_latency sched n) networks,
    Ansor.Scheduler.total_trials sched )

let variant_curve ~tasks ~networks ~budget ~refs (name, tuner_options, uniform) =
  let options =
    {
      Ansor.Scheduler.default_options with
      objective = Ansor.Scheduler.F3_geomean_speedup (Array.of_list refs);
      tuner_options;
      eps_greedy = (if uniform then 1.0 else 0.05);
      seed;
    }
  in
  let sched = Ansor.Scheduler.create options ~tasks ~networks in
  let (), elapsed = time_of (fun () -> Ansor.Scheduler.run sched ~trial_budget:budget) in
  let speedup netlats =
    Ansor.Stats.geomean (List.mapi (fun j r -> r /. netlats.(j)) refs)
  in
  let curve =
    List.map
      (fun (trials, netlats) -> (trials, speedup netlats))
      (Ansor.Scheduler.curve sched)
  in
  Printf.printf "  %-20s final speedup %.3f  (%.0fs)\n%!" name
    (match List.rev curve with (_, s) :: _ -> s | [] -> 0.0)
    elapsed;
  (name, curve)

let variants =
  [
    ("Ansor (ours)", Ansor.Baselines.ansor, false);
    ("No task scheduler", Ansor.Baselines.ansor, true);
    ("No fine-tuning", Ansor.Tuner.no_finetune_options, false);
    ("Limited space", Ansor.Tuner.limited_options, false);
  ]

let run_panel title nets ~budget ~ref_budget =
  subheader title;
  let tasks, networks = build ~nets in
  Printf.printf "  %d unique tasks; variant budget %d trials, AutoTVM reference %d\n%!"
    (Array.length tasks) budget ref_budget;
  let refs, ref_trials = autotvm_reference ~tasks ~networks ~budget:ref_budget in
  Printf.printf "  AutoTVM reference: %s (%d trials)\n%!"
    (String.concat " " (List.map (fun l -> Printf.sprintf "%.3fms" (l *. 1e3)) refs))
    ref_trials;
  let curves =
    List.map (variant_curve ~tasks ~networks ~budget ~refs) variants
  in
  let checkpoints =
    List.filter (fun c -> c <= budget)
      [ budget / 8; budget / 4; budget / 2; (3 * budget) / 4; budget ]
    |> List.sort_uniq compare
  in
  Printf.printf "\nGeomean speedup over AutoTVM (>1.0 = better than AutoTVM):\n";
  Printf.printf "%-10s" "trials";
  List.iter (fun (n, _) -> Printf.printf "%20s" n) curves;
  print_newline ();
  List.iter
    (fun cp ->
      Printf.printf "%-10d" cp;
      List.iter
        (fun (_, curve) ->
          let best_at =
            List.fold_left
              (fun acc (t, s) -> if t <= cp then Float.max acc s else acc)
              0.0 curve
          in
          Printf.printf "%20.3f" best_at)
        curves;
      print_newline ())
    checkpoints

let run () =
  header "Figure 10: task-scheduler ablation (objective f3 vs AutoTVM)";
  let per_task = scaled 24 in
  let mb = Ansor.Workloads.mobilenet_v2 ~batch:1 in
  let rn = Ansor.Workloads.resnet50 ~batch:1 in
  let n_mb = List.length mb.layers in
  let n_both = n_mb + List.length rn.layers in
  run_panel "MobileNet-V2" [ mb ] ~budget:(per_task * n_mb)
    ~ref_budget:(2 * per_task * n_mb);
  run_panel "MobileNet-V2 + ResNet-50" [ mb; rn ] ~budget:(per_task * n_both)
    ~ref_budget:(2 * per_task * n_both)
