(* Figure 8: subgraph benchmark — ConvLayer (conv2d + bn + relu) and TBG
   (transpose x2 + batch matmul) on the CPU and GPU machine models, batch
   sizes 1 and 16.  "@C" = CPU, "@G" = GPU, as in the paper. *)

open Common

let run_case ~machine ~trials ~with_halide (case : Ansor.Workloads.case) =
  [
    vendor_case Ansor.Baselines.Pytorch ~machine case;
    (if with_halide then
       tune_case ~options:Ansor.Baselines.halide_beam ~machine ~trials case
     else infinity);
    tune_case ~options:Ansor.Baselines.flextensor ~machine ~trials case;
    tune_case ~options:Ansor.Baselines.autotvm ~machine ~trials case;
    tune_case ~options:Ansor.Baselines.ansor ~machine ~trials case;
  ]

let bench_subgraph ~batch ~trials name cases =
  List.concat_map
    (fun (machine, tag, with_halide) ->
      let per_case =
        List.map
          (fun case ->
            let lat, elapsed =
              time_of (fun () -> run_case ~machine ~trials ~with_halide case)
            in
            Printf.printf "  %-18s@%s %s (%.1fs)\n%!"
              case.Ansor.Workloads.case_name tag
              (String.concat " "
                 (List.map
                    (fun l ->
                      if Float.is_finite l then Printf.sprintf "%9.3fms" (l *. 1e3)
                      else "        -")
                    lat))
              elapsed;
            lat)
          cases
      in
      [ (Printf.sprintf "%s @%s b%d" name tag batch, geomean_normalized per_case) ])
    [
      (Ansor.Machine.intel_cpu, "C", true);
      (* the paper omits the Halide auto-scheduler on GPU (experimental) *)
      (Ansor.Machine.gpu, "G", false);
    ]

let run () =
  header "Figure 8: subgraph benchmark (CPU and GPU models)";
  let trials = scaled 400 in
  let frameworks = [ "PyTorch"; "Halide"; "FlexTensor"; "AutoTVM"; "Ansor" ] in
  let rows =
    List.concat_map
      (fun batch ->
        bench_subgraph ~batch ~trials "ConvLayer"
          (Ansor.Workloads.conv_layer_cases ~batch)
        @ bench_subgraph ~batch ~trials "TBG" (Ansor.Workloads.tbg_cases ~batch))
      [ 1; 16 ]
  in
  Printf.printf "\nNormalized performance (geomean over 4 shapes; 1.00 = best):\n";
  Printf.printf "%-22s" "subgraph";
  List.iter (fun f -> Printf.printf "%12s" f) frameworks;
  print_newline ();
  List.iter
    (fun (name, norm) ->
      Printf.printf "%-22s" name;
      List.iter
        (fun v -> if v > 1e-6 then Printf.printf "%12.3f" v else Printf.printf "%12s" "-")
        norm;
      print_newline ())
    rows
