(* Subgraph tuning with operator fusion: a ConvLayer (conv2d + batch-norm
   + ReLU), the running subgraph of the paper's §7.2.

   Demonstrates the hierarchical search space: the sketches the derivation
   rules generate (batch-norm and ReLU handling, multi-level tiling with
   fusion, cache stages), followed by fine-tuning, and a functional
   correctness check of the best program against naive evaluation.

     dune exec examples/conv_relu.exe
*)

let () =
  let dag =
    Ansor.Nn.conv_layer ~n:1 ~c:16 ~h:28 ~w:28 ~f:32 ~kh:3 ~kw:3 ~stride:1
      ~pad:1 ()
  in

  (* 1. Sketch generation (Table 1 rules) *)
  let sketches = Ansor.Sketch_gen.generate dag in
  Printf.printf "Generated %d sketches.\n\n" (List.length sketches);
  List.iteri
    (fun i sk ->
      Printf.printf "--- sketch %d: derivation steps ---\n" i;
      List.iter
        (fun step -> Printf.printf "  %s\n" (Format.asprintf "%a" Ansor.Step.pp step))
        (Ansor.Sketch_gen.sketch_steps sk))
    sketches;

  (* 2. Fine-tune on the simulated CPU *)
  let result = Ansor.tune ~seed:7 ~trials:150 Ansor.Machine.intel_cpu dag in
  Printf.printf "\nBest simulated latency: %.4f ms\n" (result.best_latency *. 1e3);

  (* 3. The soundness oracle: the scheduled program must compute exactly
     what the naive program computes *)
  match result.best_state with
  | None -> print_endline "no program found"
  | Some st -> (
    print_endline "\nBest program:";
    print_endline (Ansor.Prog.to_string (Ansor.Lower.lower st));
    match Ansor.verify_state st with
    | Ok () -> print_endline "verification: scheduled == naive (OK)"
    | Error e -> Printf.printf "verification FAILED: %s\n" e)
