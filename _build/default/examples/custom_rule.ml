(* User-defined derivation rules (§4.1, Table 1, last row).

   The paper's rule set is open: "we allow users to register new
   derivation rules and integrate them seamlessly with existing rules".
   This example registers a rule specific to depthwise convolution that
   fuses the channel and height axes before the generic multi-level tiling
   runs, enlarging the parallelizable outer extent — the kind of
   algorithm-specific structure a Winograd- or TensorCore-style schedule
   would need.

     dune exec examples/custom_rule.exe
*)

open Ansor

(* The rule: on depthwise-style ops (one reduction window, channel axis
   equal to output channel axis), fuse the two outermost space axes, then
   let the default rules continue from the same node. *)
let fuse_outer_spatial : Rules.t =
  {
    Rules.name = "fuse-outer-spatial";
    condition =
      (fun st i ->
        match Dag.op st.State.dag i with
        | Op.Compute { axes; reduce_axes; _ } ->
          List.length axes >= 3
          && List.length reduce_axes = 2
          && Dag.has_data_reuse st.State.dag i
          && State.is_pristine (State.find_stage st (Op.name (Dag.op st.State.dag i)))
        | Op.Placeholder _ -> false);
    apply =
      (fun st i ->
        let name = Op.name (Dag.op st.State.dag i) in
        let stage = State.find_stage st name in
        match stage.State.leaves with
        | a :: b :: _ ->
          let st = State.apply st (Step.Fuse { stage = name; ivs = [ a; b ] }) in
          (* stay on the same node so the built-in tiling rules fire on
             the fused structure *)
          [ (st, i) ]
        | _ -> []);
    exclusive = true;
  }

let () =
  let dag =
    Nn.depthwise_conv2d ~n:1 ~c:32 ~h:28 ~w:28 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()
  in
  let default_sketches = Sketch_gen.generate dag in
  let custom_rules = fuse_outer_spatial :: Rules.default in
  let custom_sketches = Sketch_gen.generate ~rules:custom_rules dag in
  Printf.printf "sketches: default rules %d, with custom rule %d\n\n"
    (List.length default_sketches)
    (List.length custom_sketches);

  (* tune with the custom space *)
  let machine = Machine.intel_cpu in
  let task = Task.create ~name:"dep-custom" ~machine dag in
  let options =
    {
      Tuner.ansor_options with
      strategy =
        Tuner.Sketch_search { rules = custom_rules; use_evolution = true };
    }
  in
  let tuner, _ = Tuner.tune ~seed:5 options ~trials:120 task in
  Printf.printf "custom-rule space best: %.4f ms\n"
    (Tuner.best_latency tuner *. 1e3);
  let tuner_def, _ = Tuner.tune ~seed:5 Tuner.ansor_options ~trials:120 task in
  Printf.printf "default     space best: %.4f ms\n"
    (Tuner.best_latency tuner_def *. 1e3);
  match Tuner.best_state tuner with
  | Some st -> (
    match Ansor.verify_state st with
    | Ok () -> print_endline "verification: OK"
    | Error e -> Printf.printf "verification FAILED: %s\n" e)
  | None -> ()
