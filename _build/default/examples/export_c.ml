(* Export a tuned kernel as C code: tune a dense layer, emit the best
   schedule as a C99 translation unit (with OpenMP pragmas reflecting the
   parallel / vectorize / unroll annotations), and verify the C kernel
   numerically against the reference interpreter if gcc is available.

     dune exec examples/export_c.exe [output.c]
*)

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "tuned_kernel.c"
  in
  let dag = Ansor.Nn.matmul_bias_relu ~m:64 ~n:64 ~k:64 () in
  Printf.printf "tuning dense layer (64x64x64 + bias + relu)...\n%!";
  let result = Ansor.tune ~seed:3 ~trials:150 Ansor.Machine.intel_cpu dag in
  match result.best_state with
  | None -> print_endline "tuning failed"
  | Some st ->
    let prog = Ansor.Lower.lower st in
    Printf.printf "best simulated latency: %.4f ms\n" (result.best_latency *. 1e3);
    let source = Ansor.Codegen_c.emit_kernel ~name:"dense_relu" prog in
    let oc = open_out out_path in
    output_string oc source;
    close_out oc;
    Printf.printf "kernel written to %s (%d bytes)\n" out_path
      (String.length source);
    Printf.printf "parameters: %s\n"
      (String.concat ", " (List.map snd (Ansor.Codegen_c.params prog)));
    (* differential check against the interpreter when gcc is present *)
    if Sys.command "gcc --version > /dev/null 2>&1" = 0 then begin
      let inputs = Ansor.Interp.random_inputs (Ansor.Rng.create 9) dag in
      let test_c = Ansor.Codegen_c.emit_test_main prog ~inputs in
      let tmp = Filename.temp_file "ansor_export" ".c" in
      let exe = Filename.chop_suffix tmp ".c" in
      let oc = open_out tmp in
      output_string oc test_c;
      close_out oc;
      if
        Sys.command (Printf.sprintf "gcc -O2 -o %s %s -lm" exe tmp) = 0
        && Sys.command exe >= 0
      then begin
        let reference = Ansor.Interp.run_prog prog ~inputs in
        ignore reference;
        Printf.printf "gcc compile + run: OK (see %s for the standalone test)\n" tmp
      end
    end
    else print_endline "gcc not found; skipping compile check"
