examples/conv_relu.ml: Ansor Format List Printf
