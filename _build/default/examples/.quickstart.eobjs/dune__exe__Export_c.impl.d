examples/export_c.ml: Ansor Array Filename List Printf String Sys
