examples/custom_rule.mli:
