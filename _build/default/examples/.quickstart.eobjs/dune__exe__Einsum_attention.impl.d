examples/einsum_attention.ml: Ansor Format List Printf String
