examples/quickstart.ml: Ansor Format Printf
