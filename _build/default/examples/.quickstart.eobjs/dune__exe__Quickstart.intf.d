examples/quickstart.mli:
