examples/network_tuning.mli:
