examples/network_tuning.ml: Ansor List Printf
