examples/conv_relu.mli:
