examples/einsum_attention.mli:
