examples/custom_rule.ml: Ansor Dag List Machine Nn Op Printf Rules Sketch_gen State Step Task Tuner
