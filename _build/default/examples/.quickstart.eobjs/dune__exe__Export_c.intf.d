examples/export_c.mli:
