(* Quickstart: auto-schedule a 512x512x512 matrix multiplication on the
   simulated 20-core server CPU and print the program Ansor found.

     dune exec examples/quickstart.exe
*)

let () =
  let dag = Ansor.Nn.matmul ~m:512 ~n:512 ~k:512 () in
  Printf.printf "Computation:\n%s\n\n" (Format.asprintf "%a" Ansor.Dag.pp dag);

  let machine = Ansor.Machine.intel_cpu in
  let result = Ansor.tune ~seed:42 ~trials:200 machine dag in

  Printf.printf "Measurement trials used: %d\n" result.trials_used;
  Printf.printf "Best simulated latency:  %.3f ms\n"
    (result.best_latency *. 1e3);
  let flops = 2.0 *. (512.0 ** 3.0) in
  Printf.printf "Achieved throughput:     %.1f GFLOP/s (peak %.1f)\n\n"
    (flops /. result.best_latency /. 1e9)
    (Ansor.Machine.peak_flops machine /. 1e9);

  match result.best_state with
  | None -> print_endline "no program found"
  | Some st ->
    print_endline "Best program:";
    print_endline (Ansor.Prog.to_string (Ansor.Lower.lower st))
