(* End-to-end network tuning with the task scheduler (§6): optimize
   MobileNet-V2's unique subgraphs under one measurement budget, letting
   the gradient-based scheduler decide which layers deserve trials.

     dune exec examples/network_tuning.exe
*)

let () =
  let machine = Ansor.Machine.intel_cpu in
  let net = Ansor.Workloads.mobilenet_v2 ~batch:1 in
  Printf.printf "%s: %d unique subgraphs\n\n" net.net_name
    (List.length net.layers);

  let results =
    Ansor.tune_networks ~seed:11 ~trial_budget:600 machine [ net ]
  in
  List.iter
    (fun (r : Ansor.network_result) ->
      Printf.printf "network %-14s  end-to-end %8.3f ms\n\n"
        r.net.net_name (r.latency *. 1e3);
      Printf.printf "  %-28s %12s\n" "subgraph" "latency (ms)";
      List.iter
        (fun (name, lat) -> Printf.printf "  %-28s %12.4f\n" name (lat *. 1e3))
        r.per_task)
    results
