(* Einsum front-end: define multi-head attention scores with einstein
   notation, auto-schedule them, and statically validate the result.

     dune exec examples/einsum_attention.exe
*)

let () =
  (* scores[b,h,q,k] = sum_d Q[b,h,q,d] * K[b,h,k,d] *)
  let spec = "bhqd,bhkd->bhqk" in
  let shapes = [ [ 1; 8; 64; 32 ]; [ 1; 8; 64; 32 ] ] in
  let dag =
    Ansor.Einsum.build ~operand_names:[ "Q"; "K" ] spec ~shapes
  in
  Printf.printf "einsum %S:\n%s\n\n" spec
    (Format.asprintf "%a" Ansor.Dag.pp dag);
  Printf.printf "output shape: [%s]\n\n"
    (String.concat "; "
       (List.map string_of_int (Ansor.Einsum.output_shape spec ~shapes)));

  let result = Ansor.tune ~seed:5 ~trials:150 Ansor.Machine.intel_cpu dag in
  Printf.printf "best simulated latency: %.4f ms\n" (result.best_latency *. 1e3);
  match result.best_state with
  | None -> print_endline "tuning failed"
  | Some st ->
    let prog = Ansor.Lower.lower st in
    (match Ansor.Validate.check prog with
    | [] -> print_endline "static validation: OK"
    | issues ->
      List.iter
        (fun d -> Format.printf "issue: %a@." Ansor.Diagnostic.pp d)
        issues);
    print_endline (Ansor.Prog.to_string prog)
