(* ansor-cli: tune operators, subgraphs and networks from the command
   line on the simulated machines — and serve the tuned results.

     ansor-cli machines
     ansor-cli sketches -o GMM
     ansor-cli tune -o C2D -i 1 -b 1 -m intel-cpu -t 300 -s ansor
     ansor-cli network -n mobilenet_v2 -m intel-cpu --budget 500
     ansor-cli registry build -o sched.reg --from tune.log
     ansor-cli serve -n mobilenet_v2 --registry sched.reg --requests 200
*)

open Cmdliner

let machine_arg =
  let doc = "Target machine model (intel-cpu, arm-cpu, gpu)." in
  Arg.(value & opt string "intel-cpu" & info [ "m"; "machine" ] ~doc)

let lookup_machine name =
  match Ansor.Machine.by_name name with
  | m -> Ok m
  | exception Not_found ->
    Error
      (Printf.sprintf "unknown machine %s (expected: %s)" name
         (String.concat ", "
            (List.map
               (fun (m : Ansor.Machine.t) -> m.name)
               Ansor.Machine.all)))

let op_arg =
  let doc = "Operator family (C1D C2D C3D GMM GRP DIL DEP T2D CAP NRM), or \
             ConvLayer / TBG for the subgraph benchmarks." in
  Arg.(value & opt string "GMM" & info [ "o"; "op" ] ~doc)

let index_arg =
  let doc = "Shape configuration index (1-4)." in
  Arg.(value & opt int 1 & info [ "i"; "index" ] ~doc)

let batch_arg =
  let doc = "Batch size." in
  Arg.(value & opt int 1 & info [ "b"; "batch" ] ~doc)

let trials_arg =
  let doc = "Measurement-trial budget." in
  Arg.(value & opt int 200 & info [ "t"; "trials" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~doc)

let strategy_arg =
  let doc =
    "Search strategy: ansor, autotvm, flextensor, beam, limited, \
     no-finetune."
  in
  Arg.(value & opt string "ansor" & info [ "s"; "strategy" ] ~doc)

let workers_arg =
  let doc = "Measurement worker domains (parallel program measurement)." in
  Arg.(value & opt int 1 & info [ "w"; "workers" ] ~doc)

let measure_timeout_arg =
  let doc =
    "Per-program measurement timeout in seconds; programs over the ceiling \
     are classified as timeouts instead of measured."
  in
  Arg.(value & opt (some float) None & info [ "measure-timeout" ] ~doc)

let stats_json_arg =
  let doc = "Dump measurement telemetry as JSON to this file ('-' for stdout)." in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~doc)

let batch_deadline_arg =
  let doc =
    "Wall-clock budget in seconds for one measurement batch; once it \
     expires, not-yet-started candidates are classified as timeouts \
     instead of run, so a stuck candidate cannot hang a worker forever."
  in
  Arg.(value & opt (some float) None & info [ "batch-deadline" ] ~doc)

let snapshot_arg =
  let doc =
    "Checkpoint the full session to this file after every tuning round \
     (atomic write; the previous round survives as FILE.prev). Combine \
     with --resume to continue an interrupted run."
  in
  Arg.(value & opt (some string) None & info [ "snapshot" ] ~doc)

let resume_arg =
  let doc =
    "Resume from the latest valid snapshot generation at the --snapshot \
     path (falls back to FILE.prev on corruption; starts fresh, with a \
     warning, when no usable snapshot exists)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let stop_after_rounds_arg =
  let doc =
    "Stop gracefully after N tuning rounds, flushing all session state \
     (deterministic interruption, for resume testing)."
  in
  Arg.(value & opt (some int) None & info [ "stop-after-rounds" ] ~doc)

let backend_arg =
  let doc =
    "Measurement backend: sim (the analytical machine simulator) or \
     native (candidates compiled with gcc -O3 -fopenmp -march=native and \
     timed on this host)."
  in
  Arg.(value & opt string "sim" & info [ "backend" ] ~doc)

let lookup_backend name =
  match Ansor.Measure_protocol.backend_of_string name with
  | Error _ as e -> e
  | Ok Ansor.Measure_protocol.Native
    when not (Ansor.Measure_native.available ()) ->
    Error
      "backend native: no working C compiler (install gcc or point \
       ANSOR_CC at one)"
  | Ok b -> Ok b

let service_config ?(backend = Ansor.Measure_protocol.Sim) workers
    measure_timeout batch_deadline =
  {
    Ansor.Measure_service.default_config with
    num_workers = workers;
    timeout = Option.value measure_timeout ~default:infinity;
    batch_deadline = Option.value batch_deadline ~default:infinity;
    backend;
    (* ANSOR_BOUNDS_CHECK=1 emits guarded kernels (clean abort on any
       out-of-range access), which makes measuring certifier-Unknown
       programs acceptable; without it the native gate refuses them. *)
    allow_unproven = Ansor.Measure_native.guard_requested ();
  }

(* Graceful interruption: SIGINT/SIGTERM set a flag the tuning loop polls
   between rounds, [--stop-after-rounds] trips the same path
   deterministically.  Returns the hooks to pass to the tuning entry
   points and a finisher that reports how the session ended. *)
let session_control stop_after_rounds =
  Ansor.Checkpoint.Shutdown.install ();
  let rounds = ref 0 in
  let should_stop () =
    Ansor.Checkpoint.Shutdown.requested ()
    || match stop_after_rounds with Some n -> !rounds >= n | None -> false
  in
  let on_round () = incr rounds in
  let summarize () =
    match Ansor.Checkpoint.Shutdown.reason () with
    | Some signal ->
      Printf.printf
        "interrupted by %s after %d rounds: session state flushed; rerun \
         with --resume to continue\n"
        signal !rounds
    | None -> (
      match stop_after_rounds with
      | Some n when !rounds >= n ->
        Printf.printf
          "stopped after %d rounds (--stop-after-rounds): rerun with \
           --resume to continue\n"
          !rounds
      | _ -> ())
  in
  (should_stop, on_round, summarize)

let check_resume_flags resume snapshot =
  if resume && snapshot = None then
    Error "--resume requires --snapshot PATH"
  else Ok ()

let emit_json ~what stats_json json =
  match stats_json with
  | None -> ()
  | Some "-" -> print_endline json
  | Some path -> (
    match open_out path with
    | exception Sys_error e ->
      Printf.eprintf "warning: cannot write %s: %s\n" what e
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc json);
      Printf.printf "%s written to %s\n" what path)

let emit_stats stats_json (stats : Ansor.Telemetry.stats) =
  Printf.printf "telemetry: %s\n" (Ansor.Telemetry.summary stats);
  emit_json ~what:"telemetry" stats_json (Ansor.Telemetry.to_json stats)

(* Resuming an interrupted session re-logs its best on the first improved
   round, and long sessions accumulate an improvement trail: compact the
   log (best per key) when picking a session back up so it stops growing
   unboundedly. *)
let compact_record_log ~resume save =
  match save with
  | Some path when resume && Sys.file_exists path -> (
    match Ansor.Record.compact ~path with
    | Ok 0 -> ()
    | Ok removed ->
      Printf.printf "record log %s compacted: %d stale entr%s removed\n" path
        removed
        (if removed = 1 then "y" else "ies")
    | Error msg ->
      Printf.eprintf "warning: cannot compact record log %s: %s\n" path msg)
  | _ -> ()

let cache_path save = save ^ ".cache"

let load_cache save =
  match save with
  | Some path when Sys.file_exists (cache_path path) -> (
    (* salvage mode: a torn final line (e.g. from a killed writer) costs
       that line, not the whole cache *)
    match Ansor.Measure_cache.load_salvage ~path:(cache_path path) with
    | Ok (cache, skipped) ->
      Printf.printf "measurement cache: %d entries from %s\n"
        (Ansor.Measure_cache.size cache)
        (cache_path path);
      if skipped > 0 then
        Printf.eprintf "warning: cache %s: skipped %d malformed line%s\n"
          (cache_path path) skipped
          (if skipped = 1 then "" else "s");
      cache
    | Error msg ->
      Printf.eprintf "warning: ignoring cache %s: %s\n" (cache_path path) msg;
      Ansor.Measure_cache.create ())
  | _ -> Ansor.Measure_cache.create ()

let lookup_strategy = function
  | "ansor" -> Ok Ansor.Tuner.ansor_options
  | "autotvm" -> Ok Ansor.Tuner.autotvm_options
  | "flextensor" -> Ok Ansor.Tuner.flextensor_options
  | "beam" -> Ok Ansor.Tuner.beam_options
  | "limited" -> Ok Ansor.Tuner.limited_options
  | "no-finetune" -> Ok Ansor.Tuner.no_finetune_options
  | s -> Error (Printf.sprintf "unknown strategy %s" s)

let cases_of op batch =
  match op with
  | "ConvLayer" -> Ok (Ansor.Workloads.conv_layer_cases ~batch)
  | "TBG" -> Ok (Ansor.Workloads.tbg_cases ~batch)
  | op -> (
    match Ansor.Workloads.op_cases ~op ~batch with
    | cases -> Ok cases
    | exception Invalid_argument msg -> Error msg)

let case_of op index batch =
  Result.bind (cases_of op batch) (fun cases ->
      match if index < 1 then None else List.nth_opt cases (index - 1) with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "shape index %d out of range" index))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

(* ---- cross-task model store --------------------------------------------- *)

let model_store_arg =
  let doc =
    "Cross-task model store file: the session warm-starts from the \
     pretrained model the exact/class/global ladder resolves for its \
     task(s), folds the store's same-class samples into training, and \
     appends its own measured batches back (see 'ansor-cli model')."
  in
  Arg.(value & opt (some string) None & info [ "model-store" ] ~docv:"FILE" ~doc)

let open_model_store = function
  | None -> None
  | Some path ->
    let ms = or_die (Ansor.Model_store.open_session ~path ()) in
    if ms.Ansor.Model_store.salvaged > 0 then
      Printf.eprintf "warning: model store %s: skipped %d malformed line%s\n"
        path ms.salvaged
        (if ms.salvaged = 1 then "" else "s");
    (match ms.Ansor.Model_store.models_error with
    | Some e ->
      Printf.eprintf
        "warning: %s unusable (%s); pretraining in-memory from the store\n"
        (Ansor.Model_store.models_path path)
        e
    | None -> ());
    Printf.printf "model store %s: %d sample%s, %d pretrained model%s\n" path
      (Ansor.Model_store.size ms.Ansor.Model_store.store)
      (if Ansor.Model_store.size ms.store = 1 then "" else "s")
      (Ansor.Model_store.Pretrained.num_models ms.pretrained)
      (if Ansor.Model_store.Pretrained.num_models ms.pretrained = 1 then ""
       else "s");
    Some ms

(* tune's --stats-json: the telemetry object with the session outcome
   (final best and the best-so-far curve) spliced in front, so one file
   carries everything trials-to-quality analyses need.  The telemetry
   fields keep their exact shape — existing consumers notice nothing. *)
let tune_stats_json (result : Ansor.tune_result) =
  let telemetry = Ansor.Telemetry.to_json result.stats in
  let rest = String.sub telemetry 1 (String.length telemetry - 1) in
  let curve =
    String.concat ", "
      (List.map
         (fun (t, l) -> Printf.sprintf "[%d, %.9e]" t l)
         result.curve)
  in
  Printf.sprintf "{\"best_latency\":%.9e,\"trials_used\":%d,\"curve\":[%s],%s"
    result.best_latency result.trials_used curve rest

(* ---- commands ----------------------------------------------------------- *)

let machines_cmd =
  let run () =
    List.iter
      (fun (m : Ansor.Machine.t) ->
        Printf.printf "%-10s %3d workers x %2d lanes  %4.1f GHz  peak %7.1f GFLOP/s\n"
          m.name m.num_workers m.vector_lanes m.freq_ghz
          (Ansor.Machine.peak_flops m /. 1e9))
      Ansor.Machine.all
  in
  Cmd.v (Cmd.info "machines" ~doc:"List the simulated machine models.")
    Term.(const run $ const ())

let sketches_cmd =
  let run op index batch =
    let case = or_die (case_of op index batch) in
    Printf.printf "computation %s:\n%s\n\n" case.Ansor.Workloads.case_name
      (Format.asprintf "%a" Ansor.Dag.pp case.dag);
    let sketches = Ansor.Sketch_gen.generate case.dag in
    Printf.printf "%d sketches\n" (List.length sketches);
    List.iteri
      (fun i sk ->
        Printf.printf "--- sketch %d ---\n" i;
        List.iter
          (fun s -> Printf.printf "  %s\n" (Format.asprintf "%a" Ansor.Step.pp s))
          (Ansor.Sketch_gen.sketch_steps sk))
      sketches
  in
  Cmd.v
    (Cmd.info "sketches" ~doc:"Show the generated sketches of a workload.")
    Term.(const run $ op_arg $ index_arg $ batch_arg)

let save_arg =
  let doc = "Append the best record to this tuning-log file." in
  Arg.(value & opt (some string) None & info [ "save" ] ~doc)

let descent_arg =
  let doc =
    "Finish with the coordinate-descent exploitation stage: once evolution \
     plateaus (or half the trial budget is spent), greedily line-search the \
     incumbent's split/unroll/annotation coordinates under the cost model, \
     measure only the per-coordinate winners, and stop on a measured plateau."
  in
  Arg.(value & flag & info [ "descent" ] ~doc)

let descent_plateau_arg =
  let doc =
    "Descent stop patience: consecutive non-improving measured sweeps before \
     the stage ends (default 2; implies $(b,--descent))."
  in
  Arg.(value & opt (some int) None & info [ "descent-plateau" ] ~docv:"K" ~doc)

let descent_options descent descent_plateau options =
  match (descent, descent_plateau) with
  | false, None -> options
  | _ ->
    let cfg = Ansor.Descent.default_config in
    let cfg =
      match descent_plateau with
      | Some k -> { cfg with Ansor.Descent.plateau_sweeps = max 1 k }
      | None -> cfg
    in
    { options with Ansor.Tuner.descent = Some cfg }

let print_descent_stats (stats : Ansor.Telemetry.stats) =
  if stats.Ansor.Telemetry.descent_sweeps > 0 then
    Printf.printf
      "descent: %d sweeps, %d trials, %d improving sweeps%s\n"
      stats.Ansor.Telemetry.descent_sweeps
      stats.Ansor.Telemetry.descent_trials
      stats.Ansor.Telemetry.descent_improvements
      (if stats.Ansor.Telemetry.descent_plateau_stops > 0 then
         ", stopped on plateau"
       else "")

let curve_arg =
  let doc = "Plot the best-latency-vs-trials curve." in
  Arg.(value & flag & info [ "curve" ] ~doc)

let tune_cmd =
  let run op index batch machine trials seed strategy save curve workers
      measure_timeout batch_deadline backend stats_json snapshot resume
      stop_after_rounds model_store descent descent_plateau =
    or_die (check_resume_flags resume snapshot);
    let case = or_die (case_of op index batch) in
    let machine = or_die (lookup_machine machine) in
    let options =
      descent_options descent descent_plateau (or_die (lookup_strategy strategy))
    in
    let backend = or_die (lookup_backend backend) in
    let cache = load_cache save in
    let model_store = open_model_store model_store in
    compact_record_log ~resume save;
    let should_stop, on_round, summarize = session_control stop_after_rounds in
    let result =
      Ansor.tune ~seed ~trials ~options
        ~service_config:
          (service_config ~backend workers measure_timeout batch_deadline)
        ~cache ?model_store ?snapshot_path:snapshot ~resume ?record_log:save
        ~should_stop ~on_round machine case.dag
    in
    summarize ();
    Printf.printf "%s on %s (%s, %d trials): best %.4f ms\n"
      case.case_name machine.name strategy result.trials_used
      (result.best_latency *. 1e3);
    Printf.printf "telemetry: %s\n" (Ansor.Telemetry.summary result.stats);
    print_descent_stats result.stats;
    emit_json ~what:"telemetry" stats_json (tune_stats_json result);
    if curve then print_string (Ansor.Ascii_plot.render_latency_curve result.curve);
    (match result.best_state with
    | Some st ->
      let prog = Ansor.Lower.lower st in
      Format.printf "roofline: %a@." Ansor.Roofline.pp
        (Ansor.Roofline.analyze machine prog)
    | None -> ());
    (match save with
    | Some path when result.best_state <> None ->
      (* the improvement trail was batch-appended after every round
         (Record.append_batch); just say where it went *)
      Printf.printf "record log updated: %s\n" path;
      (* persist the dedup cache alongside the record log: a re-tuning
         session reuses past measurements instead of repeating them *)
      Ansor.Measure_cache.save ~path:(cache_path path) cache;
      Printf.printf "measurement cache (%d entries) written to %s\n"
        (Ansor.Measure_cache.size cache)
        (cache_path path)
    | _ -> ());
    match result.best_state with
    | Some st ->
      print_newline ();
      print_endline (Ansor.Prog.to_string (Ansor.Lower.lower st))
    | None -> print_endline "no valid program found"
  in
  Cmd.v (Cmd.info "tune" ~doc:"Auto-schedule one workload.")
    Term.(
      const run $ op_arg $ index_arg $ batch_arg $ machine_arg $ trials_arg
      $ seed_arg $ strategy_arg $ save_arg $ curve_arg $ workers_arg
      $ measure_timeout_arg $ batch_deadline_arg $ backend_arg
      $ stats_json_arg $ snapshot_arg $ resume_arg $ stop_after_rounds_arg
      $ model_store_arg $ descent_arg $ descent_plateau_arg)

let replay_cmd =
  let from_arg =
    let doc = "Tuning-log file written by tune --save." in
    Arg.(required & opt (some string) None & info [ "from" ] ~doc)
  in
  let run op index batch machine path =
    let case = or_die (case_of op index batch) in
    let machine = or_die (lookup_machine machine) in
    let task = Ansor.Task.create ~name:case.case_name ~machine case.dag in
    let entries =
      (* salvage mode: recover every intact record from a torn log *)
      match Ansor.Record.load_salvage ~path with
      | Ok (e, skipped) ->
        if skipped > 0 then
          Printf.eprintf "warning: %s: skipped %d malformed line%s\n" path
            skipped
            (if skipped = 1 then "" else "s");
        e
      | Error m -> or_die (Error m)
    in
    match Ansor.Record.best_for entries ~task_key:(Ansor.Task.key task) with
    | None ->
      Printf.printf "no record for this task in %s\n" path;
      exit 1
    | Some entry -> (
      match Ansor.Record.best_state entry case.dag with
      | Error m -> or_die (Error m)
      | Ok st ->
        let lat = Ansor.Simulator.estimate machine (Ansor.Lower.lower st) in
        Printf.printf
          "replayed record (recorded %.4f ms, simulated now %.4f ms)\n"
          (entry.latency *. 1e3) (lat *. 1e3);
        print_endline (Ansor.Prog.to_string (Ansor.Lower.lower st)))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Apply the best recorded schedule without searching.")
    Term.(const run $ op_arg $ index_arg $ batch_arg $ machine_arg $ from_arg)

let net_of_name name batch =
  match name with
  | "resnet50" -> Ok (Ansor.Workloads.resnet50 ~batch)
  | "mobilenet_v2" -> Ok (Ansor.Workloads.mobilenet_v2 ~batch)
  | "resnet3d_18" -> Ok (Ansor.Workloads.resnet3d_18 ~batch)
  | "dcgan" -> Ok (Ansor.Workloads.dcgan ~batch)
  | "bert" -> Ok (Ansor.Workloads.bert ~batch)
  | n -> Error (Printf.sprintf "unknown network %s" n)

let net_name_arg =
  let doc = "Network: resnet50, mobilenet_v2, resnet3d_18, dcgan, bert." in
  Arg.(value & opt string "mobilenet_v2" & info [ "n"; "network" ] ~doc)

let network_cmd =
  let budget_arg =
    let doc = "Total measurement-trial budget." in
    Arg.(value & opt int 500 & info [ "budget" ] ~doc)
  in
  let run name batch machine budget seed save workers measure_timeout
      batch_deadline backend stats_json snapshot resume stop_after_rounds
      model_store =
    or_die (check_resume_flags resume snapshot);
    let net = or_die (net_of_name name batch) in
    let machine = or_die (lookup_machine machine) in
    let backend = or_die (lookup_backend backend) in
    let model_store = open_model_store model_store in
    compact_record_log ~resume save;
    let should_stop, on_round, summarize = session_control stop_after_rounds in
    let results, stats =
      Ansor.tune_networks_with_stats ~seed ~trial_budget:budget
        ~service_config:
          (service_config ~backend workers measure_timeout batch_deadline)
        ?model_store ?snapshot_path:snapshot ~resume ?record_log:save
        ~should_stop ~on_round machine [ net ]
    in
    summarize ();
    List.iter
      (fun (r : Ansor.network_result) ->
        Printf.printf "%s end-to-end: %.3f ms\n" r.net.net_name
          (r.latency *. 1e3);
        List.iter
          (fun (n, l) -> Printf.printf "  %-28s %10.4f ms\n" n (l *. 1e3))
          r.per_task)
      results;
    (match save with
    | Some path -> Printf.printf "record log updated: %s\n" path
    | None -> ());
    emit_stats stats_json stats
  in
  Cmd.v
    (Cmd.info "network"
       ~doc:"Tune a whole network with the task scheduler.")
    Term.(
      const run $ net_name_arg $ batch_arg $ machine_arg $ budget_arg
      $ seed_arg $ save_arg $ workers_arg $ measure_timeout_arg
      $ batch_deadline_arg $ backend_arg $ stats_json_arg $ snapshot_arg
      $ resume_arg $ stop_after_rounds_arg $ model_store_arg)

(* ---- registry ----------------------------------------------------------- *)

let registry_out_arg =
  let doc = "Output registry file." in
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~doc)

let warn_skipped ~what skipped =
  if skipped > 0 then
    Printf.eprintf "warning: %s: skipped %d malformed line%s\n" what skipped
      (if skipped = 1 then "" else "s")

let registry_build_cmd =
  let from_arg =
    let doc = "Tuning log written by tune/network --save (repeatable)." in
    Arg.(non_empty & opt_all string [] & info [ "from" ] ~doc)
  in
  let run out paths =
    let reg, skipped = or_die (Ansor.Registry.build_from_logs ~paths) in
    warn_skipped ~what:(String.concat ", " paths) skipped;
    Ansor.Registry.save ~path:out reg;
    Printf.printf "registry %s: %d task%s from %d log%s\n" out
      (Ansor.Registry.size reg)
      (if Ansor.Registry.size reg = 1 then "" else "s")
      (List.length paths)
      (if List.length paths = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Build a best-schedule registry from tuning logs.")
    Term.(const run $ registry_out_arg $ from_arg)

let registry_merge_cmd =
  let paths_arg =
    let doc = "Registry files to merge." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"REGISTRY" ~doc)
  in
  let run out paths =
    let dst = Ansor.Registry.create () in
    List.iter
      (fun path ->
        let reg = or_die (Ansor.Registry.load ~path) in
        let changed = Ansor.Registry.merge_into ~dst reg in
        Printf.printf "%s: %d entries, %d kept as best\n" path
          (Ansor.Registry.size reg) changed)
      paths;
    Ansor.Registry.save ~path:out dst;
    Printf.printf "merged registry %s: %d task%s\n" out
      (Ansor.Registry.size dst)
      (if Ansor.Registry.size dst = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge registries, keeping the per-task best schedule.")
    Term.(const run $ registry_out_arg $ paths_arg)

let registry_path_arg =
  let doc = "Registry file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"REGISTRY" ~doc)

let registry_compact_cmd =
  let run path =
    let dropped = or_die (Ansor.Registry.compact_file ~path) in
    Printf.printf "%s compacted: %d line%s dropped\n" path dropped
      (if dropped = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Rewrite a registry in canonical form (best per task, sorted).")
    Term.(const run $ registry_path_arg)

let registry_show_cmd =
  let run path =
    let reg = or_die (Ansor.Registry.load ~path) in
    Printf.printf "%s: %d task%s\n" path (Ansor.Registry.size reg)
      (if Ansor.Registry.size reg = 1 then "" else "s");
    List.iter
      (fun (e : Ansor.Record.entry) ->
        Printf.printf "  %-60s %10.4f ms  %2d steps\n" e.task_key
          (e.latency *. 1e3)
          (List.length e.steps))
      (Ansor.Registry.entries reg)
  in
  Cmd.v (Cmd.info "show" ~doc:"List the entries of a registry.")
    Term.(const run $ registry_path_arg)

let registry_cmd =
  Cmd.group
    (Cmd.info "registry"
       ~doc:"Maintain the persistent best-schedule database.")
    [ registry_build_cmd; registry_merge_cmd; registry_compact_cmd;
      registry_show_cmd ]

(* ---- serve -------------------------------------------------------------- *)

let serve_cmd =
  let registry_arg =
    let doc = "Schedule registry built by 'registry build'." in
    Arg.(value & opt (some string) None & info [ "registry" ] ~doc)
  in
  let requests_arg =
    let doc = "End-to-end inference requests to dispatch." in
    Arg.(value & opt int 100 & info [ "requests" ] ~doc)
  in
  let request_batch_arg =
    let doc = "Requests per dispatch batch." in
    Arg.(value & opt int 16 & info [ "request-batch" ] ~doc)
  in
  let capacity_arg =
    let doc = "Compiled-program LRU capacity." in
    Arg.(value & opt int 64 & info [ "capacity" ] ~doc)
  in
  let naive_arg =
    let doc = "Bypass the registry and serve naive default schedules." in
    Arg.(value & flag & info [ "naive" ] ~doc)
  in
  let noise_arg =
    let doc = "Execution-jitter stddev (0 = deterministic latencies)." in
    Arg.(value & opt float 0.03 & info [ "noise" ] ~doc)
  in
  let net_arg =
    let doc =
      "Network to serve (resnet50, mobilenet_v2, resnet3d_18, dcgan, bert). \
       Omit to serve the single workload named by -o/-i/-b."
    in
    Arg.(value & opt (some string) None & info [ "n"; "network" ] ~doc)
  in
  let arrival_rate_arg =
    let doc =
      "Open-loop arrival rate (requests per virtual second).  0 keeps the \
       legacy closed-loop dispatcher; any positive rate switches to the \
       streaming tier (admission control, sharding, canary rollout)."
    in
    Arg.(value & opt float 0.0 & info [ "arrival-rate" ] ~doc)
  in
  let burst_arg =
    let doc =
      "Burst episode START:LEN:FACTOR (virtual seconds; repeatable; \
       overlapping episodes compose multiplicatively)."
    in
    Arg.(value & opt_all string [] & info [ "burst" ] ~docv:"SPEC" ~doc)
  in
  let queue_bound_arg =
    let doc = "Admission queue bound (waiting requests)." in
    Arg.(value & opt int 64 & info [ "queue-bound" ] ~doc)
  in
  let shed_policy_arg =
    let doc = "Overload shed policy: reject-newest or drop-oldest." in
    Arg.(value & opt string "reject-newest" & info [ "shed-policy" ] ~doc)
  in
  let discipline_arg =
    let doc = "Admission queue discipline: fifo or priority." in
    Arg.(value & opt string "fifo" & info [ "queue-discipline" ] ~doc)
  in
  let tenants_arg =
    let doc =
      "Tenant mix NAME:WEIGHT[:QUOTA_RATE[:QUOTA_BURST[:PRIORITY]]],... \
       (omitted quota fields mean unlimited)."
    in
    Arg.(value & opt string "" & info [ "tenants" ] ~docv:"SPEC" ~doc)
  in
  let shards_arg =
    let doc = "Compiled-program cache shards." in
    Arg.(value & opt int 4 & info [ "shards" ] ~doc)
  in
  let canary_arg =
    let doc =
      "Share of a key's traffic routed to a canary candidate, in (0,1)."
    in
    Arg.(value & opt float 0.2 & info [ "canary" ] ~doc)
  in
  let tune_every_arg =
    let doc =
      "Background-tuner round interval in virtual seconds (0 disables \
       background tuning)."
    in
    Arg.(value & opt float 0.0 & info [ "tune-every" ] ~doc)
  in
  let tune_trials_arg =
    let doc = "Measurement trials per background-tuner round." in
    Arg.(value & opt int 8 & info [ "tune-trials" ] ~doc)
  in
  let run net_name op index batch machine registry_path requests
      request_batch capacity workers naive noise seed stats_json resume
      arrival_rate bursts queue_bound shed_policy discipline tenants shards
      canary tune_every tune_trials model_store =
    (* --resume here means: the registry is still being written by a live
       tuning session, so salvage-load it instead of failing on a torn
       line.  Without a registry there is nothing to salvage. *)
    if resume && registry_path = None then
      or_die
        (Error
           "serve: --resume requires --registry PATH (resume salvage-loads \
            a registry still being written by a tuning session); without a \
            registry use --naive");
    let machine = or_die (lookup_machine machine) in
    let net =
      match net_name with
      | Some name -> or_die (net_of_name name batch)
      | None ->
        let case = or_die (case_of op index batch) in
        {
          Ansor.Workloads.net_name = case.case_name;
          layers = [ (case, 1) ];
        }
    in
    let registry =
      match registry_path with
      | None -> Ansor.Registry.create ()
      | Some path when resume ->
        let reg, skipped = or_die (Ansor.Registry.load_salvage ~path) in
        warn_skipped ~what:path skipped;
        reg
      | Some path -> or_die (Ansor.Registry.load ~path)
    in
    if arrival_rate > 0.0 then begin
      (* streaming tier: open-loop arrivals through admission control *)
      let bursts =
        List.map (fun s -> or_die (Ansor.Loadgen.burst_of_spec s)) bursts
      in
      let tenants = or_die (Ansor.Loadgen.tenants_of_spec tenants) in
      let shed_policy = or_die (Ansor.Admission.shed_policy_of_string shed_policy) in
      let discipline = or_die (Ansor.Admission.discipline_of_string discipline) in
      let config =
        {
          Ansor.Server.shards;
          capacity;
          service_workers = workers;
          pool_workers = 1;
          noise;
          seed;
          naive;
          load = { Ansor.Loadgen.arrival_rate; bursts; tenants; seed };
          admission =
            { Ansor.Admission.queue_bound; shed_policy; discipline };
          canary = { Ansor.Server.default_canary with fraction = canary };
          tuner =
            (if tune_every > 0.0 then
               Some { Ansor.Server.every = tune_every; trials = tune_trials }
             else None);
        }
      in
      let model_store = open_model_store model_store in
      let s = Ansor.Server.create ~config ?model_store ~registry ~machine net in
      Ansor.Server.run s ~requests;
      print_string (Ansor.Server.report s);
      emit_json ~what:"serving stats" stats_json
        (Ansor.Server.stats_json (Ansor.Server.stats s))
    end
    else begin
      if model_store <> None then
        Printf.eprintf
          "warning: --model-store only applies to the streaming tier \
           (--arrival-rate > 0); ignored by the closed-loop dispatcher\n";
      let config =
        {
          Ansor.Dispatcher.capacity;
          num_workers = workers;
          batch = request_batch;
          noise;
          naive;
          seed;
        }
      in
      let d = Ansor.Dispatcher.create ~config ~registry ~machine net in
      Ansor.Dispatcher.serve d ~requests;
      print_string (Ansor.Dispatcher.report d);
      emit_json ~what:"serving stats" stats_json
        (Ansor.Dispatcher.stats_json (Ansor.Dispatcher.stats d))
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve inference requests from a schedule registry.")
    Term.(
      const run $ net_arg $ op_arg $ index_arg $ batch_arg $ machine_arg
      $ registry_arg $ requests_arg $ request_batch_arg $ capacity_arg
      $ workers_arg $ naive_arg $ noise_arg $ seed_arg $ stats_json_arg
      $ resume_arg $ arrival_rate_arg $ burst_arg $ queue_bound_arg
      $ shed_policy_arg $ discipline_arg $ tenants_arg $ shards_arg
      $ canary_arg $ tune_every_arg $ tune_trials_arg $ model_store_arg)

(* ---- lint --------------------------------------------------------------- *)

(* Record logs and registries identify programs by task key only, so
   linting them needs the key -> (machine, DAG) mapping back: index every
   built-in workload on every machine model. *)
let dag_index () =
  let tbl = Hashtbl.create 1024 in
  let add_case (c : Ansor.Workloads.case) =
    List.iter
      (fun (m : Ansor.Machine.t) ->
        let key = m.name ^ "/" ^ Ansor.Dag.workload_key c.dag in
        if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key (m, c.dag))
      Ansor.Machine.all
  in
  List.iter
    (fun batch ->
      List.iter
        (fun (_, cases) -> List.iter add_case cases)
        (Ansor.Workloads.single_op_suite ~batch);
      List.iter add_case (Ansor.Workloads.conv_layer_cases ~batch);
      List.iter add_case (Ansor.Workloads.tbg_cases ~batch);
      List.iter
        (fun (net : Ansor.Workloads.net) ->
          List.iter (fun (c, _) -> add_case c) net.layers)
        (Ansor.Workloads.networks ~batch))
    [ 1; 2; 4; 8; 16 ];
  tbl

let lint_cmd =
  let from_arg =
    let doc = "Lint every entry of this tuning log (repeatable)." in
    Arg.(value & opt_all string [] & info [ "from" ] ~doc)
  in
  let registry_arg =
    let doc = "Lint every entry of this schedule registry." in
    Arg.(value & opt (some string) None & info [ "registry" ] ~doc)
  in
  let sample_arg =
    let doc =
      "Lint N freshly sampled programs of the workload named by -o/-i/-b \
       on machine -m (sampler-cleanliness check)."
    in
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit machine-readable JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let bounds_arg =
    let doc =
      "Run the memory-safety certifier on every program: affine bounds \
       proofs with constructive out-of-bounds witnesses (error severity, \
       witness rendered) and the def-use uninitialized-read pass (warning \
       severity).  On by default; $(b,--bounds=false) disables."
    in
    Arg.(value & opt bool true & info [ "bounds" ] ~doc)
  in
  let run op index batch machine_name seed logs registry_path sample json
      bounds =
    if logs = [] && registry_path = None && sample = None then
      or_die (Error "lint: nothing to analyze (use --from, --registry or --sample)");
    let machine = or_die (lookup_machine machine_name) in
    let index_tbl = lazy (dag_index ()) in
    let targets = ref [] and skipped = ref 0 in
    let config_for (m : Ansor.Machine.t) dag =
      {
        Ansor.Analysis.default_config with
        workers = m.num_workers;
        vector_lanes = m.vector_lanes;
        outputs =
          List.map
            (fun i -> Ansor.Op.name (Ansor.Dag.op dag i))
            (Ansor.Dag.outputs dag);
      }
    in
    let skip ~what fmt =
      Printf.ksprintf
        (fun msg ->
          incr skipped;
          Printf.eprintf "warning: %s: %s\n" what msg)
        fmt
    in
    let lint_prog ~label config prog =
      let verdict = if bounds then Some (Ansor.Bounds.certify prog) else None in
      targets :=
        (label, verdict, Ansor.Analysis.analyze ~config ~bounds prog)
        :: !targets
    in
    let lint_entry ~what (e : Ansor.Record.entry) =
      match Hashtbl.find_opt (Lazy.force index_tbl) e.task_key with
      | None -> skip ~what "unknown task key %s (not a built-in workload)" e.task_key
      | Some (m, dag) -> (
        match Ansor.Record.best_state e dag with
        | Error msg -> skip ~what "%s: %s" e.task_key msg
        | Ok st -> (
          match Ansor.Lower.lower st with
          | exception Ansor.State.Illegal msg ->
            skip ~what "%s: does not lower: %s" e.task_key msg
          | prog -> lint_prog ~label:e.task_key (config_for m dag) prog))
    in
    List.iter
      (fun path ->
        let entries =
          match Ansor.Record.load_salvage ~path with
          | Ok (e, torn) ->
            warn_skipped ~what:path torn;
            e
          | Error m -> or_die (Error m)
        in
        List.iter (lint_entry ~what:path) entries)
      logs;
    (match registry_path with
    | None -> ()
    | Some path ->
      let reg = or_die (Ansor.Registry.load ~path) in
      List.iter (lint_entry ~what:path) (Ansor.Registry.entries reg));
    (match sample with
    | None -> ()
    | Some n ->
      let case = or_die (case_of op index batch) in
      let task = Ansor.Task.create ~name:case.case_name ~machine case.dag in
      let rng = Ansor.Rng.create seed in
      let sketches = Ansor.Sketch_gen.generate case.dag in
      let config = config_for machine case.dag in
      let states =
        Ansor.Sampler.sample rng (Ansor.Task.policy task) case.dag ~sketches ~n
      in
      List.iteri
        (fun i st ->
          match Ansor.Lower.lower st with
          | exception Ansor.State.Illegal msg ->
            skip ~what:"sample" "#%d: does not lower: %s" i msg
          | prog ->
            lint_prog ~label:(Printf.sprintf "%s sample#%d" case.case_name i)
              config prog)
        states);
    let targets = List.rev !targets in
    let count sev =
      List.fold_left
        (fun acc (_, _, ds) ->
          acc
          + List.length
              (List.filter (fun d -> d.Ansor.Diagnostic.severity = sev) ds))
        0 targets
    in
    let errors = count Ansor.Diagnostic.Error in
    let warns = count Ansor.Diagnostic.Warn in
    let infos = count Ansor.Diagnostic.Info in
    let certified, unsafe, unproven =
      List.fold_left
        (fun (c, u, k) (_, verdict, _) ->
          match verdict with
          | Some Ansor.Bounds.Certified -> (c + 1, u, k)
          | Some (Ansor.Bounds.Unsafe _) -> (c, u + 1, k)
          | Some Ansor.Bounds.Unknown -> (c, u, k + 1)
          | None -> (c, u, k))
        (0, 0, 0) targets
    in
    if json then
      Printf.printf
        "{\"targets\":[%s],\"analyzed\":%d,\"skipped\":%d,\"errors\":%d,\
         \"warnings\":%d,\"infos\":%d%s}\n"
        (String.concat ","
           (List.map
              (fun (label, verdict, ds) ->
                let bounds_fields =
                  match verdict with
                  | None -> ""
                  | Some v ->
                    let witness =
                      match v with
                      | Ansor.Bounds.Unsafe w ->
                        Printf.sprintf ",\"witness\":%s"
                          (Ansor.Bounds.witness_to_json w)
                      | _ -> ""
                    in
                    Printf.sprintf ",\"bounds_verdict\":\"%s\"%s"
                      (Ansor.Bounds.verdict_name v)
                      witness
                in
                Printf.sprintf "{\"name\":\"%s\"%s,\"diagnostics\":%s}"
                  (Ansor.Diagnostic.json_escape label)
                  bounds_fields
                  (Ansor.Diagnostic.list_to_json ds))
              targets))
        (List.length targets) !skipped errors warns infos
        (if bounds then
           Printf.sprintf
             ",\"bounds\":{\"certified\":%d,\"unsafe\":%d,\"unknown\":%d}"
             certified unsafe unproven
         else "")
    else begin
      List.iter
        (fun (label, verdict, ds) ->
          if
            ds <> []
            || match verdict with Some (Ansor.Bounds.Unsafe _) -> true | _ -> false
          then begin
            Printf.printf "%s:\n" label;
            (match verdict with
            | Some (Ansor.Bounds.Unsafe w) ->
              Printf.printf "  bounds verdict: unsafe — %s\n"
                (Ansor.Bounds.witness_to_string w)
            | Some Ansor.Bounds.Unknown ->
              Printf.printf "  bounds verdict: unknown (not proved safe)\n"
            | _ -> ());
            List.iter
              (fun d -> Printf.printf "  %s\n" (Ansor.Diagnostic.to_string d))
              ds
          end)
        targets;
      Printf.printf "%d program%s analyzed (%d skipped): %d error%s, %d \
                     warning%s, %d hint%s%s\n"
        (List.length targets)
        (if List.length targets = 1 then "" else "s")
        !skipped errors
        (if errors = 1 then "" else "s")
        warns
        (if warns = 1 then "" else "s")
        infos
        (if infos = 1 then "" else "s")
        (if bounds then
           Printf.sprintf "; bounds: %d certified, %d unsafe, %d unproven"
             certified unsafe unproven
         else "")
    end;
    if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze schedules (race detector + memory-safety \
          certifier + linter) from a tuning log, a registry, or fresh \
          samples; exits non-zero on any error-severity diagnostic \
          (provable races and witness-backed out-of-bounds accesses are \
          errors; unproven bounds and uninitialized reads are warnings).")
    Term.(
      const run $ op_arg $ index_arg $ batch_arg $ machine_arg $ seed_arg
      $ from_arg $ registry_arg $ sample_arg $ json_arg $ bounds_arg)

(* ---- model: the cross-task model store ---------------------------------- *)

let store_pos_arg =
  let doc = "Model store file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE" ~doc)

let load_store_salvage path =
  if not (Sys.file_exists path) then (Ansor.Model_store.create (), 0)
  else
    match Ansor.Model_store.load_salvage ~path with
    | Ok (store, skipped) ->
      warn_skipped ~what:path skipped;
      (store, skipped)
    | Error m -> or_die (Error m)

(* Record logs carry (task key, steps, latency) but no features: replay
   each entry through the workload index (key -> machine + DAG), lower it
   and featurize — exactly what a live tuning round would have stored. *)
let import_record_log store ~index_tbl ~path =
  let entries =
    match Ansor.Record.load_salvage ~path with
    | Ok (e, torn) ->
      warn_skipped ~what:path torn;
      e
    | Error m -> or_die (Error m)
  in
  let skipped = ref 0 in
  let fresh =
    List.filter_map
      (fun (e : Ansor.Record.entry) ->
        match Hashtbl.find_opt index_tbl e.task_key with
        | None ->
          incr skipped;
          None
        | Some (machine, dag) -> (
          match Ansor.Record.best_state e dag with
          | Error _ ->
            incr skipped;
            None
          | Ok st -> (
            match Ansor.Lower.lower st with
            | exception Ansor.State.Illegal _ ->
              incr skipped;
              None
            | prog when e.latency > 0.0 ->
              let s =
                {
                  Ansor.Model_store.task_key = e.task_key;
                  prog_key = Ansor.Measure_cache.key_of_prog machine prog;
                  latency = e.latency;
                  features = Ansor.Features.of_prog prog;
                }
              in
              if Ansor.Model_store.add store s then Some s else None
            | _ ->
              incr skipped;
              None)))
      entries
  in
  if !skipped > 0 then
    Printf.eprintf
      "warning: %s: %d entr%s not importable (unknown task key or \
       non-replayable schedule)\n"
      path !skipped
      (if !skipped = 1 then "y" else "ies");
  fresh

let pretrained_summary bundle =
  List.iter
    (fun (kind, key, trees) ->
      let kind =
        match kind with `Task -> "task " | `Class -> "class" | `Global -> "global"
      in
      Printf.printf "  %-6s %-60s %3d trees\n" kind key trees)
    (Ansor.Model_store.Pretrained.summary bundle)

let model_pretrain_cmd =
  let store_arg =
    let doc =
      "Model store file to pretrain from (and to append --from imports to)."
    in
    Arg.(required & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)
  in
  let from_arg =
    let doc =
      "Import this tuning log's entries into the store first (repeatable): \
       each record is replayed, lowered and featurized, then deduplicated \
       by its canonical program hash."
    in
    Arg.(value & opt_all string [] & info [ "from" ] ~doc)
  in
  let min_samples_arg =
    let doc = "Skip task/class/global groups with fewer samples than this." in
    Arg.(value & opt int 8 & info [ "min-samples" ] ~doc)
  in
  let run store_path logs min_samples =
    if min_samples < 1 then or_die (Error "pretrain: --min-samples must be >= 1");
    let store, _ = load_store_salvage store_path in
    let index_tbl = lazy (dag_index ()) in
    List.iter
      (fun path ->
        let fresh =
          import_record_log store ~index_tbl:(Lazy.force index_tbl) ~path
        in
        Ansor.Model_store.append_batch ~path:store_path fresh;
        Printf.printf "%s: imported %d new sample%s\n" path (List.length fresh)
          (if List.length fresh = 1 then "" else "s"))
      logs;
    if Ansor.Model_store.size store = 0 then
      or_die (Error "pretrain: store is empty (import logs with --from, or \
                     tune with --model-store first)");
    let bundle = Ansor.Model_store.Pretrained.train ~min_samples store in
    if Ansor.Model_store.Pretrained.num_models bundle = 0 then
      or_die
        (Error
           (Printf.sprintf
              "pretrain: no group reaches %d samples (store has %d total); \
               lower --min-samples or import more logs"
              min_samples
              (Ansor.Model_store.size store)));
    let mp = Ansor.Model_store.models_path store_path in
    Ansor.Model_store.Pretrained.save ~path:mp bundle;
    Printf.printf "pretrained %d model%s from %d sample%s -> %s\n"
      (Ansor.Model_store.Pretrained.num_models bundle)
      (if Ansor.Model_store.Pretrained.num_models bundle = 1 then "" else "s")
      (Ansor.Model_store.size store)
      (if Ansor.Model_store.size store = 1 then "" else "s")
      mp;
    pretrained_summary bundle
  in
  Cmd.v
    (Cmd.info "pretrain"
       ~doc:
         "Fit the pretrained cost-model bundle (one GBDT per exact task, \
          per structure class, and a global fallback) from a model store, \
          optionally importing tuning logs first.")
    Term.(const run $ store_arg $ from_arg $ min_samples_arg)

let model_show_cmd =
  let run path =
    let store, _ = load_store_salvage path in
    Printf.printf "%s: %d sample%s, %d task%s, %d class%s\n" path
      (Ansor.Model_store.size store)
      (if Ansor.Model_store.size store = 1 then "" else "s")
      (List.length (Ansor.Model_store.task_keys store))
      (if List.length (Ansor.Model_store.task_keys store) = 1 then "" else "s")
      (List.length (Ansor.Model_store.class_keys store))
      (if List.length (Ansor.Model_store.class_keys store) = 1 then ""
       else "es");
    List.iter
      (fun cls ->
        Printf.printf "  %-60s %5d sample%s\n" cls
          (List.length (Ansor.Model_store.samples_for_class store ~class_key:cls))
          (if List.length
                (Ansor.Model_store.samples_for_class store ~class_key:cls)
              = 1
           then ""
           else "s"))
      (Ansor.Model_store.class_keys store);
    let mp = Ansor.Model_store.models_path path in
    if Sys.file_exists mp then
      match Ansor.Model_store.Pretrained.load ~path:mp with
      | Ok bundle ->
        Printf.printf "%s: %d pretrained model%s\n" mp
          (Ansor.Model_store.Pretrained.num_models bundle)
          (if Ansor.Model_store.Pretrained.num_models bundle = 1 then ""
           else "s");
        pretrained_summary bundle
      | Error e -> Printf.eprintf "warning: %s: %s\n" mp e
    else Printf.printf "%s: absent (run 'model pretrain')\n" mp
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Summarize a model store and its pretrained bundle.")
    Term.(const run $ store_pos_arg)

let model_gc_cmd =
  let keep_arg =
    let doc = "Samples to keep per structure class (newest first)." in
    Arg.(value & opt int 512 & info [ "keep-per-class" ] ~doc)
  in
  let run path keep =
    if keep < 0 then or_die (Error "gc: --keep-per-class must be >= 0");
    if not (Sys.file_exists path) then
      or_die (Error (Printf.sprintf "gc: no store at %s" path));
    let store, _ = load_store_salvage path in
    let dropped = Ansor.Model_store.gc store ~keep_per_class:keep in
    Ansor.Model_store.save ~path store;
    Printf.printf "%s: dropped %d sample%s, kept %d\n" path dropped
      (if dropped = 1 then "" else "s")
      (Ansor.Model_store.size store);
    if dropped > 0 && Sys.file_exists (Ansor.Model_store.models_path path) then
      Printf.printf
        "note: %s now predates the store; rerun 'model pretrain' to refresh\n"
        (Ansor.Model_store.models_path path)
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Compact a model store, keeping the newest samples of each \
          structure class.")
    Term.(const run $ store_pos_arg $ keep_arg)

let model_cmd =
  Cmd.group
    (Cmd.info "model"
       ~doc:
         "Maintain the cross-task model store: persistent training samples \
          and pretrained cost models for warm-start tuning.")
    [ model_pretrain_cmd; model_show_cmd; model_gc_cmd ]

(* ---- xcheck ------------------------------------------------------------- *)

let xcheck_cmd =
  let sample_arg =
    let doc = "Random complete programs sampled per task." in
    Arg.(value & opt int 32 & info [ "sample" ] ~docv:"K" ~doc)
  in
  let net_opt_arg =
    let doc =
      "Cross-check every unique layer of this network instead of the \
       single workload named by -o/-i/-b."
    in
    Arg.(value & opt (some string) None & info [ "n"; "network" ] ~doc)
  in
  let json_arg =
    let doc = "Write the JSON report to this file ('-' for stdout)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc)
  in
  let run op index batch net machine sample seed json =
    let machine = or_die (lookup_machine machine) in
    (match lookup_backend "native" with
    | Ok _ -> ()
    | Error _ as e -> or_die e);
    let cases =
      match net with
      | Some name ->
        let net = or_die (net_of_name name batch) in
        (* layers repeat within a network; each unique case once *)
        let seen = Hashtbl.create 16 in
        List.filter_map
          (fun ((c : Ansor.Workloads.case), _) ->
            if Hashtbl.mem seen c.case_name then None
            else begin
              Hashtbl.replace seen c.case_name ();
              Some (c.case_name, c.dag)
            end)
          net.layers
      | None ->
        let case = or_die (case_of op index batch) in
        [ (case.Ansor.Workloads.case_name, case.dag) ]
    in
    let report = Ansor.Xcheck.run ~sample ~seed ~machine cases in
    print_endline (Ansor.Xcheck.summary report);
    emit_json ~what:"xcheck report" json (Ansor.Xcheck.to_json report)
  in
  Cmd.v
    (Cmd.info "xcheck"
       ~doc:
         "Cross-check the simulator against native gcc measurement: \
          sample K programs per task, measure both backends, report the \
          Spearman rank correlation and top-1/top-5 agreement.")
    Term.(
      const run $ op_arg $ index_arg $ batch_arg $ net_opt_arg $ machine_arg
      $ sample_arg $ seed_arg $ json_arg)

let () =
  let info =
    Cmd.info "ansor-cli" ~version:"1.0.0"
      ~doc:"Auto-scheduling tensor programs (Ansor, OSDI 2020) on simulated machines."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ machines_cmd; sketches_cmd; tune_cmd; replay_cmd; network_cmd;
            registry_cmd; serve_cmd; lint_cmd; model_cmd; xcheck_cmd ]))
