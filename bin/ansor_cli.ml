(* ansor-cli: tune operators, subgraphs and networks from the command
   line on the simulated machines.

     ansor-cli machines
     ansor-cli sketches -o GMM
     ansor-cli tune -o C2D -i 1 -b 1 -m intel-cpu -t 300 -s ansor
     ansor-cli network -n mobilenet_v2 -m intel-cpu --budget 500
*)

open Cmdliner

let machine_arg =
  let doc = "Target machine model (intel-cpu, arm-cpu, gpu)." in
  Arg.(value & opt string "intel-cpu" & info [ "m"; "machine" ] ~doc)

let lookup_machine name =
  match Ansor.Machine.by_name name with
  | m -> Ok m
  | exception Not_found ->
    Error
      (Printf.sprintf "unknown machine %s (expected: %s)" name
         (String.concat ", "
            (List.map
               (fun (m : Ansor.Machine.t) -> m.name)
               Ansor.Machine.all)))

let op_arg =
  let doc = "Operator family (C1D C2D C3D GMM GRP DIL DEP T2D CAP NRM), or \
             ConvLayer / TBG for the subgraph benchmarks." in
  Arg.(value & opt string "GMM" & info [ "o"; "op" ] ~doc)

let index_arg =
  let doc = "Shape configuration index (1-4)." in
  Arg.(value & opt int 1 & info [ "i"; "index" ] ~doc)

let batch_arg =
  let doc = "Batch size." in
  Arg.(value & opt int 1 & info [ "b"; "batch" ] ~doc)

let trials_arg =
  let doc = "Measurement-trial budget." in
  Arg.(value & opt int 200 & info [ "t"; "trials" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~doc)

let strategy_arg =
  let doc =
    "Search strategy: ansor, autotvm, flextensor, beam, limited, \
     no-finetune."
  in
  Arg.(value & opt string "ansor" & info [ "s"; "strategy" ] ~doc)

let workers_arg =
  let doc = "Measurement worker domains (parallel program measurement)." in
  Arg.(value & opt int 1 & info [ "w"; "workers" ] ~doc)

let measure_timeout_arg =
  let doc =
    "Per-program measurement timeout in seconds; programs over the ceiling \
     are classified as timeouts instead of measured."
  in
  Arg.(value & opt (some float) None & info [ "measure-timeout" ] ~doc)

let stats_json_arg =
  let doc = "Dump measurement telemetry as JSON to this file ('-' for stdout)." in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~doc)

let batch_deadline_arg =
  let doc =
    "Wall-clock budget in seconds for one measurement batch; once it \
     expires, not-yet-started candidates are classified as timeouts \
     instead of run, so a stuck candidate cannot hang a worker forever."
  in
  Arg.(value & opt (some float) None & info [ "batch-deadline" ] ~doc)

let snapshot_arg =
  let doc =
    "Checkpoint the full session to this file after every tuning round \
     (atomic write; the previous round survives as FILE.prev). Combine \
     with --resume to continue an interrupted run."
  in
  Arg.(value & opt (some string) None & info [ "snapshot" ] ~doc)

let resume_arg =
  let doc =
    "Resume from the latest valid snapshot generation at the --snapshot \
     path (falls back to FILE.prev on corruption; starts fresh, with a \
     warning, when no usable snapshot exists)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let stop_after_rounds_arg =
  let doc =
    "Stop gracefully after N tuning rounds, flushing all session state \
     (deterministic interruption, for resume testing)."
  in
  Arg.(value & opt (some int) None & info [ "stop-after-rounds" ] ~doc)

let service_config workers measure_timeout batch_deadline =
  {
    Ansor.Measure_service.default_config with
    num_workers = workers;
    timeout = Option.value measure_timeout ~default:infinity;
    batch_deadline = Option.value batch_deadline ~default:infinity;
  }

(* Graceful interruption: SIGINT/SIGTERM set a flag the tuning loop polls
   between rounds, [--stop-after-rounds] trips the same path
   deterministically.  Returns the hooks to pass to the tuning entry
   points and a finisher that reports how the session ended. *)
let session_control stop_after_rounds =
  Ansor.Checkpoint.Shutdown.install ();
  let rounds = ref 0 in
  let should_stop () =
    Ansor.Checkpoint.Shutdown.requested ()
    || match stop_after_rounds with Some n -> !rounds >= n | None -> false
  in
  let on_round () = incr rounds in
  let summarize () =
    match Ansor.Checkpoint.Shutdown.reason () with
    | Some signal ->
      Printf.printf
        "interrupted by %s after %d rounds: session state flushed; rerun \
         with --resume to continue\n"
        signal !rounds
    | None -> (
      match stop_after_rounds with
      | Some n when !rounds >= n ->
        Printf.printf
          "stopped after %d rounds (--stop-after-rounds): rerun with \
           --resume to continue\n"
          !rounds
      | _ -> ())
  in
  (should_stop, on_round, summarize)

let check_resume_flags resume snapshot =
  if resume && snapshot = None then
    Error "--resume requires --snapshot PATH"
  else Ok ()

let emit_stats stats_json (stats : Ansor.Telemetry.stats) =
  Printf.printf "telemetry: %s\n" (Ansor.Telemetry.summary stats);
  match stats_json with
  | None -> ()
  | Some "-" -> print_endline (Ansor.Telemetry.to_json stats)
  | Some path -> (
    match open_out path with
    | exception Sys_error e -> Printf.eprintf "warning: cannot write telemetry: %s\n" e
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Ansor.Telemetry.to_json stats));
      Printf.printf "telemetry written to %s\n" path)

let cache_path save = save ^ ".cache"

let load_cache save =
  match save with
  | Some path when Sys.file_exists (cache_path path) -> (
    (* salvage mode: a torn final line (e.g. from a killed writer) costs
       that line, not the whole cache *)
    match Ansor.Measure_cache.load_salvage ~path:(cache_path path) with
    | Ok (cache, skipped) ->
      Printf.printf "measurement cache: %d entries from %s\n"
        (Ansor.Measure_cache.size cache)
        (cache_path path);
      if skipped > 0 then
        Printf.eprintf "warning: cache %s: skipped %d malformed line%s\n"
          (cache_path path) skipped
          (if skipped = 1 then "" else "s");
      cache
    | Error msg ->
      Printf.eprintf "warning: ignoring cache %s: %s\n" (cache_path path) msg;
      Ansor.Measure_cache.create ())
  | _ -> Ansor.Measure_cache.create ()

let lookup_strategy = function
  | "ansor" -> Ok Ansor.Tuner.ansor_options
  | "autotvm" -> Ok Ansor.Tuner.autotvm_options
  | "flextensor" -> Ok Ansor.Tuner.flextensor_options
  | "beam" -> Ok Ansor.Tuner.beam_options
  | "limited" -> Ok Ansor.Tuner.limited_options
  | "no-finetune" -> Ok Ansor.Tuner.no_finetune_options
  | s -> Error (Printf.sprintf "unknown strategy %s" s)

let cases_of op batch =
  match op with
  | "ConvLayer" -> Ok (Ansor.Workloads.conv_layer_cases ~batch)
  | "TBG" -> Ok (Ansor.Workloads.tbg_cases ~batch)
  | op -> (
    match Ansor.Workloads.op_cases ~op ~batch with
    | cases -> Ok cases
    | exception Invalid_argument msg -> Error msg)

let case_of op index batch =
  Result.bind (cases_of op batch) (fun cases ->
      match if index < 1 then None else List.nth_opt cases (index - 1) with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "shape index %d out of range" index))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

(* ---- commands ----------------------------------------------------------- *)

let machines_cmd =
  let run () =
    List.iter
      (fun (m : Ansor.Machine.t) ->
        Printf.printf "%-10s %3d workers x %2d lanes  %4.1f GHz  peak %7.1f GFLOP/s\n"
          m.name m.num_workers m.vector_lanes m.freq_ghz
          (Ansor.Machine.peak_flops m /. 1e9))
      Ansor.Machine.all
  in
  Cmd.v (Cmd.info "machines" ~doc:"List the simulated machine models.")
    Term.(const run $ const ())

let sketches_cmd =
  let run op index batch =
    let case = or_die (case_of op index batch) in
    Printf.printf "computation %s:\n%s\n\n" case.Ansor.Workloads.case_name
      (Format.asprintf "%a" Ansor.Dag.pp case.dag);
    let sketches = Ansor.Sketch_gen.generate case.dag in
    Printf.printf "%d sketches\n" (List.length sketches);
    List.iteri
      (fun i sk ->
        Printf.printf "--- sketch %d ---\n" i;
        List.iter
          (fun s -> Printf.printf "  %s\n" (Format.asprintf "%a" Ansor.Step.pp s))
          (Ansor.Sketch_gen.sketch_steps sk))
      sketches
  in
  Cmd.v
    (Cmd.info "sketches" ~doc:"Show the generated sketches of a workload.")
    Term.(const run $ op_arg $ index_arg $ batch_arg)

let save_arg =
  let doc = "Append the best record to this tuning-log file." in
  Arg.(value & opt (some string) None & info [ "save" ] ~doc)

let curve_arg =
  let doc = "Plot the best-latency-vs-trials curve." in
  Arg.(value & flag & info [ "curve" ] ~doc)

let tune_cmd =
  let run op index batch machine trials seed strategy save curve workers
      measure_timeout batch_deadline stats_json snapshot resume
      stop_after_rounds =
    or_die (check_resume_flags resume snapshot);
    let case = or_die (case_of op index batch) in
    let machine = or_die (lookup_machine machine) in
    let options = or_die (lookup_strategy strategy) in
    let cache = load_cache save in
    let should_stop, on_round, summarize = session_control stop_after_rounds in
    let result =
      Ansor.tune ~seed ~trials ~options
        ~service_config:(service_config workers measure_timeout batch_deadline)
        ~cache ?snapshot_path:snapshot ~resume ~should_stop ~on_round machine
        case.dag
    in
    summarize ();
    Printf.printf "%s on %s (%s, %d trials): best %.4f ms\n"
      case.case_name machine.name strategy result.trials_used
      (result.best_latency *. 1e3);
    emit_stats stats_json result.stats;
    if curve then print_string (Ansor.Ascii_plot.render_latency_curve result.curve);
    (match result.best_state with
    | Some st ->
      let prog = Ansor.Lower.lower st in
      Format.printf "roofline: %a@." Ansor.Roofline.pp
        (Ansor.Roofline.analyze machine prog)
    | None -> ());
    (match (save, result.best_state) with
    | Some path, Some st ->
      let task = Ansor.Task.create ~name:case.case_name ~machine case.dag in
      Ansor.Record.append ~path
        {
          Ansor.Record.task_key = Ansor.Task.key task;
          latency = result.best_latency;
          steps = st.Ansor.State.history;
        };
      Printf.printf "record appended to %s\n" path;
      (* persist the dedup cache alongside the record log: a re-tuning
         session reuses past measurements instead of repeating them *)
      Ansor.Measure_cache.save ~path:(cache_path path) cache;
      Printf.printf "measurement cache (%d entries) written to %s\n"
        (Ansor.Measure_cache.size cache)
        (cache_path path)
    | _ -> ());
    match result.best_state with
    | Some st ->
      print_newline ();
      print_endline (Ansor.Prog.to_string (Ansor.Lower.lower st))
    | None -> print_endline "no valid program found"
  in
  Cmd.v (Cmd.info "tune" ~doc:"Auto-schedule one workload.")
    Term.(
      const run $ op_arg $ index_arg $ batch_arg $ machine_arg $ trials_arg
      $ seed_arg $ strategy_arg $ save_arg $ curve_arg $ workers_arg
      $ measure_timeout_arg $ batch_deadline_arg $ stats_json_arg
      $ snapshot_arg $ resume_arg $ stop_after_rounds_arg)

let replay_cmd =
  let from_arg =
    let doc = "Tuning-log file written by tune --save." in
    Arg.(required & opt (some string) None & info [ "from" ] ~doc)
  in
  let run op index batch machine path =
    let case = or_die (case_of op index batch) in
    let machine = or_die (lookup_machine machine) in
    let task = Ansor.Task.create ~name:case.case_name ~machine case.dag in
    let entries =
      (* salvage mode: recover every intact record from a torn log *)
      match Ansor.Record.load_salvage ~path with
      | Ok (e, skipped) ->
        if skipped > 0 then
          Printf.eprintf "warning: %s: skipped %d malformed line%s\n" path
            skipped
            (if skipped = 1 then "" else "s");
        e
      | Error m -> or_die (Error m)
    in
    match Ansor.Record.best_for entries ~task_key:(Ansor.Task.key task) with
    | None ->
      Printf.printf "no record for this task in %s\n" path;
      exit 1
    | Some entry -> (
      match Ansor.Record.best_state entry case.dag with
      | Error m -> or_die (Error m)
      | Ok st ->
        let lat = Ansor.Simulator.estimate machine (Ansor.Lower.lower st) in
        Printf.printf
          "replayed record (recorded %.4f ms, simulated now %.4f ms)\n"
          (entry.latency *. 1e3) (lat *. 1e3);
        print_endline (Ansor.Prog.to_string (Ansor.Lower.lower st)))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Apply the best recorded schedule without searching.")
    Term.(const run $ op_arg $ index_arg $ batch_arg $ machine_arg $ from_arg)

let network_cmd =
  let name_arg =
    let doc =
      "Network: resnet50, mobilenet_v2, resnet3d_18, dcgan, bert."
    in
    Arg.(value & opt string "mobilenet_v2" & info [ "n"; "network" ] ~doc)
  in
  let budget_arg =
    let doc = "Total measurement-trial budget." in
    Arg.(value & opt int 500 & info [ "budget" ] ~doc)
  in
  let run name batch machine budget seed workers measure_timeout
      batch_deadline stats_json snapshot resume stop_after_rounds =
    or_die (check_resume_flags resume snapshot);
    let net =
      match name with
      | "resnet50" -> Ok (Ansor.Workloads.resnet50 ~batch)
      | "mobilenet_v2" -> Ok (Ansor.Workloads.mobilenet_v2 ~batch)
      | "resnet3d_18" -> Ok (Ansor.Workloads.resnet3d_18 ~batch)
      | "dcgan" -> Ok (Ansor.Workloads.dcgan ~batch)
      | "bert" -> Ok (Ansor.Workloads.bert ~batch)
      | n -> Error (Printf.sprintf "unknown network %s" n)
    in
    let net = or_die net in
    let machine = or_die (lookup_machine machine) in
    let should_stop, on_round, summarize = session_control stop_after_rounds in
    let results, stats =
      Ansor.tune_networks_with_stats ~seed ~trial_budget:budget
        ~service_config:(service_config workers measure_timeout batch_deadline)
        ?snapshot_path:snapshot ~resume ~should_stop ~on_round machine [ net ]
    in
    summarize ();
    List.iter
      (fun (r : Ansor.network_result) ->
        Printf.printf "%s end-to-end: %.3f ms\n" r.net.net_name
          (r.latency *. 1e3);
        List.iter
          (fun (n, l) -> Printf.printf "  %-28s %10.4f ms\n" n (l *. 1e3))
          r.per_task)
      results;
    emit_stats stats_json stats
  in
  Cmd.v
    (Cmd.info "network"
       ~doc:"Tune a whole network with the task scheduler.")
    Term.(
      const run $ name_arg $ batch_arg $ machine_arg $ budget_arg $ seed_arg
      $ workers_arg $ measure_timeout_arg $ batch_deadline_arg
      $ stats_json_arg $ snapshot_arg $ resume_arg $ stop_after_rounds_arg)

let () =
  let info =
    Cmd.info "ansor-cli" ~version:"1.0.0"
      ~doc:"Auto-scheduling tensor programs (Ansor, OSDI 2020) on simulated machines."
  in
  exit (Cmd.eval (Cmd.group info [ machines_cmd; sketches_cmd; tune_cmd; replay_cmd; network_cmd ]))
