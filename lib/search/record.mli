(** Tuning records: persistent logs of measured programs.

    The original Ansor keeps a JSON-lines log file of every measurement
    (workload key, transform steps, measured cost) so that tuning results
    can be reused across runs, shipped with applications, and replayed
    without re-searching.  This module provides the same facility with a
    compact line-oriented text format:

    {v
ansor-v1 <task-key> <latency-seconds> <step>;<step>;...
    v}

    Steps serialize losslessly; a record's steps can be replayed on the
    task's DAG with {!Ansor_sched.State.replay} (or applied through
    {!best_state}).  Unparseable lines are reported, not ignored
    silently. *)

open Ansor_sched

type entry = {
  task_key : string;  (** {!Task.key} of the tuning task *)
  latency : float;  (** measured seconds *)
  steps : Step.t list;
}

val to_line : entry -> string
(** One line, no trailing newline. @raise Invalid_argument if the task key
    contains whitespace-incompatible characters (tab or newline). *)

val of_line : string -> (entry, string) result

val save : path:string -> entry list -> unit
(** Atomically replaces [path] (write-temp + rename): an interrupted save
    cannot truncate an existing log. *)

val append : path:string -> entry -> unit
(** Atomic append (copy + rename through {!Ansor_util.Atomic_file}): a
    torn append can lose the new entry but never corrupt the entries
    already in the log. *)

val append_batch : path:string -> entry list -> unit
(** Appends a whole batch with {e one} copy + rename — one O(file-size)
    rewrite per batch instead of per entry, the right call for per-round
    logging.  The empty batch is a no-op. *)

val compact : path:string -> (int, string) result
(** Rewrites the log keeping only the best (lowest-latency) entry of each
    task key, preserving the file order of the survivors; ties keep the
    earliest entry.  Malformed lines are dropped (salvage semantics).
    Returns the number of lines removed; [Error] only when the file cannot
    be opened.  Long sessions call this on resume so improvement logs stop
    growing unboundedly. *)

val load : path:string -> (entry list, string) result
(** Strict: all entries; [Error] describes the first malformed line. Empty
    lines are skipped. *)

val load_salvage : path:string -> (entry list * int, string) result
(** Torn-file recovery: every well-formed entry, plus the number of
    malformed lines skipped (e.g. the partial final line left by a killed
    writer).  [Error] only when the file cannot be opened. *)

val best_for : entry list -> task_key:string -> entry option
(** Lowest-latency entry for a task. *)

val entry_of_tuner : Tuner.t -> entry option
(** The tuner's best measured program as a record entry. *)

val best_state : entry -> Ansor_te.Dag.t -> (State.t, string) result
(** Replays the entry's steps on the DAG it was tuned for. *)
