open Ansor_sched
module Rng = Ansor_util.Rng
module Gbdt = Ansor_gbdt.Gbdt
module Cost_model = Ansor_cost_model.Cost_model
module Model_store = Ansor_model_store.Model_store
module Mcache = Ansor_measure_service.Cache
module Score_service = Ansor_cost_model.Score_service
module Evolution = Ansor_evolution.Evolution
module Bounds = Ansor_analysis.Bounds
module Rules = Ansor_sketch.Rules
module Gen = Ansor_sketch.Gen
module Sampler = Ansor_sketch.Sampler
module Annotate = Ansor_sketch.Annotate
module Service = Ansor_measure_service.Service
module Protocol = Ansor_measure_service.Protocol
module Telemetry = Ansor_measure_service.Telemetry

type strategy =
  | Sketch_search of { rules : Rules.t list; use_evolution : bool }
  | Beam_search of { beam_width : int; rollouts : int }

type options = {
  strategy : strategy;
  batch_size : int;
  sample_size : int;
  evolution : Evolution.config;
  eps_random : float;
  keep_previous : int;
  template_annotation : bool;
      (* freeze the annotation policy the way manual templates do *)
  descent : Descent.config option;
      (* coordinate-descent exploitation finisher; None = disabled *)
}

let default_evolution =
  { Evolution.default_config with population = 128; generations = 4 }

let ansor_options =
  {
    strategy = Sketch_search { rules = Rules.default; use_evolution = true };
    batch_size = 16;
    sample_size = 64;
    evolution = default_evolution;
    eps_random = 0.1;
    keep_previous = 12;
    template_annotation = false;
    descent = None;
  }

let no_finetune_options =
  {
    ansor_options with
    strategy = Sketch_search { rules = Rules.default; use_evolution = false };
  }

let limited_options =
  {
    ansor_options with
    strategy =
      Sketch_search { rules = Rules.limited ~fusion:true; use_evolution = true };
    template_annotation = true;
    evolution = { default_evolution with mutate_annotations = false };
  }

let beam_options =
  { ansor_options with strategy = Beam_search { beam_width = 12; rollouts = 4 } }

let autotvm_options =
  {
    ansor_options with
    strategy =
      Sketch_search { rules = Rules.limited ~fusion:true; use_evolution = false };
    template_annotation = true;
  }

let flextensor_options =
  {
    ansor_options with
    strategy =
      Sketch_search
        {
          rules =
            Rules.make ~tiling:Rules.default_tiling ~with_fusion:false
              ~with_cache:false ~with_rfactor:false;
          use_evolution = false;
        };
    template_annotation = true;
  }

module Shared = struct
  type sink = { store : Model_store.t; sink_path : string option }

  type t = {
    mutable model : Cost_model.t;
    mutable records : Cost_model.record list;  (* newest first *)
    mutable rounds_since_train : int;
    mutable generation : int;  (* bumped whenever [model] is replaced *)
    train_every : int;
    max_records : int;
    (* cross-task warm start (model store) *)
    mutable warm : Gbdt.t option;
        (* pretrained base: every retrain fine-tunes from it *)
    mutable provenance : string;  (* "cold" | "exact" | "class" | "global" *)
    mutable aux : Cost_model.record list;
        (* store-derived sibling records folded into every retrain,
           oldest first; never part of [records] (the session's own) *)
    own_keys : (string, unit) Hashtbl.t;
        (* canonical prog hashes this session contributed to the store —
           the resume path filters them out of [aux] so nothing is
           trained on twice *)
    mutable sink : sink option;
    mutable warm_starts : int;
    mutable store_added : int;
  }

  let create ?(train_every = 1) ?(max_records = 3000) () =
    {
      model = Cost_model.empty;
      records = [];
      rounds_since_train = 0;
      generation = 0;
      train_every;
      max_records;
      warm = None;
      provenance = "cold";
      aux = [];
      own_keys = Hashtbl.create 64;
      sink = None;
      warm_starts = 0;
      store_added = 0;
    }

  let model t = t.model
  let records t = t.records
  let num_records t = List.length t.records
  let generation t = t.generation
  let provenance t = t.provenance
  let is_warm t = t.warm <> None
  let warm_starts t = t.warm_starts
  let store_added t = t.store_added
  let num_aux t = List.length t.aux
  let has_store t = t.sink <> None

  let attach_store ?path t store = t.sink <- Some { store; sink_path = path }

  (* The full training corpus: the session's own records (capped, newest
     first) followed by the store-derived sibling records. *)
  let corpus t =
    List.filteri (fun i _ -> i < t.max_records) t.records @ t.aux

  let retrain t =
    t.model <- Cost_model.train ?init:t.warm (corpus t);
    t.generation <- t.generation + 1

  let add_records t recs =
    t.records <- recs @ t.records;
    t.rounds_since_train <- t.rounds_since_train + 1;
    if t.rounds_since_train >= t.train_every && t.records <> [] then begin
      retrain t;
      t.rounds_since_train <- 0
    end

  (* Adopt what one --model-store flag resolved to: a warm pretrained
     model (kept only while still cold — a restored fine-tuned session
     keeps its provenance) and the store's sibling samples, with this
     session's own contributions filtered out.  Bumps the generation at
     most once, so the scoring service invalidates cached scores exactly
     once; a no-op (empty store, no model) leaves the generation — and
     therefore all downstream behavior — untouched.  Returns whether a
     warm start happened. *)
  let adopt_store t ~warm ~aux =
    let warmed =
      match (warm, String.equal t.provenance "cold") with
      | Some (origin, g), true ->
        t.warm <- Some g;
        t.provenance <- origin;
        t.warm_starts <- t.warm_starts + 1;
        true
      | _ -> false
    in
    let aux =
      List.filter
        (fun (s : Model_store.sample) ->
          not (Hashtbl.mem t.own_keys s.Model_store.prog_key))
        aux
      |> List.map Model_store.to_record
    in
    let aux_changed = aux <> t.aux in
    t.aux <- aux;
    if corpus t <> [] then begin
      if warmed || aux_changed then retrain t
    end
    else if warmed then begin
      (* nothing measured yet: score with the pretrained model as-is *)
      t.model <-
        (match t.warm with Some g -> Cost_model.of_gbdt g | None -> t.model);
      t.generation <- t.generation + 1
    end;
    warmed

  (* Persist one measured batch: dedup against the attached store (and
     remember our own hashes), append the new lines to the store file.
     Returns how many samples were new. *)
  let record_samples t samples =
    match t.sink with
    | None -> 0
    | Some { store; sink_path } ->
      List.iter
        (fun (s : Model_store.sample) ->
          Hashtbl.replace t.own_keys s.Model_store.prog_key ())
        samples;
      let fresh =
        List.filter
          (fun (s : Model_store.sample) ->
            not (Model_store.mem store ~prog_key:s.Model_store.prog_key))
          samples
      in
      let added = Model_store.add_all store fresh in
      (match sink_path with
      | Some path -> Model_store.append_batch ~path fresh
      | None -> ());
      t.store_added <- t.store_added + added;
      added

  type snapshot = {
    snap_records : Cost_model.record list;
    snap_rounds_since_train : int;
    snap_trained : bool;
    (* v2 fields: cross-task warm-start state, so a resumed session
       retrains exactly the model the interrupted one had *)
    snap_warm : Gbdt.t option;
    snap_provenance : string;
    snap_aux : Cost_model.record list;
    snap_own_keys : string list;
    snap_warm_starts : int;
  }

  let snapshot t =
    {
      snap_records = t.records;
      snap_rounds_since_train = t.rounds_since_train;
      snap_trained = Cost_model.is_trained t.model;
      snap_warm = t.warm;
      snap_provenance = t.provenance;
      snap_aux = t.aux;
      snap_own_keys =
        Hashtbl.fold (fun k () acc -> k :: acc) t.own_keys []
        |> List.sort String.compare;
      snap_warm_starts = t.warm_starts;
    }

  let restore t s =
    t.records <- s.snap_records;
    t.rounds_since_train <- s.snap_rounds_since_train;
    t.warm <- s.snap_warm;
    t.provenance <- s.snap_provenance;
    t.aux <- s.snap_aux;
    Hashtbl.reset t.own_keys;
    List.iter (fun k -> Hashtbl.replace t.own_keys k ()) s.snap_own_keys;
    t.warm_starts <- s.snap_warm_starts;
    t.model <-
      (if s.snap_trained then Cost_model.train ?init:t.warm (corpus t)
       else
         match t.warm with
         | Some g -> Cost_model.of_gbdt g
         | None -> Cost_model.empty);
    t.generation <- t.generation + 1
end

type t = {
  task : Task.t;
  options : options;
  rng : Rng.t;
  policy : Ansor_sketch.Policy.t;
  sketches : State.t list;  (* empty for beam search *)
  measured : (string, unit) Hashtbl.t;
  mutable scorer : Score_service.t option;
      (* created on the first round from the measure service's
         configuration; lives as long as the tuner so the feature cache
         spans rounds *)
  mutable best : (State.t * float) option;
  mutable good : (State.t * float) list;  (* ascending latency *)
  mutable curve_rev : (int * float) list;
  mutable rounds : int;
  mutable plateau : Evolution.Plateau.t;
      (* evolution-plateau detector: the descent trigger signal *)
  mutable descent : Descent.cursor option;
      (* Some while an exploitation stage is active (or just finished);
         a finished cursor is replaced when a fresh evolution plateau
         re-triggers the stage on the improved incumbent *)
}

let plateau_patience (options : options) =
  match options.descent with
  | Some (c : Descent.config) -> c.Descent.stall_rounds
  | None -> Descent.default_config.Descent.stall_rounds

let create ?(seed = 0) ?(warm_start = []) options task =
  let rules =
    match options.strategy with
    | Sketch_search { rules; _ } -> rules
    | Beam_search _ -> Rules.default
  in
  let seeds =
    List.filter_map
      (fun steps ->
        match State.replay_checked task.Task.dag steps with
        | Ok st -> (
          match Lower.lower st with
          | _ -> Some st
          | exception State.Illegal _ -> None)
        | Error _ -> None)
      warm_start
  in
  {
    task;
    options;
    rng = Rng.create (seed + Hashtbl.hash (Task.key task));
    policy =
      (let p = Task.policy task in
       if options.template_annotation then Ansor_sketch.Policy.templateize p
       else p);
    sketches = Gen.generate ~rules task.Task.dag;
    measured = Hashtbl.create 64;
    scorer = None;
    best = None;
    good = List.map (fun st -> (st, infinity)) seeds;
    curve_rev = [];
    rounds = 0;
    plateau = Evolution.Plateau.create ~patience:(plateau_patience options);
    descent = None;
  }

module Snapshot = struct
  type t = {
    task_key : string;
    rng_state : int64;
    rounds : int;
    best : (Step.t list * float) option;
    good : (Step.t list * float) list;
    measured_keys : string list;
    curve : (int * float) list;
    (* v4 fields: exploitation-descent state, so a --resume replays
       mid-descent deterministically *)
    descent : Descent.cursor option;
    plateau_stall : int;
  }
end

let snapshot t =
  {
    Snapshot.task_key = Task.key t.task;
    rng_state = Rng.state t.rng;
    rounds = t.rounds;
    best = Option.map (fun (st, l) -> (st.State.history, l)) t.best;
    good = List.map (fun (st, l) -> (st.State.history, l)) t.good;
    measured_keys =
      Hashtbl.fold (fun k () acc -> k :: acc) t.measured []
      |> List.sort String.compare;
    curve = List.rev t.curve_rev;
    descent = t.descent;
    plateau_stall = Evolution.Plateau.stall t.plateau;
  }

let restore t (s : Snapshot.t) =
  if not (String.equal s.Snapshot.task_key (Task.key t.task)) then
    Error
      (Printf.sprintf "snapshot is for task %s, not %s" s.Snapshot.task_key
         (Task.key t.task))
  else begin
    let replay (steps, l) =
      match State.replay_checked t.task.Task.dag steps with
      | Ok st -> Some (st, l)
      | Error _ -> None
    in
    Rng.set_state t.rng s.Snapshot.rng_state;
    t.rounds <- s.Snapshot.rounds;
    t.best <- Option.bind s.Snapshot.best replay;
    t.good <- List.filter_map replay s.Snapshot.good;
    Hashtbl.reset t.measured;
    List.iter (fun k -> Hashtbl.replace t.measured k ()) s.Snapshot.measured_keys;
    t.curve_rev <- List.rev s.Snapshot.curve;
    t.descent <- s.Snapshot.descent;
    t.plateau <-
      Evolution.Plateau.restore
        ~patience:(plateau_patience t.options)
        ~best:(match t.best with Some (_, l) -> l | None -> infinity)
        ~stall:s.Snapshot.plateau_stall;
    Ok ()
  end

let task t = t.task
let best_latency t = match t.best with Some (_, l) -> l | None -> infinity
let best_state t = Option.map fst t.best
let rounds_done t = t.rounds
let curve t = List.rev t.curve_rev

(* Sequential construction with beam pruning: expands the DAG node by
   node, immediately sampling concrete tile sizes for new structure, and
   prunes with the cost model on the still-incomplete programs — the
   Halide-auto-scheduler design point whose weakness Figure 3 explains. *)
let beam_construct rng ~score dag policy ~beam_width ~rollouts =
  let dedup = Hashtbl.create 64 in
  let score (st : State.t) : float = score st in
  let expand (st, i) =
    if i < 0 then [ ((st, i), score st) ]
    else
      match Ansor_te.Dag.op st.State.dag i with
      | Ansor_te.Op.Placeholder _ -> [ ((st, i - 1), score st) ]
      | Ansor_te.Op.Compute _ ->
        let applicable =
          List.filter (fun (r : Rules.t) -> r.condition st i) Rules.default
        in
        let chosen =
          let rec first_exclusive = function
            | [] -> applicable
            | (r : Rules.t) :: rest ->
              if r.exclusive then [ r ] else r :: first_exclusive rest
          in
          first_exclusive applicable
        in
        List.concat_map
          (fun (r : Rules.t) ->
            List.concat_map
              (fun ((st', i') : State.t * int) ->
                List.filter_map
                  (fun _ ->
                    match
                      Annotate.replay_constrained dag st'.State.history
                        ~fill:(Annotate.Random_fill rng)
                    with
                    | Error _ -> None
                    | Ok concrete ->
                      let key = Step.history_key concrete.State.history in
                      if Hashtbl.mem dedup key then None
                      else begin
                        Hashtbl.replace dedup key ();
                        Some ((concrete, i'), score concrete)
                      end)
                  (List.init rollouts Fun.id))
              (r.apply st i))
          chosen
  in
  let rec advance states =
    if List.for_all (fun (_, i) -> i < 0) states then states
    else
      let expanded = List.concat_map expand states in
      let sorted =
        List.sort (fun (_, a) (_, b) -> compare b a) expanded
      in
      let kept =
        List.filteri (fun k _ -> k < beam_width) sorted |> List.map fst
      in
      advance kept
  in
  let terminals =
    advance [ (State.init dag, Ansor_te.Dag.num_ops dag - 1) ]
  in
  (* annotate the complete structures *)
  List.concat_map
    (fun (st, _) ->
      List.filter_map
        (fun _ ->
          match Annotate.annotate rng policy st with
          | Ok st -> (
            match Lower.lower st with
            | _ -> Some st
            | exception State.Illegal _ -> None)
          | Error _ -> None)
        (List.init 2 Fun.id))
    terminals

let candidates t shared scorer tm =
  let dag = t.task.Task.dag in
  let model = Shared.model shared in
  match t.options.strategy with
  | Beam_search { beam_width; rollouts } ->
    Telemetry.time tm Telemetry.Sample (fun () ->
        beam_construct t.rng
          ~score:(Score_service.score_state scorer)
          dag t.policy ~beam_width ~rollouts)
  | Sketch_search { use_evolution; _ } ->
    let fresh =
      Telemetry.time tm Telemetry.Sample (fun () ->
          Sampler.sample t.rng t.policy dag ~sketches:t.sketches
            ~n:t.options.sample_size)
    in
    (* Memory-safety pre-filter: a sample whose lowering carries a
       constructive out-of-bounds witness never reaches scoring or
       measurement.  Sketch sampling is safe-by-construction, so on a
       healthy rule set this filter is a no-op (bit-identical search);
       it exists to contain a buggy sketch/annotation rule the moment
       one is introduced.  Verdicts are memoized by canonical program
       hash, so the later scoring/measurement of survivors re-uses
       them.  [Unknown] is kept: the certifier's witness search is
       bounded, and the native gate re-decides with its own policy. *)
    let fresh =
      List.filter
        (fun s ->
          match Lower.lower s with
          | exception State.Illegal _ -> true (* measure path classifies *)
          | prog -> (
            match Bounds.certify prog with
            | Bounds.Unsafe _ ->
              Telemetry.incr_statically_rejected tm;
              false
            | Bounds.Certified | Bounds.Unknown -> true))
        fresh
    in
    if use_evolution && Cost_model.is_trained model then begin
      let seeds =
        List.filteri (fun i _ -> i < t.options.keep_previous) t.good
        |> List.map fst
      in
      Telemetry.time tm Telemetry.Evolve (fun () ->
          Evolution.evolve
            ~on_reject:(fun () -> Telemetry.incr_statically_rejected tm)
            ~scorer t.rng t.options.evolution t.policy dag ~model
            ~init:(fresh @ seeds)
            ~out:(t.options.batch_size * 4)
          |> List.map (fun (s : Evolution.scored) -> s.state))
    end
    else
      (* before the model is trained, put warm-start seeds first so they
         are measured in the very first batch *)
      List.map fst t.good @ fresh

(* Hill-climbing neighbors of the best measured program, measured
   regardless of their model rank: a biased model cannot starve
   exploitation of the incumbent (important on tiny tasks where the model
   has little signal). *)
let neighbors_of_best ?on_reject t =
  match t.best with
  | None -> []
  | Some (best, _) ->
    let dag = t.task.Task.dag in
    List.filter_map
      (fun _ ->
        match Rng.int t.rng 4 with
        | 0 -> Evolution.mutate_tile_sizes ?on_reject t.rng dag best
        | 1 -> Evolution.mutate_annotation ?on_reject t.rng dag best
        | 2 -> Evolution.mutate_pragma ?on_reject t.rng t.policy dag best
        | _ -> Evolution.mutate_location ?on_reject t.rng dag best)
      (List.init (max 1 (t.options.batch_size / 4)) Fun.id)

let scorer_of t service =
  match t.scorer with
  | Some sc -> sc
  | None ->
    let sc =
      Score_service.create
        ~telemetry:(Service.telemetry service)
        ~num_workers:(Service.num_workers service)
        t.task.Task.machine
    in
    t.scorer <- Some sc;
    sc

(* Measure a prepared batch of [(state, prog, key)] and absorb the
   classified results: remember every key in the dedup set, update
   best/good, persist the measured samples to the cross-task store, add
   the records to the shared training set and maybe retrain.  The tail
   of every round — both the evolutionary path and the descent sweeps
   feed their winners through this single funnel. *)
let absorb_batch t shared service tm batch =
  let results =
    Service.measure_batch service
      (List.map (fun (st, prog, _) -> Protocol.request ~prog st) batch)
  in
  let ok =
    List.filter_map Fun.id
      (List.map2
         (fun (st, prog, key) (res : Protocol.result) ->
           (* every candidate got a classified result; failed ones are
              remembered so the tuner never re-proposes them *)
           Hashtbl.replace t.measured key ();
           match res.Protocol.latency with
           | Error _ -> None
           | Ok latency ->
             (match t.best with
             | Some (_, l) when l <= latency -> ()
             | _ -> t.best <- Some (st, latency));
             t.good <-
               List.sort (fun (_, a) (_, b) -> compare a b)
                 ((st, latency) :: t.good)
               |> List.filteri (fun i _ -> i < t.options.keep_previous);
             if latency > 0.0 then Some (prog, latency) else None)
         batch results)
  in
  let records =
    List.map
      (fun (prog, latency) ->
        Cost_model.record_of_prog ~task_key:(Task.key t.task) ~latency prog)
      ok
  in
  (* persist the measured batch to the cross-task store (no-op when no
     store is attached); the canonical lowered-program hash dedups
     against every past session *)
  if Shared.has_store shared then begin
    let samples =
      List.map2
        (fun (prog, latency) (r : Cost_model.record) ->
          {
            Model_store.task_key = r.Cost_model.task_key;
            prog_key = Mcache.key_of_prog t.task.Task.machine prog;
            latency;
            features = r.Cost_model.features;
          })
        ok records
    in
    Telemetry.add_store_samples tm (Shared.record_samples shared samples)
  end;
  let gen_before = Shared.generation shared in
  Telemetry.time tm Telemetry.Retrain (fun () ->
      Shared.add_records shared records);
  if Shared.generation shared > gen_before && Shared.is_warm shared then
    Telemetry.incr_finetune_rounds tm

let evolution_round t shared service =
  let tm = Service.telemetry service in
  let model = Shared.model shared in
  let scorer = scorer_of t service in
  Score_service.sync scorer ~generation:(Shared.generation shared) model;
  let seen = Hashtbl.create 64 in
  let prepare states =
    (* skip already-measured programs, reject unlowerable ones, dedupe *)
    List.filter_map
      (fun st ->
        let key = Step.history_key st.State.history in
        if Hashtbl.mem t.measured key || Hashtbl.mem seen key then None
        else
          match Lower.lower st with
          | prog ->
            Hashtbl.replace seen key ();
            Some (st, prog, key)
          | exception State.Illegal _ -> None)
      states
  in
  let exploit =
    match t.options.strategy with
    | Sketch_search { use_evolution = true; _ } ->
      prepare
        (neighbors_of_best
           ~on_reject:(fun () -> Telemetry.incr_statically_rejected tm)
           t)
    | Sketch_search { use_evolution = false; _ } | Beam_search _ -> []
  in
  let cands = prepare (candidates t shared scorer tm) in
  let sorted =
    Telemetry.time tm Telemetry.Model_rank (fun () ->
        (* one batched scoring call; [List.sort] is stable, so equal
           scores keep candidate order exactly as the sequential
           per-candidate path did *)
        let scores =
          Score_service.score_progs scorer
            (List.map (fun (_, prog, _) -> prog) cands)
        in
        let scored =
          List.map2 (fun (st, prog, key) s -> (st, prog, key, s)) cands scores
        in
        List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) scored)
  in
  let n_eps =
    int_of_float (t.options.eps_random *. float_of_int t.options.batch_size)
  in
  let exploit =
    List.map (fun (st, prog, key) -> (st, prog, key, 0.0)) exploit
  in
  let n_greedy =
    max 0 (t.options.batch_size - n_eps - List.length exploit)
  in
  let greedy = exploit @ List.filteri (fun i _ -> i < n_greedy) sorted in
  let rest = List.filteri (fun i _ -> i >= n_greedy) sorted in
  let eps_pick =
    if rest = [] then []
    else
      List.init (min n_eps (List.length rest)) (fun _ ->
          Rng.choice_list t.rng rest)
  in
  let batch =
    (* a random pick may duplicate; filter again *)
    let seen = Hashtbl.create 32 in
    List.filter
      (fun (_, _, key, _) ->
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (greedy @ eps_pick)
  in
  absorb_batch t shared service tm
    (List.map (fun (st, prog, key, _) -> (st, prog, key)) batch);
  t.rounds <- t.rounds + 1;
  t.curve_rev <- (Service.trials service, best_latency t) :: t.curve_rev

(* One exploitation-descent round = one coordinate sweep: propose and
   line-search under the pooled scorer (the [Descent] phase timer),
   measure the per-coordinate winners through the ordinary batch funnel
   (so dedup cache, classification, store persistence and retraining all
   apply unchanged), then fold the measured outcome back into the
   cursor.  Consumes no RNG, so the surrounding search stream is exactly
   what it would be without the stage. *)
let descent_round t shared service (cfg : Descent.config)
    (cursor : Descent.cursor) =
  let tm = Service.telemetry service in
  let scorer = scorer_of t service in
  Score_service.sync scorer ~generation:(Shared.generation shared)
    (Shared.model shared);
  let dag = t.task.Task.dag in
  let before_best = best_latency t in
  let outcome =
    Telemetry.time tm Telemetry.Descent (fun () ->
        Descent.sweep cfg ~dag ~policy:t.policy ~scorer
          ~on_reject:(fun () -> Telemetry.incr_statically_rejected tm)
          ~measured:(fun k -> Hashtbl.mem t.measured k)
          cursor)
  in
  let finish_stage cursor' =
    t.descent <- Some cursor';
    if cursor'.Descent.finished then
      (* a restart needs a fresh plateau, counted from here *)
      t.plateau <-
        Evolution.Plateau.restore
          ~patience:(plateau_patience t.options)
          ~best:(best_latency t) ~stall:0
  in
  (match outcome with
  | Error _ ->
    (* the cursor's history no longer replays: abandon the stage *)
    finish_stage { cursor with Descent.finished = true }
  | Ok winners ->
    let batch =
      List.filter_map
        (fun st ->
          match Lower.lower st with
          | prog -> Some (st, prog, Step.history_key st.State.history)
          | exception State.Illegal _ -> None)
        winners
    in
    let trials_before = Service.trials service in
    absorb_batch t shared service tm batch;
    let improved = best_latency t < before_best in
    Telemetry.add_descent_sweep tm
      ~trials:(Service.trials service - trials_before)
      ~improved;
    let best_hist =
      match t.best with
      | Some (st, _) -> st.State.history
      | None -> cursor.Descent.current
    in
    let cursor' = Descent.advance cfg cursor ~improved ~best:best_hist in
    if cursor'.Descent.finished then Telemetry.incr_descent_plateau_stops tm;
    finish_stage cursor');
  t.rounds <- t.rounds + 1;
  t.curve_rev <- (Service.trials service, best_latency t) :: t.curve_rev

(* Start descending once evolution stalls ([stall_rounds] rounds without
   improvement) or — when the trial [budget] is known — once
   [budget_fraction] of it is spent.  After a stage finishes the
   detector is reset, and a later plateau restarts the stage, but only
   on a *new* incumbent: re-walking the same program would propose only
   already-measured neighbors. *)
let maybe_start_descent ?budget t service (cfg : Descent.config) =
  let start () =
    match t.best with
    | Some (st, _) -> t.descent <- Some (Descent.start st)
    | None -> ()
  in
  let stalled = Evolution.Plateau.stalled t.plateau in
  match t.descent with
  | None ->
    let fraction_spent =
      match budget with
      | Some b when b > 0 ->
        float_of_int (Service.trials service)
        >= cfg.Descent.budget_fraction *. float_of_int b
      | _ -> false
    in
    if stalled || fraction_spent then start ()
  | Some cur when cur.Descent.finished ->
    let new_incumbent =
      match t.best with
      | Some (st, _) ->
        Step.history_key st.State.history
        <> Step.history_key cur.Descent.current
      | None -> false
    in
    if stalled && new_incumbent then start ()
  | Some _ -> ()

let round ?budget t shared service =
  match (t.options.descent, t.descent) with
  | Some cfg, Some cursor when not cursor.Descent.finished ->
    descent_round t shared service cfg cursor
  | descent_cfg, _ ->
    evolution_round t shared service;
    (match descent_cfg with
    | None -> ()
    | Some cfg ->
      ignore (Evolution.Plateau.observe t.plateau (best_latency t));
      maybe_start_descent ?budget t service cfg)

let tune ?(seed = 0) ?shared ?service ?snapshot:snap
    ?(should_stop = fun () -> false) ?on_round options ~trials task =
  let shared = match shared with Some s -> s | None -> Shared.create () in
  let service =
    match service with
    | Some s -> s
    | None -> Service.create ~seed:(seed + 17) task.Task.machine
  in
  let t = create ~seed options task in
  (match snap with
  | None -> ()
  | Some s -> (
    match restore t s with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Tuner.tune: " ^ msg)));
  let stuck = ref 0 in
  while
    (not (should_stop ())) && Service.trials service < trials && !stuck < 3
  do
    let before = Service.trials service in
    round ~budget:trials t shared service;
    (match on_round with Some f -> f t | None -> ());
    if Service.trials service = before then incr stuck else stuck := 0
  done;
  (t, service)
