(** Coordinate-descent exploitation finisher ("Droplet"-style, after
    "Explore as a Storm, Exploit as a Raindrop", arXiv:2406.20037).

    Evolutionary search explores broadly but keeps spending measurements
    on mutation noise once a good incumbent exists.  This stage takes the
    incumbent program, enumerates its tunable coordinates — split factors
    walked along the factorization lattice, [auto_unroll_max_step]
    values, annotation flips, parallel-fuse granularity — and greedily
    line-searches each coordinate under the batched cost model
    ({!Ansor_cost_model.Score_service}, so scoring stays pooled and
    feature-cached).  Only the per-coordinate line-search winners reach
    the measurement service; the stage stops on a measured plateau
    ([plateau_sweeps] consecutive non-improving sweeps) and the final
    winner is re-seeded into the tuner's population and best-so-far.

    The stage consumes no RNG and breaks score ties by first index, so
    it is bit-identical at any [--workers] count, like every other
    phase.  Every proposed neighbor flows through the existing gates
    unchanged: constrained replay + lowering, the static race detector
    ({!Ansor_evolution.Evolution.verify}), the memory-safety certifier
    ({!Ansor_analysis.Bounds.certify}, [Unsafe] dropped pre-scoring) and
    the tuner's dedup against already-measured programs. *)

open Ansor_te
open Ansor_sched

type config = {
  stall_rounds : int;
      (** evolution-plateau patience: descent triggers after this many
          consecutive rounds without best-latency improvement *)
  budget_fraction : float;
      (** alternative trigger: start descending once this share of the
          trial budget is spent, plateau or not *)
  plateau_sweeps : int;
      (** stop after this many consecutive measured sweeps that fail to
          improve the incumbent *)
  max_walk : int;  (** per-coordinate line-search move bound per sweep *)
  max_probes : int;
      (** measure at most this many per-coordinate winners per sweep
          (the top-scoring ones), keeping sweeps cheap and re-anchoring
          frequent *)
}

val default_config : config
(** patience 6, budget fraction 0.75, plateau 2, walk bound 8, probe cap
    16 — descent as a late-stage finisher: evolution explores most of
    the budget, descent polishes the incumbent at the end. *)

(** One editable step of the incumbent's history, addressed by index.
    All edits are same-index replacements, so coordinate addresses stay
    valid across a sweep. *)
type coord =
  | Split_levels of int  (** a [Split]'s factor vector *)
  | Unroll_pragma of int  (** an [auto_unroll_max_step] pragma *)
  | Annotation of int  (** a parallel/vectorize/unroll annotation *)
  | Fuse_extent of int  (** a parallel fuse's granularity *)

val coord_index : coord -> int

(** The resumable position of a descent stage.  Pure data (a step
    history plus counters), so it marshals into the session snapshot and
    a [--resume] replays mid-descent deterministically. *)
type cursor = {
  current : Step.t list;  (** incumbent the next sweep starts from *)
  sweeps : int;
  non_improving : int;  (** consecutive sweeps without measured improvement *)
  finished : bool;
}

val start : State.t -> cursor
(** A fresh cursor anchored on the incumbent. *)

val coordinates : State.t -> coord list
(** Tunable coordinates of a state, in history order.  Splits of
    fusion-consumer stages (whose sizes are re-derived from the
    producer) are excluded, mirroring evolution's tile mutation. *)

val proposals : policy:Ansor_sketch.Policy.t -> State.t -> coord -> Step.t list list
(** Raw edited histories one lattice move away along the coordinate, in
    a fixed deterministic order; not yet validated. *)

val neighbors :
  ?on_reject:(unit -> unit) ->
  policy:Ansor_sketch.Policy.t ->
  Dag.t -> State.t -> coord -> State.t list
(** {!proposals} filtered through the shared gates: constrained replay +
    lowering, static race detector, and bounds certifier ([Unsafe]
    dropped).  [on_reject] fires once per statically-rejected
    proposal. *)

val sweep :
  config ->
  dag:Dag.t ->
  policy:Ansor_sketch.Policy.t ->
  scorer:Ansor_cost_model.Score_service.t ->
  ?on_reject:(unit -> unit) ->
  measured:(string -> bool) ->
  cursor ->
  (State.t list, string) result
(** One coordinate sweep from the cursor's incumbent: line-search every
    coordinate in order under the scorer and nominate, per coordinate,
    the best-scoring point on its explored line whose [Step.history_key]
    is not yet [measured], keeping the top [max_probes] of them — the
    only states that should reach the measurement service.  The model
    guides the walk; whether a winner actually improves the incumbent is
    decided by measurement, which is what makes the plateau stop a
    measured plateau.  [Error] if the cursor's history no longer
    replays. *)

val advance : config -> cursor -> improved:bool -> best:Step.t list -> cursor
(** Fold one sweep's measured outcome into the cursor: [improved] resets
    the plateau counter and re-anchors on [best] (the tuner's new
    incumbent history); otherwise the counter increments, and the cursor
    finishes once it reaches [plateau_sweeps]. *)
