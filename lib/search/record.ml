open Ansor_sched

type entry = { task_key : string; latency : float; steps : Step.t list }

let magic = "ansor-v1"

(* ---- serialization ------------------------------------------------------ *)

let check_name what s =
  String.iter
    (fun c ->
      if c = ' ' || c = ';' || c = '\t' || c = '\n' then
        invalid_arg (Printf.sprintf "Record: %s %S contains a separator" what s))
    s

let ints l = String.concat "," (List.map string_of_int l)

let pairs l =
  match l with
  | [] -> "-"
  | l -> String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) l)

let ann_code = function
  | Step.No_ann -> "n"
  | Step.Parallel -> "p"
  | Step.Vectorize -> "v"
  | Step.Unroll -> "u"

let step_to_string (s : Step.t) =
  match s with
  | Step.Split { stage; iv; lengths; tbd } ->
    check_name "stage" stage;
    Printf.sprintf "S %s %d %s %d" stage iv (ints lengths) (if tbd then 1 else 0)
  | Step.Fuse { stage; ivs } ->
    check_name "stage" stage;
    Printf.sprintf "F %s %s" stage (ints ivs)
  | Step.Reorder { stage; order } ->
    check_name "stage" stage;
    Printf.sprintf "O %s %s" stage (ints order)
  | Step.Compute_at { stage; target; target_iv; bindings } ->
    check_name "stage" stage;
    check_name "target" target;
    Printf.sprintf "CA %s %s %d %s" stage target target_iv (pairs bindings)
  | Step.Compute_inline { stage } ->
    check_name "stage" stage;
    Printf.sprintf "I %s" stage
  | Step.Compute_root { stage } ->
    check_name "stage" stage;
    Printf.sprintf "CR %s" stage
  | Step.Cache_write { stage } ->
    check_name "stage" stage;
    Printf.sprintf "CW %s" stage
  | Step.Rfactor { stage; iv; lengths; tbd } ->
    check_name "stage" stage;
    Printf.sprintf "RF %s %d %s %d" stage iv (ints lengths) (if tbd then 1 else 0)
  | Step.Annotate { stage; iv; ann } ->
    check_name "stage" stage;
    Printf.sprintf "A %s %d %s" stage iv (ann_code ann)
  | Step.Pragma_unroll { stage; max_step } ->
    check_name "stage" stage;
    Printf.sprintf "P %s %d" stage max_step

let to_line e =
  if String.contains e.task_key '\t' || String.contains e.task_key '\n' then
    invalid_arg "Record.to_line: task key contains tab or newline";
  Printf.sprintf "%s\t%s\t%.9e\t%s" magic e.task_key e.latency
    (String.concat ";" (List.map step_to_string e.steps))

(* ---- parsing ------------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let parse_int s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "not an integer: %S" s)

let parse_ints s =
  if String.equal s "" then Ok []
  else
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        let* i = parse_int tok in
        Ok (i :: acc))
      (Ok [])
      (String.split_on_char ',' s)
    |> Result.map List.rev

let parse_pairs s =
  if String.equal s "-" then Ok []
  else
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        match String.split_on_char ':' tok with
        | [ a; b ] ->
          let* a = parse_int a in
          let* b = parse_int b in
          Ok ((a, b) :: acc)
        | _ -> Error (Printf.sprintf "malformed binding %S" tok))
      (Ok [])
      (String.split_on_char ',' s)
    |> Result.map List.rev

let parse_ann = function
  | "n" -> Ok Step.No_ann
  | "p" -> Ok Step.Parallel
  | "v" -> Ok Step.Vectorize
  | "u" -> Ok Step.Unroll
  | s -> Error (Printf.sprintf "unknown annotation code %S" s)

let parse_bool = function
  | "0" -> Ok false
  | "1" -> Ok true
  | s -> Error (Printf.sprintf "expected 0/1, got %S" s)

let step_of_string s : (Step.t, string) result =
  match String.split_on_char ' ' s with
  | [ "S"; stage; iv; lengths; tbd ] ->
    let* iv = parse_int iv in
    let* lengths = parse_ints lengths in
    let* tbd = parse_bool tbd in
    Ok (Step.Split { stage; iv; lengths; tbd })
  | [ "F"; stage; ivs ] ->
    let* ivs = parse_ints ivs in
    Ok (Step.Fuse { stage; ivs })
  | [ "O"; stage; order ] ->
    let* order = parse_ints order in
    Ok (Step.Reorder { stage; order })
  | [ "CA"; stage; target; target_iv; bindings ] ->
    let* target_iv = parse_int target_iv in
    let* bindings = parse_pairs bindings in
    Ok (Step.Compute_at { stage; target; target_iv; bindings })
  | [ "I"; stage ] -> Ok (Step.Compute_inline { stage })
  | [ "CR"; stage ] -> Ok (Step.Compute_root { stage })
  | [ "CW"; stage ] -> Ok (Step.Cache_write { stage })
  | [ "RF"; stage; iv; lengths; tbd ] ->
    let* iv = parse_int iv in
    let* lengths = parse_ints lengths in
    let* tbd = parse_bool tbd in
    Ok (Step.Rfactor { stage; iv; lengths; tbd })
  | [ "A"; stage; iv; ann ] ->
    let* iv = parse_int iv in
    let* ann = parse_ann ann in
    Ok (Step.Annotate { stage; iv; ann })
  | [ "P"; stage; max_step ] ->
    let* max_step = parse_int max_step in
    Ok (Step.Pragma_unroll { stage; max_step })
  | _ -> Error (Printf.sprintf "malformed step %S" s)

let of_line line =
  match String.split_on_char '\t' line with
  | [ m; task_key; latency; steps ] when String.equal m magic ->
    let* latency =
      match float_of_string_opt latency with
      | Some f when f > 0.0 -> Ok f
      | _ -> Error (Printf.sprintf "bad latency %S" latency)
    in
    let* steps =
      if String.equal steps "" then Ok []
      else
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* step = step_of_string s in
            Ok (step :: acc))
          (Ok [])
          (String.split_on_char ';' steps)
        |> Result.map List.rev
    in
    Ok { task_key; latency; steps }
  | m :: _ when not (String.equal m magic) ->
    Error (Printf.sprintf "bad magic (expected %s)" magic)
  | _ -> Error "malformed record line"

(* ---- files --------------------------------------------------------------- *)

let save ~path entries =
  Ansor_util.Atomic_file.write ~path (fun oc ->
      List.iter
        (fun e ->
          output_string oc (to_line e);
          output_char oc '\n')
        entries)

let append ~path entry = Ansor_util.Atomic_file.append_line ~path (to_line entry)

let append_batch ~path entries =
  Ansor_util.Atomic_file.append_lines ~path (List.map to_line entries)

let fold_lines ~path ~on_line ~init =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc lineno =
          match input_line ic with
          | exception End_of_file -> Ok acc
          | "" -> go acc (lineno + 1)
          | line -> (
            match on_line acc lineno line with
            | Ok acc -> go acc (lineno + 1)
            | Error _ as e -> e)
        in
        go init 1)

let load ~path =
  Result.map List.rev
    (fold_lines ~path ~init:[]
       ~on_line:(fun acc lineno line ->
         match of_line line with
         | Ok e -> Ok (e :: acc)
         | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))

let load_salvage ~path =
  Result.map
    (fun (acc, skipped) -> (List.rev acc, skipped))
    (fold_lines ~path ~init:([], 0)
       ~on_line:(fun (acc, skipped) _lineno line ->
         match of_line line with
         | Ok e -> Ok (e :: acc, skipped)
         | Error _ -> Ok (acc, skipped + 1)))

(* Keep the best (lowest-latency) entry of every task key, preserving the
   file order of the survivors.  Ties keep the earliest entry, so a log of
   identical entries compacts to its first line. *)
let compact_entries entries =
  let best = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt best e.task_key with
      | Some b when b.latency <= e.latency -> ()
      | _ -> Hashtbl.replace best e.task_key e)
    entries;
  List.filter
    (fun e ->
      match Hashtbl.find_opt best e.task_key with
      | Some b -> b == e
      | None -> false)
    entries

let compact ~path =
  match load_salvage ~path with
  | Error msg -> Error msg
  | Ok (entries, skipped) ->
    let kept = compact_entries entries in
    save ~path kept;
    Ok (List.length entries - List.length kept + skipped)

let best_for entries ~task_key =
  List.fold_left
    (fun acc e ->
      if not (String.equal e.task_key task_key) then acc
      else
        match acc with
        | Some b when b.latency <= e.latency -> acc
        | _ -> Some e)
    None entries

let entry_of_tuner tuner =
  match Tuner.best_state tuner with
  | None -> None
  | Some st ->
    Some
      {
        task_key = Task.key (Tuner.task tuner);
        latency = Tuner.best_latency tuner;
        steps = st.State.history;
      }

let best_state entry dag = State.replay_checked dag entry.steps
