(** The per-task tuning loop: program sampling + performance fine-tuning.

    One {e round} is the task scheduler's unit of time resource (§6): the
    tuner proposes a batch of promising programs (by strategy), measures
    them, records the results in the shared training set and periodically
    retrains the shared cost model.

    Strategies cover the paper's system and its ablation / baseline
    variants:
    - {!ansor_options}: hierarchical sampling + evolutionary fine-tuning
      with the full rule set ("Ansor (ours)");
    - {!no_finetune_options}: random sampling only ("No fine-tuning");
    - {!limited_options}: full fine-tuning on a manual-template-like space
      ("Limited space");
    - {!beam_options}: sequential construction with early pruning of
      incomplete programs by the cost model ("Beam search", the Halide
      auto-scheduler design point);
    - {!autotvm_options} / {!flextensor_options}: template spaces with
      model-ranked random parameter search (no evolution), standing in for
      AutoTVM and FlexTensor. *)

open Ansor_sched

type strategy =
  | Sketch_search of {
      rules : Ansor_sketch.Rules.t list;
      use_evolution : bool;
    }
  | Beam_search of { beam_width : int; rollouts : int }

type options = {
  strategy : strategy;
  batch_size : int;  (** measurements per round *)
  sample_size : int;  (** fresh random samples per round *)
  evolution : Ansor_evolution.Evolution.config;
  eps_random : float;
      (** fraction of each measured batch drawn at random from the
          candidates instead of by model rank *)
  keep_previous : int;
      (** best already-measured programs re-seeded into the evolution's
          initial population *)
  template_annotation : bool;
      (** freeze the annotation choices (fixed vectorize/unroll policy, no
          computation-location changes), as manual templates do; set for
          the AutoTVM / FlexTensor baselines and the "Limited space"
          ablation *)
  descent : Descent.config option;
      (** enable the coordinate-descent exploitation finisher
          ({!Descent}): once evolution plateaus (or the configured budget
          fraction is spent), rounds switch to deterministic coordinate
          sweeps on the incumbent until a measured plateau, then
          evolution resumes from the descended winner.  [None] (the
          default everywhere) disables the stage. *)
}

val ansor_options : options
val no_finetune_options : options
val limited_options : options
val beam_options : options
val autotvm_options : options
val flextensor_options : options

(** State shared between all tasks of a tuning session: the single cost
    model and its training set (§5.2 trains "a single model for all tensor
    programs coming from all DAGs"). *)
module Shared : sig
  type t

  val create : ?train_every:int -> ?max_records:int -> unit -> t
  (** [train_every] rounds between retrains (default 1: retrain on every
      measured batch, as in the paper). [max_records] caps the training
      set to the most recent records (default 3000). *)

  val model : t -> Ansor_cost_model.Cost_model.t
  val records : t -> Ansor_cost_model.Cost_model.record list
  val num_records : t -> int

  val generation : t -> int
  (** Retrain counter: bumped every time {!model} is replaced (periodic
      retrains, {!restore}, {!adopt_store}).  The batch scoring service
      syncs on it to invalidate cached scores exactly once per new model
      ({!Ansor_cost_model.Score_service.sync}). *)

  val attach_store : ?path:string -> t -> Ansor_model_store.Model_store.t -> unit
  (** Attach a cross-task model store: every measured batch is appended
      to it (deduplicated by canonical lowered-program hash), and to the
      file at [path] when given. *)

  val adopt_store :
    t ->
    warm:(string * Ansor_gbdt.Gbdt.t) option ->
    aux:Ansor_model_store.Model_store.sample list ->
    bool
  (** Adopt a resolved warm start.  [warm = Some (origin, model)] seeds
      the cost model with the pretrained GBDT (only while the session is
      still cold — a restored fine-tuned model keeps its state) and every
      later retrain fine-tunes from it; [aux] sibling samples from the
      store join the training corpus (the session's own past
      contributions are filtered out by hash, so a resumed session never
      trains on a record twice).  The generation is bumped at most once —
      cached scores invalidate exactly once, cached features survive —
      and not at all when there is nothing to adopt, keeping the
      empty-store session bit-identical to a storeless one.  Returns
      whether a warm start happened. *)

  val provenance : t -> string
  (** ["cold"], or the warm model's ladder rung: ["exact"] / ["class"] /
      ["global"].  Survives snapshot/restore. *)

  val is_warm : t -> bool

  val warm_starts : t -> int
  (** Warm starts adopted over the session's lifetime (at most one per
      {!adopt_store} call; {!restore} carries the count over). *)

  val record_samples : t -> Ansor_model_store.Model_store.sample list -> int
  (** Persist one measured batch to the attached store (no-op without
      one): the samples' hashes are remembered as this session's own
      contributions, duplicates already in the store are dropped, and the
      rest are appended to the store (and its file, when attached with a
      path).  Returns how many were new.  {!round} calls this for every
      measured batch. *)

  val store_added : t -> int
  (** Samples newly persisted to the attached store. *)

  val num_aux : t -> int
  (** Store-derived sibling records currently in the training corpus. *)

  val has_store : t -> bool

  (** Checkpoint image of the shared state: the full training set (newest
      first, order preserved) plus whether a model had been trained.  Pure
      data — safe to marshal. *)
  type snapshot

  val snapshot : t -> snapshot

  val restore : t -> snapshot -> unit
  (** Replaces the training set and retrains the model from it when the
      snapshot had one (training is deterministic in the record list, so
      with the default [train_every = 1] the restored model is exactly the
      interrupted session's; with a larger [train_every] it may see up to
      [train_every - 1] newer rounds of records than the original did). *)
end

type t

val create :
  ?seed:int -> ?warm_start:Ansor_sched.Step.t list list -> options -> Task.t -> t
(** [warm_start] seeds the tuner with previously-recorded step histories
    (e.g. from {!Record.load} entries of the same task key): they join the
    evolution's initial population from the first round, so a re-tuning
    session starts from past results instead of from scratch. Histories
    that no longer replay are ignored. *)

val task : t -> Task.t

(** Checkpoint image of one tuner: everything mutable between rounds, as
    pure marshal-safe data.  States are stored as replayable step
    histories (the {!Record} representation), so a snapshot survives
    process death and restores against a freshly rebuilt task. *)
module Snapshot : sig
  type t = {
    task_key : string;  (** {!Task.key} of the tuner's task *)
    rng_state : int64;  (** search-RNG cursor *)
    rounds : int;
    best : (Ansor_sched.Step.t list * float) option;
    good : (Ansor_sched.Step.t list * float) list;  (** ascending latency *)
    measured_keys : string list;  (** dedup set of measured histories *)
    curve : (int * float) list;  (** oldest first *)
    descent : Descent.cursor option;
        (** exploitation-descent position, so a resume replays
            mid-descent deterministically *)
    plateau_stall : int;  (** evolution-plateau detector state *)
  }
end

val snapshot : t -> Snapshot.t

val restore : t -> Snapshot.t -> (unit, string) result
(** Restores a freshly {!create}d tuner (same seed, options, task) to the
    snapshot's state: RNG cursor, round count, population, best-so-far,
    measured set and curve.  Step histories that no longer replay are
    dropped silently.  [Error] if the snapshot belongs to a different
    task. *)

val round :
  ?budget:int -> t -> Shared.t -> Ansor_measure_service.Service.t -> unit
(** Generate, measure [batch_size] programs through the measurement
    service, record, maybe retrain.  Phase timings (sample / evolve /
    model-rank / measure / retrain / descent) land in the service's
    telemetry.

    With {!options.descent} set, a round instead performs one
    coordinate-descent sweep while the exploitation stage is active; the
    stage starts once evolution plateaus or — when the total trial
    [budget] is known (passed by {!tune}) — once the configured fraction
    of it is spent. *)

val best_latency : t -> float
(** Best {e observed} latency so far ([infinity] before any
    measurement). *)

val best_state : t -> State.t option

val rounds_done : t -> int

val curve : t -> (int * float) list
(** [(cumulative measurement trials, best latency so far)] after each
    round, oldest first. *)

val tune :
  ?seed:int ->
  ?shared:Shared.t ->
  ?service:Ansor_measure_service.Service.t ->
  ?snapshot:Snapshot.t ->
  ?should_stop:(unit -> bool) ->
  ?on_round:(t -> unit) ->
  options ->
  trials:int ->
  Task.t ->
  t * Ansor_measure_service.Service.t
(** Convenience: rounds until the service's trial count reaches the budget
    (or three consecutive rounds consume no trials); returns the tuner and
    the service (freshly created with default config unless supplied) for
    inspection.

    [snapshot] restores the tuner before the first round (resume);
    @raise Invalid_argument if it belongs to a different task.
    [should_stop] is polled before each round — graceful shutdown: the
    loop exits between rounds, never mid-batch.  [on_round] runs after
    every completed round (checkpoint hook). *)
