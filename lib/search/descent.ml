open Ansor_sched
module Factorize = Ansor_util.Factorize
module Evolution = Ansor_evolution.Evolution
module Score_service = Ansor_cost_model.Score_service
module Bounds = Ansor_analysis.Bounds
module Policy = Ansor_sketch.Policy

type config = {
  stall_rounds : int;
  budget_fraction : float;
  plateau_sweeps : int;
  max_walk : int;
  max_probes : int;
}

let default_config =
  {
    stall_rounds = 6;
    budget_fraction = 0.75;
    plateau_sweeps = 2;
    max_walk = 8;
    max_probes = 16;
  }

(* A tunable coordinate is one editable step of the incumbent's history,
   addressed by index.  Every edit is a same-index replacement, so the
   history length — and with it every other coordinate's address — is
   invariant across a sweep. *)
type coord =
  | Split_levels of int
  | Unroll_pragma of int
  | Annotation of int
  | Fuse_extent of int

let coord_index = function
  | Split_levels i | Unroll_pragma i | Annotation i | Fuse_extent i -> i

type cursor = {
  current : Step.t list;
  sweeps : int;
  non_improving : int;
  finished : bool;
}

let start (st : State.t) =
  { current = st.State.history; sweeps = 0; non_improving = 0; finished = false }

let coordinates (st : State.t) =
  let steps = st.State.history in
  let consumers = Evolution.consumer_stages steps in
  List.mapi
    (fun i (s : Step.t) ->
      match s with
      | Step.Split { stage; lengths; _ }
        when List.length lengths >= 2
             && (not (List.mem stage consumers))
             && List.exists (fun l -> l > 1) lengths ->
        Some (Split_levels i)
      | Step.Pragma_unroll _ -> Some (Unroll_pragma i)
      | Step.Annotate _ -> Some (Annotation i)
      | Step.Fuse { ivs; _ } when List.length ivs >= 3 -> Some (Fuse_extent i)
      | _ -> None)
    steps
  |> List.filter_map Fun.id

let replace_nth l n x = List.mapi (fun i y -> if i = n then x else y) l

(* Raw edited histories one lattice move away along [coord] — the same
   moves evolution's mutation operators draw at random, enumerated
   exhaustively and in a fixed order (no RNG anywhere in this module:
   that is what makes the stage bit-identical across worker counts). *)
let proposals ~(policy : Policy.t) (st : State.t) coord : Step.t list list =
  let steps = st.State.history in
  match (coord, List.nth steps (coord_index coord)) with
  | Split_levels i, Step.Split { stage; iv; lengths; _ } ->
    let arr = Array.of_list lengths in
    let n = Array.length arr in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    for src = 0 to n - 1 do
      let primes =
        List.sort_uniq compare (Factorize.prime_factors arr.(src))
      in
      List.iter
        (fun p ->
          for dst = 0 to n - 1 do
            if dst <> src then begin
              let arr' = Array.copy arr in
              arr'.(src) <- arr'.(src) / p;
              arr'.(dst) <- arr'.(dst) * p;
              let lengths' = Array.to_list arr' in
              if not (Hashtbl.mem seen lengths') then begin
                Hashtbl.replace seen lengths' ();
                out :=
                  replace_nth steps i
                    (Step.Split { stage; iv; lengths = lengths'; tbd = false })
                  :: !out
              end
            end
          done)
        primes
    done;
    List.rev !out
  | Unroll_pragma i, Step.Pragma_unroll { stage; max_step } ->
    List.filter_map
      (fun v ->
        if v = max_step then None
        else Some (replace_nth steps i (Step.Pragma_unroll { stage; max_step = v })))
      policy.Policy.unroll_steps
  | Annotation i, Step.Annotate { stage; iv; ann } ->
    let flips =
      match ann with
      | Step.Vectorize -> [ Step.Unroll; Step.No_ann; Step.Parallel ]
      | Step.Unroll -> [ Step.Vectorize; Step.No_ann; Step.Parallel ]
      | Step.Parallel -> [ Step.No_ann ]
      | Step.No_ann -> [ Step.Vectorize; Step.Unroll; Step.Parallel ]
    in
    List.map
      (fun ann' -> replace_nth steps i (Step.Annotate { stage; iv; ann = ann' }))
      flips
  | Fuse_extent i, Step.Fuse { stage; ivs } ->
    (* coarsen the parallel granularity one level at a time *)
    let shorter = List.filteri (fun j _ -> j < List.length ivs - 1) ivs in
    if List.length shorter >= 2 then
      [ replace_nth steps i (Step.Fuse { stage; ivs = shorter }) ]
    else []
  | _ -> []

(* Every neighbor goes through exactly the gates evolution offspring do:
   constrained replay, a lowering check, the static race detector
   ({!Evolution.verify}) and the memory-safety certifier — an [Unsafe]
   verdict is dropped before scoring, like the tuner's fresh-sample
   filter.  [on_reject] fires for the statically-rejected ones. *)
let validate ?on_reject dag steps =
  match Evolution.verify ?on_reject dag steps with
  | None -> None
  | Some st -> (
    match Lower.lower st with
    | exception State.Illegal _ -> None
    | prog -> (
      match Bounds.certify prog with
      | Bounds.Unsafe _ ->
        Option.iter (fun f -> f ()) on_reject;
        None
      | Bounds.Certified | Bounds.Unknown -> Some st))

let neighbors ?on_reject ~policy dag st coord =
  List.filter_map (validate ?on_reject dag) (proposals ~policy st coord)

let history_key (st : State.t) = Step.history_key st.State.history

let argmax scores =
  List.fold_left
    (fun (bi, bs) (i, s) -> if s > bs then (i, s) else (bi, bs))
    (-1, neg_infinity)
    (List.mapi (fun i s -> (i, s)) scores)

(* Greedy line search along one coordinate: from the anchor, keep taking
   the best-scoring unvisited lattice move (first index wins ties, so
   the walk is deterministic) while the model keeps strictly improving,
   up to [max_walk] moves.  Returns every (candidate, score) pair the
   walk scored — the explored stretch of the line — so the caller can
   pick the most promising *unmeasured* point on it.  Scoring is one
   batched call per step, so it stays pooled and feature-cached in the
   scoring service. *)
let line_search cfg ~scorer ?on_reject ~policy dag w coord =
  let visited = Hashtbl.create 8 in
  Hashtbl.replace visited (history_key w) ();
  let acc = ref [] in
  let rec go w prev_score steps_left =
    if steps_left > 0 then
      let vars =
        neighbors ?on_reject ~policy dag w coord
        |> List.filter (fun st -> not (Hashtbl.mem visited (history_key st)))
      in
      match vars with
      | [] -> ()
      | _ ->
        List.iter (fun st -> Hashtbl.replace visited (history_key st) ()) vars;
        let scores = Score_service.score_states scorer vars in
        acc := !acc @ List.combine vars scores;
        let best_i, best_s = argmax scores in
        if best_i >= 0 && best_s > prev_score then
          go (List.nth vars best_i) best_s (steps_left - 1)
  in
  go w neg_infinity cfg.max_walk;
  !acc

(* One coordinate sweep from the cursor's incumbent: line-search every
   coordinate in order and nominate, per coordinate, the best-scoring
   point on its line that nothing has measured yet.  These per-coordinate
   winners — and only these — reach the measurement service; whether one
   of them actually improves the incumbent is decided by measurement
   ([advance]'s [improved]), not by the model, which is what makes the
   plateau stop a *measured* plateau. *)
let sweep cfg ~dag ~policy ~scorer ?on_reject ~measured cursor =
  match State.replay_checked dag cursor.current with
  | Error e -> Error e
  | Ok start_st ->
    let coords = coordinates start_st in
    let seen = Hashtbl.create 16 in
    Hashtbl.replace seen (history_key start_st) ();
    let fresh st =
      let k = history_key st in
      not (Hashtbl.mem seen k) && not (measured k)
    in
    let winners = ref [] in
    List.iteri
      (fun rank c ->
        let line = line_search cfg ~scorer ?on_reject ~policy dag start_st c in
        let cands = List.filter (fun (st, _) -> fresh st) line in
        let best_i, best_s = argmax (List.map snd cands) in
        if best_i >= 0 then begin
          let st, _ = List.nth cands best_i in
          Hashtbl.replace seen (history_key st) ();
          winners := (rank, best_s, st) :: !winners
        end)
      coords;
    (* measure only the [max_probes] most promising winners this sweep;
       ties break by coordinate order, so the cut is deterministic *)
    let top =
      List.stable_sort
        (fun (r1, s1, _) (r2, s2, _) ->
          if s1 <> s2 then compare s2 s1 else compare r1 r2)
        (List.rev !winners)
      |> List.filteri (fun i _ -> i < cfg.max_probes)
    in
    (* hand them over in coordinate order to keep batch order stable *)
    let top = List.sort (fun (r1, _, _) (r2, _, _) -> compare r1 r2) top in
    Ok (List.map (fun (_, _, st) -> st) top)

(* Advance the cursor with the sweep's measured outcome: an improving
   sweep re-anchors the walk on the new incumbent, a non-improving one
   counts toward the plateau stop (k = [plateau_sweeps]). *)
let advance cfg cursor ~improved ~best =
  let cursor =
    if improved then
      { cursor with current = best; non_improving = 0; sweeps = cursor.sweeps + 1 }
    else
      {
        cursor with
        non_improving = cursor.non_improving + 1;
        sweeps = cursor.sweeps + 1;
      }
  in
  if cursor.non_improving >= cfg.plateau_sweeps then
    { cursor with finished = true }
  else cursor
