type meta = {
  seed : int;
  machine : string;
  task_keys : string list;
  rounds : int;
}

type payload =
  | Single of {
      tuner : Ansor_search.Tuner.Snapshot.t;
      shared : Ansor_search.Tuner.Shared.snapshot;
      cache : (string * float) list;
      stats : Ansor_measure_service.Telemetry.stats;
    }
  | Session of Ansor_scheduler.Scheduler.Snapshot.t

type image = { meta : meta; payload : payload }

(* v2: Shared.snapshot gained the cross-task warm-start fields
   (pretrained base model, store-derived records, provenance).
   v3: Telemetry.stats gained the memory-safety certification counters
   (bounds_rejected / certified / cert_cache_hits).
   v4: Tuner.Snapshot gained the exploitation-descent cursor and
   plateau-detector state; Telemetry.stats gained the descent counters.
   The version lives in the magic line, so a snapshot from an older
   binary is rejected cleanly instead of misparsed by Marshal. *)
let version = 4

let magic = Printf.sprintf "ansor-snapshot-v%d" version

let prev_path path = path ^ ".prev"

let save ~path image =
  (* rotate first: the previous generation survives as <path>.prev, so a
     crash anywhere below costs at most one round of progress *)
  if Sys.file_exists path then (
    try Sys.rename path (prev_path path) with Sys_error _ -> ());
  let payload = Marshal.to_string (image : image) [] in
  Ansor_util.Atomic_file.write ~path (fun oc ->
      Printf.fprintf oc "%s\n%d\n" magic (String.length payload);
      output_string oc payload;
      Printf.fprintf oc "md5:%s\n" (Digest.to_hex (Digest.string payload)))

let load ~path : (image, string) result =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          let header = input_line ic in
          if not (String.equal header magic) then
            Error (Printf.sprintf "bad magic %S (expected %s)" header magic)
          else
            let len = int_of_string (input_line ic) in
            if len < 0 then Error "bad payload length"
            else begin
              let payload = really_input_string ic len in
              let footer = input_line ic in
              let expect = "md5:" ^ Digest.to_hex (Digest.string payload) in
              if not (String.equal footer expect) then
                Error "digest mismatch: snapshot is torn or corrupted"
              else Ok (Marshal.from_string payload 0 : image)
            end
        with
        | End_of_file -> Error "truncated snapshot"
        | Failure _ -> Error "malformed snapshot header"
        | e -> Error (Printexc.to_string e))

type generation = Current | Previous of string

let load_latest ~path =
  match load ~path with
  | Ok img -> Ok (img, Current)
  | Error current_err -> (
    match load ~path:(prev_path path) with
    | Ok img -> Ok (img, Previous current_err)
    | Error prev_err ->
      Error
        (Printf.sprintf "%s: %s; %s: %s" path current_err (prev_path path)
           prev_err))

module Shutdown = struct
  let flag = ref None

  let note name _signum =
    match !flag with
    | None -> flag := Some name
    | Some _ ->
      (* second signal: the user insists — exit immediately *)
      exit 130

  let install () =
    Sys.set_signal Sys.sigint (Sys.Signal_handle (note "SIGINT"));
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (note "SIGTERM"))

  let requested () = !flag <> None

  let reason () = !flag

  let reset () = flag := None
end
