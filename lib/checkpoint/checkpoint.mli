(** Crash-safe tuning sessions: checkpoint images, atomic persistence
    with generation fallback, and graceful-shutdown signaling.

    Ansor's value is accumulated search state — tuner populations, the
    cost-model training set, the task scheduler's budget allocation — and
    a crash or Ctrl-C mid-run used to lose all of it.  This module
    snapshots the {e full} session after every tuning round as a
    versioned, digest-footed image:

    {v
ansor-snapshot-v2\n
<payload byte length>\n
<payload bytes (marshalled image)>
md5:<hex digest of payload>\n
    v}

    The shared-state part of the payload records the cost model's full
    provenance — the session's training records, the pretrained base
    model and its ladder rung (cold/exact/class/global), and the
    store-derived sibling records — so a resumed session retrains
    exactly the model the interrupted one had.

    Every save goes through {!Ansor_util.Atomic_file} (write-temp +
    rename) and rotates the previous image to [<path>.prev], so at any
    instant — including mid-save, mid-rotate, or after a torn write — at
    least one complete, digest-verified snapshot exists on disk.
    {!load_latest} prefers the current generation and silently falls back
    to the previous one when the current file is missing, truncated, or
    fails its digest; it returns [Error] (never raises) only when both
    generations are unusable, in which case the session starts fresh.

    A version bump changes the magic line, so an incompatible image from
    an older build reads as "bad magic" and falls through the same
    fallback path instead of being misinterpreted. *)

type meta = {
  seed : int;  (** session seed — resumed runs must use the same *)
  machine : string;  (** {!Ansor_machine.Machine.t} name *)
  task_keys : string list;  (** {!Ansor_search.Task.key}s, session order *)
  rounds : int;  (** tuning rounds/allocations completed at save time *)
}
(** Compatibility fingerprint checked before restoring: resuming against
    a different machine, task set or seed silently starts fresh instead
    of corrupting the session. *)

type payload =
  | Single of {
      tuner : Ansor_search.Tuner.Snapshot.t;
      shared : Ansor_search.Tuner.Shared.snapshot;
      cache : (string * float) list;  (** dedup-cache entries *)
      stats : Ansor_measure_service.Telemetry.stats;
    }  (** a single-task {!Ansor_search.Tuner.tune} session *)
  | Session of Ansor_scheduler.Scheduler.Snapshot.t
      (** a multi-task {!Ansor_scheduler.Scheduler} session *)

type image = { meta : meta; payload : payload }

val version : int

val save : path:string -> image -> unit
(** Rotates the existing [path] (if any) to [path ^ ".prev"], then writes
    the new image atomically.  A crash at any point leaves at least one
    loadable generation. *)

val load : path:string -> (image, string) result
(** Strict single-file load: verifies magic, length and digest before
    unmarshalling.  Never raises on torn or garbage files. *)

type generation =
  | Current
  | Previous of string
      (** fell back; the argument says why the current file was rejected *)

val load_latest : path:string -> (image * generation, string) result
(** [path] if valid, else [path ^ ".prev"]; [Error] describes both
    failures when neither generation loads. *)

(** Cooperative SIGINT/SIGTERM shutdown.  {!install} registers handlers
    that only set a flag; tuning loops poll {!requested} between rounds
    (via their [should_stop] hooks) and exit cleanly, after which the
    driver flushes a final snapshot, the dedup cache and the record log.
    A second signal exits immediately (status 130) for users who insist. *)
module Shutdown : sig
  val install : unit -> unit

  val requested : unit -> bool

  val reason : unit -> string option
  (** ["SIGINT"] or ["SIGTERM"] once requested. *)

  val reset : unit -> unit
  (** Clears the flag (tests; or to arm a second session). *)
end
