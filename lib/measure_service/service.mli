(** The measurement service: domain-parallel, fault-tolerant batch
    measurement with a dedup cache and telemetry.

    This subsystem owns the measure path end-to-end, playing the role of
    the paper's parallel RPC measurer (§5, §7.6): a batch of candidate
    schedules is fanned out across {!config.num_workers} domains, every
    candidate comes back with a latency or a classified failure
    ({!Protocol.failure}), transient run failures are retried with
    exponential backoff, identical lowered programs are deduplicated
    through the {!Cache}, and all accounting flows into the {!Telemetry}
    stats — the single source of truth for trial budgets.

    {b Determinism.} Results are byte-identical for any worker count and
    any scheduling order: each candidate's measurement noise comes from a
    private RNG stream derived from the service's root seed and the
    candidate's canonical program key, never from shared mutable state.

    {!Ansor_machine.Measurer} remains the single-program backend the
    service wraps. *)

open Ansor_sched

type config = {
  num_workers : int;  (** measurement domains (1 = run inline) *)
  timeout : float;
      (** per-program {e simulated}-latency ceiling in seconds; a program
          whose observed latency exceeds it is classified
          {!Protocol.Timeout} ([infinity] disables) *)
  batch_deadline : float;
      (** {e wall-clock} budget in seconds for one {!measure_batch} call
          ([infinity] disables).  Once it expires, candidates not yet
          started are classified {!Protocol.Timeout} without running and
          in-flight retry loops stop retrying — a stuck or pathological
          candidate cannot hang a worker domain (and the whole batch
          behind it) forever.  Expired candidates consume no trials. *)
  max_retries : int;  (** extra runs after a transient {!Protocol.Run_error} *)
  backoff : float;
      (** base backoff delay in seconds, doubled per retry; the delay is
          slept for and accounted in telemetry (0 disables sleeping) *)
  noise : float;  (** measurement-noise stddev (see {!Ansor_machine.Measurer}) *)
  validate : bool;
      (** statically validate each program before running it, classifying
          issues as {!Protocol.Build_error} (off by default: the search
          layers pre-filter candidates) *)
  backend : Protocol.backend;
      (** where cache-miss candidates are measured: {!Protocol.Sim} runs
          the analytical simulator on the domain pool; {!Protocol.Native}
          hands the whole miss set to the injected {!native_runner} (gcc
          compile + wall-clock timing).  Cache keys are backend-tagged, so
          the two backends never serve each other's entries. *)
  allow_unproven : bool;
      (** let the native backend measure programs the memory-safety
          certifier could not prove safe ([Unknown] verdicts).  Off by
          default; only enable together with guarded codegen
          ([ANSOR_BOUNDS_CHECK=1]), which turns a latent out-of-bounds
          access into a clean abort instead of harness corruption.
          [Unsafe] programs (constructive witness) are refused
          regardless. *)
}

val default_config : config
(** 1 worker, no timeout, no batch deadline, 2 retries, no backoff delay,
    noise 0.03, no validation, [Sim] backend, unproven programs
    refused. *)

type fault_hook = key:string -> attempt:int -> Protocol.failure option
(** Fault injection for tests: consulted before each backend run with the
    candidate's canonical key and the 1-based attempt number; returning
    [Some failure] injects it.  Must be a pure function of its arguments
    (it runs on worker domains). *)

type native_runner =
  timeout:float ->
  deadline:float option ->
  max_retries:int ->
  num_workers:int ->
  (string * Prog.t) array ->
  Protocol.native_report
(** A pluggable batch backend: given the unique cache misses of one batch
    as (canonical key, lowered program) pairs, returns a classified
    {!Protocol.outcome} per pair plus compile/run attribution.  Injected
    as a closure so this library never depends on the codegen layer
    (see [Ansor_measure_native.Measure_native.runner]).  [timeout] is the
    per-program latency ceiling, [deadline] the batch's absolute
    wall-clock cutoff, both straight from {!config}. *)

type t

val create :
  ?config:config ->
  ?cache:Cache.t ->
  ?fault_hook:fault_hook ->
  ?native_runner:native_runner ->
  seed:int ->
  Ansor_machine.Machine.t ->
  t
(** [cache] shares or preloads a dedup cache (e.g. {!Cache.load}ed from a
    previous session); a fresh one is created otherwise.

    @raise Invalid_argument
      when [config.backend] is {!Protocol.Native} and no [native_runner]
      was supplied. *)

val backend : t -> Protocol.backend

val machine : t -> Ansor_machine.Machine.t
val measurer : t -> Ansor_machine.Measurer.t

val num_workers : t -> int
(** [num_workers t] is the configured domain-pool width — shared with the
    cost model's batch scoring service so [--workers] governs both
    fan-outs. *)

val cache : t -> Cache.t
val telemetry : t -> Telemetry.t

val stats : t -> Telemetry.stats
val trials : t -> int
(** Backend measurement runs so far, retries included — the budget unit. *)

val measure_batch : t -> Protocol.request list -> Protocol.result list
(** Measures a batch: exactly one classified result per request, in request
    order.  Duplicate programs inside the batch are measured once and the
    copies served as cache hits.

    With the [Native] backend every candidate first passes the
    memory-safety gate: programs the bounds certifier finds [Unsafe] (or
    [Unknown], unless {!config.allow_unproven}) come back as
    {!Protocol.Bounds_error} — deterministic, never retried, zero
    trials, nothing compiled or cached. *)

val measure_state : t -> State.t -> Protocol.result
(** Single-candidate convenience. *)

val true_latency : t -> Prog.t -> float
(** Noise-free simulator estimate; consumes no trial. *)
