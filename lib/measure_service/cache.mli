(** The deduplicating measurement cache.

    Evolution and resampling frequently propose schedules whose step
    histories differ but whose {e lowered programs} are identical; measuring
    them again wastes trials.  The cache keys measurements by a canonical
    hash of the lowered program (plus the machine it was measured on), so an
    identical program is never measured twice — within a session or, via
    {!save}/{!load}, across re-tuning sessions (persisted alongside
    {!Ansor_search.Record} logs).

    Only successful measurements are cached: failures may be transient or
    configuration-dependent (timeout ceilings), so they are re-tried in a
    later session. *)

type t

val create : unit -> t

val key_of_prog :
  ?backend:Protocol.backend ->
  Ansor_machine.Machine.t ->
  Ansor_sched.Prog.t ->
  string
(** Canonical key: a digest of the machine name and the structural content
    of the lowered program (loops, statements, buffers, initializations) —
    independent of the step history that produced it.  [backend] (default
    {!Protocol.Sim}) is folded in so simulator estimates and native
    wall-clock timings never alias, even in a shared cache file; [Sim]
    keys are unchanged from historical caches. *)

val find : t -> string -> float option
val add : t -> string -> float -> unit
(** First write wins: re-adding an existing key is a no-op, so concurrent
    duplicates cannot flap the stored latency. *)

val size : t -> int
val entries : t -> (string * float) list
(** Sorted by key (deterministic). *)

val save : path:string -> t -> unit
(** Atomically replaces [path] (write-temp + rename, see
    {!Ansor_util.Atomic_file}) with one [ansor-cache-v1] line per entry:
    an interrupted save can never leave a truncated cache behind. *)

val load : path:string -> (t, string) result
(** Strict: [Error] describes the first malformed line; empty lines are
    skipped. *)

val load_salvage : path:string -> (t * int, string) result
(** Torn-file recovery: loads every well-formed line and returns the cache
    together with the number of malformed lines skipped (e.g. the partial
    final line of a file whose writer was killed).  [Error] only when the
    file cannot be opened at all. *)
