type t = { table : (string, float) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let key_of_prog ?(backend = Protocol.Sim) (machine : Ansor_machine.Machine.t)
    (prog : Ansor_sched.Prog.t) =
  (* the structural fields fully determine the simulator estimate; the step
     history that produced the program does not participate.  The backend
     participates: a native wall-clock measurement must never satisfy a
     simulator lookup (or vice versa), even through a shared cache file.
     Sim keys keep the historical unprefixed form so caches persisted by
     older sessions stay valid. *)
  let payload = Ansor_sched.Prog.canonical_payload prog in
  let tag =
    match backend with
    | Protocol.Sim -> ""
    | b -> Protocol.backend_name b ^ "\x00"
  in
  Digest.to_hex
    (Digest.string
       (tag ^ machine.Ansor_machine.Machine.name ^ "\x00" ^ payload))

let find t key = Hashtbl.find_opt t.table key

let add t key latency =
  if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key latency

let size t = Hashtbl.length t.table

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let magic = "ansor-cache-v1"

let save ~path t =
  Ansor_util.Atomic_file.write ~path (fun oc ->
      List.iter
        (fun (k, v) -> Printf.fprintf oc "%s\t%s\t%.9e\n" magic k v)
        (entries t))

let parse_line line =
  match String.split_on_char '\t' line with
  | [ m; key; latency ] when String.equal m magic -> (
    match float_of_string_opt latency with
    | Some l when l > 0.0 -> Ok (key, l)
    | _ -> Error (Printf.sprintf "bad latency %S" latency))
  | m :: _ when not (String.equal m magic) ->
    Error (Printf.sprintf "bad magic (expected %s)" magic)
  | _ -> Error "malformed cache line"

let fold_lines ~path ~on_line ~init =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc lineno =
          match input_line ic with
          | exception End_of_file -> Ok acc
          | "" -> go acc (lineno + 1)
          | line -> (
            match on_line acc lineno line with
            | Ok acc -> go acc (lineno + 1)
            | Error _ as e -> e)
        in
        go init 1)

let load ~path =
  let t = create () in
  Result.map
    (fun () -> t)
    (fold_lines ~path ~init:()
       ~on_line:(fun () lineno line ->
         match parse_line line with
         | Ok (key, l) -> Ok (add t key l)
         | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))

let load_salvage ~path =
  let t = create () in
  Result.map
    (fun skipped -> (t, skipped))
    (fold_lines ~path ~init:0
       ~on_line:(fun skipped _lineno line ->
         match parse_line line with
         | Ok (key, l) ->
           add t key l;
           Ok skipped
         | Error _ -> Ok (skipped + 1)))
