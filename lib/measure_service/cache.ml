type t = { table : (string, float) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let key_of_prog (machine : Ansor_machine.Machine.t) (prog : Ansor_sched.Prog.t) =
  (* the structural fields fully determine the simulator estimate; the step
     history that produced the program does not participate *)
  let payload =
    Marshal.to_string
      (prog.Ansor_sched.Prog.items, prog.buffers, prog.inits)
      [ Marshal.No_sharing ]
  in
  Digest.to_hex (Digest.string (machine.Ansor_machine.Machine.name ^ "\x00" ^ payload))

let find t key = Hashtbl.find_opt t.table key

let add t key latency =
  if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key latency

let size t = Hashtbl.length t.table

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let magic = "ansor-cache-v1"

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun (k, v) -> Printf.fprintf oc "%s\t%s\t%.9e\n" magic k v)
        (entries t))

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let t = create () in
        let rec go lineno =
          match input_line ic with
          | exception End_of_file -> Ok t
          | "" -> go (lineno + 1)
          | line -> (
            match String.split_on_char '\t' line with
            | [ m; key; latency ] when String.equal m magic -> (
              match float_of_string_opt latency with
              | Some l when l > 0.0 ->
                add t key l;
                go (lineno + 1)
              | _ -> Error (Printf.sprintf "line %d: bad latency %S" lineno latency))
            | m :: _ when not (String.equal m magic) ->
              Error (Printf.sprintf "line %d: bad magic (expected %s)" lineno magic)
            | _ -> Error (Printf.sprintf "line %d: malformed cache line" lineno))
        in
        go 1)
