type phase =
  | Sample
  | Evolve
  | Model_rank
  | Measure
  | Retrain
  | Compile
  | Native_run
  | Descent

let phases =
  [| Sample; Evolve; Model_rank; Measure; Retrain; Compile; Native_run; Descent |]

let phase_index = function
  | Sample -> 0
  | Evolve -> 1
  | Model_rank -> 2
  | Measure -> 3
  | Retrain -> 4
  | Compile -> 5
  | Native_run -> 6
  | Descent -> 7

let phase_name = function
  | Sample -> "sample"
  | Evolve -> "evolve"
  | Model_rank -> "model_rank"
  | Measure -> "measure"
  | Retrain -> "retrain"
  | Compile -> "compile"
  | Native_run -> "native_run"
  | Descent -> "descent"

type stats = {
  trials : int;
  measured : int;
  cache_hits : int;
  build_errors : int;
  compile_errors : int;
  run_errors : int;
  timeouts : int;
  retries : int;
  batches : int;
  statically_rejected : int;
  bounds_rejected : int;
  certified : int;
  cert_cache_hits : int;
  warm_starts : int;
  store_samples : int;
  finetune_rounds : int;
  native_compiles : int;
  native_kernels : int;
  descent_trials : int;
  descent_sweeps : int;
  descent_improvements : int;
  descent_plateau_stops : int;
  backoff_seconds : float;
  score_hits : int;
  score_misses : int;
  score_evictions : int;
  score_batches : int;
  score_wall_seconds : float;
  score_work_seconds : float;
  phase_seconds : (string * float) list;
}

let empty_stats =
  {
    trials = 0;
    measured = 0;
    cache_hits = 0;
    build_errors = 0;
    compile_errors = 0;
    run_errors = 0;
    timeouts = 0;
    retries = 0;
    batches = 0;
    statically_rejected = 0;
    bounds_rejected = 0;
    certified = 0;
    cert_cache_hits = 0;
    warm_starts = 0;
    store_samples = 0;
    finetune_rounds = 0;
    native_compiles = 0;
    native_kernels = 0;
    descent_trials = 0;
    descent_sweeps = 0;
    descent_improvements = 0;
    descent_plateau_stops = 0;
    backoff_seconds = 0.0;
    score_hits = 0;
    score_misses = 0;
    score_evictions = 0;
    score_batches = 0;
    score_wall_seconds = 0.0;
    score_work_seconds = 0.0;
    phase_seconds = Array.to_list (Array.map (fun p -> (phase_name p, 0.0)) phases);
  }

let total stats =
  List.fold_left
    (fun acc s ->
      {
        trials = acc.trials + s.trials;
        measured = acc.measured + s.measured;
        cache_hits = acc.cache_hits + s.cache_hits;
        build_errors = acc.build_errors + s.build_errors;
        compile_errors = acc.compile_errors + s.compile_errors;
        run_errors = acc.run_errors + s.run_errors;
        timeouts = acc.timeouts + s.timeouts;
        retries = acc.retries + s.retries;
        batches = acc.batches + s.batches;
        statically_rejected = acc.statically_rejected + s.statically_rejected;
        bounds_rejected = acc.bounds_rejected + s.bounds_rejected;
        certified = acc.certified + s.certified;
        cert_cache_hits = acc.cert_cache_hits + s.cert_cache_hits;
        warm_starts = acc.warm_starts + s.warm_starts;
        store_samples = acc.store_samples + s.store_samples;
        finetune_rounds = acc.finetune_rounds + s.finetune_rounds;
        native_compiles = acc.native_compiles + s.native_compiles;
        native_kernels = acc.native_kernels + s.native_kernels;
        descent_trials = acc.descent_trials + s.descent_trials;
        descent_sweeps = acc.descent_sweeps + s.descent_sweeps;
        descent_improvements = acc.descent_improvements + s.descent_improvements;
        descent_plateau_stops =
          acc.descent_plateau_stops + s.descent_plateau_stops;
        backoff_seconds = acc.backoff_seconds +. s.backoff_seconds;
        score_hits = acc.score_hits + s.score_hits;
        score_misses = acc.score_misses + s.score_misses;
        score_evictions = acc.score_evictions + s.score_evictions;
        score_batches = acc.score_batches + s.score_batches;
        score_wall_seconds = acc.score_wall_seconds +. s.score_wall_seconds;
        score_work_seconds = acc.score_work_seconds +. s.score_work_seconds;
        phase_seconds =
          List.map2
            (fun (name, a) (_, b) -> (name, a +. b))
            acc.phase_seconds s.phase_seconds;
      })
    empty_stats stats

let results s =
  s.measured + s.cache_hits + s.build_errors + s.compile_errors
  + s.bounds_rejected + s.run_errors + s.timeouts

let score_speedup s =
  if s.score_wall_seconds > 0.0 then s.score_work_seconds /. s.score_wall_seconds
  else 1.0

let summary s =
  let counters =
    Printf.sprintf
      "trials=%d ok=%d cache=%d build_err=%d compile_err=%d run_err=%d \
       timeout=%d retries=%d static_rej=%d bounds_rej=%d certified=%d \
       cert_cache=%d native_cc=%d descent=%d/%d score_hit=%d score_miss=%d \
       score_speedup=%.2fx"
      s.trials s.measured s.cache_hits s.build_errors s.compile_errors
      s.run_errors s.timeouts s.retries s.statically_rejected
      s.bounds_rejected s.certified s.cert_cache_hits s.native_compiles
      s.descent_trials s.descent_improvements
      s.score_hits s.score_misses (score_speedup s)
  in
  let timers =
    String.concat " "
      (List.map (fun (n, v) -> Printf.sprintf "%s=%.3fs" n v) s.phase_seconds)
  in
  counters ^ " | " ^ timers

let to_json s =
  let phase_fields =
    String.concat ","
      (List.map
         (fun (n, v) -> Printf.sprintf "\"%s\":%.6f" n v)
         s.phase_seconds)
  in
  Printf.sprintf
    "{\"trials\":%d,\"measured\":%d,\"cache_hits\":%d,\"build_errors\":%d,\
     \"compile_errors\":%d,\
     \"run_errors\":%d,\"timeouts\":%d,\"retries\":%d,\"batches\":%d,\
     \"statically_rejected\":%d,\"bounds_rejected\":%d,\
     \"certified\":%d,\"cert_cache_hits\":%d,\"warm_starts\":%d,\
     \"store_samples\":%d,\"finetune_rounds\":%d,\
     \"native_compiles\":%d,\
     \"native_kernels\":%d,\"descent_trials\":%d,\"descent_sweeps\":%d,\
     \"descent_improvements\":%d,\"descent_plateau_stops\":%d,\
     \"backoff_seconds\":%.6f,\
     \"score_hits\":%d,\"score_misses\":%d,\"score_evictions\":%d,\
     \"score_batches\":%d,\"score_wall_seconds\":%.6f,\
     \"score_work_seconds\":%.6f,\"score_parallel_speedup\":%.6f,\
     \"phase_seconds\":{%s}}"
    s.trials s.measured s.cache_hits s.build_errors s.compile_errors
    s.run_errors s.timeouts s.retries s.batches s.statically_rejected
    s.bounds_rejected s.certified s.cert_cache_hits
    s.warm_starts s.store_samples s.finetune_rounds
    s.native_compiles s.native_kernels s.descent_trials s.descent_sweeps
    s.descent_improvements s.descent_plateau_stops s.backoff_seconds s.score_hits
    s.score_misses s.score_evictions s.score_batches s.score_wall_seconds
    s.score_work_seconds (score_speedup s) phase_fields

type t = {
  mutable trials : int;
  mutable measured : int;
  mutable cache_hits : int;
  mutable build_errors : int;
  mutable compile_errors : int;
  mutable run_errors : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable batches : int;
  mutable statically_rejected : int;
  mutable bounds_rejected : int;
  mutable certified : int;
  mutable cert_cache_hits : int;
  mutable warm_starts : int;
  mutable store_samples : int;
  mutable finetune_rounds : int;
  mutable native_compiles : int;
  mutable native_kernels : int;
  mutable descent_trials : int;
  mutable descent_sweeps : int;
  mutable descent_improvements : int;
  mutable descent_plateau_stops : int;
  mutable backoff_seconds : float;
  mutable score_hits : int;
  mutable score_misses : int;
  mutable score_evictions : int;
  mutable score_batches : int;
  mutable score_wall_seconds : float;
  mutable score_work_seconds : float;
  phase : float array;
}

let create () =
  {
    trials = 0;
    measured = 0;
    cache_hits = 0;
    build_errors = 0;
    compile_errors = 0;
    run_errors = 0;
    timeouts = 0;
    retries = 0;
    batches = 0;
    statically_rejected = 0;
    bounds_rejected = 0;
    certified = 0;
    cert_cache_hits = 0;
    warm_starts = 0;
    store_samples = 0;
    finetune_rounds = 0;
    native_compiles = 0;
    native_kernels = 0;
    descent_trials = 0;
    descent_sweeps = 0;
    descent_improvements = 0;
    descent_plateau_stops = 0;
    backoff_seconds = 0.0;
    score_hits = 0;
    score_misses = 0;
    score_evictions = 0;
    score_batches = 0;
    score_wall_seconds = 0.0;
    score_work_seconds = 0.0;
    phase = Array.make (Array.length phases) 0.0;
  }

let reset t =
  t.trials <- 0;
  t.measured <- 0;
  t.cache_hits <- 0;
  t.build_errors <- 0;
  t.compile_errors <- 0;
  t.run_errors <- 0;
  t.timeouts <- 0;
  t.retries <- 0;
  t.batches <- 0;
  t.statically_rejected <- 0;
  t.bounds_rejected <- 0;
  t.certified <- 0;
  t.cert_cache_hits <- 0;
  t.warm_starts <- 0;
  t.store_samples <- 0;
  t.finetune_rounds <- 0;
  t.native_compiles <- 0;
  t.native_kernels <- 0;
  t.descent_trials <- 0;
  t.descent_sweeps <- 0;
  t.descent_improvements <- 0;
  t.descent_plateau_stops <- 0;
  t.backoff_seconds <- 0.0;
  t.score_hits <- 0;
  t.score_misses <- 0;
  t.score_evictions <- 0;
  t.score_batches <- 0;
  t.score_wall_seconds <- 0.0;
  t.score_work_seconds <- 0.0;
  Array.fill t.phase 0 (Array.length t.phase) 0.0

let stats t =
  {
    trials = t.trials;
    measured = t.measured;
    cache_hits = t.cache_hits;
    build_errors = t.build_errors;
    compile_errors = t.compile_errors;
    run_errors = t.run_errors;
    timeouts = t.timeouts;
    retries = t.retries;
    batches = t.batches;
    statically_rejected = t.statically_rejected;
    bounds_rejected = t.bounds_rejected;
    certified = t.certified;
    cert_cache_hits = t.cert_cache_hits;
    warm_starts = t.warm_starts;
    store_samples = t.store_samples;
    finetune_rounds = t.finetune_rounds;
    native_compiles = t.native_compiles;
    native_kernels = t.native_kernels;
    descent_trials = t.descent_trials;
    descent_sweeps = t.descent_sweeps;
    descent_improvements = t.descent_improvements;
    descent_plateau_stops = t.descent_plateau_stops;
    backoff_seconds = t.backoff_seconds;
    score_hits = t.score_hits;
    score_misses = t.score_misses;
    score_evictions = t.score_evictions;
    score_batches = t.score_batches;
    score_wall_seconds = t.score_wall_seconds;
    score_work_seconds = t.score_work_seconds;
    phase_seconds =
      Array.to_list
        (Array.map (fun p -> (phase_name p, t.phase.(phase_index p))) phases);
  }

let restore t (s : stats) =
  t.trials <- s.trials;
  t.measured <- s.measured;
  t.cache_hits <- s.cache_hits;
  t.build_errors <- s.build_errors;
  t.compile_errors <- s.compile_errors;
  t.run_errors <- s.run_errors;
  t.timeouts <- s.timeouts;
  t.retries <- s.retries;
  t.batches <- s.batches;
  t.statically_rejected <- s.statically_rejected;
  t.bounds_rejected <- s.bounds_rejected;
  t.certified <- s.certified;
  t.cert_cache_hits <- s.cert_cache_hits;
  t.warm_starts <- s.warm_starts;
  t.store_samples <- s.store_samples;
  t.finetune_rounds <- s.finetune_rounds;
  t.native_compiles <- s.native_compiles;
  t.native_kernels <- s.native_kernels;
  t.descent_trials <- s.descent_trials;
  t.descent_sweeps <- s.descent_sweeps;
  t.descent_improvements <- s.descent_improvements;
  t.descent_plateau_stops <- s.descent_plateau_stops;
  t.backoff_seconds <- s.backoff_seconds;
  t.score_hits <- s.score_hits;
  t.score_misses <- s.score_misses;
  t.score_evictions <- s.score_evictions;
  t.score_batches <- s.score_batches;
  t.score_wall_seconds <- s.score_wall_seconds;
  t.score_work_seconds <- s.score_work_seconds;
  List.iteri
    (fun i (_, v) -> if i < Array.length t.phase then t.phase.(i) <- v)
    s.phase_seconds

let add_phase t phase seconds =
  let i = phase_index phase in
  t.phase.(i) <- t.phase.(i) +. seconds

let time t phase f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_phase t phase (Unix.gettimeofday () -. t0)) f

let record_result t ?(attempts = 1) ?(cache_hit = false) latency =
  t.trials <- t.trials + attempts;
  t.retries <- t.retries + max 0 (attempts - 1);
  if cache_hit then t.cache_hits <- t.cache_hits + 1
  else
    match latency with
    | Ok _ -> t.measured <- t.measured + 1
    | Error (Protocol.Build_error _) -> t.build_errors <- t.build_errors + 1
    | Error (Protocol.Compile_error _) ->
      t.compile_errors <- t.compile_errors + 1
    | Error (Protocol.Bounds_error _) ->
      t.bounds_rejected <- t.bounds_rejected + 1
    | Error (Protocol.Run_error _) -> t.run_errors <- t.run_errors + 1
    | Error Protocol.Timeout -> t.timeouts <- t.timeouts + 1

let add_backoff t seconds = t.backoff_seconds <- t.backoff_seconds +. seconds

let incr_statically_rejected t =
  t.statically_rejected <- t.statically_rejected + 1

(* Certification events observed by the service's native gate: [hit]
   distinguishes memo-table hits from fresh certifications. *)
let add_certification t ~hit =
  if hit then t.cert_cache_hits <- t.cert_cache_hits + 1
  else t.certified <- t.certified + 1

let incr_warm_starts t = t.warm_starts <- t.warm_starts + 1
let add_store_samples t n = t.store_samples <- t.store_samples + n
let incr_finetune_rounds t = t.finetune_rounds <- t.finetune_rounds + 1

let add_native_compiles t ~compiles ~kernels =
  t.native_compiles <- t.native_compiles + compiles;
  t.native_kernels <- t.native_kernels + kernels

(* One completed descent sweep: [trials] is the Service.trials delta its
   winner batch consumed (so descent trials are counted once, inside the
   global budget), [improved] whether the measured sweep beat the
   incumbent. *)
let add_descent_sweep t ~trials ~improved =
  t.descent_sweeps <- t.descent_sweeps + 1;
  t.descent_trials <- t.descent_trials + trials;
  if improved then t.descent_improvements <- t.descent_improvements + 1

let incr_descent_plateau_stops t =
  t.descent_plateau_stops <- t.descent_plateau_stops + 1
let incr_batches t = t.batches <- t.batches + 1

let add_score_probe t ~hit =
  if hit then t.score_hits <- t.score_hits + 1
  else t.score_misses <- t.score_misses + 1

let add_score_batch t ~hits ~misses ~evictions ~wall ~work =
  t.score_hits <- t.score_hits + hits;
  t.score_misses <- t.score_misses + misses;
  t.score_evictions <- t.score_evictions + evictions;
  t.score_batches <- t.score_batches + 1;
  t.score_wall_seconds <- t.score_wall_seconds +. wall;
  t.score_work_seconds <- t.score_work_seconds +. work
