open Ansor_sched

type failure =
  | Build_error of string
  | Run_error of string
  | Timeout

let pp_failure fmt = function
  | Build_error msg -> Format.fprintf fmt "build error: %s" msg
  | Run_error msg -> Format.fprintf fmt "run error: %s" msg
  | Timeout -> Format.pp_print_string fmt "timeout"

let failure_to_string f = Format.asprintf "%a" pp_failure f

type request = { state : State.t; prog : Prog.t option }

let request ?prog state = { state; prog }

type result = {
  latency : (float, failure) Stdlib.result;
  cache_hit : bool;
  attempts : int;
  key : string;
}

let is_ok r = Result.is_ok r.latency
