open Ansor_sched

type failure =
  | Build_error of string
  | Compile_error of string
  | Bounds_error of string
  | Run_error of string
  | Timeout

let pp_failure fmt = function
  | Build_error msg -> Format.fprintf fmt "build error: %s" msg
  | Compile_error msg -> Format.fprintf fmt "compile error: %s" msg
  | Bounds_error msg -> Format.fprintf fmt "bounds error: %s" msg
  | Run_error msg -> Format.fprintf fmt "run error: %s" msg
  | Timeout -> Format.pp_print_string fmt "timeout"

let failure_to_string f = Format.asprintf "%a" pp_failure f

type backend = Sim | Native

let backend_name = function Sim -> "sim" | Native -> "native"

let backend_of_string = function
  | "sim" -> Ok Sim
  | "native" -> Ok Native
  | s -> Error (Printf.sprintf "unknown backend %s (expected: sim, native)" s)

type request = { state : State.t; prog : Prog.t option }

let request ?prog state = { state; prog }

type result = {
  latency : (float, failure) Stdlib.result;
  cache_hit : bool;
  attempts : int;
  key : string;
}

let is_ok r = Result.is_ok r.latency

type outcome = {
  out_latency : (float, failure) Stdlib.result;
  out_attempts : int;
}

type native_report = {
  nr_outcomes : (string * outcome) array;
  nr_compile_seconds : float;
  nr_run_seconds : float;
  nr_compiles : int;
  nr_kernels : int;
}

let empty_native_report =
  {
    nr_outcomes = [||];
    nr_compile_seconds = 0.0;
    nr_run_seconds = 0.0;
    nr_compiles = 0;
    nr_kernels = 0;
  }
