let run ?deadline ?on_expired ~num_workers f items =
  let expired =
    match deadline with
    | None -> fun () -> false
    | Some d -> fun () -> Unix.gettimeofday () > d
  in
  let apply x =
    match on_expired with
    | Some g when expired () -> g x
    | _ -> f x
  in
  let n = Array.length items in
  let workers = max 1 (min num_workers n) in
  if n = 0 then [||]
  else if workers = 1 then Array.map apply items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* distinct indices per fetch: no two domains write the same slot *)
          results.(i) <- Some (apply items.(i));
          go ()
        end
      in
      go ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    let pending = ref None in
    (* run one worker on the calling domain, but always join the others *)
    (try worker () with e -> pending := Some e);
    List.iter
      (fun d ->
        try Domain.join d with e -> if Option.is_none !pending then pending := Some e)
      spawned;
    (match !pending with Some e -> raise e | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end
