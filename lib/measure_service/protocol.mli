(** The measurement request/result protocol.

    Mirrors the paper's measurer interface (Figure 4): a batch of candidate
    schedules goes in, and {e every} candidate comes back with either an
    observed latency or a classified failure — nothing is silently dropped.
    Failure classes follow the build/run split of the original RPC measurer:

    - {!Build_error}: the candidate does not lower to a program, or static
      validation rejects it (the paper's compilation failure);
    - {!Run_error}: the backend failed while "executing" the program
      (injected by the fault hook, or a non-finite simulator estimate);
      transient by assumption, so the service retries it with backoff;
    - {!Timeout}: the program's cost exceeded the configured per-program
      ceiling (the paper kills programs that run too long). *)

open Ansor_sched

type failure =
  | Build_error of string
  | Run_error of string
  | Timeout

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

type request = {
  state : State.t;  (** the candidate schedule *)
  prog : Prog.t option;
      (** the lowered program, if the caller already has it; [None] makes
          the service lower (and possibly fail) itself *)
}

val request : ?prog:Prog.t -> State.t -> request

type result = {
  latency : (float, failure) Stdlib.result;
      (** observed latency in seconds, or the classified failure *)
  cache_hit : bool;
      (** the latency came from the dedup cache (no trial consumed) *)
  attempts : int;
      (** backend runs performed: 0 for build errors and cache hits, >= 2
          when transient failures were retried *)
  key : string;
      (** canonical program key (see {!Cache.key_of_prog}); [""] when the
          candidate did not lower *)
}

val is_ok : result -> bool
