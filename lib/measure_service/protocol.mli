(** The measurement request/result protocol.

    Mirrors the paper's measurer interface (Figure 4): a batch of candidate
    schedules goes in, and {e every} candidate comes back with either an
    observed latency or a classified failure — nothing is silently dropped.
    Failure classes follow the build/run split of the original RPC measurer:

    - {!Build_error}: the candidate does not lower to a program, or static
      validation rejects it (the paper's compilation failure);
    - {!Compile_error}: the native backend's C compiler rejected the
      emitted kernel.  Deterministic — recompiling the same source cannot
      succeed — so it is {e never} retried and, like {!Build_error},
      consumes no trials;
    - {!Bounds_error}: the memory-safety certifier refused to let the
      native backend compile the program (an [Unsafe] out-of-bounds
      witness, or [Unknown] without guarded codegen).  Deterministic
      like {!Compile_error}: never retried, zero trials, and never
      cached as a latency;
    - {!Run_error}: the backend failed while "executing" the program
      (injected by the fault hook, a non-finite simulator estimate, or a
      crashed native binary); transient by assumption, so the service
      retries it with backoff;
    - {!Timeout}: the program's cost exceeded the configured per-program
      ceiling (the paper kills programs that run too long). *)

open Ansor_sched

type failure =
  | Build_error of string
  | Compile_error of string
  | Bounds_error of string
  | Run_error of string
  | Timeout

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

(** Which measurement backend a service runs candidates on:
    - {!Sim}: the analytical hardware simulator (deterministic, fast);
    - {!Native}: gcc-compiled kernels timed on the host CPU (real
      wall-clock; see [Ansor_measure_native]). *)
type backend = Sim | Native

val backend_name : backend -> string
val backend_of_string : string -> (backend, string) result

type request = {
  state : State.t;  (** the candidate schedule *)
  prog : Prog.t option;
      (** the lowered program, if the caller already has it; [None] makes
          the service lower (and possibly fail) itself *)
}

val request : ?prog:Prog.t -> State.t -> request

type result = {
  latency : (float, failure) Stdlib.result;
      (** observed latency in seconds, or the classified failure *)
  cache_hit : bool;
      (** the latency came from the dedup cache (no trial consumed) *)
  attempts : int;
      (** backend runs performed: 0 for build errors and cache hits, >= 2
          when transient failures were retried *)
  key : string;
      (** canonical program key (see {!Cache.key_of_prog}); [""] when the
          candidate did not lower *)
}

val is_ok : result -> bool

type outcome = {
  out_latency : (float, failure) Stdlib.result;
  out_attempts : int;  (** backend runs performed (0 for compile errors) *)
}
(** What a pluggable batch backend reports per candidate — the service
    folds these into {!result}s, telemetry and the dedup cache. *)

type native_report = {
  nr_outcomes : (string * outcome) array;
      (** one outcome per submitted (key, program), any order *)
  nr_compile_seconds : float;  (** wall-clock spent compiling *)
  nr_run_seconds : float;  (** wall-clock spent timing kernels *)
  nr_compiles : int;  (** compiler invocations (batched TUs) *)
  nr_kernels : int;  (** kernels submitted to those invocations *)
}
(** A native backend's answer for one batch: classified outcomes plus the
    compile/run attribution the service feeds into telemetry. *)

val empty_native_report : native_report
