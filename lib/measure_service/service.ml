open Ansor_sched
module Rng = Ansor_util.Rng
module Machine = Ansor_machine.Machine
module Measurer = Ansor_machine.Measurer

type config = {
  num_workers : int;
  timeout : float;
  batch_deadline : float;
  max_retries : int;
  backoff : float;
  noise : float;
  validate : bool;
  backend : Protocol.backend;
  allow_unproven : bool;
}

let default_config =
  {
    num_workers = 1;
    timeout = infinity;
    batch_deadline = infinity;
    max_retries = 2;
    backoff = 0.0;
    noise = 0.03;
    validate = false;
    backend = Protocol.Sim;
    allow_unproven = false;
  }

type fault_hook = key:string -> attempt:int -> Protocol.failure option

type native_runner =
  timeout:float ->
  deadline:float option ->
  max_retries:int ->
  num_workers:int ->
  (string * Prog.t) array ->
  Protocol.native_report

type t = {
  config : config;
  machine : Machine.t;
  measurer : Measurer.t;
  cache : Cache.t;
  telemetry : Telemetry.t;
  seed : int;
  fault_hook : fault_hook option;
  native_runner : native_runner option;
}

let create ?(config = default_config) ?cache ?fault_hook ?native_runner ~seed
    machine =
  (match (config.backend, native_runner) with
  | Protocol.Native, None ->
    invalid_arg
      "Measure_service.create: backend Native requires a native_runner \
       (see Ansor_measure_native.Measure_native.runner)"
  | _ -> ());
  {
    config;
    machine;
    measurer = Measurer.create ~noise:config.noise ~seed machine;
    cache = (match cache with Some c -> c | None -> Cache.create ());
    telemetry = Telemetry.create ();
    seed;
    fault_hook;
    native_runner;
  }

let backend t = t.config.backend

let machine t = t.machine
let measurer t = t.measurer
let num_workers t = t.config.num_workers
let cache t = t.cache
let telemetry t = t.telemetry
let stats t = Telemetry.stats t.telemetry
let trials t = (stats t).Telemetry.trials
let true_latency t prog = Measurer.true_latency t.measurer prog

(* ---- per-candidate measurement (runs on worker domains) ----------------- *)

(* Everything a worker reports back; telemetry and the cache are only
   touched by the calling domain. *)
type run_outcome = {
  run_latency : (float, Protocol.failure) result;
  run_attempts : int;
  run_backoff : float;
}

(* The RNG stream is a pure function of (root seed, canonical key): the
   observed latency does not depend on which domain ran the candidate or in
   which order — the determinism contract of the whole service. *)
let candidate_rng t key = Rng.create (t.seed lxor Hashtbl.hash key)

(* The wall-clock check happens between runs, never inside one: the
   simulator backend cannot be interrupted mid-call (OCaml domains cannot
   be killed safely), so the deadline bounds how much {e additional} work a
   worker takes on, and the batch-level pre-check in {!measure_batch}
   bounds the queue behind a straggler. *)
let deadline_expired = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let measure_candidate ?deadline t key prog =
  let rng = candidate_rng t key in
  let rec attempt n backoff_acc =
    let injected =
      match t.fault_hook with
      | None -> None
      | Some hook -> hook ~key ~attempt:n
    in
    let outcome =
      match injected with
      | Some failure -> Error failure
      | None ->
        let latency = Measurer.measure_with t.measurer ~rng prog in
        if not (Float.is_finite latency) || latency <= 0.0 then
          Error (Protocol.Run_error "non-finite latency")
        else if latency > t.config.timeout then Error Protocol.Timeout
        else Ok latency
    in
    match outcome with
    | Error (Protocol.Run_error _)
      when n <= t.config.max_retries && not (deadline_expired deadline) ->
      (* transient: back off and re-run *)
      let delay = t.config.backoff *. (2.0 ** float_of_int (n - 1)) in
      if delay > 0.0 then Unix.sleepf delay;
      attempt (n + 1) (backoff_acc +. delay)
    | outcome ->
      { run_latency = outcome; run_attempts = n; run_backoff = backoff_acc }
  in
  attempt 1 0.0

(* ---- batch protocol ------------------------------------------------------ *)

type prepared =
  | Broken of string  (* did not lower / failed validation *)
  | Uncertified of string * string  (* key, refused by the bounds gate *)
  | Hit of string * float  (* already in the cache *)
  | First of string * Prog.t  (* cache miss, first occurrence in the batch *)
  | Dup of string  (* cache miss, duplicate of an earlier First *)

(* The memory-safety gate in front of the native backend: gcc-compiled
   candidates run in this process, so an [Unsafe] program (constructive
   out-of-bounds witness) is refused outright, and an [Unknown] one is
   refused unless the caller opted into guarded codegen
   ([allow_unproven] — the generated kernel then aborts cleanly on the
   first violation instead of corrupting the harness).  The refusal is
   deterministic, so like a compile error it is never retried, consumes
   zero trials, and is checked {e before} the dedup cache: a latency
   recorded for an out-of-bounds program is garbage even when some past
   session managed to record one.  Verdicts are memoized process-wide by
   canonical program hash, so re-certifying the populations evolution
   already filtered is a table lookup. *)
let certification_gate t prog =
  match t.config.backend with
  | Protocol.Sim -> None
  | Protocol.Native ->
    let verdict, hit = Ansor_analysis.Bounds.certify' prog in
    Telemetry.add_certification t.telemetry ~hit;
    (match verdict with
    | Ansor_analysis.Bounds.Certified -> None
    | Ansor_analysis.Bounds.Unsafe w ->
      Some (Ansor_analysis.Bounds.witness_to_string w)
    | Ansor_analysis.Bounds.Unknown ->
      if t.config.allow_unproven then None
      else
        Some
          "bounds not proved (certifier verdict: unknown); enable guarded \
           codegen (allow_unproven + ANSOR_BOUNDS_CHECK=1) to measure \
           anyway")

let prepare t seen_in_batch (req : Protocol.request) =
  let lowered =
    match req.prog with
    | Some prog -> Ok prog
    | None -> (
      match Lower.lower req.state with
      | prog -> Ok prog
      | exception State.Illegal msg -> Error msg)
  in
  match lowered with
  | Error msg -> Broken msg
  | Ok prog -> (
    let validation =
      if not t.config.validate then []
      else Validate.check prog
    in
    match validation with
    | d :: _ -> Broken (Format.asprintf "%a" Diagnostic.pp d)
    | [] -> (
      let key = Cache.key_of_prog ~backend:t.config.backend t.machine prog in
      match certification_gate t prog with
      | Some msg -> Uncertified (key, msg)
      | None -> (
        match Cache.find t.cache key with
        | Some latency -> Hit (key, latency)
        | None ->
          if Hashtbl.mem seen_in_batch key then Dup key
          else begin
            Hashtbl.replace seen_in_batch key ();
            First (key, prog)
          end)))

let measure_batch t reqs =
  Telemetry.time t.telemetry Telemetry.Measure (fun () ->
      Telemetry.incr_batches t.telemetry;
      let seen = Hashtbl.create 64 in
      let prepared = Array.of_list (List.map (prepare t seen) reqs) in
      (* fan the unique cache misses out across the domain pool *)
      let misses =
        Array.of_list
          (Array.to_list prepared
          |> List.filter_map (function
               | First (key, prog) -> Some (key, prog)
               | Broken _ | Uncertified _ | Hit _ | Dup _ -> None))
      in
      let deadline =
        if t.config.batch_deadline = infinity then None
        else Some (Unix.gettimeofday () +. t.config.batch_deadline)
      in
      let expired_outcome (key, _) =
        (* never started: the batch's wall-clock budget is exhausted *)
        ( key,
          {
            run_latency = Error Protocol.Timeout;
            run_attempts = 0;
            run_backoff = 0.0;
          } )
      in
      let outcomes =
        match (t.config.backend, t.native_runner) with
        | Protocol.Sim, _ | Protocol.Native, None ->
          Pool.run ?deadline ~on_expired:expired_outcome
            ~num_workers:t.config.num_workers
            (fun (key, prog) -> (key, measure_candidate ?deadline t key prog))
            misses
        | Protocol.Native, Some runner ->
          let report =
            runner ~timeout:t.config.timeout ~deadline
              ~max_retries:t.config.max_retries
              ~num_workers:t.config.num_workers misses
          in
          Telemetry.add_phase t.telemetry Telemetry.Compile
            report.Protocol.nr_compile_seconds;
          Telemetry.add_phase t.telemetry Telemetry.Native_run
            report.Protocol.nr_run_seconds;
          Telemetry.add_native_compiles t.telemetry
            ~compiles:report.Protocol.nr_compiles
            ~kernels:report.Protocol.nr_kernels;
          Array.map
            (fun (key, (o : Protocol.outcome)) ->
              ( key,
                {
                  run_latency = o.Protocol.out_latency;
                  run_attempts = o.Protocol.out_attempts;
                  run_backoff = 0.0;
                } ))
            report.Protocol.nr_outcomes
      in
      let by_key = Hashtbl.create (Array.length outcomes) in
      Array.iter (fun (key, o) -> Hashtbl.replace by_key key o) outcomes;
      (* sequentially: account telemetry, fill the cache, assemble results *)
      Array.iter
        (fun (_, o) ->
          Telemetry.record_result t.telemetry ~attempts:o.run_attempts
            o.run_latency;
          Telemetry.add_backoff t.telemetry o.run_backoff)
        outcomes;
      Array.iter
        (fun (key, o) ->
          match o.run_latency with
          | Ok latency -> Cache.add t.cache key latency
          | Error _ -> ())
        outcomes;
      let result_of = function
        | Broken msg ->
          let r : Protocol.result =
            {
              latency = Error (Protocol.Build_error msg);
              cache_hit = false;
              attempts = 0;
              key = "";
            }
          in
          Telemetry.record_result t.telemetry ~attempts:0 r.Protocol.latency;
          r
        | Uncertified (key, msg) ->
          let r : Protocol.result =
            {
              latency = Error (Protocol.Bounds_error msg);
              cache_hit = false;
              attempts = 0;
              key;
            }
          in
          Telemetry.record_result t.telemetry ~attempts:0 r.Protocol.latency;
          r
        | Hit (key, latency) ->
          Telemetry.record_result t.telemetry ~attempts:0 ~cache_hit:true
            (Ok latency);
          { latency = Ok latency; cache_hit = true; attempts = 0; key }
        | First (key, _) ->
          let o = Hashtbl.find by_key key in
          { latency = o.run_latency; cache_hit = false; attempts = o.run_attempts; key }
        | Dup key -> (
          let o = Hashtbl.find by_key key in
          match o.run_latency with
          | Ok latency ->
            (* measured once, served to the duplicate from the cache *)
            Telemetry.record_result t.telemetry ~attempts:0 ~cache_hit:true
              (Ok latency);
            { latency = Ok latency; cache_hit = true; attempts = 0; key }
          | Error _ as e ->
            Telemetry.record_result t.telemetry ~attempts:0 e;
            { latency = e; cache_hit = false; attempts = 0; key })
      in
      Array.to_list (Array.map result_of prepared))

let measure_state t state =
  match measure_batch t [ Protocol.request state ] with
  | [ r ] -> r
  | _ -> assert false
