(** A Domain-based fork/join worker pool (OCaml 5 multicore).

    [run ~num_workers f items] applies [f] to every element of [items] on
    up to [num_workers] domains and returns the results {e in input order}.
    Work is distributed dynamically (shared atomic cursor), so stragglers do
    not serialize the batch; determinism is the {e caller's} contract: [f]
    must depend only on its argument (per-item RNG streams, no shared
    mutable state), and then the result array is identical for any worker
    count or schedule.

    An exception raised by [f] on any item aborts the batch and is
    re-raised — measurement services classify their own failures instead of
    throwing. *)

val run : num_workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [num_workers <= 1] (or a singleton batch) runs inline with no domain
    spawned. *)
