(** A Domain-based fork/join worker pool (OCaml 5 multicore).

    [run ~num_workers f items] applies [f] to every element of [items] on
    up to [num_workers] domains and returns the results {e in input order}.
    Work is distributed dynamically (shared atomic cursor), so stragglers do
    not serialize the batch; determinism is the {e caller's} contract: [f]
    must depend only on its argument (per-item RNG streams, no shared
    mutable state), and then the result array is identical for any worker
    count or schedule.

    An exception raised by [f] on any item aborts the batch and is
    re-raised — measurement services classify their own failures instead of
    throwing. *)

val run :
  ?deadline:float ->
  ?on_expired:('a -> 'b) ->
  num_workers:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [num_workers <= 1] (or a singleton batch) runs inline with no domain
    spawned.

    [deadline] is an absolute wall-clock instant ([Unix.gettimeofday]
    scale): once it passes, items not yet started are mapped through
    [on_expired] instead of [f], so one stuck or pathological item cannot
    hold the whole batch (and every worker domain behind it) hostage.
    Every slot is still filled — results stay in input order with one
    result per item.  Without [on_expired] the deadline has no effect. *)
