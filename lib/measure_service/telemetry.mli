(** Telemetry: counters and per-phase wall-clock timers for a tuning
    session.

    The single source of truth for trial accounting: every backend
    measurement run (including retries) increments [trials] here — the
    scheduler's budget math and the CLI both read these stats.  The phase
    timers break a tuner round into the five stages of the search loop
    (sample / evolve / model-rank / measure / retrain), answering "where
    does round time go". *)

type phase =
  | Sample
  | Evolve
  | Model_rank
  | Measure
  | Retrain
  | Compile
  | Native_run
  | Descent

val phase_name : phase -> string

(** An immutable snapshot of the counters. *)
type stats = {
  trials : int;  (** backend measurement runs, retries included *)
  measured : int;  (** candidates that returned an [Ok] latency *)
  cache_hits : int;  (** candidates served from the dedup cache *)
  build_errors : int;
  compile_errors : int;
      (** native-backend candidates the C compiler rejected (deterministic,
          never retried, no trials consumed) *)
  run_errors : int;  (** candidates that exhausted their retries *)
  timeouts : int;
  retries : int;  (** extra runs caused by transient failures *)
  batches : int;  (** measure-batch calls *)
  statically_rejected : int;
      (** evolution mutants discarded by the static race detector before
          ever reaching the measurement backend *)
  bounds_rejected : int;
      (** candidates the memory-safety certifier refused to hand to the
          native backend ([Bounds_error]: an out-of-bounds witness, or an
          unproven program without guarded codegen) *)
  certified : int;
      (** fresh certifications performed by the native gate (memo-table
          misses; every verdict class counts) *)
  cert_cache_hits : int;
      (** native-gate certifications served from the verdict memo table *)
  warm_starts : int;
      (** cost models seeded from a pretrained model-store bundle instead
          of starting cold *)
  store_samples : int;
      (** measured samples newly appended to the cross-task model store *)
  finetune_rounds : int;
      (** retrains that fine-tuned a warm pretrained base (as opposed to
          training from scratch) *)
  native_compiles : int;
      (** native-backend compiler invocations (one per batched TU) *)
  native_kernels : int;
      (** kernels submitted to those invocations; [native_kernels /
          native_compiles] is the realized batching factor *)
  descent_trials : int;
      (** measurement trials consumed by coordinate-descent winner batches
          (a subset of [trials], never double-counted) *)
  descent_sweeps : int;  (** coordinate sweeps executed by the descent stage *)
  descent_improvements : int;
      (** descent sweeps whose measured winners improved the incumbent *)
  descent_plateau_stops : int;
      (** descent stages terminated by the measured-plateau rule (k
          non-improving sweeps) *)
  backoff_seconds : float;  (** total retry backoff delay *)
  score_hits : int;
      (** batch-scoring candidates served from the feature/score cache
          (featurization skipped) *)
  score_misses : int;  (** candidates lowered + featurized from scratch *)
  score_evictions : int;  (** score-cache LRU evictions *)
  score_batches : int;  (** batch-scoring calls *)
  score_wall_seconds : float;
      (** wall-clock time spent in the scoring service's parallel
          fan-out *)
  score_work_seconds : float;
      (** summed per-chunk work time of the same fan-outs; the ratio
          [score_work_seconds / score_wall_seconds] is the realized
          parallel speedup (~1.0 with one worker) *)
  phase_seconds : (string * float) list;
      (** wall-clock seconds per phase, in declaration order *)
}

val empty_stats : stats

val total : stats list -> stats
(** Field-wise sum — aggregates per-task services into session totals. *)

val results : stats -> int
(** Classified results delivered: measured + cache hits + failures. *)

val summary : stats -> string
(** One line for round/session logs, e.g.
    ["trials=96 ok=90 cache=4 build_err=0 run_err=2 timeout=0 retries=3 | sample=0.12s evolve=0.48s ..."]. *)

val to_json : stats -> string
(** Stable single-object JSON encoding of every field. *)

type t

val create : unit -> t
val reset : t -> unit
val stats : t -> stats

val restore : t -> stats -> unit
(** Overwrites every counter and phase timer from a snapshot — the inverse
    of {!stats}, used by checkpoint recovery so a resumed session's trial
    accounting (the budget unit) continues where the interrupted one
    stopped. *)

val time : t -> phase -> (unit -> 'a) -> 'a
(** Runs the thunk and adds its wall-clock duration to the phase (also on
    exception). *)

val add_phase : t -> phase -> float -> unit

val record_result : t -> ?attempts:int -> ?cache_hit:bool ->
  (float, Protocol.failure) Stdlib.result -> unit
(** Accounts one classified measurement result: bumps [trials] by
    [attempts], [retries] by [max 0 (attempts - 1)], and the matching
    outcome counter. *)

val add_backoff : t -> float -> unit
val incr_batches : t -> unit

val incr_statically_rejected : t -> unit
(** One evolution mutant rejected by the pre-measurement static filter. *)

val add_certification : t -> hit:bool -> unit
(** One certification event at the native gate: a memo-table hit
    ([~hit:true]) or a fresh run of the bounds certifier. *)

val incr_warm_starts : t -> unit
(** One cost model seeded from a pretrained store model. *)

val add_store_samples : t -> int -> unit
(** [n] measured samples newly persisted to the model store. *)

val incr_finetune_rounds : t -> unit
(** One retrain that fine-tuned a warm pretrained base. *)

val add_native_compiles : t -> compiles:int -> kernels:int -> unit
(** Accounts one native batch's compilation fan-out: [compiles] gcc
    invocations covering [kernels] kernels. *)

val add_descent_sweep : t -> trials:int -> improved:bool -> unit
(** Accounts one completed coordinate-descent sweep: the [Service.trials]
    delta its winner batch consumed (so descent trials stay inside the
    global budget and are counted exactly once) and whether the measured
    winners improved the incumbent. *)

val incr_descent_plateau_stops : t -> unit
(** One descent stage terminated by the measured-plateau stop rule. *)

val score_speedup : stats -> float
(** Realized parallel speedup of the scoring fan-out
    ([score_work_seconds / score_wall_seconds]; 1.0 when no batch ran). *)

val add_score_probe : t -> hit:bool -> unit
(** Accounts one single-candidate score-cache probe (the non-batched
    scoring path: beam search, crossover node scores). *)

val add_score_batch :
  t -> hits:int -> misses:int -> evictions:int -> wall:float -> work:float ->
  unit
(** Accounts one batch-scoring call from the cost model's scoring
    service: cache hit/miss/eviction deltas plus wall-clock and summed
    per-chunk work seconds of its parallel fan-out. *)
