module Tuner = Ansor_search.Tuner
module Task = Ansor_search.Task
module Service = Ansor_measure_service.Service
module Telemetry = Ansor_measure_service.Telemetry
module Cache = Ansor_measure_service.Cache
module Rng = Ansor_util.Rng

type objective =
  | F1_sum
  | F2_requirements of float array
  | F3_geomean_speedup of float array
  | F4_early_stopping of { patience : int }
  | Custom of (float array -> float)

type network = { net_name : string; task_weights : (int * int) list }

type options = {
  objective : objective;
  alpha : float;
  beta : float;
  backward_window : int;
  eps_greedy : float;
  tuner_options : Tuner.options;
  service_config : Service.config;
  seed : int;
}

let default_options =
  {
    objective = F1_sum;
    alpha = 0.2;
    beta = 2.0;
    backward_window = 3;
    eps_greedy = 0.05;
    tuner_options = Tuner.ansor_options;
    service_config = Service.default_config;
    seed = 0;
  }

type task_state = {
  tuner : Tuner.t;
  service : Service.t;
  mutable history : float list;  (* best latency after each unit, newest first *)
  mutable no_improve : int;
  mutable dead : bool;  (* no further progress possible *)
}

type t = {
  options : options;
  tasks : Task.t array;
  networks : network list;
  states : task_state array;
  shr : Tuner.Shared.t;
  rng : Rng.t;
  class_keys : string array;
  mutable curve_rev : (int * float array) list;
}

(* Structural similarity class: the workload key with concrete sizes
   blanked out — subgraphs of the same shape family land together.
   Shared with the registry and the model store (Ansor_util.Task_key),
   so 512 and 1024 variants of one operator fall in the same class. *)
let class_key task = Ansor_util.Task_key.class_key (Task.key task)

let create ?native_runner options ~tasks ~networks =
  if Array.length tasks = 0 then invalid_arg "Scheduler.create: no tasks";
  if networks = [] then invalid_arg "Scheduler.create: no networks";
  List.iter
    (fun n ->
      List.iter
        (fun (i, w) ->
          if i < 0 || i >= Array.length tasks then
            invalid_arg "Scheduler.create: task index out of range";
          if w < 1 then invalid_arg "Scheduler.create: non-positive weight")
        n.task_weights)
    networks;
  let states =
    Array.mapi
      (fun i task ->
        {
          tuner = Tuner.create ~seed:(options.seed + i) options.tuner_options task;
          service =
            Service.create ~config:options.service_config ?native_runner
              ~seed:(options.seed + (31 * i) + 7)
              task.Task.machine;
          history = [];
          no_improve = 0;
          dead = false;
        })
      tasks
  in
  {
    options;
    tasks;
    networks;
    states;
    shr = Tuner.Shared.create ();
    rng = Rng.create (options.seed + 99);
    class_keys = Array.map class_key tasks;
    curve_rev = [];
  }

module Snapshot = struct
  type t = {
    rng_state : int64;
    tuners : Tuner.Snapshot.t array;
    histories : float list array;  (* newest first, as held in task_state *)
    no_improves : int array;
    deads : bool array;
    curve : (int * float array) list;  (* oldest first *)
    shared : Tuner.Shared.snapshot;
    caches : (string * float) list array;  (* per-task dedup-cache entries *)
    stats : Telemetry.stats array;  (* per-task service telemetry *)
  }

  let task_keys s = Array.map (fun (ts : Tuner.Snapshot.t) -> ts.task_key) s.tuners
end

let snapshot t =
  {
    Snapshot.rng_state = Rng.state t.rng;
    tuners = Array.map (fun s -> Tuner.snapshot s.tuner) t.states;
    histories = Array.map (fun s -> s.history) t.states;
    no_improves = Array.map (fun s -> s.no_improve) t.states;
    deads = Array.map (fun s -> s.dead) t.states;
    curve = List.rev t.curve_rev;
    shared = Tuner.Shared.snapshot t.shr;
    caches = Array.map (fun s -> Cache.entries (Service.cache s.service)) t.states;
    stats = Array.map (fun s -> Service.stats s.service) t.states;
  }

let restore t (s : Snapshot.t) =
  let n = Array.length t.states in
  if Array.length s.Snapshot.tuners <> n then
    Error
      (Printf.sprintf "snapshot has %d tasks, session has %d"
         (Array.length s.Snapshot.tuners) n)
  else begin
    (* validate every task key before mutating anything *)
    let mismatch = ref None in
    Array.iteri
      (fun i st ->
        let want = Task.key (Tuner.task st.tuner) in
        let got = s.Snapshot.tuners.(i).Tuner.Snapshot.task_key in
        if !mismatch = None && not (String.equal want got) then
          mismatch :=
            Some (Printf.sprintf "task %d: snapshot is for %s, not %s" i got want))
      t.states;
    match !mismatch with
    | Some msg -> Error msg
    | None ->
      Array.iteri
        (fun i st ->
          (match Tuner.restore st.tuner s.Snapshot.tuners.(i) with
          | Ok () -> ()
          | Error _ -> assert false (* keys were validated above *));
          st.history <- s.Snapshot.histories.(i);
          st.no_improve <- s.Snapshot.no_improves.(i);
          st.dead <- s.Snapshot.deads.(i);
          let cache = Service.cache st.service in
          List.iter (fun (k, v) -> Cache.add cache k v) s.Snapshot.caches.(i);
          Telemetry.restore (Service.telemetry st.service) s.Snapshot.stats.(i))
        t.states;
      Tuner.Shared.restore t.shr s.Snapshot.shared;
      Rng.set_state t.rng s.Snapshot.rng_state;
      t.curve_rev <- List.rev s.Snapshot.curve;
      Ok ()
  end

let allocations t = Array.map (fun s -> List.length s.history) t.states
let best_latency t i = Tuner.best_latency t.states.(i).tuner
let best_state t i = Tuner.best_state t.states.(i).tuner
let shared t = t.shr
let telemetry t i = Service.telemetry t.states.(i).service

let total_trials t =
  Array.fold_left (fun acc s -> acc + Service.trials s.service) 0 t.states

let stats t =
  Telemetry.total
    (Array.to_list (Array.map (fun s -> Service.stats s.service) t.states))

let finite g = if Float.is_finite g then g else 1.0 (* 1 second: "very slow" *)

let latencies t =
  Array.map (fun s -> finite (Tuner.best_latency s.tuner)) t.states

let network_latency_of g net =
  List.fold_left
    (fun acc (i, w) -> acc +. (float_of_int w *. g.(i)))
    0.0 net.task_weights

let network_latency t net = network_latency_of (latencies t) net

let objective_of t (netlats : float array) =
  match t.options.objective with
  | F1_sum | F4_early_stopping _ -> Array.fold_left ( +. ) 0.0 netlats
  | F2_requirements reqs ->
    let acc = ref 0.0 in
    Array.iteri
      (fun j l ->
        let r = if j < Array.length reqs then reqs.(j) else 0.0 in
        acc := !acc +. Float.max l r)
      netlats;
    !acc
  | F3_geomean_speedup refs ->
    let m = Array.length netlats in
    let s = ref 0.0 in
    Array.iteri
      (fun j l ->
        let b = if j < Array.length refs then refs.(j) else 1.0 in
        s := !s +. log (Float.max 1e-12 (b /. l)))
      netlats;
    -.exp (!s /. float_of_int m)
  | Custom f -> f netlats

let netlats_of t g =
  Array.of_list (List.map (network_latency_of g) t.networks)

let objective_value t = objective_of t (netlats_of t (latencies t))

(* df/dg_i by a backward numeric difference on the objective. *)
let dobj_dg t g i =
  let gi = g.(i) in
  let delta = Float.max (gi *. 0.01) 1e-12 in
  let f0 = objective_of t (netlats_of t g) in
  let g' = Array.copy g in
  g'.(i) <- gi -. delta;
  let f1 = objective_of t (netlats_of t g') in
  (f0 -. f1) /. delta

(* dg_i/dt_i per Appendix A. *)
let dg_dt t g i =
  let s = t.states.(i) in
  let ti = List.length s.history in
  if ti = 0 then Float.neg_infinity
  else begin
    let gi = g.(i) in
    let dt = min t.options.backward_window (ti - 1) in
    let backward =
      if dt <= 0 then 0.0
      else
        let past = List.nth s.history dt in
        (gi -. finite past) /. float_of_int dt
    in
    let optimistic = -.gi /. float_of_int ti in
    let similarity =
      let ci = Task.flops t.tasks.(i) in
      let max_v = ref 0.0 in
      Array.iteri
        (fun k sk ->
          if k <> i && String.equal t.class_keys.(k) t.class_keys.(i) then begin
            let gk = Tuner.best_latency sk.tuner in
            if Float.is_finite gk && gk > 0.0 then
              max_v := Float.max !max_v (Task.flops t.tasks.(k) /. gk)
          end)
        t.states;
      if !max_v > 0.0 then (t.options.beta *. ci /. !max_v) -. gi
      else Float.neg_infinity
    in
    let forward =
      if similarity = Float.neg_infinity then optimistic
      else Float.min optimistic similarity
    in
    (t.options.alpha *. backward) +. ((1.0 -. t.options.alpha) *. forward)
  end

let gradient t g i =
  let s = t.states.(i) in
  if s.dead then 0.0
  else
    match t.options.objective with
    | F4_early_stopping { patience } when s.no_improve >= patience -> 0.0
    | _ -> dobj_dg t g i *. dg_dt t g i

let allocate t i =
  let s = t.states.(i) in
  let before = Service.stats s.service in
  let before_best = Tuner.best_latency s.tuner in
  Tuner.round s.tuner t.shr s.service;
  let g = Tuner.best_latency s.tuner in
  s.history <- g :: s.history;
  (* dead = the round delivered no classified results at all (not even
     cache hits or failures): the tuner cannot propose anything new *)
  let after = Service.stats s.service in
  if Telemetry.results after = Telemetry.results before then s.dead <- true;
  if Float.is_finite before_best && g >= before_best *. 0.999 then
    s.no_improve <- s.no_improve + 1
  else s.no_improve <- 0;
  t.curve_rev <- (total_trials t, netlats_of t (latencies t)) :: t.curve_rev

let run ?(should_stop = fun () -> false) ?on_round t ~trial_budget =
  let allocate t i =
    allocate t i;
    match on_round with Some f -> f t | None -> ()
  in
  (* warm-up: one unit per task, round-robin (a resumed session's tasks
     already have history, so warm-up is naturally skipped) *)
  Array.iteri
    (fun i s ->
      if s.history = [] && total_trials t < trial_budget && not (should_stop ())
      then allocate t i)
    t.states;
  let n = Array.length t.tasks in
  let continue = ref true in
  (* a task whose rounds only return cache hits stays alive but consumes no
     trials; bound the number of consecutive trial-free allocations so the
     budget loop always terminates *)
  let stagnant = ref 0 in
  while
    (not (should_stop ()))
    && !continue
    && total_trials t < trial_budget
    && !stagnant < 3 * n
  do
    let alive =
      Array.to_list (Array.init n Fun.id)
      |> List.filter (fun i -> not t.states.(i).dead)
    in
    if alive = [] then continue := false
    else begin
      let i =
        if Rng.float t.rng 1.0 < t.options.eps_greedy then
          Rng.choice_list t.rng alive
        else begin
          let g = latencies t in
          let scored =
            List.map (fun i -> (i, Float.abs (gradient t g i))) alive
          in
          let best =
            List.fold_left
              (fun (bi, bs) (i, s) -> if s > bs then (i, s) else (bi, bs))
              (List.hd alive, -1.0) scored
          in
          fst best
        end
      in
      let before = total_trials t in
      allocate t i;
      if total_trials t = before then incr stagnant else stagnant := 0
    end
  done

let curve t = List.rev t.curve_rev
