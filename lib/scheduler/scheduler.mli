(** The task scheduler (§6): gradient-based allocation of measurement
    budget across the subgraphs of one or more DNNs.

    One allocation unit is one tuner round (a batch of measured programs).
    After a round-robin warm-up, each iteration computes the approximate
    gradient |df/dt_i| of the objective for every task (Appendix A) and
    allocates the next unit to the steepest task, with an epsilon-greedy
    exploration fallback.

    The gradient approximation combines a backward finite difference over
    the task's own history (weight [alpha]) with an optimistic forward
    guess: either the task reaches latency 0 with the same again effort,
    or it reaches the throughput of the best {e similar} task —
    structurally similar subgraphs, scaled by the task's FLOP count and
    the parameter [beta].

    Objectives follow Table 2: [F1] total latency of all networks, [F2]
    latency requirements per network, [F3] negated geometric mean of
    speedups over reference latencies, [F4] F1 with per-task early
    stopping.  Custom objectives can be supplied as a function of the
    per-task best latencies. *)

type objective =
  | F1_sum
  | F2_requirements of float array  (** latency requirement per network *)
  | F3_geomean_speedup of float array  (** reference latency per network *)
  | F4_early_stopping of { patience : int }
      (** F1, but a task that has not improved within its last [patience]
          allocations stops receiving budget *)
  | Custom of (float array -> float)
      (** user objective over the per-network latencies *)

type network = {
  net_name : string;
  task_weights : (int * int) list;
      (** (task index, number of appearances w_i) *)
}

type options = {
  objective : objective;
  alpha : float;  (** trust in the backward difference (paper: 0.2) *)
  beta : float;  (** trust in the similarity bound (paper: 2) *)
  backward_window : int;  (** Delta-t of the backward difference *)
  eps_greedy : float;  (** exploration probability (paper: 0.05) *)
  tuner_options : Ansor_search.Tuner.options;
  service_config : Ansor_measure_service.Service.config;
      (** measurement-service configuration (worker domains, timeout,
          retries) applied to every per-task service *)
  seed : int;
}

val default_options : options
(** F1, alpha 0.2, beta 2, window 3, epsilon 0.05, Ansor tuner, default
    measurement service. *)

type t

val create :
  ?native_runner:Ansor_measure_service.Service.native_runner ->
  options ->
  tasks:Ansor_search.Task.t array ->
  networks:network list ->
  t
(** [native_runner] is forwarded to every per-task measurement service —
    required when [options.service_config.backend] is
    {!Ansor_measure_service.Protocol.Native} (a create-time parameter, not
    an option field, so the marshal-safe snapshot never holds a closure).

    @raise Invalid_argument on empty tasks, empty networks or references
    to out-of-range task indices. *)

(** Checkpoint image of a whole scheduling session: every task's tuner
    snapshot, allocation history, liveness, per-service dedup cache and
    telemetry, the shared training set and the scheduler's own RNG cursor
    and curve.  Pure marshal-safe data. *)
module Snapshot : sig
  type t = {
    rng_state : int64;
    tuners : Ansor_search.Tuner.Snapshot.t array;
    histories : float list array;  (** newest first, per task *)
    no_improves : int array;
    deads : bool array;
    curve : (int * float array) list;  (** oldest first *)
    shared : Ansor_search.Tuner.Shared.snapshot;
    caches : (string * float) list array;
    stats : Ansor_measure_service.Telemetry.stats array;
  }

  val task_keys : t -> string array
  (** The per-task {!Ansor_search.Task.key}s, in scheduler order — a
      compatibility fingerprint for resume validation. *)
end

val snapshot : t -> Snapshot.t

val restore : t -> Snapshot.t -> (unit, string) result
(** Restores a freshly {!create}d scheduler (same options, tasks and
    networks) to the snapshot's state.  Validates the task count and every
    task key before mutating anything; on [Error] the scheduler is
    untouched. *)

val run :
  ?should_stop:(unit -> bool) -> ?on_round:(t -> unit) -> t -> trial_budget:int -> unit
(** Allocates units until the total measurement trials reach the budget
    (or no task can make progress). Can be called repeatedly to extend.
    [should_stop] is polled before each allocation — graceful shutdown
    between rounds, never mid-batch.  [on_round] runs after every
    allocation (checkpoint hook). *)

val allocations : t -> int array
(** Units allocated per task so far (the vector t). *)

val best_latency : t -> int -> float
(** Best observed latency of a task ([infinity] before warm-up). *)

val best_state : t -> int -> Ansor_sched.State.t option

val network_latency : t -> network -> float
(** Sum of w_i x g_i over the network's tasks. *)

val total_trials : t -> int
(** Sum of measurement trials consumed by the per-task services — the
    budget unit {!run} compares against. *)

val stats : t -> Ansor_measure_service.Telemetry.stats
(** Aggregated telemetry (counters + phase timers) over every task's
    measurement service. *)

val curve : t -> (int * float array) list
(** After every allocation: (total trials, per-network latencies), oldest
    first. *)

val shared : t -> Ansor_search.Tuner.Shared.t

val telemetry : t -> int -> Ansor_measure_service.Telemetry.t
(** Task [i]'s live service telemetry — session-level events (e.g. a
    model-store warm start) are accounted on task 0's counters so they
    appear exactly once in the {!stats} aggregate. *)

val objective_value : t -> float
(** Current value of the configured objective. *)
