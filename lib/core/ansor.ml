module Rng = Ansor_util.Rng
module Factorize = Ansor_util.Factorize
module Stats = Ansor_util.Stats
module Ascii_plot = Ansor_util.Ascii_plot
module Expr = Ansor_te.Expr
module Op = Ansor_te.Op
module Dag = Ansor_te.Dag
module Nn = Ansor_te.Nn
module Einsum = Ansor_te.Einsum
module Step = Ansor_sched.Step
module State = Ansor_sched.State
module Prog = Ansor_sched.Prog
module Lower = Ansor_sched.Lower
module Access = Ansor_sched.Access
module Validate = Ansor_sched.Validate
module Diagnostic = Ansor_sched.Diagnostic
module Analysis = Ansor_analysis.Analysis
module Bounds = Ansor_analysis.Bounds
module Defuse = Ansor_analysis.Defuse
module Interp = Ansor_interp.Interp
module Codegen_c = Ansor_codegen.Codegen_c
module Deploy = Ansor_codegen.Deploy
module Toolchain = Ansor_codegen.Toolchain
module Machine = Ansor_machine.Machine
module Simulator = Ansor_machine.Simulator
module Measurer = Ansor_machine.Measurer
module Roofline = Ansor_machine.Roofline
module Measure_service = Ansor_measure_service.Service
module Measure_protocol = Ansor_measure_service.Protocol
module Measure_cache = Ansor_measure_service.Cache
module Telemetry = Ansor_measure_service.Telemetry
module Measure_native = Ansor_measure_native.Measure_native
module Xcheck = Ansor_measure_native.Xcheck
module Features = Ansor_features.Features
module Gbdt = Ansor_gbdt.Gbdt
module Cost_model = Ansor_cost_model.Cost_model
module Score_service = Ansor_cost_model.Score_service
module Rules = Ansor_sketch.Rules
module Sketch_gen = Ansor_sketch.Gen
module Policy = Ansor_sketch.Policy
module Annotate = Ansor_sketch.Annotate
module Sampler = Ansor_sketch.Sampler
module Evolution = Ansor_evolution.Evolution
module Task = Ansor_search.Task
module Tuner = Ansor_search.Tuner
module Descent = Ansor_search.Descent
module Record = Ansor_search.Record
module Task_key = Ansor_util.Task_key
module Model_store = Ansor_model_store.Model_store
module Scheduler = Ansor_scheduler.Scheduler
module Checkpoint = Ansor_checkpoint.Checkpoint
module Registry = Ansor_registry.Registry
module Lru = Ansor_util.Lru
module Histogram = Ansor_serve.Histogram
module Dispatcher = Ansor_serve.Dispatcher
module Loadgen = Ansor_serve.Loadgen
module Admission = Ansor_serve.Admission
module Server = Ansor_serve.Server
module Baselines = Ansor_baselines.Baselines
module Workloads = Ansor_workloads.Workloads

type tune_result = {
  best_state : State.t option;
  best_latency : float;
  trials_used : int;
  curve : (int * float) list;
  stats : Telemetry.stats;
}

(* Resume plumbing shared by {!tune} and {!tune_networks_with_stats}:
   load the latest valid snapshot generation, check its compatibility
   fingerprint, and hand the image to [apply]; any problem degrades to a
   fresh start with a warning — a resumed session must never crash on a
   missing, torn or mismatched snapshot. *)
let try_resume ~resume ~snapshot_path ~seed ~machine_name ~task_keys apply =
  if not resume then ()
  else
    match snapshot_path with
    | None -> ()
    | Some path -> (
      match Checkpoint.load_latest ~path with
      | Error msg ->
        Printf.eprintf "warning: no usable snapshot (%s); starting fresh\n%!"
          msg
      | Ok (img, gen) ->
        (match gen with
        | Checkpoint.Current -> ()
        | Checkpoint.Previous why ->
          Printf.eprintf
            "warning: current snapshot rejected (%s); resuming from the \
             previous generation\n\
             %!"
            why);
        let m = img.Checkpoint.meta in
        if
          m.Checkpoint.seed <> seed
          || (not (String.equal m.Checkpoint.machine machine_name))
          || m.Checkpoint.task_keys <> task_keys
        then
          Printf.eprintf
            "warning: snapshot at %s belongs to a different session \
             (seed/machine/task mismatch); starting fresh\n\
             %!"
            path
        else
          match apply img.Checkpoint.payload with
          | Ok () -> ()
          | Error msg ->
            Printf.eprintf
              "warning: snapshot at %s could not be restored (%s); starting \
               fresh\n\
               %!"
              path msg)

(* Attach a model-store session to a tuning session's shared state:
   persist every measured batch, and adopt the resolved warm start +
   sibling training samples.  Runs after any snapshot restore, so a
   resumed session merges store samples that arrived after the snapshot
   (its own past contributions are filtered out by hash) and a restored
   fine-tuned model is never clobbered by a pretrained one.  With an
   empty store this never bumps the generation: the session stays
   bit-identical to a storeless one. *)
let adopt_model_store ~shared ~telemetry ~task_keys (ms : Model_store.session) =
  Tuner.Shared.attach_store ?path:ms.Model_store.path shared
    ms.Model_store.store;
  (match ms.Model_store.models_error with
  | Some e ->
    Printf.eprintf
      "warning: pretrained models file unusable (%s); pretraining from the \
       store\n\
       %!"
      e
  | None -> ());
  if ms.Model_store.salvaged > 0 then
    Printf.eprintf "warning: model store: %d malformed line(s) skipped\n%!"
      ms.Model_store.salvaged;
  let classes =
    List.sort_uniq String.compare (List.map Task_key.class_key task_keys)
  in
  let warm =
    (* single task: the full exact -> class -> global ladder.  Several
       tasks: one shared model must serve all of them, so use their
       common class model when they share a class, else the global
       fallback. *)
    let resolved =
      match (task_keys, classes) with
      | [ key ], _ ->
        Model_store.Pretrained.resolve ms.Model_store.pretrained ~task_key:key
      | _, [ cls ] ->
        Model_store.Pretrained.resolve_class ms.Model_store.pretrained
          ~class_key:cls
      | _ -> Model_store.Pretrained.global ms.Model_store.pretrained
    in
    Option.map
      (fun (g, o) -> (Model_store.Pretrained.origin_name o, g))
      resolved
  in
  let aux =
    List.filter
      (fun (s : Model_store.sample) ->
        List.mem (Task_key.class_key s.Model_store.task_key) classes)
      (Model_store.samples ms.Model_store.store)
  in
  if Tuner.Shared.adopt_store shared ~warm ~aux then begin
    Telemetry.incr_warm_starts telemetry;
    Printf.eprintf "model store: warm start (%s model, %d sibling samples)\n%!"
      (Tuner.Shared.provenance shared)
      (Tuner.Shared.num_aux shared)
  end

let tune ?(seed = 0) ?(trials = 200) ?(options = Tuner.ansor_options)
    ?(service_config = Measure_service.default_config) ?cache ?model_store
    ?snapshot_path ?(resume = false) ?record_log
    ?(should_stop = fun () -> false) ?on_round machine dag =
  let task = Task.create ~name:"tune" ~machine dag in
  let service =
    (* the native runner is always supplied: a Sim-backend config never
       calls it, and a Native one gets gcc measurement with no extra
       plumbing at the call sites *)
    Measure_service.create ~config:service_config ?cache
      ~native_runner:(Measure_native.runner ())
      ~seed:(seed + 17) machine
  in
  let shared = Tuner.Shared.create () in
  let restored = ref None in
  try_resume ~resume ~snapshot_path ~seed
    ~machine_name:machine.Machine.name
    ~task_keys:[ Task.key task ]
    (function
      | Checkpoint.Session _ -> Error "snapshot is a multi-task session"
      | Checkpoint.Single { tuner; shared = sh; cache = entries; stats } ->
        Tuner.Shared.restore shared sh;
        let c = Measure_service.cache service in
        List.iter (fun (k, v) -> Measure_cache.add c k v) entries;
        Telemetry.restore (Measure_service.telemetry service) stats;
        restored := Some tuner;
        Ok ());
  (match model_store with
  | None -> ()
  | Some ms ->
    adopt_model_store ~shared
      ~telemetry:(Measure_service.telemetry service)
      ~task_keys:[ Task.key task ] ms);
  (* per-round improvement logging: one atomic batch append per round
     (Record.append_batch), so a crash preserves every earlier best and a
     long session pays one rewrite per round, not per entry *)
  let last_logged =
    ref
      (match !restored with
      | Some (snap : Tuner.Snapshot.t) -> (
        match snap.Tuner.Snapshot.best with Some (_, l) -> l | None -> infinity)
      | None -> infinity)
  in
  let log_improvement t =
    match record_log with
    | None -> ()
    | Some path -> (
      match Record.entry_of_tuner t with
      | Some e when e.Record.latency < !last_logged ->
        Record.append_batch ~path [ e ];
        last_logged := e.Record.latency
      | _ -> ())
  in
  let checkpoint t =
    match snapshot_path with
    | None -> ()
    | Some path ->
      Checkpoint.save ~path
        {
          Checkpoint.meta =
            {
              Checkpoint.seed;
              machine = machine.Machine.name;
              task_keys = [ Task.key task ];
              rounds = Tuner.rounds_done t;
            };
          payload =
            Checkpoint.Single
              {
                tuner = Tuner.snapshot t;
                shared = Tuner.Shared.snapshot shared;
                cache = Measure_cache.entries (Measure_service.cache service);
                stats = Measure_service.stats service;
              };
        }
  in
  let tuner, service =
    Tuner.tune ~seed ~shared ~service ?snapshot:!restored ~should_stop
      ~on_round:(fun t ->
        log_improvement t;
        checkpoint t;
        match on_round with Some f -> f () | None -> ())
      options ~trials task
  in
  {
    best_state = Tuner.best_state tuner;
    best_latency = Tuner.best_latency tuner;
    trials_used = Measure_service.trials service;
    curve = Tuner.curve tuner;
    stats = Measure_service.stats service;
  }

type network_result = {
  net : Workloads.net;
  latency : float;
  per_task : (string * float) list;
}

let tune_networks_with_stats ?(seed = 0) ?trial_budget
    ?(objective = Scheduler.F1_sum) ?(tuner_options = Tuner.ansor_options)
    ?(service_config = Measure_service.default_config) ?model_store
    ?snapshot_path ?(resume = false) ?record_log
    ?(should_stop = fun () -> false) ?on_round machine nets =
  (* deduplicate tasks shared between networks by workload key *)
  let table = Hashtbl.create 32 in
  let order = ref [] in
  let index_of task =
    let key = Task.key task in
    match Hashtbl.find_opt table key with
    | Some (i, _) -> i
    | None ->
      let i = Hashtbl.length table in
      Hashtbl.replace table key (i, task);
      order := task :: !order;
      i
  in
  let networks =
    List.map
      (fun net ->
        let task_weights =
          List.map
            (fun (task, w) -> (index_of task, w))
            (Workloads.net_tasks ~machine net)
        in
        { Scheduler.net_name = net.Workloads.net_name; task_weights })
      nets
  in
  let tasks = Array.of_list (List.rev !order) in
  let budget =
    match trial_budget with Some b -> b | None -> 64 * Array.length tasks
  in
  let sched =
    Scheduler.create
      ~native_runner:(Measure_native.runner ())
      {
        Scheduler.default_options with
        objective;
        tuner_options;
        service_config;
        seed;
      }
      ~tasks ~networks
  in
  let task_keys = Array.to_list (Array.map Task.key tasks) in
  try_resume ~resume ~snapshot_path ~seed ~machine_name:machine.Machine.name
    ~task_keys (function
    | Checkpoint.Single _ -> Error "snapshot is a single-task session"
    | Checkpoint.Session snap -> Scheduler.restore sched snap);
  (match model_store with
  | None -> ()
  | Some ms ->
    adopt_model_store ~shared:(Scheduler.shared sched)
      ~telemetry:(Scheduler.telemetry sched 0) ~task_keys ms);
  (* per-allocation improvement logging, batched: every task whose best
     improved this round lands in one atomic Record.append_batch *)
  let last_logged =
    Array.init (Array.length tasks) (fun i -> Scheduler.best_latency sched i)
  in
  let log_improvements sched =
    match record_log with
    | None -> ()
    | Some path ->
      let improved = ref [] in
      Array.iteri
        (fun i task ->
          let lat = Scheduler.best_latency sched i in
          if Float.is_finite lat && lat < last_logged.(i) then
            match Scheduler.best_state sched i with
            | Some st ->
              last_logged.(i) <- lat;
              improved :=
                {
                  Record.task_key = Task.key task;
                  latency = lat;
                  steps = st.State.history;
                }
                :: !improved
            | None -> ())
        tasks;
      Record.append_batch ~path (List.rev !improved)
  in
  let checkpoint sched =
    match snapshot_path with
    | None -> ()
    | Some path ->
      Checkpoint.save ~path
        {
          Checkpoint.meta =
            {
              Checkpoint.seed;
              machine = machine.Machine.name;
              task_keys;
              rounds = Array.fold_left ( + ) 0 (Scheduler.allocations sched);
            };
          payload = Checkpoint.Session (Scheduler.snapshot sched);
        }
  in
  Scheduler.run ~should_stop
    ~on_round:(fun s ->
      log_improvements s;
      checkpoint s;
      match on_round with Some f -> f () | None -> ())
    sched ~trial_budget:budget;
  let results =
    List.map2
      (fun net snet ->
        {
          net;
          latency = Scheduler.network_latency sched snet;
          per_task =
            List.map
              (fun (i, _) ->
                (tasks.(i).Task.name, Scheduler.best_latency sched i))
              snet.Scheduler.task_weights;
        })
      nets networks
  in
  (results, Scheduler.stats sched)

let tune_networks ?seed ?trial_budget ?objective ?tuner_options
    ?service_config machine nets =
  fst
    (tune_networks_with_stats ?seed ?trial_budget ?objective ?tuner_options
       ?service_config machine nets)

let verify_state (st : State.t) =
  let dag = st.State.dag in
  (* verification must run against the original DAG: surgery stages
     (cache/rfactor) recompute the same outputs, so comparing the outputs
     of the current DAG against its own naive evaluation is the right
     check *)
  match Lower.lower st with
  | exception State.Illegal msg -> Error msg
  | prog -> (
    (* static validation and race analysis first: both work at any size *)
    match Analysis.static_errors prog with
    | d :: _ -> Error (Format.asprintf "%a" Diagnostic.pp d)
    | [] ->
      let inputs = Interp.random_inputs (Rng.create 2024) dag in
      Interp.check_equivalent dag prog ~inputs)
