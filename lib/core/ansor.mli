(** Ansor: generating high-performance tensor programs — OCaml
    reproduction of the OSDI 2020 paper.

    This module is the public facade: it re-exports every subsystem under
    one namespace and provides two convenience entry points,
    {!tune} for a single computation and {!tune_networks} for a set of
    DNNs under the task scheduler.

    {b Quickstart}:
    {[
      let dag = Ansor.Nn.matmul ~m:512 ~n:512 ~k:512 () in
      let result = Ansor.tune ~trials:300 Ansor.Machine.intel_cpu dag in
      match result.best_state with
      | Some st ->
        print_endline (Ansor.Prog.to_string (Ansor.Lower.lower st))
      | None -> ()
    ]} *)

(** {1 Subsystems} *)

module Rng = Ansor_util.Rng
module Factorize = Ansor_util.Factorize
module Stats = Ansor_util.Stats
module Ascii_plot = Ansor_util.Ascii_plot
module Expr = Ansor_te.Expr
module Op = Ansor_te.Op
module Dag = Ansor_te.Dag
module Nn = Ansor_te.Nn
module Einsum = Ansor_te.Einsum
module Step = Ansor_sched.Step
module State = Ansor_sched.State
module Prog = Ansor_sched.Prog
module Lower = Ansor_sched.Lower
module Access = Ansor_sched.Access
module Validate = Ansor_sched.Validate
module Diagnostic = Ansor_sched.Diagnostic
module Analysis = Ansor_analysis.Analysis
module Bounds = Ansor_analysis.Bounds
module Defuse = Ansor_analysis.Defuse
module Interp = Ansor_interp.Interp
module Codegen_c = Ansor_codegen.Codegen_c
module Deploy = Ansor_codegen.Deploy
module Toolchain = Ansor_codegen.Toolchain
module Machine = Ansor_machine.Machine
module Simulator = Ansor_machine.Simulator
module Measurer = Ansor_machine.Measurer
module Roofline = Ansor_machine.Roofline

(** The measurement service: domain-parallel, fault-tolerant batch
    measurement with a dedup cache and telemetry (see
    {!Measure_service.measure_batch}). *)

module Measure_service = Ansor_measure_service.Service
module Measure_protocol = Ansor_measure_service.Protocol
module Measure_cache = Ansor_measure_service.Cache
module Telemetry = Ansor_measure_service.Telemetry

(** Native measurement: candidates compiled with gcc and timed on the host
    CPU, selected with [service_config.backend = Native]; {!Xcheck} reports
    the sim-vs-native rank correlation ([ansor xcheck]). *)

module Measure_native = Ansor_measure_native.Measure_native
module Xcheck = Ansor_measure_native.Xcheck
module Features = Ansor_features.Features
module Gbdt = Ansor_gbdt.Gbdt
module Cost_model = Ansor_cost_model.Cost_model
module Score_service = Ansor_cost_model.Score_service
module Rules = Ansor_sketch.Rules
module Sketch_gen = Ansor_sketch.Gen
module Policy = Ansor_sketch.Policy
module Annotate = Ansor_sketch.Annotate
module Sampler = Ansor_sketch.Sampler
module Evolution = Ansor_evolution.Evolution
module Task = Ansor_search.Task
module Tuner = Ansor_search.Tuner
module Descent = Ansor_search.Descent
module Record = Ansor_search.Record
module Scheduler = Ansor_scheduler.Scheduler

(** Cross-task transfer: the persistent training-sample store, the
    pretrained per-class cost-model bundle and the shared
    structure-class key ({!Model_store.Pretrained.resolve},
    {!Task_key.class_key}). *)

module Task_key = Ansor_util.Task_key
module Model_store = Ansor_model_store.Model_store

(** Crash-safe sessions: checkpoint images with atomic persistence and
    generation fallback, plus cooperative SIGINT/SIGTERM shutdown (see
    {!Checkpoint.save}, {!Checkpoint.load_latest},
    {!Checkpoint.Shutdown}). *)

module Checkpoint = Ansor_checkpoint.Checkpoint

(** The serving subsystem: a persistent best-schedule database built from
    {!Record} logs (with a similarity fallback for untuned workloads), and
    an inference dispatcher that compiles each subgraph once, caches
    compiled programs in a bounded LRU and executes requests on a domain
    pool (see {!Registry.resolve}, {!Dispatcher.serve}). *)

module Registry = Ansor_registry.Registry
module Lru = Ansor_util.Lru
module Histogram = Ansor_serve.Histogram
module Dispatcher = Ansor_serve.Dispatcher

(** The streaming serving tier: open-loop load generation ({!Loadgen}),
    bounded-queue admission control with per-tenant quotas ({!Admission})
    and the sharded virtual-time server with background tuning and
    canary-gated live schedule rollout ({!Server.run},
    {!Server.propose}). *)

module Loadgen = Ansor_serve.Loadgen
module Admission = Ansor_serve.Admission
module Server = Ansor_serve.Server
module Baselines = Ansor_baselines.Baselines
module Workloads = Ansor_workloads.Workloads

(** {1 Convenience API} *)

type tune_result = {
  best_state : State.t option;
  best_latency : float;  (** seconds; [infinity] if nothing measured *)
  trials_used : int;  (** measurement trials consumed (cache hits are free) *)
  curve : (int * float) list;  (** (trials, best-so-far) *)
  stats : Telemetry.stats;
      (** session telemetry: failure counts, cache hits, phase timings *)
}

val tune :
  ?seed:int ->
  ?trials:int ->
  ?options:Tuner.options ->
  ?service_config:Measure_service.config ->
  ?cache:Measure_cache.t ->
  ?model_store:Model_store.session ->
  ?snapshot_path:string ->
  ?resume:bool ->
  ?record_log:string ->
  ?should_stop:(unit -> bool) ->
  ?on_round:(unit -> unit) ->
  Machine.t ->
  Dag.t ->
  tune_result
(** Tunes one computation on one machine (default 200 trials, full Ansor
    strategy).  [service_config] controls the measurement service (worker
    domains, timeout, retries); [cache] shares or preloads a dedup cache —
    pass one {!Measure_cache.load}ed from a previous session to skip
    re-measuring known schedules, and {!Measure_cache.save} it afterwards.

    [snapshot_path] checkpoints the full session (tuner population,
    best-so-far, RNG cursor, training set, dedup cache, telemetry) after
    every round via {!Checkpoint.save}.  With [resume] the latest valid
    snapshot generation is restored first, so an interrupted-then-resumed
    run reaches the same trial budget — and, being deterministic, the same
    results — as an uninterrupted one; a missing, torn or mismatched
    snapshot degrades to a fresh start with a warning on stderr, never an
    error.  [should_stop] is polled between rounds (wire it to
    {!Checkpoint.Shutdown.requested} for graceful Ctrl-C); [on_round] runs
    after each round's checkpoint.

    [record_log] appends the session's best program to the given
    {!Record} log whenever a round improves it — one atomic batch append
    per round ({!Record.append_batch}), so a killed session keeps every
    earlier best.  Feed the log to {!Registry.build_from_logs} (or
    [ansor-cli registry build]) to serve the result.

    [model_store] attaches a cross-task model store
    ({!Model_store.open_session}): the session warm-starts from the
    pretrained model the exact -> class -> global ladder resolves for
    the task, folds the store's same-class samples into every retrain,
    and appends its own measured batches back to the store.  An empty or
    absent store leaves the session bit-identical to a storeless one.
    Composes with [resume]: store samples newer than the snapshot are
    merged in (own past contributions deduplicated by program hash),
    invalidating cached scores exactly once. *)

type network_result = {
  net : Workloads.net;
  latency : float;  (** end-to-end: sum of w_i x g_i *)
  per_task : (string * float) list;  (** best latency per unique subgraph *)
}

val tune_networks :
  ?seed:int ->
  ?trial_budget:int ->
  ?objective:Scheduler.objective ->
  ?tuner_options:Tuner.options ->
  ?service_config:Measure_service.config ->
  Machine.t ->
  Workloads.net list ->
  network_result list
(** Tunes a set of networks with the gradient-descent task scheduler
    (default budget: 64 trials per unique task, objective F1). Tasks
    shared between networks are deduplicated by workload key, as in §6. *)

val tune_networks_with_stats :
  ?seed:int ->
  ?trial_budget:int ->
  ?objective:Scheduler.objective ->
  ?tuner_options:Tuner.options ->
  ?service_config:Measure_service.config ->
  ?model_store:Model_store.session ->
  ?snapshot_path:string ->
  ?resume:bool ->
  ?record_log:string ->
  ?should_stop:(unit -> bool) ->
  ?on_round:(unit -> unit) ->
  Machine.t ->
  Workloads.net list ->
  network_result list * Telemetry.stats
(** Same, also returning the aggregated measurement telemetry of the whole
    session (trials, failures, cache hits, phase timings).
    [snapshot_path] / [resume] / [record_log] / [should_stop] / [on_round]
    work as in {!tune}, checkpointing the whole scheduler session (every
    task's tuner, budget allocation, caches, telemetry) after each
    allocation and batch-logging every task whose best improved.
    [model_store] warm-starts the session's single shared cost model:
    tasks of one structure class get their class model, mixed sessions
    the global fallback (the warm-start counter lands on task 0's
    telemetry). *)

val verify_state : State.t -> (unit, string) result
(** Checks a scheduled program two ways: statically
    ({!Analysis.static_errors} — bounds validation, the data-race
    detector, and the memory-safety certifier's out-of-bounds witness
    search, any size) and dynamically against the naive evaluation of
    its DAG on random inputs — the system-wide soundness oracle.  The
    dynamic check executes the program, so keep shapes small. *)
