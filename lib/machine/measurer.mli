(** The measurer: the single-program measurement backend.

    Plays the role of the paper's per-program runner: a candidate program
    is handed over, "executed" (simulated analytically), and the observed
    latency — the deterministic simulator estimate perturbed by
    multiplicative log-normal noise, like real measurement variance — is
    returned.

    Batch orchestration, failure classification, retries, deduplication and
    {e trial accounting} all live one layer up in the measurement service
    ({!Ansor_measure_service.Service}), which wraps this module; the
    service's telemetry is the single source of truth for consumed
    trials. *)

type t

val create : ?noise:float -> seed:int -> Machine.t -> t
(** [noise] is the standard deviation of the log-normal perturbation
    (default 0.03). *)

val machine : t -> Machine.t

val measure : t -> Ansor_sched.Prog.t -> float
(** Observed latency in seconds, drawing noise from the measurer's own
    (sequential) RNG stream. *)

val measure_with : t -> rng:Ansor_util.Rng.t -> Ansor_sched.Prog.t -> float
(** Same, but drawing noise from the supplied stream — the parallel
    measurement service derives one stream per candidate so results do not
    depend on scheduling order. *)

val true_latency : t -> Ansor_sched.Prog.t -> float
(** The noise-free simulator estimate. Benchmarks use it for final
    reporting. *)
