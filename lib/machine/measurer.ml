type t = {
  machine : Machine.t;
  noise : float;
  rng : Ansor_util.Rng.t;
}

let create ?(noise = 0.03) ~seed machine =
  { machine; noise; rng = Ansor_util.Rng.create seed }

let machine t = t.machine

let true_latency t prog = Simulator.estimate t.machine prog

let measure_with t ~rng prog =
  let base = true_latency t prog in
  let factor = exp (t.noise *. Ansor_util.Rng.gaussian rng) in
  base *. factor

let measure t prog = measure_with t ~rng:t.rng prog
