open Ansor_sched
module Pool = Ansor_measure_service.Pool
module Mcache = Ansor_measure_service.Cache
module Telemetry = Ansor_measure_service.Telemetry
module Lru = Ansor_util.Lru
module Features = Ansor_features.Features
module Gbdt = Ansor_gbdt.Gbdt

(* One cached program: its per-statement feature vectors (valid forever —
   featurization is a pure function of the lowered program) and the
   scores computed from them, stamped with the model generation that
   produced them (stale after a retrain, recomputed lazily). *)
type entry = {
  features : float array list;
  n_rows : int;
  mutable scored : (int * float list * float) option;
      (* (model generation, per-statement scores, their sum) *)
}

type t = {
  machine : Ansor_machine.Machine.t;
  num_workers : int;
  chunk : int;
  cache : entry Lru.t;
  telemetry : Telemetry.t option;
  mutable model : Cost_model.t;
  mutable generation : int;  (* bumped by every [set_model] *)
  mutable upstream : int option;  (* last generation seen by [sync] *)
}

let default_capacity = 4096

(* Fixed fan-out granularity: chunk boundaries depend only on the batch,
   never on the worker count, so the work partition (and therefore every
   result) is identical for any [num_workers]. *)
let default_chunk = 8

let create ?(capacity = default_capacity) ?telemetry ~num_workers machine =
  {
    machine;
    num_workers = max 1 num_workers;
    chunk = default_chunk;
    cache = Lru.create ~capacity:(max 1 capacity);
    telemetry;
    model = Cost_model.empty;
    generation = 0;
    upstream = None;
  }

let machine t = t.machine
let num_workers t = t.num_workers
let model t = t.model
let generation t = t.generation
let capacity t = Lru.capacity t.cache
let cache_size t = Lru.size t.cache

type stats = { hits : int; misses : int; evictions : int }

let stats t =
  { hits = Lru.hits t.cache; misses = Lru.misses t.cache;
    evictions = Lru.evictions t.cache }

let set_model t model =
  (* cached features survive a retrain; cached scores are invalidated by
     the generation stamp, not by walking the LRU *)
  t.model <- model;
  t.generation <- t.generation + 1

let sync t ~generation model =
  if t.upstream <> Some generation then begin
    t.upstream <- Some generation;
    set_model t model
  end

let key_of_prog t prog = Mcache.key_of_prog t.machine prog

(* ---- deterministic parallel fan-out ------------------------------------- *)

(* Applies [f] to every item on the domain pool in fixed-size chunks;
   results come back in input order.  [f] must be pure — that, plus the
   worker-count-independent chunking, is the determinism argument.
   Returns (results, wall seconds, summed per-chunk work seconds). *)
let fan t f items =
  let n = Array.length items in
  if n = 0 then ([||], 0.0, 0.0)
  else begin
    let nchunks = (n + t.chunk - 1) / t.chunk in
    let t0 = Unix.gettimeofday () in
    let out =
      Pool.run ~num_workers:t.num_workers
        (fun c ->
          let lo = c * t.chunk in
          let len = min t.chunk (n - lo) in
          let c0 = Unix.gettimeofday () in
          let res = Array.init len (fun i -> f items.(lo + i)) in
          (res, Unix.gettimeofday () -. c0))
        (Array.init nchunks Fun.id)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let work = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 out in
    let results = Array.concat (Array.to_list (Array.map fst out)) in
    (results, wall, work)
  end

(* ---- scoring core ------------------------------------------------------- *)

(* Per-statement scores of one entry under the current model, preserving
   the accumulation order of the sequential path
   ([Cost_model.score_stmts] + [Cost_model.score]'s fold). *)
let compute_scores t entries =
  match Cost_model.gbdt t.model with
  | None ->
    List.iter
      (fun e ->
        let ss = List.map (fun _ -> 0.0) e.features in
        let total = List.fold_left ( +. ) 0.0 ss in
        e.scored <- Some (t.generation, ss, total))
      entries
  | Some gbdt ->
    let stale = List.filter (fun e -> e.n_rows > 0) entries in
    (match stale with
    | [] -> ()
    | _ ->
      let width =
        match (List.hd stale).features with
        | row :: _ -> Array.length row
        | [] -> assert false
      in
      let matrix =
        Array.concat (List.concat_map (fun e -> e.features) stale)
      in
      let preds = Gbdt.predict_batch gbdt ~width matrix in
      let off = ref 0 in
      List.iter
        (fun e ->
          let ss = List.init e.n_rows (fun i -> preds.(!off + i)) in
          off := !off + e.n_rows;
          let total = List.fold_left ( +. ) 0.0 ss in
          e.scored <- Some (t.generation, ss, total))
        stale);
    List.iter
      (fun e ->
        if e.n_rows = 0 then e.scored <- Some (t.generation, [], 0.0))
      entries

let fresh_scored t e =
  match e.scored with
  | Some (g, ss, total) when g = t.generation -> Some (ss, total)
  | _ -> None

(* Scores a batch of already-lowered candidates ([None] = the state did
   not lower).  All cache traffic happens on the calling domain; the pool
   only ever featurizes cache misses. *)
let score_lowered t ?(wall0 = 0.0) ?(work0 = 0.0)
    (items : (string * Prog.t) option array) =
  let hits = ref 0 and misses = ref 0 in
  let ev0 = Lru.evictions t.cache in
  (* probe: resolve every candidate to an entry, or mark it a unique miss
     (first occurrence wins; later duplicates are hits on its entry) *)
  let local : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  let miss_rev = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some (key, prog) -> (
        if Hashtbl.mem local key then incr hits
        else
          match Lru.find t.cache key with
          | Some e ->
            incr hits;
            Hashtbl.replace local key e
          | None ->
            incr misses;
            (* placeholder claims the key so in-batch duplicates count as
               hits and are featurized once *)
            Hashtbl.replace local key { features = []; n_rows = 0; scored = None };
            miss_rev := (key, prog) :: !miss_rev))
    items;
  (* featurize the unique misses on the pool, input order preserved *)
  let miss_arr = Array.of_list (List.rev !miss_rev) in
  let feats, wall, work =
    fan t (fun (key, prog) -> (key, Features.of_prog prog)) miss_arr
  in
  Array.iter
    (fun (key, features) ->
      let e = { features; n_rows = List.length features; scored = None } in
      Hashtbl.replace local key e;
      Lru.add t.cache key e)
    feats;
  (* score every entry whose cached score is stale, one batched GBDT pass *)
  let stale_rev = ref [] and seen = Hashtbl.create 64 in
  Array.iter
    (function
      | None -> ()
      | Some (key, _) ->
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          let e = Hashtbl.find local key in
          if fresh_scored t e = None then stale_rev := e :: !stale_rev
        end)
    items;
  compute_scores t (List.rev !stale_rev);
  (match t.telemetry with
  | Some tm ->
    Telemetry.add_score_batch tm ~hits:!hits ~misses:!misses
      ~evictions:(Lru.evictions t.cache - ev0)
      ~wall:(wall0 +. wall) ~work:(work0 +. work)
  | None -> ());
  Array.map
    (function
      | None -> Float.neg_infinity
      | Some (key, _) -> (
        let e = Hashtbl.find local key in
        match fresh_scored t e with
        | Some (_, total) -> total
        | None -> assert false))
    items

let score_progs t progs =
  let arr = Array.of_list progs in
  (* keys are digests of the lowered program: pure, so they fan out too *)
  let keyed, wall, work =
    fan t (fun prog -> Some (key_of_prog t prog, prog)) arr
  in
  Array.to_list (score_lowered t ~wall0:wall ~work0:work keyed)

let score_states t states =
  let arr = Array.of_list states in
  let keyed, wall, work =
    fan t
      (fun st ->
        match Lower.lower st with
        | prog -> Some (key_of_prog t prog, prog)
        | exception State.Illegal _ -> None)
      arr
  in
  Array.to_list (score_lowered t ~wall0:wall ~work0:work keyed)

(* ---- single-candidate path (beam search, crossover) --------------------- *)

let entry_of_prog t prog =
  let key = key_of_prog t prog in
  match Lru.find t.cache key with
  | Some e ->
    (match t.telemetry with
    | Some tm -> Telemetry.add_score_probe tm ~hit:true
    | None -> ());
    e
  | None ->
    (match t.telemetry with
    | Some tm -> Telemetry.add_score_probe tm ~hit:false
    | None -> ());
    let features = Features.of_prog prog in
    let e = { features; n_rows = List.length features; scored = None } in
    Lru.add t.cache key e;
    e

let ensure_scored t e =
  match fresh_scored t e with
  | Some r -> r
  | None ->
    compute_scores t [ e ];
    (match fresh_scored t e with Some r -> r | None -> assert false)

let score_prog t prog =
  let e = entry_of_prog t prog in
  snd (ensure_scored t e)

let stmt_scores_prog t prog =
  let e = entry_of_prog t prog in
  fst (ensure_scored t e)

let score_state t st =
  match Lower.lower st with
  | exception State.Illegal _ -> Float.neg_infinity
  | prog -> score_prog t prog
