(** The learned cost model (§5.2).

    Predicts a fitness score for a complete program by summing a
    gradient-boosted-tree prediction over its innermost statements'
    feature vectors.  Trained on measured programs with the paper's loss:
    throughput-weighted squared error, with throughput normalized to
    [0, 1] within each task (programs of the same DAG), so one model
    serves all tasks.

    Scores are {e relative throughputs}: higher is better, and they are
    only meaningful for ranking programs of the same task. *)

open Ansor_sched

type record = {
  features : float array list;  (** per innermost statement *)
  task_key : string;  (** groups programs of the same computation *)
  latency : float;  (** measured seconds, > 0 *)
}

val record_of_prog : task_key:string -> latency:float -> Prog.t -> record

type t

val empty : t
(** Untrained model: scores every program 0 (callers fall back to random
    exploration, as Ansor does before the first measurements). *)

val is_trained : t -> bool

val train :
  ?params:Ansor_gbdt.Gbdt.params -> ?init:Ansor_gbdt.Gbdt.t -> record list -> t
(** Trains from scratch on all records (the paper retrains the model at
    every search iteration). Returns {!empty} when no record exists.

    With [?init] the GBDT warm-starts from the given pretrained model
    and the new trees fine-tune it on [records]
    (see {!Ansor_gbdt.Gbdt.train}); on an empty record list the init
    model is adopted as-is.  Omitting [init] is bit-identical to the
    cold path. *)

val of_gbdt : Ansor_gbdt.Gbdt.t -> t
(** Adopt a pretrained boosted-tree model: {!is_trained} holds, while
    {!num_records_trained_on} is 0 (no session measurement in it). *)

val num_records_trained_on : t -> int

val gbdt : t -> Ansor_gbdt.Gbdt.t option
(** The underlying boosted-tree model ([None] when untrained) — the
    batch scoring service predicts through {!Ansor_gbdt.Gbdt.predict_batch}
    directly. *)

val score_stmts : t -> float array list -> float list
(** Per-statement scores (used by node-based crossover to pick the better
    parent per DAG node). *)

val score : t -> float array list -> float
(** Program score: sum of the per-statement scores. *)

val score_prog : t -> Prog.t -> float

(** Ranking metrics used by the Figure-3 experiment. *)
module Metrics : sig
  val pairwise_accuracy : predicted:float list -> actual:float list -> float
  (** Fraction of pairs ordered identically by both lists (ties in the
      actual ranking are skipped); 0.5 means chance. *)

  val recall_at_k : k:int -> predicted:float list -> actual:float list -> float
  (** |top-k(predicted) ∩ top-k(actual)| / k, top meaning largest. *)
end
