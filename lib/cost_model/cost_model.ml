type record = {
  features : float array list;
  task_key : string;
  latency : float;
}

let record_of_prog ~task_key ~latency prog =
  if latency <= 0.0 then invalid_arg "Cost_model.record_of_prog: latency <= 0";
  { features = Ansor_features.Features.of_prog prog; task_key; latency }

type t = { model : Ansor_gbdt.Gbdt.t option; n_records : int }

let empty = { model = None; n_records = 0 }

let is_trained t = t.model <> None

let num_records_trained_on t = t.n_records

(* A pretrained GBDT adopted as-is — what a warm-started tuner scores
   with before its first fine-tuning retrain.  Counts as trained (the
   search trusts it enough to run evolution) but as zero records (none
   of this session's measurements are in it yet). *)
let of_gbdt model = { model = Some model; n_records = 0 }

let train ?params ?init records =
  match records with
  | [] -> ( match init with Some m -> of_gbdt m | None -> empty)
  | records ->
    (* normalized throughput per record: 1/latency scaled to (0, 1] within
       each task group *)
    let max_thr = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let thr = 1.0 /. r.latency in
        match Hashtbl.find_opt max_thr r.task_key with
        | Some m when m >= thr -> ()
        | _ -> Hashtbl.replace max_thr r.task_key thr)
      records;
    let rows = ref [] and targets = ref [] and weights = ref [] in
    List.iter
      (fun r ->
        let thr = 1.0 /. r.latency in
        let y = thr /. Hashtbl.find max_thr r.task_key in
        let k = List.length r.features in
        if k > 0 then begin
          let per_stmt = y /. float_of_int k in
          List.iter
            (fun f ->
              rows := f :: !rows;
              targets := per_stmt :: !targets;
              weights := y :: !weights)
            r.features
        end)
      records;
    let x = Array.of_list !rows in
    if Array.length x = 0 then
      match init with Some m -> of_gbdt m | None -> empty
    else
      let y = Array.of_list !targets and w = Array.of_list !weights in
      let model = Ansor_gbdt.Gbdt.train ?params ?init ~x ~y ~w () in
      { model = Some model; n_records = List.length records }

let gbdt t = t.model

let score_stmts t features =
  match t.model with
  | None -> List.map (fun _ -> 0.0) features
  | Some m -> List.map (Ansor_gbdt.Gbdt.predict m) features

let score t features = List.fold_left ( +. ) 0.0 (score_stmts t features)

let score_prog t prog = score t (Ansor_features.Features.of_prog prog)

module Metrics = struct
  let pairwise_accuracy ~predicted ~actual =
    let p = Array.of_list predicted and a = Array.of_list actual in
    let n = Array.length p in
    let correct = ref 0 and total = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if a.(i) <> a.(j) then begin
          incr total;
          let actual_order = a.(i) > a.(j) in
          let predicted_order = p.(i) > p.(j) in
          if actual_order = predicted_order then incr correct
        end
      done
    done;
    if !total = 0 then 0.5 else float_of_int !correct /. float_of_int !total

  let top_k k xs =
    let indexed = List.mapi (fun i x -> (i, x)) xs in
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) indexed in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | (i, _) :: rest -> i :: take (n - 1) rest
    in
    take k sorted

  let recall_at_k ~k ~predicted ~actual =
    if k <= 0 then invalid_arg "recall_at_k: k <= 0";
    let p = top_k k predicted and a = top_k k actual in
    let inter = List.filter (fun i -> List.mem i a) p in
    float_of_int (List.length inter) /. float_of_int k
end
