(** Batched, cached cost-model scoring.

    The evolutionary search scores thousands of candidate programs per
    round, and most of the cost is not the GBDT at all — it is lowering
    each state and extracting its per-statement feature vectors.  This
    service turns that into a batch pipeline:

    - lowering + featurization fan out over the measure service's domain
      pool in {e fixed-size chunks}, so the work partition — and therefore
      every float produced — is independent of [num_workers];
    - feature vectors are memoized in an LRU keyed by the canonical
      lowered-program digest ({!Ansor_measure_service.Cache.key_of_prog}),
      so candidates that survive across generations (elites, re-sampled
      mutants) are featurized once per session, not once per round;
    - GBDT prediction runs through {!Ansor_gbdt.Gbdt.predict_batch}: one
      pass per tree over a flat row matrix instead of one tree walk per
      statement.

    Cached {e scores} are stamped with a model generation and invalidated
    by {!set_model} (retrains); cached {e features} are a pure function of
    the program and survive retrains.

    Bit-identity contract: for any batch and any worker count, the scores
    returned are bitwise equal to the sequential
    [Cost_model.score_prog] on each candidate — accumulation order inside
    {!Ansor_gbdt.Gbdt.predict_batch} and the final per-statement sum
    mirror the sequential folds exactly. *)

open Ansor_sched

type t

val create :
  ?capacity:int ->
  ?telemetry:Ansor_measure_service.Telemetry.t ->
  num_workers:int ->
  Ansor_machine.Machine.t ->
  t
(** [capacity] bounds the LRU entry count (default 4096 programs);
    [telemetry] receives score-cache hit/miss and fan-out timing counters;
    [num_workers] is the domain-pool width (clamped to >= 1), normally
    {!Ansor_measure_service.Service.num_workers} so [--workers] governs
    both fan-outs. *)

val set_model : t -> Cost_model.t -> unit
(** Installs a (re)trained model and bumps the generation stamp: every
    cached score is now stale and will be recomputed on next access.
    Cached feature vectors are kept. *)

val sync : t -> generation:int -> Cost_model.t -> unit
(** Idempotent [set_model]: installs the model only if [generation]
    differs from the last synced one.  Lets per-round callers pass the
    tuner's retrain counter without spuriously invalidating the cache. *)

val score_states : t -> State.t list -> float list
(** Scores each state, in order.  States that fail to lower score
    [Float.neg_infinity] (matching the sequential fitness path).
    Duplicate states in the batch are lowered/featurized once. *)

val score_progs : t -> Prog.t list -> float list
(** Same, for already-lowered programs. *)

val score_state : t -> State.t -> float
(** Single-candidate path (cache-backed, no pool fan-out). *)

val score_prog : t -> Prog.t -> float

val stmt_scores_prog : t -> Prog.t -> float list
(** Per-statement scores of one program (node-based crossover picks the
    better parent per DAG node) — cache-backed like {!score_prog}. *)

val machine : t -> Ansor_machine.Machine.t
val num_workers : t -> int
val model : t -> Cost_model.t
val generation : t -> int
(** Bumped by every {!set_model}; 0 for a fresh (untrained) service. *)

val capacity : t -> int
val cache_size : t -> int

type stats = { hits : int; misses : int; evictions : int }

val stats : t -> stats
(** Lifetime cache counters (also mirrored into [telemetry] if given). *)
