(** Reference interpreter: the functional-correctness oracle.

    Executes both unscheduled DAGs (naive, loop-by-loop evaluation) and
    lowered programs ({!Ansor_sched.Prog.t}) on real float arrays.  The
    central invariant of the whole system — any legal schedule computes
    exactly the tensors of the naive program — is checked by comparing the
    two.  Intended for small shapes; performance experiments use the
    analytical simulator instead. *)

open Ansor_te
open Ansor_sched

type tensors = (string * float array) list
(** Flat row-major storage per tensor name. *)

exception Runtime_error of string
(** Raised on out-of-bounds accesses, missing tensors or shape
    mismatches — any of these indicates an illegal schedule or a lowering
    bug. *)

val random_inputs : Ansor_util.Rng.t -> Dag.t -> tensors
(** Uniform values in [-1, 1) for every placeholder of the DAG. *)

val run_dag : Dag.t -> inputs:tensors -> tensors
(** Naive evaluation of every compute operator in topological order.
    Returns all computed tensors (not the inputs). *)

val run_prog : Prog.t -> inputs:tensors -> tensors
(** Executes a lowered program. Returns all non-input buffers. *)

(** Iteration semantics for [Parallel] loops.  A legal schedule computes
    identical tensors under every mode; a cross-iteration race makes at
    least one mode diverge from [Sequential].  This is the differential
    oracle the static race detector ([Ansor_analysis]) is validated
    against. *)
type exec_mode =
  | Sequential  (** every loop low-to-high: the reference semantics *)
  | Reversed_parallel  (** [Parallel] loops iterated high-to-low *)
  | Snapshot_forward
      (** each iteration of an outermost [Parallel] loop reads the state
          at loop entry and logs its writes; logs are then applied in
          iteration order (last write wins) — models lost updates
          between concurrent workers *)
  | Snapshot_reversed  (** as [Snapshot_forward], logs applied in
          reverse iteration order *)

val exec_mode_name : exec_mode -> string

val order_modes : exec_mode list
(** The non-[Sequential] modes, in the order [order_sensitive] tries
    them. *)

val run_prog_mode : mode:exec_mode -> Prog.t -> inputs:tensors -> tensors
(** [run_prog_mode ~mode:Sequential] is {!run_prog}. *)

val order_sensitive : ?tol:float -> Prog.t -> inputs:tensors -> exec_mode option
(** Runs the program under every mode and returns the first whose
    outputs differ from [Sequential] by more than [tol] (default
    [1e-9]), i.e. a concrete witness that the program's parallel
    annotations are racy.  [None] means all orders agree. *)

val max_abs_diff : float array -> float array -> float
(** @raise Runtime_error on length mismatch. *)

val check_equivalent :
  ?tol:float -> Dag.t -> Prog.t -> inputs:tensors -> (unit, string) result
(** Runs both and compares every DAG output tensor within [tol]
    (default [1e-4]); [Error] describes the first mismatch. *)
