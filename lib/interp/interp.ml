open Ansor_te
open Ansor_sched

type tensors = (string * float array) list

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Row-major flattening with bounds checks. *)
let flatten name shape indices =
  let rec go shape indices acc =
    match (shape, indices) with
    | [], [] -> acc
    | d :: shape', i :: indices' ->
      if i < 0 || i >= d then
        error "index %d out of bounds [0, %d) for tensor %s" i d name;
      go shape' indices' ((acc * d) + i)
    | _ ->
      error "tensor %s: rank mismatch (%d indices for rank %d)" name
        (List.length indices) (List.length shape)
  in
  go shape indices 0

let random_inputs rng dag =
  Array.to_list (Dag.ops dag)
  |> List.filter_map (fun op ->
         match op with
         | Op.Placeholder { name; shape } ->
           let n = Prog.buffer_size shape in
           Some
             ( name,
               Array.init n (fun _ -> Ansor_util.Rng.float rng 2.0 -. 1.0) )
         | Op.Compute _ -> None)

(* Environment: tensor storage plus shapes. *)
module Env = struct
  type t = (string, float array * int list) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let add t name shape data =
    let expected = Prog.buffer_size shape in
    if Array.length data <> expected then
      error "tensor %s: expected %d elements, got %d" name expected
        (Array.length data);
    Hashtbl.replace t name (data, shape)

  let alloc t name shape =
    Hashtbl.replace t name (Array.make (Prog.buffer_size shape) 0.0, shape)

  let find t name =
    match Hashtbl.find_opt t name with
    | Some v -> v
    | None -> error "unknown tensor %s" name

  let load t name indices =
    let data, shape = find t name in
    data.(flatten name shape indices)

end

let run_dag dag ~inputs =
  let env = Env.create () in
  List.iter
    (fun (name, data) ->
      let op = Dag.op dag (Dag.op_index dag name) in
      Env.add env name (Op.shape op) data)
    inputs;
  let computed = ref [] in
  Array.iter
    (fun op ->
      match op with
      | Op.Placeholder { name; _ } ->
        if not (Hashtbl.mem env name) then error "missing input tensor %s" name
      | Op.Compute c ->
        let shape = Op.shape op in
        Env.alloc env c.name shape;
        let data, _ = Env.find env c.name in
        (match c.reduce with
        | Some kind -> Array.fill data 0 (Array.length data) (Op.init_value kind)
        | None -> ());
        computed := c.name :: !computed;
        let axis_tbl = Hashtbl.create 8 in
        let axis_value v =
          match Hashtbl.find_opt axis_tbl v with
          | Some i -> i
          | None -> error "unbound axis %s in %s" v c.name
        in
        let load = Env.load env in
        (* iterate space axes, then reduction axes *)
        let rec iter_axes axes k =
          match axes with
          | [] -> k ()
          | (v, extent) :: rest ->
            for i = 0 to extent - 1 do
              Hashtbl.replace axis_tbl v i;
              iter_axes rest k
            done
        in
        iter_axes c.axes (fun () ->
            let out = flatten c.name shape (List.map (fun (v, _) -> axis_value v) c.axes) in
            match c.reduce with
            | None -> data.(out) <- Expr.eval ~axis_value ~load c.body
            | Some kind ->
              iter_axes c.reduce_axes (fun () ->
                  let x = Expr.eval ~axis_value ~load c.body in
                  data.(out) <- Op.combine kind data.(out) x)))
    (Dag.ops dag);
  List.rev_map (fun n -> (n, fst (Env.find env n))) !computed

(* Iteration semantics for [Parallel] loops.  A legal schedule computes
   the same tensors under every mode; a program with a cross-iteration
   race diverges in at least one — this is the differential oracle the
   static race detector (lib/analysis) is validated against. *)
type exec_mode =
  | Sequential  (** every loop low-to-high: the reference semantics *)
  | Reversed_parallel  (** [Parallel] loops iterated high-to-low *)
  | Snapshot_forward
      (** each [Parallel] iteration reads the state at loop entry and
          logs its writes; logs land in memory in iteration order —
          models lost updates between concurrent workers *)
  | Snapshot_reversed  (** as above, logs applied in reverse order *)

let exec_mode_name = function
  | Sequential -> "sequential"
  | Reversed_parallel -> "reversed-parallel"
  | Snapshot_forward -> "snapshot-forward"
  | Snapshot_reversed -> "snapshot-reversed"

let order_modes = [ Reversed_parallel; Snapshot_forward; Snapshot_reversed ]

let run_prog_mode ~mode (prog : Prog.t) ~inputs =
  let env = Env.create () in
  let input_names = List.map fst inputs in
  List.iter
    (fun (name, shape) ->
      match List.assoc_opt name inputs with
      | Some data -> Env.add env name shape data
      | None -> Env.alloc env name shape)
    prog.buffers;
  List.iter
    (fun (name, v) ->
      let data, _ = Env.find env name in
      Array.fill data 0 (Array.length data) v)
    prog.inits;
  let vars = Hashtbl.create 32 in
  let lookup v =
    match Hashtbl.find_opt vars v with
    | Some i -> i
    | None -> error "unbound loop variable %s" v
  in
  (* Iteration-local copy-on-write view of written buffers, active while
     executing one iteration of a snapshotted parallel loop. *)
  let overlay : (string, float array) Hashtbl.t option ref = ref None in
  let log : (string * int * float) list ref = ref [] in
  let load name indices =
    let data, shape = Env.find env name in
    let i = flatten name shape indices in
    match !overlay with
    | Some o -> (
      match Hashtbl.find_opt o name with
      | Some local -> local.(i)
      | None -> data.(i))
    | None -> data.(i)
  in
  let store name indices f =
    let data, shape = Env.find env name in
    let i = flatten name shape indices in
    match !overlay with
    | None -> data.(i) <- f data.(i)
    | Some o ->
      let local =
        match Hashtbl.find_opt o name with
        | Some local -> local
        | None ->
          let local = Array.copy data in
          Hashtbl.replace o name local;
          local
      in
      local.(i) <- f local.(i);
      log := (name, i, local.(i)) :: !log
  in
  let rec exec = function
    | Prog.Stmt s ->
      let indices = List.map (Expr.eval_iexpr lookup) s.indices in
      let x = Expr.eval ~axis_value:lookup ~load s.rhs in
      store s.tensor indices (fun old ->
          match s.update with
          | None -> x
          | Some kind -> Op.combine kind old x)
    | Prog.Loop l ->
      let snapshot =
        (match mode with
        | Snapshot_forward | Snapshot_reversed -> true
        | Sequential | Reversed_parallel -> false)
        && l.ann = Step.Parallel
        && !overlay = None
      in
      if snapshot then (
        (* Outermost parallel loop: every iteration runs against the
           loop-entry state; cross-iteration dependences are lost. *)
        let logs =
          Array.init l.extent (fun i ->
              overlay := Some (Hashtbl.create 4);
              log := [];
              Hashtbl.replace vars l.lvar i;
              List.iter exec l.body;
              let entries = List.rev !log in
              overlay := None;
              log := [];
              entries)
        in
        let apply i =
          List.iter
            (fun (name, idx, v) ->
              let data, _ = Env.find env name in
              data.(idx) <- v)
            logs.(i)
        in
        if mode = Snapshot_reversed then
          for i = l.extent - 1 downto 0 do
            apply i
          done
        else
          for i = 0 to l.extent - 1 do
            apply i
          done)
      else if mode = Reversed_parallel && l.ann = Step.Parallel then
        for i = l.extent - 1 downto 0 do
          Hashtbl.replace vars l.lvar i;
          List.iter exec l.body
        done
      else
        for i = 0 to l.extent - 1 do
          Hashtbl.replace vars l.lvar i;
          List.iter exec l.body
        done
  in
  List.iter exec prog.items;
  List.filter_map
    (fun (name, _) ->
      if List.mem name input_names then None
      else Some (name, fst (Env.find env name)))
    prog.buffers

let run_prog prog ~inputs = run_prog_mode ~mode:Sequential prog ~inputs

let max_abs_diff a b =
  if Array.length a <> Array.length b then
    error "max_abs_diff: length mismatch (%d vs %d)" (Array.length a)
      (Array.length b);
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

let order_sensitive ?(tol = 1e-9) (prog : Prog.t) ~inputs =
  let reference = run_prog_mode ~mode:Sequential prog ~inputs in
  List.find_opt
    (fun mode ->
      let alt = run_prog_mode ~mode prog ~inputs in
      List.exists
        (fun (name, r) ->
          match List.assoc_opt name alt with
          | None -> true
          | Some a -> max_abs_diff r a > tol)
        reference)
    order_modes

let check_equivalent ?(tol = 1e-4) dag prog ~inputs =
  match (run_dag dag ~inputs, run_prog prog ~inputs) with
  | exception Runtime_error msg -> Error msg
  | reference, scheduled -> (
    let check_output acc out_idx =
      match acc with
      | Error _ as e -> e
      | Ok () -> (
        let name = Op.name (Dag.op dag out_idx) in
        match (List.assoc_opt name reference, List.assoc_opt name scheduled) with
        | Some r, Some s ->
          let d = max_abs_diff r s in
          if d <= tol then Ok ()
          else Error (Printf.sprintf "output %s differs by %g" name d)
        | _ -> Error (Printf.sprintf "output %s missing" name))
    in
    match List.fold_left check_output (Ok ()) (Dag.outputs dag) with
    | Ok () -> Ok ()
    | Error _ as e -> e)
