(** Cross-task training-data store and pretrained cost models.

    Persists every measured (featurized program, latency) pair across
    tuning sessions — one line per program, deduplicated by the
    canonical lowered-program hash the measurement cache computes — and
    pretrains shared GBDTs from the corpus: one per exact task key, one
    per digit-blanked structure class ({!Ansor_util.Task_key}), and one
    global fallback.  A fresh session resolves
    exact -> class -> global -> cold and fine-tunes from the warm model
    (Chen et al., "Learning to Optimize Tensor Programs",
    arXiv:1805.08166).

    Store files are versioned text ([ansor-store-v1]) with [%h]-printed
    floats (bit-exact round-trips), written through
    {!Ansor_util.Atomic_file}, with a salvage loader that skips torn or
    malformed lines. *)

type sample = {
  task_key : string;
  prog_key : string;
      (** canonical lowered-program hash ({!Ansor_measure_service.Cache});
          the dedup key *)
  latency : float;  (** measured seconds, > 0 *)
  features : float array list;  (** per innermost statement *)
}

type t

val create : unit -> t

val size : t -> int

val mem : t -> prog_key:string -> bool

val add : t -> sample -> bool
(** [false] when a sample with the same [prog_key] is already present.
    @raise Invalid_argument on non-positive latency. *)

val add_all : t -> sample list -> int
(** Number of samples actually added (duplicates skipped). *)

val samples : t -> sample list
(** All samples, oldest first (insertion order — deterministic). *)

val samples_for_task : t -> task_key:string -> sample list

val samples_for_class : t -> class_key:string -> sample list
(** Samples whose task key digit-blanks to [class_key]. *)

val task_keys : t -> string list

val class_keys : t -> string list

val to_record : sample -> Ansor_cost_model.Cost_model.record

val save : path:string -> t -> unit

val load : path:string -> (t, string) result
(** Strict load: any malformed line is an error. *)

val load_salvage : path:string -> (t * int, string) result
(** Salvage load: skips malformed lines, returning how many were
    dropped.  Only a missing file, a bad magic line or an empty file is
    an error. *)

val append_batch : path:string -> sample list -> unit
(** Atomically append samples to the store file, creating it (with
    header) when absent.  Does not deduplicate against the file — use
    an in-memory {!t} as the dedup authority and append only what
    {!add} accepted. *)

val gc : t -> keep_per_class:int -> int
(** Keep only the newest [keep_per_class] samples of each structure
    class; returns the number dropped. *)

type store := t

(** The pretrained model bundle: per-exact-task, per-class and global
    GBDTs with the resolution ladder. *)
module Pretrained : sig
  type origin = Exact | Class | Global

  val origin_name : origin -> string

  type t

  val empty : t

  val num_models : t -> int

  val summary : t -> ([ `Task | `Class | `Global ] * string * int) list
  (** One row per model: kind, key and tree count. *)

  val train :
    ?params:Ansor_gbdt.Gbdt.params -> ?min_samples:int -> store -> t
  (** Fit one GBDT per exact task, per structure class and globally,
      skipping groups with fewer than [min_samples] (default 8)
      samples.  Throughput is normalized per task inside each group, so
      different shapes' scales compose. *)

  val resolve : t -> task_key:string -> (Ansor_gbdt.Gbdt.t * origin) option
  (** The warm-start ladder: exact -> class -> global -> [None] (cold). *)

  val resolve_class :
    t -> class_key:string -> (Ansor_gbdt.Gbdt.t * origin) option
  (** The ladder entered one rung down (class -> global) — for sessions
      whose tasks all share one structure class. *)

  val global : t -> (Ansor_gbdt.Gbdt.t * origin) option
  (** The global fallback model alone. *)

  val save : path:string -> t -> unit
  (** Checkpoint file convention: magic [ansor-models-v1], payload
      length, marshalled payload, md5 digest foot; atomic. *)

  val load : path:string -> (t, string) result
  (** Corrupt/foreign/truncated files yield a clear [Error]. *)
end

(** Everything one [--model-store FILE] flag implies for a session. *)
type session = {
  store : t;
  path : string option;  (** append target; [None] = in-memory only *)
  pretrained : Pretrained.t;
  salvaged : int;  (** malformed store lines skipped at load *)
  models_error : string option;
      (** set when [FILE.models] existed but was unusable (the session
          fell back to pretraining from the raw store) *)
}

val models_path : string -> string
(** Where {!open_session} looks for a pretrained bundle: [FILE.models]. *)

val in_memory : ?pretrained:Pretrained.t -> t -> session
(** A session around an in-memory store: nothing is written to disk. *)

val open_session :
  ?params:Ansor_gbdt.Gbdt.params -> path:string -> unit -> (session, string) result
(** Salvage-load the store at [path] (a missing file is an empty store,
    ready for appends), then load the pretrained bundle from
    [models_path path] if a valid one exists, else pretrain in-memory
    from the store.  [Error] only when the store file itself exists but
    is unreadable or has a bad header. *)
