(* Cross-task training-data store and pretrained cost models.

   Tuning sessions measure programs; those (features, latency) pairs are
   only ever used for the session's own GBDT and then thrown away.  This
   module persists them — one line per measured program, keyed by task
   key and deduplicated by the canonical lowered-program hash the
   measurement cache already computes — and pretrains shared models from
   the accumulated corpus: one per exact task, one per digit-blanked
   structure class (Ansor_util.Task_key), and one global fallback.  A
   fresh tuning session then resolves exact -> class -> global -> cold
   and fine-tunes from a warm model instead of from scratch
   (Chen et al., "Learning to Optimize Tensor Programs").

   File format (text, versioned, salvageable like Record/Registry):

     ansor-store-v1
     <task_key> \t <prog_key> \t <latency %h> \t <features>

   where <features> is the per-statement feature vectors, statements
   joined by ';', floats within a statement joined by ',' and printed
   with %h so the round-trip is bit-exact.  Appends go through
   Atomic_file; the salvage loader skips malformed lines and counts
   them. *)

module Task_key = Ansor_util.Task_key
module Atomic_file = Ansor_util.Atomic_file
module Gbdt = Ansor_gbdt.Gbdt
module Cost_model = Ansor_cost_model.Cost_model

let magic = "ansor-store-v1"

type sample = {
  task_key : string;
  prog_key : string;  (* canonical lowered-program hash: the dedup key *)
  latency : float;  (* measured seconds, > 0 *)
  features : float array list;  (* per innermost statement *)
}

type t = {
  mutable rev_samples : sample list;  (* newest first *)
  index : (string, unit) Hashtbl.t;  (* prog_key set *)
  mutable count : int;
}

let create () = { rev_samples = []; index = Hashtbl.create 256; count = 0 }

let size t = t.count

let mem t ~prog_key = Hashtbl.mem t.index prog_key

let add t s =
  if s.latency <= 0.0 then invalid_arg "Model_store.add: latency <= 0";
  if Hashtbl.mem t.index s.prog_key then false
  else begin
    Hashtbl.add t.index s.prog_key ();
    t.rev_samples <- s :: t.rev_samples;
    t.count <- t.count + 1;
    true
  end

let add_all t samples =
  List.fold_left (fun n s -> if add t s then n + 1 else n) 0 samples

let samples t = List.rev t.rev_samples

let samples_for_task t ~task_key =
  List.filter (fun s -> String.equal s.task_key task_key) (samples t)

let samples_for_class t ~class_key =
  List.filter
    (fun s -> String.equal (Task_key.class_key s.task_key) class_key)
    (samples t)

let task_keys t =
  List.sort_uniq String.compare (List.map (fun s -> s.task_key) (samples t))

let class_keys t =
  List.sort_uniq String.compare
    (List.map (fun s -> Task_key.class_key s.task_key) (samples t))

let to_record (s : sample) : Cost_model.record =
  { features = s.features; task_key = s.task_key; latency = s.latency }

(* ---- codec -------------------------------------------------------------- *)

let encode_features features =
  String.concat ";"
    (List.map
       (fun stmt ->
         String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%h") stmt)))
       features)

let decode_features str =
  if String.equal str "" then []
  else
    String.split_on_char ';' str
    |> List.map (fun stmt ->
           String.split_on_char ',' stmt
           |> List.map float_of_string |> Array.of_list)

let encode_sample s =
  if String.contains s.task_key '\t' || String.contains s.prog_key '\t' then
    invalid_arg "Model_store: tab in key";
  Printf.sprintf "%s\t%s\t%h\t%s" s.task_key s.prog_key s.latency
    (encode_features s.features)

let decode_sample line =
  match String.split_on_char '\t' line with
  | [ task_key; prog_key; lat; feats ] -> (
    match float_of_string_opt lat with
    | Some latency when latency > 0.0 && not (String.equal prog_key "") -> (
      match decode_features feats with
      | features -> Some { task_key; prog_key; latency; features }
      | exception _ -> None)
    | _ -> None)
  | _ -> None

(* ---- persistence -------------------------------------------------------- *)

let save ~path t =
  Atomic_file.write ~path (fun oc ->
      output_string oc (magic ^ "\n");
      List.iter (fun s -> output_string oc (encode_sample s ^ "\n")) (samples t))

let load_lines ~strict path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error (path ^ ": empty store file")
        | header when not (String.equal header magic) ->
          Error
            (Printf.sprintf "%s: bad magic %S (expected %s)" path header magic)
        | _ ->
          let t = create () in
          let skipped = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if not (String.equal line "") then
                 match decode_sample line with
                 | Some s -> ignore (add t s)
                 | None -> incr skipped
             done
           with End_of_file -> ());
          if strict && !skipped > 0 then
            Error (Printf.sprintf "%s: %d malformed line(s)" path !skipped)
          else Ok (t, !skipped))

let load ~path =
  match load_lines ~strict:true path with Ok (t, _) -> Ok t | Error e -> Error e

let load_salvage ~path = load_lines ~strict:false path

let append_batch ~path samples =
  if samples <> [] then
    if Sys.file_exists path then
      Atomic_file.append_lines ~path (List.map encode_sample samples)
    else
      Atomic_file.write ~path (fun oc ->
          output_string oc (magic ^ "\n");
          List.iter
            (fun s -> output_string oc (encode_sample s ^ "\n"))
            samples)

(* Keep only the newest [keep_per_class] samples of each structure class
   (newest = latest appended).  Returns the number dropped. *)
let gc t ~keep_per_class =
  if keep_per_class < 0 then invalid_arg "Model_store.gc: negative keep";
  let kept_per_class = Hashtbl.create 16 in
  let kept_rev = ref [] and dropped = ref 0 in
  (* rev_samples is newest-first, so a simple scan keeps the newest *)
  List.iter
    (fun s ->
      let cls = Task_key.class_key s.task_key in
      let n = Option.value ~default:0 (Hashtbl.find_opt kept_per_class cls) in
      if n < keep_per_class then begin
        Hashtbl.replace kept_per_class cls (n + 1);
        kept_rev := s :: !kept_rev
      end
      else begin
        Hashtbl.remove t.index s.prog_key;
        incr dropped
      end)
    t.rev_samples;
  t.rev_samples <- List.rev !kept_rev;
  t.count <- t.count - !dropped;
  !dropped

(* ---- pretrained bundle --------------------------------------------------- *)

module Pretrained = struct
  type origin = Exact | Class | Global

  let origin_name = function
    | Exact -> "exact"
    | Class -> "class"
    | Global -> "global"

  type t = {
    exact : (string * Gbdt.t) list;  (* task_key -> model *)
    classes : (string * Gbdt.t) list;  (* class_key -> model *)
    global : Gbdt.t option;
  }

  let empty = { exact = []; classes = []; global = None }

  let num_models t =
    List.length t.exact + List.length t.classes
    + match t.global with Some _ -> 1 | None -> 0

  let summary t =
    List.map (fun (k, m) -> (`Task, k, Gbdt.num_trees m)) t.exact
    @ List.map (fun (k, m) -> (`Class, k, Gbdt.num_trees m)) t.classes
    @
    match t.global with
    | Some m -> [ (`Global, "*", Gbdt.num_trees m) ]
    | None -> []

  (* Fit one model per grouping with at least [min_samples] samples.
     Cost_model.train normalizes throughput per task inside each group,
     so classes mixing several concrete shapes compose correctly. *)
  let train ?params ?(min_samples = 8) store =
    let fit samples =
      if List.length samples < min_samples then None
      else Cost_model.gbdt (Cost_model.train ?params (List.map to_record samples))
    in
    let group_by key_of =
      let keys =
        List.sort_uniq String.compare (List.map key_of (samples store))
      in
      List.filter_map
        (fun k ->
          let group =
            List.filter (fun s -> String.equal (key_of s) k) (samples store)
          in
          Option.map (fun m -> (k, m)) (fit group))
        keys
    in
    {
      exact = group_by (fun s -> s.task_key);
      classes = group_by (fun s -> Task_key.class_key s.task_key);
      global = fit (samples store);
    }

  let global t = Option.map (fun m -> (m, Global)) t.global

  (* class -> global (for sessions spanning several tasks of one class) *)
  let resolve_class t ~class_key =
    match List.assoc_opt class_key t.classes with
    | Some m -> Some (m, Class)
    | None -> global t

  (* exact -> class -> global -> cold *)
  let resolve t ~task_key =
    match List.assoc_opt task_key t.exact with
    | Some m -> Some (m, Exact)
    | None -> resolve_class t ~class_key:(Task_key.class_key task_key)

  (* Persistence: Checkpoint convention (magic, length, marshal, digest). *)
  let file_magic = "ansor-models-v1"

  let save ~path t =
    let payload = Marshal.to_string (t : t) [] in
    Atomic_file.write ~path (fun oc ->
        Printf.fprintf oc "%s\n%d\n" file_magic (String.length payload);
        output_string oc payload;
        Printf.fprintf oc "md5:%s\n" (Digest.to_hex (Digest.string payload)))

  let load ~path : (t, string) result =
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try
            let header = input_line ic in
            if not (String.equal header file_magic) then
              Error
                (Printf.sprintf "%s: bad magic %S (expected %s)" path header
                   file_magic)
            else
              let len = int_of_string (input_line ic) in
              if len < 0 then Error (path ^ ": bad payload length")
              else begin
                let payload = really_input_string ic len in
                let footer = input_line ic in
                let expect = "md5:" ^ Digest.to_hex (Digest.string payload) in
                if not (String.equal footer expect) then
                  Error (path ^ ": digest mismatch: models file torn")
                else Ok (Marshal.from_string payload 0 : t)
              end
          with
          | End_of_file -> Error (path ^ ": truncated models file")
          | Failure _ -> Error (path ^ ": malformed models header")
          | e -> Error (path ^ ": " ^ Printexc.to_string e))
end

(* ---- session ------------------------------------------------------------- *)

(* Everything a tuning session needs from one --model-store flag: the
   store itself (possibly empty for a fresh path), the append target,
   and the pretrained bundle — loaded from <path>.models when a valid
   one exists, else trained in-memory from the store. *)

type session = {
  store : t;
  path : string option;
  pretrained : Pretrained.t;
  salvaged : int;  (* malformed store lines skipped at load *)
  models_error : string option;  (* set when <path>.models was unusable *)
}

let models_path path = path ^ ".models"

let in_memory ?(pretrained = Pretrained.empty) store =
  { store; path = None; pretrained; salvaged = 0; models_error = None }

let open_session ?params ~path () =
  let loaded =
    if Sys.file_exists path then load_salvage ~path
    else Ok (create (), 0) (* fresh path: appends will create it *)
  in
  match loaded with
  | Error e -> Error e
  | Ok (store, salvaged) ->
    let pretrain () =
      if size store = 0 then Pretrained.empty else Pretrained.train ?params store
    in
    let pretrained, models_error =
      let mp = models_path path in
      if Sys.file_exists mp then
        match Pretrained.load ~path:mp with
        | Ok p -> (p, None)
        | Error e -> (pretrain (), Some e) (* fall back to the raw store *)
      else (pretrain (), None)
    in
    Ok { store; path = Some path; pretrained; salvaged; models_error }
