(** Structure-class keys shared by the registry's similarity ladder, the
    task scheduler and the cross-task model store.  A class key is the
    task key with each digit run collapsed to one ['#'], so two shapes
    of the same operator skeleton compare equal. *)

val class_key : string -> string
(** Digit runs collapsed to ['#']: ["mm[512x64]"] -> ["mm[#x#]"]. *)

val shape_features : string -> float list
(** [log] of every concrete size in the key, in order.  Keys of one
    structure class always yield equal-length vectors. *)

val shape_distance : string -> string -> float
(** L1 distance between shape features; [infinity] when the keys have
    different numbers of sizes (never same-class keys). *)

val same_class : string -> string -> bool
(** [same_class a b] iff the two keys share a structure class. *)
