(* Structure-class keys: task keys with concrete sizes blanked out.

   A task key ("machine/workload[dims]") names one exact shape.  Its
   *structure class* is the key with every digit run collapsed to a
   single '#', so "matmul[512x512]" and "matmul[1024x1024]" share a
   class while "conv[...]" does not.  The registry's similarity ladder,
   the task scheduler's Appendix-A similarity term and the cross-task
   model store all group by this class; keeping the definition here
   guarantees the ladders can never diverge. *)

let class_key key =
  let b = Buffer.create (String.length key) in
  let in_num = ref false in
  String.iter
    (fun c ->
      if c >= '0' && c <= '9' then begin
        if not !in_num then Buffer.add_char b '#';
        in_num := true
      end
      else begin
        in_num := false;
        Buffer.add_char b c
      end)
    key;
  Buffer.contents b

(* Shape features: every concrete size in the key, in order, as logs.
   Two keys of one structure class always yield equal-length vectors
   (the non-digit skeleton is identical). *)
let shape_features key =
  let feats = ref [] and cur = ref 0 and in_num = ref false in
  String.iter
    (fun c ->
      if c >= '0' && c <= '9' then begin
        cur := (!cur * 10) + (Char.code c - Char.code '0');
        in_num := true
      end
      else if !in_num then begin
        feats := !cur :: !feats;
        cur := 0;
        in_num := false
      end)
    key;
  if !in_num then feats := !cur :: !feats;
  List.rev_map (fun n -> log (float_of_int (max 1 n))) !feats

let shape_distance a b =
  let fa = shape_features a and fb = shape_features b in
  if List.length fa <> List.length fb then infinity
  else List.fold_left2 (fun acc x y -> acc +. Float.abs (x -. y)) 0.0 fa fb

let same_class a b = String.equal (class_key a) (class_key b)
