let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> log (Float.max x 1e-12)) xs in
    exp (mean logs)

let sorted xs = List.sort compare xs

let quantile q = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    let lo = max 0 (min lo (n - 1)) and hi = max 0 (min hi (n - 1)) in
    let frac = pos -. floor pos in
    ((1.0 -. frac) *. a.(lo)) +. (frac *. a.(hi))

let median xs = quantile 0.5 xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let argmax score = function
  | [] -> None
  | x :: rest ->
    let best, _ =
      List.fold_left
        (fun (bx, bs) y ->
          let s = score y in
          if s > bs then (y, s) else (bx, bs))
        (x, score x) rest
    in
    Some best

let argmin score xs = argmax (fun x -> -.score x) xs

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

(* fractional ranks with ties sharing their average rank (1-based) *)
let ranks xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(i) a.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && a.(order.(!j + 1)) = a.(order.(!i)) do incr j done;
    (* positions !i..!j hold equal values: average their 1-based ranks *)
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  Array.to_list r

let pearson xs ys =
  let n = List.length xs in
  if n <> List.length ys || n < 2 then 0.0
  else
    let mx = mean xs and my = mean ys in
    let num =
      List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
    in
    let sx = stddev xs and sy = stddev ys in
    let denom = float_of_int n *. sx *. sy in
    if denom <= 1e-12 then 0.0 else num /. denom

let spearman xs ys =
  if List.length xs <> List.length ys || List.length xs < 2 then 0.0
  else pearson (ranks xs) (ranks ys)
