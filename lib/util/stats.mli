(** Small statistics helpers used by benches and the task scheduler. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list.
    Non-positive entries are clamped to [1e-12]. *)

val median : float list -> float
(** Median; 0. on the empty list. *)

val quantile : float -> float list -> float
(** [quantile q xs] with [q] in [0,1]; linear interpolation between order
    statistics; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists of length < 2. *)

val argmax : ('a -> float) -> 'a list -> 'a option
(** First element attaining the maximum score, or [None] on empty input. *)

val argmin : ('a -> float) -> 'a list -> 'a option

val clamp : lo:float -> hi:float -> float -> float

val pearson : float list -> float list -> float
(** Pearson correlation of two equal-length series; 0. when undefined. *)

val ranks : float list -> float list
(** Fractional 1-based ranks of the values (ties share their average
    rank), in input order. *)

val spearman : float list -> float list -> float
(** Spearman rank correlation of two equal-length series: {!pearson} over
    {!ranks}; 0. when undefined (length mismatch, < 2 points, or a
    constant series). *)
