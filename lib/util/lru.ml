(* Doubly-linked recency list + hashtable index; O(1) find/add/evict. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  index : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    cap = capacity;
    index = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let size t = Hashtbl.length t.index
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let mem t key = Hashtbl.mem t.index key

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.index key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    Some n.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.index n.key;
    t.evictions <- t.evictions + 1

let add t key value =
  (match Hashtbl.find_opt t.index key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_front t n
  | None ->
    if size t >= t.cap then evict_lru t;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.index key n;
    push_front t n);
  ()

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
