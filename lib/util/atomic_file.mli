(** Atomic file replacement: write-temp + rename.

    Every persistent artifact of a tuning session (record logs, dedup
    caches, checkpoints) goes through this module, so an interrupted save
    — crash, OOM kill, Ctrl-C — can never leave a truncated file where a
    previously-valid one stood.  The temp file is created in the target's
    own directory (rename is only atomic within one filesystem) and
    renamed over the destination only after the writer ran to completion
    and the channel was flushed and closed. *)

val write : path:string -> (out_channel -> unit) -> unit
(** [write ~path f] runs [f] on a temp channel in [path]'s directory, then
    atomically renames the temp file to [path].  If [f] raises, the temp
    file is removed and [path] is left untouched. *)

val write_string : path:string -> string -> unit
(** [write_string ~path s] atomically replaces [path]'s content with [s]. *)

val append_lines : path:string -> string list -> unit
(** [append_lines ~path lines] appends every line (each followed by ["\n"])
    with {e one} copy + rename, so appending a batch costs one O(file-size)
    rewrite instead of one per line.  A torn append can lose the new batch,
    but never corrupts the lines already present.  The empty batch is a
    no-op (the file is not even touched). *)

val append_line : path:string -> string -> unit
(** [append_line ~path line] = [append_lines ~path [line]]. *)
