let divisors n =
  if n <= 0 then invalid_arg "Factorize.divisors: n must be positive";
  let small = ref [] and large = ref [] in
  let i = ref 1 in
  while !i * !i <= n do
    if n mod !i = 0 then begin
      small := !i :: !small;
      if !i <> n / !i then large := n / !i :: !large
    end;
    incr i
  done;
  List.rev_append !small !large

let prime_factors n =
  if n <= 0 then invalid_arg "Factorize.prime_factors: n must be positive";
  let rec go n d acc =
    if n = 1 then List.rev acc
    else if d * d > n then List.rev (n :: acc)
    else if n mod d = 0 then go (n / d) d (d :: acc)
    else go n (d + 1) acc
  in
  go n 2 []

let rec factorizations_uncached n k =
  if n <= 0 || k <= 0 then invalid_arg "Factorize.factorizations";
  if k = 1 then [ [ n ] ]
  else
    let ds = divisors n in
    List.concat_map
      (fun d ->
        List.map (fun rest -> d :: rest) (factorizations_uncached (n / d) (k - 1)))
      ds

(* Annotation sampling asks for the same (n, k) factorization lists over
   and over (tile-size resampling, mutation, constrained replay); the
   recursion re-enumerates divisor trees exponentially each time.  Memoize
   per-(n, k) — subproblems included — behind a mutex so worker domains can
   share the table. *)
let memo : (int * int, int list list) Hashtbl.t = Hashtbl.create 256
let memo_mutex = Mutex.create ()
let memo_limit = 8192

let memo_find key =
  Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt memo key)

let memo_store key v =
  Mutex.protect memo_mutex (fun () ->
      if Hashtbl.length memo >= memo_limit then Hashtbl.reset memo;
      Hashtbl.replace memo key v)

let factorizations n k =
  if n <= 0 || k <= 0 then invalid_arg "Factorize.factorizations";
  let rec go n k =
    if k = 1 then [ [ n ] ]
    else
      match memo_find (n, k) with
      | Some r -> r
      | None ->
        let r =
          List.concat_map
            (fun d -> List.map (fun rest -> d :: rest) (go (n / d) (k - 1)))
            (divisors n)
        in
        memo_store (n, k) r;
        r
  in
  go n k

let rec count_factorizations n k =
  if n <= 0 || k <= 0 then invalid_arg "Factorize.count_factorizations";
  if k = 1 then 1
  else
    List.fold_left
      (fun acc d -> acc + count_factorizations (n / d) (k - 1))
      0 (divisors n)

let random_factorization rng n k =
  if n <= 0 || k <= 0 then invalid_arg "Factorize.random_factorization";
  let parts = Array.make k 1 in
  List.iter
    (fun p ->
      let i = Rng.int rng k in
      parts.(i) <- parts.(i) * p)
    (prime_factors n);
  Array.to_list parts

let weighted_factorization rng n ~weights =
  let k = Array.length weights in
  if n <= 0 || k <= 0 then invalid_arg "Factorize.weighted_factorization";
  let parts = Array.make k 1 in
  List.iter
    (fun p ->
      let i = Rng.weighted_index rng weights in
      parts.(i) <- parts.(i) * p)
    (prime_factors n);
  Array.to_list parts
