(** A bounded least-recently-used cache (string keys).

    Two subsystems build on it: the serving dispatcher holds compiled
    programs keyed by task key (a cold or evicted subgraph is simply
    recompiled on the next request), and the cost model's batch scoring
    service memoizes per-program feature vectors and scores keyed by the
    canonical lowered-program hash.  Hit / miss / eviction counters feed
    each owner's telemetry.

    Not domain-safe: owners only touch the cache from the calling domain
    (worker domains receive immutable per-batch inputs). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** Bumps the entry to most-recently-used and counts a hit; a miss is
    counted otherwise. *)

val mem : 'a t -> string -> bool
(** No recency bump, no counter. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or replaces) as most-recently-used, evicting the
    least-recently-used entry if the cache would exceed capacity. *)

val keys : 'a t -> string list
(** Most-recently-used first. *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
