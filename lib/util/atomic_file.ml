let temp_for path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  Filename.temp_file ~temp_dir:dir (base ^ ".") ".tmp"

let write ~path f =
  let tmp = temp_for path in
  let oc = open_out tmp in
  match
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_string ~path s = write ~path (fun oc -> output_string oc s)

let append_lines ~path lines =
  if lines <> [] then begin
    let existing =
      match open_in_bin path with
      | exception Sys_error _ -> ""
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
    in
    write ~path (fun oc ->
        output_string oc existing;
        List.iter
          (fun line ->
            output_string oc line;
            output_char oc '\n')
          lines)
  end

let append_line ~path line = append_lines ~path [ line ]
