(** Deterministic, splittable pseudo-random number generator.

    All randomized components of the system (program sampling, evolutionary
    search, the task scheduler's epsilon-greedy policy, measurement noise)
    draw from values of type {!t}.  The generator is a SplitMix64 variant:
    cheap, statistically adequate for search, and {e splittable}, so
    independent subsystems can be given independent streams derived from a
    single seed, which keeps every experiment reproducible. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of the
    future stream of [t]. Advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val state : t -> int64
(** The raw stream cursor — everything there is to a generator.  Persisted
    by checkpoints so a resumed session draws the exact same stream an
    uninterrupted one would. *)

val set_state : t -> int64 -> unit
(** Rewinds/forwards [t] to a cursor previously read with {!state}. *)

val of_state : int64 -> t
(** A generator starting at a saved cursor ([of_state (state t)] behaves
    like [copy t]). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val choice : t -> 'a array -> 'a
(** Uniform choice. @raise Invalid_argument on an empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on an empty list. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] draws index [i] with probability proportional to
    [max w.(i) 0.]. Falls back to uniform choice when all weights are
    non-positive. @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k n] draws [min k n] distinct integers from
    [0, n). *)
