(** Integer factorization utilities.

    Tile-size sampling and tile-size mutation both need to enumerate or
    sample ways of writing a loop extent as an ordered product of factors;
    these helpers centralize that arithmetic. *)

val divisors : int -> int list
(** [divisors n] is the sorted list of positive divisors of [n].
    @raise Invalid_argument if [n <= 0]. *)

val prime_factors : int -> int list
(** [prime_factors n] is the multiset of prime factors in ascending order,
    e.g. [prime_factors 12 = [2; 2; 3]]. [prime_factors 1 = []]. *)

val factorizations : int -> int -> int list list
(** [factorizations n k] lists all ordered [k]-tuples of positive integers
    whose product is [n]. The count grows quickly; intended for small [k]
    (<= 5) as used by multi-level tiling.  Results are memoized per
    [(n, k)] (annotation sampling issues the same queries repeatedly);
    the memo table is shared and mutex-protected, safe from worker
    domains.  Do {e not} mutate the returned lists. *)

val factorizations_uncached : int -> int -> int list list
(** The same enumeration without the memo table — a fresh computation for
    tests and cross-checks. *)

val count_factorizations : int -> int -> int
(** [count_factorizations n k] = [List.length (factorizations n k)] without
    materializing the list. *)

val random_factorization : Rng.t -> int -> int -> int list
(** [random_factorization rng n k] draws one ordered [k]-tuple with product
    [n], approximately uniformly (by distributing prime factors to random
    positions). *)

val weighted_factorization :
  Rng.t -> int -> weights:float array -> int list
(** Like {!random_factorization} with [Array.length weights] parts, but
    each prime factor lands in position [i] with probability proportional
    to [weights.(i)].  Used to bias tile-size sampling toward realistic
    shapes (large outer tiles, small middle levels) without removing any
    point from the space. *)
