type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let split t = { state = next_int64 t }

let copy t = { state = t.state }

let state t = t.state

let set_state t s = t.state <- s

let of_state s = { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
(* 62 usable bits, always non-negative as an OCaml int. *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted_index t w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.weighted_index: empty array";
  let total = Array.fold_left (fun acc x -> acc +. Float.max x 0.0) 0.0 w in
  if total <= 0.0 then int t n
  else begin
    let target = float t total in
    let rec go i acc =
      if i = n - 1 then i
      else
        let acc = acc +. Float.max w.(i) 0.0 in
        if target < acc then i else go (i + 1) acc
    in
    go 0 0.0
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t k n =
  let k = min k n in
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.to_list (Array.sub idx 0 k)
