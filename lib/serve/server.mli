(** The streaming serving tier: open-loop load, admission control, sharded
    dispatch, and canary-gated live schedule rollout.

    Where {!Dispatcher} drains a fixed request list (closed-loop — fine
    for measuring compiled programs, useless for studying overload), this
    module serves an {!Loadgen} arrival trace through a deterministic
    discrete-event loop in virtual time:

    {v
    Loadgen ──arrivals──▶ Admission ──queue──▶ workers ──▶ sojourn histogram
                │ quota / shed                    │
                ▼                                 ▼ per layer
           classified outcome            shard LRU ─▶ shard histogram
                                                  │
                                    canary gate ◀─┴─ background tuner
    v}

    {b Sharding.}  Task keys hash across [config.shards] shards, each with
    its own compiled-program LRU and exact-quantile latency histogram — a
    hot key can evict within its shard but cannot evict the world, and
    p99/p999 are tracked per shard ({!Histogram.merge} combines them into
    the global service view).

    {b Admission.}  Every offered request is classified totally (served /
    shed with reason / quota-rejected); see {!Admission}.  Conservation
    ([offered = served + shed + quota_rejected]) holds exactly after every
    {!run}.

    {b Live rollout.}  A background tuner keeps improving the hottest key
    between requests (one {!Ansor_search.Tuner} round every
    [tuner.every] virtual seconds, measured on the domain pool).  A better
    program never replaces the incumbent directly: it enters a {e canary
    gate} — a configurable fraction of the key's traffic runs the
    candidate while the rest runs the incumbent, both arms feeding
    exact-quantile histograms.  Once both arms have [min_samples], the
    candidate is {e promoted} (median strictly better, p95 within
    [margin] of the incumbent's) with a generation-stamp bump that
    invalidates the shard LRU entry, or {e rolled back} — traffic
    restored to the never-replaced incumbent — with a telemetry event
    either way.  {!propose} feeds the same gate from outside (tests
    inject deliberately bad candidates to prove rollback).

    Everything is driven by virtual time and seeded RNG streams: two runs
    with the same config produce bit-identical statistics (except
    [wall_seconds]). *)

open Ansor_workloads

type canary_config = {
  fraction : float;  (** share of a key's traffic routed to the candidate,
                         in (0, 1) *)
  min_samples : int;  (** per-arm sample floor before deciding *)
  margin : float;  (** allowed p95 slack before a candidate is rejected *)
}

val default_canary : canary_config
(** fraction 0.2, 24 samples per arm, 5% margin. *)

type tuner_config = {
  every : float;  (** virtual seconds between background tuner rounds *)
  trials : int;  (** measurements per round *)
}

type config = {
  shards : int;
  capacity : int;  (** per-shard compiled-program LRU capacity *)
  service_workers : int;  (** virtual in-flight request slots *)
  pool_workers : int;  (** measurement domains for the background tuner *)
  noise : float;  (** execution-jitter stddev (0 = deterministic latencies) *)
  seed : int;
  naive : bool;  (** bypass the registry and serve naive default schedules *)
  load : Loadgen.config;
  admission : Admission.config;
  canary : canary_config;
  tuner : tuner_config option;  (** [None] disables background tuning *)
}

val default_config : config
(** 4 shards, capacity 64, 2 service workers, 1 pool worker, noise 0.03,
    registry dispatch, default load/admission/canary, no background
    tuner. *)

type t

val create :
  ?config:config ->
  ?model_store:Ansor_model_store.Model_store.session ->
  registry:Ansor_registry.Registry.t ->
  machine:Ansor_machine.Machine.t ->
  Workloads.net ->
  t
(** Resolves every layer through the registry ladder up front.

    [model_store] attaches a cross-task model store to the background
    tuner: its first retune warm-starts from the pretrained model the
    exact -> class -> global ladder resolves for the hot key (plus the
    key's class samples as auxiliary training data), and every measured
    batch is appended back to the store — so canary retunes of hot keys
    begin warm instead of cold.  An empty store leaves the server
    bit-identical to a storeless one.

    @raise Invalid_argument on an empty network or an out-of-range
    config (shards/capacity/workers < 1, canary fraction outside (0,1),
    non-positive tuner interval). *)

val net : t -> Workloads.net
val machine : t -> Ansor_machine.Machine.t

val run : t -> requests:int -> unit
(** Generate [requests] open-loop arrivals and play the trace to
    completion (the queue fully drains).  May be called repeatedly; the
    trace restarts at virtual time 0 but statistics accumulate.
    @raise Invalid_argument if [requests < 1]. *)

val warm : t -> unit
(** Compile every layer's incumbent without serving (cold-start control). *)

(** {1 Live rollout} *)

val propose :
  t -> origin:string -> key:string -> Ansor_sched.State.t -> (unit, string) result
(** Enter a candidate schedule for [key] into the canary gate.  [Error]
    when the key is unknown, a candidate is already in flight, or the
    state does not lower.  The background tuner uses the same entry
    point with [origin "tuner"]. *)

val keys : t -> string list
val generation : t -> key:string -> int option
(** Promotion count for a key ([None] if unknown). *)

val candidate_active : t -> key:string -> bool

val incumbent_latency : t -> key:string -> float option
(** The incumbent compiled program's noise-free simulator estimate. *)

val nominal_latency : t -> float
(** One request's noise-free end-to-end service time (sum of weighted
    incumbent layer estimates) — the capacity anchor for choosing arrival
    rates in benches and tests. *)

(** {1 Telemetry} *)

type event_kind = Proposed | Promoted | Rolled_back

val event_kind_to_string : event_kind -> string

type event = {
  vtime : float;
  key : string;
  kind : event_kind;
  origin : string;  (** ["tuner"] or the {!propose} caller's tag *)
  candidate_p95 : float;
  incumbent_p95 : float;
      (** for [Proposed], the two fields carry the simulator estimates
          instead (no live samples yet) *)
}

type shard_stats = {
  shard_id : int;
  runs : int;
  hits : int;
  misses : int;
  evictions : int;
  latency : Histogram.summary;
}

type tenant_stats = {
  tenant : string;
  offered : int;
  served : int;
  shed : int;
  quota_rejected : int;
}

type stats = {
  offered : int;
  served : int;
  shed : int;  (** [shed_queue_full + shed_displaced] *)
  shed_queue_full : int;
  shed_displaced : int;
  quota_rejected : int;
  max_queue_depth : int;
  layer_runs : int;
  exact : int;
  adapted : int;
  defaulted : int;
  invalidations : int;  (** stale shard-LRU entries recompiled after a
                            promotion *)
  promotions : int;
  rollbacks : int;
  proposals : int;
  tuner_rounds : int;
  warm_starts : int;
      (** background-tuner warm starts from the attached model store *)
  store_samples : int;
      (** measured samples the background tuner contributed to the store *)
  sojourn : Histogram.summary;
      (** accepted-request end-to-end latency, queueing included *)
  service : Histogram.summary;  (** merged per-shard execution latency *)
  shards : shard_stats list;
  tenants : tenant_stats list;  (** sorted by tenant name *)
  events : event list;  (** oldest first *)
  vtime : float;
  wall_seconds : float;
}

val stats : t -> stats

val conserved : stats -> bool
(** [offered = served + shed + quota_rejected] — exact once {!run}
    returns (the queue has drained). *)

val stats_json : stats -> string
(** Stable single-object JSON: every counter, the conservation flag, the
    sojourn/service latency summaries (with p999), per-shard and
    per-tenant breakdowns, and the rollout event log. *)

val report : t -> string
(** Human report: conservation line, latency summaries, per-shard and
    per-tenant tables, rollout events, sojourn histogram. *)
