(** Per-request latency histogram.

    Retains every sample (serving batches are bounded, and exact
    percentiles beat bucketed approximations for latency reports) plus
    power-of-two bucket counts for a compact ASCII rendering.  Quantiles
    use the same linear interpolation as {!Ansor_util.Stats.quantile}. *)

type t

val create : unit -> t
val add : t -> float -> unit
(** @raise Invalid_argument on negative or non-finite samples. *)

val count : t -> int

val merge : t list -> t
(** A fresh histogram holding every sample of the inputs (which are left
    untouched).  Because samples are retained exactly, quantiles of the
    merged histogram equal quantiles of the concatenated sample sets —
    how the serving tier combines per-shard histograms into a global
    view. *)

type summary = {
  count : int;
  mean : float;  (** 0 when empty, like the quantiles *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

val summary : t -> summary

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0,1]; 0 when empty. *)

val summary_line : summary -> string
(** e.g. ["n=100 mean=1.23ms p50=1.20ms p95=1.40ms p99=1.55ms p99.9=1.60ms"]
    (times in milliseconds). *)

val render : t -> string
(** ASCII bucket chart, one power-of-two latency bucket per line; the
    empty histogram renders as ["(no samples)\n"]. *)
