(** A bounded least-recently-used cache (string keys).

    The dispatcher holds compiled programs in one of these, keyed by
    {!Ansor_search.Task.key}: a serving process bounds its resident
    compiled-program footprint, and a cold or evicted subgraph is simply
    recompiled on the next request that needs it.  Hit / miss / eviction
    counters feed the serving telemetry.

    Not domain-safe: the dispatcher only touches the cache from the
    calling domain (workers receive immutable per-batch snapshots). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** Bumps the entry to most-recently-used and counts a hit; a miss is
    counted otherwise. *)

val mem : 'a t -> string -> bool
(** No recency bump, no counter. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or replaces) as most-recently-used, evicting the
    least-recently-used entry if the cache would exceed capacity. *)

val keys : 'a t -> string list
(** Most-recently-used first. *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
