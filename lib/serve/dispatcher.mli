(** The inference dispatcher: serve a network from a schedule registry.

    The tuning side of the repo {e finds} good programs; this module
    {e runs} them.  Given a {!Ansor_workloads.Workloads.net} and a
    {!Ansor_registry.Registry}, the dispatcher compiles each subgraph once
    (registry resolution → {!Ansor_sched.Lower} → {!Ansor_sched.Prog}),
    holds the compiled programs in a bounded {!Lru} keyed by
    {!Ansor_search.Task.key}, and executes inference requests on a
    reusable domain pool ({!Ansor_measure_service.Pool}, the measurement
    service's worker machinery).

    A {e request} is one end-to-end inference of the network: every unique
    subgraph executed through the analytical {!Ansor_machine.Simulator}
    (weighted by its appearance count, with per-request log-normal
    execution jitter like the measurer's), yielding one end-to-end latency
    sample for the {!Histogram}.  {!verify_outputs} additionally executes
    the {e same compiled programs} on real tensors through
    {!Ansor_interp.Interp} and compares against the naive evaluation — the
    serving-side soundness check (keep shapes small).

    Requests are dispatched in batches.  Compilation and all counter /
    cache mutation happen on the calling domain; workers only evaluate
    immutable per-batch snapshots with private RNG streams derived from
    the request id, so results are identical for any worker count. *)

open Ansor_workloads

type config = {
  capacity : int;  (** LRU capacity, in compiled programs *)
  num_workers : int;  (** request-execution domains (1 = run inline) *)
  batch : int;  (** requests per dispatch batch *)
  noise : float;  (** execution-jitter stddev (0 = deterministic latencies) *)
  naive : bool;  (** bypass the registry and serve naive default schedules *)
  seed : int;
}

val default_config : config
(** capacity 64, 1 worker, batch 16, noise 0.03, registry dispatch, seed 0. *)

type t

val create :
  ?config:config ->
  registry:Ansor_registry.Registry.t ->
  machine:Ansor_machine.Machine.t ->
  Workloads.net ->
  t
(** @raise Invalid_argument on a network with no layers or a config with
    non-positive capacity/batch. *)

val net : t -> Workloads.net
val machine : t -> Ansor_machine.Machine.t

val serve : t -> requests:int -> unit
(** Dispatches [requests] end-to-end inference requests (in batches of
    [config.batch]); all telemetry accumulates in the dispatcher. *)

val warm : t -> unit
(** Compiles every layer without serving a request (cold-start control). *)

val verify_outputs : ?tol:float -> ?seed:int -> t -> (unit, string) result
(** Executes every layer's {e compiled} program on random inputs through
    the interpreter and compares against the naive DAG evaluation
    ({!Ansor_interp.Interp.check_equivalent}, default tolerance).  [Error]
    names the first mismatching layer.  Interprets real arrays — small
    shapes only. *)

(** {1 Telemetry} *)

type stats = {
  requests : int;
  layer_runs : int;  (** subgraph executions, appearance counts included *)
  cache_hits : int;  (** compiled-program LRU hits *)
  cache_misses : int;  (** misses = compilations *)
  evictions : int;
  exact : int;  (** compilations served by an exact registry record *)
  adapted : int;  (** ... by similarity adaptation *)
  defaulted : int;  (** ... by the naive default schedule *)
  latency : Histogram.summary;  (** per-request end-to-end latency *)
  wall_seconds : float;  (** wall-clock time spent inside {!serve} *)
}

val fallbacks : stats -> int
(** [adapted + defaulted] — compilations that did not hit an exact tuned
    record. *)

val stats : t -> stats
val histogram : t -> Histogram.t

val stats_json : stats -> string
(** Stable single-object JSON with every counter, the fallback total and
    the latency summary (seconds). *)

val report : t -> string
(** Human latency report: request/latency summary, counter lines and the
    ASCII histogram. *)
