module Registry = Ansor_registry.Registry
module Task = Ansor_search.Task
module State = Ansor_sched.State
module Lower = Ansor_sched.Lower
module Prog = Ansor_sched.Prog
module Simulator = Ansor_machine.Simulator
module Machine = Ansor_machine.Machine
module Interp = Ansor_interp.Interp
module Pool = Ansor_measure_service.Pool
module Lru = Ansor_util.Lru
module Rng = Ansor_util.Rng
module Workloads = Ansor_workloads.Workloads

type config = {
  capacity : int;
  num_workers : int;
  batch : int;
  noise : float;
  naive : bool;
  seed : int;
}

let default_config =
  {
    capacity = 64;
    num_workers = 1;
    batch = 16;
    noise = 0.03;
    naive = false;
    seed = 0;
  }

type compiled = { prog : Prog.t; outcome : Registry.outcome }

type t = {
  config : config;
  machine : Machine.t;
  registry : Registry.t;
  net : Workloads.net;
  layers : (Task.t * int) array;  (* unique subgraphs with weights *)
  cache : compiled Lru.t;
  hist : Histogram.t;
  mutable requests : int;
  mutable layer_runs : int;
  mutable exact : int;
  mutable adapted : int;
  mutable defaulted : int;
  mutable wall_seconds : float;
  mutable next_request : int;  (* monotone request-id source *)
}

let create ?(config = default_config) ~registry ~machine net =
  if config.capacity < 1 then invalid_arg "Dispatcher.create: capacity < 1";
  if config.batch < 1 then invalid_arg "Dispatcher.create: batch < 1";
  let layers = Array.of_list (Workloads.net_tasks ~machine net) in
  if Array.length layers = 0 then
    invalid_arg "Dispatcher.create: network has no layers";
  {
    config;
    machine;
    registry;
    net;
    layers;
    cache = Lru.create ~capacity:config.capacity;
    hist = Histogram.create ();
    requests = 0;
    layer_runs = 0;
    exact = 0;
    adapted = 0;
    defaulted = 0;
    wall_seconds = 0.0;
    next_request = 0;
  }

let net t = t.net
let machine t = t.machine

(* Compile one subgraph: registry resolution -> lower.  Every resolution
   outcome lowers (the registry validates tuned steps and degrades to the
   always-legal naive program), so compilation is total. *)
let compile t (task : Task.t) =
  let state, outcome =
    if t.config.naive then (State.init task.Task.dag, Registry.Defaulted "naive dispatch")
    else Registry.resolve t.registry task
  in
  (match outcome with
  | Registry.Exact -> t.exact <- t.exact + 1
  | Registry.Adapted _ -> t.adapted <- t.adapted + 1
  | Registry.Defaulted _ -> t.defaulted <- t.defaulted + 1);
  { prog = Lower.lower state; outcome }

(* Fetch through the LRU; compiles on a miss.  Calling domain only. *)
let fetch t task =
  let key = Task.key task in
  match Lru.find t.cache key with
  | Some c -> c
  | None ->
    let c = compile t task in
    Lru.add t.cache key c;
    c

let warm t = Array.iter (fun (task, _) -> ignore (fetch t task)) t.layers

(* One end-to-end request: every subgraph "executed" through the
   analytical simulator, weighted by appearance count, with log-normal
   execution jitter drawn from a private per-request stream (pure function
   of the request id: deterministic for any worker count). *)
let run_request ~machine ~noise ~seed progs weights rid =
  let rng = Rng.create (seed + (7919 * rid) + 1) in
  let total = ref 0.0 in
  Array.iteri
    (fun i prog ->
      let base = Simulator.estimate machine prog in
      let jitter = if noise <= 0.0 then 1.0 else exp (noise *. Rng.gaussian rng) in
      total := !total +. (float_of_int weights.(i) *. base *. jitter))
    progs;
  !total

let serve t ~requests =
  let t0 = Unix.gettimeofday () in
  (* compile phase: calling domain touches LRU and counters.  The program
     snapshot is loop-invariant across chunks (nothing inside the loop
     can change a compiled program), so the LRU walk happens once per
     serve call, not once per chunk per layer. *)
  let progs =
    if requests > 0 then
      Array.map (fun (task, _) -> (fetch t task).prog) t.layers
    else [||]
  in
  let weights = Array.map snd t.layers in
  let remaining = ref requests in
  while !remaining > 0 do
    let chunk = min !remaining t.config.batch in
    let ids = Array.init chunk (fun i -> t.next_request + i) in
    t.next_request <- t.next_request + chunk;
    (* execute phase: workers only read immutable snapshots *)
    let latencies =
      Pool.run ~num_workers:t.config.num_workers
        (run_request ~machine:t.machine ~noise:t.config.noise
           ~seed:t.config.seed progs weights)
        ids
    in
    Array.iter (Histogram.add t.hist) latencies;
    t.requests <- t.requests + chunk;
    t.layer_runs <- t.layer_runs + (chunk * Array.length t.layers);
    remaining := !remaining - chunk
  done;
  t.wall_seconds <- t.wall_seconds +. (Unix.gettimeofday () -. t0)

let verify_outputs ?tol ?(seed = 2024) t =
  let rec go i =
    if i >= Array.length t.layers then Ok ()
    else begin
      let task, _ = t.layers.(i) in
      let dag = task.Task.dag in
      let compiled = fetch t task in
      let inputs = Interp.random_inputs (Rng.create (seed + i)) dag in
      match Interp.check_equivalent ?tol dag compiled.prog ~inputs with
      | Ok () -> go (i + 1)
      | Error msg ->
        Error (Printf.sprintf "layer %s (%s): %s" task.Task.name
                 (Registry.outcome_to_string compiled.outcome) msg)
    end
  in
  go 0

(* ---- telemetry ---------------------------------------------------------- *)

type stats = {
  requests : int;
  layer_runs : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  exact : int;
  adapted : int;
  defaulted : int;
  latency : Histogram.summary;
  wall_seconds : float;
}

let fallbacks s = s.adapted + s.defaulted

let stats (t : t) =
  {
    requests = t.requests;
    layer_runs = t.layer_runs;
    cache_hits = Lru.hits t.cache;
    cache_misses = Lru.misses t.cache;
    evictions = Lru.evictions t.cache;
    exact = t.exact;
    adapted = t.adapted;
    defaulted = t.defaulted;
    latency = Histogram.summary t.hist;
    wall_seconds = t.wall_seconds;
  }

let histogram t = t.hist

let stats_json s =
  let l = s.latency in
  Printf.sprintf
    "{\"requests\": %d, \"layer_runs\": %d, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"evictions\": %d, \"exact\": %d, \"adapted\": \
     %d, \"defaulted\": %d, \"fallbacks\": %d, \"mean_latency\": %.9e, \
     \"min_latency\": %.9e, \"max_latency\": %.9e, \"p50\": %.9e, \"p95\": \
     %.9e, \"p99\": %.9e, \"p999\": %.9e, \"wall_seconds\": %.3f}"
    s.requests s.layer_runs s.cache_hits s.cache_misses s.evictions s.exact
    s.adapted s.defaulted (fallbacks s) l.Histogram.mean l.Histogram.min
    l.Histogram.max l.Histogram.p50 l.Histogram.p95 l.Histogram.p99
    l.Histogram.p999 s.wall_seconds

let report (t : t) =
  let s = stats t in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%s on %s: %d request%s, %d layer runs\n"
       t.net.Workloads.net_name t.machine.Machine.name s.requests
       (if s.requests = 1 then "" else "s")
       s.layer_runs);
  Buffer.add_string b
    (Printf.sprintf "latency: %s\n" (Histogram.summary_line s.latency));
  Buffer.add_string b
    (Printf.sprintf
       "compile cache: %d hit%s %d miss%s %d eviction%s (capacity %d)\n"
       s.cache_hits
       (if s.cache_hits = 1 then "" else "s")
       s.cache_misses
       (if s.cache_misses = 1 then "" else "es")
       s.evictions
       (if s.evictions = 1 then "" else "s")
       (Lru.capacity t.cache));
  Buffer.add_string b
    (Printf.sprintf "registry: %d exact, %d adapted, %d default\n" s.exact
       s.adapted s.defaulted);
  Buffer.add_string b (Histogram.render t.hist);
  Buffer.contents b
