type t = {
  mutable samples : float array;  (* growable buffer; first [n] are live *)
  mutable n : int;
  mutable sorted : float array option;  (* cache, invalidated by add *)
}

let create () = { samples = Array.make 64 0.0; n = 0; sorted = None }

let add t x =
  if (not (Float.is_finite x)) || x < 0.0 then
    invalid_arg "Histogram.add: latency must be finite and non-negative";
  if t.n = Array.length t.samples then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- None

let count t = t.n

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = Array.sub t.samples 0 t.n in
    Array.sort Float.compare s;
    t.sorted <- Some s;
    s

let quantile t q =
  let s = sorted t in
  let n = Array.length s in
  if n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)
  end

(* Merge retains every sample, so the quantiles of a merged histogram are
   exactly the quantiles of the concatenated sample sets — the per-shard
   histograms of the serving tier combine without approximation error. *)
let merge ts =
  let h = create () in
  List.iter (fun t -> Array.iter (add h) (Array.sub t.samples 0 t.n)) ts;
  h

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let summary t =
  if t.n = 0 then
    { count = 0; mean = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0;
      p99 = 0.0; p999 = 0.0 }
  else begin
    let s = sorted t in
    let sum = Array.fold_left ( +. ) 0.0 s in
    {
      count = t.n;
      mean = sum /. float_of_int t.n;
      min = s.(0);
      max = s.(Array.length s - 1);
      p50 = quantile t 0.5;
      p95 = quantile t 0.95;
      p99 = quantile t 0.99;
      p999 = quantile t 0.999;
    }
  end

let summary_line s =
  Printf.sprintf "n=%d mean=%.4fms p50=%.4fms p95=%.4fms p99=%.4fms p99.9=%.4fms"
    s.count (s.mean *. 1e3) (s.p50 *. 1e3) (s.p95 *. 1e3) (s.p99 *. 1e3)
    (s.p999 *. 1e3)

(* Power-of-two buckets over the sample range, anchored at the smallest
   positive sample; at most 20 lines. *)
let render t =
  if t.n = 0 then "(no samples)\n"
  else begin
    let s = sorted t in
    let lo =
      match Array.find_opt (fun x -> x > 0.0) s with
      | Some x -> x
      | None -> 1e-9
    in
    let hi = Float.max s.(Array.length s - 1) lo in
    let nbuckets =
      min 20 (max 1 (1 + int_of_float (Float.ceil (Float.log2 (hi /. lo)))))
    in
    let counts = Array.make nbuckets 0 in
    Array.iter
      (fun x ->
        let b =
          if x <= lo then 0
          else
            min (nbuckets - 1) (int_of_float (Float.ceil (Float.log2 (x /. lo))))
        in
        counts.(b) <- counts.(b) + 1)
      s;
    let peak = Array.fold_left max 1 counts in
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i c ->
        let blo = if i = 0 then 0.0 else lo *. Float.pow 2.0 (float_of_int (i - 1)) in
        let bhi = lo *. Float.pow 2.0 (float_of_int i) in
        Buffer.add_string buf
          (Printf.sprintf "%10.4f-%8.4fms %6d %s\n" (blo *. 1e3) (bhi *. 1e3) c
             (String.make (30 * c / peak) '#')))
      counts;
    Buffer.contents buf
  end
