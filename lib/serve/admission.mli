(** Admission control for the serving tier: bounded queues with an
    explicit load-shedding policy and per-tenant token-bucket quotas.

    The robustness contract is {e totality}: every request offered to the
    server is classified by exactly one {!outcome} — served, shed (with a
    reason), or rejected by quota — and nothing ever raises on the
    admission path.  Conservation ([offered = served + shed +
    quota_rejected] once the queue drains) is the invariant the overload
    tests assert exactly.

    The queue is bounded; when full, {!shed_policy} picks who pays:
    [Reject_newest] sheds the incoming request, [Drop_oldest] evicts the
    head-of-line request (FIFO) or the oldest item of the lowest priority
    class (Priority discipline) to make room.  Quotas are virtual-time
    token buckets keyed by tenant name, refilled lazily at each offer.

    Time is {e virtual} (the {!Loadgen} trace's clock): the module never
    reads a wall clock, so admission decisions are deterministic. *)

type shed_reason = Queue_full | Displaced

(** The total classification of one offered request. *)
type outcome = Served | Shed of shed_reason | Quota_exceeded

val shed_reason_to_string : shed_reason -> string
val outcome_to_string : outcome -> string

type shed_policy =
  | Reject_newest  (** queue full: the incoming request is shed *)
  | Drop_oldest
      (** queue full: the head-of-line (FIFO) or lowest-priority-oldest
          (Priority) waiter is shed and the incoming request admitted *)

type discipline = Fifo | Priority

val shed_policy_of_string : string -> (shed_policy, string) result
val shed_policy_to_string : shed_policy -> string
val discipline_of_string : string -> (discipline, string) result
val discipline_to_string : discipline -> string

type config = {
  queue_bound : int;  (** maximum waiting requests *)
  shed_policy : shed_policy;
  discipline : discipline;
}

val default_config : config
(** bound 64, [Reject_newest], [Fifo]. *)

type 'a t

val create : ?config:config -> unit -> 'a t
(** @raise Invalid_argument if [queue_bound < 1]. *)

val offer :
  'a t ->
  now:float ->
  tenant:Loadgen.tenant ->
  'a ->
  [ `Admitted | `Quota_exceeded | `Shed_queue_full | `Displaced of 'a ]
(** Classify one arrival at virtual time [now].  [`Displaced v] means the
    incoming request was admitted and the previously-queued [v] was shed
    in its place — the caller records [v]'s outcome as
    [Shed Displaced].  [now] must be nondecreasing across calls (the
    token buckets refill on elapsed virtual time). *)

val take : 'a t -> 'a option
(** Pop the next request in service order: FIFO arrival order, or highest
    priority first (FIFO within a priority class). *)

val depth : 'a t -> int

type stats = {
  offered : int;
  admitted : int;  (** enqueued (some may later be displaced) *)
  quota_rejected : int;
  shed_queue_full : int;
  shed_displaced : int;
  max_depth : int;  (** queue-depth high-water mark *)
}

val stats : 'a t -> stats

val shed : stats -> int
(** [shed_queue_full + shed_displaced]. *)
