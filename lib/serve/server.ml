module Registry = Ansor_registry.Registry
module Task = Ansor_search.Task
module Tuner = Ansor_search.Tuner
module State = Ansor_sched.State
module Lower = Ansor_sched.Lower
module Prog = Ansor_sched.Prog
module Simulator = Ansor_machine.Simulator
module Machine = Ansor_machine.Machine
module Service = Ansor_measure_service.Service
module Model_store = Ansor_model_store.Model_store
module Task_key = Ansor_util.Task_key
module Lru = Ansor_util.Lru
module Rng = Ansor_util.Rng
module Workloads = Ansor_workloads.Workloads

type canary_config = {
  fraction : float;  (* share of a key's traffic routed to the candidate *)
  min_samples : int;  (* per-arm sample floor before deciding *)
  margin : float;  (* tail-regression tolerance on p95 *)
}

let default_canary = { fraction = 0.2; min_samples = 24; margin = 0.05 }

type tuner_config = {
  every : float;  (* virtual seconds between background rounds *)
  trials : int;  (* measurements per round *)
}

type config = {
  shards : int;
  capacity : int;  (* per-shard compiled-program LRU capacity *)
  service_workers : int;  (* virtual in-flight request slots *)
  pool_workers : int;  (* domains for the background tuner's measurements *)
  noise : float;
  seed : int;
  naive : bool;
  load : Loadgen.config;
  admission : Admission.config;
  canary : canary_config;
  tuner : tuner_config option;
}

let default_config =
  {
    shards = 4;
    capacity = 64;
    service_workers = 2;
    pool_workers = 1;
    noise = 0.03;
    seed = 0;
    naive = false;
    load = Loadgen.default_config;
    admission = Admission.default_config;
    canary = default_canary;
    tuner = None;
  }

type compiled = { prog : Prog.t; base : float; stamp : int }

type candidate = {
  cand_state : State.t;
  cand_base : float;
  origin : string;
  canary_hist : Histogram.t;  (* layer latencies served by the candidate *)
  control_hist : Histogram.t;  (* incumbent latencies over the same window *)
}

type live = {
  task : Task.t;
  key : string;
  weight : int;
  shard_id : int;
  mutable state : State.t;  (* the incumbent schedule *)
  mutable outcome : Registry.outcome;
  mutable generation : int;  (* bumped by every promotion *)
  mutable hot : int;  (* layer runs since the tuner's last visit *)
  mutable candidate : candidate option;
  mutable tuner : Tuner.t option;
}

type shard = { lru : compiled Lru.t; hist : Histogram.t }

type event_kind = Proposed | Promoted | Rolled_back

let event_kind_to_string = function
  | Proposed -> "proposed"
  | Promoted -> "promoted"
  | Rolled_back -> "rolled_back"

type event = {
  vtime : float;
  key : string;
  kind : event_kind;
  origin : string;
  candidate_p95 : float;
  incumbent_p95 : float;
}

type tstats = {
  mutable t_offered : int;
  mutable t_served : int;
  mutable t_shed : int;
  mutable t_quota : int;
}

type t = {
  config : config;
  machine : Machine.t;
  registry : Registry.t;
  net : Workloads.net;
  layers : live array;
  shards : shard array;
  sojourn : Histogram.t;  (* accepted-request latency, queueing included *)
  admission : Loadgen.request Admission.t;
  tenants : (string, tstats) Hashtbl.t;
  mutable served : int;
  mutable layer_runs : int;
  mutable invalidations : int;
  mutable promotions : int;
  mutable rollbacks : int;
  mutable proposals : int;
  mutable tuner_rounds : int;
  mutable events_rev : event list;
  mutable vtime : float;  (* last event processed, virtual seconds *)
  mutable wall_seconds : float;
  shared : Tuner.Shared.t;
  service : Service.t option;  (* background tuner's measure service *)
  model_store : Model_store.session option;
      (* cross-task store: warm-starts the first background retune and
         receives every batch the tuner measures *)
}

let validate (c : config) =
  if c.shards < 1 then invalid_arg "Server.create: shards < 1";
  if c.capacity < 1 then invalid_arg "Server.create: capacity < 1";
  if c.service_workers < 1 then invalid_arg "Server.create: service_workers < 1";
  if c.pool_workers < 1 then invalid_arg "Server.create: pool_workers < 1";
  if not (c.canary.fraction > 0.0 && c.canary.fraction < 1.0) then
    invalid_arg "Server.create: canary fraction must be in (0, 1)";
  if c.canary.min_samples < 1 then
    invalid_arg "Server.create: canary min_samples < 1";
  if c.canary.margin < 0.0 then invalid_arg "Server.create: canary margin < 0";
  match c.tuner with
  | Some tc ->
    if tc.every <= 0.0 || tc.trials < 1 then
      invalid_arg "Server.create: tuner needs every > 0 and trials >= 1"
  | None -> ()

let shard_of ~shards key = Hashtbl.hash key mod shards

let create ?(config = default_config) ?model_store ~registry ~machine net =
  validate config;
  let tasks = Array.of_list (Workloads.net_tasks ~machine net) in
  if Array.length tasks = 0 then invalid_arg "Server.create: network has no layers";
  let layers =
    Array.map
      (fun ((task : Task.t), weight) ->
        let state, outcome =
          if config.naive then
            (State.init task.Task.dag, Registry.Defaulted "naive dispatch")
          else Registry.resolve registry task
        in
        {
          task;
          key = Task.key task;
          weight;
          shard_id = shard_of ~shards:config.shards (Task.key task);
          state;
          outcome;
          generation = 0;
          hot = 0;
          candidate = None;
          tuner = None;
        })
      tasks
  in
  let shards =
    Array.init config.shards (fun _ ->
        { lru = Lru.create ~capacity:config.capacity; hist = Histogram.create () })
  in
  let service =
    match config.tuner with
    | None -> None
    | Some _ ->
      Some
        (Service.create
           ~config:
             { Service.default_config with num_workers = config.pool_workers }
           ~seed:(config.seed + 77) machine)
  in
  let shared = Tuner.Shared.create () in
  (* attach the cross-task store up front so every background round's
     measured batch is appended; the warm start itself is lazy (first
     tuner tick — see [tuner_tick]) so it targets the key actually hot *)
  (match model_store with
  | Some (ms : Model_store.session) ->
    Tuner.Shared.attach_store ?path:ms.Model_store.path shared
      ms.Model_store.store
  | None -> ());
  {
    config;
    machine;
    registry;
    net;
    layers;
    shards;
    sojourn = Histogram.create ();
    admission = Admission.create ~config:config.admission ();
    tenants = Hashtbl.create 8;
    served = 0;
    layer_runs = 0;
    invalidations = 0;
    promotions = 0;
    rollbacks = 0;
    proposals = 0;
    tuner_rounds = 0;
    events_rev = [];
    vtime = 0.0;
    wall_seconds = 0.0;
    shared;
    service;
    model_store;
  }

let net t = t.net
let machine t = t.machine
let keys t = Array.to_list (Array.map (fun (l : live) -> l.key) t.layers)

let find_live t key = Array.find_opt (fun (l : live) -> l.key = key) t.layers

let generation t ~key = Option.map (fun l -> l.generation) (find_live t key)

let candidate_active t ~key =
  match find_live t key with Some l -> l.candidate <> None | None -> false

(* ---- compiled-program shards -------------------------------------------- *)

let compile_live t live =
  let prog = Lower.lower live.state in
  { prog; base = Simulator.estimate t.machine prog; stamp = live.generation }

(* Per-shard LRU, stamped with the key's promotion generation: a stale hit
   (entry compiled before the last promotion) recompiles in place — the
   same invalidation pattern as Score_service's model generations. *)
let fetch t live =
  let sh = t.shards.(live.shard_id) in
  match Lru.find sh.lru live.key with
  | Some c when c.stamp = live.generation -> c
  | found ->
    if found <> None then t.invalidations <- t.invalidations + 1;
    let c = compile_live t live in
    Lru.add sh.lru live.key c;
    c

let warm t = Array.iter (fun live -> ignore (fetch t live)) t.layers

let incumbent_latency t ~key =
  Option.map (fun live -> (fetch t live).base) (find_live t key)

let nominal_latency t =
  Array.fold_left
    (fun acc live -> acc +. (float_of_int live.weight *. (fetch t live).base))
    0.0 t.layers

(* ---- canary gate --------------------------------------------------------- *)

let push_event t ev = t.events_rev <- ev :: t.events_rev

(* Promote only on a win: median strictly better and the tail (p95) not
   regressed beyond the margin.  Anything else rolls the candidate back —
   the incumbent was never replaced, so "rollback" just restores 100% of
   the key's traffic to it and records the regression. *)
let maybe_decide t ~vtime live =
  match live.candidate with
  | Some c
    when Histogram.count c.canary_hist >= t.config.canary.min_samples
         && Histogram.count c.control_hist >= t.config.canary.min_samples ->
    let cp95 = Histogram.quantile c.canary_hist 0.95
    and ip95 = Histogram.quantile c.control_hist 0.95
    and cp50 = Histogram.quantile c.canary_hist 0.5
    and ip50 = Histogram.quantile c.control_hist 0.5 in
    let win = cp50 < ip50 && cp95 <= ip95 *. (1.0 +. t.config.canary.margin) in
    live.candidate <- None;
    let ev kind =
      {
        vtime;
        key = live.key;
        kind;
        origin = c.origin;
        candidate_p95 = cp95;
        incumbent_p95 = ip95;
      }
    in
    if win then begin
      live.state <- c.cand_state;
      live.generation <- live.generation + 1;
      t.promotions <- t.promotions + 1;
      push_event t (ev Promoted)
    end
    else begin
      t.rollbacks <- t.rollbacks + 1;
      push_event t (ev Rolled_back)
    end
  | _ -> ()

let propose t ~origin ~key state =
  match find_live t key with
  | None -> Error (Printf.sprintf "propose: unknown task key %s" key)
  | Some live -> (
    if live.candidate <> None then
      Error (Printf.sprintf "propose: %s already has a candidate in canary" key)
    else
      match Lower.lower state with
      | exception State.Illegal msg ->
        Error (Printf.sprintf "propose: candidate does not lower: %s" msg)
      | prog ->
        let cand_base = Simulator.estimate t.machine prog in
        live.candidate <-
          Some
            {
              cand_state = state;
              cand_base;
              origin;
              canary_hist = Histogram.create ();
              control_hist = Histogram.create ();
            };
        t.proposals <- t.proposals + 1;
        push_event t
          {
            vtime = t.vtime;
            key;
            kind = Proposed;
            origin;
            candidate_p95 = cand_base;
            incumbent_p95 = (fetch t live).base;
          };
        Ok ())

(* ---- request execution --------------------------------------------------- *)

(* Canary routing is a pure function of (seed, request id, key): the same
   request always lands on the same arm, for any event interleaving. *)
let canary_draw t rid key =
  let r =
    Rng.create
      (t.config.seed lxor (rid * 0x9e3779b1) lxor (Hashtbl.hash key * 0x85ebca77))
  in
  Rng.float r 1.0

(* One end-to-end request at its service start: every layer's simulated
   latency (weighted, with per-request log-normal jitter) lands in its
   shard's histogram; layers with an active candidate also feed the canary
   arms.  Returns the request's total service time. *)
let exec_request t ~vtime (r : Loadgen.request) =
  let rng = Rng.create (t.config.seed + (7919 * r.Loadgen.id) + 1) in
  let total = ref 0.0 in
  Array.iter
    (fun live ->
      live.hot <- live.hot + live.weight;
      let inc = fetch t live in
      let jitter =
        if t.config.noise <= 0.0 then 1.0
        else exp (t.config.noise *. Rng.gaussian rng)
      in
      let cand = live.candidate in
      let on_candidate =
        match cand with
        | Some _ -> canary_draw t r.Loadgen.id live.key < t.config.canary.fraction
        | None -> false
      in
      let base =
        match cand with
        | Some c when on_candidate -> c.cand_base
        | _ -> inc.base
      in
      let lat = float_of_int live.weight *. base *. jitter in
      Histogram.add t.shards.(live.shard_id).hist lat;
      (match cand with
      | Some c ->
        Histogram.add (if on_candidate then c.canary_hist else c.control_hist) lat;
        maybe_decide t ~vtime live
      | None -> ());
      t.layer_runs <- t.layer_runs + 1;
      total := !total +. lat)
    t.layers;
  !total

(* ---- background tuner ---------------------------------------------------- *)

(* One background round on the hottest key (most layer runs since its last
   visit): advance that key's persistent tuner by one batch on the domain
   pool, and if its best program now beats the incumbent's simulator
   estimate, enter it into the canary gate.  The gate — not the tuner —
   decides whether it ever takes live traffic for good. *)
let tuner_tick t =
  match (t.config.tuner, t.service) with
  | Some tc, Some service -> (
    let hottest =
      Array.fold_left
        (fun acc live ->
          match acc with
          | Some (best : live) when best.hot >= live.hot -> acc
          | _ -> if live.hot > 0 then Some live else acc)
        None t.layers
    in
    match hottest with
    | None -> ()
    | Some live ->
      live.hot <- 0;
      let tuner =
        match live.tuner with
        | Some tu -> tu
        | None ->
          let opts = { Tuner.ansor_options with batch_size = tc.trials } in
          let tu =
            Tuner.create
              ~seed:(t.config.seed + (Hashtbl.hash live.key land 0xffff) + 13)
              opts live.task
          in
          live.tuner <- Some tu;
          tu
      in
      (* warm-start the shared cost model on the first retune: resolve
         the pretrained ladder for the key actually being retuned and
         fold in its class's stored samples.  adopt_store bumps the
         model generation at most once, and only while still cold —
         later ticks (and later hot keys) fine-tune from here. *)
      (match t.model_store with
      | Some ms when String.equal (Tuner.Shared.provenance t.shared) "cold" ->
        let warm =
          Option.map
            (fun (g, o) -> (Model_store.Pretrained.origin_name o, g))
            (Model_store.Pretrained.resolve ms.Model_store.pretrained
               ~task_key:live.key)
        in
        let aux =
          Model_store.samples_for_class ms.Model_store.store
            ~class_key:(Task_key.class_key live.key)
        in
        ignore (Tuner.Shared.adopt_store t.shared ~warm ~aux)
      | _ -> ());
      Tuner.round tuner t.shared service;
      t.tuner_rounds <- t.tuner_rounds + 1;
      if live.candidate = None then
        match Tuner.best_state tuner with
        | Some st -> (
          match Lower.lower st with
          | exception State.Illegal _ -> ()
          | prog ->
            let cand = Simulator.estimate t.machine prog in
            if cand < (fetch t live).base *. 0.999 then
              ignore (propose t ~origin:"tuner" ~key:live.key st))
        | None -> ())
  | _ -> ()

(* ---- the event loop ------------------------------------------------------ *)

let tstats_for t name =
  match Hashtbl.find_opt t.tenants name with
  | Some s -> s
  | None ->
    let s = { t_offered = 0; t_served = 0; t_shed = 0; t_quota = 0 } in
    Hashtbl.replace t.tenants name s;
    s

(* Deterministic discrete-event simulation over the open-loop trace.
   Three event sources — arrivals, completions, tuner ticks — are merged
   in virtual-time order (completions first on ties, so a freed worker
   can serve a simultaneous arrival).  Every offered request ends in
   exactly one of: served, shed (classified), quota-rejected. *)
let run t ~requests =
  if requests < 1 then invalid_arg "Server.run: requests < 1";
  let t0 = Unix.gettimeofday () in
  let arrivals = Loadgen.generate t.config.load ~n:requests in
  let horizon = arrivals.(requests - 1).Loadgen.arrival in
  (* pending completions, ascending (time, request); at most
     service_workers entries, so sorted-list insertion is cheap *)
  let completions = ref [] in
  let busy = ref 0 in
  let insert_completion time r =
    let rec ins = function
      | [] -> [ (time, r) ]
      | (tc, _) :: _ as rest when time < tc -> (time, r) :: rest
      | x :: rest -> x :: ins rest
    in
    completions := ins !completions
  in
  let start tm (r : Loadgen.request) =
    incr busy;
    let service = exec_request t ~vtime:tm r in
    insert_completion (tm +. service) r
  in
  let try_start tm =
    while
      !busy < t.config.service_workers
      &&
      match Admission.take t.admission with
      | Some r ->
        start tm r;
        true
      | None -> false
    do
      ()
    done
  in
  let complete tm (r : Loadgen.request) =
    decr busy;
    t.served <- t.served + 1;
    let ts = tstats_for t r.Loadgen.tenant.Loadgen.name in
    ts.t_served <- ts.t_served + 1;
    Histogram.add t.sojourn (tm -. r.Loadgen.arrival);
    try_start tm
  in
  let arrive (r : Loadgen.request) =
    let ts = tstats_for t r.Loadgen.tenant.Loadgen.name in
    ts.t_offered <- ts.t_offered + 1;
    (match
       Admission.offer t.admission ~now:r.Loadgen.arrival ~tenant:r.Loadgen.tenant
         r
     with
    | `Admitted -> ()
    | `Quota_exceeded -> ts.t_quota <- ts.t_quota + 1
    | `Shed_queue_full -> ts.t_shed <- ts.t_shed + 1
    | `Displaced (v : Loadgen.request) ->
      let vs = tstats_for t v.Loadgen.tenant.Loadgen.name in
      vs.t_shed <- vs.t_shed + 1);
    try_start r.Loadgen.arrival
  in
  let next_tick =
    ref (match t.config.tuner with Some tc -> tc.every | None -> infinity)
  in
  let i = ref 0 in
  while !i < requests || !completions <> [] do
    let t_arr =
      if !i < requests then arrivals.(!i).Loadgen.arrival else infinity
    in
    let t_comp = match !completions with (tc, _) :: _ -> tc | [] -> infinity in
    let t_tick = if !next_tick <= horizon then !next_tick else infinity in
    if t_comp <= t_arr && t_comp <= t_tick then begin
      let tm, r = List.hd !completions in
      completions := List.tl !completions;
      t.vtime <- tm;
      complete tm r
    end
    else if t_tick <= t_arr then begin
      t.vtime <- t_tick;
      tuner_tick t;
      next_tick :=
        !next_tick
        +. (match t.config.tuner with Some tc -> tc.every | None -> infinity)
    end
    else begin
      let r = arrivals.(!i) in
      incr i;
      t.vtime <- r.Loadgen.arrival;
      arrive r
    end
  done;
  t.wall_seconds <- t.wall_seconds +. (Unix.gettimeofday () -. t0)

(* ---- telemetry ----------------------------------------------------------- *)

type shard_stats = {
  shard_id : int;
  runs : int;
  hits : int;
  misses : int;
  evictions : int;
  latency : Histogram.summary;
}

type tenant_stats = {
  tenant : string;
  offered : int;
  served : int;
  shed : int;
  quota_rejected : int;
}

type stats = {
  offered : int;
  served : int;
  shed : int;
  shed_queue_full : int;
  shed_displaced : int;
  quota_rejected : int;
  max_queue_depth : int;
  layer_runs : int;
  exact : int;
  adapted : int;
  defaulted : int;
  invalidations : int;
  promotions : int;
  rollbacks : int;
  proposals : int;
  tuner_rounds : int;
  warm_starts : int;
  store_samples : int;
  sojourn : Histogram.summary;
  service : Histogram.summary;
  shards : shard_stats list;
  tenants : tenant_stats list;
  events : event list;
  vtime : float;
  wall_seconds : float;
}

let stats t =
  let a = Admission.stats t.admission in
  let outcome_count p =
    Array.fold_left
      (fun acc live -> if p live.outcome then acc + 1 else acc)
      0 t.layers
  in
  let shards =
    List.mapi
      (fun shard_id (sh : shard) ->
        {
          shard_id;
          runs = Histogram.count sh.hist;
          hits = Lru.hits sh.lru;
          misses = Lru.misses sh.lru;
          evictions = Lru.evictions sh.lru;
          latency = Histogram.summary sh.hist;
        })
      (Array.to_list t.shards)
  in
  let tenants =
    Hashtbl.fold
      (fun name (s : tstats) acc ->
        {
          tenant = name;
          offered = s.t_offered;
          served = s.t_served;
          shed = s.t_shed;
          quota_rejected = s.t_quota;
        }
        :: acc)
      t.tenants []
    |> List.sort (fun a b -> compare a.tenant b.tenant)
  in
  {
    offered = a.Admission.offered;
    served = t.served;
    shed = Admission.shed a;
    shed_queue_full = a.Admission.shed_queue_full;
    shed_displaced = a.Admission.shed_displaced;
    quota_rejected = a.Admission.quota_rejected;
    max_queue_depth = a.Admission.max_depth;
    layer_runs = t.layer_runs;
    exact = outcome_count (function Registry.Exact -> true | _ -> false);
    adapted = outcome_count (function Registry.Adapted _ -> true | _ -> false);
    defaulted = outcome_count (function Registry.Defaulted _ -> true | _ -> false);
    invalidations = t.invalidations;
    promotions = t.promotions;
    rollbacks = t.rollbacks;
    proposals = t.proposals;
    tuner_rounds = t.tuner_rounds;
    warm_starts = Tuner.Shared.warm_starts t.shared;
    store_samples = Tuner.Shared.store_added t.shared;
    sojourn = Histogram.summary t.sojourn;
    service =
      Histogram.summary
        (Histogram.merge (Array.to_list (Array.map (fun sh -> sh.hist) t.shards)));
    shards;
    tenants;
    events = List.rev t.events_rev;
    vtime = t.vtime;
    wall_seconds = t.wall_seconds;
  }

let conserved (s : stats) = s.offered = s.served + s.shed + s.quota_rejected

(* ---- JSON ---------------------------------------------------------------- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let summary_json (s : Histogram.summary) =
  Printf.sprintf
    "{\"count\": %d, \"mean\": %.9e, \"min\": %.9e, \"max\": %.9e, \"p50\": \
     %.9e, \"p95\": %.9e, \"p99\": %.9e, \"p999\": %.9e}"
    s.Histogram.count s.Histogram.mean s.Histogram.min s.Histogram.max
    s.Histogram.p50 s.Histogram.p95 s.Histogram.p99 s.Histogram.p999

let event_json (e : event) =
  Printf.sprintf
    "{\"vtime\": %.6f, \"key\": %s, \"event\": \"%s\", \"origin\": \"%s\", \
     \"candidate_p95\": %.9e, \"incumbent_p95\": %.9e}"
    e.vtime (json_string e.key)
    (event_kind_to_string e.kind)
    e.origin e.candidate_p95 e.incumbent_p95

let stats_json (s : stats) =
  let shards =
    String.concat ", "
      (List.map
         (fun sh ->
           Printf.sprintf
             "{\"shard\": %d, \"runs\": %d, \"hits\": %d, \"misses\": %d, \
              \"evictions\": %d, \"p99\": %.9e, \"p999\": %.9e}"
             sh.shard_id sh.runs sh.hits sh.misses sh.evictions
             sh.latency.Histogram.p99 sh.latency.Histogram.p999)
         s.shards)
  in
  let tenants =
    String.concat ", "
      (List.map
         (fun ts ->
           Printf.sprintf
             "{\"tenant\": %s, \"offered\": %d, \"served\": %d, \"shed\": %d, \
              \"quota_rejected\": %d}"
             (json_string ts.tenant) ts.offered ts.served ts.shed
             ts.quota_rejected)
         s.tenants)
  in
  let events = String.concat ", " (List.map event_json s.events) in
  Printf.sprintf
    "{\"offered\": %d, \"served\": %d, \"shed\": %d, \"shed_queue_full\": %d, \
     \"shed_displaced\": %d, \"quota_rejected\": %d, \"conserved\": %b, \
     \"max_queue_depth\": %d, \"layer_runs\": %d, \"exact\": %d, \"adapted\": \
     %d, \"defaulted\": %d, \"invalidations\": %d, \"promotions\": %d, \
     \"rollbacks\": %d, \"proposals\": %d, \"tuner_rounds\": %d, \
     \"warm_starts\": %d, \"store_samples\": %d, \"sojourn\": \
     %s, \"service\": %s, \"shards\": [%s], \"tenants\": [%s], \"events\": \
     [%s], \"vtime\": %.6f, \"wall_seconds\": %.3f}"
    s.offered s.served s.shed s.shed_queue_full s.shed_displaced
    s.quota_rejected (conserved s) s.max_queue_depth s.layer_runs s.exact
    s.adapted s.defaulted s.invalidations s.promotions s.rollbacks s.proposals
    s.tuner_rounds s.warm_starts s.store_samples (summary_json s.sojourn)
    (summary_json s.service) shards tenants events s.vtime s.wall_seconds

let report t =
  let s = stats t in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "%s on %s: %d offered = %d served + %d shed (%d queue-full, %d \
        displaced) + %d quota-rejected\n"
       t.net.Workloads.net_name t.machine.Machine.name s.offered s.served
       s.shed s.shed_queue_full s.shed_displaced s.quota_rejected);
  Buffer.add_string b
    (Printf.sprintf "virtual time: %.4fs   max queue depth: %d\n" s.vtime
       s.max_queue_depth);
  Buffer.add_string b
    (Printf.sprintf "sojourn: %s\n" (Histogram.summary_line s.sojourn));
  Buffer.add_string b
    (Printf.sprintf "service: %s\n" (Histogram.summary_line s.service));
  List.iter
    (fun sh ->
      Buffer.add_string b
        (Printf.sprintf
           "  shard %d: %d runs, %d hits / %d misses / %d evictions, \
            p99=%.4fms p99.9=%.4fms\n"
           sh.shard_id sh.runs sh.hits sh.misses sh.evictions
           (sh.latency.Histogram.p99 *. 1e3)
           (sh.latency.Histogram.p999 *. 1e3)))
    s.shards;
  List.iter
    (fun ts ->
      Buffer.add_string b
        (Printf.sprintf
           "  tenant %-12s offered %6d  served %6d  shed %6d  quota %6d\n"
           ts.tenant ts.offered ts.served ts.shed ts.quota_rejected))
    s.tenants;
  Buffer.add_string b
    (Printf.sprintf
       "registry: %d exact, %d adapted, %d default; rollout: %d proposed, %d \
        promoted, %d rolled back (%d tuner rounds)\n"
       s.exact s.adapted s.defaulted s.proposals s.promotions s.rollbacks
       s.tuner_rounds);
  if s.warm_starts > 0 || s.store_samples > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "model store: %d warm start(s), %d sample(s) contributed\n"
         s.warm_starts s.store_samples);
  List.iter
    (fun (e : event) ->
      Buffer.add_string b
        (Printf.sprintf "  [%.4fs] %-10s %s (%s) cand p95 %.4fms vs inc %.4fms\n"
           e.vtime
           (event_kind_to_string e.kind)
           e.key e.origin
           (e.candidate_p95 *. 1e3)
           (e.incumbent_p95 *. 1e3)))
    s.events;
  Buffer.add_string b (Histogram.render t.sojourn);
  Buffer.contents b
