(** Open-loop load generation for the serving tier.

    A closed-loop driver (send, wait, send again) can never overload the
    system it measures: the clients slow down with the server, and the
    coordinated-omission bias hides exactly the tail latencies a serving
    tier exists to control.  This module instead synthesizes an {e
    open-loop} arrival trace — a non-homogeneous Poisson process with
    configurable burst episodes and a per-tenant request mix — in {e
    virtual time}, as pure data.  The {!Server} replays the trace through
    a discrete-event loop, so overload experiments are deterministic and
    bit-reproducible for any seed: no wall clocks, no sleeps, no flaky
    tests.

    Arrivals are drawn by thinning at the peak rate; burst episodes
    multiply the base rate over an interval (overlapping episodes
    compose multiplicatively).  Each request is assigned a tenant by
    weighted choice; the tenant record carries the admission layer's
    token-bucket quota parameters and its queue priority. *)

type tenant = {
  name : string;
  weight : float;  (** share of offered traffic (relative) *)
  quota_rate : float;
      (** token-bucket refill, requests per virtual second ([infinity]
          disables the quota) *)
  quota_burst : float;  (** bucket capacity ([infinity] disables) *)
  priority : int;
      (** admission-queue priority under [Priority] discipline (higher is
          served first) *)
}

val default_tenant : tenant
(** ["default"], weight 1, unlimited quota, priority 0. *)

type burst = {
  after : float;  (** episode start, virtual seconds *)
  len : float;  (** episode length, virtual seconds *)
  factor : float;  (** rate multiplier (> 1 spike, < 1 lull) *)
}

type config = {
  arrival_rate : float;  (** base rate, requests per virtual second *)
  bursts : burst list;
  tenants : tenant list;
  seed : int;
}

val default_config : config
(** 1000 req/s, no bursts, the single default tenant, seed 0. *)

type request = {
  id : int;  (** dense, 0-based — doubles as the per-request RNG key *)
  tenant : tenant;
  arrival : float;  (** virtual seconds, nondecreasing in [id] *)
}

val generate : config -> n:int -> request array
(** [generate config ~n] returns the first [n] arrivals of the trace,
    sorted by arrival time.  Equal configs yield equal traces.
    @raise Invalid_argument on a non-positive rate, malformed burst,
    empty/negative-weight tenant mix, or negative [n]. *)

val rate_factor : burst list -> float -> float
(** The combined burst multiplier at a virtual instant (1.0 outside every
    episode).  Exposed for tests. *)

(** {1 CLI spec parsing}

    Shared by [ansor serve] and the tests: [--burst "START:LEN:FACTOR"]
    and [--tenants "NAME:WEIGHT[:QUOTA_RATE[:QUOTA_BURST[:PRIORITY]]],..."].
    Omitted quota fields mean unlimited; [QUOTA_BURST] defaults to
    [QUOTA_RATE]. *)

val burst_of_spec : string -> (burst, string) result
val tenant_of_spec : string -> (tenant, string) result

val tenants_of_spec : string -> (tenant list, string) result
(** Comma-separated tenant specs; the empty string means
    [[default_tenant]].  Rejects duplicate names. *)
