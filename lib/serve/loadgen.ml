module Rng = Ansor_util.Rng

type tenant = {
  name : string;
  weight : float;
  quota_rate : float;
  quota_burst : float;
  priority : int;
}

let default_tenant =
  {
    name = "default";
    weight = 1.0;
    quota_rate = infinity;
    quota_burst = infinity;
    priority = 0;
  }

type burst = { after : float; len : float; factor : float }

type config = {
  arrival_rate : float;
  bursts : burst list;
  tenants : tenant list;
  seed : int;
}

let default_config =
  { arrival_rate = 1000.0; bursts = []; tenants = [ default_tenant ]; seed = 0 }

type request = { id : int; tenant : tenant; arrival : float }

(* Overlapping burst episodes compose multiplicatively (two 2x episodes
   covering t make a 4x spike); factors below 1 model lulls. *)
let rate_factor bursts t =
  List.fold_left
    (fun acc b ->
      if t >= b.after && t < b.after +. b.len then acc *. b.factor else acc)
    1.0 bursts

let validate config =
  if (not (Float.is_finite config.arrival_rate)) || config.arrival_rate <= 0.0
  then invalid_arg "Loadgen: arrival_rate must be positive and finite";
  List.iter
    (fun b ->
      if b.after < 0.0 || b.len <= 0.0 || b.factor <= 0.0
         || not (Float.is_finite b.factor) then
        invalid_arg "Loadgen: burst needs after >= 0, len > 0, finite factor > 0")
    config.bursts;
  if config.tenants = [] then invalid_arg "Loadgen: tenant list is empty";
  List.iter
    (fun t ->
      if t.name = "" then invalid_arg "Loadgen: tenant name is empty";
      if t.weight < 0.0 || not (Float.is_finite t.weight) then
        invalid_arg "Loadgen: tenant weight must be finite and non-negative";
      if t.quota_rate < 0.0 || t.quota_burst < 0.0 then
        invalid_arg "Loadgen: tenant quota must be non-negative")
    config.tenants;
  if List.for_all (fun t -> t.weight = 0.0) config.tenants then
    invalid_arg "Loadgen: every tenant has weight zero"

(* Non-homogeneous Poisson process by thinning: draw candidate arrivals at
   the peak rate, accept each with probability rate(t)/peak.  Purely a
   function of the seed, so a load trace is reproducible by construction. *)
let generate config ~n =
  validate config;
  if n < 0 then invalid_arg "Loadgen.generate: n < 0";
  let rng = Rng.create (config.seed + 0x10ad) in
  let peak =
    config.arrival_rate
    *. List.fold_left (fun acc b -> acc *. Float.max 1.0 b.factor) 1.0
         config.bursts
  in
  let tenants = Array.of_list config.tenants in
  let weights = Array.map (fun t -> t.weight) tenants in
  let exp_draw () = -.log (1.0 -. Rng.float rng 1.0) /. peak in
  let out = Array.make n { id = 0; tenant = default_tenant; arrival = 0.0 } in
  let t = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    t := !t +. exp_draw ();
    let r = config.arrival_rate *. rate_factor config.bursts !t in
    if Rng.float rng 1.0 < r /. peak then begin
      let tenant = tenants.(Rng.weighted_index rng weights) in
      out.(!i) <- { id = !i; tenant; arrival = !t };
      incr i
    end
  done;
  out

(* ---- CLI spec parsing ---------------------------------------------------- *)

let float_of field s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: %S is not a number" field s)

let ( let* ) = Result.bind

let burst_of_spec spec =
  match String.split_on_char ':' spec with
  | [ a; l; f ] ->
    let* after = float_of "burst start" a in
    let* len = float_of "burst length" l in
    let* factor = float_of "burst factor" f in
    if after < 0.0 || len <= 0.0 || factor <= 0.0 then
      Error (Printf.sprintf "burst %S: want start >= 0, length > 0, factor > 0" spec)
    else Ok { after; len; factor }
  | _ ->
    Error
      (Printf.sprintf "burst %S: want START:LEN:FACTOR (virtual seconds)" spec)

let tenant_of_spec spec =
  let mk name weight quota_rate quota_burst priority =
    if name = "" then Error (Printf.sprintf "tenant %S: empty name" spec)
    else if weight < 0.0 then
      Error (Printf.sprintf "tenant %S: negative weight" spec)
    else if quota_rate < 0.0 || quota_burst < 0.0 then
      Error (Printf.sprintf "tenant %S: negative quota" spec)
    else Ok { name; weight; quota_rate; quota_burst; priority }
  in
  match String.split_on_char ':' spec with
  | [ name; w ] ->
    let* weight = float_of "tenant weight" w in
    mk name weight infinity infinity 0
  | [ name; w; r ] ->
    let* weight = float_of "tenant weight" w in
    let* rate = float_of "tenant quota rate" r in
    mk name weight rate rate 0
  | [ name; w; r; b ] ->
    let* weight = float_of "tenant weight" w in
    let* rate = float_of "tenant quota rate" r in
    let* burst = float_of "tenant quota burst" b in
    mk name weight rate burst 0
  | [ name; w; r; b; p ] ->
    let* weight = float_of "tenant weight" w in
    let* rate = float_of "tenant quota rate" r in
    let* burst = float_of "tenant quota burst" b in
    (match int_of_string_opt p with
    | Some priority -> mk name weight rate burst priority
    | None -> Error (Printf.sprintf "tenant %S: priority %S is not an int" spec p))
  | _ ->
    Error
      (Printf.sprintf
         "tenant %S: want NAME:WEIGHT[:QUOTA_RATE[:QUOTA_BURST[:PRIORITY]]]"
         spec)

let tenants_of_spec spec =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
      let* t = tenant_of_spec s in
      if List.exists (fun u -> u.name = t.name) acc then
        Error (Printf.sprintf "tenant %S: duplicate name %s" spec t.name)
      else go (t :: acc) rest
  in
  if String.trim spec = "" then Ok [ default_tenant ]
  else go [] (String.split_on_char ',' spec)
