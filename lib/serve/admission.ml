type shed_reason = Queue_full | Displaced

type outcome = Served | Shed of shed_reason | Quota_exceeded

let shed_reason_to_string = function
  | Queue_full -> "queue_full"
  | Displaced -> "displaced"

let outcome_to_string = function
  | Served -> "served"
  | Shed r -> "shed:" ^ shed_reason_to_string r
  | Quota_exceeded -> "quota_exceeded"

type shed_policy = Reject_newest | Drop_oldest
type discipline = Fifo | Priority

let shed_policy_of_string = function
  | "reject-newest" -> Ok Reject_newest
  | "drop-oldest" -> Ok Drop_oldest
  | s -> Error (Printf.sprintf "shed policy %S: want reject-newest or drop-oldest" s)

let shed_policy_to_string = function
  | Reject_newest -> "reject-newest"
  | Drop_oldest -> "drop-oldest"

let discipline_of_string = function
  | "fifo" -> Ok Fifo
  | "priority" -> Ok Priority
  | s -> Error (Printf.sprintf "queue discipline %S: want fifo or priority" s)

let discipline_to_string = function Fifo -> "fifo" | Priority -> "priority"

type config = {
  queue_bound : int;
  shed_policy : shed_policy;
  discipline : discipline;
}

let default_config =
  { queue_bound = 64; shed_policy = Reject_newest; discipline = Fifo }

(* Virtual-time token bucket; refilled lazily on each probe. *)
type bucket = {
  mutable tokens : float;
  mutable last : float;
  rate : float;
  cap : float;
}

type 'a item = { prio : int; seq : int; payload : 'a }

type 'a t = {
  config : config;
  buckets : (string, bucket) Hashtbl.t;
  mutable queue : 'a item list;  (* head is next to serve *)
  mutable seq : int;
  mutable depth : int;
  mutable offered : int;
  mutable admitted : int;
  mutable quota_rejected : int;
  mutable shed_queue_full : int;
  mutable shed_displaced : int;
  mutable max_depth : int;
}

let create ?(config = default_config) () =
  if config.queue_bound < 1 then
    invalid_arg "Admission.create: queue_bound < 1";
  {
    config;
    buckets = Hashtbl.create 8;
    queue = [];
    seq = 0;
    depth = 0;
    offered = 0;
    admitted = 0;
    quota_rejected = 0;
    shed_queue_full = 0;
    shed_displaced = 0;
    max_depth = 0;
  }

let depth t = t.depth

let quota_ok t ~now (tenant : Loadgen.tenant) =
  if tenant.Loadgen.quota_rate = infinity || tenant.Loadgen.quota_burst = infinity
  then true
  else begin
    let b =
      match Hashtbl.find_opt t.buckets tenant.Loadgen.name with
      | Some b -> b
      | None ->
        let b =
          {
            tokens = tenant.Loadgen.quota_burst;
            last = now;
            rate = tenant.Loadgen.quota_rate;
            cap = tenant.Loadgen.quota_burst;
          }
        in
        Hashtbl.replace t.buckets tenant.Loadgen.name b;
        b
    in
    b.tokens <- Float.min b.cap (b.tokens +. (Float.max 0.0 (now -. b.last) *. b.rate));
    b.last <- now;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      true
    end
    else false
  end

(* Queue order is service order.  Fifo appends; Priority inserts before
   the first strictly-lower-priority item (stable within a priority). *)
let enqueue t item =
  (match t.config.discipline with
  | Fifo -> t.queue <- t.queue @ [ item ]
  | Priority ->
    let rec ins = function
      | [] -> [ item ]
      | x :: rest when x.prio >= item.prio -> x :: ins rest
      | rest -> item :: rest
    in
    t.queue <- ins t.queue);
  t.depth <- t.depth + 1;
  if t.depth > t.max_depth then t.max_depth <- t.depth

(* The load-shedding victim under Drop_oldest: FIFO drops the head (the
   oldest waiting request — it has absorbed the most queueing delay and
   is the most likely to already be useless to its caller); Priority
   drops the oldest item of the lowest priority class. *)
let remove_victim t =
  match t.config.discipline with
  | Fifo ->
    (match t.queue with
    | [] -> None
    | v :: rest ->
      t.queue <- rest;
      t.depth <- t.depth - 1;
      Some v)
  | Priority ->
    (match t.queue with
    | [] -> None
    | q ->
      let victim =
        List.fold_left
          (fun acc x ->
            match acc with
            | None -> Some x
            | Some v ->
              if x.prio < v.prio || (x.prio = v.prio && x.seq < v.seq) then
                Some x
              else acc)
          None q
      in
      (match victim with
      | None -> None
      | Some v ->
        t.queue <- List.filter (fun (x : 'a item) -> x.seq <> v.seq) q;
        t.depth <- t.depth - 1;
        Some v))

let offer t ~now ~(tenant : Loadgen.tenant) payload =
  t.offered <- t.offered + 1;
  if not (quota_ok t ~now tenant) then begin
    t.quota_rejected <- t.quota_rejected + 1;
    `Quota_exceeded
  end
  else begin
    let item = { prio = tenant.Loadgen.priority; seq = t.seq; payload } in
    t.seq <- t.seq + 1;
    if t.depth < t.config.queue_bound then begin
      enqueue t item;
      t.admitted <- t.admitted + 1;
      `Admitted
    end
    else
      match t.config.shed_policy with
      | Reject_newest ->
        t.shed_queue_full <- t.shed_queue_full + 1;
        `Shed_queue_full
      | Drop_oldest -> (
        match remove_victim t with
        | None ->
          (* unreachable: depth >= queue_bound >= 1 *)
          t.shed_queue_full <- t.shed_queue_full + 1;
          `Shed_queue_full
        | Some v ->
          t.shed_displaced <- t.shed_displaced + 1;
          enqueue t item;
          t.admitted <- t.admitted + 1;
          `Displaced v.payload)
  end

let take t =
  match t.queue with
  | [] -> None
  | x :: rest ->
    t.queue <- rest;
    t.depth <- t.depth - 1;
    Some x.payload

type stats = {
  offered : int;
  admitted : int;
  quota_rejected : int;
  shed_queue_full : int;
  shed_displaced : int;
  max_depth : int;
}

let stats (t : 'a t) =
  {
    offered = t.offered;
    admitted = t.admitted;
    quota_rejected = t.quota_rejected;
    shed_queue_full = t.shed_queue_full;
    shed_displaced = t.shed_displaced;
    max_depth = t.max_depth;
  }

let shed s = s.shed_queue_full + s.shed_displaced
