open Ansor_te
open Ansor_sched

let sanitize name =
  let buf = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then
        Buffer.add_char buf c
      else if c >= '0' && c <= '9' then begin
        if i = 0 then Buffer.add_char buf 'v';
        Buffer.add_char buf c
      end
      else Buffer.add_char buf '_')
    name;
  if Buffer.length buf = 0 then "v" else Buffer.contents buf

(* collision-free identifier table over a set of names *)
let make_names names =
  let used = Hashtbl.create 16 in
  List.map
    (fun n ->
      let base = sanitize n in
      let rec pick candidate k =
        if Hashtbl.mem used candidate then pick (Printf.sprintf "%s_%d" base k) (k + 1)
        else candidate
      in
      let id = pick base 1 in
      Hashtbl.replace used id ();
      (n, id))
    names

let params (prog : Prog.t) = make_names (List.map fst prog.buffers)

(* loop variables: collected from the item tree *)
let loop_vars (prog : Prog.t) =
  let acc = ref [] in
  let rec go = function
    | Prog.Stmt _ -> ()
    | Prog.Loop l ->
      acc := l.lvar :: !acc;
      List.iter go l.body
  in
  List.iter go prog.items;
  List.rev !acc

let helpers =
  {|static inline int floordiv(int a, int b) {
  int q = a / b, r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
static inline int floormod(int a, int b) {
  int r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
static inline int imin(int a, int b) { return a < b ? a : b; }
static inline int imax(int a, int b) { return a > b ? a : b; }
|}

(* Guarded-mode helper (ANSOR_BOUNDS_CHECK=1): every flattened offset
   passes through [ansor_ck], which aborts with a diagnostic instead of
   touching memory out of bounds.  Requires <stdio.h> and <stdlib.h> in
   the TU. *)
let guard_helpers =
  {|static inline int ansor_ck(int i, int n, const char *buf) {
  if (i < 0 || i >= n) {
    fprintf(stderr, "ansor: out-of-bounds access to %s: index %d not in [0, %d)\n",
            buf, i, n);
    fflush(stderr);
    abort();
  }
  return i;
}
|}

type ctx = {
  buf_id : string -> string;
  var_id : string -> string;
  shapes : (string * int list) list;
  guard : bool;
}

let rec emit_iexpr ctx (e : Expr.iexpr) =
  match e with
  | Expr.Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Expr.Axis v -> ctx.var_id v
  | Expr.Iadd (a, b) -> Printf.sprintf "(%s + %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Isub (a, b) -> Printf.sprintf "(%s - %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imul (a, b) -> Printf.sprintf "(%s * %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Idiv (a, b) ->
    Printf.sprintf "floordiv(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imod (a, b) ->
    Printf.sprintf "floormod(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imin (a, b) ->
    Printf.sprintf "imin(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imax (a, b) ->
    Printf.sprintf "imax(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)

let rec emit_bexpr ctx (e : Expr.bexpr) =
  match e with
  | Expr.Blt (a, b) -> Printf.sprintf "(%s < %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Ble (a, b) -> Printf.sprintf "(%s <= %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Beq (a, b) -> Printf.sprintf "(%s == %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Band (a, b) -> Printf.sprintf "(%s && %s)" (emit_bexpr ctx a) (emit_bexpr ctx b)
  | Expr.Bor (a, b) -> Printf.sprintf "(%s || %s)" (emit_bexpr ctx a) (emit_bexpr ctx b)
  | Expr.Bnot a -> Printf.sprintf "(!%s)" (emit_bexpr ctx a)

(* row-major flattened offset for an access *)
let emit_offset ctx tensor indices =
  let shape =
    match List.assoc_opt tensor ctx.shapes with Some s -> s | None -> []
  in
  match indices with
  | [] -> "0"
  | _ ->
    (* row-major: ((i0*d1 + i1)*d2 + i2)... — each index is multiplied by
       the dimension of the NEXT axis as the fold accumulates *)
    let rec fold dims idx acc =
      match (dims, idx) with
      | [], [] -> acc
      | d :: dims', i :: idx' ->
        let t = emit_iexpr ctx i in
        let acc' =
          match acc with
          | None -> t
          | Some a -> Printf.sprintf "(%s * %d + %s)" a d t
        in
        fold dims' idx' (Some acc')
      | _ -> failwith "emit_offset: rank mismatch"
    in
    (match fold shape indices None with Some s -> s | None -> "0")

let emit_access ctx tensor indices =
  let offset = emit_offset ctx tensor indices in
  if ctx.guard then
    let size =
      match List.assoc_opt tensor ctx.shapes with
      | Some shape -> List.fold_left ( * ) 1 shape
      | None -> 1
    in
    Printf.sprintf "%s[ansor_ck(%s, %d, \"%s\")]" (ctx.buf_id tensor) offset
      size (sanitize tensor)
  else Printf.sprintf "%s[%s]" (ctx.buf_id tensor) offset

let rec emit_expr ctx (e : Expr.t) =
  match e with
  | Expr.Const f ->
    if Float.is_integer f && Float.abs f < 1e9 then
      Printf.sprintf "%.1ff" f
    else Printf.sprintf "%hf" f
  | Expr.Access (t, idx) -> emit_access ctx t idx
  | Expr.Cast_int i -> Printf.sprintf "(float)(%s)" (emit_iexpr ctx i)
  | Expr.Unop (op, a) -> (
    let x = emit_expr ctx a in
    match op with
    | Expr.Neg -> Printf.sprintf "(-%s)" x
    | Expr.Exp -> Printf.sprintf "expf(%s)" x
    | Expr.Log -> Printf.sprintf "logf(%s)" x
    | Expr.Sqrt -> Printf.sprintf "sqrtf(%s)" x
    | Expr.Tanh -> Printf.sprintf "tanhf(%s)" x
    | Expr.Sigmoid -> Printf.sprintf "(1.0f / (1.0f + expf(-(%s))))" x
    | Expr.Abs -> Printf.sprintf "fabsf(%s)" x
    | Expr.Relu -> Printf.sprintf "fmaxf(%s, 0.0f)" x)
  | Expr.Binop (op, a, b) -> (
    let x = emit_expr ctx a and y = emit_expr ctx b in
    match op with
    | Expr.Add -> Printf.sprintf "(%s + %s)" x y
    | Expr.Sub -> Printf.sprintf "(%s - %s)" x y
    | Expr.Mul -> Printf.sprintf "(%s * %s)" x y
    | Expr.Div -> Printf.sprintf "(%s / %s)" x y
    | Expr.Max -> Printf.sprintf "fmaxf(%s, %s)" x y
    | Expr.Min -> Printf.sprintf "fminf(%s, %s)" x y
    | Expr.Pow -> Printf.sprintf "powf(%s, %s)" x y)
  | Expr.Select (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)"
      (emit_bexpr ctx c) (emit_expr ctx a) (emit_expr ctx b)

let emit_stmt ctx (s : Prog.stmt) =
  let lhs = emit_access ctx s.tensor s.indices in
  let rhs = emit_expr ctx s.rhs in
  match s.update with
  | None -> Printf.sprintf "%s = %s;" lhs rhs
  | Some Op.Sum -> Printf.sprintf "%s += %s;" lhs rhs
  | Some Op.Maximum -> Printf.sprintf "%s = fmaxf(%s, %s);" lhs lhs rhs

let emit_items ctx buf items =
  let indent n = String.make (2 * n) ' ' in
  (* [in_simd]: OpenMP forbids a [parallel for] construct nested inside a
     [simd] region (a simd lane cannot host a thread team), and gcc rejects
     the TU outright.  The search space does propose Parallel-under-Vectorize
     schedules (the linter only warns), so inside a simd region a Parallel
     annotation degrades to a plain loop instead of an illegal pragma. *)
  let rec go ~in_simd depth = function
    | Prog.Stmt s ->
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf (emit_stmt ctx s);
      Buffer.add_char buf '\n'
    | Prog.Loop l ->
      (match l.ann with
      | Step.Parallel when not in_simd ->
        Buffer.add_string buf (indent depth);
        Buffer.add_string buf "#pragma omp parallel for\n"
      | Step.Parallel -> ()
      | Step.Vectorize ->
        Buffer.add_string buf (indent depth);
        Buffer.add_string buf "#pragma omp simd\n"
      | Step.Unroll ->
        Buffer.add_string buf (indent depth);
        Buffer.add_string buf (Printf.sprintf "#pragma GCC unroll %d\n" l.extent)
      | Step.No_ann -> ());
      let in_simd = in_simd || l.ann = Step.Vectorize in
      let v = ctx.var_id l.lvar in
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf
        (Printf.sprintf "for (int %s = 0; %s < %d; %s++) {\n" v v l.extent v);
      List.iter (go ~in_simd (depth + 1)) l.body;
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf "}\n"
  in
  List.iter (go ~in_simd:false 1) items

let buffer_size shape = List.fold_left ( * ) 1 shape

let make_ctx ?(guard = false) (prog : Prog.t) =
  let buf_names = params prog in
  let var_names = make_names (loop_vars prog) in
  {
    buf_id =
      (fun n ->
        match List.assoc_opt n buf_names with
        | Some id -> id
        | None -> sanitize n);
    var_id =
      (fun v ->
        match List.assoc_opt v var_names with
        | Some id -> id
        | None -> sanitize v);
    shapes = prog.buffers;
    guard;
  }

let emit_kernel_fn ?(static_fn = false) ?(guard = false) ~name (prog : Prog.t) =
  let ctx = make_ctx ~guard prog in
  let buf = Buffer.create 4096 in
  let param_list =
    String.concat ", "
      (List.map
         (fun (n, id) ->
           ignore n;
           Printf.sprintf "float * restrict %s" id)
         (params prog))
  in
  Buffer.add_string buf
    (Printf.sprintf "%svoid %s(%s) {\n"
       (if static_fn then "static " else "")
       name param_list);
  (* reduction-buffer initialization *)
  List.iter
    (fun (tensor, v) ->
      match List.assoc_opt tensor prog.buffers with
      | None -> ()
      | Some shape ->
        let n = buffer_size shape in
        let id = ctx.buf_id tensor in
        let init =
          if Float.is_finite v then Printf.sprintf "%hf" v
          else if v < 0.0 then "-INFINITY"
          else "INFINITY"
        in
        Buffer.add_string buf
          (Printf.sprintf "  for (int i = 0; i < %d; i++) %s[i] = %s;\n" n id
             init))
    prog.inits;
  emit_items ctx buf prog.items;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_kernel ?(name = "kernel") ?(guard = false) (prog : Prog.t) =
  let includes =
    if guard then "#include <math.h>\n#include <stdio.h>\n#include <stdlib.h>\n\n"
    else "#include <math.h>\n\n"
  in
  includes ^ helpers
  ^ (if guard then guard_helpers else "")
  ^ "\n"
  ^ emit_kernel_fn ~guard ~name prog

let emit_test_main (prog : Prog.t) ~inputs =
  let names = params prog in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "#include <stdio.h>\n#include <stdlib.h>\n";
  Buffer.add_string buf (emit_kernel prog);
  Buffer.add_char buf '\n';
  (* input data as exact hex-float initializers *)
  List.iter
    (fun (tensor, shape) ->
      let id = List.assoc tensor names in
      match List.assoc_opt tensor inputs with
      | Some data ->
        if Array.length data <> buffer_size shape then
          invalid_arg
            (Printf.sprintf "Codegen_c.emit_test_main: input %s has %d elements, expected %d"
               tensor (Array.length data) (buffer_size shape));
        Buffer.add_string buf
          (Printf.sprintf "static float %s_data[%d] = {" id (Array.length data));
        Array.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Printf.sprintf "%hf" v))
          data;
        Buffer.add_string buf "};\n"
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "static float %s_data[%d];\n" id (buffer_size shape)))
    prog.buffers;
  Buffer.add_string buf "\nint main(void) {\n";
  Buffer.add_string buf
    (Printf.sprintf "  kernel(%s);\n"
       (String.concat ", "
          (List.map (fun (_, id) -> id ^ "_data") names)));
  let input_names = List.map fst inputs in
  List.iter
    (fun (tensor, shape) ->
      if not (List.mem tensor input_names) then begin
        let id = List.assoc tensor names in
        Buffer.add_string buf
          (Printf.sprintf
             "  for (int i = 0; i < %d; i++) printf(\"%%.9g\\n\", (double)%s_data[i]);\n"
             (buffer_size shape) id)
      end)
    prog.buffers;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

(* ---- batched benchmark translation units -------------------------------- *)

(* Buffers never stored to by the program (and not reduction-initialized)
   are its inputs; for a lowered schedule this is exactly the DAG's input
   set, whatever surgery steps (cache stages, rfactor) added in between. *)
let input_buffers (prog : Prog.t) =
  let written = Hashtbl.create 16 in
  let rec go = function
    | Prog.Stmt s -> Hashtbl.replace written s.Prog.tensor ()
    | Prog.Loop l -> List.iter go l.Prog.body
  in
  List.iter go prog.items;
  List.iter (fun (t, _) -> Hashtbl.replace written t ()) prog.inits;
  List.filter (fun (n, _) -> not (Hashtbl.mem written n)) prog.buffers

(* The C side fills input buffers with a 32-bit LCG; every value is a
   multiple of 2^-16 in [-0.5, 0.5), hence exactly representable in both
   float32 (C) and float64 (the interpreter), so [bench_inputs] reproduces
   the identical tensors without shipping data into the TU. *)
let lcg_fill ~seed n =
  let s = ref (seed land 0xFFFFFFFF) in
  Array.init n (fun _ ->
      s := ((!s * 1664525) + 1013904223) land 0xFFFFFFFF;
      (float_of_int ((!s lsr 8) land 0xFFFF) /. 65536.0) -. 0.5)

(* seed: a Weyl step over the buffer's position, so every buffer gets a
   distinct well-mixed stream and the C side can embed the constant *)
let fill_seed bi = 0x9E3779B9 * (bi + 1) land 0xFFFFFFFF

let bench_inputs (prog : Prog.t) =
  let inputs = List.map fst (input_buffers prog) in
  List.mapi (fun bi (name, shape) -> (bi, name, shape)) prog.buffers
  |> List.filter_map (fun (bi, name, shape) ->
         if List.mem name inputs then
           Some (name, lcg_fill ~seed:(fill_seed bi) (buffer_size shape))
         else None)

let bench_main_help =
  "  /* usage: <exe> KERNEL_INDEX [time REPEAT WARMUP | dump] */\n"

let emit_bench_tu ?(guard = false) (progs : Prog.t list) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    "#include <math.h>\n#include <stdio.h>\n#include <stdlib.h>\n\
     #include <string.h>\n#include <time.h>\n\n";
  Buffer.add_string buf helpers;
  if guard then Buffer.add_string buf guard_helpers;
  Buffer.add_string buf
    {|static void fill(float *a, int n, unsigned s) {
  for (int i = 0; i < n; i++) {
    s = s * 1664525u + 1013904223u;
    a[i] = (float)((s >> 8) & 0xFFFFu) / 65536.0f - 0.5f;
  }
}
static double now_sec(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}
|};
  Buffer.add_char buf '\n';
  List.iteri
    (fun i prog ->
      Buffer.add_string buf
        (emit_kernel_fn ~static_fn:true ~guard ~name:(Printf.sprintf "k%d" i)
           prog);
      Buffer.add_char buf '\n')
    progs;
  (* one runner per kernel: allocate + deterministically fill the buffers,
     optionally dump the outputs (equivalence checks), otherwise time
     warmup + repeat runs and return the minimum *)
  List.iteri
    (fun ki (prog : Prog.t) ->
      let inputs = List.map fst (input_buffers prog) in
      let n_bufs = List.length prog.buffers in
      Buffer.add_string buf
        (Printf.sprintf "static double run_%d(int dump, int repeat, int warmup) {\n"
           ki);
      List.iteri
        (fun bi (name, shape) ->
          let n = buffer_size shape in
          if List.mem name inputs then begin
            Buffer.add_string buf
              (Printf.sprintf "  float *b%d = malloc(%d * sizeof(float));\n" bi n);
            Buffer.add_string buf
              (Printf.sprintf "  fill(b%d, %d, %uu);\n" bi n (fill_seed bi))
          end
          else
            Buffer.add_string buf
              (Printf.sprintf "  float *b%d = calloc(%d, sizeof(float));\n" bi n))
        prog.buffers;
      let args =
        String.concat ", " (List.init n_bufs (fun bi -> Printf.sprintf "b%d" bi))
      in
      Buffer.add_string buf (Printf.sprintf "  double best = INFINITY;\n");
      Buffer.add_string buf "  if (dump) {\n";
      Buffer.add_string buf (Printf.sprintf "    k%d(%s);\n" ki args);
      List.iteri
        (fun bi (name, shape) ->
          if not (List.mem name inputs) then
            Buffer.add_string buf
              (Printf.sprintf
                 "    for (int i = 0; i < %d; i++) printf(\"%%.9g\\n\", \
                  (double)b%d[i]);\n"
                 (buffer_size shape) bi))
        prog.buffers;
      Buffer.add_string buf "    best = 0.0;\n  } else {\n";
      Buffer.add_string buf
        (Printf.sprintf "    for (int w = 0; w < warmup; w++) k%d(%s);\n" ki args);
      Buffer.add_string buf "    for (int r = 0; r < repeat; r++) {\n";
      Buffer.add_string buf "      double t0 = now_sec();\n";
      Buffer.add_string buf (Printf.sprintf "      k%d(%s);\n" ki args);
      Buffer.add_string buf "      double dt = now_sec() - t0;\n";
      Buffer.add_string buf "      if (dt < best) best = dt;\n    }\n  }\n";
      List.iteri
        (fun bi _ -> Buffer.add_string buf (Printf.sprintf "  free(b%d);\n" bi))
        prog.buffers;
      Buffer.add_string buf "  return best;\n}\n\n")
    progs;
  Buffer.add_string buf "int main(int argc, char **argv) {\n";
  Buffer.add_string buf bench_main_help;
  Buffer.add_string buf
    {|  if (argc < 2) return 2;
  int idx = atoi(argv[1]);
  int dump = argc > 2 && strcmp(argv[2], "dump") == 0;
  int repeat = argc > 3 ? atoi(argv[3]) : 3;
  int warmup = argc > 4 ? atoi(argv[4]) : 1;
  if (repeat < 1) repeat = 1;
  if (warmup < 0) warmup = 0;
  double t;
  switch (idx) {
|};
  List.iteri
    (fun ki _ ->
      Buffer.add_string buf
        (Printf.sprintf "  case %d: t = run_%d(dump, repeat, warmup); break;\n"
           ki ki))
    progs;
  Buffer.add_string buf
    {|  default: return 2;
  }
  if (!dump) printf("%.9e\n", t);
  return 0;
}
|};
  Buffer.contents buf
