open Ansor_te
open Ansor_sched

let sanitize name =
  let buf = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then
        Buffer.add_char buf c
      else if c >= '0' && c <= '9' then begin
        if i = 0 then Buffer.add_char buf 'v';
        Buffer.add_char buf c
      end
      else Buffer.add_char buf '_')
    name;
  if Buffer.length buf = 0 then "v" else Buffer.contents buf

(* collision-free identifier table over a set of names *)
let make_names names =
  let used = Hashtbl.create 16 in
  List.map
    (fun n ->
      let base = sanitize n in
      let rec pick candidate k =
        if Hashtbl.mem used candidate then pick (Printf.sprintf "%s_%d" base k) (k + 1)
        else candidate
      in
      let id = pick base 1 in
      Hashtbl.replace used id ();
      (n, id))
    names

let params (prog : Prog.t) = make_names (List.map fst prog.buffers)

(* loop variables: collected from the item tree *)
let loop_vars (prog : Prog.t) =
  let acc = ref [] in
  let rec go = function
    | Prog.Stmt _ -> ()
    | Prog.Loop l ->
      acc := l.lvar :: !acc;
      List.iter go l.body
  in
  List.iter go prog.items;
  List.rev !acc

let helpers =
  {|static inline int floordiv(int a, int b) {
  int q = a / b, r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
static inline int floormod(int a, int b) {
  int r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
static inline int imin(int a, int b) { return a < b ? a : b; }
static inline int imax(int a, int b) { return a > b ? a : b; }
|}

type ctx = {
  buf_id : string -> string;
  var_id : string -> string;
  shapes : (string * int list) list;
}

let rec emit_iexpr ctx (e : Expr.iexpr) =
  match e with
  | Expr.Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Expr.Axis v -> ctx.var_id v
  | Expr.Iadd (a, b) -> Printf.sprintf "(%s + %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Isub (a, b) -> Printf.sprintf "(%s - %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imul (a, b) -> Printf.sprintf "(%s * %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Idiv (a, b) ->
    Printf.sprintf "floordiv(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imod (a, b) ->
    Printf.sprintf "floormod(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imin (a, b) ->
    Printf.sprintf "imin(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Imax (a, b) ->
    Printf.sprintf "imax(%s, %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)

let rec emit_bexpr ctx (e : Expr.bexpr) =
  match e with
  | Expr.Blt (a, b) -> Printf.sprintf "(%s < %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Ble (a, b) -> Printf.sprintf "(%s <= %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Beq (a, b) -> Printf.sprintf "(%s == %s)" (emit_iexpr ctx a) (emit_iexpr ctx b)
  | Expr.Band (a, b) -> Printf.sprintf "(%s && %s)" (emit_bexpr ctx a) (emit_bexpr ctx b)
  | Expr.Bor (a, b) -> Printf.sprintf "(%s || %s)" (emit_bexpr ctx a) (emit_bexpr ctx b)
  | Expr.Bnot a -> Printf.sprintf "(!%s)" (emit_bexpr ctx a)

(* row-major flattened offset for an access *)
let emit_offset ctx tensor indices =
  let shape =
    match List.assoc_opt tensor ctx.shapes with Some s -> s | None -> []
  in
  match indices with
  | [] -> "0"
  | _ ->
    (* row-major: ((i0*d1 + i1)*d2 + i2)... — each index is multiplied by
       the dimension of the NEXT axis as the fold accumulates *)
    let rec fold dims idx acc =
      match (dims, idx) with
      | [], [] -> acc
      | d :: dims', i :: idx' ->
        let t = emit_iexpr ctx i in
        let acc' =
          match acc with
          | None -> t
          | Some a -> Printf.sprintf "(%s * %d + %s)" a d t
        in
        fold dims' idx' (Some acc')
      | _ -> failwith "emit_offset: rank mismatch"
    in
    (match fold shape indices None with Some s -> s | None -> "0")

let emit_access ctx tensor indices =
  Printf.sprintf "%s[%s]" (ctx.buf_id tensor) (emit_offset ctx tensor indices)

let rec emit_expr ctx (e : Expr.t) =
  match e with
  | Expr.Const f ->
    if Float.is_integer f && Float.abs f < 1e9 then
      Printf.sprintf "%.1ff" f
    else Printf.sprintf "%hf" f
  | Expr.Access (t, idx) -> emit_access ctx t idx
  | Expr.Cast_int i -> Printf.sprintf "(float)(%s)" (emit_iexpr ctx i)
  | Expr.Unop (op, a) -> (
    let x = emit_expr ctx a in
    match op with
    | Expr.Neg -> Printf.sprintf "(-%s)" x
    | Expr.Exp -> Printf.sprintf "expf(%s)" x
    | Expr.Log -> Printf.sprintf "logf(%s)" x
    | Expr.Sqrt -> Printf.sprintf "sqrtf(%s)" x
    | Expr.Tanh -> Printf.sprintf "tanhf(%s)" x
    | Expr.Sigmoid -> Printf.sprintf "(1.0f / (1.0f + expf(-(%s))))" x
    | Expr.Abs -> Printf.sprintf "fabsf(%s)" x
    | Expr.Relu -> Printf.sprintf "fmaxf(%s, 0.0f)" x)
  | Expr.Binop (op, a, b) -> (
    let x = emit_expr ctx a and y = emit_expr ctx b in
    match op with
    | Expr.Add -> Printf.sprintf "(%s + %s)" x y
    | Expr.Sub -> Printf.sprintf "(%s - %s)" x y
    | Expr.Mul -> Printf.sprintf "(%s * %s)" x y
    | Expr.Div -> Printf.sprintf "(%s / %s)" x y
    | Expr.Max -> Printf.sprintf "fmaxf(%s, %s)" x y
    | Expr.Min -> Printf.sprintf "fminf(%s, %s)" x y
    | Expr.Pow -> Printf.sprintf "powf(%s, %s)" x y)
  | Expr.Select (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)"
      (emit_bexpr ctx c) (emit_expr ctx a) (emit_expr ctx b)

let emit_stmt ctx (s : Prog.stmt) =
  let lhs = emit_access ctx s.tensor s.indices in
  let rhs = emit_expr ctx s.rhs in
  match s.update with
  | None -> Printf.sprintf "%s = %s;" lhs rhs
  | Some Op.Sum -> Printf.sprintf "%s += %s;" lhs rhs
  | Some Op.Maximum -> Printf.sprintf "%s = fmaxf(%s, %s);" lhs lhs rhs

let emit_items ctx buf items =
  let indent n = String.make (2 * n) ' ' in
  let rec go depth = function
    | Prog.Stmt s ->
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf (emit_stmt ctx s);
      Buffer.add_char buf '\n'
    | Prog.Loop l ->
      (match l.ann with
      | Step.Parallel ->
        Buffer.add_string buf (indent depth);
        Buffer.add_string buf "#pragma omp parallel for\n"
      | Step.Vectorize ->
        Buffer.add_string buf (indent depth);
        Buffer.add_string buf "#pragma omp simd\n"
      | Step.Unroll ->
        Buffer.add_string buf (indent depth);
        Buffer.add_string buf (Printf.sprintf "#pragma GCC unroll %d\n" l.extent)
      | Step.No_ann -> ());
      let v = ctx.var_id l.lvar in
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf
        (Printf.sprintf "for (int %s = 0; %s < %d; %s++) {\n" v v l.extent v);
      List.iter (go (depth + 1)) l.body;
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf "}\n"
  in
  List.iter (go 1) items

let buffer_size shape = List.fold_left ( * ) 1 shape

let make_ctx (prog : Prog.t) =
  let buf_names = params prog in
  let var_names = make_names (loop_vars prog) in
  {
    buf_id =
      (fun n ->
        match List.assoc_opt n buf_names with
        | Some id -> id
        | None -> sanitize n);
    var_id =
      (fun v ->
        match List.assoc_opt v var_names with
        | Some id -> id
        | None -> sanitize v);
    shapes = prog.buffers;
  }

let emit_kernel ?(name = "kernel") (prog : Prog.t) =
  let ctx = make_ctx prog in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#include <math.h>\n\n";
  Buffer.add_string buf helpers;
  Buffer.add_char buf '\n';
  let param_list =
    String.concat ", "
      (List.map
         (fun (n, id) ->
           ignore n;
           Printf.sprintf "float * restrict %s" id)
         (params prog))
  in
  Buffer.add_string buf (Printf.sprintf "void %s(%s) {\n" name param_list);
  (* reduction-buffer initialization *)
  List.iter
    (fun (tensor, v) ->
      match List.assoc_opt tensor prog.buffers with
      | None -> ()
      | Some shape ->
        let n = buffer_size shape in
        let id = ctx.buf_id tensor in
        let init =
          if Float.is_finite v then Printf.sprintf "%hf" v
          else if v < 0.0 then "-INFINITY"
          else "INFINITY"
        in
        Buffer.add_string buf
          (Printf.sprintf "  for (int i = 0; i < %d; i++) %s[i] = %s;\n" n id
             init))
    prog.inits;
  emit_items ctx buf prog.items;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_test_main (prog : Prog.t) ~inputs =
  let names = params prog in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "#include <stdio.h>\n#include <stdlib.h>\n";
  Buffer.add_string buf (emit_kernel prog);
  Buffer.add_char buf '\n';
  (* input data as exact hex-float initializers *)
  List.iter
    (fun (tensor, shape) ->
      let id = List.assoc tensor names in
      match List.assoc_opt tensor inputs with
      | Some data ->
        if Array.length data <> buffer_size shape then
          invalid_arg
            (Printf.sprintf "Codegen_c.emit_test_main: input %s has %d elements, expected %d"
               tensor (Array.length data) (buffer_size shape));
        Buffer.add_string buf
          (Printf.sprintf "static float %s_data[%d] = {" id (Array.length data));
        Array.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Printf.sprintf "%hf" v))
          data;
        Buffer.add_string buf "};\n"
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "static float %s_data[%d];\n" id (buffer_size shape)))
    prog.buffers;
  Buffer.add_string buf "\nint main(void) {\n";
  Buffer.add_string buf
    (Printf.sprintf "  kernel(%s);\n"
       (String.concat ", "
          (List.map (fun (_, id) -> id ^ "_data") names)));
  let input_names = List.map fst inputs in
  List.iter
    (fun (tensor, shape) ->
      if not (List.mem tensor input_names) then begin
        let id = List.assoc tensor names in
        Buffer.add_string buf
          (Printf.sprintf
             "  for (int i = 0; i < %d; i++) printf(\"%%.9g\\n\", (double)%s_data[i]);\n"
             (buffer_size shape) id)
      end)
    prog.buffers;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf
