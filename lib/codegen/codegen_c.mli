(** C code generation for lowered programs.

    In the paper, Ansor's programs "are then lowered to TVM IR for code
    generation targeting various hardware platforms" — TVM acts as a
    deterministic code generator.  This module plays that role here: it
    emits a self-contained C99 translation unit for any lowered program,
    with the schedule's annotations mapped to portable pragmas:

    - [parallel]  → [#pragma omp parallel for]
    - [vectorize] → [#pragma omp simd]
    - [unroll]    → [#pragma GCC unroll <extent>]

    Semantics match the reference interpreter exactly: floor division /
    Euclidean modulo helpers are emitted (C's truncating operators differ
    on negatives, which matters for the transposed-convolution guards),
    selects become ternaries (so guarded out-of-bounds accesses are never
    evaluated), and reduction buffers are initialized to their identity
    element before the loop nests run.

    The emitted code is valid without OpenMP (the pragmas are ignored);
    compile with [-fopenmp] to actually parallelize.

    The generated kernel takes one [float *] parameter per buffer of the
    program, inputs first (parameter order = {!params}).  {!emit_test_main}
    additionally produces a [main] that feeds fixed inputs and prints every
    output element, which the test suite compiles with gcc and compares
    against the interpreter — the end-to-end "does real code agree"
    check. *)

open Ansor_sched

val sanitize : string -> string
(** C identifier for a tensor or loop-variable name (['.'], ['@'] and other
    non-alphanumeric characters become ['_']; a leading digit is
    prefixed). Injective over any one program's names via a disambiguating
    suffix is {e not} applied here — use {!params} for the per-program
    unique mapping. *)

val params : Prog.t -> (string * string) list
(** [(buffer name, C identifier)] for every buffer, in parameter order
    (program buffer order), with collision-free identifiers. *)

val emit_kernel : ?name:string -> ?guard:bool -> Prog.t -> string
(** The kernel function (plus the division helpers), as a compilable C
    fragment. [name] defaults to ["kernel"].  [guard] (default false)
    emits bounds-guarded accesses (see {!guard_helpers}). *)

val emit_kernel_fn :
  ?static_fn:bool -> ?guard:bool -> name:string -> Prog.t -> string
(** Just the kernel function, without includes or helpers — for callers
    assembling multi-kernel translation units (emit {!helpers} once, then
    one [emit_kernel_fn] per kernel).  [static_fn] gives the function
    internal linkage.  With [guard] every access's flattened offset is
    routed through the [ansor_ck] range check (emit {!guard_helpers} in
    the TU). *)

val helpers : string
(** The shared integer-division/min/max helper block every kernel relies
    on; emit exactly once per translation unit. *)

val guard_helpers : string
(** The [ansor_ck] branch-and-abort range-check helper used by guarded
    kernels ([ANSOR_BOUNDS_CHECK=1]): an out-of-bounds flattened offset
    prints the buffer name and offending index to stderr and [abort()]s
    before touching memory — defense-in-depth for programs the static
    certifier could not prove safe, and the crash signal the sanitizer
    differential oracle keys on.  Needs [<stdio.h>]/[<stdlib.h>]; emit
    once per TU, after {!helpers}. *)

val input_buffers : Prog.t -> (string * int list) list
(** The program's input buffers — those it never stores to (and never
    reduction-initializes) — with their shapes, in buffer order. *)

val emit_bench_tu : ?guard:bool -> Prog.t list -> string
(** One self-contained benchmark translation unit over N kernels — the
    native measurement backend's batch-compilation hot path (one gcc
    invocation amortizes process spawn and header parsing over the whole
    batch).  The [main] selects the kernel by [argv] index, dlopen-free:

    - [exe IDX time REPEAT WARMUP] allocates the kernel's buffers, fills
      the inputs deterministically, runs WARMUP untimed then REPEAT timed
      invocations ([clock_gettime(CLOCK_MONOTONIC)]) and prints the
      minimum in seconds ([%.9e]);
    - [exe IDX dump] runs the kernel once and prints every non-input
      buffer element ([%.9g], buffer order) — the equivalence hook:
      feeding {!bench_inputs} to the interpreter must reproduce exactly
      these outputs;
    - an out-of-range index exits with status 2. *)

val bench_inputs : Prog.t -> (string * float array) list
(** The exact input tensors the benchmark TU's deterministic fill
    produces for this program (a 32-bit LCG whose values are exactly
    representable in float32), keyed by buffer name — run the interpreter
    on these to cross-check a [dump] invocation. *)

val emit_test_main :
  Prog.t -> inputs:(string * float array) list -> string
(** A complete translation unit: the kernel plus a [main] that initializes
    the input buffers with the given data (hex float literals, exact),
    zero-allocates the other buffers, runs the kernel once and prints each
    non-input buffer's elements one per line ([printf "%.9g"]), in buffer
    order.
    @raise Invalid_argument if an input is missing or has the wrong
    size. *)
