(** Driving the system C compiler and the binaries it produces.

    The single shared gcc front-end: the codegen differential tests, the
    deployment smoke checks, the native measurement backend and the
    benches all compile through {!compile}/{!compile_string} and execute
    through {!run}, so every failure message carries the captured stderr
    (no [cc.err] temp files to chase) and every caller agrees on compiler
    discovery ([$ANSOR_CC], default [gcc]). *)

val cc : unit -> string
(** Compiler command: [$ANSOR_CC] if set, else ["gcc"]. *)

val available : unit -> bool
(** Whether {!cc} runs at all (memoized probe). Gate compiler-dependent
    tests and backends on this. *)

val default_flags : string list
(** Quick correctness-check flags ([-O1]). *)

val native_flags : string list
(** Performance-measurement flags ([-O3 -fopenmp -march=native]). *)

val with_temp_dir : prefix:string -> (string -> 'a) -> 'a
(** Runs the function with a fresh private directory, removing it (and
    any files left inside) afterwards, also on exceptions. *)

val compile :
  ?flags:string list -> src:string -> out:string -> unit -> (unit, string) result
(** Compiles one C translation unit to an executable ([-lm] appended).
    [Error] carries the compiler's exit code and its captured stderr,
    truncated to a bounded length. *)

val compile_string :
  ?flags:string list ->
  dir:string ->
  basename:string ->
  string ->
  (string, string) result
(** Writes the source to [dir/basename.c], compiles it to
    [dir/basename], and returns the executable path. *)

type run_error =
  | Nonzero_exit of int * string  (** exit code, captured stderr *)
  | Signaled of int * string  (** fatal signal (killed, segfault, ...) *)
  | Timed_out of float  (** wall-clock limit in seconds *)

val run_error_to_string : run_error -> string

val run :
  ?timeout:float -> string -> string list -> (string list, run_error) result
(** [run exe args] executes the binary with stdout captured; returns its
    non-empty stdout lines.  [timeout] is a wall-clock limit in seconds —
    on expiry the process is killed ([SIGKILL]) and {!Timed_out} is
    returned.  Never raises on process failure: non-zero exits and fatal
    signals come back classified, with stderr attached. *)

val write_file : string -> string -> unit
(** [write_file path contents] (re)writes a file — convenience for
    callers staging sources into a temp dir. *)
