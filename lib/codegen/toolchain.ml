(* One place that knows how to drive the C compiler and the binaries it
   produces.  Everything that used to shell out to gcc ad hoc (the codegen
   differential tests, deployment smoke checks, the native measurement
   backend, benches) goes through here, so failure messages always carry
   the captured stderr instead of pointing at a dead temp file. *)

let cc () = Option.value (Sys.getenv_opt "ANSOR_CC") ~default:"gcc"

let available =
  let probe =
    lazy
      (Sys.command (Printf.sprintf "%s --version > /dev/null 2>&1" (cc ())) = 0)
  in
  fun () -> Lazy.force probe

let default_flags = [ "-O1" ]
let native_flags = [ "-O3"; "-fopenmp"; "-march=native" ]

(* ---- temp-dir plumbing -------------------------------------------------- *)

let with_temp_dir ~prefix f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cleanup () =
    match Sys.readdir dir with
    | entries ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())
    | exception Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* stderr capped so a pathological compiler dump cannot blow up telemetry,
   logs or checkpoint images downstream *)
let truncate_err msg =
  let limit = 4000 in
  if String.length msg <= limit then String.trim msg
  else String.trim (String.sub msg 0 limit) ^ " ... [truncated]"

(* ---- compilation -------------------------------------------------------- *)

let compile ?(flags = default_flags) ~src ~out () =
  let err_file = out ^ ".err" in
  let cmd =
    Printf.sprintf "%s %s -o %s %s -lm 2> %s" (cc ())
      (String.concat " " flags)
      (Filename.quote out) (Filename.quote src) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let err = read_file err_file in
  (try Sys.remove err_file with Sys_error _ -> ());
  if code = 0 then Ok ()
  else
    Error
      (Printf.sprintf "%s exited with %d: %s" (cc ()) code
         (truncate_err (if err = "" then "(no stderr)" else err)))

let compile_string ?flags ~dir ~basename source =
  let src = Filename.concat dir (basename ^ ".c") in
  let out = Filename.concat dir basename in
  write_file src source;
  match compile ?flags ~src ~out () with
  | Ok () -> Ok out
  | Error _ as e -> e

(* ---- running ------------------------------------------------------------ *)

type run_error =
  | Nonzero_exit of int * string  (** exit code, captured stderr *)
  | Signaled of int * string  (** fatal signal (killed, segfault, ...) *)
  | Timed_out of float  (** wall-clock limit in seconds *)

let run_error_to_string = function
  | Nonzero_exit (c, err) ->
    Printf.sprintf "exited with %d%s" c (if err = "" then "" else ": " ^ err)
  | Signaled (s, err) ->
    Printf.sprintf "killed by signal %d%s" s (if err = "" then "" else ": " ^ err)
  | Timed_out limit -> Printf.sprintf "timed out after %.1fs" limit

(* Run [exe args], stdout/stderr captured to temp files (no pipe deadlock
   on chatty programs), with an optional wall-clock kill.  The poll loop
   backs off to 10ms, so the timing resolution is far below any sane
   [timeout]; the measured latencies themselves are taken {e inside} the
   child, so the polling granularity never pollutes them. *)
let run ?(timeout = infinity) exe args =
  let out_file = Filename.temp_file "ansor_run" ".out" in
  let err_file = Filename.temp_file "ansor_run" ".err" in
  let cleanup () =
    List.iter
      (fun f -> try Sys.remove f with Sys_error _ -> ())
      [ out_file; err_file ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let fd_out = Unix.openfile out_file [ O_WRONLY; O_TRUNC ] 0o644 in
      let fd_err = Unix.openfile err_file [ O_WRONLY; O_TRUNC ] 0o644 in
      let pid =
        Fun.protect
          ~finally:(fun () ->
            Unix.close fd_out;
            Unix.close fd_err)
          (fun () ->
            Unix.create_process exe
              (Array.of_list (exe :: args))
              Unix.stdin fd_out fd_err)
      in
      let deadline = Unix.gettimeofday () +. timeout in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            Error (Timed_out timeout)
          end
          else begin
            Unix.sleepf 0.01;
            wait ()
          end
        | _, Unix.WEXITED 0 ->
          let stdout_lines =
            String.split_on_char '\n' (read_file out_file)
            |> List.filter (fun l -> l <> "")
          in
          Ok stdout_lines
        | _, Unix.WEXITED c ->
          Error (Nonzero_exit (c, truncate_err (read_file err_file)))
        | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
          Error (Signaled (s, truncate_err (read_file err_file)))
      in
      wait ())
