open Ansor_te
open Ansor_sched
module I = Validate.Interval
module Lru = Ansor_util.Lru

(* Static memory-safety certification of lowered programs.

   For every load and store the certifier tries to prove, per buffer
   dimension, that the index stays inside [0, extent).  The proof
   machinery is shared with the race detector ({!Linform}): each index
   expression decomposes into a constant plus per-loop-variable groups of
   [(p / stride) mod len] digits, whose exact value range (and the
   iterations attaining it) is computed by a bounded scan; guarded
   accesses (the padding [select] idiom — C ternaries evaluate only the
   taken branch) fall back to an exhaustive guard-aware enumeration of
   the mentioned loop variables.

   Soundness policy mirrors {!Races}: [Unsafe] is only ever claimed with
   a {e constructive witness} — a concrete iteration vector and the
   offending index value, re-validated by evaluation before the claim is
   made — so a gate keyed on [Unsafe] can never reject a legal program.
   [Certified] is a proof (hull containment or completed enumeration);
   anything in between is [Unknown] and the caller decides (the native
   measurement gate refuses it unless guarded codegen is on; search
   keeps it, since the interpreter and simulator trap bounds anyway). *)

type access_kind = Read | Write

let access_kind_name = function Read -> "read" | Write -> "write"

type witness = {
  w_stage : string;  (** statement whose access goes out of bounds *)
  w_kind : access_kind;
  w_tensor : string;
  w_dim : int;  (** 0-based buffer dimension *)
  w_extent : int;  (** extent of that dimension *)
  w_index : int;  (** offending index value, outside [0, extent) *)
  w_iter : (string * int) list;
      (** full enclosing-loop iteration vector, outermost first *)
}

type verdict = Certified | Unsafe of witness | Unknown

let verdict_name = function
  | Certified -> "certified"
  | Unsafe _ -> "unsafe"
  | Unknown -> "unknown"

let iter_to_string iter =
  String.concat ", " (List.map (fun (v, i) -> Printf.sprintf "%s=%d" v i) iter)

let witness_to_string w =
  Printf.sprintf
    "%s of %s by stage %s: dimension %d index %d outside [0, %d) at iteration %s"
    (access_kind_name w.w_kind)
    w.w_tensor w.w_stage w.w_dim w.w_index w.w_extent
    (iter_to_string w.w_iter)

let witness_to_json w =
  Printf.sprintf
    {|{"kind":"%s","tensor":"%s","stage":"%s","dim":%d,"index":%d,"extent":%d,"iteration":{%s}}|}
    (access_kind_name w.w_kind)
    (Diagnostic.json_escape w.w_tensor)
    (Diagnostic.json_escape w.w_stage)
    w.w_dim w.w_index w.w_extent
    (String.concat ","
       (List.map
          (fun (v, i) ->
            Printf.sprintf {|"%s":%d|} (Diagnostic.json_escape v) i)
          w.w_iter))

(* Per-variable scan and guard-aware enumeration budgets.  Both bound
   work, never soundness: past the cap the verdict degrades to [Unknown],
   it never guesses. *)
let scan_cap = 65536
let enum_cap = 65536

(* ---- per-dimension hull -------------------------------------------------- *)

(* Exact value range of one loop variable's digit group, with the
   iterations attaining the extremes (for direct witness construction). *)
type var_range = {
  vr_var : string;
  vr_min : int;
  vr_argmin : int;
  vr_max : int;
  vr_argmax : int;
}

let scan_digits ~extent digits =
  let value p =
    List.fold_left (fun acc (d, c) -> acc + (c * Linform.digit_value d p)) 0 digits
  in
  let r = ref { vr_var = ""; vr_min = value 0; vr_argmin = 0; vr_max = value 0; vr_argmax = 0 } in
  for p = 1 to extent - 1 do
    let v = value p in
    if v < !r.vr_min then r := { !r with vr_min = v; vr_argmin = p };
    if v > !r.vr_max then r := { !r with vr_max = v; vr_argmax = p }
  done;
  !r

exception Inexact

(* Exact hull of an index expression: constant plus independent per-var
   digit groups, each scanned over its full range.  Raises [Inexact] when
   a term is beyond the digit grammar, mixes variables, or a variable's
   extent is over the scan budget. *)
let exact_hull env e =
  let lf = Linform.of_iexpr e in
  (* group p-mentioning terms by their (single) variable *)
  let groups : (string, (Expr.iexpr * int) list) Hashtbl.t = Hashtbl.create 4 in
  let const = ref lf.Linform.const in
  List.iter
    (fun (atom, c) ->
      match Expr.iexpr_axes atom with
      | [] ->
        (* constant atom (e.g. Imin of literals): evaluate it outright *)
        let v =
          try Expr.eval_iexpr (fun _ -> raise Inexact) atom
          with Division_by_zero -> raise Inexact
        in
        const := !const + (c * v)
      | [ v ] ->
        Hashtbl.replace groups v
          ((atom, c) :: Option.value (Hashtbl.find_opt groups v) ~default:[])
      | _ -> raise Inexact)
    lf.Linform.terms;
  let ranges =
    Hashtbl.fold
      (fun v terms acc ->
        let extent =
          match env v with
          | Some { I.lo = 0; hi } -> hi + 1
          | _ -> raise Inexact
        in
        if extent > scan_cap then raise Inexact;
        match Linform.digits_of ~p:v ~extent terms with
        | None -> raise Inexact
        | Some ds -> (
          match Linform.merge_digits ds with
          | [] -> acc
          | digits -> { (scan_digits ~extent digits) with vr_var = v } :: acc))
      groups []
  in
  let lo = List.fold_left (fun acc r -> acc + r.vr_min) !const ranges in
  let hi = List.fold_left (fun acc r -> acc + r.vr_max) !const ranges in
  (lo, hi, ranges)

(* ---- guard-implied bounds ------------------------------------------------ *)

(* Atomic comparisons that must hold on a select-guard path: the [true]
   branch of a [Band] contributes both operands, the [false] branch of a
   [Bor] both negations; inequality negations flip ([not (a < b)] is
   [b <= a]).  Shapes we cannot decompose (the [false] branch of [Band],
   equalities) are dropped — losing a constraint only loses precision,
   never soundness. *)
let rec conjuncts acc (c, taken) =
  if taken then
    match c with
    | Expr.Band (x, y) -> conjuncts (conjuncts acc (x, true)) (y, true)
    | Expr.Bnot x -> conjuncts acc (x, false)
    | atom -> atom :: acc
  else
    match c with
    | Expr.Bor (x, y) -> conjuncts (conjuncts acc (x, false)) (y, false)
    | Expr.Bnot x -> conjuncts acc (x, true)
    | Expr.Blt (a, b) -> Expr.Ble (b, a) :: acc
    | Expr.Ble (a, b) -> Expr.Blt (b, a) :: acc
    | Expr.Band _ | Expr.Beq _ -> acc

let const_diff a b =
  let d = Linform.combine (-1) (Linform.of_iexpr a) (Linform.of_iexpr b) in
  if d.Linform.terms = [] then Some d.Linform.const else None

let opt_max a b =
  match (a, b) with Some x, Some y -> Some (max x y) | x, None | None, x -> x

let opt_min a b =
  match (a, b) with Some x, Some y -> Some (min x y) | x, None | None, x -> x

(* Bounds on [e] implied by the guard path, for conjuncts that pin [e]
   up to a constant: from [a <= b] with [e = a + k] follows
   [e <= hi(b) + k], with [e = b + k] follows [e >= lo(a) + k] (strict
   comparisons shift by one).  The padding-select idiom — guard
   [lo <= h && h < hi] around a read of [h - pad] — is exactly this
   shape, so guarded boundary reads certify without any enumeration. *)
let guard_refined env path e =
  List.fold_left
    (fun (lo, hi) c ->
      let strict, a, b =
        match c with
        | Expr.Ble (a, b) -> (false, Some a, Some b)
        | Expr.Blt (a, b) -> (true, Some a, Some b)
        | _ -> (false, None, None)
      in
      match (a, b) with
      | Some a, Some b ->
        let adj = if strict then 1 else 0 in
        let hi' =
          match const_diff e a with
          | None -> None
          | Some k -> (
            match I.of_iexpr env b with
            | Some ib -> Some (ib.I.hi + k - adj)
            | None -> None)
        in
        let lo' =
          match const_diff e b with
          | None -> None
          | Some k -> (
            match I.of_iexpr env a with
            | Some ia -> Some (ia.I.lo + k + adj)
            | None -> None)
        in
        (opt_max lo lo', opt_min hi hi')
      | _ -> (lo, hi))
    (None, None)
    (List.fold_left conjuncts [] path)

(* ---- witness search ------------------------------------------------------ *)

(* Every loop variable of the statement, outermost first, default 0. *)
let full_iter ~loops assign =
  List.map
    (fun (l : Prog.loop) ->
      (l.lvar, Option.value (List.assoc_opt l.lvar assign) ~default:0))
    loops

(* Exhaustive guard-aware enumeration over the loop variables mentioned
   by the index expression or its guard path.  Returns [`Unsafe] with a
   validated witness, [`Proved] when the full space was enumerated
   without a reachable violation, or [`Over_budget]. *)
let enumerate ~loops ~path ~extent_of e ~dim_extent =
  let vars =
    List.sort_uniq String.compare
      (Expr.iexpr_axes e
      @ List.concat_map
          (fun (cond, _) ->
            let acc = ref [] in
            let rec gob = function
              | Expr.Blt (a, b) | Expr.Ble (a, b) | Expr.Beq (a, b) ->
                acc := Expr.iexpr_axes a @ Expr.iexpr_axes b @ !acc
              | Expr.Band (a, b) | Expr.Bor (a, b) ->
                gob a;
                gob b
              | Expr.Bnot a -> gob a
            in
            gob cond;
            !acc)
          path)
  in
  match
    List.map
      (fun v ->
        match extent_of v with Some e -> (v, e) | None -> raise Exit)
      vars
  with
  | exception Exit -> `Over_budget
  | extents ->
    let product =
      List.fold_left
        (fun acc (_, e) ->
          if acc > enum_cap then acc else acc * max 1 e)
        1 extents
    in
    if product > enum_cap then `Over_budget
    else begin
      let assign = Array.of_list (List.map (fun (v, _) -> (v, 0)) extents) in
      let exts = Array.of_list (List.map snd extents) in
      let lookup v =
        let rec go i =
          if i >= Array.length assign then raise Not_found
          else if String.equal (fst assign.(i)) v then snd assign.(i)
          else go (i + 1)
        in
        go 0
      in
      let result = ref `Proved in
      (try
         let rec walk i =
           if i = Array.length assign then begin
             let reachable =
               List.for_all
                 (fun (cond, b) ->
                   try Expr.eval_bexpr lookup cond = b
                   with Not_found | Division_by_zero -> false)
                 path
             in
             if reachable then
               match Expr.eval_iexpr lookup e with
               | exception (Not_found | Division_by_zero) -> ()
               | v ->
                 if v < 0 || v >= dim_extent then begin
                   result :=
                     `Unsafe (full_iter ~loops (Array.to_list assign), v);
                   raise Exit
                 end
           end
           else
             for x = 0 to exts.(i) - 1 do
               assign.(i) <- (fst assign.(i), x);
               walk (i + 1)
             done
         in
         walk 0
       with Exit -> ());
      !result
    end

(* ---- the certifier ------------------------------------------------------- *)

(* All accesses of a statement with the select-guard path that must hold
   for each to be evaluated (C ternaries evaluate only the taken branch,
   and the interpreter's [Select] is lazy the same way). *)
let accesses_of_stmt (s : Prog.stmt) =
  let acc = ref [] in
  let rec go path (e : Expr.t) =
    match e with
    | Expr.Const _ | Expr.Cast_int _ -> ()
    | Expr.Access (t, idx) -> acc := (Read, t, idx, List.rev path) :: !acc
    | Expr.Unop (_, a) -> go path a
    | Expr.Binop (_, a, b) ->
      go path a;
      go path b
    | Expr.Select (c, a, b) ->
      go ((c, true) :: path) a;
      go ((c, false) :: path) b
  in
  go [] s.rhs;
  (Write, s.tensor, s.indices, []) :: List.rev !acc

let unproven ~kind ~tensor ~dim ~extent (s : Prog.stmt) =
  Diagnostic.makef ~severity:Diagnostic.Warn ~code:"bounds-unproven"
    ~loc:(Diagnostic.Stage s.stage)
    "%s of %s (stage %s): dimension %d index not proved within [0, %d)"
    (access_kind_name kind) tensor s.stage dim extent

let witness_diag w =
  Diagnostic.makef ~severity:Diagnostic.Error ~code:"out-of-bounds-witness"
    ~loc:(Diagnostic.Stage w.w_stage) "%s" (witness_to_string w)

(* Uncached certification: walks every statement, proves every access
   dimension or finds a witness.  The first witness wins (deterministic:
   statements in program order, accesses write-then-reads, dimensions
   outermost first). *)
let check (prog : Prog.t) : verdict * Diagnostic.t list =
  let diags = ref [] in
  let witness = ref None in
  let unknown = ref false in
  (try
     Prog.iter_stmts prog (fun loops s ->
         let env v =
           List.find_map
             (fun (l : Prog.loop) ->
               if String.equal l.lvar v then Some { I.lo = 0; hi = l.extent - 1 }
               else None)
             loops
         in
         let extent_of v =
           List.find_map
             (fun (l : Prog.loop) ->
               if String.equal l.lvar v then Some l.extent else None)
             loops
         in
         List.iter
           (fun (kind, tensor, indices, path) ->
             match List.assoc_opt tensor prog.buffers with
             | None ->
               (* Validate flags the unknown buffer as an Error already *)
               unknown := true
             | Some shape ->
               if List.length shape <> List.length indices then unknown := true
               else
                 List.iteri
                   (fun dim e ->
                     let extent = List.nth shape dim in
                     (* 1. exact digit hull, falling back to intervals *)
                     let hull =
                       match exact_hull env e with
                       | lo, hi, ranges -> Some (lo, hi, Some ranges)
                       | exception Inexact -> (
                         match I.of_iexpr env e with
                         | Some iv -> Some (iv.I.lo, iv.I.hi, None)
                         | None -> None)
                     in
                     let proven =
                       match hull with
                       | Some (lo, hi, _) -> lo >= 0 && hi < extent
                       | None -> false
                     in
                     (* 1b. a guarded access may be provable from the
                        guard itself even when the raw hull is not: each
                        bound (lower/upper) can come from either
                        source *)
                     let proven =
                       proven
                       || path <> []
                          &&
                          let glo, ghi = guard_refined env path e in
                          let lo_ok =
                            (match hull with
                            | Some (lo, _, _) -> lo >= 0
                            | None -> false)
                            || (match glo with Some l -> l >= 0 | None -> false)
                          and hi_ok =
                            (match hull with
                            | Some (_, hi, _) -> hi < extent
                            | None -> false)
                            ||
                            match ghi with Some h -> h < extent | None -> false
                          in
                          lo_ok && hi_ok
                     in
                     if not proven then begin
                       (* 2. direct witness from the exact hull's arg
                          points (unguarded accesses only) *)
                       let direct =
                         match (path, hull) with
                         | [], Some (lo, hi, Some ranges) ->
                           let at select =
                             List.map (fun r -> (r.vr_var, select r)) ranges
                           in
                           let candidate =
                             if hi >= extent then
                               Some (at (fun r -> r.vr_argmax))
                             else if lo < 0 then
                               Some (at (fun r -> r.vr_argmin))
                             else None
                           in
                           Option.bind candidate (fun assign ->
                               let lookup v =
                                 match List.assoc_opt v assign with
                                 | Some i -> i
                                 | None -> 0
                               in
                               match Expr.eval_iexpr lookup e with
                               | exception Division_by_zero -> None
                               | v when v < 0 || v >= extent ->
                                 Some (full_iter ~loops assign, v)
                               | _ -> None)
                         | _ -> None
                       in
                       let outcome =
                         match direct with
                         | Some (iter, v) -> `Unsafe (iter, v)
                         | None ->
                           enumerate ~loops ~path ~extent_of e
                             ~dim_extent:extent
                       in
                       match outcome with
                       | `Proved -> ()
                       | `Unsafe (iter, v) ->
                         witness :=
                           Some
                             {
                               w_stage = s.stage;
                               w_kind = kind;
                               w_tensor = tensor;
                               w_dim = dim;
                               w_extent = extent;
                               w_index = v;
                               w_iter = iter;
                             };
                         raise Exit
                       | `Over_budget ->
                         unknown := true;
                         diags :=
                           unproven ~kind ~tensor ~dim ~extent s :: !diags
                     end)
                   indices)
           (accesses_of_stmt s))
   with Exit -> ());
  match !witness with
  | Some w -> (Unsafe w, [ witness_diag w ])
  | None ->
    if !unknown then (Unknown, List.rev !diags) else (Certified, [])

(* ---- memoization --------------------------------------------------------- *)

(* Verdicts are pure in the program, so one process-wide LRU keyed by the
   canonical lowered-program hash (the machine-independent core of the
   measurement-cache key) serves every consumer: evolution's mutant
   filter, the native measurement gate, the registry's serving bar and
   [ansor lint].  Not domain-safe — certify only from the owning domain
   (all current call sites run on the calling domain). *)

type counters = {
  mutable certified : int;
  mutable unsafe : int;
  mutable unknown : int;
  mutable cache_hits : int;
}

let counters = { certified = 0; unsafe = 0; unknown = 0; cache_hits = 0 }

let stats () = counters

let memo : (verdict * Diagnostic.t list) Lru.t = Lru.create ~capacity:8192

let certify_full prog : (verdict * Diagnostic.t list) * bool =
  let key = Prog.canonical_hash prog in
  match Lru.find memo key with
  | Some r ->
    counters.cache_hits <- counters.cache_hits + 1;
    (r, true)
  | None ->
    let r = check prog in
    (match fst r with
    | Certified -> counters.certified <- counters.certified + 1
    | Unsafe _ -> counters.unsafe <- counters.unsafe + 1
    | Unknown -> counters.unknown <- counters.unknown + 1);
    Lru.add memo key r;
    (r, false)

let certify' prog =
  let (verdict, _), hit = certify_full prog in
  (verdict, hit)

let certify prog = fst (certify' prog)

let diagnostics prog = snd (fst (certify_full prog))
