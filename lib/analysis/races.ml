open Ansor_te
open Ansor_sched
module I = Validate.Interval

(* Cross-iteration dependence analysis of [Parallel]/[Vectorize] loops.

   For every annotated loop the detector tries to prove that two distinct
   iterations never touch the same buffer element with at least one write.
   The proof machinery is affine-over-atoms ({!Linform}): each access
   offset decomposes into mixed-radix "digits" of the annotated loop
   variable (the [(p / stride) mod len] components lowering emits for
   split/fused iterators), inner-loop terms, and outer-loop terms that
   are fixed across iterations.

   Soundness policy: an [Error] is only emitted for a {e constructive}
   race — a concrete pair of iterations provably hitting the same
   element (a shared reduction accumulator, or a write collision with an
   iteration-dependent value).  When nothing can be proved either way the
   detector stays silent, so legal-but-opaque schedules are never
   rejected.  [Vectorize] findings are capped at [Warn]: the execution
   model for vector lanes is lockstep, a vectorized reduction is a
   performance hazard rather than a miscompile under this backend. *)

exception Unknown

type ctx = {
  p : string;  (** annotated loop variable *)
  extent : int;
  ann : Step.annotation;
  outer : string list;  (** loop vars enclosing the annotated loop *)
  env : string -> I.t option;  (** ranges of every loop var in scope *)
  shapes : (string * int list) list;
}

let interval ctx atom =
  match I.of_iexpr ctx.env atom with Some iv -> iv | None -> raise Unknown

let is_outer_only ctx atom =
  match Expr.iexpr_axes atom with
  | [] -> true
  | axes -> List.for_all (fun v -> List.mem v ctx.outer) axes

(* |coeff| * value-range of every term that can differ between two
   iterations of the annotated loop (outer-only terms are fixed). *)
let rest_width ctx (rest : Linform.t) =
  List.fold_left
    (fun acc (atom, c) ->
      if is_outer_only ctx atom then acc
      else
        let iv = interval ctx atom in
        acc + (abs c * (iv.I.hi - iv.I.lo)))
    0 rest.Linform.terms

(* Positional-system injectivity over digits and varying inner terms
   jointly: sorted by |coeff|, each coefficient must exceed the combined
   reach of all smaller terms.  When it holds, distinct digit vectors
   give distinct offsets no matter what the inner loops do. *)
let joint_injective ctx digits (rest : Linform.t) =
  let terms =
    List.map (fun (d, c) -> (abs c, d.Linform.len - 1)) digits
    @ List.filter_map
        (fun (atom, c) ->
          if is_outer_only ctx atom then None
          else
            let iv = interval ctx atom in
            Some (abs c, iv.I.hi - iv.I.lo))
        rest.Linform.terms
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) terms in
  let rec go reach = function
    | [] -> true
    | (c, w) :: rest -> c > reach && go (reach + (c * w)) rest
  in
  go 0 sorted

(* Offset of an access as (digits of p, rest linear form). *)
let analyze_offset ctx tensor indices =
  let shape =
    match List.assoc_opt tensor ctx.shapes with
    | Some s -> s
    | None -> raise Unknown
  in
  let lf = Linform.of_access ~shape ~indices in
  let p_terms, rest = Linform.partition ctx.p lf in
  match Linform.digits_of ~p:ctx.p ~extent:ctx.extent p_terms with
  | None -> raise Unknown
  | Some ds -> (Linform.merge_digits ds, rest)

(* Can two distinct iterations reach the same offset?  [`Safe] is a
   proof they cannot; [`Collides (0, q)] is a constructive pair sharing
   every digit; [`Unknown] makes no claim. *)
let self_disjoint ctx digits rest =
  if digits = [] then `Collides (0, 1)
  else if not (Linform.covers ~extent:ctx.extent digits) then
    match Linform.collision ~extent:ctx.extent digits with
    | Some pair -> `Collides pair
    | None -> `Unknown
  else if joint_injective ctx digits rest then `Safe
  else
    match Linform.min_gap digits with
    | Some g when g > rest_width ctx rest -> `Safe
    | _ -> `Unknown

(* Every index expression the rhs value can depend on: read indices
   (guarded ones included — a select may still take that branch), select
   conditions, and integer casts. *)
let iexprs_of_expr e =
  let acc = ref [] in
  let goi i = acc := i :: !acc in
  let rec gob = function
    | Expr.Blt (a, b) | Expr.Ble (a, b) | Expr.Beq (a, b) ->
      goi a;
      goi b
    | Expr.Band (a, b) | Expr.Bor (a, b) ->
      gob a;
      gob b
    | Expr.Bnot a -> gob a
  in
  let rec go = function
    | Expr.Const _ -> ()
    | Expr.Cast_int i -> goi i
    | Expr.Access (_, idx) -> List.iter goi idx
    | Expr.Unop (_, a) -> go a
    | Expr.Binop (_, a, b) ->
      go a;
      go b
    | Expr.Select (c, a, b) ->
      gob c;
      go a;
      go b
  in
  go e;
  List.rev !acc

(* How the rhs value depends on the annotated loop variable, relative to
   the write offset's digits.  [`Independent]: provably the same value in
   colliding iterations.  [`Determined]: every p-component of the value
   is one of the write digits, so iterations that agree on the write
   digits agree on the value — the redundant-write (idempotent) case.
   [`Differs]: the value has a p-component outside the write digits.
   [`Opaque]: beyond the digit grammar. *)
let value_dependence ctx write_digits rhs =
  if not (List.mem ctx.p (Expr.axes_of rhs)) then `Independent
  else
    let write_ds = List.map fst write_digits in
    let classify acc e =
      if not (List.mem ctx.p (Expr.iexpr_axes e)) then acc
      else
        match acc with
        | `Opaque | `Differs -> acc
        | _ -> (
          let p_terms, _ = Linform.partition ctx.p (Linform.of_iexpr e) in
          match Linform.digits_of ~p:ctx.p ~extent:ctx.extent p_terms with
          | None -> `Opaque
          | Some ds ->
            if
              List.for_all
                (fun (d, _) -> List.mem d write_ds)
                (Linform.merge_digits ds)
            then acc
            else `Differs)
    in
    List.fold_left classify `Determined (iexprs_of_expr rhs)

(* ---- diagnostics ---------------------------------------------------------- *)

let reduction_race ctx (s : Prog.stmt) pair =
  let q = snd pair in
  match ctx.ann with
  | Step.Parallel ->
    Diagnostic.makef ~severity:Diagnostic.Error ~code:"parallel-reduction-race"
      ~loc:(Diagnostic.Loop ctx.p)
      "parallel loop %s (extent %d): iterations 0 and %d update the same \
       accumulator of %s (stage %s) — reduction carried across parallel \
       iterations"
      ctx.p ctx.extent q s.tensor s.stage
  | _ ->
    Diagnostic.makef ~severity:Diagnostic.Warn ~code:"vectorized-reduction"
      ~loc:(Diagnostic.Loop ctx.p)
      "vectorized loop %s: lanes 0 and %d update the same accumulator of %s \
       (stage %s)"
      ctx.p q s.tensor s.stage

let write_race ctx (s : Prog.stmt) pair =
  let q = snd pair in
  match ctx.ann with
  | Step.Parallel ->
    Diagnostic.makef ~severity:Diagnostic.Error ~code:"write-race"
      ~loc:(Diagnostic.Loop ctx.p)
      "parallel loop %s: iterations 0 and %d write the same element of %s \
       (stage %s) with iteration-dependent values"
      ctx.p q s.tensor s.stage
  | _ ->
    Diagnostic.makef ~severity:Diagnostic.Warn ~code:"vector-write-race"
      ~loc:(Diagnostic.Loop ctx.p)
      "vectorized loop %s: lanes 0 and %d write the same element of %s \
       (stage %s) with lane-dependent values"
      ctx.p q s.tensor s.stage

let possible_write_race ctx (s : Prog.stmt) =
  let severity =
    match ctx.ann with
    | Step.Parallel -> Diagnostic.Warn
    | _ -> Diagnostic.Info
  in
  Diagnostic.makef ~severity ~code:"possible-write-race"
    ~loc:(Diagnostic.Loop ctx.p)
    "loop %s: iterations write the same elements of %s (stage %s) and the \
     written value could not be proved iteration-independent"
    ctx.p s.tensor s.stage

let redundant_writes ctx (s : Prog.stmt) =
  let severity =
    match ctx.ann with
    | Step.Parallel -> Diagnostic.Warn
    | _ -> Diagnostic.Info
  in
  Diagnostic.makef ~severity ~code:"redundant-writes"
    ~loc:(Diagnostic.Loop ctx.p)
    "iterations of loop %s write identical values to the same elements of %s \
     (stage %s): benign, but the loop repeats work"
    ctx.p s.tensor s.stage

let possible_read_race ctx ~reader ~writer buffer =
  Diagnostic.makef ~severity:Diagnostic.Warn ~code:"possible-read-race"
    ~loc:(Diagnostic.Loop ctx.p)
    "parallel loop %s: stage %s reads %s which stage %s writes in other \
     iterations"
    ctx.p reader buffer writer

(* ---- per-loop check ------------------------------------------------------- *)

(* The write of one statement, checked against its own other iterations. *)
let check_self ctx (s : Prog.stmt) =
  match analyze_offset ctx s.tensor s.indices with
  | exception Unknown -> ([], `Unknown)
  | digits, rest -> (
    match self_disjoint ctx digits rest with
    | `Safe -> ([], `Safe)
    | `Unknown -> ([], `Unknown)
    | `Collides pair ->
      if s.update <> None then ([ reduction_race ctx s pair ], `Collides)
      else (
        match value_dependence ctx digits s.rhs with
        | `Independent | `Determined -> ([ redundant_writes ctx s ], `Collides)
        | `Differs -> ([ write_race ctx s pair ], `Collides)
        | `Opaque -> ([ possible_write_race ctx s ], `Collides)))

(* Reads of buffers that other iterations write.  Only the clear-cut
   shape is reported (reader offset independent of p, writer dependent),
   and only when the hulls provably overlap; matching producer/consumer
   access patterns prove safe via the same digit machinery and stay
   silent otherwise. *)
let check_reads ctx stmts writes =
  let hull tensor indices =
    match List.assoc_opt tensor ctx.shapes with
    | None -> raise Unknown
    | Some shape -> (
      match Validate.offset_interval ctx.env shape indices with
      | Some iv -> iv
      | None -> raise Unknown)
  in
  List.concat_map
    (fun (s : Prog.stmt) ->
      List.filter_map
        (fun (tensor, indices, _guarded) ->
          match List.assoc_opt tensor writes with
          | None -> None
          | Some (w : Prog.stmt) ->
            if w.stage = s.stage && s.update <> None then None
            else if ctx.ann <> Step.Parallel then None
            else (
              try
                let rdigits, _ = analyze_offset ctx tensor indices in
                let wdigits, _ = analyze_offset ctx w.tensor w.indices in
                if rdigits = [] && wdigits <> [] then (
                  let rh = hull tensor indices
                  and wh = hull w.tensor w.indices in
                  if rh.I.lo <= wh.I.hi && wh.I.lo <= rh.I.hi then
                    Some
                      (possible_read_race ctx ~reader:s.stage ~writer:w.stage
                         tensor)
                  else None)
                else None
              with Unknown -> None))
        (Validate.reads_with_guard s.rhs))
    stmts

let check_loop ~outer ~shapes (l : Prog.loop) =
  let inner_stmts =
    let acc = ref [] in
    let rec go inner = function
      | Prog.Stmt s -> acc := (List.rev inner, s) :: !acc
      | Prog.Loop l' -> List.iter (go (l' :: inner)) l'.body
    in
    List.iter (go []) l.body;
    List.rev !acc
  in
  let all_loops (inner : Prog.loop list) = outer @ (l :: inner) in
  let diags = ref [] in
  let writes = ref [] in
  List.iter
    (fun (inner, (s : Prog.stmt)) ->
      let ctx =
        {
          p = l.lvar;
          extent = l.extent;
          ann = l.ann;
          outer = List.map (fun (o : Prog.loop) -> o.lvar) outer;
          env =
            (fun v ->
              List.find_map
                (fun (lp : Prog.loop) ->
                  if String.equal lp.lvar v then
                    Some { I.lo = 0; hi = lp.extent - 1 }
                  else None)
                (all_loops inner));
          shapes;
        }
      in
      let ds, _verdict = check_self ctx s in
      diags := !diags @ ds;
      if not (List.mem_assoc s.tensor !writes) then
        writes := (s.tensor, (ctx, s)) :: !writes)
    inner_stmts;
  (* read/write pairs share one env conservatively covering every inner
     loop of the annotated loop's body *)
  (match inner_stmts with
  | [] -> ()
  | _ ->
    let every_loop =
      outer @ (l :: List.concat_map (fun (inner, _) -> inner) inner_stmts)
    in
    let ctx =
      {
        p = l.lvar;
        extent = l.extent;
        ann = l.ann;
        outer = List.map (fun (o : Prog.loop) -> o.lvar) outer;
        env =
          (fun v ->
            List.find_map
              (fun (lp : Prog.loop) ->
                if String.equal lp.lvar v then
                  Some { I.lo = 0; hi = lp.extent - 1 }
                else None)
              every_loop);
        shapes;
      }
    in
    let writes = List.map (fun (t, (_, s)) -> (t, s)) !writes in
    diags := !diags @ check_reads ctx (List.map snd inner_stmts) writes);
  !diags

let check (prog : Prog.t) =
  let diags = ref [] in
  let rec go outer = function
    | Prog.Stmt _ -> ()
    | Prog.Loop l ->
      (match l.ann with
      | (Step.Parallel | Step.Vectorize) when l.extent >= 2 ->
        diags := !diags @ check_loop ~outer:(List.rev outer) ~shapes:prog.buffers l
      | _ -> ());
      List.iter (go (l :: outer)) l.body
  in
  List.iter (go []) prog.items;
  !diags
