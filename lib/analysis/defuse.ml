open Ansor_sched
module I = Validate.Interval

(* Def-use analysis of lowered programs: flags reads of non-input,
   non-initialized buffers that textual program order cannot have
   defined yet (uninitialized reads), and recomputes the set of dead
   stores from the same event stream as a cross-check of the dead-store
   lint.

   Severity policy: uninitialized reads are {e warnings}, not [Unsafe]
   verdicts — every execution harness in this codebase zero-fills
   non-input buffers (the native harness [calloc]s them, the interpreter
   allocates zeroed arrays), so such a read is memory-safe but almost
   certainly a lowering or schedule-adaptation bug worth surfacing.

   The pass is deliberately conservative in the lint direction: the
   "written so far" region of a buffer is the interval hull over the
   {e full} range of the enclosing loops of each preceding write, so a
   producer that appears textually before its consumer inside a shared
   loop counts as having written its whole hull.  That forgives
   wavefront-style dependences the hull cannot order, at the cost of
   missing some true intra-loop read-before-write; constructive
   cross-iteration claims are the race detector's job ({!Races}). *)

(* A write hull: [None] marks a write whose offsets we could not
   analyze, which conservatively defines the whole buffer. *)
type region = Whole | Hull of I.t

let join r iv =
  match r with
  | Whole -> Whole
  | Hull h -> Hull { I.lo = min h.I.lo iv.I.lo; hi = max h.I.hi iv.I.hi }

let region_covers r iv =
  match r with
  | Whole -> true
  | Hull h -> h.I.lo <= iv.I.lo && iv.I.hi <= h.I.hi

let env_of loops v =
  List.find_map
    (fun (l : Prog.loop) ->
      if String.equal l.lvar v then Some { I.lo = 0; hi = l.extent - 1 }
      else None)
    loops

(* Buffers defined before the first statement runs: program inputs
   (never written by any statement) and reduction buffers with an
   explicit initialization value. *)
let predefined (prog : Prog.t) =
  let written = Hashtbl.create 8 in
  Prog.iter_stmts prog (fun _ s -> Hashtbl.replace written s.tensor ());
  List.filter_map
    (fun (b, _) ->
      if (not (Hashtbl.mem written b)) || List.mem_assoc b prog.inits then
        Some b
      else None)
    prog.buffers

let check (prog : Prog.t) : Diagnostic.t list =
  let defined = predefined prog in
  let written : (string, region) Hashtbl.t = Hashtbl.create 8 in
  let diags = ref [] in
  let warn s fmt =
    Printf.ksprintf
      (fun msg ->
        diags :=
          Diagnostic.makef ~severity:Diagnostic.Warn ~code:"uninit-read"
            ~loc:(Diagnostic.Stage s.Prog.stage) "%s" msg
          :: !diags)
      fmt
  in
  Prog.iter_stmts prog (fun loops s ->
      let env = env_of loops in
      (* reads first: a statement cannot define its own operands *)
      List.iter
        (fun (tensor, indices, guarded) ->
          if (not guarded) && not (List.mem tensor defined) then
            match List.assoc_opt tensor prog.buffers with
            | None -> ()
            | Some shape -> (
              match Hashtbl.find_opt written tensor with
              | None ->
                warn s "stage %s reads %s before any write to it" s.stage
                  tensor
              | Some region -> (
                match Validate.offset_interval env shape indices with
                | None -> ()
                | Some iv ->
                  if not (region_covers region iv) then
                    warn s
                      "stage %s reads offsets [%d, %d] of %s but only %s \
                       written so far"
                      s.stage iv.I.lo iv.I.hi tensor
                      (match region with
                      | Whole -> "(unknown)"
                      | Hull h -> Printf.sprintf "[%d, %d]" h.I.lo h.I.hi))))
        (Validate.reads_with_guard s.rhs);
      (* then record the write *)
      let shape =
        Option.value (List.assoc_opt s.tensor prog.buffers) ~default:[]
      in
      let wr =
        match Validate.offset_interval env shape s.indices with
        | Some iv -> Hull iv
        | None -> Whole
      in
      let next =
        match Hashtbl.find_opt written s.tensor with
        | None -> wr
        | Some r -> ( match wr with Whole -> Whole | Hull iv -> join r iv)
      in
      Hashtbl.replace written s.tensor next);
  List.rev !diags

(* Buffers that are written but never read and are not program outputs —
   recomputed from the def-use event stream so tests can cross-check the
   dead-store lint's answer against an independent derivation. *)
let dead_stores ~outputs (prog : Prog.t) : string list =
  let written = Hashtbl.create 8 and read = Hashtbl.create 8 in
  Prog.iter_stmts prog (fun _ s ->
      Hashtbl.replace written s.tensor ();
      List.iter
        (fun (tensor, _, _) -> Hashtbl.replace read tensor ())
        (Validate.reads_with_guard s.rhs));
  Hashtbl.fold
    (fun b () acc ->
      if Hashtbl.mem read b || List.mem b outputs then acc else b :: acc)
    written []
  |> List.sort String.compare
