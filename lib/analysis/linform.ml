open Ansor_te
module Validate = Ansor_sched.Validate

(* Linear decomposition of an index expression over opaque atoms.

   An atom is a subterm the affine view cannot see through: a plain axis
   variable, or a whole [Idiv]/[Imod]/[Imin]/[Imax] subterm.  Every index
   expression then reads as

     e  =  const + sum_k coeff_k * atom_k

   which is exact (not an approximation): lowering only ever produces
   sums of scaled axis variables and div/mod "digit" subterms, so the
   decomposition loses nothing on real programs. *)

type t = { const : int; terms : (Expr.iexpr * int) list }

let const n = { const = n; terms = [] }

let add_term terms atom coeff =
  if coeff = 0 then terms
  else
    let rec go = function
      | [] -> [ (atom, coeff) ]
      | (a, c) :: rest when a = atom ->
        if c + coeff = 0 then rest else (a, c + coeff) :: rest
      | t :: rest -> t :: go rest
    in
    go terms

let combine k a b =
  {
    const = a.const + (k * b.const);
    terms =
      List.fold_left
        (fun acc (atom, c) -> add_term acc atom (k * c))
        a.terms b.terms;
  }

let scale k a =
  if k = 0 then const 0
  else { const = k * a.const; terms = List.map (fun (at, c) -> (at, k * c)) a.terms }

let rec of_iexpr (e : Expr.iexpr) : t =
  match e with
  | Expr.Int n -> const n
  | Expr.Axis _ -> { const = 0; terms = [ (e, 1) ] }
  | Expr.Iadd (a, b) -> combine 1 (of_iexpr a) (of_iexpr b)
  | Expr.Isub (a, b) -> combine (-1) (of_iexpr a) (of_iexpr b)
  | Expr.Imul (a, b) -> (
    let la = of_iexpr a and lb = of_iexpr b in
    match (la.terms, lb.terms) with
    | _, [] -> scale lb.const la
    | [], _ -> scale la.const lb
    | _ -> { const = 0; terms = [ (e, 1) ] })
  | Expr.Idiv _ | Expr.Imod _ | Expr.Imin _ | Expr.Imax _ ->
    { const = 0; terms = [ (e, 1) ] }

exception Unanalyzable

(* Linear form of a flattened row-major offset. *)
let of_access ~shape ~indices =
  let rec go lf = function
    | [] -> lf
    | (d, i) :: rest -> go (combine 1 (scale d lf) (of_iexpr i)) rest
  in
  match List.combine shape indices with
  | pairs -> go (const 0) pairs
  | exception Invalid_argument _ -> raise Unanalyzable

let mentions v atom = List.mem v (Expr.iexpr_axes atom)

(* Split a linear form into terms that mention the variable [v] and the
   rest (constant included in the rest). *)
let partition v lf =
  let on_v, rest = List.partition (fun (atom, _) -> mentions v atom) lf.terms in
  (on_v, { const = lf.const; terms = rest })

(* ---- digit recognition ---------------------------------------------------

   Lowering expresses a fused or split iterator's components as
   [(p / stride) mod len] over the loop variable [p] (with the mod elided
   on the top component and the div elided when stride = 1).  A "digit"
   is one such component: its value at iteration [p] is
   [(p / stride) mod len]. *)

type digit = { stride : int; len : int }

let digit_value d p = p / d.stride mod d.len

let digit_of ~p ~extent (atom : Expr.iexpr) =
  match atom with
  | Expr.Axis v when String.equal v p -> Some { stride = 1; len = extent }
  | Expr.Imod (Expr.Axis v, Expr.Int m) when String.equal v p && m > 0 ->
    Some { stride = 1; len = m }
  | Expr.Idiv (Expr.Axis v, Expr.Int s) when String.equal v p && s > 0 ->
    Some { stride = s; len = ((extent - 1) / s) + 1 }
  | Expr.Imod (Expr.Idiv (Expr.Axis v, Expr.Int s), Expr.Int l)
    when String.equal v p && s > 0 && l > 0 ->
    Some { stride = s; len = l }
  | Expr.Idiv (Expr.Imod (Expr.Axis v, Expr.Int m), Expr.Int s)
    when String.equal v p && s > 0 && m > 0 && m mod s = 0 ->
    Some { stride = s; len = m / s }
  | _ -> None

(* Recognize every [p]-mentioning term as a digit; [None] when one is
   beyond the digit grammar. *)
let digits_of ~p ~extent terms =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (atom, c) :: rest -> (
      match digit_of ~p ~extent atom with
      | Some d -> go ((d, c) :: acc) rest
      | None -> None)
  in
  go [] terms

(* Merge equal digits, drop zero coefficients. *)
let merge_digits ds =
  List.fold_left
    (fun acc (d, c) ->
      let rec go = function
        | [] -> [ (d, c) ]
        | (d', c') :: rest when d' = d ->
          if c + c' = 0 then rest else (d', c + c') :: rest
        | t :: rest -> t :: go rest
      in
      go acc)
    [] ds

(* Do the digits jointly determine p over [0, extent)?  Walk strides in
   ascending order, growing the determined prefix [0, upto). *)
let covers ~extent digits =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare a.stride b.stride) digits
  in
  let upto =
    List.fold_left
      (fun upto (d, _) ->
        if d.stride <= upto then max upto (d.stride * d.len) else upto)
      1 sorted
  in
  upto >= extent

(* Minimum nonzero |sum_k c_k * (d_k - d_k')| over distinct digit
   vectors, via the positional argument: sorted by |c| ascending, each
   coefficient must dominate the reach of all smaller ones.  [None] when
   the condition fails (the map may not be injective). *)
let min_gap digits =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare (abs a) (abs b)) digits
  in
  let rec go reach gap = function
    | [] -> gap
    | (d, c) :: rest ->
      let c = abs c in
      if c <= reach then None
      else
        let this_gap = c - reach in
        let gap =
          match gap with
          | None -> Some this_gap
          | Some g -> Some (min g this_gap)
        in
        go (reach + (c * (d.len - 1))) gap rest
  in
  go 0 None sorted

(* A constructive collision: a pair of iterations agreeing on every
   digit.  Searches q in [1, extent) (capped), pairing with iteration 0. *)
let collision ~extent digits =
  let cap = min (extent - 1) 65535 in
  let agree q =
    List.for_all (fun (d, _) -> digit_value d q = digit_value d 0) digits
  in
  let rec go q = if q > cap then None else if agree q then Some (0, q) else go (q + 1) in
  go 1
