open Ansor_sched

type config = Lint.config = {
  workers : int;
  vector_lanes : int;
  max_unroll_default : int;
  outputs : string list;
}

let default_config = Lint.default_config

let races = Races.check
let lint = Lint.check
let certify = Bounds.certify
let bounds = Bounds.diagnostics
let defuse = Defuse.check

let static_checks prog =
  Validate.check prog @ Races.check prog @ Bounds.diagnostics prog

let static_errors prog = Diagnostic.errors (static_checks prog)

let race_free prog = not (Diagnostic.has_errors (Races.check prog))

let analyze ?(config = default_config) ?(bounds = true) prog =
  let base = Validate.check prog @ Races.check prog @ Lint.check config prog in
  let extra =
    if bounds then Bounds.diagnostics prog @ Defuse.check prog else []
  in
  Diagnostic.sort (base @ extra)
