(** Static analysis of lowered programs: the dependence/race detector
    ({!Races}), the memory-safety certifier ({!Bounds} + {!Defuse}), the
    schedule linter ({!Lint}), and the bounds validator
    ({!Ansor_sched.Validate}) behind one entry point.

    Severity contract: an [Error] means the program is provably wrong —
    the race detector only claims one on a constructive cross-iteration
    race (a concrete pair of parallel iterations hitting the same
    element), and the bounds certifier only on a constructive
    out-of-bounds witness (a concrete iteration and offending index,
    re-validated by evaluation).  [Warn] marks suspicious-but-legal or
    unproven shapes ([bounds-unproven], [uninit-read]), [Info] is purely
    advisory.  Consumers that gate on the analysis (evolution's mutant
    filter, the native measurement gate, the registry's serving bar,
    `ansor lint`'s exit code) must key on [Error] only. *)

type config = Lint.config = {
  workers : int;
  vector_lanes : int;
  max_unroll_default : int;
  outputs : string list;
}

val default_config : config

val races : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Cross-iteration dependence analysis of every [Parallel]/[Vectorize]
    loop; see {!Races.check}. *)

val lint : config -> Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Structural and performance lints; see {!Lint.check}. *)

val certify : Ansor_sched.Prog.t -> Bounds.verdict
(** Memory-safety verdict of the affine bounds certifier, memoized by
    canonical program hash; see {!Bounds.certify}. *)

val bounds : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Bounds-certification diagnostics (memoized): an [Error] with a
    rendered witness for [Unsafe], [Warn]s for unproven dimensions. *)

val defuse : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Def-use warnings: reads of non-input buffers that textual order
    cannot have defined; see {!Defuse.check}. *)

val static_checks : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Validator, race detector, and bounds certifier — the
    size-independent correctness oracle used to gate search and
    serving. *)

val static_errors : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** The [Error]-severity subset of {!static_checks}. *)

val race_free : Ansor_sched.Prog.t -> bool
(** No [Error]-severity race diagnostics. *)

val analyze :
  ?config:config ->
  ?bounds:bool ->
  Ansor_sched.Prog.t ->
  Ansor_sched.Diagnostic.t list
(** Everything: validator, race detector, linter, and (unless
    [~bounds:false]) bounds certifier plus def-use pass, sorted worst
    severity first. *)
