(** Static analysis of lowered programs: the dependence/race detector
    ({!Races}), the schedule linter ({!Lint}), and the bounds validator
    ({!Ansor_sched.Validate}) behind one entry point.

    Severity contract: an [Error] means the program is provably wrong —
    the detector only claims one on a constructive cross-iteration race
    (a concrete pair of parallel iterations hitting the same element).
    [Warn] marks suspicious-but-legal shapes, [Info] is purely advisory.
    Consumers that gate on the analysis (evolution's mutant filter, the
    registry's serving bar, `ansor lint`'s exit code) must key on
    [Error] only. *)

type config = Lint.config = {
  workers : int;
  vector_lanes : int;
  max_unroll_default : int;
  outputs : string list;
}

val default_config : config

val races : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Cross-iteration dependence analysis of every [Parallel]/[Vectorize]
    loop; see {!Races.check}. *)

val lint : config -> Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Structural and performance lints; see {!Lint.check}. *)

val static_checks : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Validator plus race detector — the size-independent correctness
    oracle used to gate search and serving. *)

val static_errors : Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** The [Error]-severity subset of {!static_checks}. *)

val race_free : Ansor_sched.Prog.t -> bool
(** No [Error]-severity race diagnostics. *)

val analyze : ?config:config -> Ansor_sched.Prog.t -> Ansor_sched.Diagnostic.t list
(** Everything: validator, race detector, and linter, sorted worst
    severity first. *)
