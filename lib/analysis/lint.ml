open Ansor_te
open Ansor_sched

(* Schedule lints over the lowered IR: structural anti-patterns
   ([Warn]) and performance hints ([Info]).  None of these claims a
   miscompile — that is {!Races} — so nothing here is an [Error]. *)

type config = {
  workers : int;  (** worker threads a parallel loop should keep busy *)
  vector_lanes : int;  (** SIMD lanes a vectorized loop should fill *)
  max_unroll_default : int;
      (** unroll-explosion bar for loops without a pragma limit *)
  outputs : string list;  (** buffers that are live after the program *)
}

let default_config =
  { workers = 4; vector_lanes = 8; max_unroll_default = 64; outputs = [] }

let warn ~code ~loc fmt = Diagnostic.makef ~severity:Diagnostic.Warn ~code ~loc fmt
let info ~code ~loc fmt = Diagnostic.makef ~severity:Diagnostic.Info ~code ~loc fmt

(* stride (in elements) of an access along a loop variable; [None] when
   the dependence is not affine in [v] *)
let access_stride v ~shape ~indices =
  match Linform.of_access ~shape ~indices with
  | exception Linform.Unanalyzable -> None
  | lf ->
    let on_v, _ = Linform.partition v lf in
    let rec go acc = function
      | [] -> Some acc
      | (Expr.Axis _, c) :: rest -> go (acc + c) rest
      | _ -> None (* v hidden inside div/mod: gather/scatter *)
    in
    go 0 on_v

let check config (prog : Prog.t) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let shapes = prog.buffers in
  let rec walk ~parallel_above ~unroll_product (outer : Prog.loop list) item =
    match item with
    | Prog.Loop l ->
      let loc = Diagnostic.Loop l.lvar in
      (match l.ann with
      | Step.Parallel ->
        if parallel_above then
          emit
            (warn ~code:"nested-parallel" ~loc
               "parallel loop %s nests inside another parallel loop: worker \
                oversubscription"
               l.lvar)
        else if l.extent < config.workers then
          emit
            (info ~code:"parallel-width" ~loc
               "parallel loop %s has extent %d, below the %d workers it \
                should keep busy"
               l.lvar l.extent config.workers)
      | Step.Vectorize ->
        if List.exists (function Prog.Loop _ -> true | _ -> false) l.body then
          emit
            (warn ~code:"vectorize-non-innermost" ~loc
               "vectorized loop %s contains nested loops; vectorization only \
                applies to innermost loops"
               l.lvar);
        if l.extent < config.vector_lanes then
          emit
            (info ~code:"vector-width" ~loc
               "vectorized loop %s has extent %d, below the machine's %d \
                lanes"
               l.lvar l.extent config.vector_lanes)
      | Step.Unroll | Step.No_ann -> ());
      let unroll_product =
        if l.ann = Step.Unroll then unroll_product * l.extent
        else unroll_product
      in
      List.iter
        (walk
           ~parallel_above:(parallel_above || l.ann = Step.Parallel)
           ~unroll_product (l :: outer))
        l.body
    | Prog.Stmt s ->
      (* unroll explosion: the statement is replicated once per iteration
         of every enclosing unrolled loop *)
      let limit = Option.value s.max_unroll ~default:config.max_unroll_default in
      if unroll_product > limit then
        emit
          (warn ~code:"unroll-explosion" ~loc:(Diagnostic.Stage s.stage)
             "unrolling expands the body of stage %s %d-fold, over its limit \
              of %d"
             s.stage unroll_product limit);
      (* non-unit stride under the nearest vectorized loop *)
      (match
         List.find_opt (fun (l : Prog.loop) -> l.ann = Step.Vectorize) outer
       with
      | None -> ()
      | Some vl ->
        let check_access tensor indices =
          match List.assoc_opt tensor shapes with
          | None -> ()
          | Some shape -> (
            match access_stride vl.lvar ~shape ~indices with
            | Some (0 | 1) -> ()
            | Some stride ->
              emit
                (info ~code:"vector-stride" ~loc:(Diagnostic.Stage s.stage)
                   "stage %s accesses %s with stride %d along vectorized \
                    loop %s"
                   s.stage tensor stride vl.lvar)
            | None ->
              emit
                (info ~code:"vector-gather" ~loc:(Diagnostic.Stage s.stage)
                   "stage %s accesses %s non-affinely along vectorized loop \
                    %s (gather/scatter)"
                   s.stage tensor vl.lvar))
        in
        check_access s.tensor s.indices;
        List.iter
          (fun (t, idx, _) -> check_access t idx)
          (Validate.reads_with_guard s.rhs))
  in
  List.iter (walk ~parallel_above:false ~unroll_product:1 []) prog.items;
  (* dead stores and redundant inits need whole-program read/write sets *)
  let written = Hashtbl.create 16 and read = Hashtbl.create 16 in
  let reducers = Hashtbl.create 16 in
  Prog.iter_stmts prog (fun _ s ->
      Hashtbl.replace written s.tensor ();
      if s.update <> None then Hashtbl.replace reducers s.tensor ();
      List.iter
        (fun (t, _, _) -> Hashtbl.replace read t ())
        (Validate.reads_with_guard s.rhs));
  (* needs the real output set: without it every final output would be
     (wrongly) dead *)
  if config.outputs <> [] then
    Hashtbl.iter
      (fun t () ->
        if (not (Hashtbl.mem read t)) && not (List.mem t config.outputs) then
          emit
            (warn ~code:"dead-store" ~loc:(Diagnostic.Buffer t)
               "buffer %s is written but never read and is not an output" t))
      written;
  List.iter
    (fun (t, v) ->
      if not (Hashtbl.mem reducers t) then
        emit
          (warn ~code:"redundant-init" ~loc:(Diagnostic.Buffer t)
             "buffer %s is initialized to %g but no reduction updates it" t v))
    prog.inits;
  List.rev !diags
