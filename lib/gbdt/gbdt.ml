type node =
  | Leaf of float
  | Node of { feature : int; threshold : float; left : node; right : node }

type t = {
  base : float;
  trees : node list;
  n_features : int;
  importance : float array;
}

type params = {
  n_trees : int;
  max_depth : int;
  min_samples_leaf : int;
  learning_rate : float;
  min_gain : float;
}

let default_params =
  {
    n_trees = 60;
    max_depth = 6;
    min_samples_leaf = 4;
    learning_rate = 0.12;
    min_gain = 1e-9;
  }

let max_bins = 32

(* Quantile bin edges per feature: at most [max_bins - 1] thresholds. *)
let make_bins x n_features =
  let n = Array.length x in
  Array.init n_features (fun f ->
      let vals = Array.init n (fun i -> x.(i).(f)) in
      Array.sort compare vals;
      (* distinct quantiles *)
      let edges = ref [] in
      for b = 1 to max_bins - 1 do
        let q = float_of_int b /. float_of_int max_bins in
        let idx = int_of_float (q *. float_of_int (n - 1)) in
        let v = vals.(idx) in
        match !edges with
        | e :: _ when e >= v -> ()
        | _ -> edges := v :: !edges
      done;
      Array.of_list (List.rev !edges))

let bin_value edges v =
  (* index of first edge > v; edges sorted ascending *)
  let lo = ref 0 and hi = ref (Array.length edges) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v < edges.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let rec eval tree row =
  match tree with
  | Leaf v -> v
  | Node { feature; threshold; left; right } ->
    if feature < Array.length row && row.(feature) < threshold then
      eval left row
    else if feature < Array.length row then eval right row
    else eval left row

let predict t row =
  List.fold_left (fun acc tree -> acc +. eval tree row) t.base t.trees

let train ?(params = default_params) ?init ~x ~y ?w () =
  let n = Array.length x in
  if n = 0 then invalid_arg "Gbdt.train: empty training set";
  let n_features = Array.length x.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> n_features then
        invalid_arg "Gbdt.train: ragged feature matrix")
    x;
  if Array.length y <> n then invalid_arg "Gbdt.train: |y| <> |x|";
  let w = match w with Some w -> w | None -> Array.make n 1.0 in
  if Array.length w <> n then invalid_arg "Gbdt.train: |w| <> |x|";
  let wsum = Array.fold_left ( +. ) 0.0 w in
  if wsum <= 0.0 then invalid_arg "Gbdt.train: weights sum to zero";
  let edges = make_bins x n_features in
  let binned =
    Array.map (fun row -> Array.mapi (fun f v -> bin_value edges.(f) v) row) x
  in
  (* Warm start: with [init], boosting continues from the pretrained
     model's predictions — new trees fit the residuals the old model
     leaves behind, and the result carries the old trees in front.  The
     base then stays the init model's (its trees already encode any
     shift toward the new data). *)
  let base =
    match init with
    | Some m -> m.base
    | None ->
      let s = ref 0.0 in
      Array.iteri (fun i yi -> s := !s +. (w.(i) *. yi)) y;
      !s /. wsum
  in
  let pred =
    match init with
    | Some m -> Array.map (predict m) x
    | None -> Array.make n base
  in
  let out_features =
    match init with Some m -> max m.n_features n_features | None -> n_features
  in
  let importance = Array.make out_features 0.0 in
  (match init with
  | Some m ->
    Array.iteri
      (fun f g -> if f < out_features then importance.(f) <- g)
      m.importance
  | None -> ());
  (* one boosting round: fit a tree to the (weighted) residuals *)
  let residual = Array.make n 0.0 in
  let build_tree () =
    for i = 0 to n - 1 do
      residual.(i) <- y.(i) -. pred.(i)
    done;
    let bin_w = Array.make max_bins 0.0 in
    let bin_wy = Array.make max_bins 0.0 in
    let bin_n = Array.make max_bins 0 in
    let rec grow indices depth =
      let sw = ref 0.0 and swy = ref 0.0 in
      List.iter
        (fun i ->
          sw := !sw +. w.(i);
          swy := !swy +. (w.(i) *. residual.(i)))
        indices;
      let count = List.length indices in
      let leaf () = Leaf (if !sw > 0.0 then !swy /. !sw else 0.0) in
      if depth >= params.max_depth || count < 2 * params.min_samples_leaf then
        leaf ()
      else begin
        let parent_score = if !sw > 0.0 then !swy *. !swy /. !sw else 0.0 in
        let best = ref None in
        for f = 0 to n_features - 1 do
          if Array.length edges.(f) > 0 then begin
            Array.fill bin_w 0 max_bins 0.0;
            Array.fill bin_wy 0 max_bins 0.0;
            Array.fill bin_n 0 max_bins 0;
            List.iter
              (fun i ->
                let b = binned.(i).(f) in
                bin_w.(b) <- bin_w.(b) +. w.(i);
                bin_wy.(b) <- bin_wy.(b) +. (w.(i) *. residual.(i));
                bin_n.(b) <- bin_n.(b) + 1)
              indices;
            let lw = ref 0.0 and lwy = ref 0.0 and ln = ref 0 in
            for b = 0 to Array.length edges.(f) - 1 do
              lw := !lw +. bin_w.(b);
              lwy := !lwy +. bin_wy.(b);
              ln := !ln + bin_n.(b);
              let rw = !sw -. !lw and rwy = !swy -. !lwy in
              let rn = count - !ln in
              if
                !ln >= params.min_samples_leaf
                && rn >= params.min_samples_leaf
                && !lw > 0.0 && rw > 0.0
              then begin
                let gain =
                  (!lwy *. !lwy /. !lw) +. (rwy *. rwy /. rw) -. parent_score
                in
                match !best with
                | Some (g, _, _) when g >= gain -> ()
                | _ -> best := Some (gain, f, b)
              end
            done
          end
        done;
        match !best with
        | Some (gain, f, b) when gain > params.min_gain ->
          importance.(f) <- importance.(f) +. gain;
          let threshold = edges.(f).(b) in
          let left, right =
            List.partition (fun i -> binned.(i).(f) <= b) indices
          in
          Node
            {
              feature = f;
              threshold;
              left = grow left (depth + 1);
              right = grow right (depth + 1);
            }
        | _ -> leaf ()
      end
    in
    grow (List.init n Fun.id) 0
  in
  let rec eval_tree tree row =
    match tree with
    | Leaf v -> v
    | Node { feature; threshold; left; right } ->
      if row.(feature) < threshold then eval_tree left row
      else eval_tree right row
  in
  let trees = ref [] in
  for _ = 1 to params.n_trees do
    let tree = build_tree () in
    trees := tree :: !trees;
    for i = 0 to n - 1 do
      pred.(i) <- pred.(i) +. (params.learning_rate *. eval_tree tree x.(i))
    done
  done;
  (* fold the learning rate into the stored trees *)
  let rec scale tree =
    match tree with
    | Leaf v -> Leaf (params.learning_rate *. v)
    | Node n -> Node { n with left = scale n.left; right = scale n.right }
  in
  let fresh = List.rev_map scale !trees in
  {
    base;
    trees = (match init with Some m -> m.trees @ fresh | None -> fresh);
    n_features = out_features;
    importance;
  }

let predict_many t rows = Array.map (predict t) rows

(* Same bounds-check semantics as [eval], over one row of a flat
   row-major matrix whose rows are [width] wide. *)
let rec eval_flat tree m off width =
  match tree with
  | Leaf v -> v
  | Node { feature; threshold; left; right } ->
    if feature >= width then eval_flat left m off width
    else if m.(off + feature) < threshold then eval_flat left m off width
    else eval_flat right m off width

let predict_batch t ~width m =
  if width <= 0 then invalid_arg "Gbdt.predict_batch: width <= 0";
  let len = Array.length m in
  if len mod width <> 0 then
    invalid_arg "Gbdt.predict_batch: matrix length not a multiple of width";
  let n_rows = len / width in
  let out = Array.make n_rows t.base in
  (* one pass per tree over all rows, accumulating in the same order as
     [predict]'s fold (base, then trees in order): the result is
     bit-identical to calling [predict] per row *)
  List.iter
    (fun tree ->
      for r = 0 to n_rows - 1 do
        out.(r) <- out.(r) +. eval_flat tree m (r * width) width
      done)
    t.trees;
  out

let num_trees t = List.length t.trees

(* ---- persistence --------------------------------------------------------
   Same convention as Checkpoint: magic line, payload byte length,
   marshalled payload, md5 digest foot.  Anything that fails a check is
   reported as a clear [Error] — never a raw [Marshal] exception. *)

let file_version = 1

let file_magic = Printf.sprintf "ansor-gbdt-v%d" file_version

let save ~path t =
  let payload = Marshal.to_string (t : t) [] in
  Ansor_util.Atomic_file.write ~path (fun oc ->
      Printf.fprintf oc "%s\n%d\n" file_magic (String.length payload);
      output_string oc payload;
      Printf.fprintf oc "md5:%s\n" (Digest.to_hex (Digest.string payload)))

let load ~path : (t, string) result =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          let header = input_line ic in
          if not (String.equal header file_magic) then
            Error
              (Printf.sprintf "%s: bad magic %S (expected %s)" path header
                 file_magic)
          else
            let len = int_of_string (input_line ic) in
            if len < 0 then Error (path ^ ": bad payload length")
            else begin
              let payload = really_input_string ic len in
              let footer = input_line ic in
              let expect = "md5:" ^ Digest.to_hex (Digest.string payload) in
              if not (String.equal footer expect) then
                Error (path ^ ": digest mismatch: model file torn or corrupted")
              else Ok (Marshal.from_string payload 0 : t)
            end
        with
        | End_of_file -> Error (path ^ ": truncated model file")
        | Failure _ -> Error (path ^ ": malformed model header")
        | e -> Error (path ^ ": " ^ Printexc.to_string e))

let feature_importance t =
  let total = Array.fold_left ( +. ) 0.0 t.importance in
  if total <= 0.0 then Array.make t.n_features 0.0
  else Array.map (fun g -> g /. total) t.importance
