(** Gradient-boosted regression trees.

    A from-scratch replacement for the XGBoost model the paper trains as
    its cost model (§5.2): least-squares gradient boosting over
    histogram-binned features, with per-sample weights implementing the
    paper's throughput-weighted squared-error loss.

    Training uses quantile binning (at most {!val:max_bins} bins per
    feature, computed once per training set), exact greedy splits over the
    bins, and shrinkage.  Complexity is
    O(trees x depth x samples x features). *)

type t

type params = {
  n_trees : int;
  max_depth : int;
  min_samples_leaf : int;
  learning_rate : float;
  min_gain : float;  (** minimum weighted-variance reduction to split *)
}

val default_params : params
(** 60 trees of depth 6, learning rate 0.12. *)

val max_bins : int

val train :
  ?params:params ->
  ?init:t ->
  x:float array array ->
  y:float array ->
  ?w:float array ->
  unit ->
  t
(** [train ~x ~y ~w ()] fits boosted trees to rows [x] with targets [y]
    and optional non-negative sample weights [w] (default all-ones).

    With [?init], boosting warm-starts from the given model: the new
    trees fit the residuals [init] leaves on [(x, y)], and the result
    keeps [init]'s trees in front, so
    [predict result row = predict init row + correction].  Omitting
    [init] is bit-identical to the cold path.
    @raise Invalid_argument on empty data or ragged inputs. *)

val predict : t -> float array -> float

val predict_many : t -> float array array -> float array

val predict_batch : t -> width:int -> float array -> float array
(** [predict_batch t ~width m] predicts every row of the flat row-major
    matrix [m] (each row [width] floats) in a single pass per tree over
    all rows — the batch-prediction fast path of the scoring service.
    Results are bit-identical to {!predict} applied to each row: the
    per-row accumulation order (base value, then trees in training
    order) is the same.
    @raise Invalid_argument if [width <= 0] or [Array.length m] is not a
    multiple of [width]. *)

val num_trees : t -> int

val feature_importance : t -> float array
(** Total split gain accumulated per feature, normalized to sum to 1 (all
    zeros for a stump-only model). Length equals the feature count seen at
    training. *)

val save : path:string -> t -> unit
(** Atomically persist the model: magic [ansor-gbdt-v1], payload length,
    marshalled payload, md5 digest foot — the {!Checkpoint} file
    convention. *)

val load : path:string -> (t, string) result
(** Load a model written by {!save}.  Corrupt, truncated or foreign
    files yield [Error] with a human-readable reason; [Marshal] is only
    consulted after the digest foot verifies. *)
