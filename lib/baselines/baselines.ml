open Ansor_sched
module Rng = Ansor_util.Rng
module Rules = Ansor_sketch.Rules
module Gen = Ansor_sketch.Gen
module Sampler = Ansor_sketch.Sampler
module Task = Ansor_search.Task
module Simulator = Ansor_machine.Simulator
module Service = Ansor_measure_service.Service
module Protocol = Ansor_measure_service.Protocol

type vendor = Pytorch | Tensorflow | Tensorrt | Tflite

let vendor_name = function
  | Pytorch -> "PyTorch"
  | Tensorflow -> "TensorFlow"
  | Tensorrt -> "TensorRT"
  | Tflite -> "TF-Lite"

(* Offline engineering effort, in candidate schedules evaluated when the
   library was "written". *)
let base_candidates = function
  | Pytorch -> 96
  | Tensorflow -> 48
  | Tensorrt -> 160
  | Tflite -> 48

(* Kernel libraries ship heavily-tuned implementations only for the
   standard operators; uncommon ones (transposed / capsule / grouped
   convolutions, 3-D convs) fall back to generic kernels.  Detected
   structurally: many axes, or division/modulo index arithmetic. *)
let is_standard_op dag =
  let has_divmod body =
    let rec goi = function
      | Ansor_te.Expr.Int _ | Ansor_te.Expr.Axis _ -> false
      | Ansor_te.Expr.Iadd (a, b)
      | Ansor_te.Expr.Isub (a, b)
      | Ansor_te.Expr.Imul (a, b)
      | Ansor_te.Expr.Imin (a, b)
      | Ansor_te.Expr.Imax (a, b) ->
        goi a || goi b
      | Ansor_te.Expr.Idiv _ | Ansor_te.Expr.Imod _ -> true
    in
    List.exists (fun (_, idx) -> List.exists goi idx)
      (Ansor_te.Expr.accesses body)
  in
  Array.for_all
    (fun op ->
      match op with
      | Ansor_te.Op.Placeholder _ -> true
      | Ansor_te.Op.Compute c ->
        List.length c.axes <= 4
        && List.length c.reduce_axes <= 3
        && not (has_divmod c.body))
    (Ansor_te.Dag.ops dag)

let offline_candidates vendor dag =
  let base = base_candidates vendor in
  if is_standard_op dag then base else max 8 (base / 12)

(* Offline library tuning goes through the measurement service too: the
   candidate sweep is fanned out across domains, lowering failures come
   back classified instead of being skipped ad hoc, and duplicate
   schedules are measured once.  Noise is 0 — libraries pick their shipped
   kernel from clean profiling runs. *)
let vendor_service vendor (task : Task.t) =
  Service.create
    ~config:{ Service.default_config with noise = 0.0; num_workers = 2 }
    ~seed:(1009 + Hashtbl.hash (vendor_name vendor))
    task.Task.machine

let vendor_state vendor (task : Task.t) =
  let rng = Rng.create (1009 + Hashtbl.hash (vendor_name vendor)) in
  let rules = Rules.limited ~fusion:true in
  let sketches = Gen.generate ~rules task.Task.dag in
  let policy = Task.policy task in
  let candidates =
    Sampler.sample rng policy task.Task.dag ~sketches
      ~n:(offline_candidates vendor task.Task.dag)
  in
  let service = vendor_service vendor task in
  let results =
    Service.measure_batch service (List.map Protocol.request candidates)
  in
  let best = ref None in
  List.iter2
    (fun st (res : Protocol.result) ->
      match res.Protocol.latency with
      | Error _ -> ()
      | Ok lat -> (
        match !best with
        | Some (_, l) when l <= lat -> ()
        | _ -> best := Some (st, lat)))
    candidates results;
  Option.map fst !best

let vendor_latency vendor task =
  match vendor_state vendor task with
  | None -> infinity
  | Some st ->
    Simulator.estimate task.Task.machine (Lower.lower st)

let vendor_network_latency vendor tasks =
  List.fold_left
    (fun acc (task, w) -> acc +. (float_of_int w *. vendor_latency vendor task))
    0.0 tasks

let autotvm = Ansor_search.Tuner.autotvm_options
let flextensor = Ansor_search.Tuner.flextensor_options
let halide_beam = Ansor_search.Tuner.beam_options
let ansor = Ansor_search.Tuner.ansor_options
