(** Lowered programs: concrete, executable loop nests.

    Lowering a schedule {!State.t} produces a [t]: a sequence of (possibly
    nested) loops whose leaf statements read and write whole-tensor buffers
    using index expressions over the concrete loop variables.  This is the
    common input of the reference interpreter (functional correctness), the
    hardware simulator (performance measurement) and the feature extractor
    (the learned cost model). *)

open Ansor_te

type stmt = {
  stage : string;  (** the stage this statement computes *)
  tensor : string;  (** output buffer *)
  indices : Expr.iexpr list;  (** output indices, over concrete loop vars *)
  rhs : Expr.t;  (** value, over concrete loop vars; inlining applied *)
  update : Op.reduce_kind option;
      (** [None]: plain store; [Some k]: combine into the buffer with [k] *)
  max_unroll : int option;  (** enclosing [auto_unroll_max_step] pragma *)
}

type loop = {
  lvar : string;  (** concrete loop variable, unique in the program *)
  extent : int;
  kind : State.iter_kind;
  ann : Step.annotation;
  body : item list;
}

and item = Loop of loop | Stmt of stmt

type t = {
  items : item list;
  buffers : (string * int list) list;
      (** every buffer the program touches (inputs and stage outputs) with
          its shape; scalars have shape [[]] *)
  inits : (string * float) list;
      (** reduction buffers and their initialization value *)
}

val num_stmts : t -> int

val iter_stmts : t -> (loop list -> stmt -> unit) -> unit
(** Visits every statement with its enclosing loops, outermost first. *)

val buffer_size : int list -> int
(** Number of elements of a buffer of the given shape (1 for scalars). *)

val canonical_payload : t -> string
(** Marshalled structural content (items, buffers, inits) — the canonical
    identity every program-keyed cache builds its key from.  Two programs
    with identical loop nests, statements, buffers and initializations
    share a payload regardless of the step histories that produced
    them. *)

val canonical_hash : t -> string
(** Hex digest of {!canonical_payload}; the machine-independent program
    key used by the memory-safety certifier's memo table.  The
    measurement cache's key ({!Ansor_measure_service.Cache.key_of_prog})
    is the same payload prefixed with backend and machine. *)

val pp : Format.formatter -> t -> unit
(** Paper-style pretty printing ("parallel i.0@j.0 in range(256): ..."). *)

val to_string : t -> string
