open Ansor_te

type stmt = {
  stage : string;
  tensor : string;
  indices : Expr.iexpr list;
  rhs : Expr.t;
  update : Op.reduce_kind option;
  max_unroll : int option;
}

type loop = {
  lvar : string;
  extent : int;
  kind : State.iter_kind;
  ann : Step.annotation;
  body : item list;
}

and item = Loop of loop | Stmt of stmt

type t = {
  items : item list;
  buffers : (string * int list) list;
  inits : (string * float) list;
}

let iter_stmts t f =
  let rec go enclosing = function
    | Stmt s -> f (List.rev enclosing) s
    | Loop l -> List.iter (go (l :: enclosing)) l.body
  in
  List.iter (go []) t.items

let num_stmts t =
  let n = ref 0 in
  iter_stmts t (fun _ _ -> incr n);
  !n

let buffer_size shape = List.fold_left ( * ) 1 shape

(* Canonical structural identity of a lowered program: the loops,
   statements, buffers and initializations — independent of the step
   history that produced them.  This byte string is the shared currency
   of every program-keyed cache in the system: the measurement dedup
   cache and the score service prefix it with machine/backend, the
   memory-safety certifier hashes it bare (certification is
   machine-independent). *)
let canonical_payload t =
  Marshal.to_string (t.items, t.buffers, t.inits) [ Marshal.No_sharing ]

let canonical_hash t = Digest.to_hex (Digest.string (canonical_payload t))

let pp fmt t =
  let rec pp_item indent = function
    | Loop l ->
      let ann =
        match l.ann with
        | Step.No_ann -> "for"
        | Step.Parallel -> "parallel"
        | Step.Vectorize -> "vectorize"
        | Step.Unroll -> "unroll"
      in
      Format.fprintf fmt "%s%s %s in range(%d):@," indent ann l.lvar l.extent;
      List.iter (pp_item (indent ^ "  ")) l.body
    | Stmt s ->
      let op_str =
        match s.update with
        | None -> "="
        | Some Op.Sum -> "+="
        | Some Op.Maximum -> "max="
      in
      Format.fprintf fmt "%s%s[%a] %s %a@," indent s.tensor
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Expr.pp_iexpr)
        s.indices op_str Expr.pp s.rhs
  in
  Format.fprintf fmt "@[<v>";
  List.iter (pp_item "") t.items;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
