(** Severity-tiered diagnostics shared by the validator ({!Validate}) and
    the static analyses over lowered programs (lib/analysis).

    Every static finding — bounds violations, data races, schedule lints —
    is one {!type:t}: a severity, a stable machine-readable [code] slug
    (e.g. ["write-race"], ["nested-parallel"]), a structured location, and
    a human message.  One pretty renderer and one JSON renderer serve every
    producer, so the CLI, the measurement service, and CI all report
    findings identically. *)

type severity =
  | Error  (** the program is wrong (or will be once run in parallel) *)
  | Warn  (** suspicious; legal but probably not what was intended *)
  | Info  (** performance hint, never a correctness claim *)

type location =
  | Program  (** whole-program finding *)
  | Stage of string  (** the statement of a compute stage *)
  | Loop of string  (** a loop, identified by its variable *)
  | Buffer of string  (** a buffer, identified by name *)

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

val make : severity:severity -> code:string -> loc:location -> string -> t

val makef :
  severity:severity ->
  code:string ->
  loc:location ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [makef] is {!make} with a format string for the message. *)

val severity_to_string : severity -> string

val compare_severity : severity -> severity -> int
(** Orders [Error < Warn < Info], i.e. worst first. *)

val loc_to_string : location -> string

val pp : Format.formatter -> t -> unit
(** ["error[write-race] statement of stage C: ..."] *)

val to_string : t -> string

val is_error : t -> bool
val errors : t list -> t list
val has_errors : t list -> bool

val max_severity : t list -> severity option
(** Worst severity present, [None] on an empty list. *)

val sort : t list -> t list
(** Stable sort, worst severity first. *)

val json_escape : string -> string
val to_json : t -> string
val list_to_json : t list -> string
