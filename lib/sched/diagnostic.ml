type severity = Error | Warn | Info

type location =
  | Program
  | Stage of string
  | Loop of string
  | Buffer of string

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

let make ~severity ~code ~loc message = { severity; code; loc; message }

let makef ~severity ~code ~loc fmt =
  Format.kasprintf (fun message -> { severity; code; loc; message }) fmt

let severity_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

(* Error sorts first; used for reporting worst-first. *)
let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

let loc_to_string = function
  | Program -> "program"
  | Stage s -> "statement of stage " ^ s
  | Loop v -> "loop " ^ v
  | Buffer b -> "buffer " ^ b

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code (loc_to_string d.loc) d.message

let to_string d = Format.asprintf "%a" pp d

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let max_severity ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
        Some (if compare_severity d.severity s < 0 then d.severity else s))
    None ds

let sort ds =
  List.stable_sort (fun a b -> compare_severity a.severity b.severity) ds

(* ---- JSON --------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let loc_to_json = function
  | Program -> {|{"kind":"program"}|}
  | Stage s -> Printf.sprintf {|{"kind":"stage","name":"%s"}|} (json_escape s)
  | Loop v -> Printf.sprintf {|{"kind":"loop","name":"%s"}|} (json_escape v)
  | Buffer b -> Printf.sprintf {|{"kind":"buffer","name":"%s"}|} (json_escape b)

let to_json d =
  Printf.sprintf {|{"severity":"%s","code":"%s","loc":%s,"message":"%s"}|}
    (severity_to_string d.severity)
    (json_escape d.code) (loc_to_json d.loc) (json_escape d.message)

let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
