open Ansor_te

module Interval = struct
  type t = { lo : int; hi : int }

  let point n = { lo = n; hi = n }

  let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }

  let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }

  let mul a b =
    let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
    {
      lo = List.fold_left min max_int products;
      hi = List.fold_left max min_int products;
    }

  let fdiv x d = if x >= 0 || x mod d = 0 then x / d else (x / d) - 1

  let floordiv_const a d =
    (* d > 0; floor division is monotone *)
    { lo = fdiv a.lo d; hi = fdiv a.hi d }

  let imin a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
  let imax a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

  let rec of_iexpr env (e : Expr.iexpr) =
    match e with
    | Expr.Int n -> Some (point n)
    | Expr.Axis v -> env v
    | Expr.Iadd (a, b) -> map2 add (of_iexpr env a) (of_iexpr env b)
    | Expr.Isub (a, b) -> map2 sub (of_iexpr env a) (of_iexpr env b)
    | Expr.Imul (a, b) -> map2 mul (of_iexpr env a) (of_iexpr env b)
    | Expr.Imin (a, b) -> map2 imin (of_iexpr env a) (of_iexpr env b)
    | Expr.Imax (a, b) -> map2 imax (of_iexpr env a) (of_iexpr env b)
    | Expr.Idiv (a, b) -> (
      match (of_iexpr env a, of_iexpr env b) with
      | Some a, Some { lo = d; hi = d' } when d = d' && d > 0 ->
        Some (floordiv_const a d)
      | Some a, Some ({ lo; hi = _ } as b) when lo > 0 ->
        (* floor(x/d) is monotone in x and, for fixed x, monotone in d
           (toward 0 as d grows), so the extremes sit at endpoint pairs. *)
        let cands =
          [ fdiv a.lo b.lo; fdiv a.lo b.hi; fdiv a.hi b.lo; fdiv a.hi b.hi ]
        in
        Some
          {
            lo = List.fold_left min max_int cands;
            hi = List.fold_left max min_int cands;
          }
      | _ -> None)
    | Expr.Imod (a, b) -> (
      match of_iexpr env b with
      | Some { lo = d; hi = d' } when d = d' && d > 0 -> (
        match of_iexpr env a with
        | Some a when a.lo >= 0 && a.hi < d ->
          (* already within [0, d): mod is the identity *)
          Some a
        | Some a when fdiv a.lo d = fdiv a.hi d ->
          (* whole interval inside one block of d: mod just shifts it *)
          let k = fdiv a.lo d in
          Some { lo = a.lo - (k * d); hi = a.hi - (k * d) }
        | _ -> Some { lo = 0; hi = d - 1 })
      | _ -> None)

  and map2 f a b =
    match (a, b) with Some a, Some b -> Some (f a b) | _ -> None
end

let buffer_size shape = List.fold_left ( * ) 1 shape

(* interval of the flattened row-major offset *)
let offset_interval env shape indices =
  let rec go dims idx acc =
    match (dims, idx) with
    | [], [] -> Some acc
    | d :: dims', i :: idx' -> (
      match Interval.of_iexpr env i with
      | None -> None
      | Some iv ->
        go dims' idx'
          (Interval.add (Interval.mul acc (Interval.point d)) iv))
    | _ -> None
  in
  match (shape, indices) with
  | [], [] -> Some (Interval.point 0)
  | d :: dims, i :: idx -> (
    ignore d;
    match Interval.of_iexpr env i with
    | None -> None
    | Some iv -> go dims idx iv)
  | _ -> None

(* reads of an expression, tagged with whether a select guards them *)
let reads_with_guard e =
  let acc = ref [] in
  let rec go guarded (e : Expr.t) =
    match e with
    | Expr.Const _ | Expr.Cast_int _ -> ()
    | Expr.Access (t, idx) -> acc := (t, idx, guarded) :: !acc
    | Expr.Unop (_, a) -> go guarded a
    | Expr.Binop (_, a, b) ->
      go guarded a;
      go guarded b
    | Expr.Select (_, a, b) ->
      go true a;
      go true b
  in
  go false e;
  List.rev !acc

let check (prog : Prog.t) =
  let issues = ref [] in
  let report ~code ~loc fmt =
    Format.kasprintf
      (fun message ->
        issues :=
          Diagnostic.make ~severity:Diagnostic.Error ~code ~loc message
          :: !issues)
      fmt
  in
  let shapes = prog.buffers in
  (* per-buffer write hull, for the coverage check *)
  let write_hull : (string, Interval.t) Hashtbl.t = Hashtbl.create 16 in
  let visit enclosing (stmt : Prog.stmt) =
    let loc = Diagnostic.Stage stmt.stage in
    (* loop scoping *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (l : Prog.loop) ->
        if l.extent < 1 then
          report ~code:"loop-extent" ~loc:(Diagnostic.Loop l.lvar)
            "loop %s of stage %s has extent %d" l.lvar stmt.stage l.extent;
        if Hashtbl.mem seen l.lvar then
          report ~code:"shadowed-loop-var" ~loc
            "loop variable %s shadows an outer loop" l.lvar;
        Hashtbl.replace seen l.lvar ())
      enclosing;
    let env v =
      match
        List.find_opt (fun (l : Prog.loop) -> String.equal l.lvar v) enclosing
      with
      | Some l -> Some { Interval.lo = 0; hi = l.extent - 1 }
      | None -> None
    in
    let shape_of t = List.assoc_opt t shapes in
    let check_access what t idx =
      match shape_of t with
      | None -> report ~code:"unknown-buffer" ~loc "%s unknown buffer %s" what t
      | Some shape -> (
        match offset_interval env shape idx with
        | None -> () (* non-affine beyond the analysis: no claim *)
        | Some iv ->
          let size = buffer_size shape in
          if iv.lo < 0 || iv.hi >= size then
            report ~code:"out-of-bounds" ~loc
              "%s of %s may be out of bounds: offset in [%d, %d], size %d" what
              t iv.lo iv.hi size;
          if what = "write" then
            let cur =
              Option.value
                (Hashtbl.find_opt write_hull t)
                ~default:{ Interval.lo = max_int; hi = min_int }
            in
            Hashtbl.replace write_hull t
              { Interval.lo = min cur.lo iv.lo; hi = max cur.hi iv.hi })
    in
    check_access "write" stmt.tensor stmt.indices;
    List.iter
      (fun (t, idx, guarded) -> if not guarded then check_access "read" t idx)
      (reads_with_guard stmt.rhs);
    (* reduction discipline *)
    if stmt.update <> None && not (List.mem_assoc stmt.tensor prog.inits) then
      report ~code:"uninit-reduction" ~loc
        "reduction into %s without initialization" stmt.tensor
  in
  Prog.iter_stmts prog visit;
  (* write coverage: the hull of every written buffer reaches both ends *)
  Hashtbl.iter
    (fun t (hull : Interval.t) ->
      match List.assoc_opt t shapes with
      | None -> ()
      | Some shape ->
        let size = buffer_size shape in
        if hull.lo > 0 || hull.hi < size - 1 then
          report ~code:"write-coverage" ~loc:(Diagnostic.Buffer t)
            "writes only span offsets [%d, %d] of size %d" hull.lo hull.hi
            size)
    write_hull;
  List.rev !issues
