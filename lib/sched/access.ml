open Ansor_te

let line_elems = 16

type access = {
  tensor : string;
  is_write : bool;
  count : int;
  strides : int array;
  touched : float array;
  lines : float array;
  inner_stride : int;
  reuse_loop : int option;
}

type stmt_info = {
  stmt : Prog.stmt;
  loops : Prog.loop list;
  extents : int array;
  iters : float;
  accesses : access list;
  counts : Expr.op_counts;
}

(* Row-major element offset; probe points may fall outside the tensor,
   only differences matter. *)
let offset shape indices =
  let rec go shape indices acc =
    match (shape, indices) with
    | [], [] -> acc
    | d :: shape', i :: indices' -> go shape' indices' ((acc * d) + i)
    | _ -> acc
  in
  go shape indices 0

(* Number of distinct values [expr] takes as [v] sweeps [0, extent); other
   variables are held at zero.  Exact up to [max_sweep] evaluations, then
   estimated from a uniformly-spaced sample. *)
let distinct_values expr v extent =
  let max_sweep = 256 in
  let eval i =
    let env u = if String.equal u v then i else 0 in
    try Expr.eval_iexpr env expr with Division_by_zero -> 0
  in
  if extent <= max_sweep then begin
    let seen = Hashtbl.create 16 in
    for i = 0 to extent - 1 do
      Hashtbl.replace seen (eval i) ()
    done;
    Hashtbl.length seen
  end
  else begin
    let seen = Hashtbl.create 64 in
    let step = extent / max_sweep in
    for s = 0 to max_sweep - 1 do
      Hashtbl.replace seen (eval (s * step)) ()
    done;
    let d = Hashtbl.length seen in
    if d < max_sweep / 2 then d
    else
      int_of_float
        (float_of_int extent *. float_of_int d /. float_of_int max_sweep)
  end

let make_access buffers loop_vars extents ~tensor ~idx ~is_write ~count =
  let shape =
    match List.assoc_opt tensor buffers with Some s -> s | None -> []
  in
  let n = Array.length loop_vars in
  let dims = Array.of_list idx in
  let ndims = Array.length dims in
  let eval_at env = List.map (Expr.eval_iexpr env) idx in
  let zero _ = 0 in
  let base = try offset shape (eval_at zero) with Division_by_zero -> 0 in
  (* fine-grained (unit-step) stride per loop *)
  let strides =
    Array.map
      (fun v ->
        let env u = if String.equal u v then 1 else 0 in
        match offset shape (eval_at env) - base with
        | d -> d
        | exception Division_by_zero -> 0)
      loop_vars
  in
  (* distinct index values per (loop, dim); cheap path: an expression that
     is plainly swept (unit stride in that dim) or untouched *)
  let var_in_dim =
    Array.map (fun d -> Expr.iexpr_axes d) dims
  in
  let distinct = Array.make_matrix n ndims 1 in
  for l = 0 to n - 1 do
    let v = loop_vars.(l) in
    for d = 0 to ndims - 1 do
      if List.mem v var_in_dim.(d) then begin
        let has_divmod =
          let rec go = function
            | Expr.Int _ | Expr.Axis _ -> false
            | Expr.Iadd (a, b) | Expr.Isub (a, b) | Expr.Imul (a, b)
            | Expr.Imin (a, b) | Expr.Imax (a, b) ->
              go a || go b
            | Expr.Idiv _ | Expr.Imod _ -> true
          in
          go dims.(d)
        in
        distinct.(l).(d) <-
          (if has_divmod then distinct_values dims.(d) v extents.(l)
           else (* affine in v: extent distinct values iff coefficient <> 0 *)
             let env u = if String.equal u v then 1 else 0 in
             let step =
               try Expr.eval_iexpr env dims.(d) - Expr.eval_iexpr zero dims.(d)
               with Division_by_zero -> 0
             in
             if step = 0 then 1 else extents.(l))
      end
    done
  done;
  let dim_extent d =
    match List.nth_opt shape d with Some e -> float_of_int e | None -> 1.0
  in
  (* touched.(dep): distinct elements accessed by loops at depth >= dep *)
  let touched = Array.make (n + 1) 1.0 in
  for dep = n downto 0 do
    let total = ref 1.0 in
    for d = 0 to ndims - 1 do
      let prod = ref 1.0 in
      for l = dep to n - 1 do
        prod := !prod *. float_of_int distinct.(l).(d)
      done;
      total := !total *. Float.min !prod (dim_extent d)
    done;
    touched.(dep) <- !total
  done;
  (* does loop l move the access at all? *)
  let moves l =
    let rec go d = d < ndims && (distinct.(l).(d) > 1 || go (d + 1)) in
    go 0
  in
  let inner_stride =
    let rec go l =
      if l < 0 then 0 else if strides.(l) <> 0 then abs strides.(l) else go (l - 1)
    in
    go (n - 1)
  in
  let spatial dep =
    (* smallest unit-step stride among moving loops at depth >= dep: the
       fraction of touched elements that start a new cache line *)
    let s = ref max_int in
    for l = dep to n - 1 do
      if strides.(l) <> 0 then s := min !s (abs strides.(l))
    done;
    if !s = max_int then 1.0
    else float_of_int (min !s line_elems) /. float_of_int line_elems
  in
  let lines =
    Array.mapi (fun dep t -> Float.max 1.0 (t *. spatial dep)) touched
  in
  let reuse_loop =
    let rec go l = if l < 0 then None else if not (moves l) then Some l else go (l - 1) in
    go (n - 1)
  in
  { tensor; is_write; count; strides; touched; lines; inner_stride; reuse_loop }

let analyze (prog : Prog.t) =
  let infos = ref [] in
  Prog.iter_stmts prog (fun loops stmt ->
      let loop_vars = Array.of_list (List.map (fun l -> l.Prog.lvar) loops) in
      let extents = Array.of_list (List.map (fun l -> l.Prog.extent) loops) in
      let iters =
        Array.fold_left (fun acc e -> acc *. float_of_int e) 1.0 extents
      in
      let reads = Expr.accesses stmt.rhs in
      let dedup =
        List.fold_left
          (fun acc (t, idx) ->
            match List.assoc_opt (t, idx) acc with
            | Some n -> ((t, idx), n + 1) :: List.remove_assoc (t, idx) acc
            | None -> ((t, idx), 1) :: acc)
          [] reads
        |> List.rev
      in
      let out =
        make_access prog.buffers loop_vars extents ~tensor:stmt.tensor
          ~idx:stmt.indices ~is_write:true ~count:1
      in
      let read_accesses =
        List.map
          (fun ((t, idx), count) ->
            make_access prog.buffers loop_vars extents ~tensor:t ~idx
              ~is_write:false ~count)
          dedup
      in
      let counts =
        let c = Expr.count_ops stmt.rhs in
        match stmt.update with
        | Some _ -> Expr.add_counts c { Expr.zero_counts with float_add_sub = 1 }
        | None -> c
      in
      infos :=
        { stmt; loops; extents; iters; accesses = out :: read_accesses; counts }
        :: !infos);
  List.rev !infos

let working_set info d =
  List.fold_left
    (fun acc a ->
      let d = min d (Array.length a.touched - 1) in
      acc +. (4.0 *. a.touched.(d)))
    0.0 info.accesses

let select_zero_fraction info =
  match info.stmt.rhs with
  | Expr.Select (cond, _, Expr.Const 0.0) | Expr.Select (cond, Expr.Const 0.0, _)
    ->
    let syntactic_vars =
      let all = ref [] in
      let add v = if not (List.mem v !all) then all := v :: !all in
      let rec goi = function
        | Expr.Int _ -> ()
        | Expr.Axis v -> add v
        | Expr.Iadd (a, b) | Expr.Isub (a, b) | Expr.Imul (a, b)
        | Expr.Idiv (a, b) | Expr.Imod (a, b)
        | Expr.Imin (a, b) | Expr.Imax (a, b) ->
          goi a;
          goi b
      in
      let rec gob = function
        | Expr.Blt (a, b) | Expr.Ble (a, b) | Expr.Beq (a, b) ->
          goi a;
          goi b
        | Expr.Band (a, b) | Expr.Bor (a, b) ->
          gob a;
          gob b
        | Expr.Bnot a -> gob a
      in
      gob cond;
      List.rev !all
    in
    (* Relevance is judged on the equality (divisibility) atoms of the
       condition only: bounds atoms (x < N) concern the borders, which a
       real code generator peels off with loop partitioning.  A variable
       is relevant iff changing it can flip some equality atom — e.g. in
       ((y0*128 + y1) mod 2 == 0) the outer tile y0 is irrelevant because
       its coefficient is even.  Tested by sampling, so the result rewards
       tile structures whose strides make the guard independent of the
       outer loops — the T2D observation of §7.1. *)
    let equality_atoms cond =
      let acc = ref [] in
      let rec go = function
        | Expr.Beq _ as atom -> acc := atom :: !acc
        | Expr.Blt _ | Expr.Ble _ -> ()
        | Expr.Band (a, b) | Expr.Bor (a, b) ->
          go a;
          go b
        | Expr.Bnot a -> go a
      in
      go cond;
      !acc
    in
    let relevant_vars cond =
      let atoms = equality_atoms cond in
      let state = ref 2463534242 in
      let next_int bound =
        let x = !state in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 7) in
        let x = x lxor (x lsl 17) in
        state := x;
        abs x mod bound
      in
      let extent_of v =
        match
          List.find_opt (fun l -> String.equal l.Prog.lvar v) info.loops
        with
        | Some l -> l.Prog.extent
        | None -> 1
      in
      List.filter
        (fun v ->
          let e = extent_of v in
          e > 1
          &&
          let depends = ref false in
          for _ = 1 to 16 do
            if not !depends then begin
              let ctx = Hashtbl.create 8 in
              List.iter
                (fun l ->
                  Hashtbl.replace ctx l.Prog.lvar (next_int l.Prog.extent))
                info.loops;
              let env_with value u =
                if String.equal u v then value
                else
                  match Hashtbl.find_opt ctx u with Some i -> i | None -> 0
              in
              let a = next_int e and b = next_int e in
              List.iter
                (fun atom ->
                  let r1 =
                    try Expr.eval_bexpr (env_with a) atom
                    with Division_by_zero -> false
                  and r2 =
                    try Expr.eval_bexpr (env_with b) atom
                    with Division_by_zero -> false
                  in
                  if r1 <> r2 then depends := true)
                atoms
            end
          done;
          !depends)
        syntactic_vars
    in
    let vars = relevant_vars cond in
    let taken_is_true =
      match info.stmt.rhs with
      | Expr.Select (_, _, Expr.Const 0.0) -> true
      | _ -> false
    in
    let samples = 128 in
    let state = ref 88172645463325252 in
    let next_int bound =
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      state := x;
      abs x mod bound
    in
    let hits = ref 0 in
    for _ = 1 to samples do
      let env_tbl = Hashtbl.create 8 in
      List.iter
        (fun l -> Hashtbl.replace env_tbl l.Prog.lvar (next_int l.Prog.extent))
        info.loops;
      let env v =
        match Hashtbl.find_opt env_tbl v with Some i -> i | None -> 0
      in
      let holds = try Expr.eval_bexpr env cond with Division_by_zero -> false in
      if holds = taken_is_true then incr hits
    done;
    Some (vars, float_of_int !hits /. float_of_int samples)
  | _ -> None
