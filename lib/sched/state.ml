open Ansor_te

type iter_kind = Space | Reduce

type ivar_info = {
  iname : string;
  extent : int;
  kind : iter_kind;
  ann : Step.annotation;
}

type relation =
  | Rsplit of { parent : int; children : int list; lengths : int list }
  | Rfuse of { fused : int; components : int list; lengths : int list }

type location =
  | Loc_root
  | Loc_inlined
  | Loc_at of { target : string; target_iv : int; bindings : (int * int) list }

type stage = {
  op : Op.t;
  ivars : ivar_info array;
  rels : relation list;
  leaves : int list;
  loc : location;
  max_unroll : int option;
}

type t = {
  dag : Dag.t;
  stages : (string * stage) list;
  history : Step.t list;
}

exception Illegal of string

let illegal fmt = Format.kasprintf (fun s -> raise (Illegal s)) fmt

let stage_of_op op =
  match op with
  | Op.Placeholder _ -> None
  | Op.Compute { axes; reduce_axes; _ } ->
    let mk kind (v, e) = { iname = v; extent = e; kind; ann = Step.No_ann } in
    let ivars =
      Array.of_list (List.map (mk Space) axes @ List.map (mk Reduce) reduce_axes)
    in
    Some
      {
        op;
        ivars;
        rels = [];
        leaves = List.init (Array.length ivars) Fun.id;
        loc = Loc_root;
        max_unroll = None;
      }

let init dag =
  let stages =
    Array.to_list (Dag.ops dag)
    |> List.filter_map (fun op ->
           Option.map (fun s -> (Op.name op, s)) (stage_of_op op))
  in
  { dag; stages; history = [] }

let find_stage t name = List.assoc name t.stages
let mem_stage t name = List.mem_assoc name t.stages
let stage_names t = List.map fst t.stages
let ivar stage id = stage.ivars.(id)

let leaf_pos stage id =
  let rec go pos = function
    | [] -> None
    | x :: rest -> if x = id then Some pos else go (pos + 1) rest
  in
  go 0 stage.leaves

let is_pristine stage =
  stage.rels = []
  && stage.leaves = List.init (Array.length stage.ivars) Fun.id
  && stage.loc = Loc_root
  && Array.for_all (fun iv -> iv.ann = Step.No_ann) stage.ivars

let num_space_leaves stage =
  List.length
    (List.filter (fun id -> stage.ivars.(id).kind = Space) stage.leaves)

let num_reduce_leaves stage =
  List.length
    (List.filter (fun id -> stage.ivars.(id).kind = Reduce) stage.leaves)

let attach_targets t name =
  List.filter_map
    (fun (n, s) ->
      match s.loc with
      | Loc_at { target; target_iv; _ } when String.equal target name ->
        Some (n, target_iv)
      | _ -> None)
    t.stages

let update_stage t name f =
  let found = ref false in
  let stages =
    List.map
      (fun (n, s) ->
        if String.equal n name then begin
          found := true;
          (n, f s)
        end
        else (n, s))
      t.stages
  in
  if not !found then illegal "no stage named %s" name;
  { t with stages }

(* Rebuilds the stage association list to follow a new DAG's topological
   order, reusing existing stage records and initializing fresh ones. *)
let rebuild_stages old_stages dag =
  Array.to_list (Dag.ops dag)
  |> List.filter_map (fun op ->
         let name = Op.name op in
         match List.assoc_opt name old_stages with
         | Some s when s.op == op -> Some (name, s)
         | _ -> Option.map (fun s -> (name, s)) (stage_of_op op))

(* ---------- step application ---------- *)

let check_leaf stage name id =
  if id < 0 || id >= Array.length stage.ivars then
    illegal "stage %s: iterator %d does not exist" name id;
  if leaf_pos stage id = None then
    illegal "stage %s: iterator %d (%s) is not a leaf" name id
      stage.ivars.(id).iname

let do_split t ~stage:name ~iv ~lengths =
  update_stage t name (fun s ->
      check_leaf s name iv;
      let info = s.ivars.(iv) in
      if info.ann <> Step.No_ann then
        illegal "stage %s: cannot split annotated iterator %s" name info.iname;
      if lengths = [] then illegal "stage %s: empty split" name;
      List.iter
        (fun l -> if l <= 0 then illegal "stage %s: non-positive split length" name)
        lengths;
      let product = List.fold_left ( * ) 1 lengths in
      if product <> info.extent then
        illegal "stage %s: split of %s (extent %d) by lengths with product %d"
          name info.iname info.extent product;
      let base = Array.length s.ivars in
      let children =
        List.mapi
          (fun i l ->
            {
              iname = Printf.sprintf "%s.%d" info.iname i;
              extent = l;
              kind = info.kind;
              ann = Step.No_ann;
            })
          lengths
      in
      let child_ids = List.mapi (fun i _ -> base + i) children in
      let ivars = Array.append s.ivars (Array.of_list children) in
      let leaves =
        List.concat_map
          (fun id -> if id = iv then child_ids else [ id ])
          s.leaves
      in
      {
        s with
        ivars;
        leaves;
        rels = s.rels @ [ Rsplit { parent = iv; children = child_ids; lengths } ];
      })

let rec is_consecutive_run run leaves =
  match (run, leaves) with
  | [], _ -> true
  | _, [] -> false
  | r :: _, l :: rest_l when r <> l -> is_consecutive_run run rest_l
  | _ ->
    (* heads are equal: the rest of the run must match positionally *)
    let rec matches run leaves =
      match (run, leaves) with
      | [], _ -> true
      | _, [] -> false
      | r :: rr, l :: ll -> r = l && matches rr ll
    in
    matches run leaves

let do_fuse t ~stage:name ~ivs =
  update_stage t name (fun s ->
      (match ivs with
      | [] | [ _ ] -> illegal "stage %s: fuse needs at least two iterators" name
      | _ -> ());
      List.iter (fun id -> check_leaf s name id) ivs;
      if not (is_consecutive_run ivs s.leaves) then
        illegal "stage %s: fused iterators must be consecutive leaves" name;
      let infos = List.map (fun id -> s.ivars.(id)) ivs in
      let kind = (List.hd infos).kind in
      if not (List.for_all (fun i -> i.kind = kind) infos) then
        illegal "stage %s: cannot fuse space with reduction iterators" name;
      if not (List.for_all (fun i -> i.ann = Step.No_ann) infos) then
        illegal "stage %s: cannot fuse annotated iterators" name;
      let fused_id = Array.length s.ivars in
      let fused =
        {
          iname = String.concat "@" (List.map (fun i -> i.iname) infos);
          extent = List.fold_left (fun acc i -> acc * i.extent) 1 infos;
          kind;
          ann = Step.No_ann;
        }
      in
      let rec replace_run leaves =
        match leaves with
        | [] -> []
        | l :: _ when l = List.hd ivs ->
          let rest = ref leaves in
          List.iter (fun _ -> rest := List.tl !rest) ivs;
          fused_id :: !rest
        | l :: rest -> l :: replace_run rest
      in
      {
        s with
        ivars = Array.append s.ivars [| fused |];
        leaves = replace_run s.leaves;
        rels =
          s.rels
          @ [
              Rfuse
                {
                  fused = fused_id;
                  components = ivs;
                  lengths = List.map (fun i -> i.extent) infos;
                };
            ];
      })

let do_reorder t ~stage:name ~order =
  update_stage t name (fun s ->
      if List.sort compare order <> List.sort compare s.leaves then
        illegal "stage %s: reorder is not a permutation of the leaves" name;
      { s with leaves = order })

(* True when [target] (transitively, through currently-inlined stages)
   reads the tensor produced by [name]. *)
let reads_transitively t ~target ~name =
  let rec reads op_name =
    match List.assoc_opt op_name t.stages with
    | None -> false
    | Some s ->
      List.exists
        (fun input ->
          String.equal input name
          ||
          match List.assoc_opt input t.stages with
          | Some p when p.loc = Loc_inlined -> reads input
          | _ -> false)
        (Op.input_tensors s.op)
  in
  reads target

let do_compute_at t ~stage:name ~target ~target_iv ~bindings =
  if String.equal name target then illegal "compute_at: stage equals target";
  let tstage =
    try find_stage t target
    with Not_found -> illegal "compute_at: no stage named %s" target
  in
  if target_iv < 0 || target_iv >= Array.length tstage.ivars then
    illegal "compute_at: target iterator %d does not exist" target_iv;
  if not (reads_transitively t ~target ~name) then
    illegal "compute_at: %s is not a (transitive) consumer of %s" target name;
  (match tstage.loc with
  | Loc_inlined -> illegal "compute_at: target %s is inlined" target
  | _ -> ());
  update_stage t name (fun s ->
      (match s.loc with
      | Loc_inlined -> illegal "compute_at: stage %s is inlined" name
      | _ -> ());
      List.iter
        (fun (mine, theirs) ->
          check_leaf s name mine;
          if theirs < 0 || theirs >= Array.length tstage.ivars then
            illegal "compute_at: binding to non-existent target iterator %d"
              theirs;
          if s.ivars.(mine).extent <> tstage.ivars.(theirs).extent then
            illegal
              "compute_at: binding extent mismatch (%s:%s extent %d vs %s:%s \
               extent %d)"
              name s.ivars.(mine).iname s.ivars.(mine).extent target
              tstage.ivars.(theirs).iname tstage.ivars.(theirs).extent;
          if s.ivars.(mine).kind <> Space then
            illegal "compute_at: only space iterators can be bound")
        bindings;
      let mine_ids = List.map fst bindings in
      if List.length (List.sort_uniq compare mine_ids) <> List.length mine_ids
      then illegal "compute_at: duplicate bound iterator";
      { s with loc = Loc_at { target; target_iv; bindings } })

let do_compute_inline t ~stage:name =
  let idx =
    try Dag.op_index t.dag name
    with Not_found -> illegal "inline: no stage named %s" name
  in
  if not (Dag.is_strict_inlinable t.dag idx) then
    illegal "inline: stage %s is not strictly inlinable" name;
  if Dag.is_output t.dag idx then
    illegal "inline: stage %s is a DAG output" name;
  if attach_targets t name <> [] then
    illegal "inline: stage %s has attached producers" name;
  update_stage t name (fun s -> { s with loc = Loc_inlined })

let do_compute_root t ~stage:name =
  update_stage t name (fun s -> { s with loc = Loc_root })

let replace_op_in_dag dag ~name ~with_ops =
  let ops =
    Array.to_list (Dag.ops dag)
    |> List.concat_map (fun op ->
           if String.equal (Op.name op) name then with_ops else [ op ])
  in
  Dag.create ops

let do_cache_write t ~stage:name =
  let s =
    try find_stage t name with Not_found -> illegal "cache_write: no stage %s" name
  in
  if not (is_pristine s) then
    illegal "cache_write: stage %s has already been transformed" name;
  match s.op with
  | Op.Placeholder _ -> illegal "cache_write: %s is a placeholder" name
  | Op.Compute c ->
    let cc_name = name ^ ".local" in
    if mem_stage t cc_name then illegal "cache_write: %s already cached" name;
    let cc_op =
      Op.compute ~name:cc_name ~axes:c.axes ~reduce_axes:c.reduce_axes
        ?reduce:c.reduce c.body
    in
    (* the copy keeps the original tensor name; the compute moves to
       <name>.local, so consumers are untouched *)
    let copy_op =
      Op.compute ~name ~axes:c.axes
        (Expr.access cc_name (List.map (fun (v, _) -> Expr.axis v) c.axes))
    in
    let dag = replace_op_in_dag t.dag ~name ~with_ops:[ cc_op; copy_op ] in
    { t with dag; stages = rebuild_stages t.stages dag }

let do_rfactor t ~stage:name ~iv ~lengths =
  let s =
    try find_stage t name with Not_found -> illegal "rfactor: no stage %s" name
  in
  if not (is_pristine s) then
    illegal "rfactor: stage %s has already been transformed" name;
  match s.op with
  | Op.Placeholder _ -> illegal "rfactor: %s is a placeholder" name
  | Op.Compute c ->
    let lo, li =
      match lengths with
      | [ lo; li ] -> (lo, li)
      | _ -> illegal "rfactor: lengths must be [outer; inner]"
    in
    if iv < 0 || iv >= Array.length s.ivars then
      illegal "rfactor: iterator %d does not exist" iv;
    let info = s.ivars.(iv) in
    if info.kind <> Reduce then illegal "rfactor: %s is not a reduction axis" info.iname;
    if lo * li <> info.extent then
      illegal "rfactor: %d * %d <> extent %d" lo li info.extent;
    let kind =
      match c.reduce with Some k -> k | None -> illegal "rfactor: no reduction"
    in
    let r = info.iname in
    let r_o = r ^ ".o" and r_i = r ^ ".i" in
    let rf_name = name ^ ".rf" in
    if mem_stage t rf_name then illegal "rfactor: %s already factorized" name;
    let rf_body =
      Expr.subst_axes
        [ (r, Expr.(Iadd (Imul (Axis r_o, Int li), Axis r_i))) ]
        c.body
    in
    let rf_op =
      Op.compute ~name:rf_name
        ~axes:(c.axes @ [ (r_i, li) ])
        ~reduce_axes:
          (List.map (fun (v, e) -> if String.equal v r then (r_o, lo) else (v, e))
             c.reduce_axes)
        ~reduce:kind rf_body
    in
    let final_op =
      Op.compute ~name ~axes:c.axes
        ~reduce_axes:[ (r_i, li) ]
        ~reduce:kind
        (Expr.access rf_name
           (List.map (fun (v, _) -> Expr.axis v) c.axes @ [ Expr.axis r_i ]))
    in
    let dag = replace_op_in_dag t.dag ~name ~with_ops:[ rf_op; final_op ] in
    { t with dag; stages = rebuild_stages t.stages dag }

(* Note: [Parallel] on a reduction iterator is a data race, but it is the
   static race detector's job (lib/analysis) to diagnose it, not the step
   semantics' — evolution is allowed to propose such mutants and the
   pre-measurement filter rejects them with a proper diagnostic. *)
let do_annotate t ~stage:name ~iv ~ann =
  update_stage t name (fun s ->
      check_leaf s name iv;
      let info = s.ivars.(iv) in
      let ivars = Array.copy s.ivars in
      ivars.(iv) <- { info with ann };
      { s with ivars })

let do_pragma_unroll t ~stage:name ~max_step =
  if max_step < 0 then illegal "pragma_unroll: negative max_step";
  update_stage t name (fun s -> { s with max_unroll = Some max_step })

let apply t step =
  let t' =
    match (step : Step.t) with
    | Split { stage; iv; lengths; tbd = _ } -> do_split t ~stage ~iv ~lengths
    | Fuse { stage; ivs } -> do_fuse t ~stage ~ivs
    | Reorder { stage; order } -> do_reorder t ~stage ~order
    | Compute_at { stage; target; target_iv; bindings } ->
      do_compute_at t ~stage ~target ~target_iv ~bindings
    | Compute_inline { stage } -> do_compute_inline t ~stage
    | Compute_root { stage } -> do_compute_root t ~stage
    | Cache_write { stage } -> do_cache_write t ~stage
    | Rfactor { stage; iv; lengths; tbd = _ } -> do_rfactor t ~stage ~iv ~lengths
    | Annotate { stage; iv; ann } -> do_annotate t ~stage ~iv ~ann
    | Pragma_unroll { stage; max_step } -> do_pragma_unroll t ~stage ~max_step
  in
  { t' with history = t.history @ [ step ] }

let apply_checked t step =
  match apply t step with
  | t' -> Ok t'
  | exception Illegal msg -> Error msg

let replay dag steps = List.fold_left apply (init dag) steps

let replay_checked dag steps =
  match replay dag steps with
  | t -> Ok t
  | exception Illegal msg -> Error msg

let pp fmt t =
  List.iter
    (fun (name, s) ->
      let loc =
        match s.loc with
        | Loc_root -> "root"
        | Loc_inlined -> "inlined"
        | Loc_at { target; target_iv; _ } ->
          Printf.sprintf "at %s/iv%d" target target_iv
      in
      Format.fprintf fmt "@[<v 2>stage %s (%s):@," name loc;
      List.iteri
        (fun depth id ->
          let iv = s.ivars.(id) in
          let ann =
            match iv.ann with
            | Step.No_ann -> ""
            | a -> Format.asprintf "%a " Step.pp_annotation a
          in
          Format.fprintf fmt "%s%sfor %s in range(%d)@,"
            (String.make depth ' ')
            ann iv.iname iv.extent)
        s.leaves;
      Format.fprintf fmt "@]@,")
    t.stages
