(** Static validation of lowered programs.

    A third correctness oracle besides the interpreter and the C backend:
    purely static, so it works at any problem size.  Interval analysis of
    the index expressions under the loop bounds checks that

    - every loop has a positive extent and loop variables never shadow;
    - every {e write} lands inside its buffer, and the writes of each
      non-input buffer can reach its first and last element (a cheap
      coverage proxy: splits/fuses that lose or duplicate iterations
      shift the write hull);
    - every {e unguarded} read is in bounds.  Reads inside [select]
      branches are skipped: the guard may be exactly what makes them safe
      (the padding and transposed-convolution idioms), and deciding that
      statically would need relational reasoning;
    - every reduction-updated buffer is initialized.

    Findings are reported as {!Diagnostic.t} values (all at severity
    [Error]; the schedule linter in lib/analysis adds the [Warn]/[Info]
    tiers).  The sampler property tests run the interpreter on small
    shapes; this validator is additionally exercised on every sampled
    program to catch lowering regressions on realistic (large) shapes
    where interpretation is infeasible. *)

val check : Prog.t -> Diagnostic.t list
(** Empty when the program passes all static checks. *)

(** Interval arithmetic over index expressions, exposed for the analyses
    in lib/analysis and for tests. *)
module Interval : sig
  type t = { lo : int; hi : int }

  val point : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  val floordiv_const : t -> int -> t
  (** Floor-divide by a positive constant. *)

  val imin : t -> t -> t
  val imax : t -> t -> t

  val of_iexpr : (string -> t option) -> Ansor_te.Expr.iexpr -> t option
  (** Interval of an expression given variable ranges; [None] when a
      variable's range is unknown or a divisor may be non-positive.
      Division by a positive-interval divisor, [mod] by a positive
      constant (tightened when the argument fits one block), and
      [min]/[max] of known intervals all stay defined. *)
end

val buffer_size : int list -> int

val offset_interval :
  (string -> Interval.t option) ->
  int list ->
  Ansor_te.Expr.iexpr list ->
  Interval.t option
(** Interval of the flattened row-major offset of an access. *)

val reads_with_guard :
  Ansor_te.Expr.t -> (string * Ansor_te.Expr.iexpr list * bool) list
(** Every tensor read in an expression, flagged [true] when a [select]
    guards it. *)
