(** Scalar expressions of the tensor-expression language.

    A compute definition (see {!Op}) gives the value of one output element
    as an {!type:t} over the operator's space and reduction axes.  Index
    arithmetic is integer-typed ({!type:iexpr}), element values are
    float-typed ({!type:t}), and conditions ({!type:bexpr}) support the
    [select] idiom used to express zero padding without a real branch in
    the data. *)

(** Integer (index) expressions. Division is floor division. *)
type iexpr =
  | Int of int
  | Axis of string  (** a loop axis variable, referenced by name *)
  | Iadd of iexpr * iexpr
  | Isub of iexpr * iexpr
  | Imul of iexpr * iexpr
  | Idiv of iexpr * iexpr
  | Imod of iexpr * iexpr
  | Imin of iexpr * iexpr
  | Imax of iexpr * iexpr

(** Boolean expressions over indices. *)
type bexpr =
  | Blt of iexpr * iexpr
  | Ble of iexpr * iexpr
  | Beq of iexpr * iexpr
  | Band of bexpr * bexpr
  | Bor of bexpr * bexpr
  | Bnot of bexpr

type unop = Neg | Exp | Log | Sqrt | Tanh | Sigmoid | Abs | Relu

type binop = Add | Sub | Mul | Div | Max | Min | Pow

(** Float-valued expressions. [Select] evaluates only the taken branch, so
    it may guard out-of-bounds accesses (the padding idiom). *)
type t =
  | Const of float
  | Access of string * iexpr list  (** read [tensor.(indices)] *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of bexpr * t * t
  | Cast_int of iexpr  (** index value as a float, e.g. for iota tensors *)

(** {1 Constructors} *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val const : float -> t
val access : string -> iexpr list -> t
val axis : string -> iexpr
val int : int -> iexpr
val ( +! ) : iexpr -> iexpr -> iexpr
val ( -! ) : iexpr -> iexpr -> iexpr
val ( *! ) : iexpr -> iexpr -> iexpr

(** {1 Evaluation} *)

val eval_iexpr : (string -> int) -> iexpr -> int
(** [eval_iexpr lookup e] evaluates [e] with [lookup] resolving axis
    variables. @raise Division_by_zero on zero divisors. *)

val eval_bexpr : (string -> int) -> bexpr -> bool

val eval :
  axis_value:(string -> int) ->
  load:(string -> int list -> float) ->
  t ->
  float
(** [eval ~axis_value ~load e] evaluates [e]; [load tensor indices] reads a
    tensor element. [Select] is lazy in its branches. *)

(** {1 Analysis} *)

val accesses : t -> (string * iexpr list) list
(** All tensor accesses in evaluation order (including both branches of
    selects), with duplicates preserved. *)

val iexpr_axes : iexpr -> string list
(** Axis variables occurring in an index expression (no duplicates). *)

val axes_of : t -> string list
(** Axis variables occurring anywhere in the expression (no duplicates). *)

val subst_tensor : string -> (iexpr list -> t) -> t -> t
(** [subst_tensor name f e] replaces every access [name.(idx)] by
    [f idx]; used to inline a producer's body into its consumers. *)

val subst_axes : (string * iexpr) list -> t -> t
(** Simultaneous substitution of axis variables in an expression. *)

val subst_axes_iexpr : (string * iexpr) list -> iexpr -> iexpr

(** Static operation counts of one evaluation of an expression, split the
    way the cost-model features need them (Appendix B). *)
type op_counts = {
  float_add_sub : int;
  float_mul : int;
  float_div_mod : int;
  float_cmp : int;  (** comparisons feeding selects / max / min *)
  float_math : int;  (** exp, log, sqrt, tanh, sigmoid, ... *)
  int_add_sub : int;
  int_mul : int;
  int_div_mod : int;
}

val zero_counts : op_counts
val add_counts : op_counts -> op_counts -> op_counts
val count_ops : t -> op_counts

val flops : t -> int
(** Floating-point operations per evaluation (adds + muls + divs + cmps +
    math calls), the unit used for task FLOP totals. *)

(** {1 Pretty-printing} *)

val pp_iexpr : Format.formatter -> iexpr -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Simplification} *)

val simplify_iexpr : iexpr -> iexpr
(** Constant folding plus the usual identities ([x*1], [x+0], [x*0],
    [x/1], [x mod 1]). *)

val simplify : t -> t
(** Recursively simplifies index expressions and resolves selects whose
    condition is statically decidable. *)
