type iexpr =
  | Int of int
  | Axis of string
  | Iadd of iexpr * iexpr
  | Isub of iexpr * iexpr
  | Imul of iexpr * iexpr
  | Idiv of iexpr * iexpr
  | Imod of iexpr * iexpr
  | Imin of iexpr * iexpr
  | Imax of iexpr * iexpr

type bexpr =
  | Blt of iexpr * iexpr
  | Ble of iexpr * iexpr
  | Beq of iexpr * iexpr
  | Band of bexpr * bexpr
  | Bor of bexpr * bexpr
  | Bnot of bexpr

type unop = Neg | Exp | Log | Sqrt | Tanh | Sigmoid | Abs | Relu

type binop = Add | Sub | Mul | Div | Max | Min | Pow

type t =
  | Const of float
  | Access of string * iexpr list
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of bexpr * t * t
  | Cast_int of iexpr

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let const f = Const f
let access name idx = Access (name, idx)
let axis name = Axis name
let int n = Int n
let ( +! ) a b = Iadd (a, b)
let ( -! ) a b = Isub (a, b)
let ( *! ) a b = Imul (a, b)

let rec eval_iexpr lookup = function
  | Int n -> n
  | Axis v -> lookup v
  | Iadd (a, b) -> eval_iexpr lookup a + eval_iexpr lookup b
  | Isub (a, b) -> eval_iexpr lookup a - eval_iexpr lookup b
  | Imul (a, b) -> eval_iexpr lookup a * eval_iexpr lookup b
  | Idiv (a, b) ->
    let b = eval_iexpr lookup b in
    if b = 0 then raise Division_by_zero
    else
      let a = eval_iexpr lookup a in
      (* floor division *)
      if (a < 0) <> (b < 0) && a mod b <> 0 then (a / b) - 1
      else a / b
  | Imod (a, b) ->
    let b = eval_iexpr lookup b in
    if b = 0 then raise Division_by_zero
    else
      let r = eval_iexpr lookup a mod b in
      if r < 0 then r + abs b else r
  | Imin (a, b) -> min (eval_iexpr lookup a) (eval_iexpr lookup b)
  | Imax (a, b) -> max (eval_iexpr lookup a) (eval_iexpr lookup b)

let rec eval_bexpr lookup = function
  | Blt (a, b) -> eval_iexpr lookup a < eval_iexpr lookup b
  | Ble (a, b) -> eval_iexpr lookup a <= eval_iexpr lookup b
  | Beq (a, b) -> eval_iexpr lookup a = eval_iexpr lookup b
  | Band (a, b) -> eval_bexpr lookup a && eval_bexpr lookup b
  | Bor (a, b) -> eval_bexpr lookup a || eval_bexpr lookup b
  | Bnot a -> not (eval_bexpr lookup a)

let rec eval ~axis_value ~load = function
  | Const f -> f
  | Access (name, idx) -> load name (List.map (eval_iexpr axis_value) idx)
  | Unop (op, a) -> (
    let x = eval ~axis_value ~load a in
    match op with
    | Neg -> -.x
    | Exp -> exp x
    | Log -> log x
    | Sqrt -> sqrt x
    | Tanh -> tanh x
    | Sigmoid -> 1.0 /. (1.0 +. exp (-.x))
    | Abs -> Float.abs x
    | Relu -> Float.max x 0.0)
  | Binop (op, a, b) -> (
    let x = eval ~axis_value ~load a and y = eval ~axis_value ~load b in
    match op with
    | Add -> x +. y
    | Sub -> x -. y
    | Mul -> x *. y
    | Div -> x /. y
    | Max -> Float.max x y
    | Min -> Float.min x y
    | Pow -> Float.pow x y)
  | Select (c, a, b) ->
    if eval_bexpr axis_value c then eval ~axis_value ~load a
    else eval ~axis_value ~load b
  | Cast_int e -> float_of_int (eval_iexpr axis_value e)

let accesses e =
  let acc = ref [] in
  let rec go = function
    | Const _ | Cast_int _ -> ()
    | Access (name, idx) -> acc := (name, idx) :: !acc
    | Unop (_, a) -> go a
    | Binop (_, a, b) ->
      go a;
      go b
    | Select (_, a, b) ->
      go a;
      go b
  in
  go e;
  List.rev !acc

let iexpr_axes e =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec go = function
    | Int _ -> ()
    | Axis v -> add v
    | Iadd (a, b) | Isub (a, b) | Imul (a, b) | Idiv (a, b) | Imod (a, b)
    | Imin (a, b) | Imax (a, b) ->
      go a;
      go b
  in
  go e;
  List.rev !acc

let axes_of e =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let goi i = List.iter add (iexpr_axes i) in
  let gob b =
    let rec go = function
      | Blt (a, b) | Ble (a, b) | Beq (a, b) ->
        goi a;
        goi b
      | Band (a, b) | Bor (a, b) ->
        go a;
        go b
      | Bnot a -> go a
    in
    go b
  in
  let rec go = function
    | Const _ -> ()
    | Cast_int i -> goi i
    | Access (_, idx) -> List.iter goi idx
    | Unop (_, a) -> go a
    | Binop (_, a, b) ->
      go a;
      go b
    | Select (c, a, b) ->
      gob c;
      go a;
      go b
  in
  go e;
  List.rev !acc

let rec subst_tensor name f = function
  | Const _ as e -> e
  | Cast_int _ as e -> e
  | Access (n, idx) -> if String.equal n name then f idx else Access (n, idx)
  | Unop (op, a) -> Unop (op, subst_tensor name f a)
  | Binop (op, a, b) -> Binop (op, subst_tensor name f a, subst_tensor name f b)
  | Select (c, a, b) -> Select (c, subst_tensor name f a, subst_tensor name f b)

let rec subst_axes_iexpr env = function
  | Int _ as e -> e
  | Axis v as e -> ( match List.assoc_opt v env with Some e' -> e' | None -> e)
  | Iadd (a, b) -> Iadd (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Isub (a, b) -> Isub (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Imul (a, b) -> Imul (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Idiv (a, b) -> Idiv (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Imod (a, b) -> Imod (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Imin (a, b) -> Imin (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Imax (a, b) -> Imax (subst_axes_iexpr env a, subst_axes_iexpr env b)

let rec subst_axes_bexpr env = function
  | Blt (a, b) -> Blt (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Ble (a, b) -> Ble (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Beq (a, b) -> Beq (subst_axes_iexpr env a, subst_axes_iexpr env b)
  | Band (a, b) -> Band (subst_axes_bexpr env a, subst_axes_bexpr env b)
  | Bor (a, b) -> Bor (subst_axes_bexpr env a, subst_axes_bexpr env b)
  | Bnot a -> Bnot (subst_axes_bexpr env a)

let rec subst_axes env = function
  | Const _ as e -> e
  | Cast_int i -> Cast_int (subst_axes_iexpr env i)
  | Access (n, idx) -> Access (n, List.map (subst_axes_iexpr env) idx)
  | Unop (op, a) -> Unop (op, subst_axes env a)
  | Binop (op, a, b) -> Binop (op, subst_axes env a, subst_axes env b)
  | Select (c, a, b) ->
    Select (subst_axes_bexpr env c, subst_axes env a, subst_axes env b)

type op_counts = {
  float_add_sub : int;
  float_mul : int;
  float_div_mod : int;
  float_cmp : int;
  float_math : int;
  int_add_sub : int;
  int_mul : int;
  int_div_mod : int;
}

let zero_counts =
  {
    float_add_sub = 0;
    float_mul = 0;
    float_div_mod = 0;
    float_cmp = 0;
    float_math = 0;
    int_add_sub = 0;
    int_mul = 0;
    int_div_mod = 0;
  }

let add_counts a b =
  {
      float_add_sub = a.float_add_sub + b.float_add_sub;
      float_mul = a.float_mul + b.float_mul;
      float_div_mod = a.float_div_mod + b.float_div_mod;
      float_cmp = a.float_cmp + b.float_cmp;
      float_math = a.float_math + b.float_math;
      int_add_sub = a.int_add_sub + b.int_add_sub;
      int_mul = a.int_mul + b.int_mul;
      int_div_mod = a.int_div_mod + b.int_div_mod;
    }

let count_ops e =
  let rec goi c = function
    | Int _ | Axis _ -> c
    | Iadd (a, b) | Isub (a, b) ->
      goi (goi { c with int_add_sub = c.int_add_sub + 1 } a) b
    | Imul (a, b) -> goi (goi { c with int_mul = c.int_mul + 1 } a) b
    | Idiv (a, b) | Imod (a, b) ->
      goi (goi { c with int_div_mod = c.int_div_mod + 1 } a) b
    | Imin (a, b) | Imax (a, b) ->
      goi (goi { c with int_add_sub = c.int_add_sub + 1 } a) b
  in
  let rec gob c = function
    | Blt (a, b) | Ble (a, b) | Beq (a, b) ->
      goi (goi { c with int_add_sub = c.int_add_sub + 1 } a) b
    | Band (a, b) | Bor (a, b) -> gob (gob c a) b
    | Bnot a -> gob c a
  in
  let rec go c = function
    | Const _ -> c
    | Cast_int i -> goi c i
    | Access (_, idx) -> List.fold_left goi c idx
    | Unop (op, a) ->
      let c =
        match op with
        | Neg -> { c with float_add_sub = c.float_add_sub + 1 }
        | Abs | Relu -> { c with float_cmp = c.float_cmp + 1 }
        | Exp | Log | Sqrt | Tanh | Sigmoid ->
          { c with float_math = c.float_math + 1 }
      in
      go c a
    | Binop (op, a, b) ->
      let c =
        match op with
        | Add | Sub -> { c with float_add_sub = c.float_add_sub + 1 }
        | Mul -> { c with float_mul = c.float_mul + 1 }
        | Div -> { c with float_div_mod = c.float_div_mod + 1 }
        | Max | Min -> { c with float_cmp = c.float_cmp + 1 }
        | Pow -> { c with float_math = c.float_math + 1 }
      in
      go (go c a) b
    | Select (cond, a, b) ->
      let c = { c with float_cmp = c.float_cmp + 1 } in
      go (go (gob c cond) a) b
  in
  go zero_counts e

let flops e =
  let c = count_ops e in
  c.float_add_sub + c.float_mul + c.float_div_mod + c.float_cmp + c.float_math

let rec pp_iexpr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Axis v -> Format.pp_print_string fmt v
  | Iadd (a, b) -> Format.fprintf fmt "(%a + %a)" pp_iexpr a pp_iexpr b
  | Isub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_iexpr a pp_iexpr b
  | Imul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_iexpr a pp_iexpr b
  | Idiv (a, b) -> Format.fprintf fmt "(%a / %a)" pp_iexpr a pp_iexpr b
  | Imod (a, b) -> Format.fprintf fmt "(%a %% %a)" pp_iexpr a pp_iexpr b
  | Imin (a, b) -> Format.fprintf fmt "min(%a, %a)" pp_iexpr a pp_iexpr b
  | Imax (a, b) -> Format.fprintf fmt "max(%a, %a)" pp_iexpr a pp_iexpr b

let rec pp_bexpr fmt = function
  | Blt (a, b) -> Format.fprintf fmt "%a < %a" pp_iexpr a pp_iexpr b
  | Ble (a, b) -> Format.fprintf fmt "%a <= %a" pp_iexpr a pp_iexpr b
  | Beq (a, b) -> Format.fprintf fmt "%a == %a" pp_iexpr a pp_iexpr b
  | Band (a, b) -> Format.fprintf fmt "(%a && %a)" pp_bexpr a pp_bexpr b
  | Bor (a, b) -> Format.fprintf fmt "(%a || %a)" pp_bexpr a pp_bexpr b
  | Bnot a -> Format.fprintf fmt "!(%a)" pp_bexpr a

let unop_name = function
  | Neg -> "neg"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Abs -> "abs"
  | Relu -> "relu"

let rec pp fmt = function
  | Const f -> Format.fprintf fmt "%g" f
  | Cast_int i -> Format.fprintf fmt "float(%a)" pp_iexpr i
  | Access (n, idx) ->
    Format.fprintf fmt "%s[%a]" n
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_iexpr)
      idx
  | Unop (op, a) -> Format.fprintf fmt "%s(%a)" (unop_name op) pp a
  | Binop (Add, a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Binop (Sub, a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Binop (Mul, a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Binop (Div, a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
  | Binop (Max, a, b) -> Format.fprintf fmt "max(%a, %a)" pp a pp b
  | Binop (Min, a, b) -> Format.fprintf fmt "min(%a, %a)" pp a pp b
  | Binop (Pow, a, b) -> Format.fprintf fmt "pow(%a, %a)" pp a pp b
  | Select (c, a, b) ->
    Format.fprintf fmt "select(%a, %a, %a)" pp_bexpr c pp a pp b

let to_string e = Format.asprintf "%a" pp e

let rec simplify_iexpr e =
  let binop mk fold a b =
    let a = simplify_iexpr a and b = simplify_iexpr b in
    match (a, b) with Int x, Int y -> Int (fold x y) | _ -> mk a b
  in
  match e with
  | Int _ | Axis _ -> e
  | Iadd (a, b) -> (
    match binop (fun a b -> Iadd (a, b)) ( + ) a b with
    | Iadd (Int 0, x) | Iadd (x, Int 0) -> x
    | x -> x)
  | Isub (a, b) -> (
    match binop (fun a b -> Isub (a, b)) ( - ) a b with
    | Isub (x, Int 0) -> x
    | x -> x)
  | Imul (a, b) -> (
    match binop (fun a b -> Imul (a, b)) ( * ) a b with
    | Imul (Int 1, x) | Imul (x, Int 1) -> x
    | Imul (Int 0, _) | Imul (_, Int 0) -> Int 0
    | x -> x)
  | Idiv (a, b) -> (
    let a = simplify_iexpr a and b = simplify_iexpr b in
    match (a, b) with
    | Int x, Int y when y <> 0 ->
      Int (if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y)
    | x, Int 1 -> x
    | _ -> Idiv (a, b))
  | Imod (a, b) -> (
    let a = simplify_iexpr a and b = simplify_iexpr b in
    match (a, b) with
    | Int x, Int y when y <> 0 ->
      Int
        (let r = x mod y in
         if r < 0 then r + abs y else r)
    | _, Int 1 -> Int 0
    | _ -> Imod (a, b))
  | Imin (a, b) -> (
    let a = simplify_iexpr a and b = simplify_iexpr b in
    match (a, b) with
    | Int x, Int y -> Int (min x y)
    | _ -> if a = b then a else Imin (a, b))
  | Imax (a, b) -> (
    let a = simplify_iexpr a and b = simplify_iexpr b in
    match (a, b) with
    | Int x, Int y -> Int (max x y)
    | _ -> if a = b then a else Imax (a, b))

let rec simplify_bexpr e =
  match e with
  | Blt (a, b) -> Blt (simplify_iexpr a, simplify_iexpr b)
  | Ble (a, b) -> Ble (simplify_iexpr a, simplify_iexpr b)
  | Beq (a, b) -> Beq (simplify_iexpr a, simplify_iexpr b)
  | Band (a, b) -> Band (simplify_bexpr a, simplify_bexpr b)
  | Bor (a, b) -> Bor (simplify_bexpr a, simplify_bexpr b)
  | Bnot a -> Bnot (simplify_bexpr a)

exception Not_static

let static_bexpr e =
  let fail _ = raise Not_static in
  match eval_bexpr fail e with b -> Some b | exception Not_static -> None

let rec simplify e =
  match e with
  | Const _ -> e
  | Cast_int i -> Cast_int (simplify_iexpr i)
  | Access (n, idx) -> Access (n, List.map simplify_iexpr idx)
  | Unop (op, a) -> Unop (op, simplify a)
  | Binop (op, a, b) -> Binop (op, simplify a, simplify b)
  | Select (c, a, b) -> (
    let c = simplify_bexpr c in
    match static_bexpr c with
    | Some true -> simplify a
    | Some false -> simplify b
    | None -> Select (c, simplify a, simplify b))
