(** Evolutionary search (§5.1).

    Fine-tunes a population of complete programs by mutation and
    crossover, using the learned cost model as the fitness function.
    Programs are step histories; every operator edits the history and
    re-validates it with the constrained replay of
    {!Ansor_sketch.Annotate.replay_constrained} followed by a lowering
    check, mirroring the paper's "Ansor further verifies the merged
    programs" — offspring that do not verify are discarded.  Offspring
    that replay and lower but carry a provable data race (an
    [Error]-severity diagnostic from {!Ansor_analysis.Analysis}, e.g. a
    [Parallel] annotation on a reduction iterator) are discarded before
    they can reach the measurer; every such rejection fires the
    [on_reject] callback, which telemetry counts as
    [statically_rejected].

    Operators:
    - {e tile-size mutation}: moves a factor between two levels of one
      split, keeping the product equal to the loop length; splits of
      fusion consumers are re-derived from the producer's sizes;
    - {e annotation mutation}: flips or drops a parallel / vectorize /
      unroll annotation, or shrinks a parallel fuse;
    - {e pragma mutation}: re-draws [auto_unroll_max_step];
    - {e computation-location mutation}: moves a fused producer to a
      coarser tile level or back to the target's top;
    - {e node-based crossover}: per DAG node, inherits the tile sizes and
      annotation steps from the parent whose statements the cost model
      scores higher. *)

open Ansor_te
open Ansor_sched

type config = {
  population : int;
  generations : int;
  crossover_prob : float;
      (** probability an offspring comes from crossover rather than
          mutation *)
  greedy_node_prob : float;
      (** probability crossover picks a node's genes from the
          better-scoring parent rather than a random one *)
  mutate_annotations : bool;
      (** allow annotation / pragma / computation-location mutations;
          disabled for template-space baselines whose annotation policy is
          fixed *)
}

val default_config : config
(** population 128, 4 generations, 15% crossover. *)

type scored = { state : State.t; fitness : float }

val evolve :
  ?on_reject:(unit -> unit) ->
  ?scorer:Ansor_cost_model.Score_service.t ->
  Ansor_util.Rng.t ->
  config ->
  Ansor_sketch.Policy.t ->
  Dag.t ->
  model:Ansor_cost_model.Cost_model.t ->
  init:State.t list ->
  out:int ->
  scored list
(** Runs the configured number of generations starting from [init]
    (sampled programs plus previously-measured good ones) and returns the
    [out] best {e distinct} programs seen, best first.  With an untrained
    model all fitnesses are 0 and selection degenerates to uniform, as in
    the paper's first iteration.

    When [scorer] is given, each generation is fitness-scored in one
    batched {!Ansor_cost_model.Score_service.score_states} call (parallel
    lowering/featurization, cross-generation feature cache) instead of
    per-child sequential scoring; the caller must have installed [model]
    into the scorer ({!Ansor_cost_model.Score_service.sync}).  Results —
    including the RNG stream — are bit-identical to the sequential path
    at any worker count. *)

(** The individual operators, exposed for testing and for the ablation
    benchmarks. Each returns [None] when the edited history fails
    verification. *)

val mutate_tile_sizes :
  ?on_reject:(unit -> unit) ->
  Ansor_util.Rng.t -> Dag.t -> State.t -> State.t option

val mutate_annotation :
  ?on_reject:(unit -> unit) ->
  Ansor_util.Rng.t -> Dag.t -> State.t -> State.t option

val mutate_pragma :
  ?on_reject:(unit -> unit) ->
  Ansor_util.Rng.t -> Ansor_sketch.Policy.t -> Dag.t -> State.t -> State.t option

val mutate_location :
  ?on_reject:(unit -> unit) ->
  Ansor_util.Rng.t -> Dag.t -> State.t -> State.t option

val crossover :
  ?on_reject:(unit -> unit) ->
  ?scorer:Ansor_cost_model.Score_service.t ->
  Ansor_util.Rng.t ->
  greedy_node_prob:float ->
  Dag.t ->
  model:Ansor_cost_model.Cost_model.t ->
  State.t ->
  State.t ->
  State.t option
(** [scorer], when given, serves the per-node parent scores from its
    feature/score cache instead of featurizing both parents afresh. *)

val node_of_stage : string -> string
(** Maps derived stage names (["C.local"], ["C.rf"]) back to their DAG
    node (["C"]): the granularity of crossover. *)

val verify :
  ?on_reject:(unit -> unit) -> Dag.t -> Step.t list -> State.t option
(** Replays an edited history ([fill:Keep]), checks it lowers, and
    statically rejects programs the race detector proves wrong —
    evolution's own offspring gate, exposed so the coordinate-descent
    stage sends its neighbors through the identical filter.  [on_reject]
    fires only for static-analysis rejections. *)

val consumer_stages : Step.t list -> string list
(** Stages whose splits are re-derived from a producer ([Compute_at]
    targets); their split steps must not be edited directly. *)

(** Evolution-plateau detector: the trigger signal for the exploitation
    descent stage.  [observe] is fed the tuner's best-so-far latency
    after each evolutionary round; it returns — and [stalled] keeps
    reporting — [true] once [patience] consecutive observations fail to
    strictly improve it. *)
module Plateau : sig
  type t

  val create : patience:int -> t

  val observe : t -> float -> bool
  (** Feed one post-round best latency; [true] if now stalled. *)

  val stalled : t -> bool

  val stall : t -> int
  (** Consecutive non-improving observations so far (for snapshots). *)

  val restore : patience:int -> best:float -> stall:int -> t
  (** Rebuilds the detector from snapshot state. *)
end
