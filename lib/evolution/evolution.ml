open Ansor_te
open Ansor_sched
module Rng = Ansor_util.Rng
module Factorize = Ansor_util.Factorize
module Annotate = Ansor_sketch.Annotate
module Cost_model = Ansor_cost_model.Cost_model
module Score_service = Ansor_cost_model.Score_service

type config = {
  population : int;
  generations : int;
  crossover_prob : float;
  greedy_node_prob : float;
  mutate_annotations : bool;
}

let default_config =
  {
    population = 128;
    generations = 4;
    crossover_prob = 0.15;
    greedy_node_prob = 0.8;
    mutate_annotations = true;
  }

type scored = { state : State.t; fitness : float }

let node_of_stage name =
  let strip suffix s =
    if Filename.check_suffix s suffix then
      String.sub s 0 (String.length s - String.length suffix)
    else s
  in
  strip ".local" (strip ".rf" name)

(* Replays an edited history, checks it lowers, and statically rejects
   mutants the race detector proves wrong — the verification step of
   §5.1 plus the pre-measurement filter.  [on_reject] fires only for the
   static-analysis rejections (telemetry's [statically_rejected]);
   replay/lowering failures are ordinary dead offspring. *)
let verify ?on_reject dag steps =
  match Annotate.replay_constrained dag steps ~fill:Annotate.Keep with
  | Error _ -> None
  | Ok st -> (
    match Lower.lower st with
    | exception State.Illegal _ -> None
    | prog ->
      if Ansor_analysis.Analysis.static_errors prog = [] then Some st
      else begin
        Option.iter (fun f -> f ()) on_reject;
        None
      end)

let steps_of (st : State.t) = st.history

(* Stages whose splits are derived from a producer's sizes (compute_at
   targets): their splits must not be mutated directly. *)
let consumer_stages steps =
  List.filter_map
    (function Step.Compute_at { target; _ } -> Some target | _ -> None)
    steps

let replace_nth l n x = List.mapi (fun i y -> if i = n then x else y) l

let mutate_tile_sizes ?on_reject rng dag st =
  let steps = steps_of st in
  let consumers = consumer_stages steps in
  let candidates =
    List.filteri (fun _ _ -> true) steps
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           match (s : Step.t) with
           | Step.Split { stage; iv; lengths; _ }
             when List.length lengths >= 2
                  && (not (List.mem stage consumers))
                  && List.exists (fun l -> l > 1) lengths ->
             Some (i, stage, iv, lengths)
           | _ -> None)
  in
  match candidates with
  | [] -> None
  | _ ->
    let i, stage, iv, lengths = Rng.choice_list rng candidates in
    let k = List.length lengths in
    let sources =
      List.filteri (fun _ l -> l > 1) lengths
      |> fun _ ->
      List.filter (fun p -> List.nth lengths p > 1) (List.init k Fun.id)
    in
    let src = Rng.choice_list rng sources in
    let dst =
      let others = List.filter (fun p -> p <> src) (List.init k Fun.id) in
      Rng.choice_list rng others
    in
    let factor =
      (* move either a prime factor (small step) or a larger divisor
         (bigger hop through the tile-size lattice) *)
      let l = List.nth lengths src in
      if Rng.bool rng then Rng.choice_list rng (Factorize.prime_factors l)
      else
        Rng.choice_list rng
          (List.filter (fun d -> d > 1) (Factorize.divisors l))
    in
    let lengths =
      List.mapi
        (fun p l ->
          if p = src then l / factor else if p = dst then l * factor else l)
        lengths
    in
    verify ?on_reject dag
      (replace_nth steps i (Step.Split { stage; iv; lengths; tbd = false }))

let mutate_annotation ?on_reject rng dag st =
  let steps = steps_of st in
  let indexed = List.mapi (fun i s -> (i, s)) steps in
  let ann_edits =
    List.concat_map
      (fun (i, s) ->
        match (s : Step.t) with
        | Step.Annotate { stage; iv; ann } ->
          let flips =
            match ann with
            | Step.Vectorize -> [ Step.Unroll; Step.No_ann; Step.Parallel ]
            | Step.Unroll -> [ Step.Vectorize; Step.No_ann; Step.Parallel ]
            | Step.Parallel -> [ Step.No_ann ]
            | Step.No_ann -> [ Step.Vectorize; Step.Unroll; Step.Parallel ]
          in
          List.map
            (fun ann' -> `Replace (i, Step.Annotate { stage; iv; ann = ann' }))
            flips
        | Step.Fuse { stage; ivs } when List.length ivs >= 3 ->
          (* coarsen the parallel granularity: fuse one level fewer *)
          let shorter = List.filteri (fun j _ -> j < List.length ivs - 1) ivs in
          [ `Replace (i, Step.Fuse { stage; ivs = shorter }) ]
        | _ -> [])
      indexed
  in
  (* also annotate a currently-bare iterator: the step semantics accept
     any placement (e.g. Parallel over a reduction axis) and the static
     race filter in [verify] rejects the mutants that would miscompile *)
  let fresh_edits =
    List.concat_map
      (fun name ->
        let s = State.find_stage st name in
        List.concat_map
          (fun iv ->
            if (State.ivar s iv).State.ann = Step.No_ann then
              List.map
                (fun ann -> `Append (Step.Annotate { stage = name; iv; ann }))
                [ Step.Parallel; Step.Vectorize; Step.Unroll ]
            else [])
          s.State.leaves)
      (State.stage_names st)
  in
  match ann_edits @ fresh_edits with
  | [] -> None
  | edits -> (
    match Rng.choice_list rng edits with
    | `Replace (i, step) -> verify ?on_reject dag (replace_nth steps i step)
    | `Append step -> verify ?on_reject dag (steps @ [ step ]))

let mutate_pragma ?on_reject rng (policy : Ansor_sketch.Policy.t) dag st =
  let steps = steps_of st in
  let candidates =
    List.mapi (fun i s -> (i, s)) steps
    |> List.filter_map (fun (i, s) ->
           match (s : Step.t) with
           | Step.Pragma_unroll { stage; max_step } -> Some (i, stage, max_step)
           | _ -> None)
  in
  match candidates with
  | [] -> None
  | _ ->
    let i, stage, old = Rng.choice_list rng candidates in
    let choices = List.filter (fun v -> v <> old) policy.unroll_steps in
    if choices = [] then None
    else
      let max_step = Rng.choice_list rng choices in
      verify ?on_reject dag
        (replace_nth steps i (Step.Pragma_unroll { stage; max_step }))

let mutate_location ?on_reject rng dag st =
  let steps = steps_of st in
  (* last compute_at per stage decides its location *)
  let last_by_stage = Hashtbl.create 4 in
  List.iteri
    (fun i s ->
      match (s : Step.t) with
      | Step.Compute_at { stage; _ } -> Hashtbl.replace last_by_stage stage i
      | _ -> ())
    steps;
  let candidates = Hashtbl.fold (fun _ i acc -> i :: acc) last_by_stage [] in
  match candidates with
  | [] -> None
  | _ -> (
    let i = Rng.choice_list rng candidates in
    match List.nth steps i with
    | Step.Compute_at { stage; target; target_iv; bindings } ->
      let coarser = List.filteri (fun j _ -> j mod 2 = 0) bindings in
      let variants =
        List.filter (fun b -> b <> bindings) [ coarser; [] ]
      in
      if variants = [] then None
      else
        let bindings = Rng.choice_list rng variants in
        (* appending keeps the original step so consumer-split constraints
           stay solvable; the last step wins for placement *)
        verify ?on_reject dag
          (steps @ [ Step.Compute_at { stage; target; target_iv; bindings } ])
    | _ -> None)

(* ---- crossover ---------------------------------------------------------- *)

let is_annotation_step seen_compute_at (s : Step.t) =
  match s with
  | Step.Annotate _ | Step.Pragma_unroll _ | Step.Fuse _ -> true
  | Step.Compute_at { stage; _ } -> Hashtbl.mem seen_compute_at stage
  | _ -> false

(* Splits a history into (structural steps, annotation steps); the first
   compute_at of each stage is structural, repeats are annotations. *)
let classify steps =
  let seen = Hashtbl.create 4 in
  List.partition_map
    (fun (s : Step.t) ->
      if is_annotation_step seen s then Right s
      else begin
        (match s with
        | Step.Compute_at { stage; _ } -> Hashtbl.replace seen stage ()
        | _ -> ());
        Left s
      end)
    steps

(* [stmt_scores prog] must return one score per innermost statement in
   [Access.analyze] order — either the plain model or the caching
   scoring service (bit-identical by its contract). *)
let node_scores stmt_scores (st : State.t) =
  match Lower.lower st with
  | exception State.Illegal _ -> fun _ -> 0.0
  | prog ->
    let infos = Access.analyze prog in
    let scores = stmt_scores prog in
    let tbl = Hashtbl.create 8 in
    List.iter2
      (fun (info : Access.stmt_info) s ->
        let node = node_of_stage info.stmt.stage in
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl node) in
        Hashtbl.replace tbl node (cur +. s))
      infos scores;
    fun node -> Option.value ~default:0.0 (Hashtbl.find_opt tbl node)

let stmt_scores_fn ?scorer model =
  match scorer with
  | Some sc -> Score_service.stmt_scores_prog sc
  | None ->
    fun prog ->
      Cost_model.score_stmts model
        (List.map Ansor_features.Features.of_stmt_info (Access.analyze prog))

let crossover ?on_reject ?scorer rng ~greedy_node_prob dag ~model a b =
  let stmt_scores = stmt_scores_fn ?scorer model in
  let score_a = node_scores stmt_scores a
  and score_b = node_scores stmt_scores b in
  let nodes =
    Array.to_list (Dag.ops dag)
    |> List.filter_map (fun op ->
           match op with
           | Op.Compute { name; _ } -> Some name
           | Op.Placeholder _ -> None)
  in
  let choice = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let pick_greedy = Rng.float rng 1.0 < greedy_node_prob in
      let from_a =
        if pick_greedy then score_a n >= score_b n else Rng.bool rng
      in
      Hashtbl.replace choice n from_a)
    nodes;
  let from_a stage =
    Option.value ~default:true (Hashtbl.find_opt choice (node_of_stage stage))
  in
  let a_structural, a_ann = classify (steps_of a) in
  let b_structural, b_ann = classify (steps_of b) in
  let find_b_lengths ~stage ~iv ~k ~rf =
    List.find_map
      (fun (s : Step.t) ->
        match (s, rf) with
        | Step.Split { stage = s2; iv = iv2; lengths; _ }, false
          when String.equal s2 stage && iv2 = iv && List.length lengths = k ->
          Some lengths
        | Step.Rfactor { stage = s2; iv = iv2; lengths; _ }, true
          when String.equal s2 stage && iv2 = iv && List.length lengths = k ->
          Some lengths
        | _ -> None)
      b_structural
  in
  let exception Mismatch in
  match
    List.map
      (fun (s : Step.t) ->
        match s with
        | Step.Split { stage; iv; lengths; tbd } when not (from_a stage) -> (
          match find_b_lengths ~stage ~iv ~k:(List.length lengths) ~rf:false with
          | Some lengths -> Step.Split { stage; iv; lengths; tbd }
          | None -> raise Mismatch)
        | Step.Rfactor { stage; iv; lengths; tbd } when not (from_a stage) -> (
          match find_b_lengths ~stage ~iv ~k:(List.length lengths) ~rf:true with
          | Some lengths -> Step.Rfactor { stage; iv; lengths; tbd }
          | None -> raise Mismatch)
        | s -> s)
      a_structural
  with
  | exception Mismatch -> None
  | structural ->
    let ann =
      List.filter (fun s -> from_a (Step.stage_of s)) a_ann
      @ List.filter (fun s -> not (from_a (Step.stage_of s))) b_ann
    in
    verify ?on_reject dag (structural @ ann)

(* ---- main loop ---------------------------------------------------------- *)

let evolve ?on_reject ?scorer rng config policy dag ~model ~init ~out =
  (* Batch fitness: one call per generation instead of one lowering +
     featurization per child.  The scoring service's bit-identity
     contract keeps results equal to the sequential per-state fold, and
     fitness consumes no RNG, so deferring it after child generation
     leaves the random stream untouched. *)
  let fitness_all states =
    match scorer with
    | Some sc -> Score_service.score_states sc states
    | None ->
      List.map
        (fun st ->
          match Lower.lower st with
          | exception State.Illegal _ -> Float.neg_infinity
          | prog ->
            Cost_model.score model (Ansor_features.Features.of_prog prog))
        states
  in
  let best = Hashtbl.create 64 in
  let remember st f =
    let key = Step.history_key st.State.history in
    match Hashtbl.find_opt best key with
    | Some (_, f0) when f0 >= f -> ()
    | _ -> Hashtbl.replace best key (st, f)
  in
  let population =
    let fits = fitness_all init in
    Array.of_list
      (List.map2 (fun st f -> { state = st; fitness = f }) init fits)
  in
  Array.iter (fun s -> remember s.state s.fitness) population;
  let pop = ref population in
  for _gen = 1 to config.generations do
    let cur = !pop in
    let n = Array.length cur in
    if n > 0 then begin
      let min_fit =
        Array.fold_left (fun acc s -> Float.min acc s.fitness) infinity cur
      in
      let weights =
        Array.map (fun s -> s.fitness -. min_fit +. 1e-3) cur
      in
      let select () = cur.(Rng.weighted_index rng weights).state in
      let target_size = max config.population n in
      (* elitism: the best tenth survives unchanged *)
      let sorted = Array.copy cur in
      Array.sort (fun a b -> compare b.fitness a.fitness) sorted;
      let elite = max 1 (target_size / 10) in
      let n_elites = min elite (Array.length sorted) in
      let elites = List.init n_elites (fun i -> sorted.(i)) in
      (* generate the whole offspring wave first (all RNG consumption),
         then score it in one batch *)
      let children_rev = ref [] in
      for _ = 1 to target_size - n_elites do
        let parent = select () in
        let child =
          if Rng.float rng 1.0 < config.crossover_prob then
            crossover ?on_reject ?scorer rng
              ~greedy_node_prob:config.greedy_node_prob dag ~model parent
              (select ())
          else begin
            (* chain 1-3 mutations (geometric): multi-step moves escape
               plateaus that single-factor steps cannot *)
            let mutate_once st =
              if config.mutate_annotations then
                match Rng.int rng 4 with
                | 0 -> mutate_tile_sizes ?on_reject rng dag st
                | 1 -> mutate_annotation ?on_reject rng dag st
                | 2 -> mutate_pragma ?on_reject rng policy dag st
                | _ -> mutate_location ?on_reject rng dag st
              else mutate_tile_sizes ?on_reject rng dag st
            in
            let rec chain st changed =
              match mutate_once st with
              | None -> if changed then Some st else None
              | Some st' ->
                if Rng.float rng 1.0 < 0.2 then chain st' true else Some st'
            in
            chain parent false
          end
        in
        let st = match child with Some st -> st | None -> parent in
        children_rev := st :: !children_rev
      done;
      let children = List.rev !children_rev in
      let fits = fitness_all children in
      let scored_children =
        List.map2 (fun st f -> { state = st; fitness = f }) children fits
      in
      List.iter (fun s -> remember s.state s.fitness) scored_children;
      (* same array layout the incremental loop produced:
         [c_m .. c_1, elite_{e-1} .. elite_0] *)
      pop := Array.of_list (List.rev_append scored_children (List.rev elites))
    end
  done;
  Hashtbl.fold (fun _ (st, f) acc -> { state = st; fitness = f } :: acc) best []
  |> List.sort (fun a b -> compare b.fitness a.fitness)
  |> List.filteri (fun i _ -> i < out)

(* Plateau detector: the trigger signal for the exploitation descent
   stage.  Purely observational — the tuner feeds it the best-so-far
   latency after each evolutionary round and a stall is reported once
   [patience] consecutive observations fail to improve it. *)
module Plateau = struct
  type t = { patience : int; mutable best : float; mutable stall : int }

  let create ~patience =
    { patience = max 1 patience; best = infinity; stall = 0 }

  let observe t best_latency =
    if best_latency < t.best then begin
      t.best <- best_latency;
      t.stall <- 0
    end
    else t.stall <- t.stall + 1;
    t.stall >= t.patience

  let stalled t = t.stall >= t.patience
  let stall t = t.stall

  let restore ~patience ~best ~stall =
    { patience = max 1 patience; best; stall = max 0 stall }
end
