(** The schedule registry: a persistent best-schedule database built from
    {!Ansor_search.Record} logs — the serving side's answer to "which
    program do I run for this workload?".

    Ansor ships measurement logs with applications and replays the best
    record per subgraph at compile time (§7); AutoTVM institutionalised
    the same idea as a tuning database.  A registry holds exactly one
    entry per {!Ansor_search.Task.key} — the lowest-latency record ever
    seen for that task — and persists as a versioned text file:

    {v
ansor-registry-v1
<record line>    (one per task key, Record.to_line format)
...
    v}

    Saves go through {!Ansor_util.Atomic_file}, so an interrupted save
    never truncates an existing registry.

    {b Resolution ladder.}  {!resolve} answers every query with a
    schedule, never an exception:

    + {e exact}: the task key is registered and its steps replay on the
      query DAG (validated statically);
    + {e adapted}: an {e untuned} workload is answered by the nearest
      tuned task of the same structure class (op kinds with concrete
      sizes blanked, the scheduler's Appendix-A similarity notion),
      ranked by log-scale shape distance; split/rfactor tile sizes are
      re-fit to the query's extents, and the adapted program is
      re-validated with {!Ansor_sched.Validate};
    + {e default}: when nothing replays, the naive unscheduled program
      ({!Ansor_sched.State.init}). *)

open Ansor_search

type t

val create : unit -> t

val size : t -> int

val keys : t -> string list
(** Registered task keys, sorted. *)

val entries : t -> Record.entry list
(** One best entry per key, sorted by key (deterministic). *)

val find : t -> task_key:string -> Record.entry option

val add : t -> Record.entry -> [ `Added | `Improved | `Kept ]
(** Keeps the per-key best: [`Added] for a new key, [`Improved] when the
    entry beats the stored latency, [`Kept] when the stored entry stays. *)

val add_all : t -> Record.entry list -> int
(** Folds {!add}; returns how many entries changed the registry. *)

val of_entries : Record.entry list -> t

val merge_into : dst:t -> t -> int
(** Merges every entry of the source, keeping per-key bests; returns how
    many changed [dst]. *)

val prune : t -> keep:(Record.entry -> bool) -> int
(** Drops entries failing the predicate (e.g. another machine's keys, or
    latencies above a deadline); returns how many were removed. *)

(** {1 Persistence} *)

val save : path:string -> t -> unit
(** Atomic replace (write-temp + rename). *)

val load : path:string -> (t, string) result
(** Strict: verifies the version header and every line; [Error] describes
    the first problem. *)

val load_salvage : path:string -> (t * int, string) result
(** Tolerates malformed record lines (e.g. the torn final line of a file
    being rewritten by a live session), returning the number skipped.
    Still requires the version header: a raw record log is not silently
    accepted as a registry. *)

val build_from_logs : paths:string list -> (t * int, string) result
(** Builds a registry from record logs written by [tune --save]
    (salvage-loaded), keeping per-key bests across all of them.  Returns
    the registry and the number of malformed lines skipped.  [Error] when
    any log cannot be opened. *)

val compact_file : path:string -> (int, string) result
(** Rewrites a registry file in canonical form (header + one best entry
    per key, sorted); returns the number of lines dropped.  Heals files
    produced by concatenation or older versions of the format. *)

(** {1 Resolution} *)

type outcome =
  | Exact
  | Adapted of { source_key : string; distance : float }
      (** served by re-fitting the nearest tuned task's schedule *)
  | Defaulted of string  (** the reason no tuned schedule applied *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string

val resolve : t -> Task.t -> Ansor_sched.State.t * outcome
(** Walks the resolution ladder for a task; total — never raises.  The
    returned state lowers and passes {!Ansor_sched.Validate.check} except
    in the [Defaulted] case, where it is the naive program (always
    legal). *)

val similar_keys : t -> task_key:string -> (string * float) list
(** Registered keys of the query's structure class (excluding the query
    itself), with log-scale shape distances, nearest first — the
    candidate order {!resolve} tries.  Exposed for tests and
    [registry show]. *)
