open Ansor_search
module State = Ansor_sched.State
module Step = Ansor_sched.Step
module Lower = Ansor_sched.Lower
module Validate = Ansor_sched.Validate
module Factorize = Ansor_util.Factorize
module Task_key = Ansor_util.Task_key

let magic = "ansor-registry-v1"

type t = (string, Record.entry) Hashtbl.t

let create () : t = Hashtbl.create 64
let size (t : t) = Hashtbl.length t

let keys (t : t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let entries (t : t) = List.map (Hashtbl.find t) (keys t)
let find (t : t) ~task_key = Hashtbl.find_opt t task_key

let add (t : t) (e : Record.entry) =
  match Hashtbl.find_opt t e.Record.task_key with
  | None ->
    Hashtbl.replace t e.Record.task_key e;
    `Added
  | Some b when e.Record.latency < b.Record.latency ->
    Hashtbl.replace t e.Record.task_key e;
    `Improved
  | Some _ -> `Kept

let add_all t es =
  List.fold_left
    (fun n e -> match add t e with `Kept -> n | `Added | `Improved -> n + 1)
    0 es

let of_entries es =
  let t = create () in
  ignore (add_all t es);
  t

let merge_into ~dst src = add_all dst (entries src)

let prune (t : t) ~keep =
  let doomed =
    Hashtbl.fold (fun k e acc -> if keep e then acc else k :: acc) t []
  in
  List.iter (Hashtbl.remove t) doomed;
  List.length doomed

(* ---- persistence -------------------------------------------------------- *)

let save ~path t =
  Ansor_util.Atomic_file.write ~path (fun oc ->
      output_string oc magic;
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (Record.to_line e);
          output_char oc '\n')
        (entries t))

let load_lines ~path ~strict =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file ->
          Error (Printf.sprintf "%s: empty file (missing %s header)" path magic)
        | header when not (String.equal header magic) ->
          Error
            (Printf.sprintf
               "%s: not a schedule registry (expected %s header; raw record \
                logs go through `registry build`)"
               path magic)
        | _header ->
          let t = create () in
          let skipped = ref 0 in
          let rec go lineno =
            match input_line ic with
            | exception End_of_file -> Ok (t, !skipped)
            | "" -> go (lineno + 1)
            | line -> (
              match Record.of_line line with
              | Ok e ->
                ignore (add t e);
                go (lineno + 1)
              | Error msg ->
                if strict then
                  Error (Printf.sprintf "%s: line %d: %s" path lineno msg)
                else begin
                  incr skipped;
                  go (lineno + 1)
                end)
          in
          go 2)

let load ~path =
  Result.map (fun (t, _) -> t) (load_lines ~path ~strict:true)

let load_salvage ~path = load_lines ~path ~strict:false

let build_from_logs ~paths =
  let t = create () in
  let rec go skipped = function
    | [] -> Ok (t, skipped)
    | path :: rest -> (
      match Record.load_salvage ~path with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok (es, s) ->
        ignore (add_all t es);
        go (skipped + s) rest)
  in
  go 0 paths

let compact_file ~path =
  match load_salvage ~path with
  | Error msg -> Error msg
  | Ok (t, _skipped) ->
    (* physical entry-line count before, for an honest drop count (stale
       non-best duplicates and malformed lines all get dropped) *)
    let before =
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = ref 0 in
          (try
             while true do
               if not (String.equal (input_line ic) "") then incr n
             done
           with End_of_file -> ());
          max 0 (!n - 1))
    in
    save ~path t;
    Ok (max 0 (before - size t))

(* ---- similarity --------------------------------------------------------- *)

(* Structure class: the task key with concrete sizes blanked — the same
   grouping the task scheduler uses for its Appendix-A similarity term
   and the model store uses for pretrained-model lookup.  The shared
   definition lives in Ansor_util.Task_key so the ladders never diverge. *)
let class_key = Task_key.class_key
let shape_distance = Task_key.shape_distance

let similar_keys (t : t) ~task_key =
  let cls = class_key task_key in
  Hashtbl.fold
    (fun k _ acc ->
      if String.equal k task_key || not (String.equal (class_key k) cls) then
        acc
      else
        let d = shape_distance k task_key in
        if Float.is_finite d then (k, d) :: acc else acc)
    t []
  |> List.sort (fun (k1, d1) (k2, d2) ->
         match Float.compare d1 d2 with 0 -> String.compare k1 k2 | c -> c)

(* ---- adaptation --------------------------------------------------------- *)

(* Re-fit a split's tile sizes to a new extent: same number of parts,
   product equal to the extent.  Prefer rescaling only the outermost
   length — that keeps every inner tile extent identical to the recorded
   schedule, so splits of different stages over the same loop refit
   consistently and cross-stage bindings (compute_at) still line up.
   When the extent ratio is not integral, fall back to the factorization
   log-closest to the recorded sizes (inner tiles may then drift, and a
   later binding step can fail — the adapt loop handles that). *)
let refit_lengths ~extent lengths =
  let k = List.length lengths in
  let product = List.fold_left ( * ) 1 lengths in
  let rescaled =
    match lengths with
    | l0 :: rest when product > 0 && extent mod product = 0 ->
      Some ((l0 * (extent / product)) :: rest)
    | l0 :: rest
      when extent > 0 && product mod extent = 0
           && l0 mod (product / extent) = 0 ->
      Some ((l0 / (product / extent)) :: rest)
    | _ -> None
  in
  match rescaled with
  | Some _ -> rescaled
  | None -> (
    let target = List.map (fun l -> log (float_of_int (max 1 l))) lengths in
    let score cand =
      List.fold_left2
        (fun acc c t ->
          let d = log (float_of_int c) -. t in
          acc +. (d *. d))
        0.0 cand target
    in
    match Factorize.factorizations extent k with
    | [] -> None
    | cands ->
      let best =
        List.fold_left
          (fun (bc, bs) c ->
            let s = score c in
            if s < bs then (c, s) else (bc, bs))
          ([], infinity) cands
      in
      (match best with [], _ -> None | c, _ -> Some c))

let refit_step st (step : Step.t) =
  let extent_of stage_name iv =
    match State.find_stage st stage_name with
    | exception Not_found -> None
    | stage -> (
      match State.ivar stage iv with
      | info -> Some info.State.extent
      | exception _ -> None)
  in
  match step with
  | Step.Split { stage; iv; lengths; tbd } ->
    Option.bind (extent_of stage iv) (fun extent ->
        Option.map
          (fun lengths -> Step.Split { stage; iv; lengths; tbd })
          (refit_lengths ~extent lengths))
  | Step.Rfactor { stage; iv; lengths; tbd } ->
    Option.bind (extent_of stage iv) (fun extent ->
        Option.map
          (fun lengths -> Step.Rfactor { stage; iv; lengths; tbd })
          (refit_lengths ~extent lengths))
  | _ -> None

(* Replay a recorded history on a (possibly different-shaped) DAG,
   re-fitting tile sizes when the recorded ones no longer divide the query
   extents.  Total: [None] when some step cannot be made to apply. *)
let adapt_replay dag steps =
  let rec go st = function
    | [] -> Some st
    | step :: rest -> (
      match State.apply_checked st step with
      | Ok st' -> go st' rest
      | Error _ -> (
        match refit_step st step with
        | None -> None
        | Some step' -> (
          match State.apply_checked st step' with
          | Ok st' -> go st' rest
          | Error _ -> None)))
  in
  match State.init dag with
  | exception _ -> None
  | st0 -> ( try go st0 steps with _ -> None)

(* ---- resolution --------------------------------------------------------- *)

type outcome =
  | Exact
  | Adapted of { source_key : string; distance : float }
  | Defaulted of string

let outcome_to_string = function
  | Exact -> "exact"
  | Adapted { source_key; distance } ->
    Printf.sprintf "adapted from %s (distance %.3f)" source_key distance
  | Defaulted reason -> Printf.sprintf "default (%s)" reason

let pp_outcome fmt o = Format.pp_print_string fmt (outcome_to_string o)

(* The serving bar: the state must lower, pass static validation, carry
   no provable data race, and certify memory-safe ([static_errors]
   includes the affine bounds certifier, so a schedule whose accesses
   carry a constructive out-of-bounds witness is never served).
   Interpreting it would be exact but shape-bounded; the static checks
   work at any size (see lib/sched/validate.mli and lib/analysis) —
   essential for similarity-adapted schedules, whose replayed histories
   were never measured on this exact shape and whose tile re-fitting
   rescales extents: every adapted lowering is re-certified here before
   it reaches a caller. *)
let lowers_validated st =
  match Lower.lower st with
  | exception _ -> false
  | prog -> Ansor_analysis.Analysis.static_errors prog = []

let try_entry dag (e : Record.entry) =
  match State.replay_checked dag e.Record.steps with
  | Ok st when lowers_validated st -> Some st
  | _ -> (
    match adapt_replay dag e.Record.steps with
    | Some st when lowers_validated st -> Some st
    | _ -> None)

let resolve (t : t) (task : Task.t) =
  let dag = task.Task.dag in
  let key = Task.key task in
  let exact =
    match find t ~task_key:key with
    | None -> None
    | Some e -> Option.map (fun st -> (st, Exact)) (try_entry dag e)
  in
  match exact with
  | Some r -> r
  | None -> (
    let rec nearest = function
      | [] -> None
      | (k, d) :: rest -> (
        match try_entry dag (Hashtbl.find t k) with
        | Some st -> Some (st, Adapted { source_key = k; distance = d })
        | None -> nearest rest)
    in
    match nearest (similar_keys t ~task_key:key) with
    | Some r -> r
    | None ->
      let reason =
        if Hashtbl.mem t key then "registered steps do not replay"
        else if similar_keys t ~task_key:key = [] then "no tuned record"
        else "no similar record adapted"
      in
      (State.init dag, Defaulted reason))
