open Ansor_sched
module Toolchain = Ansor_codegen.Toolchain
module Codegen_c = Ansor_codegen.Codegen_c
module Protocol = Ansor_measure_service.Protocol
module Pool = Ansor_measure_service.Pool

type config = {
  warmup : int;
  repeat : int;
  chunk : int;
  cflags : string list;
  guard : bool;
}

(* ANSOR_BOUNDS_CHECK=1 turns on guarded codegen session-wide: every
   emitted access aborts cleanly on an out-of-range offset instead of
   corrupting the harness.  Pair it with the service's [allow_unproven]
   so certifier-[Unknown] programs can still be measured. *)
let guard_requested () =
  match Sys.getenv_opt "ANSOR_BOUNDS_CHECK" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let default_config =
  {
    warmup = 1;
    repeat = 3;
    chunk = 8;
    cflags = Toolchain.native_flags;
    guard = guard_requested ();
  }

let available = Toolchain.available

(* ---- batching ------------------------------------------------------------ *)

(* Split the miss set into contiguous chunks of [chunk] kernels; each chunk
   becomes one translation unit and one compiler invocation.  Contiguity
   keeps the kernel-to-chunk mapping trivial ([global index / chunk]) and
   the emitted TU deterministic for a given miss order. *)
let chunks_of ~chunk (misses : (string * Prog.t) array) =
  let n = Array.length misses in
  let chunk = max 1 chunk in
  let num = (n + chunk - 1) / chunk in
  Array.init num (fun c ->
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      (c, Array.sub misses lo (hi - lo)))

type compiled_chunk = {
  ck_index : int;
  ck_members : (string * Prog.t) array;
  ck_exe : (string, Protocol.failure) result;
      (** path of the chunk executable, or the classified compile failure
          shared by every member *)
}

let deadline_expired = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

(* Wall-clock ceiling for one timing subprocess: the kernel body runs
   [warmup + repeat] times plus buffer setup, so the per-run latency
   ceiling is scaled up and padded; the batch deadline caps it further.
   [None] when neither bound exists. *)
let process_timeout config ~timeout ~deadline =
  let per_run =
    if Float.is_finite timeout && timeout > 0.0 then
      Some ((timeout *. float_of_int (config.warmup + config.repeat)) +. 1.0)
    else None
  in
  let remaining =
    match deadline with
    | None -> None
    | Some d -> Some (Float.max 0.1 (d -. Unix.gettimeofday ()))
  in
  match (per_run, remaining) with
  | None, t | t, None -> t
  | Some a, Some b -> Some (Float.min a b)

(* ---- timing one kernel --------------------------------------------------- *)

let parse_latency lines =
  match lines with
  | first :: _ -> (
    match float_of_string_opt (String.trim first) with
    | Some l when Float.is_finite l && l > 0.0 -> Ok l
    | Some l -> Error (Printf.sprintf "non-positive latency %g" l)
    | None -> Error (Printf.sprintf "unparsable timing output %S" first))
  | [] -> Error "empty timing output"

(* Run-classify-retry loop for one kernel of a compiled chunk.  Mirrors
   the simulator path's retry policy: only [Run_error] (crash, non-zero
   exit, garbage output) is retried — a timeout at the process level means
   the kernel is genuinely over its ceiling, and re-timing it cannot make
   it faster. *)
let time_kernel config ~timeout ~deadline ~max_retries exe idx =
  let args =
    [
      string_of_int idx;
      "time";
      string_of_int config.repeat;
      string_of_int config.warmup;
    ]
  in
  let rec attempt n =
    if deadline_expired deadline then
      { Protocol.out_latency = Error Protocol.Timeout; out_attempts = n - 1 }
    else
      let outcome =
        match
          Toolchain.run ?timeout:(process_timeout config ~timeout ~deadline)
            exe args
        with
        | Ok lines -> (
          match parse_latency lines with
          | Ok latency when latency > timeout -> Error Protocol.Timeout
          | Ok latency -> Ok latency
          | Error msg -> Error (Protocol.Run_error msg))
        | Error (Toolchain.Timed_out _) -> Error Protocol.Timeout
        | Error e -> Error (Protocol.Run_error (Toolchain.run_error_to_string e))
      in
      match outcome with
      | Error (Protocol.Run_error _)
        when n <= max_retries && not (deadline_expired deadline) ->
        attempt (n + 1)
      | outcome -> { Protocol.out_latency = outcome; out_attempts = n }
  in
  attempt 1

(* ---- the runner ---------------------------------------------------------- *)

let runner ?(config = default_config) () :
    Ansor_measure_service.Service.native_runner =
 fun ~timeout ~deadline ~max_retries ~num_workers misses ->
  if Array.length misses = 0 then Protocol.empty_native_report
  else
    Toolchain.with_temp_dir ~prefix:"ansor-native" (fun dir ->
        let chunks = chunks_of ~chunk:config.chunk misses in
        (* stage 1: compile, fanned across the domain pool.  gcc is an
           external process, so parallel compiles do not perturb OCaml-side
           determinism; the emitted source depends only on the programs. *)
        let compile_t0 = Unix.gettimeofday () in
        let expired (c, members) =
          { ck_index = c; ck_members = members; ck_exe = Error Protocol.Timeout }
        in
        let compile (c, members) =
          let progs = Array.to_list (Array.map snd members) in
          let src = Codegen_c.emit_bench_tu ~guard:config.guard progs in
          let exe =
            match
              Toolchain.compile_string ~flags:config.cflags ~dir
                ~basename:(Printf.sprintf "chunk%d" c)
                src
            with
            | Ok exe -> Ok exe
            | Error msg -> Error (Protocol.Compile_error msg)
          in
          { ck_index = c; ck_members = members; ck_exe = exe }
        in
        let compiled =
          Pool.run ?deadline ~on_expired:expired ~num_workers compile chunks
        in
        let compile_seconds = Unix.gettimeofday () -. compile_t0 in
        (* expired chunks never reached gcc: they count in neither the
           invocation nor the submitted-kernel tally *)
        let compiles, kernels =
          Array.fold_left
            (fun (c, k) ck ->
              match ck.ck_exe with
              | Ok _ | Error (Protocol.Compile_error _) ->
                (c + 1, k + Array.length ck.ck_members)
              | Error _ -> (c, k))
            (0, 0) compiled
        in
        (* stage 2: time, sequentially on the calling domain — concurrent
           timing runs would contend for cores and corrupt each other's
           wall-clock. *)
        let run_t0 = Unix.gettimeofday () in
        let outcomes =
          Array.concat
            (Array.to_list
               (Array.map
                  (fun ck ->
                    Array.mapi
                      (fun j (key, _) ->
                        match ck.ck_exe with
                        | Error failure ->
                          (* compile failures and expired chunks consume no
                             trials: nothing ever ran *)
                          ( key,
                            {
                              Protocol.out_latency = Error failure;
                              out_attempts = 0;
                            } )
                        | Ok exe ->
                          ( key,
                            time_kernel config ~timeout ~deadline ~max_retries
                              exe j ))
                      ck.ck_members)
                  compiled))
        in
        let run_seconds = Unix.gettimeofday () -. run_t0 in
        {
          Protocol.nr_outcomes = outcomes;
          nr_compile_seconds = compile_seconds;
          nr_run_seconds = run_seconds;
          nr_compiles = compiles;
          nr_kernels = kernels;
        })
