(** The native measurement backend: gcc-compiled kernels timed on the host
    CPU.

    Where the simulator backend estimates a candidate's latency
    analytically, this backend compiles the lowered program with
    [gcc -O3 -fopenmp -march=native] and times real wall-clock — the
    paper's actual-hardware measurer.  The hot path is {e batch
    compilation}: one translation unit holds up to {!config.chunk} kernels
    (each with its own buffer setup and min-of-[repeat] timing runner, the
    kernel selected by argv index), so a batch of B candidates costs
    [ceil(B / chunk)] compiler invocations instead of B.  Compile jobs fan
    out across the service's domain pool; timing runs stay sequential on
    the calling domain so concurrent kernels cannot contend for cores and
    corrupt each other's measurements.

    The backend plugs into {!Ansor_measure_service.Service} as the
    [native_runner] closure (the service never depends on codegen), so the
    dedup cache, failure classification, retry policy, telemetry and
    checkpointing all compose unchanged:

    - compiler rejections come back as {!Protocol.Compile_error}
      (deterministic — never retried, no trials consumed);
    - crashed or garbage-printing binaries are
      {!Protocol.Run_error} (transient by assumption, retried);
    - kernels over the per-program latency ceiling, or batches over their
      wall-clock deadline, are {!Protocol.Timeout} (not retried:
      re-timing cannot make a kernel faster). *)

type config = {
  warmup : int;  (** untimed runs before measurement (default 1) *)
  repeat : int;  (** timed runs; the minimum is reported (default 3) *)
  chunk : int;  (** kernels per translation unit (default 8) *)
  cflags : string list;  (** default {!Ansor_codegen.Toolchain.native_flags} *)
  guard : bool;
      (** emit bounds-guarded kernels (branch-and-abort per access; see
          {!Ansor_codegen.Codegen_c.guard_helpers}) — defense-in-depth
          when measuring certifier-[Unknown] programs.  Default:
          {!guard_requested}. *)
}

val default_config : config

val guard_requested : unit -> bool
(** Whether [ANSOR_BOUNDS_CHECK] is set to [1]/[true]/[yes]/[on] in the
    environment — the session-wide switch for guarded codegen. *)

val available : unit -> bool
(** Whether the system C compiler works here (memoized probe) — gate
    [--backend native] on this. *)

val runner :
  ?config:config -> unit -> Ansor_measure_service.Service.native_runner
(** The batch measurement entry point, in the shape the service injects:
    compiles the batch's unique cache misses in chunked translation units,
    times every kernel, and reports one classified
    {!Ansor_measure_service.Protocol.outcome} per candidate plus
    compile/run wall-clock attribution. *)
