(** Sim-vs-native cross-check: does the simulator rank real programs the
    way the hardware does?

    The search trusts relative order, not absolute latency — evolution
    keeps whichever candidate scores better.  This report quantifies how
    much of that order survives the jump from the analytical simulator to
    gcc-compiled wall-clock: per task, it samples K random complete
    programs, measures every unique one on both backends, and reports the
    Spearman rank correlation plus top-1 / top-5 agreement.  Exposed on
    the CLI as [ansor xcheck]. *)

type task_report = {
  xr_task : string;
  xr_sampled : int;  (** states drawn from the sampler *)
  xr_unique : int;  (** distinct lowered programs among them *)
  xr_measured : int;  (** programs with an [Ok] native latency *)
  xr_compile_errors : int;
  xr_run_failures : int;  (** native run errors + timeouts *)
  xr_spearman : float;
      (** rank correlation between simulator estimate and native
          wall-clock over the measured programs (0 when fewer than 2) *)
  xr_top1_agree : bool;
      (** both backends pick the same fastest program *)
  xr_top5_overlap : float;
      (** fraction of the simulator's top-5 also in the native top-5 *)
}

type report = {
  x_machine : string;
  x_sample : int;
  x_seed : int;
  x_tasks : task_report list;
}

val check_task :
  ?config:Measure_native.config ->
  sample:int ->
  seed:int ->
  machine:Ansor_machine.Machine.t ->
  string ->
  Ansor_te.Dag.t ->
  task_report

val run :
  ?config:Measure_native.config ->
  ?sample:int ->
  ?seed:int ->
  machine:Ansor_machine.Machine.t ->
  (string * Ansor_te.Dag.t) list ->
  report
(** [run ~machine cases] cross-checks each named DAG with [sample]
    (default 32) random programs at [seed] (default 0). *)

val to_json : report -> string
(** Stable single-object JSON: machine, sample, seed, and one object per
    task. *)

val summary : report -> string
(** Human-readable per-task lines for the terminal. *)
