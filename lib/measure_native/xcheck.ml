open Ansor_sched
module Rng = Ansor_util.Rng
module Stats = Ansor_util.Stats
module Machine = Ansor_machine.Machine
module Simulator = Ansor_machine.Simulator
module Cache = Ansor_measure_service.Cache
module Protocol = Ansor_measure_service.Protocol
module Task = Ansor_search.Task
module Sampler = Ansor_sketch.Sampler
module Sketch_gen = Ansor_sketch.Gen

type task_report = {
  xr_task : string;
  xr_sampled : int;
  xr_unique : int;
  xr_measured : int;
  xr_compile_errors : int;
  xr_run_failures : int;
  xr_spearman : float;
  xr_top1_agree : bool;
  xr_top5_overlap : float;
}

type report = {
  x_machine : string;
  x_sample : int;
  x_seed : int;
  x_tasks : task_report list;
}

(* indices of the [k] smallest values, ties broken by index (stable) *)
let top_k k xs =
  let a = Array.of_list xs in
  let order = Array.init (Array.length a) (fun i -> i) in
  Array.sort
    (fun i j ->
      match compare a.(i) a.(j) with 0 -> compare i j | c -> c)
    order;
  Array.to_list (Array.sub order 0 (min k (Array.length order)))

let overlap k xs ys =
  let ka = top_k k xs and kb = top_k k ys in
  let n = List.length (List.filter (fun i -> List.mem i kb) ka) in
  if ka = [] then 0.0 else float_of_int n /. float_of_int (List.length ka)

let check_task ?(config = Measure_native.default_config) ~sample ~seed
    ~(machine : Machine.t) name dag =
  let task = Task.create ~name ~machine dag in
  let sketches = Sketch_gen.generate dag in
  let rng = Rng.create (seed lxor Hashtbl.hash name) in
  let states = Sampler.sample rng (Task.policy task) dag ~sketches ~n:sample in
  (* dedup by canonical lowered program: identical programs would only
     inflate the rank correlation with tied duplicates *)
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter_map
      (fun st ->
        match Lower.lower st with
        | exception State.Illegal _ -> None
        | prog ->
          let key = Cache.key_of_prog machine prog in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.replace seen key ();
            Some (key, prog)
          end)
      states
  in
  let misses = Array.of_list unique in
  let runner = Measure_native.runner ~config () in
  let report =
    runner ~timeout:infinity ~deadline:None ~max_retries:1 ~num_workers:1
      misses
  in
  let by_key = Hashtbl.create (Array.length misses) in
  Array.iter
    (fun (key, (o : Protocol.outcome)) -> Hashtbl.replace by_key key o)
    report.Protocol.nr_outcomes;
  let compile_errors = ref 0 and run_failures = ref 0 in
  let pairs =
    List.filter_map
      (fun (key, prog) ->
        match Hashtbl.find_opt by_key key with
        | Some { Protocol.out_latency = Ok native; _ } ->
          Some (Simulator.estimate machine prog, native)
        | Some { Protocol.out_latency = Error (Protocol.Compile_error _); _ }
          ->
          incr compile_errors;
          None
        | Some _ ->
          incr run_failures;
          None
        | None ->
          incr run_failures;
          None)
      unique
  in
  let sims = List.map fst pairs and natives = List.map snd pairs in
  {
    xr_task = name;
    xr_sampled = List.length states;
    xr_unique = List.length unique;
    xr_measured = List.length pairs;
    xr_compile_errors = !compile_errors;
    xr_run_failures = !run_failures;
    xr_spearman = Stats.spearman sims natives;
    xr_top1_agree =
      (match (top_k 1 sims, top_k 1 natives) with
      | [ a ], [ b ] -> a = b
      | _ -> false);
    xr_top5_overlap = overlap 5 sims natives;
  }

let run ?config ?(sample = 32) ?(seed = 0) ~(machine : Machine.t) cases =
  {
    x_machine = machine.Machine.name;
    x_sample = sample;
    x_seed = seed;
    x_tasks =
      List.map
        (fun (name, dag) ->
          check_task ?config ~sample ~seed ~machine name dag)
        cases;
  }

let task_to_json r =
  Printf.sprintf
    "{\"task\":%S,\"sampled\":%d,\"unique\":%d,\"measured\":%d,\
     \"compile_errors\":%d,\"run_failures\":%d,\"spearman\":%.6f,\
     \"top1_agree\":%b,\"top5_overlap\":%.6f}"
    r.xr_task r.xr_sampled r.xr_unique r.xr_measured r.xr_compile_errors
    r.xr_run_failures r.xr_spearman r.xr_top1_agree r.xr_top5_overlap

let to_json r =
  Printf.sprintf "{\"machine\":%S,\"sample\":%d,\"seed\":%d,\"tasks\":[%s]}"
    r.x_machine r.x_sample r.x_seed
    (String.concat "," (List.map task_to_json r.x_tasks))

let summary r =
  String.concat "\n"
    (List.map
       (fun t ->
         Printf.sprintf
           "%-24s measured %d/%d  spearman %+.3f  top1 %s  top5 %.0f%%%s"
           t.xr_task t.xr_measured t.xr_unique t.xr_spearman
           (if t.xr_top1_agree then "agree" else "differ")
           (100.0 *. t.xr_top5_overlap)
           (if t.xr_compile_errors + t.xr_run_failures > 0 then
              Printf.sprintf "  (%d compile err, %d run fail)"
                t.xr_compile_errors t.xr_run_failures
            else ""))
       r.x_tasks)
